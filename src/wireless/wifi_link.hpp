#pragma once
// WiFi link-layer model: AMPDU aggregation over a shared medium.
//
// Packets sit in the *network-layer* qdisc until the medium is granted;
// then up to an aggregation limit of them are dequeued simultaneously into
// one AMPDU (the paper's "bursty packet departures", §3.1). The Fortune
// Teller's inputs come from hooks here: per-packet qdisc-dequeue events
// (txRate / dequeue intervals / burst sizes) and the qdisc's own
// head-of-queue state.

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "queue/qdisc.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "wireless/channel.hpp"
#include "wireless/medium.hpp"

namespace zhuge::wireless {

using net::Packet;
using net::PacketHandler;

/// One direction of a WiFi hop (AP→client or client→AP).
class WifiLink {
 public:
  struct Config {
    std::size_t max_agg_packets = 32;           ///< MPDUs per AMPDU
    std::int64_t max_agg_bytes = 48 * 1024;     ///< AMPDU byte cap
    Duration per_frame_overhead = Duration::micros(250);  ///< preamble+SIFS+BA
    Duration max_frame_airtime = Duration::millis(4);     ///< TXOP-like cap
    double mpdu_loss_prob = 0.005;              ///< per-MPDU corruption prob
    int max_retries = 7;
  };

  /// Observer of packets leaving the network-layer qdisc (possibly several
  /// at the same instant — one call per packet).
  using DequeueObserver = std::function<void(const Packet&, TimePoint)>;
  /// Observer of packets confirmed delivered over the air (the 802.11 ACK
  /// event FastAck builds on).
  using DeliveryObserver = std::function<void(const Packet&, TimePoint)>;

  WifiLink(sim::Simulator& simulator, sim::Rng& rng, Channel& channel,
           Medium& medium, queue::Qdisc& qdisc, Config cfg, PacketHandler deliver)
      : sim_(simulator),
        rng_(rng),
        channel_(channel),
        medium_(medium),
        qdisc_(qdisc),
        cfg_(cfg),
        deliver_(std::move(deliver)) {}

  /// Enqueue a packet for wireless transmission. Returns false when the
  /// qdisc tail-dropped it.
  bool offer(Packet p) {
    p.ap_enqueue_time = sim_.now();
    const bool accepted = qdisc_.enqueue(std::move(p), sim_.now());
    kick();
    return accepted;
  }

  /// Arm a transmission attempt if idle and traffic is pending.
  void kick() {
    if (requesting_) return;
    if (retry_.empty() && qdisc_.packet_count() == 0) return;
    requesting_ = true;
    medium_.transmit([this] { return build_and_start_frame(); },
                     [this] { complete_frame(); });
  }

  void set_dequeue_observer(DequeueObserver obs) { on_dequeue_ = std::move(obs); }
  void set_delivery_observer(DeliveryObserver obs) { on_delivered_ = std::move(obs); }

  [[nodiscard]] queue::Qdisc& qdisc() { return qdisc_; }
  [[nodiscard]] const queue::Qdisc& qdisc() const { return qdisc_; }
  [[nodiscard]] std::uint64_t delivered_packets() const { return delivered_; }
  [[nodiscard]] std::uint64_t retry_drops() const { return retry_drops_; }
  [[nodiscard]] std::uint64_t frames_sent() const { return frames_; }

  /// Total medium airtime this link's frames have occupied (per-frame
  /// overhead included). Per-station airtime accounting for multi-station
  /// scenarios: summed across links it shows how the CSMA medium was split.
  [[nodiscard]] Duration airtime_used() const { return airtime_used_; }

 private:
  struct Mpdu {
    Packet packet;
    int retries = 0;
  };

  /// Medium grant: assemble the AMPDU *now* (this is the simultaneous
  /// departure event), return its airtime.
  Duration build_and_start_frame() {
    const TimePoint now = sim_.now();
    const double rate = std::max(1e3, channel_.rate_bps(now));
    // Byte budget implied by the airtime cap at the current rate.
    const auto airtime_budget_bytes = static_cast<std::int64_t>(
        cfg_.max_frame_airtime.to_seconds() * rate / 8.0);

    frame_.clear();
    std::int64_t bytes = 0;
    // Link-layer retries go first (block-ACK retransmission).
    while (!retry_.empty() && frame_.size() < cfg_.max_agg_packets &&
           bytes + retry_.front().packet.size_bytes <= cfg_.max_agg_bytes) {
      bytes += retry_.front().packet.size_bytes;
      frame_.push_back(std::move(retry_.front()));
      retry_.pop_front();
    }
    while (frame_.size() < cfg_.max_agg_packets) {
      const Packet* head = qdisc_.peek();
      if (head == nullptr) break;
      const std::int64_t sz = head->size_bytes;
      if (!frame_.empty() &&
          (bytes + sz > cfg_.max_agg_bytes || bytes + sz > airtime_budget_bytes)) {
        break;
      }
      auto p = qdisc_.dequeue(now);
      if (!p.has_value()) break;  // AQM head-dropped everything pending
      if (on_dequeue_) on_dequeue_(*p, now);
      bytes += p->size_bytes;
      frame_.push_back(Mpdu{std::move(*p), 0});
    }

    // First transmission attempt for every MPDU not already stamped (fresh
    // dequeues; retries keep their original first-air stamp).
    for (auto& mpdu : frame_) {
      if (mpdu.packet.span.first_air_ns < 0) {
        ZHUGE_SPAN_STAMP(mpdu.packet.span.first_air_ns, now);
      }
    }

    ++frames_;
    if (frame_.empty()) {
      // Everything was AQM-dropped between kick and grant: occupy nothing.
      return Duration::zero();
    }
    const Duration airtime =
        cfg_.per_frame_overhead +
        Duration::from_seconds(static_cast<double>(bytes) * 8.0 / rate);
    airtime_used_ = airtime_used_ + airtime;
    ZHUGE_METRIC_INC("wireless.wifi.frames");
    ZHUGE_METRIC_SET("wireless.wifi.rate_bps", rate);
    ZHUGE_METRIC_OBSERVE("wireless.wifi.ampdu_packets",
                         static_cast<double>(frame_.size()));
    ZHUGE_TRACE(now, "wireless.wifi", "tx_start",
                {"mpdus", double(frame_.size())}, {"bytes", double(bytes)},
                {"rate_mbps", rate / 1e6}, {"airtime_us", airtime.to_micros()});
    return airtime;
  }

  /// Airtime elapsed: resolve per-MPDU success, deliver or re-queue.
  void complete_frame() {
    const TimePoint now = sim_.now();
    std::size_t ok = 0, retried = 0, dropped = 0;
    for (auto& mpdu : frame_) {
      if (rng_.chance(cfg_.mpdu_loss_prob)) {
        if (mpdu.retries + 1 > cfg_.max_retries) {
          ++retry_drops_;
          ++dropped;
          ZHUGE_METRIC_INC("wireless.wifi.retry_drops");
          continue;
        }
        ++mpdu.retries;
        ++retried;
        ZHUGE_METRIC_INC("wireless.wifi.retries");
        retry_.push_back(std::move(mpdu));
        continue;
      }
      mpdu.packet.delivered_time = now;
      mpdu.packet.span.air_retries = static_cast<std::uint32_t>(mpdu.retries);
      ++delivered_;
      ++ok;
      ZHUGE_METRIC_INC("wireless.wifi.delivered_packets");
      if (on_delivered_) on_delivered_(mpdu.packet, now);
      if (deliver_) deliver_(std::move(mpdu.packet));
    }
    ZHUGE_TRACE(now, "wireless.wifi", "tx_end", {"delivered", double(ok)},
                {"retried", double(retried)}, {"retry_dropped", double(dropped)});
    frame_.clear();
    requesting_ = false;
    kick();
  }

  sim::Simulator& sim_;
  sim::Rng& rng_;
  Channel& channel_;
  Medium& medium_;
  queue::Qdisc& qdisc_;
  Config cfg_;
  PacketHandler deliver_;
  DequeueObserver on_dequeue_;
  DeliveryObserver on_delivered_;

  std::vector<Mpdu> frame_;
  std::deque<Mpdu> retry_;
  bool requesting_ = false;
  std::uint64_t delivered_ = 0;
  std::uint64_t retry_drops_ = 0;
  Duration airtime_used_ = Duration::zero();
  std::uint64_t frames_ = 0;
};

}  // namespace zhuge::wireless
