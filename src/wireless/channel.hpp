#pragma once
// Time-varying wireless channel capacity.
//
// Two modes, matching the two ways the paper drives its experiments:
//  * trace mode  — the available bandwidth follows an ABW trace (§7.3);
//  * PHY mode    — a fixed modulation-coding-scheme (MCS) rate, which the
//    fig18 "mcs" scenario switches at runtime, with contention modelled
//    separately by the Medium.

#include <array>
#include <cstdint>

#include "sim/time.hpp"
#include "trace/trace.hpp"

namespace zhuge::wireless {

using sim::Duration;
using sim::TimePoint;

/// 802.11n 20 MHz single-stream MCS data rates (long guard interval).
inline constexpr std::array<double, 8> kMcsRateBps = {
    6.5e6, 13e6, 19.5e6, 26e6, 39e6, 52e6, 58.5e6, 65e6};

/// Channel capacity source. Not an interface — the two modes share state
/// (a trace-driven channel can still be asked for its MCS cap).
class Channel {
 public:
  /// Trace-driven channel: capacity follows `trace` (which must outlive
  /// the channel).
  explicit Channel(const trace::Trace* trace) : trace_(trace) {}

  /// PHY-mode channel at the given MCS index.
  explicit Channel(int mcs_index) { set_mcs(mcs_index); }

  /// Instantaneous capacity in bits/second.
  [[nodiscard]] double rate_bps(TimePoint now) const {
    if (trace_ != nullptr) return trace_->rate_at(now);
    return kMcsRateBps[static_cast<std::size_t>(mcs_)];
  }

  /// Switch MCS (PHY mode; the fig18 "mcs" scenario calls this every 30 s).
  void set_mcs(int idx) {
    if (idx < 0) idx = 0;
    if (idx >= static_cast<int>(kMcsRateBps.size()))
      idx = static_cast<int>(kMcsRateBps.size()) - 1;
    mcs_ = idx;
  }

  [[nodiscard]] int mcs() const { return mcs_; }
  [[nodiscard]] bool trace_driven() const { return trace_ != nullptr; }

 private:
  const trace::Trace* trace_ = nullptr;
  int mcs_ = 7;
};

}  // namespace zhuge::wireless
