#pragma once
// Shared-medium arbiter: CSMA-style single-transmitter semantics.
//
// Only one frame can occupy the air at a time (§4.2: "multiple AMPDUs
// cannot be transmitted simultaneously"). The AP downlink, the client
// uplink, and any saturating interferers (bulk flows on *other* APs
// sharing the channel, Fig. 17) all contend here. Interferers are modelled
// as virtual contenders that win each contention round with probability
// n/(n+1), which yields the 1/(n+1) long-run airtime share of saturating
// 802.11 DCF contenders while keeping the event count low.

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace zhuge::wireless {

using sim::Duration;
using sim::TimePoint;

/// FIFO medium arbiter with interferer contention.
class Medium {
 public:
  struct Config {
    int interferers = 0;
    Duration difs = Duration::micros(34);
    Duration backoff_mean = Duration::micros(80);  ///< exponential backoff
    Duration interferer_frame = Duration::micros(1500);  ///< airtime/frame
  };

  Medium(sim::Simulator& simulator, sim::Rng& rng, Config cfg)
      : sim_(simulator), rng_(rng), cfg_(cfg) {}

  /// Request the medium. When granted, `on_grant` runs and returns the
  /// airtime the frame will occupy; `on_done` runs when that airtime ends.
  /// Grants are FIFO among local requesters; interferers may win rounds
  /// in between.
  void transmit(std::function<Duration()> on_grant, std::function<void()> on_done) {
    waiting_.push_back({std::move(on_grant), std::move(on_done)});
    if (!busy_) grant_next();
  }

  void set_interferers(int n) { cfg_.interferers = n; }
  [[nodiscard]] int interferers() const { return cfg_.interferers; }
  [[nodiscard]] bool busy() const { return busy_; }
  [[nodiscard]] std::uint64_t interferer_wins() const { return interferer_wins_; }

 private:
  struct Request {
    std::function<Duration()> on_grant;
    std::function<void()> on_done;
  };

  void grant_next() {
    if (waiting_.empty()) {
      busy_ = false;
      return;
    }
    busy_ = true;
    const Duration gap =
        cfg_.difs + Duration::from_seconds(rng_.exponential(cfg_.backoff_mean.to_seconds()));
    // One contention round: with n saturating interferers, the local
    // requester wins with probability 1/(n+1).
    const int n = cfg_.interferers;
    if (n > 0 &&
        rng_.uniform() < static_cast<double>(n) / static_cast<double>(n + 1)) {
      ++interferer_wins_;
      sim_.schedule_after(gap + cfg_.interferer_frame, [this] { grant_next(); });
      return;
    }
    sim_.schedule_after(gap, [this] {
      Request req = std::move(waiting_.front());
      waiting_.pop_front();
      const Duration airtime = req.on_grant();
      sim_.schedule_after(airtime, [this, done = std::move(req.on_done)] {
        done();
        grant_next();
      });
    });
  }

  sim::Simulator& sim_;
  sim::Rng& rng_;
  Config cfg_;
  std::deque<Request> waiting_;
  bool busy_ = false;
  std::uint64_t interferer_wins_ = 0;
};

}  // namespace zhuge::wireless
