#pragma once
// Cellular last-hop model: per-UE isolated queue drained by a TTI-clocked
// scheduler whose budget follows the ABW trace (the paper defers cellular
// delay estimation to ABC [31]; each flow has its own queue, no CSMA
// contention, delivery after a fixed HARQ/air latency).

#include <cstdint>
#include <functional>
#include <vector>

#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "queue/qdisc.hpp"
#include "sim/pool.hpp"
#include "sim/simulator.hpp"
#include "wireless/channel.hpp"

namespace zhuge::wireless {

using net::Packet;
using net::PacketHandler;

/// One direction of a cellular hop.
class CellularLink {
 public:
  struct Config {
    Duration tti = Duration::millis(1);        ///< scheduler granularity
    Duration air_latency = Duration::millis(4);  ///< HARQ + propagation
    double loss_prob = 0.0;                    ///< residual post-HARQ loss
  };

  using DequeueObserver = std::function<void(const Packet&, TimePoint)>;
  using DeliveryObserver = std::function<void(const Packet&, TimePoint)>;

  CellularLink(sim::Simulator& simulator, sim::Rng& rng, Channel& channel,
               queue::Qdisc& qdisc, Config cfg, PacketHandler deliver)
      : sim_(simulator),
        rng_(rng),
        channel_(channel),
        qdisc_(qdisc),
        cfg_(cfg),
        deliver_(std::move(deliver)) {}

  /// Enqueue for the next scheduling opportunity. Returns false when the
  /// qdisc tail-dropped the packet.
  bool offer(Packet p) {
    p.ap_enqueue_time = sim_.now();
    const bool accepted = qdisc_.enqueue(std::move(p), sim_.now());
    if (!ticking_) {
      ticking_ = true;
      sim_.schedule_after(cfg_.tti, [this] { tick(); });
    }
    return accepted;
  }

  void set_dequeue_observer(DequeueObserver obs) { on_dequeue_ = std::move(obs); }
  void set_delivery_observer(DeliveryObserver obs) { on_delivered_ = std::move(obs); }

  [[nodiscard]] queue::Qdisc& qdisc() { return qdisc_; }
  [[nodiscard]] std::uint64_t delivered_packets() const { return delivered_; }

 private:
  void tick() {
    const TimePoint now = sim_.now();
    const double rate = std::max(0.0, channel_.rate_bps(now));
    carry_bytes_ += rate * cfg_.tti.to_seconds() / 8.0;
    ZHUGE_METRIC_INC("wireless.cellular.ttis");
    ZHUGE_METRIC_SET("wireless.cellular.rate_bps", rate);
    ZHUGE_TRACE(now, "wireless.cellular", "tti", {"rate_mbps", rate / 1e6},
                {"carry_bytes", carry_bytes_},
                {"queued_pkts", double(qdisc_.packet_count())});

    // Everything this TTI's budget admits is dequeued into one aggregate
    // and delivered by a single event after the air latency — the batched
    // analogue of the WifiLink's one-grant-per-AMPDU shape. The aggregate
    // lives in a pooled vector (several can be in flight when air_latency
    // spans multiple TTIs) so steady state schedules one event and zero
    // allocations per TTI instead of one packet-carrying event per MPDU.
    sim::Pool<std::vector<Packet>>::Index agg_idx = 0;
    bool have_agg = false;
    while (true) {
      const Packet* head = qdisc_.peek();
      if (head == nullptr) {
        carry_bytes_ = 0.0;  // no packet "in service": budget does not bank
        break;
      }
      if (carry_bytes_ < static_cast<double>(head->size_bytes)) break;
      auto p = qdisc_.dequeue(now);
      if (!p.has_value()) continue;  // AQM head drop
      carry_bytes_ -= static_cast<double>(p->size_bytes);
      if (on_dequeue_) on_dequeue_(*p, now);
      if (rng_.chance(cfg_.loss_prob)) {
        ZHUGE_METRIC_INC("wireless.cellular.air_losses");
        continue;
      }
      if (!have_agg) {
        agg_idx = aggregates_.put({});
        have_agg = true;
      }
      aggregates_.at(agg_idx).push_back(std::move(*p));
    }
    if (have_agg) {
      sim_.schedule_after(cfg_.air_latency,
                          [this, agg_idx] { deliver_aggregate(agg_idx); });
    }

    if (qdisc_.packet_count() > 0) {
      sim_.schedule_after(cfg_.tti, [this] { tick(); });
    } else {
      ticking_ = false;
    }
  }

  /// Air latency elapsed for one TTI aggregate: hand every packet to the
  /// receiver in dequeue order, then recycle the vector (capacity and all)
  /// for a future TTI.
  void deliver_aggregate(sim::Pool<std::vector<Packet>>::Index agg_idx) {
    std::vector<Packet>& agg = aggregates_.at(agg_idx);
    const TimePoint now = sim_.now();
    for (Packet& pkt : agg) {
      pkt.delivered_time = now;
      ++delivered_;
      ZHUGE_METRIC_INC("wireless.cellular.delivered_packets");
      if (on_delivered_) on_delivered_(pkt, now);
      if (deliver_) deliver_(std::move(pkt));
    }
    agg.clear();
    aggregates_.release(agg_idx);
  }

  sim::Simulator& sim_;
  sim::Rng& rng_;
  Channel& channel_;
  queue::Qdisc& qdisc_;
  Config cfg_;
  PacketHandler deliver_;
  DequeueObserver on_dequeue_;
  DeliveryObserver on_delivered_;
  sim::Pool<std::vector<Packet>> aggregates_;  ///< in-flight TTI batches
  double carry_bytes_ = 0.0;
  bool ticking_ = false;
  std::uint64_t delivered_ = 0;
};

}  // namespace zhuge::wireless
