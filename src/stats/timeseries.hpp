#pragma once
// Time-series recording and the degradation-duration metric used in the
// paper's microbenchmarks (Fig. 4, 14, 15, 16): "duration of RTT > 200 ms",
// i.e. total time a sampled signal spends above a threshold until it has
// re-converged.

#include <vector>

#include "sim/time.hpp"

namespace zhuge::stats {

using sim::Duration;
using sim::TimePoint;

/// Append-only (time, value) series with threshold-duration analysis.
class TimeSeries {
 public:
  struct Point {
    TimePoint t;
    double value;
  };

  void record(TimePoint t, double value) { points_.push_back({t, value}); }

  [[nodiscard]] const std::vector<Point>& points() const { return points_; }
  [[nodiscard]] bool empty() const { return points_.empty(); }

  /// Total time the piecewise-constant signal (sample-and-hold) spends
  /// strictly above `threshold` within [from, to].
  [[nodiscard]] Duration time_above(double threshold, TimePoint from, TimePoint to) const {
    Duration total = Duration::zero();
    for (std::size_t i = 0; i < points_.size(); ++i) {
      const TimePoint start = std::max(points_[i].t, from);
      const TimePoint end =
          std::min(i + 1 < points_.size() ? points_[i + 1].t : to, to);
      if (end <= start) continue;
      if (points_[i].value > threshold) total += end - start;
    }
    return total;
  }

  /// As time_above but for values strictly below the threshold.
  [[nodiscard]] Duration time_below(double threshold, TimePoint from, TimePoint to) const {
    Duration total = Duration::zero();
    for (std::size_t i = 0; i < points_.size(); ++i) {
      const TimePoint start = std::max(points_[i].t, from);
      const TimePoint end =
          std::min(i + 1 < points_.size() ? points_[i + 1].t : to, to);
      if (end <= start) continue;
      if (points_[i].value < threshold) total += end - start;
    }
    return total;
  }

  /// Last instant (within [from, to]) at which the signal was above the
  /// threshold — the paper's re-convergence point after a bandwidth drop.
  /// Returns `from` when the signal never exceeded the threshold.
  [[nodiscard]] TimePoint last_above(double threshold, TimePoint from, TimePoint to) const {
    TimePoint last = from;
    for (std::size_t i = 0; i < points_.size(); ++i) {
      if (points_[i].t < from || points_[i].t > to) continue;
      if (points_[i].value > threshold) {
        const TimePoint end =
            std::min(i + 1 < points_.size() ? points_[i + 1].t : to, to);
        last = end;
      }
    }
    return last;
  }

  /// Time-weighted mean of the piecewise-constant signal over [from, to],
  /// with the same sample-and-hold semantics as time_above(): each sample
  /// holds until the next one (the last holds until `to`). Unlike mean(),
  /// irregular sampling does not bias the result toward densely-sampled
  /// stretches. Returns 0 when no sample covers the window.
  [[nodiscard]] double time_weighted_mean(TimePoint from, TimePoint to) const {
    double weighted = 0.0;
    Duration covered = Duration::zero();
    for (std::size_t i = 0; i < points_.size(); ++i) {
      const TimePoint start = std::max(points_[i].t, from);
      const TimePoint end =
          std::min(i + 1 < points_.size() ? points_[i + 1].t : to, to);
      if (end <= start) continue;
      const Duration span = end - start;
      weighted += points_[i].value * span.to_seconds();
      covered += span;
    }
    return covered > Duration::zero() ? weighted / covered.to_seconds() : 0.0;
  }

  /// Mean of samples within [from, to].
  [[nodiscard]] double mean(TimePoint from, TimePoint to) const {
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& p : points_) {
      if (p.t < from || p.t > to) continue;
      sum += p.value;
      ++n;
    }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
  }

 private:
  std::vector<Point> points_;
};

}  // namespace zhuge::stats
