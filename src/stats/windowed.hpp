#pragma once
// Sliding-window estimators over timestamped samples.
//
// These are the measurement primitives from §4 of the paper: avg(txRate)
// and avg(dequeueIntvl) are computed over a sliding window (40 ms by
// default), while cur(...) values are read directly from the queue.
//
// Layout (PR 8): every estimator stores its window in a structure-of-arrays
// ring buffer (detail::SoaRing) — one contiguous power-of-two array of
// int64 timestamps and a parallel array of values — instead of a
// std::deque of {t, value} structs. The Fortune Teller records a departure
// and asks for a prediction on *every* downlink packet, so the record/
// evict/query cycle is the per-packet hot path at the AP (the paper's CPU
// budget, Fig. 21). The ring wins three ways over the deque:
//   * eviction walks a dense timestamp array (8 bytes/sample, no chunk
//     map indirection), so the common "nothing to evict" probe is one
//     load+compare and a multi-sample evict streams linearly;
//   * push_back is an index increment in steady state — the deque's
//     chunk-boundary branch and allocator touch are gone (the ring grows
//     to the window's peak occupancy and then never allocates again);
//   * timestamps and values are split, so queries that only scan one of
//     the two (eviction: timestamps; resummation: values) don't drag the
//     other through cache.
// The arithmetic — accumulation order, eviction condition, resummation
// cadence — is unchanged bit-for-bit from the deque implementation; the
// golden fingerprint suites and the SoA-equivalence tests in
// tests/stats_test.cpp and tests/fortune_teller_test.cpp pin that.

#include <cstdint>
#include <cstddef>
#include <optional>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace zhuge::stats {

using sim::Duration;
using sim::TimePoint;

namespace detail {

/// Structure-of-arrays ring buffer of (int64 timestamp, V value) pairs.
/// Power-of-two capacity; grows by doubling (unwrapping into the new
/// arrays) and never shrinks — windowed callers reach their peak
/// occupancy once and then run allocation-free. Supports deque-style
/// access at both ends plus ordered random access, which is all the
/// windowed estimators and their monotonic-deque variants need.
template <typename V>
class SoaRing {
 public:
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  void push_back(std::int64_t t, V v) {
    if (size_ == capacity()) grow();
    const std::size_t i = (head_ + size_) & mask_;
    t_[i] = t;
    v_[i] = v;
    ++size_;
  }

  void pop_front() {
    head_ = (head_ + 1) & mask_;
    --size_;
  }
  void pop_back() { --size_; }

  [[nodiscard]] std::int64_t front_t() const { return t_[head_]; }
  [[nodiscard]] V front_v() const { return v_[head_]; }
  [[nodiscard]] std::int64_t back_t() const {
    return t_[(head_ + size_ - 1) & mask_];
  }
  [[nodiscard]] V back_v() const { return v_[(head_ + size_ - 1) & mask_]; }

  /// In-window order: i = 0 is the oldest retained sample.
  [[nodiscard]] std::int64_t t_at(std::size_t i) const {
    return t_[(head_ + i) & mask_];
  }
  [[nodiscard]] V v_at(std::size_t i) const { return v_[(head_ + i) & mask_]; }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  [[nodiscard]] std::size_t capacity() const { return t_.size(); }

  void grow() {
    const std::size_t cap = capacity() == 0 ? 16 : capacity() * 2;
    std::vector<std::int64_t> nt(cap);
    std::vector<V> nv(cap);
    for (std::size_t i = 0; i < size_; ++i) {
      nt[i] = t_[(head_ + i) & mask_];
      nv[i] = v_[(head_ + i) & mask_];
    }
    t_ = std::move(nt);
    v_ = std::move(nv);
    head_ = 0;
    mask_ = cap - 1;
  }

  std::vector<std::int64_t> t_;
  std::vector<V> v_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;  // capacity - 1 (0 while empty: never indexed)
};

}  // namespace detail

/// Rate of a byte-counted event stream over a trailing time window.
///
/// record(t, bytes) on every departure; rate_bps(t) returns the average
/// bits/second over the last `window`. Returns nullopt until at least two
/// samples span a non-zero interval.
///
/// Accumulator exactness: `total_bytes_` is a signed 64-bit integer, so
/// the running add/subtract pairs of record()/evict() are exact — unlike
/// a floating-point accumulator there is no drift to bound, even after
/// billions of record/evict cycles (a long-run test pins this). Byte
/// counts would need to exceed 2^63 before this breaks.
class WindowedRate {
 public:
  explicit WindowedRate(Duration window)
      : window_(window), window_secs_(window.to_seconds()) {}

  void record(TimePoint t, std::int64_t bytes) {
    samples_.push_back(t.count_ns(), bytes);
    total_bytes_ += bytes;
    evict(t);
  }

  /// Average rate in bits per second over the trailing window, or nullopt
  /// if the window holds no data.
  [[nodiscard]] std::optional<double> rate_bps(TimePoint now) {
    evict(now);
    if (samples_.empty()) return std::nullopt;
    // Measure over the full window so quiet periods drag the rate down —
    // a stalled channel must read as a *low* rate, not as "no data".
    // window_secs_ caches the (loop-invariant) division done here; the
    // quotient below is the same operation on the same operands as ever.
    if (window_secs_ <= 0.0) return std::nullopt;
    return static_cast<double>(total_bytes_) * 8.0 / window_secs_;
  }

  /// Branch-light variant for the per-packet hot path: the empty-window /
  /// non-positive-rate cases collapse into `fallback` without an optional
  /// round-trip. Bit-identical to rate_bps() when that returns a value.
  [[nodiscard]] double rate_bps_or(TimePoint now, double fallback) {
    evict(now);
    if (samples_.empty()) return fallback;
    if (window_secs_ <= 0.0) return fallback;
    const double r = static_cast<double>(total_bytes_) * 8.0 / window_secs_;
    return r <= 0.0 ? fallback : r;
  }

  [[nodiscard]] Duration window() const { return window_; }
  [[nodiscard]] std::size_t sample_count() const { return samples_.size(); }

 private:
  void evict(TimePoint now) {
    const std::int64_t cutoff = (now - window_).count_ns();
    while (!samples_.empty() && samples_.front_t() < cutoff) {
      total_bytes_ -= samples_.front_v();
      samples_.pop_front();
    }
  }

  Duration window_;
  double window_secs_;  ///< window_.to_seconds(), hoisted out of queries
  detail::SoaRing<std::int64_t> samples_;
  std::int64_t total_bytes_ = 0;
};

/// Mean of real-valued samples over a trailing time window.
///
/// Hot-path properties (PR 3, re-laid-out as SoA rings in PR 8):
///  * max() is O(1) via a parallel monotonic ring (the same structure
///    WindowedMax uses) instead of rescanning every sample — BBR's
///    bandwidth filter calls max() on every delivery-rate sample. The
///    ring is lazy: callers that never ask for max() (the Fortune
///    Teller's dequeue-interval mean) pay one predicted branch per
///    record, not ring maintenance; the first max() call rebuilds the
///    ring from the live window and flips it on for good.
///  * The running `sum_` is a double, and the add-on-record /
///    subtract-on-evict pairs leave a residue of roughly one ulp per
///    cycle. Left alone for millions of cycles the residue is unbounded;
///    we re-add the window exactly every kResumPeriod records, which
///    bounds the relative error near machine epsilon at all times (the
///    long-run drift test pins recorded-vs-brute-force to 1e-9, and the
///    boundary test in tests/stats_test.cpp straddles the exact
///    resummation record with interleaved evictions).
///
/// Timestamps must be non-decreasing across record() calls — true for
/// every caller (they pass simulation "now"), asserted nowhere for speed.
class WindowedMean {
 public:
  explicit WindowedMean(Duration window) : window_(window) {}

  void record(TimePoint t, double value) {
    samples_.push_back(t.count_ns(), value);
    sum_ += value;
    if (max_live_) push_max(t.count_ns(), value);
    evict(t);
    if (++records_since_resum_ >= kResumPeriod) resum();
  }

  [[nodiscard]] std::optional<double> mean(TimePoint now) {
    evict(now);
    if (samples_.empty()) return std::nullopt;
    return sum_ / static_cast<double>(samples_.size());
  }

  /// Branch-light hot-path variant: `fallback` instead of an optional
  /// round-trip when the window is empty. Bit-identical to mean() when
  /// that returns a value (same quotient, same operands).
  [[nodiscard]] double mean_or(TimePoint now, double fallback) {
    evict(now);
    if (samples_.empty()) return fallback;
    return sum_ / static_cast<double>(samples_.size());
  }

  [[nodiscard]] std::optional<double> max(TimePoint now) {
    if (!max_live_) {
      max_live_ = true;
      for (std::size_t i = 0; i < samples_.size(); ++i) {
        push_max(samples_.t_at(i), samples_.v_at(i));
      }
    }
    evict(now);
    if (samples_.empty()) return std::nullopt;
    return max_ring_.front_v();
  }

  [[nodiscard]] std::size_t sample_count() const { return samples_.size(); }

 private:
  /// Exact-resummation cadence. Resumming a 40 ms window (a few dozen
  /// samples) every 4096 records costs well under 1% of record() time.
  static constexpr std::uint32_t kResumPeriod = 4096;

  void push_max(std::int64_t t, double value) {
    while (!max_ring_.empty() && max_ring_.back_v() <= value) {
      max_ring_.pop_back();
    }
    max_ring_.push_back(t, value);
  }

  void evict(TimePoint now) {
    const std::int64_t cutoff = (now - window_).count_ns();
    while (!samples_.empty() && samples_.front_t() < cutoff) {
      sum_ -= samples_.front_v();
      samples_.pop_front();
    }
    while (!max_ring_.empty() && max_ring_.front_t() < cutoff) {
      max_ring_.pop_front();
    }
  }

  void resum() {
    records_since_resum_ = 0;
    double s = 0.0;
    for (std::size_t i = 0; i < samples_.size(); ++i) s += samples_.v_at(i);
    sum_ = s;
  }

  Duration window_;
  detail::SoaRing<double> samples_;
  detail::SoaRing<double> max_ring_;  // monotonic non-increasing by value
  double sum_ = 0.0;
  std::uint32_t records_since_resum_ = 0;
  bool max_live_ = false;  // ring maintained only once max() is used
};

/// Maximum over a trailing time window (monotonic-ring implementation).
/// Used for maxBurstSize in the Fortune Teller's Eq. 1 adjustment.
class WindowedMax {
 public:
  explicit WindowedMax(Duration window) : window_(window) {}

  void record(TimePoint t, double value) {
    while (!ring_.empty() && ring_.back_v() <= value) ring_.pop_back();
    ring_.push_back(t.count_ns(), value);
    evict(t);
  }

  [[nodiscard]] double max(TimePoint now, double fallback = 0.0) {
    evict(now);
    return ring_.empty() ? fallback : ring_.front_v();
  }

 private:
  void evict(TimePoint now) {
    const std::int64_t cutoff = (now - window_).count_ns();
    while (!ring_.empty() && ring_.front_t() < cutoff) ring_.pop_front();
  }

  Duration window_;
  detail::SoaRing<double> ring_;
};

/// Minimum over a trailing time window (e.g. min-RTT filters in CCAs).
class WindowedMin {
 public:
  explicit WindowedMin(Duration window) : window_(window) {}

  void record(TimePoint t, double value) {
    while (!ring_.empty() && ring_.back_v() >= value) ring_.pop_back();
    ring_.push_back(t.count_ns(), value);
    evict(t);
  }

  [[nodiscard]] std::optional<double> min(TimePoint now) {
    evict(now);
    if (ring_.empty()) return std::nullopt;
    return ring_.front_v();
  }

 private:
  void evict(TimePoint now) {
    const std::int64_t cutoff = (now - window_).count_ns();
    while (!ring_.empty() && ring_.front_t() < cutoff) ring_.pop_front();
  }

  Duration window_;
  detail::SoaRing<double> ring_;
};

/// A trailing-window bag of samples supporting uniform random draws.
/// This backs the paper's delta-distribution sampling (§5.2): feedback
/// packets are delayed by a value drawn from the recent delay-delta
/// distribution, giving distributional rather than per-packet equivalence.
class WindowedSampler {
 public:
  explicit WindowedSampler(Duration window) : window_(window) {}

  void record(TimePoint t, double value) {
    samples_.push_back(t.count_ns(), value);
    evict(t);
  }

  /// Uniformly draw one of the samples currently inside the window.
  [[nodiscard]] std::optional<double> sample(TimePoint now, sim::Rng& rng) {
    evict(now);
    if (samples_.empty()) return std::nullopt;
    const auto idx = rng.uniform_int(static_cast<std::uint32_t>(samples_.size()));
    return samples_.v_at(idx);
  }

  [[nodiscard]] std::optional<double> mean(TimePoint now) {
    evict(now);
    if (samples_.empty()) return std::nullopt;
    double s = 0.0;
    for (std::size_t i = 0; i < samples_.size(); ++i) s += samples_.v_at(i);
    return s / static_cast<double>(samples_.size());
  }

  [[nodiscard]] std::size_t sample_count() const { return samples_.size(); }

 private:
  void evict(TimePoint now) {
    const std::int64_t cutoff = (now - window_).count_ns();
    while (!samples_.empty() && samples_.front_t() < cutoff) samples_.pop_front();
  }

  Duration window_;
  detail::SoaRing<double> samples_;
};

/// Classic exponentially-weighted moving average.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void record(double value) {
    if (!has_value_) {
      value_ = value;
      has_value_ = true;
    } else {
      value_ = alpha_ * value + (1.0 - alpha_) * value_;
    }
  }

  [[nodiscard]] bool has_value() const { return has_value_; }
  [[nodiscard]] double value() const { return value_; }
  void reset() { has_value_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool has_value_ = false;
};

}  // namespace zhuge::stats
