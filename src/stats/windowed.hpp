#pragma once
// Sliding-window estimators over timestamped samples.
//
// These are the measurement primitives from §4 of the paper: avg(txRate)
// and avg(dequeueIntvl) are computed over a sliding window (40 ms by
// default), while cur(...) values are read directly from the queue.

#include <cstdint>
#include <deque>
#include <optional>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace zhuge::stats {

using sim::Duration;
using sim::TimePoint;

/// Rate of a byte-counted event stream over a trailing time window.
///
/// record(t, bytes) on every departure; rate_bps(t) returns the average
/// bits/second over the last `window`. Returns nullopt until at least two
/// samples span a non-zero interval.
///
/// Accumulator exactness: `total_bytes_` is a signed 64-bit integer, so
/// the running add/subtract pairs of record()/evict() are exact — unlike
/// a floating-point accumulator there is no drift to bound, even after
/// billions of record/evict cycles (a long-run test pins this). Byte
/// counts would need to exceed 2^63 before this breaks.
class WindowedRate {
 public:
  explicit WindowedRate(Duration window) : window_(window) {}

  void record(TimePoint t, std::int64_t bytes) {
    samples_.push_back({t, bytes});
    total_bytes_ += bytes;
    evict(t);
  }

  /// Average rate in bits per second over the trailing window, or nullopt
  /// if the window holds no data.
  [[nodiscard]] std::optional<double> rate_bps(TimePoint now) {
    evict(now);
    if (samples_.empty()) return std::nullopt;
    // Measure over the full window so quiet periods drag the rate down —
    // a stalled channel must read as a *low* rate, not as "no data".
    const double secs = window_.to_seconds();
    if (secs <= 0.0) return std::nullopt;
    return static_cast<double>(total_bytes_) * 8.0 / secs;
  }

  [[nodiscard]] Duration window() const { return window_; }
  [[nodiscard]] std::size_t sample_count() const { return samples_.size(); }

 private:
  struct Sample {
    TimePoint t;
    std::int64_t bytes;
  };
  void evict(TimePoint now) {
    const TimePoint cutoff = now - window_;
    while (!samples_.empty() && samples_.front().t < cutoff) {
      total_bytes_ -= samples_.front().bytes;
      samples_.pop_front();
    }
  }

  Duration window_;
  std::deque<Sample> samples_;
  std::int64_t total_bytes_ = 0;
};

/// Mean of real-valued samples over a trailing time window.
///
/// Hot-path properties (PR 3):
///  * max() is O(1) via a parallel monotonic deque (the same structure
///    WindowedMax uses) instead of rescanning every sample — BBR's
///    bandwidth filter calls max() on every delivery-rate sample. The
///    deque is lazy: callers that never ask for max() (the Fortune
///    Teller's dequeue-interval mean) pay one predicted branch per
///    record, not deque maintenance; the first max() call rebuilds the
///    deque from the live window and flips it on for good.
///  * The running `sum_` is a double, and the add-on-record /
///    subtract-on-evict pairs leave a residue of roughly one ulp per
///    cycle. Left alone for millions of cycles the residue is unbounded;
///    we re-add the window exactly every kResumPeriod records, which
///    bounds the relative error near machine epsilon at all times (the
///    long-run drift test pins recorded-vs-brute-force to 1e-9).
///
/// Timestamps must be non-decreasing across record() calls — true for
/// every caller (they pass simulation "now"), asserted nowhere for speed.
class WindowedMean {
 public:
  explicit WindowedMean(Duration window) : window_(window) {}

  void record(TimePoint t, double value) {
    samples_.push_back({t, value});
    sum_ += value;
    if (max_live_) push_max(t, value);
    evict(t);
    if (++records_since_resum_ >= kResumPeriod) resum();
  }

  [[nodiscard]] std::optional<double> mean(TimePoint now) {
    evict(now);
    if (samples_.empty()) return std::nullopt;
    return sum_ / static_cast<double>(samples_.size());
  }

  [[nodiscard]] std::optional<double> max(TimePoint now) {
    if (!max_live_) {
      max_live_ = true;
      for (const auto& s : samples_) push_max(s.t, s.value);
    }
    evict(now);
    if (samples_.empty()) return std::nullopt;
    return max_deque_.front().value;
  }

  [[nodiscard]] std::size_t sample_count() const { return samples_.size(); }

 private:
  struct Sample {
    TimePoint t;
    double value;
  };
  /// Exact-resummation cadence. Resumming a 40 ms window (a few dozen
  /// samples) every 4096 records costs well under 1% of record() time.
  static constexpr std::uint32_t kResumPeriod = 4096;

  void push_max(TimePoint t, double value) {
    while (!max_deque_.empty() && max_deque_.back().value <= value) {
      max_deque_.pop_back();
    }
    max_deque_.push_back({t, value});
  }

  void evict(TimePoint now) {
    const TimePoint cutoff = now - window_;
    while (!samples_.empty() && samples_.front().t < cutoff) {
      sum_ -= samples_.front().value;
      samples_.pop_front();
    }
    while (!max_deque_.empty() && max_deque_.front().t < cutoff) {
      max_deque_.pop_front();
    }
  }

  void resum() {
    records_since_resum_ = 0;
    double s = 0.0;
    for (const auto& x : samples_) s += x.value;
    sum_ = s;
  }

  Duration window_;
  std::deque<Sample> samples_;
  std::deque<Sample> max_deque_;  // monotonic non-increasing by value
  double sum_ = 0.0;
  std::uint32_t records_since_resum_ = 0;
  bool max_live_ = false;  // deque maintained only once max() is used
};

/// Maximum over a trailing time window (monotonic-deque implementation).
/// Used for maxBurstSize in the Fortune Teller's Eq. 1 adjustment.
class WindowedMax {
 public:
  explicit WindowedMax(Duration window) : window_(window) {}

  void record(TimePoint t, double value) {
    while (!deque_.empty() && deque_.back().value <= value) deque_.pop_back();
    deque_.push_back({t, value});
    evict(t);
  }

  [[nodiscard]] double max(TimePoint now, double fallback = 0.0) {
    evict(now);
    return deque_.empty() ? fallback : deque_.front().value;
  }

 private:
  struct Sample {
    TimePoint t;
    double value;
  };
  void evict(TimePoint now) {
    const TimePoint cutoff = now - window_;
    while (!deque_.empty() && deque_.front().t < cutoff) deque_.pop_front();
  }

  Duration window_;
  std::deque<Sample> deque_;
};

/// Minimum over a trailing time window (e.g. min-RTT filters in CCAs).
class WindowedMin {
 public:
  explicit WindowedMin(Duration window) : window_(window) {}

  void record(TimePoint t, double value) {
    while (!deque_.empty() && deque_.back().value >= value) deque_.pop_back();
    deque_.push_back({t, value});
    evict(t);
  }

  [[nodiscard]] std::optional<double> min(TimePoint now) {
    evict(now);
    if (deque_.empty()) return std::nullopt;
    return deque_.front().value;
  }

 private:
  struct Sample {
    TimePoint t;
    double value;
  };
  void evict(TimePoint now) {
    const TimePoint cutoff = now - window_;
    while (!deque_.empty() && deque_.front().t < cutoff) deque_.pop_front();
  }

  Duration window_;
  std::deque<Sample> deque_;
};

/// A trailing-window bag of samples supporting uniform random draws.
/// This backs the paper's delta-distribution sampling (§5.2): feedback
/// packets are delayed by a value drawn from the recent delay-delta
/// distribution, giving distributional rather than per-packet equivalence.
class WindowedSampler {
 public:
  explicit WindowedSampler(Duration window) : window_(window) {}

  void record(TimePoint t, double value) {
    samples_.push_back({t, value});
    evict(t);
  }

  /// Uniformly draw one of the samples currently inside the window.
  [[nodiscard]] std::optional<double> sample(TimePoint now, sim::Rng& rng) {
    evict(now);
    if (samples_.empty()) return std::nullopt;
    const auto idx = rng.uniform_int(static_cast<std::uint32_t>(samples_.size()));
    return samples_[idx].value;
  }

  [[nodiscard]] std::optional<double> mean(TimePoint now) {
    evict(now);
    if (samples_.empty()) return std::nullopt;
    double s = 0.0;
    for (const auto& x : samples_) s += x.value;
    return s / static_cast<double>(samples_.size());
  }

  [[nodiscard]] std::size_t sample_count() const { return samples_.size(); }

 private:
  struct Sample {
    TimePoint t;
    double value;
  };
  void evict(TimePoint now) {
    const TimePoint cutoff = now - window_;
    while (!samples_.empty() && samples_.front().t < cutoff) samples_.pop_front();
  }

  Duration window_;
  std::deque<Sample> samples_;
};

/// Classic exponentially-weighted moving average.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void record(double value) {
    if (!has_value_) {
      value_ = value;
      has_value_ = true;
    } else {
      value_ = alpha_ * value + (1.0 - alpha_) * value_;
    }
  }

  [[nodiscard]] bool has_value() const { return has_value_; }
  [[nodiscard]] double value() const { return value_; }
  void reset() { has_value_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool has_value_ = false;
};

}  // namespace zhuge::stats
