#pragma once
// Offline sample accumulators: percentiles, tail ratios, CDF export,
// histograms. Used by the benchmark harness to print the paper's rows.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

namespace zhuge::stats {

/// Accumulates double samples; answers quantile / tail-ratio queries.
/// Sorting is lazy and cached.
class Distribution {
 public:
  void add(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  [[nodiscard]] double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double v : samples_) s += v;
    return s / static_cast<double>(samples_.size());
  }

  [[nodiscard]] double stddev() const {
    if (samples_.size() < 2) return 0.0;
    const double m = mean();
    double s = 0.0;
    for (double v : samples_) s += (v - m) * (v - m);
    return std::sqrt(s / static_cast<double>(samples_.size() - 1));
  }

  /// Quantile by linear interpolation; q in [0, 1].
  [[nodiscard]] double quantile(double q) const {
    if (samples_.empty()) return 0.0;
    ensure_sorted();
    q = std::clamp(q, 0.0, 1.0);
    const double pos = q * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  [[nodiscard]] double min() const {
    ensure_sorted();
    return samples_.empty() ? 0.0 : samples_.front();
  }
  [[nodiscard]] double max() const {
    ensure_sorted();
    return samples_.empty() ? 0.0 : samples_.back();
  }

  /// Fraction of samples strictly above `threshold` (the paper's tail
  /// ratios, e.g. P(RTT > 200 ms)).
  [[nodiscard]] double ratio_above(double threshold) const {
    if (samples_.empty()) return 0.0;
    ensure_sorted();
    const auto it = std::upper_bound(samples_.begin(), samples_.end(), threshold);
    return static_cast<double>(samples_.end() - it) / static_cast<double>(samples_.size());
  }

  /// Fraction of samples strictly below `threshold` (e.g. P(fps < 10)).
  [[nodiscard]] double ratio_below(double threshold) const {
    if (samples_.empty()) return 0.0;
    ensure_sorted();
    const auto it = std::lower_bound(samples_.begin(), samples_.end(), threshold);
    return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
  }

  /// Complementary CDF value at x: P(sample > x).
  [[nodiscard]] double ccdf(double x) const { return ratio_above(x); }

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-bin 2-D histogram used for the Fig. 19 estimated-vs-real heatmap.
class Heatmap2D {
 public:
  /// Log2-spaced bins from `lo` to `hi` on both axes (values clamped).
  Heatmap2D(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), bins_(bins), cells_(bins * bins, 0) {}

  void add(double x, double y) {
    ++cells_[bin(y) * bins_ + bin(x)];
  }

  [[nodiscard]] std::size_t bin(double v) const {
    const double c = std::clamp(v, lo_, hi_);
    const double f = std::log2(c / lo_) / std::log2(hi_ / lo_);
    return std::min(bins_ - 1, static_cast<std::size_t>(f * static_cast<double>(bins_)));
  }

  /// Lower edge of bin i (log2 spacing).
  [[nodiscard]] double bin_edge(std::size_t i) const {
    return lo_ * std::pow(hi_ / lo_, static_cast<double>(i) / static_cast<double>(bins_));
  }

  [[nodiscard]] std::size_t bins() const { return bins_; }
  [[nodiscard]] std::uint64_t cell(std::size_t xi, std::size_t yi) const {
    return cells_[yi * bins_ + xi];
  }

  /// Row-normalised cell value (the paper normalises per real-delay row).
  [[nodiscard]] double cell_row_normalised(std::size_t xi, std::size_t yi) const {
    std::uint64_t row = 0;
    for (std::size_t x = 0; x < bins_; ++x) row += cells_[yi * bins_ + x];
    if (row == 0) return 0.0;
    return static_cast<double>(cells_[yi * bins_ + xi]) / static_cast<double>(row);
  }

 private:
  double lo_, hi_;
  std::size_t bins_;
  std::vector<std::uint64_t> cells_;
};

}  // namespace zhuge::stats
