#pragma once
// CoDel AQM (Nichols & Jacobson, RFC 8289). Head-drop, sojourn-time based:
// when packets have waited above `target` for longer than `interval`, drop
// from the head at an increasing rate (interval / sqrt(count)).

#include <cmath>
#include <cstdint>
#include <deque>

#include "queue/qdisc.hpp"

namespace zhuge::queue {

/// Shared CoDel control-law state, reused per-flow by FqCoDel.
struct CoDelState {
  bool dropping = false;
  std::uint32_t count = 0;        ///< drops since entering dropping state
  std::uint32_t last_count = 0;
  TimePoint first_above_time{};   ///< when sojourn first exceeded target
  bool has_first_above = false;
  TimePoint drop_next{};          ///< next scheduled drop while dropping
};

/// Parameters from RFC 8289 defaults.
struct CoDelConfig {
  Duration target = Duration::millis(5);
  Duration interval = Duration::millis(100);
  std::int64_t limit_bytes = 5'000'000;  ///< hard tail-drop backstop
  std::uint32_t mtu = 1514;
};

namespace detail {

/// control_law: next drop time shortens with sqrt(count).
inline TimePoint codel_control_law(TimePoint t, Duration interval, std::uint32_t count) {
  const double scaled = interval.to_seconds() / std::sqrt(static_cast<double>(count == 0 ? 1 : count));
  return t + Duration::from_seconds(scaled);
}

}  // namespace detail

/// Standalone CoDel qdisc over a single FIFO.
class CoDel : public Qdisc {
 public:
  explicit CoDel(CoDelConfig cfg = {}) : Qdisc("queue.codel"), cfg_(cfg) {}

  bool enqueue(Packet p, TimePoint now) override {
    if (bytes_ + p.size_bytes > cfg_.limit_bytes) {
      ++drops_;
      obs_dropped(p, now, "tail_drop");
      return false;
    }
    bytes_ += p.size_bytes;
    if (queue_.empty()) head_since_ = now;
    queue_.push_back(Entry{std::move(p), now});
    obs_enqueued(queue_.back().packet, now);
    return true;
  }

  std::optional<Packet> dequeue(TimePoint now) override {
    while (true) {
      if (queue_.empty()) {
        state_.dropping = false;
        state_.has_first_above = false;
        head_since_ = std::nullopt;
        return std::nullopt;
      }
      Entry e = std::move(queue_.front());
      queue_.pop_front();
      bytes_ -= e.packet.size_bytes;
      head_since_ = queue_.empty() ? std::optional<TimePoint>{} : now;

      const Duration sojourn = now - e.enqueue_time;
      const bool ok_to_deliver = decide(now, sojourn);
      if (ok_to_deliver) {
        obs_dequeued(e.packet, now, sojourn);
        return std::move(e.packet);
      }
      ++drops_;  // head drop; loop to examine the next packet
      obs_dropped(e.packet, now, "head_drop");
    }
  }

  [[nodiscard]] const Packet* peek() const override {
    return queue_.empty() ? nullptr : &queue_.front().packet;
  }
  [[nodiscard]] std::int64_t byte_count() const override { return bytes_; }
  [[nodiscard]] std::size_t packet_count() const override { return queue_.size(); }
  [[nodiscard]] std::optional<TimePoint> head_since() const override { return head_since_; }

 private:
  struct Entry {
    Packet packet;
    TimePoint enqueue_time;
  };

  /// RFC 8289 dequeue decision. Returns true to deliver, false to drop.
  bool decide(TimePoint now, Duration sojourn) {
    const bool below = sojourn < cfg_.target || bytes_ <= cfg_.mtu;
    if (below) {
      state_.has_first_above = false;
      state_.dropping = false;
      return true;
    }
    if (!state_.dropping) {
      if (!state_.has_first_above) {
        state_.first_above_time = now + cfg_.interval;
        state_.has_first_above = true;
        return true;
      }
      if (now < state_.first_above_time) return true;
      // Enter dropping state; drop this packet.
      state_.dropping = true;
      const std::uint32_t delta = state_.count - state_.last_count;
      state_.count = (delta > 1 && now - state_.drop_next < cfg_.interval * 16)
                         ? delta
                         : 1;
      state_.last_count = state_.count;
      state_.drop_next = detail::codel_control_law(now, cfg_.interval, state_.count);
      return false;
    }
    // In dropping state: drop whenever we pass drop_next.
    if (now >= state_.drop_next) {
      ++state_.count;
      state_.drop_next = detail::codel_control_law(state_.drop_next, cfg_.interval, state_.count);
      return false;
    }
    return true;
  }

  CoDelConfig cfg_;
  CoDelState state_;
  std::deque<Entry> queue_;
  std::int64_t bytes_ = 0;
  std::optional<TimePoint> head_since_;
};

}  // namespace zhuge::queue
