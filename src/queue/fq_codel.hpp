#pragma once
// FQ-CoDel (RFC 8290): deficit-round-robin over hashed flow sub-queues,
// each governed by CoDel. This is the Linux/systemd default qdisc the paper
// calls out: Zhuge must read per-flow queue state here, so the per-flow
// Qdisc views are overridden.

#include <cmath>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <vector>

#include "queue/codel.hpp"
#include "queue/qdisc.hpp"

namespace zhuge::queue {

/// Deficit-round-robin fair queue with per-flow CoDel.
class FqCoDel : public Qdisc {
 public:
  struct Config {
    CoDelConfig codel{};
    std::uint32_t quantum = 1514;       ///< DRR quantum (bytes)
    std::int64_t total_limit_bytes = 5'000'000;
  };

  FqCoDel() : FqCoDel(Config{}) {}
  explicit FqCoDel(Config cfg) : Qdisc("queue.fq_codel"), cfg_(cfg) {}

  bool enqueue(Packet p, TimePoint now) override {
    if (total_bytes_ + p.size_bytes > cfg_.total_limit_bytes) {
      ++drops_;
      obs_dropped(p, now, "tail_drop");
      return false;
    }
    SubQueue& q = flow_queue(p.flow);
    total_bytes_ += p.size_bytes;
    q.bytes += p.size_bytes;
    if (q.entries.empty()) q.head_since = now;
    q.entries.push_back({std::move(p), now});
    obs_enqueued(q.entries.back().packet, now);
    if (!q.active) {
      q.active = true;
      q.deficit = cfg_.quantum;
      new_flows_.push_back(&q);
    }
    return true;
  }

  std::optional<Packet> dequeue(TimePoint now) override {
    while (true) {
      SubQueue* q = pick_flow();
      if (q == nullptr) return std::nullopt;
      if (q->entries.empty()) {
        // Flow drained: retire it from the schedule.
        q->active = false;
        pop_current();
        continue;
      }
      if (q->deficit <= 0) {
        q->deficit += static_cast<std::int64_t>(cfg_.quantum);
        rotate_current_to_old();
        continue;
      }
      Entry e = std::move(q->entries.front());
      q->entries.pop_front();
      q->bytes -= e.packet.size_bytes;
      total_bytes_ -= e.packet.size_bytes;
      q->head_since = q->entries.empty() ? std::optional<TimePoint>{} : now;

      const Duration sojourn = now - e.enqueue_time;
      if (!codel_decide(*q, now, sojourn)) {
        ++drops_;
        obs_dropped(e.packet, now, "head_drop");
        continue;  // head drop inside this flow; try again
      }
      q->deficit -= static_cast<std::int64_t>(e.packet.size_bytes);
      obs_dequeued(e.packet, now, sojourn);
      return std::move(e.packet);
    }
  }

  [[nodiscard]] const Packet* peek() const override {
    const SubQueue* q = pick_flow_const();
    if (q == nullptr || q->entries.empty()) return nullptr;
    return &q->entries.front().packet;
  }

  [[nodiscard]] std::int64_t byte_count() const override { return total_bytes_; }
  [[nodiscard]] std::size_t packet_count() const override {
    std::size_t n = 0;
    for (const auto& [id, q] : queues_) n += q.entries.size();
    return n;
  }
  [[nodiscard]] std::optional<TimePoint> head_since() const override {
    const SubQueue* q = pick_flow_const();
    return q == nullptr ? std::nullopt : q->head_since;
  }

  [[nodiscard]] std::int64_t byte_count_flow(const FlowId& f) const override {
    const auto it = queues_.find(f);
    return it == queues_.end() ? 0 : it->second.bytes;
  }
  [[nodiscard]] std::optional<TimePoint> head_since_flow(const FlowId& f) const override {
    const auto it = queues_.find(f);
    return it == queues_.end() ? std::nullopt : it->second.head_since;
  }

  [[nodiscard]] std::size_t flow_count() const { return queues_.size(); }

 private:
  struct Entry {
    Packet packet;
    TimePoint enqueue_time;
  };
  struct SubQueue {
    std::deque<Entry> entries;
    std::int64_t bytes = 0;
    std::int64_t deficit = 0;
    bool active = false;
    std::optional<TimePoint> head_since;
    CoDelState codel;
  };

  SubQueue& flow_queue(const FlowId& f) { return queues_[f]; }

  /// Current flow to serve: new flows first, then old flows (RFC 8290).
  SubQueue* pick_flow() {
    if (!new_flows_.empty()) return new_flows_.front();
    if (!old_flows_.empty()) return old_flows_.front();
    return nullptr;
  }
  [[nodiscard]] const SubQueue* pick_flow_const() const {
    if (!new_flows_.empty()) return new_flows_.front();
    if (!old_flows_.empty()) return old_flows_.front();
    return nullptr;
  }
  void pop_current() {
    if (!new_flows_.empty()) {
      new_flows_.pop_front();
    } else if (!old_flows_.empty()) {
      old_flows_.pop_front();
    }
  }
  void rotate_current_to_old() {
    if (!new_flows_.empty()) {
      old_flows_.push_back(new_flows_.front());
      new_flows_.pop_front();
    } else if (!old_flows_.empty()) {
      old_flows_.push_back(old_flows_.front());
      old_flows_.pop_front();
    }
  }

  /// Per-flow CoDel decision (same control law as the standalone qdisc).
  bool codel_decide(SubQueue& q, TimePoint now, Duration sojourn) {
    CoDelState& s = q.codel;
    const bool below = sojourn < cfg_.codel.target || q.bytes <= cfg_.codel.mtu;
    if (below) {
      s.has_first_above = false;
      s.dropping = false;
      return true;
    }
    if (!s.dropping) {
      if (!s.has_first_above) {
        s.first_above_time = now + cfg_.codel.interval;
        s.has_first_above = true;
        return true;
      }
      if (now < s.first_above_time) return true;
      s.dropping = true;
      const std::uint32_t delta = s.count - s.last_count;
      s.count = (delta > 1 && now - s.drop_next < cfg_.codel.interval * 16) ? delta : 1;
      s.last_count = s.count;
      s.drop_next = detail::codel_control_law(now, cfg_.codel.interval, s.count);
      return false;
    }
    if (now >= s.drop_next) {
      ++s.count;
      s.drop_next = detail::codel_control_law(s.drop_next, cfg_.codel.interval, s.count);
      return false;
    }
    return true;
  }

  Config cfg_;
  // Ordered by flow id so per-flow state walks are hash-independent (DRR
  // service order itself lives in new_flows_/old_flows_, not here).
  std::map<FlowId, SubQueue> queues_;
  std::deque<SubQueue*> new_flows_;
  std::deque<SubQueue*> old_flows_;
  std::int64_t total_bytes_ = 0;
};

}  // namespace zhuge::queue
