#pragma once
// Queue-discipline interface for the AP downlink queue.
//
// Besides enqueue/dequeue, a Qdisc exposes the two instantaneous signals the
// Zhuge Fortune Teller reads (§4.1):
//   * byte_count()  -> cur(qSize)
//   * head_since()  -> start of the current head packet's head-of-queue
//                      sojourn, i.e. cur(qFrontWaitTime) = now - head_since()
// Per-flow variants exist because real qdiscs are often not FIFO (the paper
// notes systemd defaults to fq_codel); Zhuge must observe the RTC flow's own
// sub-queue.

#include <cstdint>
#include <optional>
#include <string>

#include "net/packet.hpp"
#include "obs/invariants.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/time.hpp"

namespace zhuge::queue {

using net::FlowId;
using net::Packet;
using sim::Duration;
using sim::TimePoint;

/// Abstract queue discipline.
class Qdisc {
 public:
  virtual ~Qdisc() = default;

  /// Offer a packet. Returns false when the packet was dropped at enqueue
  /// time (tail drop); CoDel-style head drops happen inside dequeue().
  virtual bool enqueue(Packet p, TimePoint now) = 0;

  /// Remove the next packet chosen by the discipline, or nullopt if empty.
  virtual std::optional<Packet> dequeue(TimePoint now) = 0;

  /// The packet that dequeue() would return next (nullptr if empty).
  [[nodiscard]] virtual const Packet* peek() const = 0;

  [[nodiscard]] virtual std::int64_t byte_count() const = 0;
  [[nodiscard]] virtual std::size_t packet_count() const = 0;

  /// Instant the current head packet became head, or nullopt if empty.
  [[nodiscard]] virtual std::optional<TimePoint> head_since() const = 0;

  /// Per-flow views; defaults fall back to whole-queue state. fq_codel
  /// overrides these to expose the flow's own sub-queue.
  [[nodiscard]] virtual std::int64_t byte_count_flow(const FlowId&) const {
    return byte_count();
  }
  [[nodiscard]] virtual std::optional<TimePoint> head_since_flow(const FlowId&) const {
    return head_since();
  }

  /// Total packets dropped by this discipline so far (tail + AQM drops).
  [[nodiscard]] std::uint64_t drops() const { return drops_; }

 protected:
  /// `component` labels this queue's observability output (trace component
  /// and metric-name prefix), e.g. "queue.fifo".
  explicit Qdisc(const char* component = "queue")
      : obs_component_(component),
        obs_enqueued_name_(std::string(component) + ".enqueued_packets"),
        obs_dequeued_name_(std::string(component) + ".dequeued_packets"),
        obs_dropped_name_(std::string(component) + ".dropped_packets"),
        obs_sojourn_name_(std::string(component) + ".sojourn_us") {}

  /// Hooks the concrete disciplines call from enqueue()/dequeue(). Each is
  /// one cold-bool branch when observability is off.
  void obs_enqueued(const Packet& p, TimePoint now) {
    ZHUGE_METRIC_INC(obs_enqueued_name_);
    ZHUGE_TRACE(now, obs_component_, "enqueue", {"bytes", double(p.size_bytes)},
                {"depth_bytes", double(byte_count())},
                {"depth_pkts", double(packet_count())});
  }

  /// `kind` distinguishes tail drops from AQM head drops in the trace.
  void obs_dropped(const Packet& p, TimePoint now, const char* kind) {
    ZHUGE_METRIC_INC(obs_dropped_name_);
    ZHUGE_TRACE(now, obs_component_, kind, {"bytes", double(p.size_bytes)},
                {"depth_bytes", double(byte_count())});
  }

  /// Mutable Packet: besides metrics/trace output, this is where the
  /// latency-attribution span records the AP-qdisc-egress boundary.
  void obs_dequeued(Packet& p, TimePoint now, Duration sojourn) {
    ZHUGE_SPAN_STAMP(p.span.ap_dequeue_ns, now);
    ZHUGE_INVARIANT(now, "queue.nonnegative_bytes", byte_count() >= 0,
                    "qdisc byte accounting went negative");
    ZHUGE_METRIC_INC(obs_dequeued_name_);
    ZHUGE_METRIC_OBSERVE(obs_sojourn_name_, sojourn.to_micros());
    ZHUGE_TRACE(now, obs_component_, "dequeue", {"bytes", double(p.size_bytes)},
                {"sojourn_us", sojourn.to_micros()},
                {"depth_bytes", double(byte_count())});
  }

  std::uint64_t drops_ = 0;

 private:
  const char* obs_component_;
  std::string obs_enqueued_name_;
  std::string obs_dequeued_name_;
  std::string obs_dropped_name_;
  std::string obs_sojourn_name_;
};

}  // namespace zhuge::queue
