#pragma once
// Drop-tail FIFO — the paper's baseline queue discipline.

#include <deque>

#include "queue/qdisc.hpp"

namespace zhuge::queue {

/// Byte-bounded drop-tail FIFO.
class DropTailFifo : public Qdisc {
 public:
  /// `limit_bytes` < 0 means unbounded (useful in unit tests).
  explicit DropTailFifo(std::int64_t limit_bytes)
      : Qdisc("queue.fifo"), limit_bytes_(limit_bytes) {}

  bool enqueue(Packet p, TimePoint now) override {
    if (limit_bytes_ >= 0 && bytes_ + p.size_bytes > limit_bytes_) {
      ++drops_;
      obs_dropped(p, now, "tail_drop");
      return false;
    }
    bytes_ += p.size_bytes;
    if (queue_.empty()) head_since_ = now;
    enqueue_times_.push_back(now);
    queue_.push_back(std::move(p));
    obs_enqueued(queue_.back(), now);
    return true;
  }

  std::optional<Packet> dequeue(TimePoint now) override {
    if (queue_.empty()) return std::nullopt;
    Packet p = std::move(queue_.front());
    queue_.pop_front();
    const TimePoint enq = enqueue_times_.front();
    enqueue_times_.pop_front();
    bytes_ -= p.size_bytes;
    head_since_ = queue_.empty() ? std::optional<TimePoint>{} : now;
    obs_dequeued(p, now, now - enq);
    return p;
  }

  [[nodiscard]] const Packet* peek() const override {
    return queue_.empty() ? nullptr : &queue_.front();
  }
  [[nodiscard]] std::int64_t byte_count() const override { return bytes_; }
  [[nodiscard]] std::size_t packet_count() const override { return queue_.size(); }
  [[nodiscard]] std::optional<TimePoint> head_since() const override { return head_since_; }

 private:
  std::int64_t limit_bytes_;
  std::int64_t bytes_ = 0;
  std::deque<Packet> queue_;
  std::deque<TimePoint> enqueue_times_;  ///< parallel to queue_, for sojourn
  std::optional<TimePoint> head_since_;
};

}  // namespace zhuge::queue
