#pragma once
// FastAck (Bhartia et al., IMC 2017): a WiFi-AP optimisation that forges
// the TCP ACK as soon as the 802.11 (link-layer) ACK confirms delivery to
// the client, cutting the uplink wireless hop (segment iii of Fig. 1) out
// of the control loop. Unlike Zhuge it still waits for the packet to cross
// the downlink queue and the downlink wireless hop — which is why it helps
// less when the queue itself is the problem.
//
// The AP keeps a minimal receiver shadow (contiguous prefix) per flow and
// drops the client's own pure ACKs to avoid duplicate-ACK confusion.

#include <cstdint>
#include <map>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace zhuge::baseline {

using net::Packet;
using sim::TimePoint;

/// Per-flow TCP ACK counterfeiter.
class FastAck {
 public:
  struct Config {
    std::uint32_t ack_bytes = 40;
  };

  explicit FastAck(Config cfg) : cfg_(cfg) {}

  /// Called when a data packet of the flow is confirmed delivered over the
  /// air. Returns a forged ACK to send upstream, or nullopt when the
  /// delivery did not advance the contiguous prefix (no new ACK needed —
  /// real FastAck piggybacks on the block-ACK the same way).
  [[nodiscard]] std::optional<Packet> on_wireless_delivered(
      const Packet& data, TimePoint now, std::uint64_t ack_uid) {
    if (!data.is_tcp()) return std::nullopt;
    const net::TcpHeader& h = data.tcp();

    // Shadow receiver: merge [seq, end_seq) and advance the prefix.
    intervals_[h.seq] = std::max(intervals_[h.seq], h.end_seq);
    while (true) {
      auto it = intervals_.find(rcv_nxt_);
      if (it == intervals_.end()) {
        auto lower = intervals_.upper_bound(rcv_nxt_);
        if (lower != intervals_.begin()) {
          auto prev = std::prev(lower);
          if (prev->second > rcv_nxt_) {
            rcv_nxt_ = prev->second;
            continue;
          }
        }
        break;
      }
      rcv_nxt_ = std::max(rcv_nxt_, it->second);
    }
    // Garbage-collect merged intervals below the prefix.
    while (!intervals_.empty() && intervals_.begin()->second <= rcv_nxt_) {
      intervals_.erase(intervals_.begin());
    }
    max_seen_ = std::max(max_seen_, h.end_seq);

    Packet ack;
    ack.uid = ack_uid;
    ack.flow = data.flow.reversed();
    ack.size_bytes = cfg_.ack_bytes;
    ack.sent_time = now;
    net::TcpHeader ah;
    ah.is_ack = true;
    ah.ack = rcv_nxt_;
    ah.sack_upto = max_seen_;
    ah.ts_echo = h.ts_val;
    ah.abc_echo = h.abc_mark;
    ack.header = ah;
    ++forged_;
    return ack;
  }

  /// The client's own pure ACKs for this flow are suppressed.
  [[nodiscard]] static bool should_drop_uplink(const Packet& p) {
    return p.is_tcp() && p.tcp().is_ack;
  }

  [[nodiscard]] std::uint64_t forged() const { return forged_; }

 private:
  Config cfg_;
  std::map<std::uint64_t, std::uint64_t> intervals_;  ///< seq -> end_seq
  std::uint64_t rcv_nxt_ = 0;
  std::uint64_t max_seen_ = 0;
  std::uint64_t forged_ = 0;
};

}  // namespace zhuge::baseline
