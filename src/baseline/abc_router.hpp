#pragma once
// ABC router side (Goyal et al., NSDI 2020): computes a per-flow target
// rate from the measured link capacity and queuing delay, and stamps each
// downlink data packet accelerate/brake so that the *fraction* of
// accelerates equals target_rate / current_rate. Unlike Zhuge this needs
// sender cooperation (the AbcSender CCA) — the deployability contrast the
// paper draws in §2.3.

#include <algorithm>

#include "net/packet.hpp"
#include "sim/time.hpp"
#include "stats/windowed.hpp"

namespace zhuge::baseline {

using sim::Duration;
using sim::TimePoint;

/// Per-link ABC marking engine.
class AbcRouter {
 public:
  struct Config {
    double eta = 0.95;                      ///< capacity utilisation target
    Duration delay_target = Duration::millis(50);  ///< delta in f = eta*mu - q/delta
    Duration rate_window = Duration::millis(200);
  };

  AbcRouter() : AbcRouter(Config{}) {}
  explicit AbcRouter(Config cfg)
      : cfg_(cfg), dequeue_rate_(cfg.rate_window), arrival_rate_(cfg.rate_window) {}

  /// Record a departure from the bottleneck queue (capacity estimate mu).
  void on_dequeue(std::int64_t bytes, TimePoint now) {
    dequeue_rate_.record(now, bytes);
  }

  /// Mark an arriving downlink data packet given the current queue state.
  /// `queue_delay` is the instantaneous queuing delay estimate
  /// (queue bytes / capacity).
  [[nodiscard]] net::AbcMark mark(std::int64_t packet_bytes, Duration queue_delay,
                                  TimePoint now) {
    arrival_rate_.record(now, packet_bytes);
    const double mu = dequeue_rate_.rate_bps(now).value_or(1e6);
    const double cr = arrival_rate_.rate_bps(now).value_or(mu);

    // ABC's control law: target rate shrinks with standing queue delay.
    const double tr = std::max(
        0.0, cfg_.eta * mu - mu * (queue_delay.to_seconds() /
                                   (2.0 * cfg_.delay_target.to_seconds())));

    // Token counter marks an `tr/cr` fraction of packets accelerate.
    token_ += tr / std::max(cr, 1e3);
    if (token_ >= 1.0) {
      token_ -= 1.0;
      if (token_ > 2.0) token_ = 2.0;  // cap credit
      return net::AbcMark::kAccelerate;
    }
    return net::AbcMark::kBrake;
  }

 private:
  Config cfg_;
  stats::WindowedRate dequeue_rate_;
  stats::WindowedRate arrival_rate_;
  double token_ = 0.0;
};

}  // namespace zhuge::baseline
