#pragma once
// Deterministic pseudo-random numbers for simulations.
//
// A small PCG32 generator is used instead of <random> engines so that the
// stream is identical across standard-library implementations — simulation
// results must be bit-reproducible from a seed on any platform.

#include <cstdint>
#include <cmath>
#include <numbers>

namespace zhuge::sim {

/// PCG32 (Melissa O'Neill) — fast, small-state, statistically solid PRNG.
/// Deterministic for a given (seed, stream) pair.
class Rng {
 public:
  /// Seed the generator. Distinct `stream` values yield independent
  /// sequences from the same seed (used for per-component substreams).
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL, std::uint64_t stream = 1) {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    next_u32();
    state_ += seed;
    next_u32();
  }

  /// Next raw 32-bit value.
  std::uint32_t next_u32() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u32()) * (1.0 / 4294967296.0);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint32_t uniform_int(std::uint32_t n) {
    // Lemire's nearly-divisionless bounded integers.
    std::uint64_t m = static_cast<std::uint64_t>(next_u32()) * n;
    auto lo = static_cast<std::uint32_t>(m);
    if (lo < n) {
      const std::uint32_t threshold = (0u - n) % n;
      while (lo < threshold) {
        m = static_cast<std::uint64_t>(next_u32()) * n;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    double u = uniform();
    if (u <= 0.0) u = 1e-12;
    return -mean * std::log(u);
  }

  /// Standard normal via Box–Muller (one value per call; simple > fast here).
  double normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = uniform();
    if (u1 <= 0.0) u1 = 1e-12;
    const double u2 = uniform();
    const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
    return mean + stddev * z;
  }

  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

  /// Pareto with scale x_m (> 0) and shape alpha (> 0). Heavy-tailed; used
  /// for deep-fade depths in the wireless channel model.
  double pareto(double x_m, double alpha) {
    double u = uniform();
    if (u <= 0.0) u = 1e-12;
    return x_m / std::pow(u, 1.0 / alpha);
  }

 private:
  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 0;
};

}  // namespace zhuge::sim
