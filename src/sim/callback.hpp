#pragma once
// Move-only one-shot callable for simulator events.
//
// std::function is the wrong tool for the event hot path: libstdc++'s
// small-object buffer is 16 bytes, and almost every closure in this
// codebase captures more than that (a link-delivery event owns the
// in-flight Packet, ~170 bytes), so the old event loop paid one heap
// allocation — and, via priority_queue::top()'s const ref, one heap
// *copy* — per event. Callback keeps a 224-byte inline buffer sized so
// that a {Simulator*, Packet} closure stays inline and an event-pool
// node lands on exactly 256 bytes. Callables that are larger than the
// buffer, over-aligned, or not nothrow-move-constructible fall back to
// a single heap allocation, preserving correctness for arbitrary
// captures.
//
// One-shot semantics on purpose: a simulator event fires exactly once,
// so operator() destroys the callable as it invokes it (one fused
// indirect call instead of separate invoke + destroy dispatches), and
// emplace() lets the scheduler construct the callable directly in a
// pool node with zero intermediate type-erased moves. Move-only because
// requiring copyability (as std::function does) would forbid closures
// that own move-only resources and silently double-buffer payloads.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace zhuge::sim {

/// Type-erased move-only `void()` callable with a large inline buffer.
/// Invocation consumes it: after operator() returns, the Callback is
/// empty. (If the callable throws, it is leaked, not double-destroyed —
/// simulator callbacks are noexcept in practice.)
class Callback {
 public:
  /// Inline capacity. Chosen so sizeof(Callback) == 240 and a pool node
  /// (callback + bookkeeping) is exactly 256 bytes; see simulator.hpp.
  static constexpr std::size_t kInlineSize = 224;

  Callback() = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, Callback> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  Callback(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    init(std::forward<F>(f));
  }

  Callback(Callback&& other) noexcept { steal(other); }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { reset(); }

  /// Destroy any held callable, then construct `f` in place — the
  /// zero-move path the scheduler uses to fill pool nodes.
  template <typename F>
    requires(std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  void emplace(F&& f) {
    reset();
    init(std::forward<F>(f));
  }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

  /// Invoke and consume: the callable is destroyed (heap fallback:
  /// freed) as part of the same indirect call, leaving *this empty.
  void operator()() {
    const InvokeFn inv = invoke_;
    invoke_ = nullptr;
    manage_ = nullptr;
    inv(buf_);
  }

  /// Destroy the held callable without invoking it (no-op if empty).
  /// Used to drop a cancelled event's payload eagerly.
  void reset() {
    if (manage_ != nullptr) {
      manage_(Op::kDestroy, buf_, nullptr);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

  /// True if callables of type Fn live in the inline buffer (exposed for
  /// the unit tests that pin the no-allocation property).
  template <typename Fn>
  [[nodiscard]] static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineSize &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

 private:
  enum class Op : std::uint8_t { kMoveTo, kDestroy };
  using InvokeFn = void (*)(void*);
  using ManageFn = void (*)(Op, void* src, void* dst);

  template <typename F>
  void init(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = [](void* buf) {
        Fn* self = std::launder(reinterpret_cast<Fn*>(buf));
        (*self)();
        self->~Fn();
      };
      manage_ = [](Op op, void* src, void* dst) {
        Fn* self = std::launder(reinterpret_cast<Fn*>(src));
        if (op == Op::kMoveTo) ::new (dst) Fn(std::move(*self));
        self->~Fn();
      };
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      invoke_ = [](void* buf) {
        Fn* heap = *std::launder(reinterpret_cast<Fn**>(buf));
        (*heap)();
        delete heap;
      };
      manage_ = [](Op op, void* src, void* dst) {
        Fn** self = std::launder(reinterpret_cast<Fn**>(src));
        if (op == Op::kMoveTo) {
          ::new (dst) Fn*(*self);  // transfer ownership of the heap object
        } else {
          delete *self;
        }
      };
    }
  }

  void steal(Callback& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_ != nullptr) {
      manage_(Op::kMoveTo, other.buf_, buf_);
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
    }
  }

  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
};

static_assert(sizeof(Callback) == 240, "keep pool nodes at 256 bytes");

}  // namespace zhuge::sim
