#pragma once
// Generic object pool with stable addresses and index handles.
//
// The event engine's per-event cost is dominated by how many bytes ride
// through the heap and the callback nodes. Components that park a payload
// (an in-flight Packet, a paced frame) across one or more timer hops used
// to move the whole object into each closure — a ~200-byte memcpy per hop
// for packets. A Pool lets them park the payload once and thread a 4-byte
// index through the closures instead: the event nodes stay tiny, the
// payload is touched exactly twice (move in, move out), and freed slots
// recycle their heap capacity (a Packet slot that once held a TWCC vector
// keeps that vector's buffer for the next tenant).
//
// Same recycling idiom as the Simulator's callback-node pool: deque-backed
// (addresses stable under growth) with a LIFO free list, so the pool grows
// to the peak concurrent-resident count and then stops allocating.
//
// Not thread-safe, like everything else in sim/: one pool per logical
// timeline.

#include <cstdint>
#include <deque>
#include <utility>

namespace zhuge::sim {

template <typename T>
class Pool {
 public:
  using Index = std::uint32_t;

  /// Move `v` into a free slot and return its handle.
  Index put(T&& v) {
    const Index idx = acquire();
    slots_[idx].value = std::move(v);
    return idx;
  }

  /// Access a resident object. The reference is stable until release().
  [[nodiscard]] T& at(Index idx) { return slots_[idx].value; }
  [[nodiscard]] const T& at(Index idx) const { return slots_[idx].value; }

  /// Move the object out and free the slot. The slot keeps the moved-from
  /// shell (and any heap capacity it still owns) for reuse.
  [[nodiscard]] T take(Index idx) {
    T out = std::move(slots_[idx].value);
    release(idx);
    return out;
  }

  /// Free a slot without taking the value (e.g. a dropped packet).
  void release(Index idx) {
    slots_[idx].next_free = free_head_;
    free_head_ = idx;
    ++free_count_;
  }

  /// Slots ever allocated == peak concurrent residency (footprint tests).
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  /// Objects currently resident.
  [[nodiscard]] std::size_t in_use() const { return slots_.size() - free_count_; }

 private:
  static constexpr Index kNil = 0xFFFFFFFFu;

  struct Slot {
    T value{};
    Index next_free = kNil;
  };

  Index acquire() {
    if (free_head_ != kNil) {
      const Index idx = free_head_;
      free_head_ = slots_[idx].next_free;
      --free_count_;
      return idx;
    }
    slots_.emplace_back();
    return static_cast<Index>(slots_.size() - 1);
  }

  std::deque<Slot> slots_;  // deque: addresses stable while the pool grows
  Index free_head_ = kNil;
  std::size_t free_count_ = 0;
};

}  // namespace zhuge::sim
