#pragma once
// Strongly-typed simulation time.
//
// All simulation time is kept as signed 64-bit nanoseconds. Two distinct
// types are used so that instants and intervals cannot be mixed up:
//   Duration  - a length of time (may be negative, e.g. a delay delta)
//   TimePoint - an instant measured from simulation start (t = 0)
//
// The usual arithmetic holds: TimePoint - TimePoint = Duration,
// TimePoint + Duration = TimePoint, Duration +- Duration = Duration.

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace zhuge::sim {

/// A length of simulation time in nanoseconds. Value-semantic, trivially
/// copyable, totally ordered. May be negative.
class Duration {
 public:
  constexpr Duration() = default;
  /// Construct from a raw nanosecond count. Prefer the named factories.
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] static constexpr Duration nanos(std::int64_t v) { return Duration{v}; }
  [[nodiscard]] static constexpr Duration micros(std::int64_t v) { return Duration{v * 1000}; }
  [[nodiscard]] static constexpr Duration millis(std::int64_t v) { return Duration{v * 1'000'000}; }
  [[nodiscard]] static constexpr Duration seconds(std::int64_t v) { return Duration{v * 1'000'000'000}; }
  /// Construct from fractional seconds (rounds toward zero).
  [[nodiscard]] static constexpr Duration from_seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e9)};
  }
  [[nodiscard]] static constexpr Duration from_millis(double ms) {
    return Duration{static_cast<std::int64_t>(ms * 1e6)};
  }
  /// The zero-length duration.
  [[nodiscard]] static constexpr Duration zero() { return Duration{0}; }
  /// A duration longer than any simulation will run.
  [[nodiscard]] static constexpr Duration infinite() {
    return Duration{std::numeric_limits<std::int64_t>::max() / 4};
  }

  [[nodiscard]] constexpr std::int64_t count_ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
  [[nodiscard]] constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double to_micros() const { return static_cast<double>(ns_) / 1e3; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
  constexpr Duration operator-() const { return Duration{-ns_}; }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }
  /// Scale. A single double overload avoids int/double ambiguity; values
  /// used in this codebase (< hours) are exactly representable.
  constexpr Duration operator*(double k) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(ns_) * k)};
  }
  constexpr Duration operator/(std::int64_t k) const { return Duration{ns_ / k}; }
  /// Ratio of two durations as a double; divisor must be nonzero.
  [[nodiscard]] constexpr double ratio(Duration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }

 private:
  std::int64_t ns_ = 0;
};

/// An instant in simulation time, measured from simulation start.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] static constexpr TimePoint zero() { return TimePoint{0}; }
  [[nodiscard]] static constexpr TimePoint max() {
    return TimePoint{std::numeric_limits<std::int64_t>::max() / 2};
  }

  [[nodiscard]] constexpr std::int64_t count_ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
  [[nodiscard]] constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const { return TimePoint{ns_ + d.count_ns()}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{ns_ - d.count_ns()}; }
  constexpr TimePoint& operator+=(Duration d) { ns_ += d.count_ns(); return *this; }
  constexpr Duration operator-(TimePoint o) const { return Duration{ns_ - o.ns_}; }

 private:
  std::int64_t ns_ = 0;
};

/// Human-readable rendering, e.g. "12.345ms", for logs and test output.
[[nodiscard]] std::string to_string(Duration d);
[[nodiscard]] std::string to_string(TimePoint t);

namespace literals {
constexpr Duration operator""_ns(unsigned long long v) { return Duration::nanos(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_us(unsigned long long v) { return Duration::micros(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_ms(unsigned long long v) { return Duration::millis(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_s(unsigned long long v) { return Duration::seconds(static_cast<std::int64_t>(v)); }
}  // namespace literals

}  // namespace zhuge::sim
