#pragma once
// Discrete-event simulation engine.
//
// A Simulator owns a 4-ary min-heap of timestamped event entries. Components
// schedule work with schedule_after()/schedule_at() and read the clock with
// now(). Events at equal timestamps fire in scheduling order (stable), which
// keeps runs deterministic.
//
// Hot-path design (PR 3): the engine allocates nothing per event in steady
// state and its footprint is O(pending), not O(events ever scheduled).
//
//  * Callbacks live in pooled 256-byte nodes (sim::Callback's 224-byte
//    inline buffer absorbs even Packet-owning closures); freed slots are
//    recycled through a LIFO free list, so the pool grows to the peak
//    concurrent-pending count and then stops.
//  * The heap holds 16-byte POD entries {time, seq|slot} ordered by
//    (time, seq) — seq is a monotone per-event serial that both breaks
//    same-time ties FIFO and serves as the liveness check: an entry is
//    stale iff its slot's node no longer carries the same seq. Cancel
//    just kills the node (O(1)); stale heap entries are discarded lazily
//    on pop and compacted wholesale when they outnumber live ones 4:1,
//    so heavy cancel/reschedule churn (the AckScheduler re-arms on every
//    hold) cannot grow the queue without bound.
//  * Node generations validate EventIds, replacing the old states_ byte
//    array that grew one byte per event *ever* scheduled — the memory
//    leak this PR fixes. A billion-event run now stays O(pending).

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace zhuge::sim {

/// Handle for a scheduled event; used to cancel timers. Id 0 is never
/// issued. Encodes (node generation << 32 | slot + 1); a stale handle —
/// fired, cancelled, or from a recycled slot — is recognized and rejected.
using EventId = std::uint64_t;

/// Deterministic discrete-event executor.
///
/// Not thread-safe by design: a simulation is a single logical timeline.
/// (Independent Simulators on separate threads are fine — see app/sweep.)
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time. Monotonically non-decreasing across callbacks.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedule `fn` to run at absolute time `t` (clamped to now()).
  /// Returns an id usable with cancel(). Accepts any void() callable;
  /// captures up to Callback::kInlineSize bytes stay allocation-free,
  /// and the callable is constructed directly in its pool node — no
  /// intermediate type-erased moves on the hot path.
  template <typename F>
  EventId schedule_at(TimePoint t, F&& fn) {
    const std::uint32_t slot = acquire_slot();
    Node& n = pool_[slot];
    n.fn.emplace(std::forward<F>(fn));
    return enqueue(t, slot, n);
  }

  /// Schedule `fn` to run `d` after now(). Negative delays are clamped to 0.
  template <typename F>
  EventId schedule_after(Duration d, F&& fn) {
    if (d < Duration::zero()) d = Duration::zero();
    return schedule_at(now_ + d, std::forward<F>(fn));
  }

  /// Cancel a pending event. Cancelling an already-fired, already-cancelled
  /// or unknown id is a harmless no-op. Returns true if the event was
  /// pending (i.e. this call actually cancelled it).
  bool cancel(EventId id);

  /// Run until the event queue is empty or `stop()` is called.
  void run();

  /// Run events with timestamp <= `end`, then set the clock to `end`.
  void run_until(TimePoint end);

  /// Fire the single earliest event. Returns false if the queue was empty.
  bool step();

  /// Stop a run()/run_until() loop after the current callback returns.
  void stop() { stopped_ = true; }

  /// Number of events executed so far (for tests and perf reporting).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  /// Number of events ever scheduled.
  [[nodiscard]] std::uint64_t events_scheduled() const { return scheduled_; }
  /// Number of events successfully cancelled.
  [[nodiscard]] std::uint64_t events_cancelled() const { return cancelled_count_; }

  /// Number of events currently pending. Exact: cancelled events are
  /// excluded even while their heap entries await lazy discard.
  [[nodiscard]] std::size_t pending() const { return pending_count_; }

  /// Footprint introspection for the bounded-memory regression tests:
  /// node-pool size (== peak concurrent pending, never events-ever) and
  /// heap length including not-yet-discarded stale entries (compaction
  /// keeps this within 4x pending + a small floor).
  [[nodiscard]] std::size_t pool_slots() const { return pool_.size(); }
  [[nodiscard]] std::size_t queue_size() const { return heap_.size(); }

  /// Test hook: overwrite a *free* slot's generation counter so the
  /// EventId generation-wraparound path can be exercised without 2^32
  /// real schedule/release cycles. Not for production use.
  void set_slot_generation_for_test(std::uint32_t slot, std::uint32_t gen) {
    pool_[slot].generation = gen;
  }

 private:
  /// Heap entry: POD, 16 bytes (4 per cache line), trivially movable —
  /// sift operations touch no callback. `seqslot` packs the event's
  /// monotone serial (high 40 bits) over its pool slot (low 24 bits):
  /// the serial both orders same-time events FIFO and doubles as the
  /// liveness token (matched against the node before firing). 40/24
  /// bounds: ~1.1e12 events per run, ~16.7M concurrently pending.
  struct QEntry {
    std::uint64_t seqslot;
    std::int64_t t_ns;
  };
  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;
  /// Min-ordering on (t, seq). The heap is 4-ary rather than binary:
  /// event pop cost is dominated by data-dependent sift branches, and a
  /// 4-ary layout halves the number of levels (log4 vs log2 of pending).
  static bool earlier(const QEntry& a, const QEntry& b) {
    if (a.t_ns != b.t_ns) return a.t_ns < b.t_ns;
    return a.seqslot < b.seqslot;  // serial is in the high bits
  }

  /// Pooled event node, exactly 256 bytes. `seq == 0` marks the slot dead
  /// (free, fired, or cancelled); `generation` increments on each reuse so
  /// stale EventIds referencing the slot are rejected.
  struct Node {
    Callback fn;                 // 240
    std::uint64_t seq = 0;       // 8: live serial, 0 = dead
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNilSlot;
  };
  static constexpr std::uint32_t kNilSlot = 0xFFFFFFFFu;

  static constexpr EventId make_id(std::uint32_t generation, std::uint32_t slot) {
    return (static_cast<EventId>(generation) << 32) | (slot + 1);
  }

  std::uint32_t acquire_slot();
  EventId enqueue(TimePoint t, std::uint32_t slot, Node& n);
  void release_slot(std::uint32_t slot);
  void heap_push(const QEntry& e);
  void heap_pop_front();
  void sift_down(std::size_t i);
  void rebuild_heap();
  void maybe_compact();

  [[nodiscard]] bool live(const QEntry& e) const {
    return pool_[e.seqslot & kSlotMask].seq == (e.seqslot >> kSlotBits);
  }

  TimePoint now_;
  std::uint64_t next_seq_ = 1;  // 0 reserved as the dead marker
  std::uint64_t scheduled_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_count_ = 0;
  std::size_t pending_count_ = 0;
  bool stopped_ = false;
  std::vector<QEntry> heap_;    // 4-ary min-heap on (t, seq)
  std::deque<Node> pool_;       // address-stable: callbacks run in place
  std::uint32_t free_head_ = kNilSlot;
};

}  // namespace zhuge::sim
