#pragma once
// Discrete-event simulation engine.
//
// A Simulator owns a priority queue of timestamped callbacks. Components
// schedule work with schedule_after()/schedule_at() and read the clock with
// now(). Events at equal timestamps fire in scheduling order (stable), which
// keeps runs deterministic.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace zhuge::sim {

/// Handle for a scheduled event; used to cancel timers. Id 0 is never issued.
using EventId = std::uint64_t;

/// Deterministic discrete-event executor.
///
/// Not thread-safe by design: a simulation is a single logical timeline.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time. Monotonically non-decreasing across callbacks.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedule `fn` to run at absolute time `t` (clamped to now()).
  /// Returns an id usable with cancel().
  EventId schedule_at(TimePoint t, std::function<void()> fn);

  /// Schedule `fn` to run `d` after now(). Negative delays are clamped to 0.
  EventId schedule_after(Duration d, std::function<void()> fn);

  /// Cancel a pending event. Cancelling an already-fired, already-cancelled
  /// or unknown id is a harmless no-op. Returns true if the event was
  /// pending (i.e. this call actually cancelled it).
  bool cancel(EventId id);

  /// Run until the event queue is empty or `stop()` is called.
  void run();

  /// Run events with timestamp <= `end`, then set the clock to `end`.
  void run_until(TimePoint end);

  /// Fire the single earliest event. Returns false if the queue was empty.
  bool step();

  /// Stop a run()/run_until() loop after the current callback returns.
  void stop() { stopped_ = true; }

  /// Number of events executed so far (for tests and perf reporting).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  /// Number of events ever scheduled.
  [[nodiscard]] std::uint64_t events_scheduled() const { return next_id_ - 1; }
  /// Number of events successfully cancelled.
  [[nodiscard]] std::uint64_t events_cancelled() const { return cancelled_count_; }

  /// Number of events currently pending. Exact: cancelled events are
  /// excluded even while they still sit in the queue awaiting lazy discard.
  [[nodiscard]] std::size_t pending() const { return pending_count_; }

 private:
  struct Event {
    TimePoint t;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.id > b.id;  // FIFO among same-time events
    }
  };

  /// Lifecycle of every issued event id, indexed by id-1. One byte per
  /// event ever scheduled: O(1) cancel/fire transitions and an exact
  /// answer to "is this id still pending", which a tombstone set cannot
  /// give without also tracking fired ids.
  enum EventState : std::uint8_t { kPending = 0, kFired = 1, kCancelled = 2 };

  [[nodiscard]] bool discard_if_cancelled(const Event& top);

  TimePoint now_;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_count_ = 0;
  std::size_t pending_count_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<std::uint8_t> states_;
};

}  // namespace zhuge::sim
