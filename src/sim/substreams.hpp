#pragma once
// RNG substream registry — the single home for every `sim::Rng(seed, N)`
// stream ID in src/.
//
// PCG32 substreams (src/sim/random.hpp) give independent sequences from one
// seed, but only if every component draws from a *distinct* stream: two
// components on the same (seed, stream) see correlated randomness and the
// bit-identity contract (golden fingerprints, --verify-serial, the chaos
// matrix) silently degrades into coupled noise. This registry makes the
// allocation auditable, and zlint's project-mode `rng-substream` rule
// machine-checks it: every `sim::Rng(seed, <expr>)` construction in src/
// must name a constant defined here, raw literals are errors, and two
// constants with the same value are an error.
//
// Policy: a new substream = a new named constexpr below, with a comment
// saying what draws from it. Never reuse a value; never renumber an
// existing one (the numeric values are part of the reproducibility
// surface — changing one changes every golden fingerprint downstream).
//
// The values predate this registry (they were literals spread across
// scenario.cpp / spec.cpp / synthetic.cpp) and are preserved verbatim.

#include <cstdint>

namespace zhuge::sim::substreams {

/// Main scenario RNG: wireless medium contention, AP behaviour, and every
/// component handed `*rng_` by Scenario/MultiScenario::build().
inline constexpr std::uint64_t kScenarioMain = 11;

/// Scenario-level draws decoupled from the medium: app jitter, per-flow
/// start offsets (`scenario_rng_`).
inline constexpr std::uint64_t kScenarioAux = 23;

/// Synthetic channel traces: AR(1) capacity process in
/// trace/synthetic.cpp make_trace().
inline constexpr std::uint64_t kSyntheticTrace = 7;

/// Fault injector on the servers->AP wired downlink (chaos harness).
inline constexpr std::uint64_t kFaultDownlinkWan = 31;

/// Fault injector on the client->AP wireless uplink.
inline constexpr std::uint64_t kFaultUplinkWireless = 37;

/// Fault injector on the AP->client wireless downlink.
inline constexpr std::uint64_t kFaultDownlinkWireless = 41;

/// Fault injector on the AP->servers wired uplink.
inline constexpr std::uint64_t kFaultUplinkWan = 43;

/// Feedback-only injector on the AP's rewritten feedback towards the WAN
/// (the shortest-control-loop path).
inline constexpr std::uint64_t kFaultApFeedback = 47;

/// Feedback-only injector on client->AP RTCP uplink traffic.
inline constexpr std::uint64_t kFaultUplinkRtcp = 53;

/// Flow-churn schedule expansion in spec.cpp expand_churn(): arrival
/// times, durations, and kind mix of churned stations.
inline constexpr std::uint64_t kSpecFlowChurn = 101;

}  // namespace zhuge::sim::substreams
