#include "sim/simulator.hpp"

#include <utility>

namespace zhuge::sim {

EventId Simulator::schedule_at(TimePoint t, std::function<void()> fn) {
  if (t < now_) t = now_;
  const EventId id = next_id_++;
  states_.push_back(kPending);
  ++pending_count_;
  queue_.push(Event{t, id, std::move(fn)});
  return id;
}

EventId Simulator::schedule_after(Duration d, std::function<void()> fn) {
  if (d < Duration::zero()) d = Duration::zero();
  return schedule_at(now_ + d, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  std::uint8_t& state = states_[id - 1];
  if (state != kPending) return false;  // already fired or cancelled
  state = kCancelled;
  ++cancelled_count_;
  --pending_count_;
  return true;
}

bool Simulator::discard_if_cancelled(const Event& top) {
  if (states_[top.id - 1] != kCancelled) return false;
  queue_.pop();
  return true;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    if (discard_if_cancelled(queue_.top())) continue;
    Event ev = queue_.top();
    queue_.pop();
    states_[ev.id - 1] = kFired;
    --pending_count_;
    now_ = ev.t;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(TimePoint end) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    // Peek past cancelled events without firing anything late.
    while (!queue_.empty() && discard_if_cancelled(queue_.top())) {
    }
    if (queue_.empty() || queue_.top().t > end) break;
    step();
  }
  if (now_ < end) now_ = end;
}

}  // namespace zhuge::sim
