#include "sim/simulator.hpp"

#include <utility>

namespace zhuge::sim {

EventId Simulator::schedule_at(TimePoint t, std::function<void()> fn) {
  if (t < now_) t = now_;
  const EventId id = next_id_++;
  queue_.push(Event{t, id, std::move(fn)});
  return id;
}

EventId Simulator::schedule_after(Duration d, std::function<void()> fn) {
  if (d < Duration::zero()) d = Duration::zero();
  return schedule_at(now_ + d, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  return cancelled_.insert(id).second;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.t;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(TimePoint end) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    // Peek past cancelled events without firing anything late.
    while (!queue_.empty()) {
      const Event& top = queue_.top();
      if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
        cancelled_.erase(it);
        queue_.pop();
        continue;
      }
      break;
    }
    if (queue_.empty() || queue_.top().t > end) break;
    step();
  }
  if (now_ < end) now_ = end;
}

}  // namespace zhuge::sim
