#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

namespace zhuge::sim {

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = pool_[slot].next_free;
    return slot;
  }
  pool_.emplace_back();
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) {
  Node& n = pool_[slot];
  ++n.generation;  // invalidate any EventId still pointing at this slot
  if (n.generation == 0) {
    // Generation wrapped: every id this slot ever issued is about to
    // become mintable again, so an id held since generation g would
    // validate against an unrelated future event once the counter walks
    // back around to g. Retire the slot instead of recycling it — one
    // 256-byte node leaked per 2^32 reuses of a single slot, in exchange
    // for cancel() never accepting a stale handle.
    return;
  }
  n.next_free = free_head_;
  free_head_ = slot;
}

// ---- 4-ary heap ------------------------------------------------------------
// Children of i are 4i+1..4i+4. Scheduling patterns make the two sides
// asymmetric: a freshly pushed event usually has a *later* time than most
// of the heap (timers re-arm into the future), so sift-up almost always
// terminates after one comparison, while pop pays the full descent — which
// the wider fan-out halves relative to a binary heap.

void Simulator::heap_push(const QEntry& e) {
  heap_.push_back(e);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Simulator::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const QEntry* const h = heap_.data();
  const QEntry e = h[i];
  for (;;) {
    const std::size_t first = (i << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    // Straight-line min-of-4 for full sibling groups; the generic loop
    // below is only the boundary case. (Kept explicit: a variable-trip
    // inner loop here gets unrolled into slower code at -O3.)
    if (n - first >= 4) {
      if (earlier(h[first + 1], h[best])) best = first + 1;
      if (earlier(h[first + 2], h[best])) best = first + 2;
      if (earlier(h[first + 3], h[best])) best = first + 3;
    } else {
      for (std::size_t c = first + 1; c < n; ++c) {
        if (earlier(h[c], h[best])) best = c;
      }
    }
    if (!earlier(h[best], e)) break;
    heap_[i] = h[best];
    i = best;
  }
  heap_[i] = e;
}

void Simulator::heap_pop_front() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (heap_.size() > 1) sift_down(0);
}

void Simulator::rebuild_heap() {
  if (heap_.size() < 2) return;
  for (std::size_t i = (heap_.size() - 2) >> 2; i != static_cast<std::size_t>(-1); --i) {
    sift_down(i);
  }
}

// ---- scheduling ------------------------------------------------------------

EventId Simulator::enqueue(TimePoint t, std::uint32_t slot, Node& n) {
  if (t < now_) t = now_;
  n.seq = next_seq_++;
  ++scheduled_;
  ++pending_count_;
  heap_push(QEntry{(n.seq << kSlotBits) | slot, t.count_ns()});
  return make_id(n.generation, slot);
}

bool Simulator::cancel(EventId id) {
  const std::uint32_t low = static_cast<std::uint32_t>(id);
  if (low == 0) return false;
  const std::uint32_t slot = low - 1;
  if (slot >= pool_.size()) return false;
  Node& n = pool_[slot];
  if (n.seq == 0 || n.generation != static_cast<std::uint32_t>(id >> 32)) {
    return false;  // already fired, already cancelled, or recycled slot
  }
  n.seq = 0;       // the heap entry is now stale; discarded lazily on pop
  n.fn.reset();    // drop the payload (e.g. a held Packet) eagerly
  release_slot(slot);
  ++cancelled_count_;
  --pending_count_;
  maybe_compact();
  return true;
}

void Simulator::maybe_compact() {
  // Cancel-heavy churn (the AckScheduler re-arms on every hold) leaves
  // stale entries behind. Sweep them out when they outnumber live ones
  // 4:1 so the heap stays O(pending) even over billion-event runs; the
  // floor of 64 keeps tiny queues from compacting constantly.
  if (heap_.size() <= 64 || heap_.size() <= 4 * pending_count_) return;
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const QEntry& e) { return !live(e); }),
              heap_.end());
  rebuild_heap();
}

bool Simulator::step() {
  while (!heap_.empty()) {
    const QEntry e = heap_.front();
    heap_pop_front();
    const std::uint32_t slot = static_cast<std::uint32_t>(e.seqslot & kSlotMask);
    Node& n = pool_[slot];
    if (n.seq != (e.seqslot >> kSlotBits)) continue;  // cancelled; stale
    n.seq = 0;
    --pending_count_;
    now_ = TimePoint{e.t_ns};
    ++executed_;
    // Run the callback in place: the pool is a deque, so nested
    // schedule_at() growing it cannot move this node, and the slot is
    // only released (and thus reusable) after the callback returns.
    // operator() consumes the callable (invoke + destroy, one dispatch).
    n.fn();
    release_slot(slot);
    return true;
  }
  return false;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(TimePoint end) {
  stopped_ = false;
  while (!stopped_) {
    // Peek past stale (cancelled) entries without firing anything late.
    while (!heap_.empty() && !live(heap_.front())) heap_pop_front();
    if (heap_.empty() || heap_.front().t_ns > end.count_ns()) break;
    step();
  }
  if (now_ < end) now_ = end;
}

}  // namespace zhuge::sim
