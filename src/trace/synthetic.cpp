#include "trace/synthetic.hpp"

#include "sim/substreams.hpp"

#include <algorithm>
#include <cmath>

namespace zhuge::trace {

SyntheticParams params_for(TraceKind kind) {
  SyntheticParams p;
  switch (kind) {
    case TraceKind::kRestaurantWifi:  // W1: crowded 2.4 GHz, 21 Mbps mean
      p.mean_bps = 21e6;
      p.ar_sigma = 0.16;
      p.fade_prob = 0.016;
      p.fade_depth_min = 5.0;
      p.fade_depth_alpha = 1.2;
      p.fade_mean_steps = 9.0;
      p.floor_ratio = 0.012;
      break;
    case TraceKind::kOfficeWifi:  // W2: calmer 5 GHz, 27 Mbps mean
      p.mean_bps = 27e6;
      p.ar_sigma = 0.10;
      p.fade_prob = 0.005;
      p.fade_depth_min = 4.0;
      p.fade_depth_alpha = 1.5;
      p.fade_mean_steps = 7.0;
      p.floor_ratio = 0.012;
      break;
    case TraceKind::kIndoorMixed45G:  // C1: handovers between 4G and 5G
      p.mean_bps = 60e6;
      p.ar_sigma = 0.20;
      p.fade_prob = 0.022;
      p.fade_depth_min = 8.0;
      p.fade_depth_alpha = 1.1;
      p.fade_mean_steps = 10.0;
      p.floor_ratio = 0.004;
      break;
    case TraceKind::kCity4G:  // C2
      p.mean_bps = 40e6;
      p.ar_sigma = 0.14;
      p.fade_prob = 0.008;
      p.fade_depth_min = 6.0;
      p.fade_depth_alpha = 1.4;
      p.fade_mean_steps = 8.0;
      p.floor_ratio = 0.006;
      break;
    case TraceKind::kCity5G:  // C3: mmWave blockage -> deep, abrupt fades
      p.mean_bps = 120e6;
      p.ar_sigma = 0.18;
      p.fade_prob = 0.014;
      p.fade_depth_min = 8.0;
      p.fade_depth_alpha = 1.15;
      p.fade_mean_steps = 9.0;
      p.floor_ratio = 0.003;
      break;
    case TraceKind::kEthernet:  // wired: tiny jitter, no fades
      p.mean_bps = 100e6;
      p.ar_sigma = 0.01;
      p.fade_prob = 0.0;
      break;
    case TraceKind::kLegacyCellular:  // ABC-era cellular: ~2.5 Mbps mean
      p.mean_bps = 2.5e6;
      p.ar_sigma = 0.25;
      p.fade_prob = 0.012;
      p.fade_depth_min = 4.0;
      p.fade_depth_alpha = 1.3;
      p.fade_mean_steps = 5.0;
      break;
  }
  return p;
}

const char* short_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kRestaurantWifi: return "W1";
    case TraceKind::kOfficeWifi: return "W2";
    case TraceKind::kIndoorMixed45G: return "C1";
    case TraceKind::kCity4G: return "C2";
    case TraceKind::kCity5G: return "C3";
    case TraceKind::kEthernet: return "ETH";
    case TraceKind::kLegacyCellular: return "ABC";
  }
  return "?";
}

const char* long_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kRestaurantWifi: return "Restaurant WiFi (2.4GHz)";
    case TraceKind::kOfficeWifi: return "Office WiFi (5GHz)";
    case TraceKind::kIndoorMixed45G: return "Indoor Mixed 4G/5G";
    case TraceKind::kCity4G: return "City 4G";
    case TraceKind::kCity5G: return "City 5G";
    case TraceKind::kEthernet: return "Ethernet";
    case TraceKind::kLegacyCellular: return "Legacy cellular (ABC traces)";
  }
  return "?";
}

Trace make_trace(const SyntheticParams& p, std::uint64_t seed,
                 sim::Duration duration, const std::string& name) {
  sim::Rng rng(seed, sim::substreams::kSyntheticTrace);
  std::vector<Trace::Sample> samples;
  const auto steps = static_cast<std::size_t>(
      duration.count_ns() / p.step.count_ns());
  samples.reserve(steps);

  double x = 0.0;  // AR(1) state in log domain
  // Stationary-variance correction so mean(exp(x)) ~= 1.
  const double stat_var =
      p.ar_sigma * p.ar_sigma / std::max(1e-9, 1.0 - p.ar_phi * p.ar_phi);
  int fade_steps_left = 0;
  double fade_depth = 1.0;

  for (std::size_t i = 0; i < steps; ++i) {
    x = p.ar_phi * x + rng.normal(0.0, p.ar_sigma);
    double rate = p.mean_bps * std::exp(x - stat_var / 2.0);

    if (fade_steps_left > 0) {
      --fade_steps_left;
      rate /= fade_depth;
    } else if (p.fade_prob > 0.0 && rng.chance(p.fade_prob)) {
      fade_depth = std::min(p.fade_depth_cap,
                            rng.pareto(p.fade_depth_min, p.fade_depth_alpha));
      // Geometric duration with the configured mean (at least 1 step).
      fade_steps_left = 1;
      while (rng.uniform() > 1.0 / p.fade_mean_steps &&
             fade_steps_left < 200) {
        ++fade_steps_left;
      }
      rate /= fade_depth;
    }

    rate = std::clamp(rate, p.mean_bps * p.floor_ratio, p.mean_bps * p.ceil_ratio);
    samples.push_back({TimePoint{static_cast<std::int64_t>(i) * p.step.count_ns()}, rate});
  }
  return Trace{name, std::move(samples)};
}

Trace make_trace(TraceKind kind, std::uint64_t seed, sim::Duration duration) {
  return make_trace(params_for(kind), seed, duration, short_name(kind));
}

Trace constant_trace(double rate_bps, sim::Duration duration, const std::string& name) {
  std::vector<Trace::Sample> s;
  s.push_back({TimePoint::zero(), rate_bps});
  s.push_back({TimePoint{duration.count_ns()}, rate_bps});
  return Trace{name, std::move(s)};
}

Trace step_trace(double before_bps, double after_bps, sim::Duration at,
                 sim::Duration duration, const std::string& name) {
  std::vector<Trace::Sample> s;
  s.push_back({TimePoint::zero(), before_bps});
  s.push_back({TimePoint{at.count_ns()}, after_bps});
  s.push_back({TimePoint{duration.count_ns()}, after_bps});
  return Trace{name, std::move(s)};
}

double AbwReductionStats::fraction_above(double k) const {
  if (reduction_ratios.empty()) return 0.0;
  std::size_t n = 0;
  for (double r : reduction_ratios) {
    if (r > k) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(reduction_ratios.size());
}

AbwReductionStats abw_reduction_stats(const Trace& trace, sim::Duration window) {
  AbwReductionStats out;
  if (trace.empty()) return out;
  const Duration span = trace.span();
  if (span <= window * 2) return out;

  // Average ABW per window by sampling the piecewise-constant trace at a
  // fine grain (the generator step is <= the window).
  const Duration grain = Duration::millis(10);
  std::vector<double> windows;
  for (TimePoint w0 = TimePoint::zero(); w0 + window <= TimePoint::zero() + span;
       w0 += window) {
    double sum = 0.0;
    int n = 0;
    for (TimePoint t = w0; t < w0 + window; t += grain) {
      sum += trace.rate_at(t);
      ++n;
    }
    windows.push_back(sum / std::max(1, n));
  }
  for (std::size_t i = 0; i + 1 < windows.size(); ++i) {
    if (windows[i + 1] <= 0.0) continue;
    const double ratio = windows[i] / windows[i + 1];
    if (ratio >= 1.0) out.reduction_ratios.push_back(ratio);
  }
  return out;
}

}  // namespace zhuge::trace
