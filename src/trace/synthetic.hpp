#pragma once
// Synthetic ABW-trace generators for the paper's five wireless traces plus
// a stable Ethernet reference and ABC's legacy low-bandwidth cellular.
//
// Substitution note (see DESIGN.md §2): the real traces are not published,
// but the evaluation depends on the *distribution of sudden ABW
// reductions* (paper Fig. 3(b): P[reduction > 10x over 200 ms] between
// 0.6 % and 7.3 % for wireless, < 0.1 % for wired) and on the mean rates
// the paper states (21 / 27 Mbps for the two WiFi traces). Each generator
// is an AR(1) log-rate process (steady fluctuation) overlaid with a deep-
// fade process (Pareto depth, geometric duration) calibrated per class.

#include <cstdint>

#include "sim/random.hpp"
#include "sim/time.hpp"
#include "trace/trace.hpp"

namespace zhuge::trace {

/// The paper's trace classes.
enum class TraceKind {
  kRestaurantWifi,   ///< W1: 2.4 GHz public WiFi, crowded, 21 Mbps mean
  kOfficeWifi,       ///< W2: 5 GHz office WiFi, 27 Mbps mean
  kIndoorMixed45G,   ///< C1: indoor mixed 4G/5G, bursty handovers
  kCity4G,           ///< C2: metropolitan 4G
  kCity5G,           ///< C3: metropolitan 5G (mmWave blockage fades)
  kEthernet,         ///< wired reference, nearly constant
  kLegacyCellular,   ///< ABC-paper-era (~10-year-old) cellular, ~2 Mbps
};

/// Parameters of the generator; exposed so tests can sweep them.
struct SyntheticParams {
  double mean_bps = 25e6;     ///< long-run mean rate
  double ar_phi = 0.9;        ///< AR(1) persistence of the log-rate
  double ar_sigma = 0.10;     ///< per-step innovation std-dev (log domain)
  double fade_prob = 0.004;   ///< per-step probability of entering a fade
  double fade_depth_min = 4.0;    ///< Pareto scale of the fade depth
  double fade_depth_alpha = 1.3;  ///< Pareto shape (smaller = heavier tail)
  double fade_depth_cap = 60.0;   ///< clamp on the fade depth (Fig. 3b tops ~50x)
  double fade_mean_steps = 6.0;   ///< geometric mean fade length (steps)
  double floor_ratio = 0.02;      ///< rate never drops below mean*floor_ratio
  double ceil_ratio = 2.5;        ///< nor rises above mean*ceil_ratio
  sim::Duration step = sim::Duration::millis(50);
};

/// Canonical parameters for a trace class.
[[nodiscard]] SyntheticParams params_for(TraceKind kind);

/// Human-readable short name ("W1", "C3", ...).
[[nodiscard]] const char* short_name(TraceKind kind);
/// Descriptive name ("Restaurant WiFi", ...).
[[nodiscard]] const char* long_name(TraceKind kind);

/// Generate a trace of the given class. Deterministic in (kind, seed).
[[nodiscard]] Trace make_trace(TraceKind kind, std::uint64_t seed, sim::Duration duration);

/// Generate from explicit parameters (for sweeps/tests).
[[nodiscard]] Trace make_trace(const SyntheticParams& params, std::uint64_t seed,
                               sim::Duration duration, const std::string& name);

/// A constant-rate trace (unit tests and controlled microbenchmarks).
[[nodiscard]] Trace constant_trace(double rate_bps, sim::Duration duration,
                                   const std::string& name = "const");

/// A single-step trace: `before_bps` until `at`, then `after_bps`
/// (the Fig. 4/14/15 bandwidth-drop microbenchmark shape).
[[nodiscard]] Trace step_trace(double before_bps, double after_bps, sim::Duration at,
                               sim::Duration duration, const std::string& name = "step");

/// Fig. 3(b) analysis: distribution of the ABW reduction ratio between
/// consecutive 200 ms windows.
struct AbwReductionStats {
  /// Fraction of consecutive-window pairs whose reduction ratio exceeds k.
  [[nodiscard]] double fraction_above(double k) const;
  std::vector<double> reduction_ratios;  ///< all ratios (>= 1 means a drop)
};

/// Compute reduction statistics with the paper's 200 ms ABW window.
[[nodiscard]] AbwReductionStats abw_reduction_stats(
    const Trace& trace, sim::Duration window = sim::Duration::millis(200));

}  // namespace zhuge::trace
