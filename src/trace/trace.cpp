#include "trace/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace zhuge::trace {

double Trace::rate_at(TimePoint t) const {
  if (samples_.empty()) return 0.0;
  if (samples_.size() == 1) return samples_.front().rate_bps;
  const std::int64_t span_ns = span().count_ns();
  std::int64_t ns = t.count_ns();
  if (span_ns > 0 && ns >= span_ns) ns %= span_ns;  // loop
  const TimePoint wrapped{ns};
  // Last sample with time <= wrapped.
  auto it = std::upper_bound(
      samples_.begin(), samples_.end(), wrapped,
      [](TimePoint v, const Sample& s) { return v < s.t; });
  if (it == samples_.begin()) return samples_.front().rate_bps;
  return std::prev(it)->rate_bps;
}

Duration Trace::span() const {
  if (samples_.size() < 2) return Duration::zero();
  // Assume uniform spacing for the trailing step.
  const Duration step = samples_[1].t - samples_[0].t;
  return (samples_.back().t - samples_.front().t) + step;
}

double Trace::mean_rate_bps() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& x : samples_) s += x.rate_bps;
  return s / static_cast<double>(samples_.size());
}

Trace load_csv(const std::string& path, const std::string& name) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  std::vector<Trace::Sample> samples;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    double t_ms = 0.0;
    double mbps = 0.0;
    char comma = 0;
    if (!(ss >> t_ms >> comma >> mbps) || comma != ',') {
      throw std::runtime_error("trace: malformed line " + std::to_string(lineno) +
                               " in " + path);
    }
    samples.push_back({TimePoint{static_cast<std::int64_t>(t_ms * 1e6)}, mbps * 1e6});
  }
  if (samples.empty()) throw std::runtime_error("trace: empty file " + path);
  return Trace{name, std::move(samples)};
}

void save_csv(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("trace: cannot write " + path);
  out.precision(12);  // lossless enough for ns-resolution round-trips
  out << "# time_ms,rate_mbps  (" << trace.name() << ")\n";
  for (const auto& s : trace.samples()) {
    out << s.t.to_millis() << "," << s.rate_bps / 1e6 << "\n";
  }
}

}  // namespace zhuge::trace
