#include "trace/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

namespace zhuge::trace {

double Trace::rate_at(TimePoint t) const {
  if (samples_.empty()) return 0.0;
  if (samples_.size() == 1) return samples_.front().rate_bps;
  const std::int64_t span_ns = span().count_ns();
  std::int64_t ns = t.count_ns();
  if (span_ns > 0 && ns >= span_ns) ns %= span_ns;  // loop
  const TimePoint wrapped{ns};
  // Last sample with time <= wrapped.
  auto it = std::upper_bound(
      samples_.begin(), samples_.end(), wrapped,
      [](TimePoint v, const Sample& s) { return v < s.t; });
  if (it == samples_.begin()) return samples_.front().rate_bps;
  return std::prev(it)->rate_bps;
}

Duration Trace::span() const {
  if (samples_.size() < 2) return Duration::zero();
  // Assume uniform spacing for the trailing step.
  const Duration step = samples_[1].t - samples_[0].t;
  return (samples_.back().t - samples_.front().t) + step;
}

double Trace::mean_rate_bps() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& x : samples_) s += x.rate_bps;
  return s / static_cast<double>(samples_.size());
}

namespace {

/// Truncated copy of an offending line, safe to embed in a what() string.
std::string excerpt(const std::string& line) {
  constexpr std::size_t kMax = 60;
  std::string out = line.substr(0, kMax);
  for (char& c : out) {
    if (static_cast<unsigned char>(c) < 0x20) c = ' ';
  }
  if (line.size() > kMax) out += "...";
  return out;
}

[[noreturn]] void fail_line(const std::string& path, std::size_t lineno,
                            const std::string& line, const std::string& what) {
  throw std::runtime_error("trace: " + path + ":" + std::to_string(lineno) +
                           ": " + what + " in \"" + excerpt(line) + "\"");
}

std::string trim(const std::string& s) {
  const std::size_t a = s.find_first_not_of(" \t\r");
  if (a == std::string::npos) return {};
  const std::size_t b = s.find_last_not_of(" \t\r");
  return s.substr(a, b - a + 1);
}

/// strtod with a full-token check, so "nan"/"inf" reach the finiteness
/// diagnostic below instead of dying as generic stream-extraction
/// failures, and "1.5x" is rejected rather than silently truncated.
bool parse_number(const std::string& tok, double& out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  out = std::strtod(tok.c_str(), &end);
  return end == tok.c_str() + tok.size();
}

}  // namespace

Trace load_csv(const std::string& path, const std::string& name) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  std::vector<Trace::Sample> samples;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t comma = line.find(',');
    if (comma == std::string::npos) {
      fail_line(path, lineno, line, "expected \"time_ms,rate_mbps\"");
    }
    const std::string t_tok = trim(line.substr(0, comma));
    std::string r_tok = trim(line.substr(comma + 1));
    const std::size_t extra = r_tok.find_first_of(" \t,");
    if (extra != std::string::npos) {
      fail_line(path, lineno, line,
                "trailing token \"" + trim(r_tok.substr(extra)) + "\"");
    }
    double t_ms = 0.0;
    double mbps = 0.0;
    if (!parse_number(t_tok, t_ms) || !parse_number(r_tok, mbps)) {
      fail_line(path, lineno, line, "expected \"time_ms,rate_mbps\"");
    }
    if (!std::isfinite(t_ms) || !std::isfinite(mbps)) {
      fail_line(path, lineno, line, "non-finite value");
    }
    if (mbps < 0.0) {
      fail_line(path, lineno, line, "negative rate");
    }
    const TimePoint t{static_cast<std::int64_t>(t_ms * 1e6)};
    if (!samples.empty() && t < samples.back().t) {
      fail_line(path, lineno, line,
                "time going backwards (previous sample at " +
                    std::to_string(samples.back().t.to_millis()) + " ms)");
    }
    samples.push_back({t, mbps * 1e6});
  }
  if (samples.empty()) throw std::runtime_error("trace: empty file " + path);
  return Trace{name, std::move(samples)};
}

void save_csv(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("trace: cannot write " + path);
  out.precision(12);  // lossless enough for ns-resolution round-trips
  out << "# time_ms,rate_mbps  (" << trace.name() << ")\n";
  for (const auto& s : trace.samples()) {
    out << s.t.to_millis() << "," << s.rate_bps / 1e6 << "\n";
  }
}

}  // namespace zhuge::trace
