#pragma once
// Bandwidth traces: a time-indexed available-bandwidth (ABW) series that
// drives the wireless channel model. Piecewise-constant between samples;
// loops when read past the end so short traces can drive long simulations.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace zhuge::trace {

using sim::Duration;
using sim::TimePoint;

/// A named ABW trace. Samples must be strictly increasing in time.
class Trace {
 public:
  struct Sample {
    TimePoint t;
    double rate_bps;
  };

  Trace() = default;
  Trace(std::string name, std::vector<Sample> samples)
      : name_(std::move(name)), samples_(std::move(samples)) {}

  /// ABW at time `t`, sample-and-hold; loops past the trace end.
  [[nodiscard]] double rate_at(TimePoint t) const;

  /// Total covered span (last sample time + one nominal step).
  [[nodiscard]] Duration span() const;

  /// Mean rate over the whole trace (unweighted by sample spacing;
  /// generators emit uniform spacing so this equals the time average).
  [[nodiscard]] double mean_rate_bps() const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

 private:
  std::string name_;
  std::vector<Sample> samples_;
};

/// Parse a "time_ms,rate_mbps" CSV (comments with '#', blank lines ok).
/// Throws std::runtime_error on malformed input.
[[nodiscard]] Trace load_csv(const std::string& path, const std::string& name = "csv");

/// Serialise to the same CSV format (for exporting generated traces).
void save_csv(const Trace& trace, const std::string& path);

}  // namespace zhuge::trace
