#pragma once
// BBR v1 (Cardwell et al., 2016), simplified: windowed-max bandwidth and
// windowed-min RTT filters drive a pacing-gain state machine
// (STARTUP -> DRAIN -> PROBE_BW, with periodic PROBE_RTT). One of the
// paper's "recent latency-sensitive CCAs" evaluated in Fig. 4.

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>

#include "cca/cca.hpp"
#include "stats/windowed.hpp"

namespace zhuge::cca {

/// Model-based congestion control: rate from max-BW, window from BDP.
class Bbr final : public CongestionControl {
 public:
  struct Config {
    double startup_gain = 2.885;     ///< 2/ln(2)
    double drain_gain = 0.3465;      ///< 1/startup_gain
    double cwnd_gain = 2.0;
    Duration min_rtt_window = Duration::seconds(10);
    Duration probe_rtt_duration = Duration::millis(200);
    std::uint64_t min_cwnd = 4 * kMss;
    std::uint64_t initial_cwnd = 10 * kMss;
  };

  Bbr() : Bbr(Config{}) {}
  explicit Bbr(Config cfg)
      : cfg_(cfg),
        cwnd_(cfg.initial_cwnd),
        max_bw_(Duration::seconds(2)),  // ~10 RTTs at 200 ms
        min_rtt_(cfg.min_rtt_window) {}

  void on_ack(const AckEvent& ev) override {
    if (ev.rtt > Duration::zero()) {
      const double r = ev.rtt.to_seconds();
      // Track when the running minimum was last refreshed: BBR enters
      // PROBE_RTT once that estimate goes stale (10 s).
      if (cached_rtt_ <= 0.0 || r <= cached_rtt_) {
        cached_rtt_ = r;
        min_rtt_stamp_ = ev.now;
      }
      min_rtt_.record(ev.now, r);
    }
    // App-limited samples measure the app's offered load, not the path:
    // admit one only when it raises the estimate (it proves at least that
    // much capacity exists). Without this filter an app that paces itself
    // off our rate (video-over-TCP tracks 0.85x pacing) locks the max
    // filter into a one-way ratchet down — after any fault knocks the
    // estimate low, probing can never climb back out.
    if (ev.delivery_rate_bps > 0.0 &&
        (!ev.app_limited || ev.delivery_rate_bps > cached_bw_)) {
      max_bw_.record(ev.now, ev.delivery_rate_bps);
    }

    const double bw = bandwidth(ev.now);
    const double rtt = min_rtt(ev.now);

    switch (state_) {
      case State::kStartup:
        // Exit when bandwidth stops growing (3 rounds < 25% growth).
        if (bw > full_bw_ * 1.25) {
          full_bw_ = bw;
          full_bw_rounds_ = 0;
        } else if (ev.now - last_round_ > Duration::from_seconds(rtt)) {
          ++full_bw_rounds_;
          last_round_ = ev.now;
          if (full_bw_rounds_ >= 3) {
            state_ = State::kDrain;
          }
        }
        pacing_gain_ = cfg_.startup_gain;
        break;
      case State::kDrain:
        pacing_gain_ = cfg_.drain_gain;
        if (ev.bytes_in_flight <= bdp_bytes(bw, rtt)) {
          state_ = State::kProbeBw;
          cycle_start_ = ev.now;
          cycle_index_ = 0;
        }
        break;
      case State::kProbeBw: {
        if (ev.now - cycle_start_ > Duration::from_seconds(rtt)) {
          cycle_start_ = ev.now;
          cycle_index_ = (cycle_index_ + 1) % kGainCycle.size();
        }
        pacing_gain_ = kGainCycle[cycle_index_];
        // Enter PROBE_RTT when the min-RTT estimate is stale.
        if (ev.now - min_rtt_stamp_ > cfg_.min_rtt_window) {
          state_ = State::kProbeRtt;
          probe_rtt_until_ = ev.now + cfg_.probe_rtt_duration;
          min_rtt_stamp_ = ev.now;
        }
        break;
      }
      case State::kProbeRtt:
        pacing_gain_ = 1.0;
        if (ev.now >= probe_rtt_until_) {
          state_ = State::kProbeBw;
          cycle_start_ = ev.now;
          cycle_index_ = 0;
        }
        break;
    }

    // Debug trace, gated on ZHUGE_BBR_TRACE=1 (same idiom as the GCC
    // trace): sampled state-machine internals for diagnosing why the model
    // settled at a given operating point.
    if (trace_enabled()) {
      const double t = ev.now.count_ns() / 1e9;
      if (t - trace_last_t_ > 0.25) {
        trace_last_t_ = t;
        std::fprintf(stderr,
                     "BBR t=%.2f st=%d bw=%.3f rtt=%.1f gain=%.2f cwnd=%llu "
                     "inflight=%llu drate=%.3f applim=%d ackrtt=%.1f\n",
                     t, static_cast<int>(state_), bw / 1e6, rtt * 1e3,
                     pacing_gain_, static_cast<unsigned long long>(cwnd_),
                     static_cast<unsigned long long>(ev.bytes_in_flight),
                     ev.delivery_rate_bps / 1e6, ev.app_limited ? 1 : 0,
                     ev.rtt.to_seconds() * 1e3);
      }
    }
    const std::uint64_t bdp = bdp_bytes(bw, rtt);
    if (state_ == State::kProbeRtt) {
      cwnd_ = cfg_.min_cwnd;
    } else if (state_ == State::kStartup) {
      cwnd_ += ev.acked_bytes;  // exponential growth
    } else {
      cwnd_ = std::max<std::uint64_t>(
          cfg_.min_cwnd,
          static_cast<std::uint64_t>(cfg_.cwnd_gain * static_cast<double>(bdp)));
    }
  }

  void on_loss(TimePoint, std::uint64_t) override {
    // BBRv1 largely ignores isolated loss.
  }

  void on_rto(TimePoint) override {
    cwnd_ = cfg_.min_cwnd;
    state_ = State::kStartup;
    full_bw_ = 0.0;
    full_bw_rounds_ = 0;
  }

  [[nodiscard]] std::uint64_t cwnd_bytes() const override { return cwnd_; }
  [[nodiscard]] double pacing_rate_bps() const override {
    return pacing_gain_ * cached_bw_;
  }
  [[nodiscard]] std::string name() const override { return "bbr"; }

 private:
  enum class State { kStartup, kDrain, kProbeBw, kProbeRtt };
  static constexpr std::array<double, 8> kGainCycle = {1.25, 0.75, 1, 1,
                                                       1,    1,    1, 1};

  static bool trace_enabled() {
    // zlint-allow(banned-api): read once, gates a stderr debug trace only;
    // never feeds simulation state.
    static const bool on = std::getenv("ZHUGE_BBR_TRACE") != nullptr;
    return on;
  }

  double bandwidth(TimePoint now) {
    const auto m = max_bw_.max(now);
    cached_bw_ = m.value_or(cached_bw_ > 0 ? cached_bw_ : 1e6);
    return cached_bw_;
  }
  double min_rtt(TimePoint now) {
    if (const auto m = min_rtt_.min(now); m.has_value() && *m > cached_rtt_) {
      // Allow the estimate to rise once old lows age out of the window.
      cached_rtt_ = *m;
    }
    return cached_rtt_ > 0 ? cached_rtt_ : 0.1;
  }
  static std::uint64_t bdp_bytes(double bw_bps, double rtt_s) {
    return static_cast<std::uint64_t>(bw_bps / 8.0 * rtt_s);
  }

  Config cfg_;
  std::uint64_t cwnd_;
  stats::WindowedMean max_bw_;  // used via .max()
  stats::WindowedMin min_rtt_;
  double cached_bw_ = 0.0;
  double cached_rtt_ = 0.0;
  State state_ = State::kStartup;
  double pacing_gain_ = 2.885;
  double full_bw_ = 0.0;
  int full_bw_rounds_ = 0;
  TimePoint last_round_;
  TimePoint cycle_start_;
  std::size_t cycle_index_ = 0;
  TimePoint probe_rtt_until_;
  TimePoint min_rtt_stamp_;
  double trace_last_t_ = -1.0;  ///< debug-trace sampling clock (per instance)
};

}  // namespace zhuge::cca
