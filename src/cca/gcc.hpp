#pragma once
// Google Congestion Control (Carlucci et al. 2017; WebRTC's default) —
// the CCA the paper pairs with RTP/RTCP. Feedback-vector driven: the
// sender receives TWCC reports carrying per-packet receive times, computes
// inter-group delay gradients, fits a trendline, detects over/underuse
// against an adaptive threshold, and drives an AIMD rate controller.
// A parallel loss-based controller caps the delay-based rate.

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "sim/time.hpp"
#include "stats/windowed.hpp"

namespace zhuge::cca {

using sim::Duration;
using sim::TimePoint;

/// One (send, receive) observation reconstructed from TWCC feedback.
struct TwccObservation {
  std::uint16_t twcc_seq = 0;
  TimePoint send_time;
  TimePoint recv_time;
  std::uint32_t size_bytes = 0;
};

/// Delay-based + loss-based rate controller.
class Gcc {
 public:
  struct Config {
    double start_rate_bps = 1e6;
    double min_rate_bps = 150e3;
    double max_rate_bps = 20e6;
    // Packet grouping (WebRTC InterArrival): packets sent within this span
    // form one group; gradients are computed between groups, which filters
    // AMPDU / burst-level jitter out of the delay signal.
    Duration burst_span = Duration::millis(5);
    // Trendline estimator.
    std::size_t trendline_window = 40;
    double smoothing = 0.9;
    double gain = 4.0;               ///< threshold comparison gain (k_u-ish)
    double initial_threshold = 12.5;  ///< ms, adapts online
    double k_up = 0.0087;
    double k_down = 0.039;
    double max_adapt_offset_ms = 15.0;  ///< freeze adaptation beyond this
    // Rate controller.
    double increase_factor = 1.08;   ///< multiplicative increase per period
    double additive_increase_bps = 40e3;  ///< near-convergence probing step
    double decrease_factor = 0.85;   ///< beta applied to the receive rate
    Duration response_interval = Duration::millis(100);
    // Loss controller.
    double loss_increase_threshold = 0.02;
    double loss_decrease_threshold = 0.10;
    Duration loss_update_interval = Duration::millis(800);
    double loss_additive_recovery_bps = 250e3;  ///< per update, see .cpp
  };

  Gcc() : Gcc(Config{}) {}
  explicit Gcc(Config cfg) : cfg_(cfg), delay_based_rate_(cfg.start_rate_bps),
                                  loss_based_rate_(cfg.start_rate_bps),
                                  threshold_ms_(cfg.initial_threshold) {}

  /// Feed one TWCC feedback report (observations sorted by send order).
  /// `now` is the sender clock at feedback arrival.
  void on_feedback(const std::vector<TwccObservation>& observations, TimePoint now);

  /// Feed a loss-rate measurement (fraction in [0,1]) for the last window.
  void on_loss_report(double loss_fraction, TimePoint now);

  /// Current target bitrate for the encoder.
  [[nodiscard]] double target_rate_bps() const;

  /// Introspection for tests and the Fig. 4 CWND-convergence bench.
  enum class Hypothesis : std::uint8_t { kNormal, kOveruse, kUnderuse };
  enum class RateState : std::uint8_t { kIncrease, kHold, kDecrease };
  [[nodiscard]] Hypothesis hypothesis() const { return hypothesis_; }
  [[nodiscard]] double trendline_slope() const { return last_slope_; }
  [[nodiscard]] double receive_rate_bps() const { return receive_rate_bps_; }

 private:
  void trace(TimePoint now) const;  ///< ZHUGE_GCC_TRACE=1 debug stream
  void update_trendline(TimePoint now);
  void detect(double modified_trend, Duration group_span, TimePoint now);
  void update_rate(TimePoint now);
  void update_receive_rate(const std::vector<TwccObservation>& obs);

  Config cfg_;
  double delay_based_rate_;
  double loss_based_rate_;
  double receive_rate_bps_ = 0.0;
  stats::WindowedRate recv_rate_window_{Duration::millis(500)};

  // Packet-group assembly (burst_span grouping).
  struct Group {
    TimePoint first_send;
    TimePoint last_send;
    TimePoint last_recv;
    bool valid = false;
  };
  Group current_group_;
  Group prev_group_;

  // Inter-group delay accumulation.
  double accumulated_delay_ms_ = 0.0;
  double smoothed_delay_ms_ = 0.0;
  struct TrendPoint {
    double arrival_ms;   // relative arrival time
    double smoothed_ms;  // smoothed accumulated delay
  };
  std::deque<TrendPoint> trend_points_;
  double first_arrival_ms_ = -1.0;
  double last_slope_ = 0.0;

  // Overuse detector.
  double threshold_ms_;
  Hypothesis hypothesis_ = Hypothesis::kNormal;
  TimePoint overuse_start_;
  int overuse_count_ = 0;
  TimePoint last_detector_update_;

  // AIMD state.
  RateState rate_state_ = RateState::kIncrease;
  TimePoint last_rate_update_;
  TimePoint last_loss_update_;
  double pending_loss_ = 0.0;
  double avg_max_bps_ = -1.0;  ///< link estimate from overuse decreases
  bool loss_cap_active_ = false;  ///< loss-based cap engaged by a loss episode
};

}  // namespace zhuge::cca
