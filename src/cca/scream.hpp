#pragma once
// SCReAM (RFC 8298): Self-Clocked Rate Adaptation for Multimedia — the
// third in-band RTC controller in the paper's Table 2. A simplified
// window-based implementation of the RFC's core control law: a congestion
// window steered by the queuing-delay distance from a target, converted
// to a media target rate; multiplicative backoff on loss.

#include <algorithm>
#include <vector>

#include "cca/gcc.hpp"  // TwccObservation

namespace zhuge::cca {

/// Simplified RFC 8298 rate controller (feedback-vector driven).
class Scream {
 public:
  struct Config {
    double start_rate_bps = 1e6;
    double min_rate_bps = 150e3;
    double max_rate_bps = 20e6;
    double qdelay_target_ms = 60.0;  ///< RFC 8298 default (congested target)
    double gain_up = 1.0;            ///< window gain when below target
    double beta_loss = 0.8;          ///< multiplicative decrease on loss
    double base_owd_forget = 0.001;  ///< slow upward drift of the base OWD
  };

  Scream() : Scream(Config{}) {}
  explicit Scream(Config cfg) : cfg_(cfg), rate_(cfg.start_rate_bps) {}

  /// Feed one feedback report plus the loss fraction observed with it.
  void on_feedback(const std::vector<TwccObservation>& observations,
                   double loss_fraction, TimePoint now) {
    if (observations.empty()) return;

    double sum_owd_ms = 0.0;
    double min_owd_ms = 1e18;
    std::int64_t bytes = 0;
    for (const auto& o : observations) {
      const double owd = (o.recv_time - o.send_time).to_millis();
      sum_owd_ms += owd;
      min_owd_ms = std::min(min_owd_ms, owd);
      bytes += o.size_bytes;
    }
    const double owd_ms = sum_owd_ms / static_cast<double>(observations.size());

    // Base delay: running minimum with a slow forgetting drift so route
    // changes do not pin the estimate forever (RFC 8298 §4.1.2's base
    // delay tracking, simplified).
    if (base_owd_ms_ < 0.0 || min_owd_ms < base_owd_ms_) {
      base_owd_ms_ = min_owd_ms;
    } else {
      base_owd_ms_ += cfg_.base_owd_forget * (owd_ms - base_owd_ms_);
    }
    const double qdelay_ms = std::max(0.0, owd_ms - base_owd_ms_);

    // Loss: multiplicative backoff once per congestion episode.
    if (loss_fraction > 0.1) {
      if (!in_loss_episode_) {
        rate_ = std::max(cfg_.min_rate_bps, rate_ * cfg_.beta_loss);
        in_loss_episode_ = true;
      }
    } else {
      in_loss_episode_ = false;
    }

    // Core control law (RFC 8298 §4.1.3, window form folded into the
    // rate): off_target in [-1, 1]; positive -> grow, negative -> shrink
    // proportionally to how far past the target the queue is.
    const double off_target =
        (cfg_.qdelay_target_ms - qdelay_ms) / cfg_.qdelay_target_ms;
    const double delta_s = has_update_
                               ? std::min(0.5, (now - last_update_).to_seconds())
                               : 0.1;
    last_update_ = now;
    has_update_ = true;

    if (off_target > 0.0) {
      // Below target: self-clocked increase proportional to delivered
      // bytes (bounded per feedback).
      const double bytes_rate = static_cast<double>(bytes) * 8.0 / delta_s;
      const double headroom = std::min(1.0, off_target);
      rate_ += cfg_.gain_up * headroom *
               std::min(0.10 * rate_, 0.05 * std::max(bytes_rate, rate_)) *
               (delta_s / 0.1);
    } else {
      // Above target: proportional decrease, up to 10 % per 100 ms.
      rate_ *= 1.0 + std::max(-0.10, 0.5 * off_target) * (delta_s / 0.1);
    }
    rate_ = std::clamp(rate_, cfg_.min_rate_bps, cfg_.max_rate_bps);
  }

  [[nodiscard]] double target_rate_bps() const { return rate_; }
  [[nodiscard]] double qdelay_target_ms() const { return cfg_.qdelay_target_ms; }
  [[nodiscard]] double base_owd_ms() const { return base_owd_ms_; }

 private:
  Config cfg_;
  double rate_;
  double base_owd_ms_ = -1.0;
  bool in_loss_episode_ = false;
  TimePoint last_update_;
  bool has_update_ = false;
};

}  // namespace zhuge::cca
