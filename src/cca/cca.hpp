#pragma once
// Congestion-control interface for ACK-clocked (out-of-band feedback)
// transports. The TCP stack drives implementations through these events;
// they answer with a congestion window and a pacing rate.
//
// GCC (in-band, feedback-vector driven) has its own interface in gcc.hpp.

#include <cstdint>
#include <memory>
#include <string>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace zhuge::cca {

using sim::Duration;
using sim::TimePoint;

/// Everything a CCA may want to know about one arriving ACK.
struct AckEvent {
  TimePoint now;
  Duration rtt = Duration::zero();       ///< sample for the acked packet
  std::uint64_t acked_bytes = 0;         ///< newly acknowledged bytes
  std::uint64_t bytes_in_flight = 0;     ///< after this ACK
  double delivery_rate_bps = 0.0;        ///< receiver-side rate estimate
  /// The acked data was sent while the application (not cwnd/pacing) was
  /// the limit, so delivery_rate_bps measures the app's offered load, not
  /// path capacity. Rate-sampling CCAs must not treat it as a ceiling.
  bool app_limited = false;
  net::AbcMark abc_echo = net::AbcMark::kNone;  ///< echoed ABC router mark
};

/// ACK-clocked congestion-control algorithm.
class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  virtual void on_ack(const AckEvent& ev) = 0;
  /// Loss inferred by fast retransmit (dup-ACK / SACK gap).
  virtual void on_loss(TimePoint now, std::uint64_t lost_bytes) = 0;
  /// Retransmission timeout fired.
  virtual void on_rto(TimePoint now) = 0;

  /// Current congestion window in bytes.
  [[nodiscard]] virtual std::uint64_t cwnd_bytes() const = 0;
  /// Pacing rate in bits/second (0 = unpaced, use cwnd clocking only).
  [[nodiscard]] virtual double pacing_rate_bps() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

inline constexpr std::uint32_t kMss = 1200;  ///< segment payload bytes

}  // namespace zhuge::cca
