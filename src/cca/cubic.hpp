#pragma once
// TCP CUBIC (Ha, Rhee, Xu 2008; RFC 9438 shape). The buffer-filling
// baseline — used in the paper only as the *competitor / interferer*
// traffic (bulk transfers), not as an RTC CCA.

#include <algorithm>
#include <cmath>

#include "cca/cca.hpp"

namespace zhuge::cca {

/// Loss-based cubic-growth congestion control.
class Cubic final : public CongestionControl {
 public:
  struct Config {
    double c = 0.4;            ///< cubic scaling constant
    double beta = 0.7;         ///< multiplicative decrease factor
    bool fast_convergence = true;
    std::uint64_t initial_cwnd = 10 * kMss;
    std::uint64_t min_cwnd = 2 * kMss;
  };

  Cubic() : Cubic(Config{}) {}
  explicit Cubic(Config cfg) : cfg_(cfg), cwnd_(cfg.initial_cwnd) {}

  void on_ack(const AckEvent& ev) override {
    if (ev.rtt > Duration::zero()) {
      srtt_ = srtt_ == Duration::zero() ? ev.rtt
                                        : srtt_ * 0.875 + ev.rtt * 0.125;
    }
    if (in_slow_start()) {
      cwnd_ += ev.acked_bytes;
      return;
    }
    // Concave/convex cubic growth toward (and past) w_max.
    const double t = (ev.now - epoch_start_).to_seconds();
    const double target_mss =
        cfg_.c * std::pow(t - k_, 3.0) + static_cast<double>(w_max_) / kMss;
    const double target = std::max(target_mss * kMss, static_cast<double>(cfg_.min_cwnd));
    if (target > static_cast<double>(cwnd_)) {
      // Standard CUBIC per-ACK increment: (target - cwnd)/cwnd per segment.
      const double inc = (target - static_cast<double>(cwnd_)) /
                         static_cast<double>(cwnd_) *
                         static_cast<double>(ev.acked_bytes);
      cwnd_ += static_cast<std::uint64_t>(std::max(0.0, inc));
    } else {
      cwnd_ += static_cast<std::uint64_t>(
          static_cast<double>(ev.acked_bytes) * kMss / static_cast<double>(cwnd_) / 100.0);
    }
  }

  void on_loss(TimePoint now, std::uint64_t) override {
    if (cfg_.fast_convergence && cwnd_ < w_max_) {
      w_max_ = static_cast<std::uint64_t>(static_cast<double>(cwnd_) *
                                          (1.0 + cfg_.beta) / 2.0);
    } else {
      w_max_ = cwnd_;
    }
    cwnd_ = std::max(cfg_.min_cwnd,
                     static_cast<std::uint64_t>(static_cast<double>(cwnd_) * cfg_.beta));
    ssthresh_ = cwnd_;
    epoch_start_ = now;
    k_ = std::cbrt(static_cast<double>(w_max_) / kMss * (1.0 - cfg_.beta) / cfg_.c);
  }

  void on_rto(TimePoint now) override {
    on_loss(now, 0);
    cwnd_ = cfg_.min_cwnd;
  }

  [[nodiscard]] std::uint64_t cwnd_bytes() const override { return cwnd_; }
  [[nodiscard]] double pacing_rate_bps() const override {
    // Pace at 1.25x cwnd/srtt to avoid self-inflicted micro-bursts.
    if (srtt_ == Duration::zero()) return 0.0;
    return 1.25 * static_cast<double>(cwnd_) * 8.0 / srtt_.to_seconds();
  }
  [[nodiscard]] std::string name() const override { return "cubic"; }

  [[nodiscard]] bool in_slow_start() const { return cwnd_ < ssthresh_; }

 private:
  Config cfg_;
  std::uint64_t cwnd_;
  std::uint64_t ssthresh_ = UINT64_MAX;
  std::uint64_t w_max_ = 0;
  TimePoint epoch_start_;
  double k_ = 0.0;
  Duration srtt_ = Duration::zero();
};

}  // namespace zhuge::cca
