#include "cca/nada.hpp"

namespace zhuge::cca {

void Nada::on_feedback(const std::vector<TwccObservation>& observations,
                       double loss_fraction, TimePoint now) {
  if (observations.empty()) return;

  // Median-ish one-way delay for this report: use the mean of samples.
  double sum_ms = 0.0;
  for (const auto& o : observations) {
    sum_ms += (o.recv_time - o.send_time).to_millis();
  }
  const double owd_ms = sum_ms / static_cast<double>(observations.size());
  // Track the base (minimum) delay: receiver/sender clocks need not be
  // synchronised, only the queuing component matters.
  if (base_delay_ms_ < 0.0 || owd_ms < base_delay_ms_) base_delay_ms_ = owd_ms;
  const double d_queue_ms = std::max(0.0, owd_ms - base_delay_ms_);

  // Composite congestion signal (RFC 8698 §4.2): delay + loss penalty.
  x_prev_ms_ = x_curr_ms_;
  x_curr_ms_ = d_queue_ms + cfg_.loss_penalty_ms * loss_fraction;

  const double delta_ms = has_update_ ? std::min(500.0, (now - last_update_).to_millis())
                                      : 100.0;
  last_update_ = now;
  has_update_ = true;

  if (x_curr_ms_ < cfg_.qepsilon_ms && loss_fraction <= 0.0) {
    // Accelerated ramp-up: multiplicative growth bounded per feedback.
    rate_ = std::min(cfg_.max_rate_bps, rate_ * (1.0 + cfg_.rampup_step));
    return;
  }

  // Gradual update (RFC 8698 §4.3): proportional + derivative control.
  const double x_offset = x_curr_ms_ - cfg_.xref_ms * cfg_.max_rate_bps / rate_;
  const double x_diff = x_curr_ms_ - x_prev_ms_;
  rate_ -= cfg_.kappa * (delta_ms / cfg_.tau_ms) * (x_offset / cfg_.tau_ms) *
           cfg_.max_rate_bps;
  rate_ -= cfg_.kappa * cfg_.eta * (x_diff / cfg_.tau_ms) * cfg_.max_rate_bps;
  rate_ = std::clamp(rate_, cfg_.min_rate_bps, cfg_.max_rate_bps);
}

}  // namespace zhuge::cca
