#pragma once
// ABC sender side (Goyal et al., NSDI 2020) — the host half of the
// host-router co-design baseline the paper compares against (§7.2).
// The ABC router marks each data packet "accelerate" or "brake"; the
// receiver echoes the mark on the ACK; the sender adjusts its window by
// +1 MSS per accelerate and -1 MSS per brake, which makes the window
// track the router's target rate within roughly one RTT.

#include <algorithm>

#include "cca/cca.hpp"

namespace zhuge::cca {

/// Window control driven entirely by echoed ABC router marks.
class AbcSender final : public CongestionControl {
 public:
  struct Config {
    std::uint64_t initial_cwnd = 10 * kMss;
    std::uint64_t min_cwnd = 2 * kMss;
  };

  AbcSender() : AbcSender(Config{}) {}
  explicit AbcSender(Config cfg) : cfg_(cfg), cwnd_(cfg.initial_cwnd) {}

  void on_ack(const AckEvent& ev) override {
    if (ev.rtt > Duration::zero()) {
      srtt_ = srtt_ <= 0.0 ? ev.rtt.to_seconds()
                           : 0.875 * srtt_ + 0.125 * ev.rtt.to_seconds();
    }
    switch (ev.abc_echo) {
      case net::AbcMark::kAccelerate:
        cwnd_ += kMss;
        break;
      case net::AbcMark::kBrake:
        cwnd_ = cwnd_ > cfg_.min_cwnd + kMss ? cwnd_ - kMss : cfg_.min_cwnd;
        break;
      case net::AbcMark::kNone:
        // Non-ABC hop on the path: fall back to gentle AIMD growth.
        cwnd_ += kMss * kMss / std::max<std::uint64_t>(cwnd_, kMss);
        break;
    }
  }

  void on_loss(TimePoint, std::uint64_t) override {
    cwnd_ = std::max(cfg_.min_cwnd, cwnd_ / 2);
  }

  void on_rto(TimePoint) override { cwnd_ = cfg_.min_cwnd; }

  [[nodiscard]] std::uint64_t cwnd_bytes() const override { return cwnd_; }
  [[nodiscard]] double pacing_rate_bps() const override {
    if (srtt_ <= 0.0) return 0.0;
    return static_cast<double>(cwnd_) * 8.0 / srtt_;
  }
  [[nodiscard]] std::string name() const override { return "abc"; }

 private:
  Config cfg_;
  std::uint64_t cwnd_;
  double srtt_ = 0.0;
};

}  // namespace zhuge::cca
