#pragma once
// Copa (Arun & Balakrishnan, NSDI 2018) — the delay-sensitive TCP CCA the
// paper pairs Zhuge with (§7.2). Copa targets a sending rate of
// 1 / (delta * dq) packets/s where dq = RTTstanding - RTTmin, and adjusts
// cwnd toward that target with a velocity parameter that doubles while the
// direction of change is consistent. Because Copa reacts to *per-packet
// delay patterns* at sub-RTT granularity, it is the stress test for
// Zhuge's distributional delta delivery (§5.2).

#include <algorithm>
#include <cmath>
#include <deque>

#include "cca/cca.hpp"
#include "stats/windowed.hpp"

namespace zhuge::cca {

/// Delay-based congestion control (default mode, delta = 0.5).
class Copa final : public CongestionControl {
 public:
  struct Config {
    double delta = 0.5;               ///< target aggressiveness
    std::uint64_t initial_cwnd = 10 * kMss;
    std::uint64_t min_cwnd = 2 * kMss;
    Duration min_rtt_window = Duration::seconds(10);
  };

  Copa() : Copa(Config{}) {}
  explicit Copa(Config cfg)
      : cfg_(cfg), cwnd_(cfg.initial_cwnd), min_rtt_filter_(cfg.min_rtt_window) {}

  void on_ack(const AckEvent& ev) override {
    if (ev.rtt <= Duration::zero()) return;
    const double rtt_s = ev.rtt.to_seconds();
    min_rtt_filter_.record(ev.now, rtt_s);
    srtt_ = srtt_ <= 0.0 ? rtt_s : 0.875 * srtt_ + 0.125 * rtt_s;

    // RTTstanding: min RTT over the last srtt/2.
    recent_rtts_.push_back({ev.now, rtt_s});
    const TimePoint cutoff = ev.now - Duration::from_seconds(std::max(srtt_ / 2.0, 0.005));
    while (!recent_rtts_.empty() && recent_rtts_.front().t < cutoff) {
      recent_rtts_.pop_front();
    }
    double standing = rtt_s;
    for (const auto& s : recent_rtts_) standing = std::min(standing, s.rtt);

    const double min_rtt = min_rtt_filter_.min(ev.now).value_or(rtt_s);
    const double dq = std::max(standing - min_rtt, 0.0);

    const double cwnd_pkts = static_cast<double>(cwnd_) / kMss;
    const double current_rate = cwnd_pkts / std::max(standing, 1e-6);  // pkts/s
    // Target rate; with an empty queue (dq ~ 0) the target is unbounded
    // and Copa increases.
    const double target_rate = dq < 1e-6
                                   ? std::numeric_limits<double>::infinity()
                                   : 1.0 / (cfg_.delta * dq);

    update_velocity(ev.now, current_rate < target_rate);

    const double step = static_cast<double>(velocity_) /
                        (cfg_.delta * cwnd_pkts) *
                        (static_cast<double>(ev.acked_bytes) / kMss) * kMss;
    if (current_rate < target_rate) {
      cwnd_ += static_cast<std::uint64_t>(step);
    } else {
      cwnd_ = cwnd_ > static_cast<std::uint64_t>(step) + cfg_.min_cwnd
                  ? cwnd_ - static_cast<std::uint64_t>(step)
                  : cfg_.min_cwnd;
    }
    last_rtt_ = ev.rtt;
  }

  void on_loss(TimePoint, std::uint64_t) override {
    // Copa's default mode does not react to isolated losses.
  }

  void on_rto(TimePoint) override {
    cwnd_ = std::max(cfg_.min_cwnd, cwnd_ / 2);
    velocity_ = 1;
  }

  [[nodiscard]] std::uint64_t cwnd_bytes() const override { return cwnd_; }
  [[nodiscard]] double pacing_rate_bps() const override {
    // Copa paces at 2*cwnd/RTTstanding; approximate with srtt.
    if (srtt_ <= 0.0) return 0.0;
    return 2.0 * static_cast<double>(cwnd_) * 8.0 / srtt_;
  }
  [[nodiscard]] std::string name() const override { return "copa"; }

  [[nodiscard]] double velocity() const { return static_cast<double>(velocity_); }

 private:
  /// Velocity doubles once per RTT while the direction persists for at
  /// least three consecutive RTTs; any flip resets it to 1.
  void update_velocity(TimePoint now, bool up) {
    if (direction_rtts_ == 0) {
      direction_up_ = up;
      direction_rtts_ = 1;
      last_velocity_update_ = now;
      return;
    }
    if (up != direction_up_) {
      direction_up_ = up;
      direction_rtts_ = 1;
      velocity_ = 1;
      last_velocity_update_ = now;
      return;
    }
    if ((now - last_velocity_update_).to_seconds() >= srtt_ && srtt_ > 0.0) {
      ++direction_rtts_;
      if (direction_rtts_ >= 3) velocity_ = std::min<std::uint64_t>(velocity_ * 2, 1u << 16);
      last_velocity_update_ = now;
    }
  }

  Config cfg_;
  std::uint64_t cwnd_;
  stats::WindowedMin min_rtt_filter_;
  struct RttSample {
    TimePoint t;
    double rtt;
  };
  std::deque<RttSample> recent_rtts_;
  double srtt_ = 0.0;
  Duration last_rtt_ = Duration::zero();
  std::uint64_t velocity_ = 1;
  bool direction_up_ = true;
  int direction_rtts_ = 0;
  TimePoint last_velocity_update_;
};

}  // namespace zhuge::cca
