#pragma once
// NADA (RFC 8698): Network-Assisted Dynamic Adaptation — one of the
// in-band RTC CCAs in the paper's Table 2. Feedback-driven like GCC, but
// rate updates follow a control law on a composite congestion signal
// (queuing delay plus a loss penalty) with proportional and derivative
// terms, plus an accelerated ramp-up mode when the path is uncongested.

#include <algorithm>
#include <vector>

#include "cca/gcc.hpp"  // reuses TwccObservation

namespace zhuge::cca {

/// Simplified RFC 8698 rate controller.
class Nada {
 public:
  struct Config {
    double start_rate_bps = 1e6;
    double min_rate_bps = 150e3;
    double max_rate_bps = 20e6;
    double xref_ms = 10.0;     ///< reference congestion signal
    double kappa = 0.5;        ///< scaling of the gradual update
    double eta = 2.0;          ///< derivative weight
    double tau_ms = 500.0;     ///< time constant
    double loss_penalty_ms = 1000.0;  ///< delay-equivalent of 100 % loss
    double rampup_step = 0.10; ///< accelerated ramp-up per feedback
    double qepsilon_ms = 10.0; ///< "uncongested" queuing-delay bound
  };

  Nada() : Nada(Config{}) {}
  explicit Nada(Config cfg) : cfg_(cfg), rate_(cfg.start_rate_bps) {}

  /// Feed one TWCC feedback report plus the current loss fraction.
  void on_feedback(const std::vector<TwccObservation>& observations,
                   double loss_fraction, TimePoint now);

  [[nodiscard]] double target_rate_bps() const { return rate_; }
  [[nodiscard]] double congestion_signal_ms() const { return x_curr_ms_; }

 private:
  Config cfg_;
  double rate_;
  double base_delay_ms_ = -1.0;  ///< min one-way delay seen (clock-offset base)
  double x_curr_ms_ = 0.0;
  double x_prev_ms_ = 0.0;
  TimePoint last_update_;
  bool has_update_ = false;
};

}  // namespace zhuge::cca
