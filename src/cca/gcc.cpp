#include "cca/gcc.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace zhuge::cca {

namespace {
// Debug aid: set ZHUGE_GCC_TRACE=1 to stream controller state to stderr.
bool trace_enabled() {
  // zlint-allow(banned-api): read once, gates a stderr debug trace only;
  // controller decisions and results never depend on it.
  static const bool on = std::getenv("ZHUGE_GCC_TRACE") != nullptr;
  return on;
}
}  // namespace

void Gcc::update_receive_rate(const std::vector<TwccObservation>& obs) {
  // Windowed estimator (WebRTC uses a ~500 ms bitrate window): measuring
  // over one feedback's receive span would be wildly inflated by AMPDU
  // burst delivery (a whole aggregate lands within a few ms).
  if (obs.empty()) return;
  TimePoint newest = obs.front().recv_time;
  for (const auto& o : obs) {
    recv_rate_window_.record(o.recv_time, o.size_bytes);
    newest = std::max(newest, o.recv_time);
  }
  if (const auto r = recv_rate_window_.rate_bps(newest); r.has_value()) {
    receive_rate_bps_ = *r;
  }
}

void Gcc::on_feedback(const std::vector<TwccObservation>& observations, TimePoint now) {
  update_receive_rate(observations);
  Duration group_span = Duration::zero();
  for (const auto& o : observations) {
    // WebRTC InterArrival grouping: packets sent within burst_span of the
    // group's first send belong to the same group; the group's timestamps
    // are its last send/recv.
    if (!current_group_.valid) {
      current_group_ = {o.send_time, o.send_time, o.recv_time, true};
      continue;
    }
    if (o.send_time - current_group_.first_send <= cfg_.burst_span) {
      current_group_.last_send = std::max(current_group_.last_send, o.send_time);
      current_group_.last_recv = std::max(current_group_.last_recv, o.recv_time);
      continue;
    }
    // Group boundary: compute the inter-group gradient.
    if (prev_group_.valid) {
      const double d_send =
          (current_group_.last_send - prev_group_.last_send).to_millis();
      const double d_recv =
          (current_group_.last_recv - prev_group_.last_recv).to_millis();
      const double gradient = d_recv - d_send;
      accumulated_delay_ms_ += gradient;
      smoothed_delay_ms_ = cfg_.smoothing * smoothed_delay_ms_ +
                           (1.0 - cfg_.smoothing) * accumulated_delay_ms_;
      const double arrival_ms = current_group_.last_recv.to_millis();
      if (first_arrival_ms_ < 0.0) first_arrival_ms_ = arrival_ms;
      trend_points_.push_back({arrival_ms - first_arrival_ms_, smoothed_delay_ms_});
      while (trend_points_.size() > cfg_.trendline_window) trend_points_.pop_front();
      group_span = Duration::from_millis(std::max(1.0, d_send));
    }
    prev_group_ = current_group_;
    current_group_ = {o.send_time, o.send_time, o.recv_time, true};
  }
  if (trend_points_.size() >= cfg_.trendline_window / 2) {
    update_trendline(now);
    detect(last_slope_, group_span, now);
  }
  update_rate(now);
  trace(now);
}

void Gcc::update_trendline(TimePoint) {
  // Least-squares slope of smoothed accumulated delay vs arrival time.
  const std::size_t n = trend_points_.size();
  double sx = 0, sy = 0;
  for (const auto& p : trend_points_) {
    sx += p.arrival_ms;
    sy += p.smoothed_ms;
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double num = 0, den = 0;
  for (const auto& p : trend_points_) {
    num += (p.arrival_ms - mx) * (p.smoothed_ms - my);
    den += (p.arrival_ms - mx) * (p.arrival_ms - mx);
  }
  last_slope_ = den > 1e-9 ? num / den : 0.0;
}

void Gcc::detect(double trend, Duration, TimePoint now) {
  // Scale the slope into the threshold's domain, as WebRTC does:
  // modified_trend = slope * gain * sample_window.
  const double samples = static_cast<double>(
      std::min<std::size_t>(trend_points_.size(), cfg_.trendline_window));
  const double modified = trend * cfg_.gain * samples;

  if (modified > threshold_ms_) {
    // Require persistence (>= 10 ms and 2 consecutive samples) before
    // declaring overuse. The candidate counter must survive while the
    // hypothesis is still Normal — resetting it on "not yet overusing"
    // would make the two-sample gate unsatisfiable.
    if (overuse_count_ == 0) overuse_start_ = now;
    ++overuse_count_;
    if (overuse_count_ >= 2 && now - overuse_start_ >= Duration::millis(10)) {
      hypothesis_ = Hypothesis::kOveruse;
    }
  } else if (modified < -threshold_ms_) {
    overuse_count_ = 0;
    hypothesis_ = Hypothesis::kUnderuse;
  } else {
    overuse_count_ = 0;
    hypothesis_ = Hypothesis::kNormal;
  }

  // Adaptive threshold (avoids starvation against loss-based flows).
  // WebRTC's guard: when the trend overshoots the threshold by more than
  // 15 ms the signal is a genuine overuse, not ambient noise — freezing
  // adaptation there keeps the threshold from racing ahead of the very
  // congestion it is supposed to detect.
  // dt capped at 25 ms: WebRTC adapts once per packet group (5-25 ms
  // apart); we run the detector once per feedback (~100 ms), and letting
  // a single update close 0.87 of the gap would track any rising trend
  // before the overuse hypothesis can fire.
  const double dt_ms = last_detector_update_ == TimePoint{}
                           ? 10.0
                           : std::min(25.0, (now - last_detector_update_).to_millis());
  last_detector_update_ = now;
  if (std::abs(modified) > threshold_ms_ + cfg_.max_adapt_offset_ms) return;
  const double k = std::abs(modified) < threshold_ms_ ? cfg_.k_down : cfg_.k_up;
  threshold_ms_ += k * (std::abs(modified) - threshold_ms_) * dt_ms;
  threshold_ms_ = std::clamp(threshold_ms_, 6.0, 600.0);
}

void Gcc::update_rate(TimePoint now) {
  switch (hypothesis_) {
    case Hypothesis::kOveruse:
      rate_state_ = RateState::kDecrease;
      break;
    case Hypothesis::kUnderuse:
      // Queues are draining; hold until normal to avoid premature growth.
      rate_state_ = RateState::kHold;
      break;
    case Hypothesis::kNormal:
      if (rate_state_ == RateState::kDecrease) rate_state_ = RateState::kHold;
      else rate_state_ = RateState::kIncrease;
      break;
  }

  if (rate_state_ == RateState::kDecrease) {
    const double base = receive_rate_bps_ > 0.0 ? receive_rate_bps_ : delay_based_rate_;
    // Track the link estimate; when the operating point moved far from the
    // previous estimate (capacity changed abruptly), reset rather than
    // average — WebRTC's 3-sigma rule serves the same purpose.
    if (avg_max_bps_ <= 0.0 || base < 0.5 * avg_max_bps_ || base > 1.5 * avg_max_bps_) {
      avg_max_bps_ = base;
    } else {
      avg_max_bps_ = 0.8 * avg_max_bps_ + 0.2 * base;
    }
    delay_based_rate_ = std::max(cfg_.min_rate_bps, cfg_.decrease_factor * base);
    last_rate_update_ = now;
    // One decrease per overuse signal; wait for the next detector verdict.
    hypothesis_ = Hypothesis::kNormal;
    return;
  }
  if (rate_state_ == RateState::kIncrease &&
      (last_rate_update_ == TimePoint{} ||
       now - last_rate_update_ >= cfg_.response_interval)) {
    // WebRTC regime switching: multiplicative until the first overuse pins
    // down a link estimate (avg_max), additive probing near that estimate
    // afterwards — refilling a standing queue multiplicatively would
    // defeat convergence after an overshoot.
    if (avg_max_bps_ > 0.0 && receive_rate_bps_ > 1.5 * avg_max_bps_) {
      avg_max_bps_ = -1.0;  // the link got much better; re-probe
    }
    if (avg_max_bps_ > 0.0 && delay_based_rate_ > 0.95 * avg_max_bps_) {
      delay_based_rate_ += cfg_.additive_increase_bps;
    } else {
      delay_based_rate_ *= cfg_.increase_factor;
    }
    delay_based_rate_ = std::min(delay_based_rate_, cfg_.max_rate_bps);
    // Never run far ahead of what the path demonstrably delivers.
    if (receive_rate_bps_ > 0.0) {
      delay_based_rate_ = std::min(delay_based_rate_, 1.5 * receive_rate_bps_ + 10e3);
    }
    last_rate_update_ = now;
  }
}

void Gcc::on_loss_report(double loss_fraction, TimePoint now) {
  // Loss-based updates are rate-limited (WebRTC evaluates roughly once per
  // second): applying the 5 % increase on every 25 ms TWCC report would
  // re-inflate the rate ~7x per second and never let a queue drain.
  if (last_loss_update_ != TimePoint{} &&
      now - last_loss_update_ < cfg_.loss_update_interval) {
    pending_loss_ = std::max(pending_loss_, loss_fraction);
    return;
  }
  loss_fraction = std::max(loss_fraction, pending_loss_);
  pending_loss_ = 0.0;
  last_loss_update_ = now;
  if (loss_fraction > cfg_.loss_decrease_threshold) {
    // The cut anchors at the current operating point: a stale cap value
    // (from an earlier loss episode at a higher link rate) must not make
    // the controller spend seconds cutting through rates it is no longer
    // operating anywhere near.
    const double operating = std::max(delay_based_rate_, receive_rate_bps_);
    if (!loss_cap_active_ || loss_based_rate_ > operating) {
      loss_based_rate_ = operating;
    }
    loss_cap_active_ = true;
    loss_based_rate_ = std::max(cfg_.min_rate_bps,
                                loss_based_rate_ * (1.0 - 0.5 * loss_fraction));
    // A loss episode is also a link-capacity observation: without it the
    // delay-based side (blind to a standing queue's zero slope) would keep
    // probing multiplicatively right back over the cliff.
    if (receive_rate_bps_ > 0.0) {
      if (avg_max_bps_ <= 0.0 || receive_rate_bps_ < 0.5 * avg_max_bps_ ||
          receive_rate_bps_ > 1.5 * avg_max_bps_) {
        avg_max_bps_ = receive_rate_bps_;
      } else {
        avg_max_bps_ = 0.8 * avg_max_bps_ + 0.2 * receive_rate_bps_;
      }
    }
  } else if (loss_fraction < cfg_.loss_increase_threshold && loss_cap_active_) {
    // Recovery slope: min(multiplicative, additive).
    //  * At low rates (deep cut after a fade) the 5 %/update multiplicative
    //    term is smaller — a cautious ramp that lets the bloated queue
    //    drain before the rate climbs back to capacity.
    //  * At high rates the additive term is smaller — and additive
    //    increase paired with multiplicative decrease (AIMD) is what makes
    //    the shares of competing flows converge instead of freezing at
    //    whatever ratio they started with (MIMD never converges).
    loss_based_rate_ = std::min(
        cfg_.max_rate_bps,
        std::min(loss_based_rate_ * 1.05,
                 loss_based_rate_ + cfg_.loss_additive_recovery_bps));
    // Once the cap has recovered past the delay-based estimate it no
    // longer carries information; release it.
    if (loss_based_rate_ >= delay_based_rate_) loss_cap_active_ = false;
  }
}

void Gcc::trace(TimePoint now) const {
  if (!trace_enabled()) return;
  std::fprintf(stderr,
               "gcc %p t=%.2f delay=%.2f loss=%.2f recv=%.2f capON=%d hyp=%d "
               "state=%d slope=%.3f thr=%.1f avgmax=%.2f\n",
               static_cast<const void*>(this),
               now.to_seconds(), delay_based_rate_ / 1e6, loss_based_rate_ / 1e6,
               receive_rate_bps_ / 1e6, loss_cap_active_ ? 1 : 0,
               static_cast<int>(hypothesis_), static_cast<int>(rate_state_),
               last_slope_, threshold_ms_, avg_max_bps_ / 1e6);
}

double Gcc::target_rate_bps() const {
  const double rate = loss_cap_active_
                          ? std::min(delay_based_rate_, loss_based_rate_)
                          : delay_based_rate_;
  return std::clamp(rate, cfg_.min_rate_bps, cfg_.max_rate_bps);
}

}  // namespace zhuge::cca
