#pragma once
// Video source/sink models for RTC flows.
//
// The encoder produces frames at a fixed fps whose sizes track the CCA's
// target bitrate (the paper's setup: 1080p 24 fps, ~2 Mbps average, §7.2),
// with log-normal per-frame size jitter and periodically larger I-frames.
// Frame *content* is irrelevant — only sizes and timing matter for frame
// delay / frame rate, the paper's application metrics.

#include <cstdint>
#include <functional>

#include "obs/spans.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"
#include "stats/distribution.hpp"

namespace zhuge::rtc {

using sim::Duration;
using sim::TimePoint;

/// Encoder model parameters.
struct VideoConfig {
  double fps = 24.0;
  double start_bitrate_bps = 1.0e6;
  double min_bitrate_bps = 150e3;
  /// Default profile matches the paper's §7.2 video (1080p24, average
  /// bitrate 2 Mbps): the encoder cannot produce more than ~2.5 Mbps, so
  /// in the un-congested steady state the flow is application-limited.
  /// Microbenchmarks that need the CCA to fill a 30 Mbps link override it.
  double max_bitrate_bps = 2.5e6;
  std::uint32_t iframe_interval = 48;  ///< frames between I-frames (0 = off)
  double iframe_ratio = 3.0;           ///< I-frame size vs P-frame size
  double size_jitter_sigma = 0.15;     ///< log-normal sigma on frame size
  double rate_adaptation_alpha = 0.5;  ///< encoder rate tracking smoothing
};

/// Rate-tracking frame-size generator.
class VideoEncoder {
 public:
  VideoEncoder(VideoConfig cfg, sim::Rng& rng)
      : cfg_(cfg), rng_(rng), encoder_rate_(cfg.start_bitrate_bps) {}

  /// Produce the next frame's size for a CCA target bitrate. The encoder
  /// rate moves toward the target with bounded per-frame adaptation, as
  /// real encoders do.
  [[nodiscard]] std::uint64_t next_frame_bytes(double target_bitrate_bps) {
    const double clamped =
        std::clamp(target_bitrate_bps, cfg_.min_bitrate_bps, cfg_.max_bitrate_bps);
    encoder_rate_ += cfg_.rate_adaptation_alpha * (clamped - encoder_rate_);

    double base = encoder_rate_ / cfg_.fps / 8.0;
    const bool iframe =
        cfg_.iframe_interval > 0 && (frame_index_ % cfg_.iframe_interval) == 0;
    if (iframe) {
      // I-frames are larger; P-frames shrink so the average rate holds.
      const double n = static_cast<double>(cfg_.iframe_interval);
      const double p_scale = n / (n - 1.0 + cfg_.iframe_ratio);
      base *= cfg_.iframe_ratio * p_scale;
    } else if (cfg_.iframe_interval > 0) {
      const double n = static_cast<double>(cfg_.iframe_interval);
      base *= n / (n - 1.0 + cfg_.iframe_ratio);
    }
    const double jitter = rng_.lognormal(0.0, cfg_.size_jitter_sigma) /
                          std::exp(cfg_.size_jitter_sigma * cfg_.size_jitter_sigma / 2.0);
    ++frame_index_;
    return static_cast<std::uint64_t>(std::max(200.0, base * jitter));
  }

  [[nodiscard]] double encoder_rate_bps() const { return encoder_rate_; }
  [[nodiscard]] Duration frame_interval() const {
    return Duration::from_seconds(1.0 / cfg_.fps);
  }
  [[nodiscard]] const VideoConfig& config() const { return cfg_; }

 private:
  VideoConfig cfg_;
  sim::Rng& rng_;
  double encoder_rate_;
  std::uint64_t frame_index_ = 0;
};

/// Receiver-side application metrics: frame delay and per-second frame
/// rate (the paper's Fig. 11–18 y-axes).
class FrameStats {
 public:
  /// Optional per-decode hook (time-series recording in the harness).
  using DecodeObserver = std::function<void(TimePoint capture, TimePoint decode)>;
  void set_observer(DecodeObserver obs) { observer_ = std::move(obs); }

  /// Optional frame-span hook (latency attribution): the receiver hands a
  /// fully-stamped FrameSpan here when a frame leaves the jitter buffer.
  using SpanObserver = std::function<void(const obs::FrameSpan&)>;
  void set_span_observer(SpanObserver obs) { span_observer_ = std::move(obs); }
  void on_frame_span(const obs::FrameSpan& s) {
    if (span_observer_) span_observer_(s);
  }

  /// Record a decoded frame: capture at the sender, decode at the receiver.
  void on_frame_decoded(TimePoint capture_time, TimePoint decode_time) {
    frame_delays_ms_.add((decode_time - capture_time).to_millis());
    const auto sec = static_cast<std::size_t>(decode_time.to_seconds());
    if (per_second_counts_.size() <= sec) per_second_counts_.resize(sec + 1, 0);
    ++per_second_counts_[sec];
    if (observer_) observer_(capture_time, decode_time);
  }

  /// Raw per-second decode counts (index = simulation second).
  [[nodiscard]] const std::vector<std::uint32_t>& per_second_counts() const {
    return per_second_counts_;
  }

  /// Frame-delay distribution in milliseconds.
  [[nodiscard]] const stats::Distribution& frame_delays_ms() const {
    return frame_delays_ms_;
  }

  /// Distribution of per-second decoded frame counts, over [from, to)
  /// seconds of simulation time (skips the warm-up by default).
  [[nodiscard]] stats::Distribution frame_rates(std::size_t from_sec,
                                                std::size_t to_sec) const {
    stats::Distribution d;
    for (std::size_t s = from_sec; s < to_sec; ++s) {
      d.add(s < per_second_counts_.size()
                ? static_cast<double>(per_second_counts_[s])
                : 0.0);
    }
    return d;
  }

  [[nodiscard]] std::size_t frames_decoded() const {
    return frame_delays_ms_.count();
  }

 private:
  stats::Distribution frame_delays_ms_;
  std::vector<std::uint32_t> per_second_counts_;
  DecodeObserver observer_;
  SpanObserver span_observer_;
};

}  // namespace zhuge::rtc
