#pragma once
// Packet model shared by every protocol stack in the repository.
//
// A Packet is a value type: a small fixed part (flow id, wire size,
// timestamps) plus a variant holding exactly one protocol header. The
// variant mirrors what a real middlebox can parse from the wire; fields
// marked "oracle" exist only for measurement and are never read by any
// protocol logic.

#include <cstdint>
#include <functional>
#include <variant>
#include <vector>

#include "obs/spans.hpp"
#include "sim/time.hpp"

namespace zhuge::net {

using sim::Duration;
using sim::TimePoint;

/// 5-tuple flow identity. Zhuge identifies flows by 5-tuple only (§5.2) and
/// never inspects sequence numbers of encrypted transports.
struct FlowId {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 0;  ///< 6 = TCP-like, 17 = UDP (RTP/RTCP/QUIC)

  /// Ordered + equality-comparable: per-flow tables are std::map keyed on
  /// FlowId so that iteration order is the 5-tuple order, never a hash
  /// function's — one of the determinism guarantees zlint enforces.
  friend auto operator<=>(const FlowId&, const FlowId&) = default;

  /// The reverse direction of this flow (feedback path).
  [[nodiscard]] FlowId reversed() const {
    return FlowId{dst_ip, src_ip, dst_port, src_port, proto};
  }
};

/// Hash for callers that key *non-result-affecting* lookup tables by flow
/// (result-affecting layers use ordered std::map — see above).
struct FlowIdHash {
  std::size_t operator()(const FlowId& f) const {
    std::uint64_t h = f.src_ip;
    h = h * 1000003u ^ f.dst_ip;
    h = h * 1000003u ^ (static_cast<std::uint64_t>(f.src_port) << 16 | f.dst_port);
    h = h * 1000003u ^ f.proto;
    return static_cast<std::size_t>(h * 0x9e3779b97f4a7c15ULL >> 16);
  }
};

/// ABC (NSDI '20) one-bit router feedback carried on data packets and
/// echoed on ACKs. `kNone` means the packet never crossed an ABC router.
enum class AbcMark : std::uint8_t { kNone, kAccelerate, kBrake };

/// TCP-like transport header. Sequence/ack numbers count bytes.
struct TcpHeader {
  std::uint64_t seq = 0;       ///< first byte carried (data packets)
  std::uint64_t end_seq = 0;   ///< one past last byte carried
  std::uint64_t ack = 0;       ///< cumulative ACK (feedback packets)
  bool is_ack = false;
  std::uint64_t ts_val = 0;    ///< echo timestamp pair (us), as TCP TS option
  std::uint64_t ts_echo = 0;
  AbcMark abc_mark = AbcMark::kNone;  ///< set by an ABC router on data
  AbcMark abc_echo = AbcMark::kNone;  ///< echoed by the receiver on ACKs
  std::uint64_t sack_upto = 0;        ///< highest byte seen (SACK-lite)

  // Application framing metadata (conceptually part of the payload; the
  // receiver's app parses it to track video-frame completion).
  std::uint32_t frame_id = 0;
  std::uint64_t frame_end_seq = 0;  ///< stream offset one past the frame
  TimePoint capture_time;           ///< frame capture/encode timestamp
};

/// RTP media packet header (RFC 3550 + TWCC extension, draft-holmer).
struct RtpHeader {
  std::uint32_t ssrc = 0;
  std::uint16_t seq = 0;        ///< RTP sequence number
  std::uint16_t twcc_seq = 0;   ///< transport-wide CC sequence number
  std::uint32_t frame_id = 0;   ///< which video frame this packet belongs to
  std::uint16_t packet_in_frame = 0;
  std::uint16_t packets_in_frame = 1;
  bool marker = false;          ///< last packet of the frame
  bool retransmission = false;  ///< NACK-triggered retransmission
  TimePoint capture_time;       ///< frame capture/encode timestamp
};

/// RTCP transport-wide congestion-control feedback (RFC 8888 shape):
/// per-packet arrival timestamps keyed by TWCC sequence number.
struct TwccFeedback {
  struct Entry {
    std::uint16_t twcc_seq = 0;
    TimePoint recv_time;  ///< receiver (or AP, under Zhuge) clock
  };
  std::uint32_t ssrc = 0;
  std::vector<Entry> entries;
  bool constructed_by_ap = false;  ///< oracle: true when Zhuge built it
};

/// RTCP NACK: receiver asks for retransmission of lost RTP seqs.
struct RtcpNack {
  std::uint32_t ssrc = 0;
  std::vector<std::uint16_t> seqs;
};

/// RTCP receiver report (loss fraction; used by GCC's loss controller).
struct RtcpReceiverReport {
  std::uint32_t ssrc = 0;
  double loss_fraction = 0.0;
  std::uint32_t highest_seq = 0;
};

/// An RTCP compound packet carrying one report type.
struct RtcpHeader {
  std::variant<TwccFeedback, RtcpNack, RtcpReceiverReport> payload;
};

/// One simulated packet. Value-semantic; moving is cheap.
struct Packet {
  std::uint64_t uid = 0;   ///< globally unique per simulation
  FlowId flow;
  std::uint32_t size_bytes = 0;

  std::variant<std::monostate, TcpHeader, RtpHeader, RtcpHeader> header;

  TimePoint sent_time;     ///< departure from origin host (origin clock)

  // ---- oracle fields (measurement only; never read by protocol logic) ----
  TimePoint ap_enqueue_time;   ///< arrival at the AP downlink queue
  TimePoint head_time;         ///< when the packet became queue head
  TimePoint delivered_time;    ///< arrival at final receiver
  double predicted_delay_ms = -1.0;  ///< Fortune Teller estimate, if any
  obs::PacketSpan span;        ///< per-stage latency stamps (obs/spans.hpp)

  [[nodiscard]] bool is_tcp() const { return std::holds_alternative<TcpHeader>(header); }
  [[nodiscard]] bool is_rtp() const { return std::holds_alternative<RtpHeader>(header); }
  [[nodiscard]] bool is_rtcp() const { return std::holds_alternative<RtcpHeader>(header); }

  [[nodiscard]] TcpHeader& tcp() { return std::get<TcpHeader>(header); }
  [[nodiscard]] const TcpHeader& tcp() const { return std::get<TcpHeader>(header); }
  [[nodiscard]] RtpHeader& rtp() { return std::get<RtpHeader>(header); }
  [[nodiscard]] const RtpHeader& rtp() const { return std::get<RtpHeader>(header); }
  [[nodiscard]] RtcpHeader& rtcp() { return std::get<RtcpHeader>(header); }
  [[nodiscard]] const RtcpHeader& rtcp() const { return std::get<RtcpHeader>(header); }
};

/// Anything that consumes packets. std::function keeps wiring flexible;
/// components hand out handlers bound to member functions.
using PacketHandler = std::function<void(Packet)>;

/// Monotonically increasing packet uid source (one per simulation).
class PacketUidSource {
 public:
  std::uint64_t next() { return ++last_; }

 private:
  std::uint64_t last_ = 0;
};

}  // namespace zhuge::net
