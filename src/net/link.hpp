#pragma once
// Point-to-point wired link: serialization at a fixed rate plus fixed
// propagation delay, with an optional drop-tail buffer. Models the WAN
// segment and the AP's Ethernet uplink, which the paper treats as stable.
//
// "Stable" is the default, not a law: loss_prob models residual wire
// corruption, and set_fault_hook() lets a fault injector interpose on the
// delivery path without the link knowing anything about fault plans.
//
// Hot-path layout (PR 8): a packet crossing the link used to be moved
// through two chained closures (serialization end, then propagation end) —
// two ~200-byte memcpys into the event engine's callback nodes per hop.
// In-flight packets now park once in a sim::Pool and the two events carry
// only {this, slot index}: the event nodes stay within one cache line of
// payload and the Packet is touched exactly twice (move in at send, move
// out at delivery). Timing, ordering, and RNG draw order are unchanged —
// the golden fingerprint suites pin that.

#include <cstdint>
#include <deque>
#include <optional>

#include "net/packet.hpp"
#include "obs/invariants.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/pool.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace zhuge::net {

/// FIFO wired link. Packets entering while the link is busy queue in an
/// (optionally bounded) buffer. Delivery order is preserved.
class PointToPointLink {
 public:
  struct Config {
    double rate_bps = 1e9;            ///< serialization rate
    Duration prop_delay = Duration::millis(1);
    std::int64_t buffer_bytes = -1;   ///< -1 = unbounded
    Duration jitter_max = Duration::zero();  ///< uniform extra delay in [0, jitter_max]
    double loss_prob = 0.0;  ///< per-packet random loss (needs set_rng)
  };

  PointToPointLink(sim::Simulator& simulator, Config cfg, PacketHandler sink)
      : sim_(simulator), cfg_(cfg), sink_(std::move(sink)) {}

  /// Offer a packet to the link. Returns false if the buffer overflowed
  /// (packet dropped).
  bool send(Packet p) {
    if (cfg_.buffer_bytes >= 0 &&
        queued_bytes_ + p.size_bytes > cfg_.buffer_bytes) {
      ++drops_;
      ZHUGE_METRIC_INC("link.drops");
      ZHUGE_TRACE(sim_.now(), "link", "drop", {"reason_overflow", 1.0},
                  {"bytes", double(p.size_bytes)},
                  {"queued_bytes", double(queued_bytes_)});
      return false;
    }
    queued_bytes_ += p.size_bytes;
    queue_.push_back(pool_.put(std::move(p)));
    if (!busy_) transmit_next();
    return true;
  }

  /// Attach/replace the delivery sink.
  void set_sink(PacketHandler sink) { sink_ = std::move(sink); }

  /// Provide an RNG for jitter and random loss; without one, jitter_max
  /// and loss_prob are ignored.
  void set_rng(sim::Rng* rng) { rng_ = rng; }

  /// Interpose a handler between the wire and the sink (fault injection).
  /// Pass nullptr to remove. The hook receives every packet that survived
  /// serialization, propagation, and random loss.
  void set_fault_hook(PacketHandler hook) { fault_hook_ = std::move(hook); }

  [[nodiscard]] std::uint64_t drops() const { return drops_; }
  [[nodiscard]] std::uint64_t random_drops() const { return random_drops_; }
  [[nodiscard]] std::int64_t queued_bytes() const { return queued_bytes_; }
  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  void transmit_next() {
    if (queue_.empty()) {
      busy_ = false;
      return;
    }
    busy_ = true;
    const sim::Pool<Packet>::Index idx = queue_.front();
    queue_.pop_front();
    const std::uint32_t size_bytes = pool_.at(idx).size_bytes;
    queued_bytes_ -= size_bytes;
    ZHUGE_INVARIANT(sim_.now(), "link.nonnegative_bytes", queued_bytes_ >= 0,
                    "link byte accounting went negative");
    const Duration tx = Duration::from_seconds(
        static_cast<double>(size_bytes) * 8.0 / cfg_.rate_bps);
    sim_.schedule_after(tx, [this, idx] { on_serialized(idx); });
  }

  void on_serialized(sim::Pool<Packet>::Index idx) {
    if (rng_ != nullptr && cfg_.loss_prob > 0.0 && rng_->chance(cfg_.loss_prob)) {
      ++random_drops_;
      ZHUGE_METRIC_INC("link.drops");
      ZHUGE_TRACE(sim_.now(), "link", "drop", {"reason_random_loss", 1.0},
                  {"bytes", double(pool_.at(idx).size_bytes)});
      pool_.release(idx);
      transmit_next();
      return;
    }
    Duration extra = cfg_.prop_delay;
    if (rng_ != nullptr && cfg_.jitter_max > Duration::zero()) {
      extra += Duration::from_seconds(
          rng_->uniform(0.0, cfg_.jitter_max.to_seconds()));
    }
    sim_.schedule_after(extra, [this, idx] {
      Packet p = pool_.take(idx);
      if (fault_hook_) {
        fault_hook_(std::move(p));
      } else if (sink_) {
        sink_(std::move(p));
      }
    });
    transmit_next();
  }

  sim::Simulator& sim_;
  Config cfg_;
  PacketHandler sink_;
  PacketHandler fault_hook_;
  sim::Rng* rng_ = nullptr;
  sim::Pool<Packet> pool_;              ///< queued + in-flight packets
  std::deque<sim::Pool<Packet>::Index> queue_;
  std::int64_t queued_bytes_ = 0;
  bool busy_ = false;
  std::uint64_t drops_ = 0;         ///< buffer overflow (tail) drops
  std::uint64_t random_drops_ = 0;  ///< loss_prob drops
};

}  // namespace zhuge::net
