#pragma once
// 16-bit sequence-number unwrapping (RTP seq and TWCC seq wrap every 65536
// packets — a few minutes of video). The unwrapper maps the wire's uint16
// stream onto a monotonic int64 timeline, tolerating moderate reordering.

#include <cstdint>

namespace zhuge::net {

/// Stateful uint16 -> int64 unwrapper.
class SeqUnwrapper {
 public:
  /// Unwrap the next observed value. Values within +-32768 of the previous
  /// observation are interpreted as the nearest representative.
  ///
  /// Tie-break, pinned: at a distance of exactly 0x8000 the two
  /// interpretations are equidistant (fwd == bwd == 0x8000) and the
  /// *forward* one wins — `fwd <= 0x8000` below, not `<`. Forward is the
  /// right default for TWCC/RTP feedback: sequence numbers advance, so a
  /// half-range jump is overwhelmingly a burst of losses ahead of us, not
  /// a 32768-packet reordering. Changing this to backward would silently
  /// shift every post-gap unwrapped value by 65536; net_test pins it.
  [[nodiscard]] std::int64_t unwrap(std::uint16_t seq) {
    if (!started_) {
      started_ = true;
      last_ = seq;
      return last_;
    }
    const auto last_wire = static_cast<std::uint16_t>(last_ & 0xFFFF);
    const auto fwd = static_cast<std::uint16_t>(seq - last_wire);
    const auto bwd = static_cast<std::uint16_t>(last_wire - seq);
    if (fwd <= 0x8000) {
      last_ += fwd;
    } else {
      last_ -= bwd;
    }
    return last_;
  }

  [[nodiscard]] bool started() const { return started_; }

 private:
  bool started_ = false;
  std::int64_t last_ = 0;
};

}  // namespace zhuge::net
