#include "fault/fault.hpp"

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace zhuge::fault {

Injector::Injector(sim::Simulator& simulator, sim::Rng rng, InjectorConfig cfg,
                   net::PacketHandler sink)
    : sim_(simulator), rng_(rng), cfg_(std::move(cfg)), sink_(std::move(sink)) {}

void Injector::handle(net::Packet p) {
  const TimePoint now = sim_.now();

  if (cfg_.only_feedback && !is_feedback(p)) {
    ++bypassed_;
    sink_(std::move(p));  // not even counted as passed: never entered
    return;
  }

  if (in_windows(cfg_.blackouts, now)) {
    ++blackout_drops_;
    ZHUGE_METRIC_INC("fault.blackout_drops");
    ZHUGE_TRACE(now, "fault", "blackout_drop", {"bytes", double(p.size_bytes)});
    return;
  }

  const bool probabilistic_active =
      cfg_.active.empty() || in_windows(cfg_.active, now);

  // Advance the Gilbert-Elliott chain once per packet, whether or not the
  // packet ends up lost — the chain models channel state, not outcomes.
  if (cfg_.burst.enabled() && probabilistic_active) {
    if (burst_bad_) {
      if (rng_.chance(cfg_.burst.p_exit_bad)) burst_bad_ = false;
    } else if (rng_.chance(cfg_.burst.p_enter_bad)) {
      burst_bad_ = true;
    }
    const double loss = burst_bad_ ? cfg_.burst.loss_bad : cfg_.burst.loss_good;
    if (loss > 0.0 && rng_.chance(loss)) {
      ++burst_drops_;
      ZHUGE_METRIC_INC("fault.burst_drops");
      ZHUGE_TRACE(now, "fault", "burst_drop", {"bytes", double(p.size_bytes)},
                  {"bad_state", burst_bad_ ? 1.0 : 0.0});
      return;
    }
  }

  if (probabilistic_active && cfg_.loss_prob > 0.0 &&
      rng_.chance(cfg_.loss_prob)) {
    ++random_drops_;
    ZHUGE_METRIC_INC("fault.random_drops");
    ZHUGE_TRACE(now, "fault", "random_drop", {"bytes", double(p.size_bytes)});
    return;
  }

  Duration extra = Duration::zero();
  if (cfg_.fade_delay > Duration::zero() && in_windows(cfg_.fades, now)) {
    extra = cfg_.fade_delay;
  }

  if (probabilistic_active && cfg_.dup_prob > 0.0 && rng_.chance(cfg_.dup_prob)) {
    ++duplicated_;
    ZHUGE_METRIC_INC("fault.duplicated");
    deliver(p, extra);  // copy; the original continues below
  }

  if (probabilistic_active && cfg_.reorder_prob > 0.0 &&
      rng_.chance(cfg_.reorder_prob)) {
    ++reordered_;
    ZHUGE_METRIC_INC("fault.reordered");
    extra += cfg_.reorder_delay;  // later packets overtake this one
  }

  if (probabilistic_active && cfg_.spike_prob > 0.0 &&
      rng_.chance(cfg_.spike_prob)) {
    ++delay_spiked_;
    ZHUGE_METRIC_INC("fault.delay_spiked");
    ZHUGE_TRACE(now, "fault", "delay_spike", {"bytes", double(p.size_bytes)},
                {"spike_ms", cfg_.spike_delay.to_millis()});
    extra += cfg_.spike_delay;
  }

  deliver(std::move(p), extra);
}

void Injector::deliver(net::Packet p, Duration extra) {
  ++passed_;
  if (extra <= Duration::zero()) {
    sink_(std::move(p));
    return;
  }
  sim_.schedule_after(extra, [this, p = std::move(p)]() mutable {
    sink_(std::move(p));
  });
}

}  // namespace zhuge::fault
