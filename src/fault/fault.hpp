#pragma once
// Deterministic fault injection at packet-handler boundaries.
//
// An Injector wraps any PacketHandler (a link's delivery sink, the AP's
// from_client entry, ...) and applies configured adverse conditions on the
// way through: Gilbert-Elliott burst loss, independent random loss,
// duplication, reordering, scheduled blackouts, and fade windows that add
// latency. Everything is driven by the simulation clock and a dedicated
// PCG substream, so a faulty run is exactly as reproducible as a clean
// one — same (config, seed) in, same packet-level outcome out.
//
// Scenario-level faults that are not per-packet — AP mid-flow restarts
// and AP clock jumps — are described by FaultPlan and scheduled by the
// scenario harness (src/app/scenario.cpp), which also decides where each
// injector sits (WAN ingress, uplink wireless delivery, ...).

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace zhuge::fault {

using sim::Duration;
using sim::TimePoint;

/// Two-state Gilbert-Elliott burst-loss model, advanced once per packet.
struct GilbertElliott {
  double p_enter_bad = 0.0;  ///< P(good -> bad) per packet; 0 disables
  double p_exit_bad = 0.25;  ///< P(bad -> good) per packet
  double loss_good = 0.0;    ///< per-packet loss prob in the good state
  double loss_bad = 1.0;     ///< per-packet loss prob in the bad state

  [[nodiscard]] bool enabled() const { return p_enter_bad > 0.0; }
};

/// Half-open absolute-time window [start, end).
struct Window {
  TimePoint start;
  TimePoint end;

  [[nodiscard]] bool contains(TimePoint t) const { return t >= start && t < end; }
};

/// Per-boundary fault configuration. Defaults inject nothing.
struct InjectorConfig {
  double loss_prob = 0.0;          ///< independent per-packet loss
  GilbertElliott burst{};          ///< burst loss (on top of loss_prob)
  double dup_prob = 0.0;           ///< per-packet duplication
  double reorder_prob = 0.0;       ///< per-packet late delivery
  Duration reorder_delay = Duration::millis(5);  ///< how late a reordered packet lands
  double spike_prob = 0.0;         ///< per-packet delay spike
  Duration spike_delay = Duration::millis(80);   ///< spike magnitude
  std::vector<Window> blackouts;   ///< drop everything inside these windows
  Duration fade_delay = Duration::zero();        ///< extra latency during fades
  std::vector<Window> fades;       ///< fade_delay applies inside these windows
  /// When non-empty, the probabilistic faults (loss_prob, burst, dup,
  /// reorder) apply only inside these windows — chaos cases use this so a
  /// fault *clears* and recovery can be asserted. Blackouts and fades are
  /// already windowed.
  std::vector<Window> active;
  /// When set, only feedback packets (RTCP, or TCP ACK-only segments) go
  /// through the fault pipeline; everything else passes straight to the
  /// sink without consuming a single RNG draw, so adding a feedback-path
  /// fault never perturbs co-located data traffic.
  bool only_feedback = false;

  [[nodiscard]] bool any() const {
    return loss_prob > 0.0 || burst.enabled() || dup_prob > 0.0 ||
           reorder_prob > 0.0 || spike_prob > 0.0 || !blackouts.empty() ||
           (fade_delay > Duration::zero() && !fades.empty());
  }
};

/// An AP clock step (NTP-style) applied at an instant.
struct ClockJump {
  TimePoint at;
  Duration delta;  ///< positive = clock leaps forward
};

/// Scenario-level fault plan: one injector per boundary the harness wraps,
/// plus the non-packet faults the harness schedules itself.
struct FaultPlan {
  InjectorConfig downlink_wan{};       ///< servers -> AP wired ingress
  InjectorConfig uplink_wireless{};    ///< client -> AP wireless delivery
  InjectorConfig downlink_wireless{};  ///< AP -> client wireless delivery
  InjectorConfig uplink_wan{};         ///< AP -> servers wired delivery
  /// Control-loop boundaries: the AP-rewritten feedback on its way back to
  /// the sender (OOB delay-token ACKs and AP-constructed TWCC), and the
  /// client -> AP uplink RTCP before the AP sees it. Both default to
  /// feedback-only filtering; the harness enforces it at build time.
  InjectorConfig ap_feedback{};        ///< AP -> sender rewritten feedback
  InjectorConfig uplink_rtcp{};        ///< client -> AP feedback ingress
  std::vector<ClockJump> clock_jumps;  ///< steps applied to the AP clock
  std::vector<TimePoint> ap_restarts;  ///< mid-flow AP state wipes

  [[nodiscard]] bool any() const {
    return downlink_wan.any() || uplink_wireless.any() ||
           downlink_wireless.any() || uplink_wan.any() || ap_feedback.any() ||
           uplink_rtcp.any() || !clock_jumps.empty() || !ap_restarts.empty();
  }
};

/// PacketHandler wrapper applying InjectorConfig deterministically.
class Injector {
 public:
  /// `rng` is taken by value: each injector owns an independent substream
  /// so adding faults at one boundary never perturbs another boundary's
  /// (or the channel's) randomness.
  Injector(sim::Simulator& simulator, sim::Rng rng, InjectorConfig cfg,
           net::PacketHandler sink);

  /// Run one packet through the fault pipeline.
  void handle(net::Packet p);

  /// Adapter for wiring into PacketHandler slots.
  [[nodiscard]] net::PacketHandler as_handler() {
    return [this](net::Packet p) { handle(std::move(p)); };
  }

  // Counters (tests / chaos reporting).
  [[nodiscard]] std::uint64_t passed() const { return passed_; }
  [[nodiscard]] std::uint64_t dropped() const {
    return random_drops_ + burst_drops_ + blackout_drops_;
  }
  [[nodiscard]] std::uint64_t random_drops() const { return random_drops_; }
  [[nodiscard]] std::uint64_t burst_drops() const { return burst_drops_; }
  [[nodiscard]] std::uint64_t blackout_drops() const { return blackout_drops_; }
  [[nodiscard]] std::uint64_t duplicated() const { return duplicated_; }
  [[nodiscard]] std::uint64_t reordered() const { return reordered_; }
  [[nodiscard]] std::uint64_t delay_spiked() const { return delay_spiked_; }
  [[nodiscard]] std::uint64_t bypassed() const { return bypassed_; }
  [[nodiscard]] bool in_burst() const { return burst_bad_; }

  /// The only_feedback match: control traffic carrying delay feedback.
  [[nodiscard]] static bool is_feedback(const net::Packet& p) {
    return p.is_rtcp() || (p.is_tcp() && p.tcp().is_ack);
  }

 private:
  static bool in_windows(const std::vector<Window>& ws, TimePoint t) {
    for (const Window& w : ws) {
      if (w.contains(t)) return true;
    }
    return false;
  }

  void deliver(net::Packet p, Duration extra);

  sim::Simulator& sim_;
  sim::Rng rng_;
  InjectorConfig cfg_;
  net::PacketHandler sink_;

  bool burst_bad_ = false;
  std::uint64_t passed_ = 0;
  std::uint64_t random_drops_ = 0;
  std::uint64_t burst_drops_ = 0;
  std::uint64_t blackout_drops_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t reordered_ = 0;
  std::uint64_t delay_spiked_ = 0;
  std::uint64_t bypassed_ = 0;
};

}  // namespace zhuge::fault
