#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <utility>

namespace zhuge::obs {

namespace {

/// %.9g rendering shared with obs/attrib.cpp (JSON has no Inf/NaN).
void write_number(std::ostream& out, double v) {
  if (std::isnan(v)) {
    out << "0";
    return;
  }
  if (std::isinf(v)) {
    out << (v > 0 ? "1e308" : "-1e308");
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out << buf;
}

/// Exact-rank (nearest-rank) percentile over a copy; 0 when empty.
double exact_percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(v.size())));
  return v[std::min(rank == 0 ? 0 : rank - 1, v.size() - 1)];
}

/// 1 ms .. 100 s for times, 20 buckets/decade like attribution stages.
HistogramSpec time_spec() { return HistogramSpec{1.0, 1e5, 20}; }
/// 0.1 .. 10000 frames lost.
HistogramSpec count_spec() { return HistogramSpec{0.1, 1e4, 10}; }
/// p95 ratios: 0.01x .. 100x.
HistogramSpec ratio_spec() { return HistogramSpec{0.01, 100.0, 20}; }

void json_histogram(std::ostream& out, const Histogram& h) {
  out << "{\"count\": " << h.count() << ", \"mean\": ";
  write_number(out, h.mean());
  out << ", \"p50\": ";
  write_number(out, h.quantile(0.50));
  out << ", \"p95\": ";
  write_number(out, h.quantile(0.95));
  out << ", \"max\": ";
  write_number(out, h.max());
  out << ", \"cdf\": [";
  std::uint64_t cum = 0;
  bool first = true;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    if (h.bucket_value(i) == 0) continue;
    cum += h.bucket_value(i);
    if (!first) out << ',';
    first = false;
    const double upper =
        std::isinf(h.bucket_upper(i)) ? h.max() : h.bucket_upper(i);
    out << "{\"le\": ";
    write_number(out, std::min(upper, h.max()));
    out << ", \"f\": ";
    write_number(out,
                 static_cast<double>(cum) / static_cast<double>(h.count()));
    out << '}';
  }
  out << "]}";
}

}  // namespace

const char* ladder_level_name(LadderLevel level) {
  switch (level) {
    case LadderLevel::kFull: return "full";
    case LadderLevel::kClampedPredict: return "clamped_predict";
    case LadderLevel::kHoldOnly: return "hold_only";
    case LadderLevel::kPassThrough: return "pass_through";
  }
  return "?";
}

bool parse_ladder_level(std::string_view name, LadderLevel* out) {
  for (std::size_t i = 0; i < kLadderLevelCount; ++i) {
    const auto level = static_cast<LadderLevel>(i);
    if (name == ladder_level_name(level)) {
      *out = level;
      return true;
    }
  }
  return false;
}

const char* ladder_reason_name(LadderReason reason) {
  switch (reason) {
    case LadderReason::kFeedbackSilence: return "feedback_silence";
    case LadderReason::kPredictionDivergence: return "prediction_divergence";
    case LadderReason::kRecoveryProbe: return "recovery_probe";
    case LadderReason::kForced: return "forced";
  }
  return "?";
}

RecoverySlo compute_recovery_slo(const SloInputs& in) {
  RecoverySlo slo;

  std::vector<LadderTransition> ts = in.transitions;
  std::sort(ts.begin(), ts.end(),
            [](const LadderTransition& a, const LadderTransition& b) {
              if (a.at_ns != b.at_ns) return a.at_ns < b.at_ns;
              return a.flow_key < b.flow_key;
            });

  // Replay per-flow levels to build the cross-flow envelope (max level over
  // all flows at any instant). Flows are assumed to start at each one's
  // first transition's `from` level (kForced init transitions are emitted
  // at t=0 when a flow starts off kFull).
  std::map<std::uint32_t, LadderLevel> flow_level;
  for (const auto& t : ts) {
    flow_level.emplace(t.flow_key, t.from);
  }
  auto envelope = [&flow_level]() {
    LadderLevel max = LadderLevel::kFull;
    for (const auto& [key, level] : flow_level) {
      (void)key;
      max = std::max(max, level);
    }
    return max;
  };

  // Envelope change points: (instant, level after the change).
  std::vector<std::pair<std::int64_t, LadderLevel>> env;
  env.emplace_back(0, envelope());
  for (const auto& t : ts) {
    if (t.to > t.from) ++slo.escalations;
    if (t.to < t.from) ++slo.step_downs;
    flow_level[t.flow_key] = t.to;
    const LadderLevel now = envelope();
    if (now != env.back().second) env.emplace_back(t.at_ns, now);
    if (t.to > t.from && t.at_ns >= in.fault_start_ns &&
        slo.time_to_detect_ms < 0.0) {
      slo.triggered = true;
      slo.time_to_detect_ms =
          static_cast<double>(t.at_ns - in.fault_start_ns) / 1e6;
    }
  }

  // Per-level dwell of the envelope within [fault_start, run_end], plus
  // the degraded (> kFull) windows for frame accounting.
  std::vector<std::pair<std::int64_t, std::int64_t>> degraded_windows;
  for (std::size_t i = 0; i < env.size(); ++i) {
    const std::int64_t seg_start = std::max(env[i].first, in.fault_start_ns);
    const std::int64_t seg_end = std::min(
        i + 1 < env.size() ? env[i + 1].first : in.run_end_ns, in.run_end_ns);
    if (seg_end <= seg_start) continue;
    slo.dwell_ms[static_cast<std::size_t>(env[i].second)] +=
        static_cast<double>(seg_end - seg_start) / 1e6;
    slo.deepest = std::max(slo.deepest, env[i].second);
    if (env[i].second > LadderLevel::kFull) {
      degraded_windows.emplace_back(seg_start, seg_end);
    }
  }

  // Recovery point: after the fault clears, the first instant the envelope
  // returns to kFull and stays there until run end.
  if (slo.triggered) {
    std::int64_t recovered_at = -1;
    for (const auto& [at, level] : env) {
      if (level == LadderLevel::kFull) {
        if (recovered_at < 0) recovered_at = std::max(at, in.fault_end_ns);
      } else {
        recovered_at = -1;
      }
    }
    if (recovered_at >= 0 && recovered_at < in.run_end_ns) {
      slo.recovered = true;
      slo.time_to_recover_ms =
          static_cast<double>(recovered_at - in.fault_end_ns) / 1e6;
      if (slo.time_to_recover_ms < 0.0) slo.time_to_recover_ms = 0.0;
    }
  } else {
    slo.recovered = true;  // nothing tripped, nothing to recover from
  }

  // Frame accounting over the degraded windows.
  if (in.video_fps > 0.0) {
    double expected = 0.0;
    for (const auto& [start, end] : degraded_windows) {
      expected += static_cast<double>(end - start) / 1e9 * in.video_fps;
    }
    slo.frames_expected_in_transition =
        static_cast<std::uint64_t>(std::floor(expected));
    for (const auto& f : in.frames) {
      for (const auto& [start, end] : degraded_windows) {
        if (f.at_ns >= start && f.at_ns < end) {
          ++slo.frames_decoded_in_transition;
          break;
        }
      }
    }
    slo.frames_lost_in_transition =
        slo.frames_expected_in_transition > slo.frames_decoded_in_transition
            ? slo.frames_expected_in_transition -
                  slo.frames_decoded_in_transition
            : 0;
  }

  // Tail comparison: frame-delay p95 before the fault vs after recovery.
  std::vector<double> healthy;
  std::vector<double> post;
  const std::int64_t recovery_ns =
      slo.recovered && slo.time_to_recover_ms >= 0.0
          ? in.fault_end_ns +
                static_cast<std::int64_t>(slo.time_to_recover_ms * 1e6)
          : in.fault_end_ns;
  for (const auto& f : in.frames) {
    if (f.at_ns < in.fault_start_ns) healthy.push_back(f.delay_ms);
    if (slo.recovered && f.at_ns >= recovery_ns) post.push_back(f.delay_ms);
  }
  slo.healthy_p95_ms = exact_percentile(std::move(healthy), 0.95);
  slo.post_recovery_p95_ms = exact_percentile(std::move(post), 0.95);
  if (slo.healthy_p95_ms > 0.0 && slo.post_recovery_p95_ms > 0.0) {
    slo.post_over_healthy_p95 = slo.post_recovery_p95_ms / slo.healthy_p95_ms;
  }
  return slo;
}

SloAccumulator::SloAccumulator()
    : detect_ms_(time_spec()),
      recover_ms_(time_spec()),
      frames_lost_(count_spec()),
      p95_ratio_(ratio_spec()) {}

void SloAccumulator::add(const std::string& case_name, const RecoverySlo& slo) {
  ++cases_;
  if (slo.triggered) {
    ++triggered_;
    if (slo.time_to_detect_ms >= 0.0) detect_ms_.observe(slo.time_to_detect_ms);
    if (slo.recovered) {
      ++recovered_;
      if (slo.time_to_recover_ms >= 0.0) {
        recover_ms_.observe(slo.time_to_recover_ms);
      }
    }
    frames_lost_.observe(static_cast<double>(slo.frames_lost_in_transition));
    if (slo.post_over_healthy_p95 > 0.0) {
      p95_ratio_.observe(slo.post_over_healthy_p95);
    }
  }
  rows_.push_back(Row{case_name, slo});
}

void SloAccumulator::merge(const SloAccumulator& other) {
  cases_ += other.cases_;
  triggered_ += other.triggered_;
  recovered_ += other.recovered_;
  detect_ms_.merge(other.detect_ms_);
  recover_ms_.merge(other.recover_ms_);
  frames_lost_.merge(other.frames_lost_);
  p95_ratio_.merge(other.p95_ratio_);
  rows_.insert(rows_.end(), other.rows_.begin(), other.rows_.end());
}

void SloAccumulator::export_metrics(Registry& registry,
                                    const std::string& prefix) const {
  registry.counter(prefix + ".cases").inc(cases_);
  registry.counter(prefix + ".triggered").inc(triggered_);
  registry.counter(prefix + ".recovered").inc(recovered_);
  registry.counter(prefix + ".unrecovered").inc(unrecovered());
  registry.histogram(prefix + ".detect_ms", time_spec()).merge(detect_ms_);
  registry.histogram(prefix + ".recover_ms", time_spec()).merge(recover_ms_);
  registry.histogram(prefix + ".frames_lost", count_spec())
      .merge(frames_lost_);
  registry.histogram(prefix + ".p95_ratio", ratio_spec()).merge(p95_ratio_);
}

void write_slo_report_text(const SloAccumulator& a, std::ostream& out) {
  out << "recovery SLO: " << a.cases() << " case(s), " << a.triggered()
      << " triggered, " << a.recovered() << " recovered, " << a.unrecovered()
      << " unrecovered\n";
  if (!a.rows().empty()) {
    out << "  case                                     detect_ms recover_ms"
           "  deepest          frames_lost  p95_ratio\n";
  }
  for (const auto& row : a.rows()) {
    const RecoverySlo& s = row.slo;
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "  %-40s %9.1f %10.1f  %-15s %11llu %10.3f\n",
                  row.name.c_str(), s.time_to_detect_ms, s.time_to_recover_ms,
                  ladder_level_name(s.deepest),
                  static_cast<unsigned long long>(s.frames_lost_in_transition),
                  s.post_over_healthy_p95);
    out << buf;
  }
  const auto summary = [&out](const char* name, const Histogram& h) {
    if (h.count() == 0) return;
    out << "  " << name << ": mean ";
    write_number(out, h.mean());
    out << " p50 ";
    write_number(out, h.quantile(0.50));
    out << " p95 ";
    write_number(out, h.quantile(0.95));
    out << " max ";
    write_number(out, h.max());
    out << '\n';
  };
  summary("detect_ms", a.detect_ms());
  summary("recover_ms", a.recover_ms());
  summary("frames_lost", a.frames_lost());
  summary("p95_ratio", a.p95_ratio());
}

void write_slo_report_json(const SloAccumulator& a, std::ostream& out) {
  out << "{\n  \"cases\": " << a.cases()
      << ",\n  \"triggered\": " << a.triggered()
      << ",\n  \"recovered\": " << a.recovered()
      << ",\n  \"unrecovered\": " << a.unrecovered() << ",\n  \"rows\": [";
  bool first = true;
  for (const auto& row : a.rows()) {
    const RecoverySlo& s = row.slo;
    if (!first) out << ',';
    first = false;
    out << "\n    {\"case\": \"" << row.name << "\", \"triggered\": "
        << (s.triggered ? "true" : "false")
        << ", \"recovered\": " << (s.recovered ? "true" : "false")
        << ", \"detect_ms\": ";
    write_number(out, s.time_to_detect_ms);
    out << ", \"recover_ms\": ";
    write_number(out, s.time_to_recover_ms);
    out << ", \"deepest\": \"" << ladder_level_name(s.deepest)
        << "\", \"escalations\": " << s.escalations
        << ", \"step_downs\": " << s.step_downs << ", \"dwell_ms\": {";
    for (std::size_t i = 0; i < kLadderLevelCount; ++i) {
      if (i != 0) out << ", ";
      out << '"' << ladder_level_name(static_cast<LadderLevel>(i)) << "\": ";
      write_number(out, s.dwell_ms[i]);
    }
    out << "}, \"frames_expected\": " << s.frames_expected_in_transition
        << ", \"frames_decoded\": " << s.frames_decoded_in_transition
        << ", \"frames_lost\": " << s.frames_lost_in_transition
        << ", \"healthy_p95_ms\": ";
    write_number(out, s.healthy_p95_ms);
    out << ", \"post_recovery_p95_ms\": ";
    write_number(out, s.post_recovery_p95_ms);
    out << ", \"p95_ratio\": ";
    write_number(out, s.post_over_healthy_p95);
    out << '}';
  }
  out << "\n  ],\n  \"aggregate\": {";
  const char* names[] = {"detect_ms", "recover_ms", "frames_lost",
                         "p95_ratio"};
  const Histogram* hs[] = {&a.detect_ms(), &a.recover_ms(), &a.frames_lost(),
                           &a.p95_ratio()};
  first = true;
  for (std::size_t i = 0; i < 4; ++i) {
    if (hs[i]->count() == 0) continue;
    if (!first) out << ',';
    first = false;
    out << "\n    \"" << names[i] << "\": ";
    json_histogram(out, *hs[i]);
  }
  out << "\n  }\n}\n";
}

}  // namespace zhuge::obs
