#pragma once
// Recovery-SLO accounting for the Zhuge control-loop degradation ladder.
//
// core/zhuge.hpp escalates a per-flow ladder (Full -> ClampedPredict ->
// HoldOnly -> PassThrough) when its feedback path misbehaves, and steps
// back down as evidence of health returns. Each move is recorded as a
// LadderTransition. This module turns a run's transition log plus the
// fault window into the SLO numbers the chaos matrix regresses on:
// time-to-detect, time-to-recover, per-level dwell, frames lost while
// degraded, and post-recovery tail latency vs the healthy baseline.
//
// Layering: obs may depend only on sim, so inputs arrive as plain
// vectors (the app layer converts its stats::TimeSeries); aggregate CDFs
// reuse the same log-bucket Histogram machinery as latency attribution.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace zhuge::obs {

/// Degradation ladder levels, weakest intervention last. Order matters:
/// comparisons ("deeper than") use the underlying value.
enum class LadderLevel : std::uint8_t {
  kFull = 0,            ///< all Zhuge interventions active
  kClampedPredict = 1,  ///< staleness-bounded predictions, no token banking
  kHoldOnly = 2,        ///< no commits; feedback forwarded floor-only
  kPassThrough = 3,     ///< byte-identical to Zhuge-off
};
inline constexpr std::size_t kLadderLevelCount = 4;

[[nodiscard]] const char* ladder_level_name(LadderLevel level);
/// Parse "full" / "clamped_predict" / "hold_only" / "pass_through".
[[nodiscard]] bool parse_ladder_level(std::string_view name, LadderLevel* out);

/// Why a flow moved between ladder levels.
enum class LadderReason : std::uint8_t {
  kFeedbackSilence = 0,       ///< uplink feedback went quiet
  kPredictionDivergence = 1,  ///< Fortune Teller error EWMA tripped
  kRecoveryProbe = 2,         ///< settle timer elapsed with healthy signals
  kForced = 3,                ///< configured initial level or test hook
};
[[nodiscard]] const char* ladder_reason_name(LadderReason reason);

/// One ladder move of one flow. `flow_key` disambiguates flows when an
/// AP aggregates logs; within a flow the log is time-ordered.
struct LadderTransition {
  std::int64_t at_ns = 0;
  std::uint32_t flow_key = 0;
  LadderLevel from = LadderLevel::kFull;
  LadderLevel to = LadderLevel::kFull;
  LadderReason reason = LadderReason::kForced;
};

/// One decoded frame, as (decode instant, frame delay) — the app layer
/// flattens its frame-delay series into this.
struct FramePoint {
  std::int64_t at_ns = 0;
  double delay_ms = 0.0;
};

/// Everything compute_recovery_slo needs about one run.
struct SloInputs {
  /// All flows' transitions; sorted internally by (at_ns, flow_key).
  std::vector<LadderTransition> transitions;
  std::int64_t fault_start_ns = 0;
  std::int64_t fault_end_ns = 0;
  std::int64_t run_end_ns = 0;
  /// Configured decode rate; 0 disables frame-loss accounting.
  double video_fps = 0.0;
  /// Decoded frames of the primary flow (may be empty).
  std::vector<FramePoint> frames;
};

/// The per-run SLO verdict. Times are -1 when the event never happened.
struct RecoverySlo {
  bool triggered = false;   ///< any escalation at/after fault start
  bool recovered = false;   ///< envelope back at kFull and stable to run end
  double time_to_detect_ms = -1.0;   ///< fault start -> first escalation
  double time_to_recover_ms = -1.0;  ///< fault end -> stable return to kFull
  /// Time the cross-flow envelope (max level over flows) spends at each
  /// level within [fault_start, run_end].
  double dwell_ms[kLadderLevelCount] = {0.0, 0.0, 0.0, 0.0};
  LadderLevel deepest = LadderLevel::kFull;
  std::uint32_t escalations = 0;  ///< whole-run count of upward moves
  std::uint32_t step_downs = 0;   ///< whole-run count of downward moves
  /// Frame accounting over the degraded (envelope > kFull) windows.
  std::uint64_t frames_expected_in_transition = 0;
  std::uint64_t frames_decoded_in_transition = 0;
  std::uint64_t frames_lost_in_transition = 0;
  /// Frame-delay p95 before the fault vs after recovery (0 when the
  /// window holds no frames); ratio is 0 until both are populated.
  double healthy_p95_ms = 0.0;
  double post_recovery_p95_ms = 0.0;
  double post_over_healthy_p95 = 0.0;
};

/// Compute the recovery SLO for one run. Deterministic: exact-rank
/// percentiles over sorted copies, no histogram quantisation.
[[nodiscard]] RecoverySlo compute_recovery_slo(const SloInputs& in);

/// Aggregates RecoverySlo verdicts across a chaos matrix into CDFs.
/// Value-semantic like Attribution so parallel pools can merge run-local
/// instances deterministically after the fan-out.
class SloAccumulator {
 public:
  SloAccumulator();

  void add(const std::string& case_name, const RecoverySlo& slo);
  void merge(const SloAccumulator& other);

  [[nodiscard]] std::uint64_t cases() const { return cases_; }
  [[nodiscard]] std::uint64_t triggered() const { return triggered_; }
  [[nodiscard]] std::uint64_t recovered() const { return recovered_; }
  [[nodiscard]] std::uint64_t unrecovered() const {
    return triggered_ - recovered_;
  }
  [[nodiscard]] const Histogram& detect_ms() const { return detect_ms_; }
  [[nodiscard]] const Histogram& recover_ms() const { return recover_ms_; }
  [[nodiscard]] const Histogram& frames_lost() const { return frames_lost_; }
  [[nodiscard]] const Histogram& p95_ratio() const { return p95_ratio_; }

  /// Per-case rows, in insertion order (matrix grid order).
  struct Row {
    std::string name;
    RecoverySlo slo;
  };
  [[nodiscard]] const std::vector<Row>& rows() const { return rows_; }

  /// Counters/gauges + CDF histograms under `<prefix>.` in a registry.
  void export_metrics(Registry& registry, const std::string& prefix) const;

 private:
  std::uint64_t cases_ = 0;
  std::uint64_t triggered_ = 0;
  std::uint64_t recovered_ = 0;
  Histogram detect_ms_;
  Histogram recover_ms_;
  Histogram frames_lost_;
  Histogram p95_ratio_;
  std::vector<Row> rows_;
};

/// Human-readable recovery-SLO report: per-case table plus aggregate
/// detect/recover distribution summaries.
void write_slo_report_text(const SloAccumulator& a, std::ostream& out);

/// JSON: per-case objects plus aggregate summaries with full CDFs
/// (bucket upper edge -> cumulative fraction, as in the attrib report).
void write_slo_report_json(const SloAccumulator& a, std::ostream& out);

}  // namespace zhuge::obs
