#pragma once
// Exporters for the observability layer: Chrome trace_event JSON (opens in
// chrome://tracing and https://ui.perfetto.dev), JSONL and CSV for ad-hoc
// scripting, and a metrics-registry JSON summary.

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace zhuge::obs {

/// Chrome trace_event format: one instant event per record, components
/// mapped to named threads so each gets its own row in the viewer.
void write_chrome_trace(const Tracer& tracer, std::ostream& out);

/// One JSON object per line: {"t_us":..,"component":..,"name":..,
/// "fields":{..}}. Convenient for jq / pandas.
void write_trace_jsonl(const Tracer& tracer, std::ostream& out);

/// Long-format CSV: t_us,component,name,field,value — one row per field
/// (events without fields emit a single row with an empty field column).
void write_trace_csv(const Tracer& tracer, std::ostream& out);

/// Registry summary: counters and gauges by name; histograms with count,
/// sum, min/max, p50/p95/p99 and non-empty buckets.
void write_metrics_json(const Registry& registry, std::ostream& out);

/// File convenience wrappers; format picked from the extension
/// (.jsonl -> JSONL, .csv -> CSV, anything else -> Chrome trace JSON).
/// Return false when the file cannot be opened.
bool write_trace_file(const Tracer& tracer, const std::string& path);
bool write_metrics_file(const Registry& registry, const std::string& path);

}  // namespace zhuge::obs
