#include "obs/attrib.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <vector>

#include "obs/trace_reader.hpp"
#include "obs/tracer.hpp"

namespace zhuge::obs {

namespace {

constexpr Stage kAllStages[] = {Stage::kPacing,     Stage::kWan,
                                Stage::kApQueue,    Stage::kAir,
                                Stage::kE2e,        Stage::kReassembly,
                                Stage::kDecodeWait, Stage::kFrameE2e};

/// Interval in microseconds, or a negative sentinel when either stamp is
/// missing (-1) or the pair is inverted.
double interval_us(std::int64_t a_ns, std::int64_t b_ns) {
  if (a_ns < 0 || b_ns < 0 || b_ns < a_ns) return -1.0;
  return static_cast<double>(b_ns - a_ns) / 1e3;
}

/// %.9g rendering shared with obs/export.cpp (JSON has no Inf/NaN).
void write_number(std::ostream& out, double v) {
  if (std::isnan(v)) {
    out << "0";
    return;
  }
  if (std::isinf(v)) {
    out << (v > 0 ? "1e308" : "-1e308");
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out << buf;
}

}  // namespace

void StageSet::merge(const StageSet& other) {
  for (std::size_t i = 0; i < h.size(); ++i) h[i].merge(other.h[i]);
}

StageSet* Attribution::flow_set(std::uint32_t flow_key) {
  const auto it = by_flow_.find(flow_key);
  if (it != by_flow_.end()) return &it->second;
  if (by_flow_.size() >= kMaxFlows) {
    ++truncated_flows_;
    return nullptr;
  }
  return &by_flow_[flow_key];
}

void Attribution::record_packet(std::uint32_t flow_key, bool optimized,
                                std::int64_t sent_ns, std::int64_t ap_in_ns,
                                std::int64_t delivered_ns,
                                const PacketSpan& span) {
  ++packets_;
  StageSet* fs = flow_set(flow_key);
  StageSet& g = by_group_[optimized ? 1 : 0];

  const std::int64_t air_start_ns =
      span.first_air_ns >= 0 ? span.first_air_ns : span.ap_dequeue_ns;
  const std::int64_t origin_ns = span.paced_ns >= 0 ? span.paced_ns : sent_ns;
  const double pacing_us = interval_us(span.paced_ns, sent_ns);
  const double wan_us = interval_us(sent_ns, ap_in_ns);
  const double ap_queue_us = interval_us(ap_in_ns, span.ap_dequeue_ns);
  const double air_us = interval_us(air_start_ns, delivered_ns);
  const double e2e_us = interval_us(origin_ns, delivered_ns);

  const auto obs = [&](Stage st, double us) {
    if (us < 0.0) return;
    all_.observe(st, us);
    g.observe(st, us);
    if (fs != nullptr) fs->observe(st, us);
  };
  obs(Stage::kPacing, pacing_us);
  obs(Stage::kWan, wan_us);
  obs(Stage::kApQueue, ap_queue_us);
  obs(Stage::kAir, air_us);
  obs(Stage::kE2e, e2e_us);

  // Replayable span record (tools/latency_attrib --trace, trace_summarize).
  ZHUGE_TRACE(sim::TimePoint(delivered_ns), "span", "pkt",
              {"flow", static_cast<double>(flow_key)},
              {"zhuge", optimized ? 1.0 : 0.0}, {"pacing_us", pacing_us},
              {"wan_us", wan_us}, {"ap_queue_us", ap_queue_us},
              {"air_us", air_us}, {"e2e_us", e2e_us},
              {"retries", static_cast<double>(span.air_retries)});
}

void Attribution::record_frame(bool optimized, const FrameSpan& s) {
  ++frames_;
  StageSet* fs = flow_set(s.flow_key);
  StageSet& g = by_group_[optimized ? 1 : 0];

  const double reassembly_us = interval_us(s.first_arrival_ns, s.complete_ns);
  const double decode_wait_us = interval_us(s.complete_ns, s.decode_ns);
  const double frame_e2e_us = interval_us(s.capture_ns, s.decode_ns);

  const auto obs = [&](Stage st, double us) {
    if (us < 0.0) return;
    all_.observe(st, us);
    g.observe(st, us);
    if (fs != nullptr) fs->observe(st, us);
  };
  obs(Stage::kReassembly, reassembly_us);
  obs(Stage::kDecodeWait, decode_wait_us);
  obs(Stage::kFrameE2e, frame_e2e_us);

  ZHUGE_TRACE(sim::TimePoint(s.decode_ns), "span", "frame",
              {"flow", static_cast<double>(s.flow_key)},
              {"zhuge", optimized ? 1.0 : 0.0},
              {"reassembly_us", reassembly_us},
              {"decode_wait_us", decode_wait_us},
              {"frame_e2e_us", frame_e2e_us},
              {"packets", static_cast<double>(s.packets)});
}

void Attribution::add_trace_event(const LoadedEvent& ev) {
  if (ev.component != "span") return;
  const bool is_pkt = ev.name == "pkt";
  const bool is_frame = ev.name == "frame";
  if (!is_pkt && !is_frame) return;

  double flow = 0.0;
  double zhuge = 0.0;
  struct StageVal {
    Stage stage;
    double us = -1.0;
  };
  std::vector<StageVal> vals;
  for (const auto& [key, value] : ev.fields) {
    if (key == "flow") {
      flow = value;
    } else if (key == "zhuge") {
      zhuge = value;
    } else if (key == "pacing_us") {
      vals.push_back({Stage::kPacing, value});
    } else if (key == "wan_us") {
      vals.push_back({Stage::kWan, value});
    } else if (key == "ap_queue_us") {
      vals.push_back({Stage::kApQueue, value});
    } else if (key == "air_us") {
      vals.push_back({Stage::kAir, value});
    } else if (key == "e2e_us") {
      vals.push_back({Stage::kE2e, value});
    } else if (key == "reassembly_us") {
      vals.push_back({Stage::kReassembly, value});
    } else if (key == "decode_wait_us") {
      vals.push_back({Stage::kDecodeWait, value});
    } else if (key == "frame_e2e_us") {
      vals.push_back({Stage::kFrameE2e, value});
    }
  }

  if (is_pkt) {
    ++packets_;
  } else {
    ++frames_;
  }
  StageSet* fs =
      flow_set(static_cast<std::uint32_t>(std::max(0.0, flow)));
  // zlint-allow(float-equality): `zhuge` is a 0/1 flag stored in a trace
  // field (all trace values are doubles); exact compare is the decode.
  StageSet& g = by_group_[zhuge != 0.0 ? 1 : 0];
  for (const StageVal& v : vals) {
    if (v.us < 0.0) continue;  // stage was unstamped when recorded
    all_.observe(v.stage, v.us);
    g.observe(v.stage, v.us);
    if (fs != nullptr) fs->observe(v.stage, v.us);
  }
}

void Attribution::merge(const Attribution& other) {
  all_.merge(other.all_);
  by_group_[0].merge(other.by_group_[0]);
  by_group_[1].merge(other.by_group_[1]);
  for (const auto& [key, set] : other.by_flow_) {
    const auto it = by_flow_.find(key);
    if (it != by_flow_.end()) {
      it->second.merge(set);
    } else if (by_flow_.size() < kMaxFlows) {
      by_flow_[key] = set;
    } else {
      ++truncated_flows_;
    }
  }
  packets_ += other.packets_;
  frames_ += other.frames_;
  truncated_flows_ += other.truncated_flows_;
}

void Attribution::export_metrics(Registry& registry,
                                 const std::string& prefix) const {
  registry.counter(prefix + ".packets").inc(packets_);
  registry.counter(prefix + ".frames").inc(frames_);
  const auto emit = [&registry](const StageSet& set, const std::string& base) {
    for (const Stage st : kAllStages) {
      const Histogram& h = set.stage(st);
      if (h.count() == 0) continue;
      registry
          .histogram(base + "." + stage_name(st) + "_us",
                     StageSet::stage_spec())
          .merge(h);
    }
  };
  emit(all_, prefix);
  if (!group(true).empty()) emit(group(true), prefix + ".zhuge_on");
  if (!group(false).empty()) emit(group(false), prefix + ".zhuge_off");
}

// ---- report rendering -----------------------------------------------------

namespace {

void print_stage_row(std::ostream& out, const char* name, const Histogram& h) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "  %-12s %10llu %12.1f %10.1f %10.1f %10.1f %12.1f\n", name,
                static_cast<unsigned long long>(h.count()), h.mean(),
                h.quantile(0.50), h.quantile(0.95), h.quantile(0.99), h.max());
  out << buf;
}

}  // namespace

void write_attrib_report_text(const Attribution& a, std::ostream& out) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "latency attribution: %llu packets, %llu frames\n",
                static_cast<unsigned long long>(a.packets()),
                static_cast<unsigned long long>(a.frames()));
  out << buf;
  if (a.truncated_flows() > 0) {
    std::snprintf(buf, sizeof(buf),
                  "  (flow table capped at %zu flows; %llu records folded "
                  "into the aggregate only)\n",
                  Attribution::kMaxFlows,
                  static_cast<unsigned long long>(a.truncated_flows()));
    out << buf;
  }
  if (a.empty()) {
    out << "  no spans recorded.\n";
    return;
  }

  out << "\n  stage             count      mean_us     p50_us     p95_us"
         "     p99_us       max_us\n";
  for (const Stage st : kAllStages) {
    const Histogram& h = a.all().stage(st);
    if (h.count() == 0) continue;
    print_stage_row(out, stage_name(st), h);
  }

  // Budget waterfall: where the mean end-to-end packet delay goes. The
  // packet stages partition [pacer, delivery], so their means should sum
  // to ~the e2e mean; the residual line makes any gap explicit instead of
  // hiding it (a stage whose stamps were missing shows up there).
  const Histogram& e2e = a.all().stage(Stage::kE2e);
  if (e2e.count() > 0) {
    out << "\n  budget waterfall (share of mean e2e packet delay "
        << "= 100%):\n";
    double attributed = 0.0;
    for (const Stage st :
         {Stage::kPacing, Stage::kWan, Stage::kApQueue, Stage::kAir}) {
      const Histogram& h = a.all().stage(st);
      if (h.count() == 0) continue;
      const double share = e2e.mean() > 0 ? 100.0 * h.mean() / e2e.mean() : 0.0;
      attributed += h.mean();
      std::snprintf(buf, sizeof(buf), "    %-12s %12.1f us  %6.1f%%\n",
                    stage_name(st), h.mean(), share);
      out << buf;
    }
    const double residual = e2e.mean() - attributed;
    std::snprintf(buf, sizeof(buf), "    %-12s %12.1f us  %6.1f%%\n",
                  "(residual)", residual,
                  e2e.mean() > 0 ? 100.0 * residual / e2e.mean() : 0.0);
    out << buf;
  }

  // Stage-resolved Zhuge-on vs Zhuge-off comparison (only when the run
  // mixed both kinds of flows, e.g. dense_64sta_churn's zhuge_fraction).
  if (!a.group(true).empty() && !a.group(false).empty()) {
    out << "\n  zhuge_on vs zhuge_off (p95 us):\n";
    out << "    stage          zhuge_on   zhuge_off       delta\n";
    for (const Stage st : kAllStages) {
      const Histogram& on = a.group(true).stage(st);
      const Histogram& off = a.group(false).stage(st);
      if (on.count() == 0 || off.count() == 0) continue;
      const double p_on = on.quantile(0.95);
      const double p_off = off.quantile(0.95);
      std::snprintf(buf, sizeof(buf), "    %-12s %10.1f  %10.1f  %+10.1f\n",
                    stage_name(st), p_on, p_off, p_on - p_off);
      out << buf;
    }
  }
}

namespace {

void csv_scope_rows(std::ostream& out, const std::string& scope,
                    const StageSet& set) {
  for (const Stage st : kAllStages) {
    const Histogram& h = set.stage(st);
    if (h.count() == 0) continue;
    out << scope << ',' << stage_name(st) << ',' << h.count() << ',';
    write_number(out, h.mean());
    out << ',';
    write_number(out, h.quantile(0.50));
    out << ',';
    write_number(out, h.quantile(0.90));
    out << ',';
    write_number(out, h.quantile(0.95));
    out << ',';
    write_number(out, h.quantile(0.99));
    out << ',';
    write_number(out, h.max());
    out << '\n';
  }
}

}  // namespace

void write_attrib_report_csv(const Attribution& a, std::ostream& out) {
  out << "scope,stage,count,mean_us,p50_us,p90_us,p95_us,p99_us,max_us\n";
  csv_scope_rows(out, "all", a.all());
  if (!a.group(true).empty()) csv_scope_rows(out, "zhuge_on", a.group(true));
  if (!a.group(false).empty()) csv_scope_rows(out, "zhuge_off", a.group(false));
  for (const auto& [key, set] : a.flows()) {
    csv_scope_rows(out, "flow" + std::to_string(key), set);
  }
}

namespace {

void json_stage_object(std::ostream& out, const Histogram& h, bool with_cdf) {
  out << "{\"count\": " << h.count() << ", \"mean\": ";
  write_number(out, h.mean());
  out << ", \"p50\": ";
  write_number(out, h.quantile(0.50));
  out << ", \"p95\": ";
  write_number(out, h.quantile(0.95));
  out << ", \"p99\": ";
  write_number(out, h.quantile(0.99));
  out << ", \"min\": ";
  write_number(out, h.min());
  out << ", \"max\": ";
  write_number(out, h.max());
  if (with_cdf) {
    out << ", \"cdf\": [";
    std::uint64_t cum = 0;
    bool first = true;
    for (std::size_t i = 0; i < h.bucket_count(); ++i) {
      if (h.bucket_value(i) == 0) continue;
      cum += h.bucket_value(i);
      if (!first) out << ',';
      first = false;
      const double upper = std::isinf(h.bucket_upper(i)) ? h.max()
                                                         : h.bucket_upper(i);
      out << "{\"le_us\": ";
      write_number(out, std::min(upper, h.max()));
      out << ", \"f\": ";
      write_number(out, static_cast<double>(cum) /
                            static_cast<double>(h.count()));
      out << '}';
    }
    out << ']';
  }
  out << '}';
}

void json_scope_object(std::ostream& out, const StageSet& set, bool with_cdf) {
  out << '{';
  bool first = true;
  for (const Stage st : kAllStages) {
    const Histogram& h = set.stage(st);
    if (h.count() == 0) continue;
    if (!first) out << ',';
    first = false;
    out << "\n      \"" << stage_name(st) << "\": ";
    json_stage_object(out, h, with_cdf);
  }
  out << "\n    }";
}

}  // namespace

void write_attrib_report_json(const Attribution& a, std::ostream& out) {
  out << "{\n  \"packets\": " << a.packets()
      << ",\n  \"frames\": " << a.frames()
      << ",\n  \"truncated_flows\": " << a.truncated_flows()
      << ",\n  \"scopes\": {";
  out << "\n    \"all\": ";
  json_scope_object(out, a.all(), /*with_cdf=*/true);
  if (!a.group(true).empty()) {
    out << ",\n    \"zhuge_on\": ";
    json_scope_object(out, a.group(true), /*with_cdf=*/false);
  }
  if (!a.group(false).empty()) {
    out << ",\n    \"zhuge_off\": ";
    json_scope_object(out, a.group(false), /*with_cdf=*/false);
  }
  out << "\n  },\n  \"flows\": {";
  bool first = true;
  for (const auto& [key, set] : a.flows()) {
    if (!first) out << ',';
    first = false;
    out << "\n    \"" << key << "\": ";
    json_scope_object(out, set, /*with_cdf=*/false);
  }
  out << "\n  }\n}\n";
}

}  // namespace zhuge::obs
