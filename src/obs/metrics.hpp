#pragma once
// Metrics registry: named counters, gauges, and log-bucket histograms.
//
// Components record into the process-global registry through the
// ZHUGE_METRIC_* macros below, which compile to nothing when
// ZHUGE_OBS_ENABLED is 0 and cost a single cold-bool branch when the
// runtime switch is off. The registry itself is an ordinary object, so
// tests and tools can also build private instances.
//
// Naming convention (see DESIGN.md "Observability"): dot-separated
// lowercase paths, component first, unit suffix on measured quantities —
// e.g. `queue.fifo.sojourn_us`, `wireless.wifi.retries`,
// `fortune.predicted_ms`, `app.flow0.goodput_bps`.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace zhuge::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Bucket layout for Histogram: log-scale buckets from `lo` to `hi` with
/// `buckets_per_decade` buckets per factor of 10, plus an underflow and an
/// overflow bucket. The default spans 1e-3 .. 1e9, wide enough for any
/// quantity this codebase records (microseconds to bits/second).
struct HistogramSpec {
  double lo = 1e-3;
  double hi = 1e9;
  int buckets_per_decade = 5;
};

/// Fixed log-scale-bucket histogram with exact count/sum/min/max and
/// interpolated quantiles.
class Histogram {
 public:
  explicit Histogram(HistogramSpec spec = {}) : spec_(spec) {
    const double decades = std::log10(spec_.hi / spec_.lo);
    n_log_buckets_ = static_cast<std::size_t>(
        std::ceil(decades * static_cast<double>(spec_.buckets_per_decade)));
    // [0] underflow (v < lo), [1..n] log buckets, [n+1] overflow (v >= hi).
    counts_.assign(n_log_buckets_ + 2, 0);
  }

  void observe(double v) {
    ++counts_[bucket_index(v)];
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }

  /// Index of the bucket `v` falls into (0 = underflow, last = overflow).
  [[nodiscard]] std::size_t bucket_index(double v) const {
    if (!(v >= spec_.lo)) return 0;  // also catches NaN
    if (v >= spec_.hi) return n_log_buckets_ + 1;
    const auto i = static_cast<std::size_t>(
        std::log10(v / spec_.lo) * static_cast<double>(spec_.buckets_per_decade));
    return std::min(i, n_log_buckets_ - 1) + 1;
  }

  /// Lower edge of bucket i; bucket 0 has edge 0, the overflow bucket `hi`.
  [[nodiscard]] double bucket_lower(std::size_t i) const {
    if (i == 0) return 0.0;
    return spec_.lo * std::pow(10.0, static_cast<double>(i - 1) /
                                         static_cast<double>(spec_.buckets_per_decade));
  }
  [[nodiscard]] double bucket_upper(std::size_t i) const {
    if (i >= n_log_buckets_ + 1) return std::numeric_limits<double>::infinity();
    return spec_.lo * std::pow(10.0, static_cast<double>(i) /
                                         static_cast<double>(spec_.buckets_per_decade));
  }
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket_value(std::size_t i) const { return counts_[i]; }

  /// Quantile estimate: geometric interpolation within the containing
  /// bucket, clamped to the exact observed min/max.
  [[nodiscard]] double quantile(double q) const {
    if (count_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(count_);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      if (counts_[i] == 0) continue;
      const double before = static_cast<double>(cum);
      cum += counts_[i];
      if (static_cast<double>(cum) < target) continue;
      const double frac =
          (target - before) / static_cast<double>(counts_[i]);
      const double lo = std::max(bucket_lower(i), min_);
      const double hi = std::min(
          std::isinf(bucket_upper(i)) ? max_ : bucket_upper(i), max_);
      if (lo <= 0.0 || hi <= lo) return std::clamp(hi, min_, max_);
      return std::clamp(lo * std::pow(hi / lo, frac), min_, max_);
    }
    return max_;
  }

  [[nodiscard]] const HistogramSpec& spec() const { return spec_; }

  /// Fold `other` into this histogram. With identical bucket layouts the
  /// merge is exact (bucket-wise count addition); with mismatched layouts
  /// each foreign bucket is re-observed at its lower edge, weighted by its
  /// count — deterministic, but quantised to this histogram's buckets.
  void merge(const Histogram& other) {
    if (other.count_ == 0) return;
    // zlint-allow(float-equality): bucket layouts are interchangeable
    // only when the specs are exactly identical; tolerance would be wrong.
    const bool same_edges = spec_.lo == other.spec_.lo && spec_.hi == other.spec_.hi;
    if (counts_.size() == other.counts_.size() && same_edges &&
        spec_.buckets_per_decade == other.spec_.buckets_per_decade) {
      for (std::size_t i = 0; i < counts_.size(); ++i) {
        counts_[i] += other.counts_[i];
      }
    } else {
      for (std::size_t i = 0; i < other.counts_.size(); ++i) {
        const std::uint64_t n = other.counts_[i];
        if (n > 0) counts_[bucket_index(other.bucket_lower(i))] += n;
      }
    }
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  HistogramSpec spec_;
  std::size_t n_log_buckets_ = 0;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::max();
  double max_ = std::numeric_limits<double>::lowest();
};

/// Name -> metric map. std::map keeps export order deterministic and
/// references stable across inserts; heterogeneous lookup avoids per-call
/// string allocation on hot paths.
class Registry {
 public:
  Counter& counter(std::string_view name) { return find(counters_, name); }
  Gauge& gauge(std::string_view name) { return find(gauges_, name); }
  Histogram& histogram(std::string_view name, HistogramSpec spec = {}) {
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) return it->second;
    return histograms_.emplace(std::string(name), Histogram(spec)).first->second;
  }

  [[nodiscard]] const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge, std::less<>>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  void clear() {
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
  }

 private:
  template <typename Map>
  static typename Map::mapped_type& find(Map& m, std::string_view name) {
    const auto it = m.find(name);
    if (it != m.end()) return it->second;
    return m.emplace(std::string(name), typename Map::mapped_type{}).first->second;
  }

  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

// ---- global instance + runtime switch ------------------------------------

/// Runtime switch read on every instrumented hot path; off by default so an
/// uninstrumented run pays one predictable branch per hook.
// zlint-allow(shared-mutable-state): reviewed process-global obs switch; set once at startup, frozen by app::ObsFreeze before any run, never result-affecting
inline bool g_metrics_enabled = false;

[[nodiscard]] inline bool metrics_enabled() { return g_metrics_enabled; }
inline void set_metrics_enabled(bool on) { g_metrics_enabled = on; }

/// Process-global registry used by the ZHUGE_METRIC_* macros.
inline Registry& metrics() {
  // zlint-allow(shared-mutable-state): reviewed obs singleton; sink only, reset between runs, never feeds back into results
  static Registry r;
  return r;
}

}  // namespace zhuge::obs

// Compile-time kill switch: build with -DZHUGE_OBS_ENABLED=0 to remove all
// instrumentation (the acceptance bar for "zero-cost when disabled").
#ifndef ZHUGE_OBS_ENABLED
#define ZHUGE_OBS_ENABLED 1
#endif

#if ZHUGE_OBS_ENABLED
#define ZHUGE_METRIC_INC(name)                                        \
  do {                                                                \
    if (::zhuge::obs::metrics_enabled()) ::zhuge::obs::metrics().counter(name).inc(); \
  } while (0)
#define ZHUGE_METRIC_ADD(name, n)                                     \
  do {                                                                \
    if (::zhuge::obs::metrics_enabled())                              \
      ::zhuge::obs::metrics().counter(name).inc(static_cast<std::uint64_t>(n)); \
  } while (0)
#define ZHUGE_METRIC_SET(name, v)                                     \
  do {                                                                \
    if (::zhuge::obs::metrics_enabled())                              \
      ::zhuge::obs::metrics().gauge(name).set(static_cast<double>(v)); \
  } while (0)
#define ZHUGE_METRIC_OBSERVE(name, v)                                 \
  do {                                                                \
    if (::zhuge::obs::metrics_enabled())                              \
      ::zhuge::obs::metrics().histogram(name).observe(static_cast<double>(v)); \
  } while (0)
#else
#define ZHUGE_METRIC_INC(name) do {} while (0)
#define ZHUGE_METRIC_ADD(name, n) do {} while (0)
#define ZHUGE_METRIC_SET(name, v) do {} while (0)
#define ZHUGE_METRIC_OBSERVE(name, v) do {} while (0)
#endif
