#pragma once
// Per-stage latency spans for packets and video frames.
//
// A PacketSpan rides inside net::Packet as an oracle field: components
// stamp nanosecond timestamps at the stage boundaries they own (sender
// pacing origin, AP qdisc egress, first transmission attempt) and the
// harness turns the stamps into per-stage delay distributions at delivery
// time (obs/attrib.hpp). Frame-level stages (reassembly wait, in-order
// decode wait) are carried by FrameSpan, built by the RTP receiver when a
// frame leaves the jitter buffer.
//
// Stamping follows the same discipline as every other obs hook: a
// process-global runtime switch (`attrib_enabled`) that costs one cold
// branch per stamp when off, forced off by app::ObsFreeze during parallel
// sweeps unless the sweep explicitly re-enables it, and compiled out
// entirely with -DZHUGE_OBS_ENABLED=0. Span fields are *never* read by
// protocol logic, so enabling attribution cannot change simulated
// behaviour — the determinism suite pins result fingerprints on vs off.

#include <cstdint>

#include "obs/metrics.hpp"  // ZHUGE_OBS_ENABLED
#include "sim/time.hpp"

namespace zhuge::obs {

/// The stages a delivered packet / decoded frame is attributed across.
/// Packet stages partition the downlink one-way delay; frame stages cover
/// the receiver-side path from first arrival to decode release.
enum class Stage : std::uint8_t {
  kPacing = 0,   ///< packetised at the sender -> wire departure (pacer)
  kWan,          ///< server NIC -> AP qdisc ingress (wired WAN)
  kApQueue,      ///< AP qdisc ingress -> dequeue into an AMPDU
  kAir,          ///< AMPDU dequeue -> 802.11 delivery, retries included
  kE2e,          ///< packetised at the sender -> receiver arrival
  kReassembly,   ///< frame: first packet arrival -> frame complete
  kDecodeWait,   ///< frame: complete -> in-order decode release
  kFrameE2e,     ///< frame: capture -> decode
};

inline constexpr std::size_t kStageCount = 8;

/// True for the three frame-level stages.
[[nodiscard]] constexpr bool stage_is_frame(Stage s) {
  return s == Stage::kReassembly || s == Stage::kDecodeWait ||
         s == Stage::kFrameE2e;
}

[[nodiscard]] constexpr const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kPacing: return "pacing";
    case Stage::kWan: return "wan";
    case Stage::kApQueue: return "ap_queue";
    case Stage::kAir: return "air";
    case Stage::kE2e: return "e2e";
    case Stage::kReassembly: return "reassembly";
    case Stage::kDecodeWait: return "decode_wait";
    case Stage::kFrameE2e: return "frame_e2e";
  }
  return "?";
}

/// Per-packet stage stamps, embedded in net::Packet as an oracle field.
/// -1 = never stamped (stage skipped at aggregation time). The remaining
/// boundaries reuse the Packet's existing oracle timestamps (sent_time,
/// ap_enqueue_time, delivered_time), so the span only carries what no
/// existing field records.
struct PacketSpan {
  std::int64_t paced_ns = -1;       ///< handed to the sender's pacer
  std::int64_t ap_dequeue_ns = -1;  ///< left the AP qdisc into an AMPDU
  std::int64_t first_air_ns = -1;   ///< first transmission attempt started
  std::uint32_t air_retries = 0;    ///< link-layer retries before delivery
};

/// Frame-level span, assembled by the RTP receiver (or synthesised for
/// TCP-framed video) and handed to rtc::FrameStats' span observer.
struct FrameSpan {
  std::uint32_t flow_key = 0;        ///< ssrc / schedule-index + 1
  std::uint32_t frame_id = 0;
  std::int64_t capture_ns = 0;       ///< encode timestamp at the sender
  std::int64_t first_arrival_ns = -1;
  std::int64_t complete_ns = -1;     ///< last packet of the frame arrived
  std::int64_t decode_ns = -1;       ///< released in-order to the decoder
  std::uint32_t packets = 0;
};

// ---- global runtime switch ------------------------------------------------

/// Runtime switch read by every span stamp; off by default and frozen off
/// by app::ObsFreeze alongside the other obs switches.
// zlint-allow(shared-mutable-state): reviewed process-global obs switch; set once at startup, frozen by app::ObsFreeze before any run, never result-affecting
inline bool g_attrib_enabled = false;

[[nodiscard]] inline bool attrib_enabled() { return g_attrib_enabled; }
inline void set_attrib_enabled(bool on) { g_attrib_enabled = on; }

}  // namespace zhuge::obs

// ZHUGE_SPAN_STAMP(lvalue_ns, now): stamp a span field with `now` when
// attribution is enabled; one cold-bool branch otherwise, nothing at all
// under -DZHUGE_OBS_ENABLED=0.
#if ZHUGE_OBS_ENABLED
#define ZHUGE_SPAN_STAMP(lvalue_ns, now)                                  \
  do {                                                                    \
    if (::zhuge::obs::attrib_enabled()) (lvalue_ns) = (now).count_ns();   \
  } while (0)
#else
#define ZHUGE_SPAN_STAMP(lvalue_ns, now) do {} while (0)
#endif
