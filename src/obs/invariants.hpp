#pragma once
// Runtime invariant checker: asserts the safety properties the Zhuge
// mechanism relies on without aborting the simulation.
//
// Components declare invariants at their hot paths with ZHUGE_INVARIANT;
// a violated invariant is recorded (name, first-violation detail, count)
// in a process-global checker that tests and the chaos harness read back.
// Recording instead of crashing matters for chaos runs: a fault sweep
// wants to finish the scenario and report *every* property that broke,
// not die on the first one.
//
// Enabled by default in Debug builds (!NDEBUG); Release builds keep the
// checks compiled in but off behind one cold-bool branch, the same
// pattern as the metrics/tracer switches. CI's chaos job turns the
// checker on explicitly.
//
// Invariants currently declared around the codebase:
//   feedback.ack_order        - OOB release clock never goes backwards
//   feedback.hold_bound       - no ACK held past the configured cap
//   feedback.twcc_monotone    - AP-built TWCC sequences strictly increase
//   queue.nonnegative_bytes   - qdisc byte accounting never underflows
//   link.nonnegative_bytes    - wired-link buffer accounting likewise

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace zhuge::obs {

/// Collects invariant violations: total count plus the first occurrence
/// of each distinct invariant name (bounded, so a hot broken invariant
/// cannot eat memory).
class InvariantChecker {
 public:
  static constexpr std::size_t kMaxDistinct = 64;

  struct Violation {
    std::string name;    ///< invariant id, e.g. "feedback.ack_order"
    std::string detail;  ///< detail of the *first* occurrence
    double first_t_ms = 0.0;
    std::uint64_t count = 0;
  };

  void report(sim::TimePoint now, std::string_view name, std::string detail) {
    ++total_;
    for (auto& v : violations_) {
      if (v.name == name) {
        ++v.count;
        return;
      }
    }
    if (violations_.size() < kMaxDistinct) {
      violations_.push_back(
          {std::string(name), std::move(detail), now.to_millis(), 1});
    }
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }

  /// Violation count for one invariant name (0 if never violated).
  [[nodiscard]] std::uint64_t count(std::string_view name) const {
    for (const auto& v : violations_) {
      if (v.name == name) return v.count;
    }
    return 0;
  }

  /// One-line summary for logs/CLIs; empty string when clean.
  [[nodiscard]] std::string summary() const {
    if (total_ == 0) return {};
    std::string out = std::to_string(total_) + " invariant violation(s):";
    for (const auto& v : violations_) {
      out += " [" + v.name + " x" + std::to_string(v.count) + " first@" +
             std::to_string(v.first_t_ms) + "ms: " + v.detail + "]";
    }
    return out;
  }

  void clear() {
    total_ = 0;
    violations_.clear();
  }

 private:
  std::uint64_t total_ = 0;
  std::vector<Violation> violations_;
};

// ---- global instance + runtime switch ------------------------------------

/// Default-on in Debug builds so every ctest run checks the properties;
/// default-off in Release so the hot paths pay one predictable branch.
#ifndef NDEBUG
// zlint-allow(shared-mutable-state): reviewed process-global obs switch; set once at startup, frozen by app::ObsFreeze before any run, never result-affecting
inline bool g_invariants_enabled = true;
#else
// zlint-allow(shared-mutable-state): reviewed process-global obs switch; set once at startup, frozen by app::ObsFreeze before any run, never result-affecting
inline bool g_invariants_enabled = false;
#endif

[[nodiscard]] inline bool invariants_enabled() { return g_invariants_enabled; }
inline void set_invariants_enabled(bool on) { g_invariants_enabled = on; }

/// Process-global checker used by the ZHUGE_INVARIANT macro.
inline InvariantChecker& invariants() {
  // zlint-allow(shared-mutable-state): reviewed obs singleton; check counter only, reset between runs, never feeds back into results
  static InvariantChecker c;
  return c;
}

}  // namespace zhuge::obs

// ZHUGE_INVARIANT(now, "component.property", cond, detail_expr)
// `detail_expr` (any expression convertible to std::string) is evaluated
// only when the condition fails and the checker is enabled.
#if ZHUGE_OBS_ENABLED
#define ZHUGE_INVARIANT(now, name, cond, detail)                      \
  do {                                                                \
    if (::zhuge::obs::invariants_enabled() && !(cond))                \
      ::zhuge::obs::invariants().report((now), (name), (detail));     \
  } while (0)
#else
#define ZHUGE_INVARIANT(now, name, cond, detail) do {} while (0)
#endif
