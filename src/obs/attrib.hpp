#pragma once
// Online latency-attribution aggregator and budget-report renderers.
//
// An Attribution object turns span stamps (obs/spans.hpp) into per-stage
// delay distributions: one log-bucket histogram per stage over all
// traffic, split by optimisation group (Zhuge-on vs Zhuge-off flows) and
// by flow key. It is a plain value type — each scenario run owns its own
// instance and records into it single-threadedly, so parallel sweeps
// never share mutable state and the aggregate is bit-identical for any
// thread count. merge() folds run-local instances together after the
// parallel phase, in grid order.
//
// The same aggregator is fed two ways: live (record_packet/record_frame
// called from the scenario engines at delivery/decode time) or offline
// (add_trace_event replaying "span" records from a JSONL trace via
// obs/trace_reader). tools/latency_attrib renders either into the
// latency-budget report (text table + waterfall, CSV, JSON with CDFs).

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "obs/metrics.hpp"
#include "obs/spans.hpp"

namespace zhuge::obs {

struct LoadedEvent;  // obs/trace_reader.hpp

/// Per-stage delay histograms, in microseconds.
struct StageSet {
  /// 0.1 us .. 100 s, 20 buckets/decade: ~1.3 ms relative bucket width at
  /// any scale, fine enough that a p95 shift of one bucket is ~12%.
  [[nodiscard]] static HistogramSpec stage_spec() {
    return HistogramSpec{0.1, 1e8, 20};
  }

  StageSet() { h.fill(Histogram(stage_spec())); }

  void observe(Stage s, double us) {
    h[static_cast<std::size_t>(s)].observe(us);
  }
  [[nodiscard]] const Histogram& stage(Stage s) const {
    return h[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] Histogram& stage(Stage s) {
    return h[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] bool empty() const {
    for (const auto& hist : h) {
      if (hist.count() > 0) return false;
    }
    return true;
  }
  void merge(const StageSet& other);

  std::array<Histogram, kStageCount> h;
};

/// The online aggregator. Value-semantic and copyable so results can
/// embed one (excluded from fingerprints — see sweep.cpp).
class Attribution {
 public:
  /// Flow-resolved histograms are kept for at most this many distinct
  /// flow keys; beyond that new flows fold into the aggregate only (the
  /// report notes the truncation).
  static constexpr std::size_t kMaxFlows = 128;

  /// Record one delivered packet. Boundary timestamps: `sent_ns` is the
  /// wire departure (Packet::sent_time), `ap_in_ns` the AP qdisc ingress
  /// (Packet::ap_enqueue_time), `delivered_ns` the receiver arrival.
  /// Stages whose stamps are missing (-1 / non-positive interval source)
  /// are skipped individually.
  void record_packet(std::uint32_t flow_key, bool optimized,
                     std::int64_t sent_ns, std::int64_t ap_in_ns,
                     std::int64_t delivered_ns, const PacketSpan& span);

  /// Record one decoded frame (jitter-buffer + decode stages).
  void record_frame(bool optimized, const FrameSpan& s);

  /// Replay one trace event; events other than component "span" are
  /// ignored, so a whole trace can be streamed through unfiltered.
  void add_trace_event(const LoadedEvent& ev);

  /// Fold `other` into this (histogram-bucket addition; flow tables
  /// union, truncated at kMaxFlows in key order).
  void merge(const Attribution& other);

  [[nodiscard]] bool empty() const { return packets_ == 0 && frames_ == 0; }
  [[nodiscard]] std::uint64_t packets() const { return packets_; }
  [[nodiscard]] std::uint64_t frames() const { return frames_; }
  [[nodiscard]] std::uint64_t truncated_flows() const { return truncated_flows_; }

  [[nodiscard]] const StageSet& all() const { return all_; }
  /// Per-optimisation-group view: group(true) = Zhuge-optimised flows.
  [[nodiscard]] const StageSet& group(bool optimized) const {
    return by_group_[optimized ? 1 : 0];
  }
  [[nodiscard]] const std::map<std::uint32_t, StageSet>& flows() const {
    return by_flow_;
  }

  /// Export per-stage histograms into a metrics registry under
  /// `<prefix>.<stage>_us` (aggregate) and `<prefix>.<group>.<stage>_us`.
  void export_metrics(Registry& registry, const std::string& prefix) const;

 private:
  [[nodiscard]] StageSet* flow_set(std::uint32_t flow_key);

  StageSet all_;
  std::array<StageSet, 2> by_group_;  ///< [0] = plain, [1] = Zhuge-optimised
  std::map<std::uint32_t, StageSet> by_flow_;
  std::uint64_t packets_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t truncated_flows_ = 0;  ///< packets/frames beyond kMaxFlows
};

// ---- latency-budget report rendering --------------------------------------

/// Human-readable report: per-stage count/mean/p50/p95/p99/max table for
/// the aggregate, the budget waterfall (share of e2e mean per packet
/// stage), and a Zhuge-on vs Zhuge-off p95 comparison when both groups
/// saw traffic.
void write_attrib_report_text(const Attribution& a, std::ostream& out);

/// CSV: one row per (scope, stage) with count/mean/p50/p90/p95/p99/max,
/// scope in {all, zhuge_on, zhuge_off, flow<k>}.
void write_attrib_report_csv(const Attribution& a, std::ostream& out);

/// JSON: per-scope per-stage summary objects plus the full CDF (bucket
/// upper edge -> cumulative fraction) for every aggregate stage.
void write_attrib_report_json(const Attribution& a, std::ostream& out);

}  // namespace zhuge::obs
