#include "obs/trace_reader.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <variant>

namespace zhuge::obs {

namespace {

// ---- minimal recursive-descent JSON parser -------------------------------
// Supports exactly what the exporters emit (and standard JSON generally);
// numbers are doubles, objects keep insertion-agnostic std::map order.

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v = nullptr;

  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<std::shared_ptr<JsonObject>>(v);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<std::shared_ptr<JsonArray>>(v);
  }
  [[nodiscard]] const JsonObject& object() const {
    return *std::get<std::shared_ptr<JsonObject>>(v);
  }
  [[nodiscard]] const JsonArray& array() const {
    return *std::get<std::shared_ptr<JsonArray>>(v);
  }
  [[nodiscard]] double number_or(double fallback) const {
    const double* d = std::get_if<double>(&v);
    return d != nullptr ? *d : fallback;
  }
  [[nodiscard]] std::string string_or(std::string fallback) const {
    const std::string* s = std::get_if<std::string>(&v);
    return s != nullptr ? *s : std::move(fallback);
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    const JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    // Show the offending text so a user can find the problem without a
    // hex editor: up to 20 chars at the failure position, sanitized.
    std::string near(text_.substr(pos_, 20));
    for (char& c : near) {
      if (static_cast<unsigned char>(c) < 0x20) c = ' ';
    }
    if (pos_ + 20 < text_.size()) near += "...";
    std::string msg = "JSON parse error at offset " + std::to_string(pos_) +
                      ": " + what;
    msg += near.empty() ? " (at end of input)" : " near \"" + near + "\"";
    throw std::runtime_error(msg);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue{parse_string()};
      case 't': return parse_literal("true", JsonValue{true});
      case 'f': return parse_literal("false", JsonValue{false});
      case 'n': return parse_literal("null", JsonValue{nullptr});
      default: return parse_number();
    }
  }

  JsonValue parse_literal(std::string_view lit, JsonValue v) {
    if (text_.substr(pos_, lit.size()) != lit) fail("bad literal");
    pos_ += lit.size();
    return v;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) fail("bad number");
    return JsonValue{d};
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          // \uXXXX: our exporters never emit these; decode BMP code points
          // to keep the parser standard-compliant for hand-made files.
          if (pos_ + 4 > text_.size()) fail("bad unicode escape");
          const int code = static_cast<int>(
              std::strtol(std::string(text_.substr(pos_, 4)).c_str(), nullptr, 16));
          pos_ += 4;
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
    return out;
  }

  JsonValue parse_array() {
    expect('[');
    auto arr = std::make_shared<JsonArray>();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{arr};
    }
    while (true) {
      arr->push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return JsonValue{arr};
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  JsonValue parse_object() {
    expect('{');
    auto obj = std::make_shared<JsonObject>();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{obj};
    }
    while (true) {
      std::string key = parse_string();
      expect(':');
      obj->emplace(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return JsonValue{obj};
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

const JsonValue* find(const JsonObject& obj, const std::string& key) {
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

void append_fields(LoadedEvent& ev, const JsonValue& fields) {
  if (!fields.is_object()) return;
  for (const auto& [key, value] : fields.object()) {
    if (std::holds_alternative<double>(value.v)) {
      ev.fields.emplace_back(key, std::get<double>(value.v));
    }
  }
}

/// One Chrome trace_event element -> LoadedEvent (nullopt-like false for
/// metadata and other non-instant phases).
bool load_chrome_event(const JsonValue& v, LoadedEvent& out) {
  if (!v.is_object()) return false;
  const JsonObject& obj = v.object();
  if (const JsonValue* ph = find(obj, "ph"); ph != nullptr) {
    const std::string phase = ph->string_or("i");
    if (phase != "i" && phase != "I" && phase != "X") return false;
  }
  const JsonValue* ts = find(obj, "ts");
  if (ts == nullptr) return false;
  out.t_us = ts->number_or(0.0);
  if (const JsonValue* name = find(obj, "name"); name != nullptr) {
    out.name = name->string_or("");
  }
  if (const JsonValue* cat = find(obj, "cat"); cat != nullptr) {
    out.component = cat->string_or("");
  }
  if (const JsonValue* args = find(obj, "args"); args != nullptr) {
    append_fields(out, *args);
  }
  return true;
}

bool load_jsonl_event(const JsonValue& v, LoadedEvent& out) {
  if (!v.is_object()) return false;
  const JsonObject& obj = v.object();
  const JsonValue* t = find(obj, "t_us");
  if (t == nullptr) return load_chrome_event(v, out);  // mixed-format line
  out.t_us = t->number_or(0.0);
  if (const JsonValue* c = find(obj, "component"); c != nullptr) {
    out.component = c->string_or("");
  }
  if (const JsonValue* n = find(obj, "name"); n != nullptr) {
    out.name = n->string_or("");
  }
  if (const JsonValue* f = find(obj, "fields"); f != nullptr) {
    append_fields(out, *f);
  }
  return true;
}

}  // namespace

std::vector<LoadedEvent> load_trace(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  std::vector<LoadedEvent> out;
  // Detect format: a Chrome trace is one document whose root object has a
  // traceEvents array (or is itself an array); JSONL is one object/line.
  const std::size_t first = text.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return out;

  bool parsed_whole = false;
  if (text[first] == '{' || text[first] == '[') {
    try {
      const JsonValue root = JsonParser(text).parse();
      parsed_whole = true;
      const JsonArray* events = nullptr;
      if (root.is_array()) {
        events = &root.array();
      } else if (root.is_object()) {
        if (const JsonValue* te = find(root.object(), "traceEvents");
            te != nullptr && te->is_array()) {
          events = &te->array();
        }
      }
      if (events != nullptr) {
        for (const JsonValue& v : *events) {
          LoadedEvent ev;
          if (load_chrome_event(v, ev)) out.push_back(std::move(ev));
        }
        return out;
      }
      // A single JSONL-style object in a one-line file: fall through.
      LoadedEvent ev;
      if (root.is_object() && load_jsonl_event(root, ev)) {
        out.push_back(std::move(ev));
        return out;
      }
    } catch (const std::runtime_error&) {
      if (parsed_whole) throw;
      // Not a single document: try line-by-line JSONL below.
    }
  }

  std::istringstream lines(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    const std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    JsonValue v;
    try {
      v = JsonParser(line).parse();
    } catch (const std::runtime_error& e) {
      throw std::runtime_error("line " + std::to_string(line_no) + ": " + e.what());
    }
    LoadedEvent ev;
    if (load_jsonl_event(v, ev)) out.push_back(std::move(ev));
  }
  return out;
}

std::vector<LoadedEvent> load_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  try {
    return load_trace(in);
  } catch (const std::runtime_error& e) {
    // Prefix the file so multi-file pipelines report which input is bad.
    throw std::runtime_error(path + ": " + e.what());
  }
}

}  // namespace zhuge::obs
