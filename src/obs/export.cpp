#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <string_view>

namespace zhuge::obs {

namespace {

/// JSON string escaping for the small set of characters our names can
/// plausibly contain. Values are all numeric, so this only guards names.
void write_escaped(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c;
    }
  }
  out << '"';
}

/// JSON has no Inf/NaN; clamp them to null-safe sentinels.
void write_number(std::ostream& out, double v) {
  if (std::isnan(v)) {
    out << "0";
    return;
  }
  if (std::isinf(v)) {
    out << (v > 0 ? "1e308" : "-1e308");
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out << buf;
}

void write_fields_object(std::ostream& out, const TraceEvent& ev) {
  out << '{';
  for (std::uint8_t i = 0; i < ev.n_fields; ++i) {
    if (i > 0) out << ',';
    write_escaped(out, ev.fields[i].key);
    out << ':';
    write_number(out, ev.fields[i].value);
  }
  out << '}';
}

}  // namespace

void write_chrome_trace(const Tracer& tracer, std::ostream& out) {
  // Stable component -> tid mapping, in order of first appearance.
  std::map<std::string_view, int> tids;
  tracer.for_each([&](const TraceEvent& ev) {
    tids.emplace(ev.component, 0);
  });
  int next_tid = 1;
  for (auto& [component, tid] : tids) tid = next_tid++;

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& [component, tid] : tids) {
    if (!first) out << ',';
    first = false;
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":";
    write_escaped(out, component);
    out << "}}";
  }
  tracer.for_each([&](const TraceEvent& ev) {
    if (!first) out << ',';
    first = false;
    out << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":"
        << tids[ev.component] << ",\"ts\":";
    write_number(out, static_cast<double>(ev.t_ns) / 1e3);
    out << ",\"name\":";
    write_escaped(out, ev.name);
    out << ",\"cat\":";
    write_escaped(out, ev.component);
    out << ",\"args\":";
    write_fields_object(out, ev);
    out << '}';
  });
  out << "]}\n";
}

void write_trace_jsonl(const Tracer& tracer, std::ostream& out) {
  tracer.for_each([&](const TraceEvent& ev) {
    out << "{\"t_us\":";
    write_number(out, static_cast<double>(ev.t_ns) / 1e3);
    out << ",\"component\":";
    write_escaped(out, ev.component);
    out << ",\"name\":";
    write_escaped(out, ev.name);
    out << ",\"fields\":";
    write_fields_object(out, ev);
    out << "}\n";
  });
}

void write_trace_csv(const Tracer& tracer, std::ostream& out) {
  out << "t_us,component,name,field,value\n";
  tracer.for_each([&](const TraceEvent& ev) {
    char t_buf[32];
    std::snprintf(t_buf, sizeof(t_buf), "%.3f", static_cast<double>(ev.t_ns) / 1e3);
    if (ev.n_fields == 0) {
      out << t_buf << ',' << ev.component << ',' << ev.name << ",,\n";
      return;
    }
    for (std::uint8_t i = 0; i < ev.n_fields; ++i) {
      out << t_buf << ',' << ev.component << ',' << ev.name << ','
          << ev.fields[i].key << ',';
      write_number(out, ev.fields[i].value);
      out << '\n';
    }
  });
}

void write_metrics_json(const Registry& registry, std::ostream& out) {
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : registry.counters()) {
    if (!first) out << ',';
    first = false;
    out << "\n    ";
    write_escaped(out, name);
    out << ": " << c.value();
  }
  out << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : registry.gauges()) {
    if (!first) out << ',';
    first = false;
    out << "\n    ";
    write_escaped(out, name);
    out << ": ";
    write_number(out, g.value());
  }
  out << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : registry.histograms()) {
    if (!first) out << ',';
    first = false;
    out << "\n    ";
    write_escaped(out, name);
    out << ": {\"count\": " << h.count() << ", \"sum\": ";
    write_number(out, h.sum());
    out << ", \"min\": ";
    write_number(out, h.min());
    out << ", \"max\": ";
    write_number(out, h.max());
    out << ", \"mean\": ";
    write_number(out, h.mean());
    out << ", \"p50\": ";
    write_number(out, h.quantile(0.50));
    out << ", \"p95\": ";
    write_number(out, h.quantile(0.95));
    out << ", \"p99\": ";
    write_number(out, h.quantile(0.99));
    out << ", \"p999\": ";
    write_number(out, h.quantile(0.999));
    out << ", \"buckets\": [";
    bool first_bucket = true;
    for (std::size_t i = 0; i < h.bucket_count(); ++i) {
      if (h.bucket_value(i) == 0) continue;
      if (!first_bucket) out << ',';
      first_bucket = false;
      out << "{\"ge\": ";
      write_number(out, h.bucket_lower(i));
      out << ", \"n\": " << h.bucket_value(i) << '}';
    }
    out << "]}";
  }
  out << "\n  }\n}\n";
}

namespace {

bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

bool write_trace_file(const Tracer& tracer, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  if (ends_with(path, ".jsonl")) {
    write_trace_jsonl(tracer, out);
  } else if (ends_with(path, ".csv")) {
    write_trace_csv(tracer, out);
  } else {
    write_chrome_trace(tracer, out);
  }
  return static_cast<bool>(out);
}

bool write_metrics_file(const Registry& registry, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_metrics_json(registry, out);
  return static_cast<bool>(out);
}

}  // namespace zhuge::obs
