#pragma once  // zlint-allow(include-graph): consumed outside src/ — bench/bench_util.hpp and examples/ include it; no src-internal TU does
// CLI observability session, shared by every entrypoint (benches, examples,
// tools). Parses
//   --trace <file>     enable the event tracer, dump on exit
//                      (.json = Chrome trace_event, .jsonl, .csv)
//   --metrics <file>   enable the metrics registry, dump JSON on exit
//   --attrib           enable latency-span stamping, so traces recorded
//                      with --trace carry per-stage span records that
//                      latency_attrib --trace can aggregate
// and writes the requested files when it goes out of scope. With no flags,
// instrumentation stays disabled and the run is unchanged. Extracted from
// bench/bench_util.hpp so examples and tools emit metrics exactly the
// same way the figure benches do.

#include <cstdio>
#include <string>
#include <string_view>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/spans.hpp"
#include "obs/tracer.hpp"

namespace zhuge::obs {

/// RAII session: construct from argv at the top of main(), keep alive for
/// the whole run. Unknown flags are left untouched for the caller.
class ObsSession {
 public:
  ObsSession(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--trace" && i + 1 < argc) {
        trace_path_ = argv[++i];
        set_tracing_enabled(true);
      } else if (arg == "--metrics" && i + 1 < argc) {
        metrics_path_ = argv[++i];
        set_metrics_enabled(true);
      } else if (arg == "--attrib") {
        set_attrib_enabled(true);
      }
    }
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  ~ObsSession() {
    if (!trace_path_.empty()) {
      if (write_trace_file(tracer(), trace_path_)) {
        std::fprintf(stderr, "[obs] trace: %s (%zu events", trace_path_.c_str(),
                     tracer().size());
        if (tracer().overwritten() > 0) {
          std::fprintf(stderr, ", %llu overwritten",
                       static_cast<unsigned long long>(tracer().overwritten()));
        }
        std::fprintf(stderr, ")\n");
      } else {
        std::fprintf(stderr, "[obs] failed to write trace: %s\n",
                     trace_path_.c_str());
      }
    }
    if (!metrics_path_.empty()) {
      if (write_metrics_file(metrics(), metrics_path_)) {
        std::fprintf(stderr, "[obs] metrics: %s\n", metrics_path_.c_str());
      } else {
        std::fprintf(stderr, "[obs] failed to write metrics: %s\n",
                     metrics_path_.c_str());
      }
    }
    set_tracing_enabled(false);
    set_metrics_enabled(false);
    set_attrib_enabled(false);
  }

 private:
  std::string trace_path_;
  std::string metrics_path_;
};

}  // namespace zhuge::obs
