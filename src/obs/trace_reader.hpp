#pragma once
// Loader for exported traces: parses Chrome trace_event JSON and JSONL
// back into events with owned strings. Used by tools/trace_summarize and
// the exporter round-trip tests; no third-party JSON dependency.

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace zhuge::obs {

/// A trace event read back from disk. Unlike the recording-side
/// TraceEvent, strings are owned (the file is the source of truth).
struct LoadedEvent {
  double t_us = 0.0;
  std::string component;
  std::string name;
  std::vector<std::pair<std::string, double>> fields;
};

/// Parse a Chrome trace JSON document ({"traceEvents":[...]}) or JSONL
/// stream (auto-detected). Metadata events are skipped. Throws
/// std::runtime_error on malformed input.
[[nodiscard]] std::vector<LoadedEvent> load_trace(std::istream& in);

/// As load_trace, from a file path. Throws std::runtime_error when the
/// file cannot be opened or parsed.
[[nodiscard]] std::vector<LoadedEvent> load_trace_file(const std::string& path);

}  // namespace zhuge::obs
