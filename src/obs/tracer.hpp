#pragma once
// Structured event tracer: typed (time, component, name, fields...) records
// in an in-memory ring buffer, exportable as Chrome trace_event JSON (loads
// in chrome://tracing and Perfetto), JSONL, and CSV (see obs/export.hpp).
//
// Recording goes through the ZHUGE_TRACE macro, which compiles away when
// ZHUGE_OBS_ENABLED is 0 and otherwise costs one cold-bool branch until
// set_tracing_enabled(true). Component/name/field-key strings must be
// string literals (or otherwise outlive the tracer): events store the
// pointers, not copies — the hot path never allocates per-string.

#include <array>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "obs/invariants.hpp"
#include "obs/metrics.hpp"  // ZHUGE_OBS_ENABLED
#include "sim/time.hpp"

namespace zhuge::obs {

/// One typed key/value pair attached to a trace event. Values are doubles:
/// every signal this simulator traces (bytes, delays, rates, counts) is
/// numeric, and a fixed-size value keeps events POD.
struct Field {
  const char* key;
  double value;
};

/// One trace record. POD; fields beyond `n_fields` are unspecified.
struct TraceEvent {
  static constexpr std::size_t kMaxFields = 8;

  std::int64_t t_ns = 0;
  const char* component = "";
  const char* name = "";
  std::array<Field, kMaxFields> fields{};
  std::uint8_t n_fields = 0;
};

/// Append buffer with ring semantics: when `capacity` events are held, new
/// records overwrite the oldest (a long run keeps the most recent window,
/// the common case when chasing a misprediction near the end of a run).
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 1u << 20) : capacity_(capacity) {}

  /// Change the ring capacity; discards currently-held events.
  void set_capacity(std::size_t capacity) {
    capacity_ = capacity;
    clear();
  }

  void record(sim::TimePoint t, const char* component, const char* name,
              std::initializer_list<Field> fields) {
    TraceEvent ev;
    ev.t_ns = t.count_ns();
    ev.component = component;
    ev.name = name;
    for (const Field& f : fields) {
      if (ev.n_fields >= TraceEvent::kMaxFields) break;
      ev.fields[ev.n_fields++] = f;
    }
    ++recorded_;
    if (events_.size() < capacity_) {
      events_.push_back(ev);
    } else if (capacity_ > 0) {
      events_[head_] = ev;
      head_ = (head_ + 1) % capacity_;
    }
  }

  /// Events currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  /// Total events ever recorded, including overwritten ones.
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  [[nodiscard]] std::uint64_t overwritten() const {
    return recorded_ - events_.size();
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// i-th retained event in chronological order.
  [[nodiscard]] const TraceEvent& at(std::size_t i) const {
    return events_[(head_ + i) % events_.size()];
  }

  /// Visit retained events in chronological order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < events_.size(); ++i) fn(at(i));
  }

  void clear() {
    events_.clear();
    head_ = 0;
    recorded_ = 0;
  }

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::size_t head_ = 0;  ///< index of the oldest event once wrapped
  std::uint64_t recorded_ = 0;
};

// ---- global instance + runtime switch ------------------------------------

// zlint-allow(shared-mutable-state): reviewed process-global obs switch; set once at startup, frozen by app::ObsFreeze before any run, never result-affecting
inline bool g_tracing_enabled = false;

[[nodiscard]] inline bool tracing_enabled() { return g_tracing_enabled; }
inline void set_tracing_enabled(bool on) { g_tracing_enabled = on; }

/// Process-global tracer used by the ZHUGE_TRACE macro.
inline Tracer& tracer() {
  // zlint-allow(shared-mutable-state): reviewed obs singleton; sink only, reset between runs, never feeds back into results
  static Tracer t;
  return t;
}

/// Reset all global observability state (between scenario runs in one
/// process, e.g. multi-seed benches that export per-run outputs).
inline void reset() {
  tracer().clear();
  metrics().clear();
  invariants().clear();
}

}  // namespace zhuge::obs

// ZHUGE_TRACE(now, "component", "event", {"key", value}, ...)
// Field arguments are braced {key, value} pairs; they are only evaluated
// when tracing is enabled at runtime.
#if ZHUGE_OBS_ENABLED
#define ZHUGE_TRACE(now, component, name, ...)                          \
  do {                                                                  \
    if (::zhuge::obs::tracing_enabled())                                \
      ::zhuge::obs::tracer().record((now), (component), (name), {__VA_ARGS__}); \
  } while (0)
#else
#define ZHUGE_TRACE(now, component, name, ...) do {} while (0)
#endif
