#pragma once
// End-to-end scenario wiring: server(s) -> WAN -> AP -> wireless -> client,
// with the uplink feedback path crossing the same wireless medium. This is
// the evaluation harness behind every figure reproduction; examples use it
// as the library's top-level API.

#include <cstdint>
#include <memory>
#include <vector>

#include "app/access_point.hpp"
#include "app/spec.hpp"
#include "fault/fault.hpp"
#include "net/packet.hpp"
#include "obs/attrib.hpp"
#include "rtc/video.hpp"
#include "stats/distribution.hpp"
#include "stats/timeseries.hpp"
#include "trace/trace.hpp"
#include "transport/rtp_sender.hpp"

namespace zhuge::app {

/// Transport/feedback family (§5.1).
enum class Protocol : std::uint8_t { kRtp, kTcp };

/// TCP-side CCA choice.
enum class TcpCcaKind : std::uint8_t { kCopa, kBbr, kCubic, kAbc };

/// Full experiment description.
struct ScenarioConfig {
  Protocol protocol = Protocol::kRtp;
  TcpCcaKind tcp_cca = TcpCcaKind::kCopa;
  transport::RtpCca rtp_cca = transport::RtpCca::kGcc;
  AccessPoint::Config ap{};

  const trace::Trace* channel_trace = nullptr;  ///< nullptr => MCS mode
  int mcs_index = 7;
  bool mcs_random_switch = false;          ///< fig18 "mcs": re-roll every 30 s
  int interferers = 0;                     ///< fig17 wireless interference

  int competing_bulk_flows = 0;            ///< fig16: CUBIC bulk at same AP
  bool scp_periodic_competitor = false;    ///< fig18 "scp": 30 s on/off bulk

  int rtc_flows = 1;                       ///< fig20 fairness: >1 RTC flows
  std::vector<bool> optimize_flow{};       ///< per-RTC-flow AP optimisation
                                           ///< (empty = optimise all)

  rtc::VideoConfig video{};
  fault::FaultPlan faults{};               ///< chaos harness (default: none)
  sim::Duration wan_one_way = sim::Duration::millis(20);
  double wan_rate_bps = 1e9;
  sim::Duration duration = sim::Duration::seconds(60);
  sim::Duration warmup = sim::Duration::seconds(5);
  std::uint64_t seed = 1;
};

/// Per-RTC-flow outputs.
struct FlowResult {
  stats::Distribution network_rtt_ms;   ///< per-packet, post-warmup
  stats::Distribution downlink_owd_ms;  ///< downlink one-way delay only
  stats::Distribution frame_delay_ms;
  stats::Distribution frame_rate_fps;   ///< per-second decoded frames
  double goodput_bps = 0.0;             ///< application bytes delivered
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_decoded = 0;
};

/// Everything the benches print.
struct ScenarioResult {
  std::vector<FlowResult> flows;        ///< one per RTC flow
  stats::TimeSeries rtt_series_ms;      ///< flow 0, includes warmup
  stats::TimeSeries rate_series_bps;    ///< flow 0 CCA target / cwnd rate
  stats::TimeSeries frame_delay_series_ms;  ///< flow 0
  stats::TimeSeries frame_rate_series_fps;  ///< flow 0, per-second
  stats::Distribution sender_rtt_ms;    ///< TCP: RTT samples seen by sender
  stats::Distribution prediction_error_ms;       ///< |predicted - actual|
  std::vector<std::pair<double, double>> predicted_vs_real_ms;
  std::uint64_t qdisc_drops = 0;
  std::uint64_t tcp_retransmissions = 0;  ///< flow 0, TCP mode
  std::uint64_t events_executed = 0;

  // ---- robustness / chaos outputs ----
  stats::TimeSeries goodput_series_bps;   ///< flow 0 delivered rate, 50 ms bins
  AccessPoint::RobustnessStats robustness{};
  std::uint64_t fault_drops = 0;          ///< injector drops, all boundaries
  std::uint64_t fault_duplicated = 0;
  std::uint64_t fault_reordered = 0;
  /// Injector delay spikes, all boundaries. Added after the golden suite
  /// pinned result_fingerprint's input stream, so it is deliberately NOT
  /// hashed there; the chaos-matrix verdict fingerprint covers it.
  std::uint64_t fault_delay_spiked = 0;
  std::uint64_t flushed_acks_at_end = 0;  ///< feedback drained at run end
  std::uint64_t stranded_acks = 0;        ///< still held after the drain (bug if > 0)
  std::uint64_t invariant_violations = 0; ///< raised during this run

  /// Per-stage latency attribution (empty unless obs::attrib_enabled()
  /// during the run). Observability output only: excluded from result
  /// fingerprints by construction (sweep.cpp never hashes it).
  obs::Attribution attrib;

  /// Degradation-ladder transitions of every optimised flow (current and
  /// retired), stamped with stable flow keys. Observability output only,
  /// excluded from result fingerprints like `attrib`; the recovery-SLO
  /// accounting (obs::compute_recovery_slo) consumes it.
  std::vector<obs::LadderTransition> ladder_log;

  /// Flow 0 shorthand.
  [[nodiscard]] const FlowResult& primary() const { return flows.front(); }
};

/// Run one scenario to completion. Deterministic in (config, seed).
[[nodiscard]] ScenarioResult run_scenario(const ScenarioConfig& cfg);

// ---------------------------------------------------------------------------
// Multi-station scenario engine (declarative ScenarioSpec workloads)
// ---------------------------------------------------------------------------

/// Per-flow outputs of a multi-station run, in schedule order. Flows that
/// never delivered anything keep empty distributions.
struct MultiFlowResult {
  std::uint32_t index = 0;
  SpecFlowKind kind = SpecFlowKind::kRtpGcc;
  int station = 0;
  bool zhuge = false;
  double start_s = 0.0;
  double stop_s = 0.0;
  stats::Distribution network_rtt_ms;   ///< post-warmup
  stats::Distribution downlink_owd_ms;
  stats::Distribution frame_delay_ms;
  double goodput_bps = 0.0;             ///< over the flow's post-warmup window
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_decoded = 0;
  std::uint64_t packets_delivered = 0;
};

/// Per-station outputs (downlink side).
struct StationResult {
  double airtime_s = 0.0;           ///< medium airtime this station's AMPDUs used
  std::uint64_t qdisc_drops = 0;
  std::uint64_t delivered_packets = 0;
};

/// Everything a multi-station run produces. Numeric fields feed
/// sweep::multi_result_fingerprint, so every one of them is part of the
/// bit-identity contract.
struct MultiStationResult {
  std::string name;
  std::uint64_t seed = 0;
  std::vector<MultiFlowResult> flows;     ///< one per scheduled flow
  std::vector<StationResult> stations;    ///< station index order
  stats::Distribution agg_network_rtt_ms; ///< all flows, post-warmup
  stats::Distribution agg_frame_delay_ms;
  stats::Distribution prediction_error_ms;
  stats::TimeSeries active_flows;         ///< concurrency, sampled 100 ms
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;           ///< mid-run departures only
  std::uint64_t late_packets = 0;         ///< arrived after their flow left
  std::uint64_t qdisc_drops = 0;          ///< sum over stations
  std::uint64_t quiesced_drops = 0;       ///< black-holed at left stations
  std::uint64_t events_executed = 0;
  std::uint64_t flushed_acks_at_end = 0;
  std::uint64_t stranded_acks = 0;
  std::uint64_t invariant_violations = 0;
  AccessPoint::RobustnessStats robustness{};

  // Feedback-path fault-injection counters (spec "feedback_faults"
  // section). Added after the golden suite pinned multi_result_fingerprint's
  // input stream, so they are deliberately NOT hashed there; tests compare
  // them directly when asserting injection bit-identity.
  std::uint64_t fault_drops = 0;
  std::uint64_t fault_duplicated = 0;
  std::uint64_t fault_reordered = 0;
  std::uint64_t fault_delay_spiked = 0;
  std::uint64_t fault_bypassed = 0;  ///< non-feedback packets waved through

  /// Per-stage latency attribution (observability only; never hashed by
  /// sweep::multi_result_fingerprint).
  obs::Attribution attrib;

  /// Degradation-ladder transitions, all optimised flows (observability
  /// only; never hashed — same contract as `attrib`).
  std::vector<obs::LadderTransition> ladder_log;
};

/// Run a multi-station spec to completion with its embedded seed.
/// Deterministic in (spec, seed): same spec + same seed => bit-identical
/// MultiStationResult on any platform.
[[nodiscard]] MultiStationResult run_multi_station(const ScenarioSpec& spec);

/// Same, overriding the spec's seed (sweeps across seeds).
[[nodiscard]] MultiStationResult run_multi_station(const ScenarioSpec& spec,
                                                   std::uint64_t seed);

}  // namespace zhuge::app
