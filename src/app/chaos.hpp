#pragma once
// Chaos harness: named fault scenarios over the end-to-end topology plus
// the recovery verdicts the robustness claims rest on.
//
// Each ChaosCase is one adverse condition injected into an otherwise
// healthy run. A case passes when, after the fault clears:
//   * flow 0's goodput is back within tolerance of its pre-fault level,
//   * no feedback packet was stranded inside Zhuge state, and
//   * no runtime invariant (obs/invariants.hpp) was violated.
// Cases that starve the uplink additionally assert the watchdog actually
// failed open (a watchdog that never fires is indistinguishable from no
// watchdog). Lives in src/app (not src/fault) because verdicts are
// computed from ScenarioResult.

#include <string>
#include <vector>

#include "app/scenario.hpp"
#include "fault/fault.hpp"

namespace zhuge::app {

/// One named fault scenario.
struct ChaosCase {
  std::string name;
  ScenarioConfig config;        ///< includes config.faults
  sim::TimePoint fault_start;   ///< recovery windows are derived from these
  sim::TimePoint fault_end;
  bool expect_degrade = false;  ///< the watchdog must fire during this case
  double min_recovery_ratio = 0.9;  ///< post/pre goodput floor
  /// How long after fault_end before goodput is judged: the CCA needs time
  /// to ramp back (a total feedback blackout sends GCC to its floor).
  sim::Duration post_settle = sim::Duration::seconds(2);
};

/// Outcome of one case, with everything a CI log needs to diagnose.
struct ChaosVerdict {
  std::string name;
  bool passed = false;
  std::string failure;  ///< first failed criterion, empty when passed

  double pre_fault_goodput_bps = 0.0;
  double post_fault_goodput_bps = 0.0;
  double recovery_ratio = 0.0;
  std::uint64_t stranded_acks = 0;
  std::uint64_t invariant_violations = 0;
  std::uint64_t degrades = 0;
  std::uint64_t reactivates = 0;
  std::uint64_t flushed_acks = 0;
  std::uint64_t fault_drops = 0;
};

/// The standard suite: every fault class the subsystem models, each as a
/// bounded incident in a 25 s run (fault at 10 s, cleared well before the
/// end). Deterministic in `seed`.
[[nodiscard]] std::vector<ChaosCase> standard_chaos_suite(std::uint64_t seed);

/// Run one case and judge it. When `attrib_out` is non-null the run's
/// per-stage latency attribution is merged into it (enable the switch via
/// obs::set_attrib_enabled first, or the run records nothing) — chaos_run
/// uses this to build a suite-wide latency-budget report.
[[nodiscard]] ChaosVerdict run_chaos_case(const ChaosCase& c,
                                          obs::Attribution* attrib_out = nullptr);

/// One-line human-readable verdict summary.
[[nodiscard]] std::string format_verdict(const ChaosVerdict& v);

}  // namespace zhuge::app
