#pragma once
// Chaos harness: named fault scenarios over the end-to-end topology plus
// the recovery verdicts the robustness claims rest on.
//
// Each ChaosCase is one adverse condition injected into an otherwise
// healthy run. A case passes when, after the fault clears:
//   * flow 0's goodput is back within tolerance of its pre-fault level,
//   * no feedback packet was stranded inside Zhuge state, and
//   * no runtime invariant (obs/invariants.hpp) was violated.
// Cases that starve the uplink additionally assert the watchdog actually
// failed open (a watchdog that never fires is indistinguishable from no
// watchdog). Lives in src/app (not src/fault) because verdicts are
// computed from ScenarioResult.

#include <string>
#include <vector>

#include "app/scenario.hpp"
#include "fault/fault.hpp"
#include "obs/slo.hpp"

namespace zhuge::app {

/// One named fault scenario.
struct ChaosCase {
  std::string name;
  ScenarioConfig config;        ///< includes config.faults
  sim::TimePoint fault_start;   ///< recovery windows are derived from these
  sim::TimePoint fault_end;
  bool expect_degrade = false;  ///< the watchdog must fire during this case
  double min_recovery_ratio = 0.9;  ///< post/pre goodput floor
  /// How long after fault_end before goodput is judged: the CCA needs time
  /// to ramp back (a total feedback blackout sends GCC to its floor).
  sim::Duration post_settle = sim::Duration::seconds(2);
};

/// Outcome of one case, with everything a CI log needs to diagnose.
struct ChaosVerdict {
  std::string name;
  bool passed = false;
  std::string failure;  ///< first failed criterion, empty when passed

  double pre_fault_goodput_bps = 0.0;
  double post_fault_goodput_bps = 0.0;
  double recovery_ratio = 0.0;
  std::uint64_t stranded_acks = 0;
  std::uint64_t invariant_violations = 0;
  std::uint64_t degrades = 0;
  std::uint64_t reactivates = 0;
  std::uint64_t flushed_acks = 0;
  std::uint64_t fault_drops = 0;

  /// Recovery-SLO accounting from the run's degradation-ladder log
  /// (obs::compute_recovery_slo): time-to-detect, time-to-recover,
  /// per-level dwell, frames lost while degraded, post-recovery tail.
  obs::RecoverySlo slo{};
};

/// The standard suite: every fault class the subsystem models, each as a
/// bounded incident in a 25 s run (fault at 10 s, cleared well before the
/// end). Deterministic in `seed`.
[[nodiscard]] std::vector<ChaosCase> standard_chaos_suite(std::uint64_t seed);

/// Run one case and judge it. When `attrib_out` is non-null the run's
/// per-stage latency attribution is merged into it (enable the switch via
/// obs::set_attrib_enabled first, or the run records nothing) — chaos_run
/// uses this to build a suite-wide latency-budget report.
[[nodiscard]] ChaosVerdict run_chaos_case(const ChaosCase& c,
                                          obs::Attribution* attrib_out = nullptr);

/// One-line human-readable verdict summary.
[[nodiscard]] std::string format_verdict(const ChaosVerdict& v);

/// One machine-readable verdict as a single-line JSON object (chaos_run
/// --json): pass/fail, goodput numbers, robustness counters, and the full
/// recovery SLO.
[[nodiscard]] std::string verdict_json(const ChaosVerdict& v);

// ---------------------------------------------------------------------------
// Chaos matrix: feedback-path fault kinds x sender CCAs x channel profiles
// ---------------------------------------------------------------------------

/// The recovery-SLO chaos matrix: four feedback-path fault kinds (total
/// feedback loss, duplication, reordering, delay spikes — split across the
/// uplink-RTCP and AP-rewritten-feedback boundaries so both are exercised)
/// crossed with three sender CCAs (RTP/GCC, TCP/CUBIC, TCP/BBR) and two
/// channel profiles (steady: MCS 7 + FIFO; stressed: MCS 3 + CoDel).
/// 4 x 3 x 2 = 24 cases named "<fault>/<cca>/<profile>", deterministic in
/// `seed`.
[[nodiscard]] std::vector<ChaosCase> chaos_matrix(std::uint64_t seed);

/// Everything one matrix run produces. `fingerprint` chains the per-case
/// verdict fingerprints in grid order, so two matrix runs are equal iff
/// every verdict (including its SLO numbers) is bit-identical — the
/// serial-vs-parallel identity the tests assert.
struct ChaosMatrixResult {
  std::vector<ChaosVerdict> verdicts;  ///< grid order, not completion order
  obs::SloAccumulator slo;             ///< per-case rows + aggregate CDFs
  std::uint64_t fingerprint = 0;
  int failed = 0;
};

/// FNV-1a64 over every numeric field of the verdict (goodputs, counters,
/// the whole RecoverySlo) plus the case name. Complements the sweep
/// fingerprints: those deliberately exclude the post-golden fault/ladder
/// fields, this one covers them.
[[nodiscard]] std::uint64_t chaos_verdict_fingerprint(const ChaosVerdict& v);

/// Run `cases` on `threads` workers (app::run_indexed_pool; obs switches
/// frozen for the duration, so runtime invariant checking is off — the
/// serial standard suite keeps that gate). Verdicts land in grid order and
/// are bit-identical for any thread count.
[[nodiscard]] ChaosMatrixResult run_chaos_matrix(
    const std::vector<ChaosCase>& cases, unsigned threads);

}  // namespace zhuge::app
