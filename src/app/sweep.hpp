#pragma once
// Parallel scenario-sweep runner.
//
// A sweep is a grid of (scenario config, seed) points, each an independent
// deterministic simulation. Points are distributed over a thread pool of
// N workers; because a Simulator is a self-contained single-threaded
// timeline and run_scenario() is deterministic in (config, seed), the
// per-run outputs are bit-identical whether the grid runs serially or on
// 8 threads — a property the test suite asserts via result fingerprints.
//
// Thread-safety contract: the only process-global mutable state the
// scenario layer touches is the obs layer (metrics registry, tracer,
// invariant counter). run_sweep() turns all three off for the duration of
// the sweep and restores the switches afterwards, so concurrent runs
// never race on them; per-run headline metrics are aggregated *after* the
// parallel phase, serially and in grid order, via export_sweep_metrics().

#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "app/scenario.hpp"
#include "obs/metrics.hpp"

namespace zhuge::app {

/// FNV-1a64 running hash over raw bit patterns. Doubles are hashed via
/// bit_cast, not value conversion, so -0.0 vs 0.0 or NaN payload changes
/// are detected — "bit-identical" means exactly that. Shared by the sweep
/// fingerprints and the chaos-matrix verdict fingerprints.
struct Fnv {
  std::uint64_t h = 14695981039346656037ull;

  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void dist(const stats::Distribution& d) {
    u64(d.count());
    for (const double v : d.samples()) f64(v);
  }
  void series(const stats::TimeSeries& s) {
    u64(s.points().size());
    for (const auto& p : s.points()) {
      u64(static_cast<std::uint64_t>(p.t.count_ns()));
      f64(p.value);
    }
  }
};

/// Run `fn(0..n-1)` on `threads` workers pulling indices from a shared
/// atomic counter; serial on the calling thread when threads <= 1. Each
/// index is claimed exactly once, so `fn` needs no internal locking as
/// long as distinct indices touch distinct state. Every parallel runner
/// in the app layer (sweeps, spec sweeps, the chaos matrix) goes through
/// this one pool so the bit-identity argument is made in one place.
template <typename Fn>
void run_indexed_pool(std::size_t n, unsigned threads, Fn&& fn) {
  const std::size_t n_workers = std::min<std::size_t>(std::max(1u, threads), n);
  if (n_workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  for (auto& t : pool) t.join();
}

/// One grid point: a labelled scenario configuration plus the seed to run
/// it under. `seed` overrides `config.seed` at execution time so a seed
/// axis can be crossed onto a scenario axis without touching configs.
struct SweepPoint {
  std::string name;
  ScenarioConfig config;
  std::uint64_t seed = 1;
};

/// Per-run output: the full scenario result plus a 64-bit FNV-1a
/// fingerprint over the raw bit patterns of every numeric output, used to
/// assert serial == parallel bit-identity cheaply. `wall_seconds` is host
/// time and deliberately excluded from the fingerprint.
struct SweepRun {
  std::string name;
  std::uint64_t seed = 0;
  ScenarioResult result;
  std::uint64_t fingerprint = 0;
  double wall_seconds = 0.0;
};

struct SweepOptions {
  /// Worker threads; 0 or 1 runs the grid serially on the calling thread.
  unsigned threads = 1;
  /// Enable per-stage latency attribution during the sweep. ObsFreeze
  /// forces the attrib switch off like every other obs switch; this opt-in
  /// re-enables it for the pool. Safe under any thread count: the switch
  /// is written once before workers start, and each run records into its
  /// own result-local obs::Attribution (no shared mutable state).
  bool attrib = false;
};

/// RAII freeze of the process-global obs switches (metrics, tracing,
/// invariant counting): all three are forced off at construction and the
/// previous switch states restored at destruction. Every parallel runner
/// holds one for the duration of its pool — the registries are shared and
/// unsynchronized — and anything computing fingerprints (golden records,
/// tests) holds one so a run observes the same global state serially or
/// under a pool. Non-copyable, non-movable.
class ObsFreeze {
 public:
  ObsFreeze();
  ~ObsFreeze();
  ObsFreeze(const ObsFreeze&) = delete;
  ObsFreeze& operator=(const ObsFreeze&) = delete;

 private:
  bool metrics_was_;
  bool tracing_was_;
  bool invariants_was_;
  bool attrib_was_;
};

/// FNV-1a64 over the bit patterns of every numeric field of `r` —
/// distributions (count + each sample), time series (t + value), scalar
/// counters, robustness stats. Two results fingerprint equal iff every
/// compared field is bit-identical (modulo 64-bit hashing).
[[nodiscard]] std::uint64_t result_fingerprint(const ScenarioResult& r);

/// Run every grid point and return per-run results in grid order
/// (regardless of completion order). Deterministic per point for any
/// thread count.
[[nodiscard]] std::vector<SweepRun> run_sweep(std::vector<SweepPoint> grid,
                                              const SweepOptions& opts = {});

/// Cross a scenario axis with a seed axis: every scenario at every seed,
/// named "<scenario>/s<seed>", scenarios varying slowest.
[[nodiscard]] std::vector<SweepPoint> cross_seeds(
    const std::vector<SweepPoint>& scenarios,
    const std::vector<std::uint64_t>& seeds);

/// Aggregate per-run headline metrics into `registry`, serially, in grid
/// order: gauges `sweep.<name>.{rtt_p50_ms,rtt_p99_ms,goodput_bps,
/// frame_delay_p99_ms,wall_seconds}`, counters `sweep.<name>.{events,
/// qdisc_drops,invariant_violations}`, plus suite-wide totals under
/// `sweep.total.*`. Use obs::write_metrics_file to emit JSON.
void export_sweep_metrics(const std::vector<SweepRun>& runs,
                          obs::Registry& registry);

// ---------------------------------------------------------------------------
// ScenarioSpec sweeps (multi-station engine)
// ---------------------------------------------------------------------------

/// One multi-station grid point: a labelled spec plus the seed to run it
/// under (`seed` overrides `spec.seed`, mirroring SweepPoint).
struct SpecSweepPoint {
  std::string name;
  ScenarioSpec spec;
  std::uint64_t seed = 1;
};

/// Per-run output of a spec sweep; `fingerprint` covers every numeric
/// field of the MultiStationResult (see multi_result_fingerprint).
struct SpecSweepRun {
  std::string name;
  std::uint64_t seed = 0;
  MultiStationResult result;
  std::uint64_t fingerprint = 0;
  double wall_seconds = 0.0;
};

/// FNV-1a64 over the bit patterns of every numeric field of `r`: per-flow
/// and per-station outputs, aggregate distributions, the concurrency
/// series, and all scalar counters. The golden-trace suite stores these
/// hashes, so adding a field here intentionally invalidates goldens.
[[nodiscard]] std::uint64_t multi_result_fingerprint(const MultiStationResult& r);

/// Run every spec grid point (thread pool as run_sweep; obs frozen).
/// Deterministic per point for any thread count.
[[nodiscard]] std::vector<SpecSweepRun> run_spec_sweep(
    std::vector<SpecSweepPoint> grid, const SweepOptions& opts = {});

/// One spec across many seeds, named "<spec.name>/s<seed>".
[[nodiscard]] std::vector<SpecSweepPoint> cross_spec_seeds(
    const ScenarioSpec& spec, const std::vector<std::uint64_t>& seeds);

/// Aggregate spec-sweep headline metrics, serially, in grid order:
/// gauges `mssweep.<name>.{rtt_p50_ms,rtt_p99_ms,frame_delay_p99_ms,
/// active_flows_peak,wall_seconds}`, counters `mssweep.<name>.{events,
/// arrivals,departures,qdisc_drops,stranded_acks,invariant_violations}`,
/// plus `mssweep.total.*`. Runs that recorded latency attribution
/// additionally get `mssweep.<name>.stage.<stage>.{p50_us,p95_us,
/// p99_us,count}` per populated stage.
void export_spec_sweep_metrics(const std::vector<SpecSweepRun>& runs,
                               obs::Registry& registry);

}  // namespace zhuge::app
