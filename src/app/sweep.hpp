#pragma once
// Parallel scenario-sweep runner.
//
// A sweep is a grid of (scenario config, seed) points, each an independent
// deterministic simulation. Points are distributed over a thread pool of
// N workers; because a Simulator is a self-contained single-threaded
// timeline and run_scenario() is deterministic in (config, seed), the
// per-run outputs are bit-identical whether the grid runs serially or on
// 8 threads — a property the test suite asserts via result fingerprints.
//
// Thread-safety contract: the only process-global mutable state the
// scenario layer touches is the obs layer (metrics registry, tracer,
// invariant counter). run_sweep() turns all three off for the duration of
// the sweep and restores the switches afterwards, so concurrent runs
// never race on them; per-run headline metrics are aggregated *after* the
// parallel phase, serially and in grid order, via export_sweep_metrics().

#include <cstdint>
#include <string>
#include <vector>

#include "app/scenario.hpp"
#include "obs/metrics.hpp"

namespace zhuge::app {

/// One grid point: a labelled scenario configuration plus the seed to run
/// it under. `seed` overrides `config.seed` at execution time so a seed
/// axis can be crossed onto a scenario axis without touching configs.
struct SweepPoint {
  std::string name;
  ScenarioConfig config;
  std::uint64_t seed = 1;
};

/// Per-run output: the full scenario result plus a 64-bit FNV-1a
/// fingerprint over the raw bit patterns of every numeric output, used to
/// assert serial == parallel bit-identity cheaply. `wall_seconds` is host
/// time and deliberately excluded from the fingerprint.
struct SweepRun {
  std::string name;
  std::uint64_t seed = 0;
  ScenarioResult result;
  std::uint64_t fingerprint = 0;
  double wall_seconds = 0.0;
};

struct SweepOptions {
  /// Worker threads; 0 or 1 runs the grid serially on the calling thread.
  unsigned threads = 1;
};

/// FNV-1a64 over the bit patterns of every numeric field of `r` —
/// distributions (count + each sample), time series (t + value), scalar
/// counters, robustness stats. Two results fingerprint equal iff every
/// compared field is bit-identical (modulo 64-bit hashing).
[[nodiscard]] std::uint64_t result_fingerprint(const ScenarioResult& r);

/// Run every grid point and return per-run results in grid order
/// (regardless of completion order). Deterministic per point for any
/// thread count.
[[nodiscard]] std::vector<SweepRun> run_sweep(std::vector<SweepPoint> grid,
                                              const SweepOptions& opts = {});

/// Cross a scenario axis with a seed axis: every scenario at every seed,
/// named "<scenario>/s<seed>", scenarios varying slowest.
[[nodiscard]] std::vector<SweepPoint> cross_seeds(
    const std::vector<SweepPoint>& scenarios,
    const std::vector<std::uint64_t>& seeds);

/// Aggregate per-run headline metrics into `registry`, serially, in grid
/// order: gauges `sweep.<name>.{rtt_p50_ms,rtt_p99_ms,goodput_bps,
/// frame_delay_p99_ms,wall_seconds}`, counters `sweep.<name>.{events,
/// qdisc_drops,invariant_violations}`, plus suite-wide totals under
/// `sweep.total.*`. Use obs::write_metrics_file to emit JSON.
void export_sweep_metrics(const std::vector<SweepRun>& runs,
                          obs::Registry& registry);

}  // namespace zhuge::app
