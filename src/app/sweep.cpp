#include "app/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/invariants.hpp"
#include "obs/tracer.hpp"

namespace zhuge::app {

namespace {

/// Host-time stopwatch for per-run wall_seconds (excluded from
/// fingerprints; throughput reporting only).
// zlint-allow(banned-api): wall-clock measures host throughput only;
// wall_seconds is deliberately excluded from result fingerprints.
double wall_since(std::chrono::steady_clock::time_point t0) {
  // zlint-allow(banned-api): wall-clock measures host throughput only;
  // wall_seconds is deliberately excluded from result fingerprints.
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

ObsFreeze::ObsFreeze()
    : metrics_was_(obs::metrics_enabled()),
      tracing_was_(obs::tracing_enabled()),
      invariants_was_(obs::invariants_enabled()),
      attrib_was_(obs::attrib_enabled()) {
  obs::set_metrics_enabled(false);
  obs::set_tracing_enabled(false);
  obs::set_invariants_enabled(false);
  obs::set_attrib_enabled(false);
}

ObsFreeze::~ObsFreeze() {
  obs::set_metrics_enabled(metrics_was_);
  obs::set_tracing_enabled(tracing_was_);
  obs::set_invariants_enabled(invariants_was_);
  obs::set_attrib_enabled(attrib_was_);
}

std::uint64_t result_fingerprint(const ScenarioResult& r) {
  Fnv f;
  f.u64(r.flows.size());
  for (const auto& flow : r.flows) {
    f.dist(flow.network_rtt_ms);
    f.dist(flow.downlink_owd_ms);
    f.dist(flow.frame_delay_ms);
    f.dist(flow.frame_rate_fps);
    f.f64(flow.goodput_bps);
    f.u64(flow.frames_sent);
    f.u64(flow.frames_decoded);
  }
  f.series(r.rtt_series_ms);
  f.series(r.rate_series_bps);
  f.series(r.frame_delay_series_ms);
  f.series(r.frame_rate_series_fps);
  f.series(r.goodput_series_bps);
  f.dist(r.sender_rtt_ms);
  f.dist(r.prediction_error_ms);
  f.u64(r.predicted_vs_real_ms.size());
  for (const auto& [pred, real] : r.predicted_vs_real_ms) {
    f.f64(pred);
    f.f64(real);
  }
  f.u64(r.qdisc_drops);
  f.u64(r.tcp_retransmissions);
  f.u64(r.events_executed);
  f.u64(r.robustness.degrades);
  f.u64(r.robustness.reactivates);
  f.u64(r.robustness.flushed_acks);
  f.u64(r.robustness.optimizer_restarts);
  f.u64(r.robustness.clock_jumps);
  f.u64(r.fault_drops);
  f.u64(r.fault_duplicated);
  f.u64(r.fault_reordered);
  f.u64(r.flushed_acks_at_end);
  f.u64(r.stranded_acks);
  f.u64(r.invariant_violations);
  return f.h;
}

std::vector<SweepPoint> cross_seeds(const std::vector<SweepPoint>& scenarios,
                                    const std::vector<std::uint64_t>& seeds) {
  std::vector<SweepPoint> grid;
  grid.reserve(scenarios.size() * seeds.size());
  for (const auto& s : scenarios) {
    for (const std::uint64_t seed : seeds) {
      SweepPoint p = s;
      p.name = s.name + "/s" + std::to_string(seed);
      p.seed = seed;
      grid.push_back(std::move(p));
    }
  }
  return grid;
}

std::vector<SweepRun> run_sweep(std::vector<SweepPoint> grid,
                                const SweepOptions& opts) {
  std::vector<SweepRun> runs(grid.size());
  if (grid.empty()) return runs;

  // Freeze the process-global obs state for the duration of the sweep:
  // the registries are shared and unsynchronized, and per-run metrics
  // must not interleave anyway. Freezing also makes a serial sweep
  // observe exactly what a parallel sweep observes (e.g.
  // ScenarioResult::invariant_violations reads the global counter).
  const ObsFreeze freeze;
  // Attribution opt-in: written once before any worker starts and only
  // read during the pool, so the switch itself is race-free. ObsFreeze's
  // destructor restores the pre-sweep state on exit.
  if (opts.attrib) obs::set_attrib_enabled(true);
  run_indexed_pool(grid.size(), opts.threads, [&grid, &runs](std::size_t i) {
    // zlint-allow(banned-api): wall-clock throughput probe only.
    const auto t0 = std::chrono::steady_clock::now();
    SweepPoint& p = grid[i];
    p.config.seed = p.seed;
    SweepRun& out = runs[i];
    out.name = p.name;
    out.seed = p.seed;
    out.result = run_scenario(p.config);
    out.fingerprint = result_fingerprint(out.result);
    out.wall_seconds = wall_since(t0);
  });
  return runs;
}

void export_sweep_metrics(const std::vector<SweepRun>& runs,
                          obs::Registry& registry) {
  std::uint64_t total_events = 0;
  double total_wall = 0.0;
  for (const auto& run : runs) {
    const std::string base = "sweep." + run.name + ".";
    const auto& flow = run.result.primary();
    registry.gauge(base + "rtt_p50_ms").set(flow.network_rtt_ms.quantile(0.50));
    registry.gauge(base + "rtt_p99_ms").set(flow.network_rtt_ms.quantile(0.99));
    registry.gauge(base + "frame_delay_p99_ms")
        .set(flow.frame_delay_ms.quantile(0.99));
    registry.gauge(base + "goodput_bps").set(flow.goodput_bps);
    registry.gauge(base + "wall_seconds").set(run.wall_seconds);
    registry.counter(base + "events").inc(run.result.events_executed);
    registry.counter(base + "qdisc_drops").inc(run.result.qdisc_drops);
    registry.counter(base + "invariant_violations")
        .inc(run.result.invariant_violations);
    total_events += run.result.events_executed;
    total_wall += run.wall_seconds;
  }
  registry.counter("sweep.total.runs").inc(runs.size());
  registry.counter("sweep.total.events").inc(total_events);
  registry.gauge("sweep.total.wall_seconds").set(total_wall);
}

std::uint64_t multi_result_fingerprint(const MultiStationResult& r) {
  // Field order mirrors the MultiStationResult declaration; every numeric
  // output participates so the hash IS the bit-identity contract.
  Fnv f;
  f.u64(r.seed);
  f.u64(r.flows.size());
  for (const auto& flow : r.flows) {
    f.u64(flow.index);
    f.u64(static_cast<std::uint64_t>(flow.kind));
    f.u64(static_cast<std::uint64_t>(flow.station));
    f.u64(flow.zhuge ? 1 : 0);
    f.f64(flow.start_s);
    f.f64(flow.stop_s);
    f.dist(flow.network_rtt_ms);
    f.dist(flow.downlink_owd_ms);
    f.dist(flow.frame_delay_ms);
    f.f64(flow.goodput_bps);
    f.u64(flow.frames_sent);
    f.u64(flow.frames_decoded);
    f.u64(flow.packets_delivered);
  }
  f.u64(r.stations.size());
  for (const auto& st : r.stations) {
    f.f64(st.airtime_s);
    f.u64(st.qdisc_drops);
    f.u64(st.delivered_packets);
  }
  f.dist(r.agg_network_rtt_ms);
  f.dist(r.agg_frame_delay_ms);
  f.dist(r.prediction_error_ms);
  f.series(r.active_flows);
  f.u64(r.arrivals);
  f.u64(r.departures);
  f.u64(r.late_packets);
  f.u64(r.qdisc_drops);
  f.u64(r.quiesced_drops);
  f.u64(r.events_executed);
  f.u64(r.flushed_acks_at_end);
  f.u64(r.stranded_acks);
  f.u64(r.invariant_violations);
  f.u64(r.robustness.degrades);
  f.u64(r.robustness.reactivates);
  f.u64(r.robustness.flushed_acks);
  f.u64(r.robustness.optimizer_restarts);
  f.u64(r.robustness.clock_jumps);
  return f.h;
}

std::vector<SpecSweepRun> run_spec_sweep(std::vector<SpecSweepPoint> grid,
                                         const SweepOptions& opts) {
  std::vector<SpecSweepRun> runs(grid.size());
  if (grid.empty()) return runs;
  const ObsFreeze freeze;
  if (opts.attrib) obs::set_attrib_enabled(true);
  run_indexed_pool(grid.size(), opts.threads, [&grid, &runs](std::size_t i) {
    // zlint-allow(banned-api): wall-clock throughput probe only.
    const auto t0 = std::chrono::steady_clock::now();
    const SpecSweepPoint& p = grid[i];
    SpecSweepRun& out = runs[i];
    out.name = p.name;
    out.seed = p.seed;
    out.result = run_multi_station(p.spec, p.seed);
    out.fingerprint = multi_result_fingerprint(out.result);
    out.wall_seconds = wall_since(t0);
  });
  return runs;
}

std::vector<SpecSweepPoint> cross_spec_seeds(
    const ScenarioSpec& spec, const std::vector<std::uint64_t>& seeds) {
  std::vector<SpecSweepPoint> grid;
  grid.reserve(seeds.size());
  for (const std::uint64_t seed : seeds) {
    SpecSweepPoint p;
    p.name = spec.name + "/s" + std::to_string(seed);
    p.spec = spec;
    p.seed = seed;
    grid.push_back(std::move(p));
  }
  return grid;
}

void export_spec_sweep_metrics(const std::vector<SpecSweepRun>& runs,
                               obs::Registry& registry) {
  std::uint64_t total_events = 0;
  double total_wall = 0.0;
  for (const auto& run : runs) {
    const std::string base = "mssweep." + run.name + ".";
    const auto& r = run.result;
    if (r.agg_network_rtt_ms.count() > 0) {
      registry.gauge(base + "rtt_p50_ms").set(r.agg_network_rtt_ms.quantile(0.50));
      registry.gauge(base + "rtt_p99_ms").set(r.agg_network_rtt_ms.quantile(0.99));
    }
    if (r.agg_frame_delay_ms.count() > 0) {
      registry.gauge(base + "frame_delay_p99_ms")
          .set(r.agg_frame_delay_ms.quantile(0.99));
    }
    double peak = 0.0;
    for (const auto& pt : r.active_flows.points()) peak = std::max(peak, pt.value);
    registry.gauge(base + "active_flows_peak").set(peak);
    registry.gauge(base + "wall_seconds").set(run.wall_seconds);
    registry.counter(base + "events").inc(r.events_executed);
    registry.counter(base + "arrivals").inc(r.arrivals);
    registry.counter(base + "departures").inc(r.departures);
    registry.counter(base + "qdisc_drops").inc(r.qdisc_drops);
    registry.counter(base + "stranded_acks").inc(r.stranded_acks);
    registry.counter(base + "invariant_violations").inc(r.invariant_violations);
    // Per-stage latency columns (attrib sweeps only; empty otherwise).
    if (!r.attrib.empty()) {
      for (std::size_t s = 0; s < obs::kStageCount; ++s) {
        const auto stage = static_cast<obs::Stage>(s);
        const obs::Histogram& h = r.attrib.all().stage(stage);
        if (h.count() == 0) continue;
        const std::string stage_base =
            base + "stage." + obs::stage_name(stage) + ".";
        registry.gauge(stage_base + "p50_us").set(h.quantile(0.50));
        registry.gauge(stage_base + "p95_us").set(h.quantile(0.95));
        registry.gauge(stage_base + "p99_us").set(h.quantile(0.99));
        registry.counter(stage_base + "count").inc(h.count());
      }
    }
    total_events += r.events_executed;
    total_wall += run.wall_seconds;
  }
  registry.counter("mssweep.total.runs").inc(runs.size());
  registry.counter("mssweep.total.events").inc(total_events);
  registry.gauge("mssweep.total.wall_seconds").set(total_wall);
}

}  // namespace zhuge::app
