#include "app/golden.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace zhuge::app {

namespace {

using fault::Window;
using sim::Duration;
using sim::TimePoint;

std::string to_hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::optional<std::uint64_t> from_hex(const std::string& s) {
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), v, 16);
  if (ec != std::errc{} || ptr != s.data() + s.size() || s.empty()) {
    return std::nullopt;
  }
  return v;
}

/// Shared healthy baseline of the golden suite: MCS mode (self-contained,
/// no trace files), 25 s run, 5 s warmup, seed 1. Matches the chaos
/// harness baseline so drift in one shows up in the other.
ScenarioConfig golden_base() {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kRtp;
  cfg.ap.mode = ApMode::kZhuge;
  cfg.ap.qdisc = QdiscKind::kFifo;
  cfg.mcs_index = 7;
  cfg.duration = Duration::seconds(25);
  cfg.warmup = Duration::seconds(5);
  cfg.seed = 1;
  return cfg;
}

}  // namespace

std::vector<std::string> golden_scenario_names() {
  return {"rtp_zhuge_single", "tcp_mix", "chaos_burst"};
}

std::optional<ScenarioConfig> golden_scenario_config(const std::string& name) {
  if (name == "rtp_zhuge_single") {
    return golden_base();
  }
  if (name == "tcp_mix") {
    ScenarioConfig cfg = golden_base();
    cfg.protocol = Protocol::kTcp;
    cfg.tcp_cca = TcpCcaKind::kBbr;
    cfg.competing_bulk_flows = 2;
    return cfg;
  }
  if (name == "chaos_burst") {
    // The chaos suite's wan_burst_loss incident: Gilbert-Elliott burst
    // loss on the WAN downlink from 10 s to 13 s.
    ScenarioConfig cfg = golden_base();
    cfg.faults.downlink_wan.burst =
        fault::GilbertElliott{/*p_enter_bad=*/0.02, /*p_exit_bad=*/0.25,
                              /*loss_good=*/0.0, /*loss_bad=*/0.5};
    cfg.faults.downlink_wan.active = {
        Window{TimePoint::zero() + Duration::seconds(10),
               TimePoint::zero() + Duration::seconds(13)}};
    return cfg;
  }
  return std::nullopt;
}

std::optional<GoldenRecord> compute_golden(const std::string& name) {
  const auto cfg = golden_scenario_config(name);
  if (!cfg.has_value()) return std::nullopt;

  const ObsFreeze freeze;  // fingerprint == what a parallel sweep sees
  const ScenarioResult r = run_scenario(*cfg);

  GoldenRecord rec;
  rec.name = name;
  rec.seed = cfg->seed;
  rec.fingerprint = result_fingerprint(r);
  const auto& flow = r.primary();
  rec.headline["rtt_p50_ms"] = flow.network_rtt_ms.quantile(0.50);
  rec.headline["rtt_p99_ms"] = flow.network_rtt_ms.quantile(0.99);
  rec.headline["frame_delay_p99_ms"] = flow.frame_delay_ms.quantile(0.99);
  rec.headline["goodput_bps"] = flow.goodput_bps;
  rec.headline["frames_decoded"] = static_cast<double>(flow.frames_decoded);
  rec.headline["qdisc_drops"] = static_cast<double>(r.qdisc_drops);
  rec.headline["events_executed"] = static_cast<double>(r.events_executed);
  rec.headline["stranded_acks"] = static_cast<double>(r.stranded_acks);
  return rec;
}

std::vector<std::string> compare_golden(const GoldenRecord& expected,
                                        const GoldenRecord& actual) {
  std::vector<std::string> diffs;
  if (expected.seed != actual.seed) {
    diffs.push_back("seed: expected " + std::to_string(expected.seed) +
                    ", got " + std::to_string(actual.seed));
  }
  if (expected.fingerprint != actual.fingerprint) {
    diffs.push_back("fingerprint: expected " + to_hex16(expected.fingerprint) +
                    ", got " + to_hex16(actual.fingerprint));
    // The hash says "something moved"; the headline deltas say what.
    for (const auto& [key, want] : expected.headline) {
      const auto it = actual.headline.find(key);
      if (it == actual.headline.end()) {
        diffs.push_back("  " + key + ": missing from actual");
      } else if (it->second != want) {
        char line[160];
        std::snprintf(line, sizeof(line), "  %s: expected %.6g, got %.6g",
                      key.c_str(), want, it->second);
        diffs.emplace_back(line);
      }
    }
  }
  return diffs;
}

Json golden_to_json(const GoldenRecord& rec) {
  Json j = Json::make_object();
  j.set("name", Json::make_string(rec.name));
  j.set("seed", Json::make_number(static_cast<double>(rec.seed)));
  j.set("fingerprint", Json::make_string(to_hex16(rec.fingerprint)));
  Json h = Json::make_object();
  for (const auto& [key, value] : rec.headline) {
    h.set(key, Json::make_number(value));
  }
  j.set("headline", std::move(h));
  return j;
}

std::optional<GoldenRecord> golden_from_json(const Json& j, std::string* err) {
  const auto fail = [err](const char* msg) -> std::optional<GoldenRecord> {
    if (err != nullptr) *err = msg;
    return std::nullopt;
  };
  if (!j.is_object()) return fail("golden record must be an object");
  GoldenRecord rec;
  const Json* name = j.find("name");
  if (name == nullptr) return fail("golden record missing \"name\"");
  rec.name = name->string_or("");
  if (rec.name.empty()) return fail("golden \"name\" must be a string");
  if (const Json* seed = j.find("seed")) {
    rec.seed = static_cast<std::uint64_t>(seed->number_or(1));
  }
  const Json* fp = j.find("fingerprint");
  if (fp == nullptr) return fail("golden record missing \"fingerprint\"");
  const auto parsed = from_hex(fp->string_or(""));
  if (!parsed.has_value()) return fail("golden \"fingerprint\" must be hex");
  rec.fingerprint = *parsed;
  if (const Json* h = j.find("headline"); h != nullptr && h->is_object()) {
    for (const auto& [key, value] : h->object()) {
      rec.headline[key] = value.number_or(std::nan(""));
    }
  }
  return rec;
}

std::optional<GoldenRecord> load_golden_file(const std::string& path,
                                             std::string* err) {
  std::ifstream in(path);
  if (!in) {
    if (err != nullptr) *err = path + ": cannot open";
    return std::nullopt;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::string perr;
  const auto j = Json::parse(text, &perr);
  if (!j.has_value()) {
    if (err != nullptr) *err = path + ": " + perr;
    return std::nullopt;
  }
  auto rec = golden_from_json(*j, err);
  if (!rec.has_value() && err != nullptr) *err = path + ": " + *err;
  return rec;
}

bool write_golden_file(const std::string& path, const GoldenRecord& rec) {
  std::ofstream out(path);
  if (!out) return false;
  out << golden_to_json(rec).dump(2) << "\n";
  return static_cast<bool>(out);
}

// ---------------------------------------------------------------------------
// Latency-attribution goldens
// ---------------------------------------------------------------------------

AttribGolden make_attrib_golden(const std::string& name, std::uint64_t seed,
                                const obs::Attribution& attrib) {
  AttribGolden rec;
  rec.name = name;
  rec.seed = seed;
  for (std::size_t s = 0; s < obs::kStageCount; ++s) {
    const auto stage = static_cast<obs::Stage>(s);
    const obs::Histogram& h = attrib.all().stage(stage);
    if (h.count() == 0) continue;
    rec.stage_p95_us[obs::stage_name(stage)] = h.quantile(0.95);
  }
  return rec;
}

std::vector<std::string> compare_attrib_golden(const AttribGolden& expected,
                                               const AttribGolden& actual,
                                               double rel_tol) {
  std::vector<std::string> diffs;
  if (expected.seed != actual.seed) {
    diffs.push_back("seed: expected " + std::to_string(expected.seed) +
                    ", got " + std::to_string(actual.seed));
  }
  const auto close = [rel_tol](double lhs, double rhs) {
    const double scale = std::max(std::abs(lhs), std::abs(rhs));
    return std::abs(lhs - rhs) <= rel_tol * std::max(scale, 1.0);
  };
  for (const auto& [stage, want] : expected.stage_p95_us) {
    const auto it = actual.stage_p95_us.find(stage);
    if (it == actual.stage_p95_us.end()) {
      diffs.push_back("stage " + stage + ": p95 expected " +
                      std::to_string(want) + " us, missing from actual");
    } else if (!close(want, it->second)) {
      char line[192];
      // zlint-allow(float-equality): exact zero guard before dividing.
      const double pct = want != 0.0 ? (it->second - want) / want * 100.0 : 0.0;
      std::snprintf(line, sizeof(line),
                    "stage %s: p95 expected %.6g us, got %.6g us (%+.2f%%)",
                    stage.c_str(), want, it->second, pct);
      diffs.emplace_back(line);
    }
  }
  for (const auto& [stage, got] : actual.stage_p95_us) {
    if (!expected.stage_p95_us.contains(stage)) {
      diffs.push_back("stage " + stage + ": unexpected in actual (p95 " +
                      std::to_string(got) + " us)");
    }
  }
  return diffs;
}

Json attrib_golden_to_json(const AttribGolden& rec) {
  Json j = Json::make_object();
  j.set("name", Json::make_string(rec.name));
  j.set("seed", Json::make_number(static_cast<double>(rec.seed)));
  Json stages = Json::make_object();
  for (const auto& [stage, p95] : rec.stage_p95_us) {
    stages.set(stage, Json::make_number(p95));
  }
  j.set("stage_p95_us", std::move(stages));
  return j;
}

std::optional<AttribGolden> attrib_golden_from_json(const Json& j,
                                                    std::string* err) {
  const auto fail = [err](const char* msg) -> std::optional<AttribGolden> {
    if (err != nullptr) *err = msg;
    return std::nullopt;
  };
  if (!j.is_object()) return fail("attrib golden must be an object");
  AttribGolden rec;
  const Json* name = j.find("name");
  if (name == nullptr) return fail("attrib golden missing \"name\"");
  rec.name = name->string_or("");
  if (rec.name.empty()) return fail("attrib golden \"name\" must be a string");
  if (const Json* seed = j.find("seed")) {
    rec.seed = static_cast<std::uint64_t>(seed->number_or(1));
  }
  const Json* stages = j.find("stage_p95_us");
  if (stages == nullptr || !stages->is_object()) {
    return fail("attrib golden missing \"stage_p95_us\" object");
  }
  for (const auto& [key, value] : stages->object()) {
    rec.stage_p95_us[key] = value.number_or(std::nan(""));
  }
  return rec;
}

std::optional<AttribGolden> load_attrib_golden_file(const std::string& path,
                                                    std::string* err) {
  std::ifstream in(path);
  if (!in) {
    if (err != nullptr) *err = path + ": cannot open";
    return std::nullopt;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::string perr;
  const auto j = Json::parse(text, &perr);
  if (!j.has_value()) {
    if (err != nullptr) *err = path + ": " + perr;
    return std::nullopt;
  }
  auto rec = attrib_golden_from_json(*j, err);
  if (!rec.has_value() && err != nullptr) *err = path + ": " + *err;
  return rec;
}

bool write_attrib_golden_file(const std::string& path,
                              const AttribGolden& rec) {
  std::ofstream out(path);
  if (!out) return false;
  out << attrib_golden_to_json(rec).dump(2) << "\n";
  return static_cast<bool>(out);
}

}  // namespace zhuge::app
