#include "app/spec.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/slo.hpp"
#include "sim/random.hpp"
#include "sim/substreams.hpp"

namespace zhuge::app {

// ---------------------------------------------------------------------------
// Json
// ---------------------------------------------------------------------------

Json Json::make_bool(bool b) {
  Json j;
  j.kind_ = Kind::kBool;
  j.b_ = b;
  return j;
}

Json Json::make_number(double v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.num_ = v;
  return j;
}

Json Json::make_string(std::string s) {
  Json j;
  j.kind_ = Kind::kString;
  j.str_ = std::move(s);
  return j;
}

Json Json::make_array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::make_object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

Json& Json::set(const std::string& key, Json v) {
  kind_ = Kind::kObject;
  obj_[key] = std::move(v);
  return *this;
}

Json& Json::push(Json v) {
  kind_ = Kind::kArray;
  arr_.push_back(std::move(v));
  return *this;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  // %.17g round-trips every finite double; integers print without a dot.
  char buf[32];
  // zlint-allow(float-equality): exact test for "is an integer value" —
  // the round-trip cast is the idiomatic way to pick the %lld rendering.
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  out += buf;
}

void append_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; return;
    case Kind::kBool: out += b_ ? "true" : "false"; return;
    case Kind::kNumber: append_number(out, num_); return;
    case Kind::kString: append_escaped(out, str_); return;
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const auto& v : arr_) {
        if (!first) out += indent > 0 ? "," : ", ";
        first = false;
        append_indent(out, indent, depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      if (!arr_.empty()) append_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += indent > 0 ? "," : ", ";
        first = false;
        append_indent(out, indent, depth + 1);
        append_escaped(out, k);
        out += ": ";
        v.dump_to(out, indent, depth + 1);
      }
      if (!obj_.empty()) append_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

namespace {

/// Recursive-descent parser over the JSON subset. Tracks line numbers for
/// the same path:line diagnostics the trace readers emit.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<Json> run(std::string* err) {
    std::optional<Json> v = parse_value();
    if (v.has_value()) {
      skip_ws();
      if (pos_ != text_.size()) {
        fail("trailing content after document");
        v.reset();
      }
    }
    if (!v.has_value() && err != nullptr) *err = error_;
    return v;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  std::string error_;

  void fail(const std::string& msg) {
    if (error_.empty()) {
      error_ = "line " + std::to_string(line_) + ": " + msg;
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') ++line_;
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume(char expected) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<Json> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    // Stamp the line the value starts on: spec validation reuses it for
    // "line N:" diagnostics on *semantic* errors (unknown key, range).
    const int at = line_;
    std::optional<Json> v = parse_value_here();
    if (v.has_value()) v->set_line(at);
    return v;
  }

  std::optional<Json> parse_value_here() {
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      auto s = parse_string();
      if (!s.has_value()) return std::nullopt;
      return Json::make_string(std::move(*s));
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return Json{};
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return Json::make_bool(true);
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return Json::make_bool(false);
    }
    return parse_number();
  }

  std::optional<Json> parse_number() {
    // JSON grammar checks from_chars is laxer about: the integer part is
    // mandatory (no ".5"), and a leading zero may not be followed by
    // another digit (no "01").
    std::size_t p = pos_;
    if (p < text_.size() && text_[p] == '-') ++p;
    const auto is_digit = [this](std::size_t i) {
      return i < text_.size() && text_[i] >= '0' && text_[i] <= '9';
    };
    if (!is_digit(p) || (text_[p] == '0' && is_digit(p + 1))) {
      fail("invalid value");
      return std::nullopt;
    }
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    double v = 0.0;
    // from_chars: locale-independent, exact round-trip.
    const auto [ptr, ec] = std::from_chars(begin, end, v);
    if (ec != std::errc{} || ptr == begin) {
      fail("invalid value");
      return std::nullopt;
    }
    pos_ += static_cast<std::size_t>(ptr - begin);
    return Json::make_number(v);
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\n') {
        fail("unterminated string");
        return std::nullopt;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        default:
          fail(std::string("unsupported escape \\") + esc);
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Json> parse_array() {
    consume('[');
    Json arr = Json::make_array();
    skip_ws();
    if (consume(']')) return arr;
    while (true) {
      auto v = parse_value();
      if (!v.has_value()) return std::nullopt;
      arr.push(std::move(*v));
      if (consume(',')) continue;
      if (consume(']')) return arr;
      fail("expected ',' or ']' in array");
      return std::nullopt;
    }
  }

  std::optional<Json> parse_object() {
    consume('{');
    Json obj = Json::make_object();
    skip_ws();
    if (consume('}')) return obj;
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key.has_value()) return std::nullopt;
      if (!consume(':')) {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      auto v = parse_value();
      if (!v.has_value()) return std::nullopt;
      obj.set(std::move(*key), std::move(*v));
      if (consume(',')) continue;
      if (consume('}')) return obj;
      fail("expected ',' or '}' in object");
      return std::nullopt;
    }
  }
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text, std::string* err) {
  return JsonParser(text).run(err);
}

// ---------------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------------

const char* to_string(SpecFlowKind kind) {
  switch (kind) {
    case SpecFlowKind::kRtpGcc: return "rtp_gcc";
    case SpecFlowKind::kTcpCubic: return "tcp_cubic";
    case SpecFlowKind::kTcpBbr: return "tcp_bbr";
    case SpecFlowKind::kTcpAbc: return "tcp_abc";
  }
  return "?";
}

int ScenarioSpec::station_count() const {
  int n = 0;
  for (const auto& g : stations) n += g.count;
  return n;
}

const StationGroupSpec& ScenarioSpec::station_group(int station) const {
  for (const auto& g : stations) {
    if (station < g.count) return g;
    station -= g.count;
  }
  return stations.back();
}

namespace {

bool parse_flow_kind(const std::string& s, SpecFlowKind& out) {
  if (s == "rtp_gcc") out = SpecFlowKind::kRtpGcc;
  else if (s == "tcp_cubic") out = SpecFlowKind::kTcpCubic;
  else if (s == "tcp_bbr") out = SpecFlowKind::kTcpBbr;
  else if (s == "tcp_abc") out = SpecFlowKind::kTcpAbc;
  else return false;
  return true;
}

bool parse_qdisc_kind(const std::string& s, QdiscKind& out) {
  if (s == "fifo") out = QdiscKind::kFifo;
  else if (s == "codel") out = QdiscKind::kCoDel;
  else if (s == "fq_codel") out = QdiscKind::kFqCoDel;
  else return false;
  return true;
}

bool parse_ap_mode(const std::string& s, ApMode& out) {
  if (s == "none") out = ApMode::kNone;
  else if (s == "zhuge") out = ApMode::kZhuge;
  else if (s == "fastack") out = ApMode::kFastAck;
  else if (s == "abc") out = ApMode::kAbc;  // pair with tcp_abc flows
  else return false;
  return true;
}

}  // namespace

bool parse_trace_class(const std::string& s, trace::TraceKind& out) {
  static constexpr trace::TraceKind kAll[] = {
      trace::TraceKind::kRestaurantWifi, trace::TraceKind::kOfficeWifi,
      trace::TraceKind::kIndoorMixed45G, trace::TraceKind::kCity4G,
      trace::TraceKind::kCity5G,         trace::TraceKind::kEthernet,
      trace::TraceKind::kLegacyCellular};
  for (const trace::TraceKind k : kAll) {
    if (s == trace::short_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

namespace {

double num_field(const Json& obj, const char* key, double fallback) {
  const Json* v = obj.find(key);
  return v != nullptr ? v->number_or(fallback) : fallback;
}

bool bool_field(const Json& obj, const char* key, bool fallback) {
  const Json* v = obj.find(key);
  return v != nullptr ? v->bool_or(fallback) : fallback;
}

std::string str_field(const Json& obj, const char* key, std::string fallback) {
  const Json* v = obj.find(key);
  return v != nullptr ? v->string_or(std::move(fallback)) : fallback;
}

/// "line N: " prefix from a value's recorded source line (empty for built
/// documents, which carry line 0).
std::string at_line(const Json& v) {
  return v.line() > 0 ? "line " + std::to_string(v.line()) + ": " : "";
}

/// One strictly validated feedback-fault sub-object ("ap_feedback" /
/// "uplink_rtcp"). Unlike the rest of the spec — where unknown keys are
/// ignored for forward compatibility — a typo here would silently run a
/// *clean* scenario while claiming chaos coverage, so every key must be
/// known, numeric, and in range; diagnostics carry the offending value's
/// source line.
bool parse_feedback_fault(const Json& obj, const std::string& path,
                          double duration_s, fault::InjectorConfig& out,
                          std::string* err) {
  const auto fail = [&](const Json& v, const std::string& msg) {
    if (err != nullptr) *err = at_line(v) + path + ": " + msg;
    return false;
  };
  if (!obj.is_object()) return fail(obj, "must be an object");

  static constexpr std::string_view kKnown[] = {
      "loss_prob",  "dup_prob",       "reorder_prob", "reorder_delay_ms",
      "spike_prob", "spike_delay_ms", "start_s",      "end_s"};
  for (const auto& [key, value] : obj.object()) {
    if (std::find(std::begin(kKnown), std::end(kKnown), key) ==
        std::end(kKnown)) {
      return fail(value, "unknown key \"" + key + "\"");
    }
    if (value.kind() != Json::Kind::kNumber) {
      return fail(value, "\"" + key + "\" must be a number");
    }
  }

  const auto prob = [&](const char* key, double& dst) {
    const Json* v = obj.find(key);
    if (v == nullptr) return true;
    dst = v->number_or(0.0);
    if (dst < 0.0 || dst > 1.0) {
      return fail(*v, std::string("\"") + key + "\" must be in [0, 1]");
    }
    return true;
  };
  const auto delay = [&](const char* key, sim::Duration& dst) {
    const Json* v = obj.find(key);
    if (v == nullptr) return true;
    const double ms = v->number_or(0.0);
    if (ms < 0.0) {
      return fail(*v, std::string("\"") + key + "\" must be >= 0");
    }
    dst = sim::Duration::from_seconds(ms / 1e3);
    return true;
  };

  if (!prob("loss_prob", out.loss_prob)) return false;
  if (!prob("dup_prob", out.dup_prob)) return false;
  if (!prob("reorder_prob", out.reorder_prob)) return false;
  if (!prob("spike_prob", out.spike_prob)) return false;
  if (!delay("reorder_delay_ms", out.reorder_delay)) return false;
  if (!delay("spike_delay_ms", out.spike_delay)) return false;

  // Optional active window [start_s, end_s); defaults span the whole run.
  // Only materialised when at least one bound is given, so an unwindowed
  // section keeps InjectorConfig::active empty (always-on semantics).
  const Json* start_j = obj.find("start_s");
  const Json* end_j = obj.find("end_s");
  if (start_j != nullptr || end_j != nullptr) {
    const double start_s = start_j != nullptr ? start_j->number_or(0.0) : 0.0;
    const double end_s = end_j != nullptr ? end_j->number_or(0.0) : duration_s;
    if (start_s < 0.0) {
      return fail(*start_j, "\"start_s\" must be >= 0");
    }
    if (end_s <= start_s) {
      return fail(end_j != nullptr ? *end_j : *start_j,
                  "\"end_s\" must be > start_s");
    }
    const auto at = [](double seconds) {
      return sim::TimePoint::zero() + sim::Duration::from_seconds(seconds);
    };
    out.active = {fault::Window{at(start_s), at(end_s)}};
  }

  // The harness forces this again at injector-build time; setting it here
  // keeps a parsed config faithful even if used directly.
  out.only_feedback = true;
  return true;
}

}  // namespace

std::optional<ScenarioSpec> parse_scenario_spec(std::string_view text,
                                                std::string* err) {
  auto fail = [err](const std::string& msg) -> std::optional<ScenarioSpec> {
    if (err != nullptr) *err = msg;
    return std::nullopt;
  };

  std::string jerr;
  const auto doc = Json::parse(text, &jerr);
  if (!doc.has_value()) return fail(jerr);
  if (!doc->is_object()) return fail("spec must be a JSON object");

  ScenarioSpec spec;
  spec.name = str_field(*doc, "name", spec.name);
  spec.duration_s = num_field(*doc, "duration_s", spec.duration_s);
  spec.warmup_s = num_field(*doc, "warmup_s", spec.warmup_s);
  spec.seed = static_cast<std::uint64_t>(
      num_field(*doc, "seed", static_cast<double>(spec.seed)));
  if (spec.duration_s <= 0) return fail("duration_s must be > 0");
  if (spec.warmup_s < 0 || spec.warmup_s >= spec.duration_s) {
    return fail("warmup_s must be in [0, duration_s)");
  }

  if (!parse_ap_mode(str_field(*doc, "ap_mode", "zhuge"), spec.ap_mode)) {
    return fail("ap_mode must be none|zhuge|fastack|abc");
  }
  spec.wan_one_way_ms = num_field(*doc, "wan_one_way_ms", spec.wan_one_way_ms);
  spec.wan_rate_mbps = num_field(*doc, "wan_rate_mbps", spec.wan_rate_mbps);
  if (spec.wan_one_way_ms < 0 || spec.wan_rate_mbps <= 0) {
    return fail("wan_one_way_ms must be >= 0 and wan_rate_mbps > 0");
  }

  const Json* stations = doc->find("stations");
  if (stations == nullptr || !stations->is_array() ||
      stations->array().empty()) {
    return fail("spec needs a non-empty \"stations\" array");
  }
  for (const auto& sj : stations->array()) {
    StationGroupSpec g;
    g.count = static_cast<int>(num_field(sj, "count", 1));
    g.mcs = static_cast<int>(num_field(sj, "mcs", 7));
    if (g.count < 1) return fail("stations[].count must be >= 1");
    if (g.mcs < 0 || g.mcs > 7) return fail("stations[].mcs must be 0..7");
    if (!parse_qdisc_kind(str_field(sj, "qdisc", "fifo"), g.qdisc)) {
      return fail("stations[].qdisc must be fifo|codel|fq_codel");
    }
    g.queue_limit_bytes = static_cast<std::int64_t>(
        num_field(sj, "queue_limit_pkts", 300.0) * 1500.0);
    g.leave_s = num_field(sj, "leave_s", -1.0);
    if (const Json* tc = sj.find("trace"); tc != nullptr) {
      trace::TraceKind kind{};
      if (!parse_trace_class(tc->string_or(""), kind)) {
        return fail(at_line(*tc) +
                    "stations[].trace must be W1|W2|C1|C2|C3|ETH|ABC");
      }
      g.trace_class = kind;
    }
    if (const Json* fade = sj.find("fade"); fade != nullptr) {
      g.fade.period_s = num_field(*fade, "period_s", 0.0);
      g.fade.depth_mcs = static_cast<int>(num_field(*fade, "depth_mcs", 0));
      g.fade.duty = num_field(*fade, "duty", 0.5);
      if (g.fade.period_s < 0 || g.fade.duty < 0 || g.fade.duty > 1) {
        return fail("stations[].fade: period_s >= 0, duty in [0,1]");
      }
    }
    spec.stations.push_back(g);
  }
  const int n_stations = spec.station_count();

  if (const Json* flows = doc->find("flows"); flows != nullptr) {
    if (!flows->is_array()) return fail("\"flows\" must be an array");
    for (const auto& fj : flows->array()) {
      SpecFlow f;
      if (!parse_flow_kind(str_field(fj, "kind", "rtp_gcc"), f.kind)) {
        return fail("flows[].kind must be rtp_gcc|tcp_cubic|tcp_bbr|tcp_abc");
      }
      f.station = static_cast<int>(num_field(fj, "station", 0));
      if (f.station < 0 || f.station >= n_stations) {
        return fail("flows[].station out of range");
      }
      f.zhuge = bool_field(fj, "zhuge", false);
      f.start_s = num_field(fj, "start_s", 0.0);
      f.stop_s = num_field(fj, "stop_s", -1.0);
      f.max_bitrate_mbps = num_field(fj, "max_bitrate_mbps", 2.5);
      f.fps = num_field(fj, "fps", 30.0);
      spec.flows.push_back(f);
    }
  }

  if (const Json* churn = doc->find("churn"); churn != nullptr) {
    ChurnSpec& c = spec.churn;
    c.enabled = bool_field(*churn, "enabled", true);
    c.mean_interarrival_s =
        num_field(*churn, "mean_interarrival_s", c.mean_interarrival_s);
    c.mean_lifetime_s = num_field(*churn, "mean_lifetime_s", c.mean_lifetime_s);
    c.max_lifetime_s = num_field(*churn, "max_lifetime_s", c.max_lifetime_s);
    c.max_concurrent =
        static_cast<int>(num_field(*churn, "max_concurrent", c.max_concurrent));
    if (c.mean_interarrival_s <= 0 || c.mean_lifetime_s <= 0 ||
        c.max_concurrent < 1) {
      return fail("churn: interarrival/lifetime > 0, max_concurrent >= 1");
    }
    c.mix_rtp_gcc = num_field(*churn, "mix_rtp_gcc", c.mix_rtp_gcc);
    c.mix_tcp_cubic = num_field(*churn, "mix_tcp_cubic", c.mix_tcp_cubic);
    c.mix_tcp_bbr = num_field(*churn, "mix_tcp_bbr", c.mix_tcp_bbr);
    if (c.mix_rtp_gcc < 0 || c.mix_tcp_cubic < 0 || c.mix_tcp_bbr < 0 ||
        c.mix_rtp_gcc + c.mix_tcp_cubic + c.mix_tcp_bbr <= 0) {
      return fail("churn mix_* weights must be >= 0 and sum to > 0");
    }
    c.zhuge_fraction = num_field(*churn, "zhuge_fraction", c.zhuge_fraction);
    c.start_s = num_field(*churn, "start_s", 0.0);
    c.stop_s = num_field(*churn, "stop_s", -1.0);
    c.max_bitrate_mbps = num_field(*churn, "max_bitrate_mbps", 2.5);
    c.fps = num_field(*churn, "fps", 30.0);
  }

  if (const Json* ladder = doc->find("zhuge_initial_ladder");
      ladder != nullptr) {
    const std::string name = ladder->string_or("");
    if (!obs::parse_ladder_level(name, &spec.zhuge_initial_ladder)) {
      return fail(at_line(*ladder) +
                  "zhuge_initial_ladder must be "
                  "full|clamped_predict|hold_only|pass_through");
    }
  }

  if (const Json* ff = doc->find("feedback_faults"); ff != nullptr) {
    if (!ff->is_object()) {
      return fail(at_line(*ff) + "\"feedback_faults\" must be an object");
    }
    // Strict at this level too: only the two control-loop boundaries exist.
    for (const auto& [key, value] : ff->object()) {
      if (key != "ap_feedback" && key != "uplink_rtcp") {
        return fail(at_line(value) + "feedback_faults: unknown key \"" + key +
                    "\" (expected ap_feedback|uplink_rtcp)");
      }
    }
    std::string ferr;
    if (const Json* b = ff->find("ap_feedback"); b != nullptr) {
      if (!parse_feedback_fault(*b, "feedback_faults.ap_feedback",
                                spec.duration_s, spec.ap_feedback_fault,
                                &ferr)) {
        return fail(ferr);
      }
    }
    if (const Json* b = ff->find("uplink_rtcp"); b != nullptr) {
      if (!parse_feedback_fault(*b, "feedback_faults.uplink_rtcp",
                                spec.duration_s, spec.uplink_rtcp_fault,
                                &ferr)) {
        return fail(ferr);
      }
    }
  }

  return spec;
}

std::optional<ScenarioSpec> load_scenario_spec(const std::string& path,
                                               std::string* err) {
  std::ifstream in(path);
  if (!in) {
    if (err != nullptr) *err = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  auto spec = parse_scenario_spec(ss.str(), err);
  if (!spec.has_value() && err != nullptr) *err = path + ": " + *err;
  return spec;
}

// ---------------------------------------------------------------------------
// Schedule expansion
// ---------------------------------------------------------------------------

std::vector<FlowEvent> expand_flow_schedule(const ScenarioSpec& spec,
                                            std::uint64_t seed) {
  std::vector<FlowEvent> out;
  const double end = spec.duration_s;

  for (const auto& f : spec.flows) {
    FlowEvent ev;
    ev.index = static_cast<std::uint32_t>(out.size());
    ev.kind = f.kind;
    ev.station = f.station;
    ev.zhuge = f.zhuge;
    ev.start_s = std::max(0.0, f.start_s);
    ev.stop_s = f.stop_s < 0 ? end : std::min(f.stop_s, end);
    ev.max_bitrate_mbps = f.max_bitrate_mbps;
    ev.fps = f.fps;
    if (ev.start_s < ev.stop_s && ev.start_s < end) out.push_back(ev);
  }

  const ChurnSpec& c = spec.churn;
  if (!c.enabled) return out;

  // Dedicated substream: the same spec on a different seed gets a different
  // schedule, and the main scenario RNG (kScenarioMain/kScenarioAux)
  // never shifts.
  sim::Rng rng(seed, sim::substreams::kSpecFlowChurn);
  const int n_stations = spec.station_count();
  const double churn_end = c.stop_s < 0 ? end : std::min(c.stop_s, end);
  const double w_total = c.mix_rtp_gcc + c.mix_tcp_cubic + c.mix_tcp_bbr;

  // Admitted churn windows, for the concurrency cap.
  std::vector<std::pair<double, double>> admitted;

  double t = c.start_s;
  while (true) {
    // Fixed draw order per arrival; all five draws happen whether or not
    // the arrival is admitted (see header).
    t += rng.exponential(c.mean_interarrival_s);
    const double lifetime =
        std::min(rng.exponential(c.mean_lifetime_s), c.max_lifetime_s);
    const double kind_roll = rng.uniform() * w_total;
    const int station = static_cast<int>(
        rng.uniform_int(static_cast<std::uint32_t>(n_stations)));
    const bool zhuge = rng.chance(c.zhuge_fraction);
    if (t >= churn_end) break;

    int concurrent = 0;
    for (const auto& [s, e] : admitted) {
      if (s <= t && t < e) ++concurrent;
    }
    if (concurrent >= c.max_concurrent) continue;

    FlowEvent ev;
    ev.index = static_cast<std::uint32_t>(out.size());
    ev.kind = kind_roll < c.mix_rtp_gcc ? SpecFlowKind::kRtpGcc
              : kind_roll < c.mix_rtp_gcc + c.mix_tcp_cubic
                  ? SpecFlowKind::kTcpCubic
                  : SpecFlowKind::kTcpBbr;
    ev.station = station;
    ev.zhuge = ev.kind == SpecFlowKind::kRtpGcc && zhuge;
    ev.start_s = t;
    ev.stop_s = std::min(t + std::max(lifetime, 0.1), end);
    ev.max_bitrate_mbps = c.max_bitrate_mbps;
    ev.fps = c.fps;
    if (ev.start_s < ev.stop_s) {
      admitted.emplace_back(ev.start_s, ev.stop_s);
      out.push_back(ev);
    }
  }
  return out;
}

}  // namespace zhuge::app
