#include "app/scenario.hpp"

#include <algorithm>

#include "cca/abc_sender.hpp"
#include "cca/bbr.hpp"
#include "cca/copa.hpp"
#include "cca/cubic.hpp"
#include "net/link.hpp"
#include "net/seq.hpp"
#include "obs/invariants.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "queue/fifo.hpp"
#include "sim/substreams.hpp"
#include "trace/synthetic.hpp"
#include "transport/rtp_receiver.hpp"
#include "transport/tcp_receiver.hpp"
#include "transport/tcp_sender.hpp"

namespace zhuge::app {

namespace {

using net::FlowId;
using net::Packet;
using sim::Duration;
using sim::TimePoint;

std::unique_ptr<cca::CongestionControl> make_tcp_cca(TcpCcaKind kind) {
  switch (kind) {
    case TcpCcaKind::kCopa: return std::make_unique<cca::Copa>();
    case TcpCcaKind::kBbr: return std::make_unique<cca::Bbr>();
    case TcpCcaKind::kCubic: return std::make_unique<cca::Cubic>();
    case TcpCcaKind::kAbc: return std::make_unique<cca::AbcSender>();
  }
  return nullptr;
}

/// One RTC flow endpoint pair (server-side sender + client-side receiver)
/// plus its metric sinks.
struct RtcFlow {
  FlowId flow;
  bool optimized = true;
  std::uint32_t span_key = 0;  ///< attribution flow key (= ssrc = index+1)
  stats::Distribution downlink_owd_ms;

  // RTP mode.
  std::unique_ptr<transport::RtpSender> rtp_sender;
  std::unique_ptr<transport::RtpReceiver> rtp_receiver;

  // TCP mode.
  std::unique_ptr<transport::TcpSender> tcp_sender;
  std::unique_ptr<transport::TcpReceiver> tcp_receiver;
  std::unique_ptr<rtc::VideoEncoder> tcp_encoder;
  std::uint32_t tcp_next_frame = 0;

  rtc::FrameStats frame_stats;
  stats::Distribution network_rtt_ms;
  std::uint64_t app_bytes_delivered = 0;  ///< post-warmup
  double last_uplink_owd_ms = 0.0;
};

/// A CUBIC bulk competitor (fig16 / fig18-scp).
struct BulkFlow {
  FlowId flow;
  std::unique_ptr<transport::TcpSender> sender;
  std::unique_ptr<transport::TcpReceiver> receiver;
  std::uint32_t next_chunk = 0;
  bool active = true;
};

/// Everything alive during one run. Members are wired in construction
/// order; declaration order here is destruction-safety order.
class Scenario {
 public:
  explicit Scenario(const ScenarioConfig& cfg) : cfg_(cfg) { build(); }

  ScenarioResult run();

 private:
  void build();
  void build_rtc_flow(std::size_t index);
  void build_bulk_flow(std::size_t index);
  void tick_bulk_sources();
  void sample_series();
  void handle_delivery_metrics(const Packet& p, RtcFlow& f);

  ScenarioConfig cfg_;
  sim::Simulator sim_;
  std::unique_ptr<sim::Rng> rng_;
  net::PacketUidSource uids_;

  std::unique_ptr<sim::Rng> scenario_rng_;  ///< MCS rolls etc.: a dedicated
                                            ///< substream so the channel
                                            ///< realisation is identical
                                            ///< across AP modes
  std::unique_ptr<wireless::Channel> down_channel_;
  std::unique_ptr<wireless::Channel> up_channel_;
  std::unique_ptr<wireless::Medium> medium_;

  // Fault injectors wrap the four handler boundaries below. Each owns an
  // independent RNG substream, so enabling a fault never perturbs the
  // channel/CCA realisation of the clean run. Declared before ap_ and the
  // links whose handlers call into them.
  std::unique_ptr<fault::Injector> inj_downlink_wan_;       ///< WAN -> AP
  std::unique_ptr<fault::Injector> inj_uplink_wireless_;    ///< client -> AP
  std::unique_ptr<fault::Injector> inj_downlink_wireless_;  ///< AP -> client
  std::unique_ptr<fault::Injector> inj_uplink_wan_;         ///< AP -> servers

  // Feedback-path boundaries (control loop only; only_feedback is forced
  // on, so data packets bypass without consuming RNG draws).
  std::unique_ptr<fault::Injector> inj_ap_feedback_;   ///< AP-rewritten fb -> WAN
  std::unique_ptr<fault::Injector> inj_uplink_rtcp_;   ///< client RTCP -> AP

  std::unique_ptr<AccessPoint> ap_;

  // WAN links (wired, stable).
  std::unique_ptr<net::PointToPointLink> wan_down_;  ///< servers -> AP
  std::unique_ptr<net::PointToPointLink> wan_up_;    ///< AP -> servers

  // Client uplink over the wireless medium.
  std::unique_ptr<queue::DropTailFifo> uplink_qdisc_;
  std::unique_ptr<wireless::WifiLink> uplink_wifi_;
  std::unique_ptr<queue::DropTailFifo> uplink_cell_qdisc_;
  std::unique_ptr<wireless::CellularLink> uplink_cell_;

  std::vector<std::unique_ptr<RtcFlow>> rtc_flows_;
  std::vector<std::unique_ptr<BulkFlow>> bulk_flows_;

  ScenarioResult result_;
  TimePoint warmup_end_;
  TimePoint run_end_;
  std::uint64_t goodput_bucket_bytes_ = 0;  ///< flow 0, current 50 ms bin
  std::uint64_t invariants_at_start_ = 0;

  void client_send_uplink(Packet p);    ///< client -> wireless -> AP
  void server_receive(Packet p);        ///< feedback demux at the servers
  void client_receive(Packet p);        ///< data demux at the client
};

void Scenario::build() {
  rng_ = std::make_unique<sim::Rng>(cfg_.seed, sim::substreams::kScenarioMain);
  scenario_rng_ = std::make_unique<sim::Rng>(cfg_.seed, sim::substreams::kScenarioAux);
  warmup_end_ = TimePoint::zero() + cfg_.warmup;
  run_end_ = TimePoint::zero() + cfg_.duration;

  if (cfg_.channel_trace != nullptr) {
    down_channel_ = std::make_unique<wireless::Channel>(cfg_.channel_trace);
    up_channel_ = std::make_unique<wireless::Channel>(cfg_.channel_trace);
  } else {
    down_channel_ = std::make_unique<wireless::Channel>(cfg_.mcs_index);
    up_channel_ = std::make_unique<wireless::Channel>(cfg_.mcs_index);
  }

  wireless::Medium::Config mcfg;
  mcfg.interferers = cfg_.interferers;
  medium_ = std::make_unique<wireless::Medium>(sim_, *rng_, mcfg);

  // Fault injectors (chaos harness). Each gets its own RNG substream and
  // forwards survivors to the boundary's real handler. The lambdas below
  // dereference these pointers at call time, so leaving one null simply
  // keeps the boundary clean.
  if (cfg_.faults.downlink_wan.any()) {
    inj_downlink_wan_ = std::make_unique<fault::Injector>(
        sim_, sim::Rng(cfg_.seed, sim::substreams::kFaultDownlinkWan), cfg_.faults.downlink_wan,
        [this](Packet p) { ap_->from_wan(std::move(p)); });
  }
  if (cfg_.faults.uplink_wireless.any()) {
    inj_uplink_wireless_ = std::make_unique<fault::Injector>(
        sim_, sim::Rng(cfg_.seed, sim::substreams::kFaultUplinkWireless), cfg_.faults.uplink_wireless,
        [this](Packet p) { ap_->from_client(std::move(p)); });
  }
  if (cfg_.faults.downlink_wireless.any()) {
    inj_downlink_wireless_ = std::make_unique<fault::Injector>(
        sim_, sim::Rng(cfg_.seed, sim::substreams::kFaultDownlinkWireless), cfg_.faults.downlink_wireless,
        [this](Packet p) { client_receive(std::move(p)); });
  }
  if (cfg_.faults.uplink_wan.any()) {
    inj_uplink_wan_ = std::make_unique<fault::Injector>(
        sim_, sim::Rng(cfg_.seed, sim::substreams::kFaultUplinkWan), cfg_.faults.uplink_wan,
        [this](Packet p) { server_receive(std::move(p)); });
  }
  // Feedback-path fault boundaries. Both force only_feedback so enabling
  // one never perturbs data packets (or their RNG realisation). The
  // client->AP RTCP injector sits *before* the generic uplink-wireless
  // injector: a survivor of the feedback fault still crosses whatever
  // uplink impairment the plan also configures.
  if (cfg_.faults.uplink_rtcp.any()) {
    fault::InjectorConfig fcfg = cfg_.faults.uplink_rtcp;
    fcfg.only_feedback = true;
    inj_uplink_rtcp_ = std::make_unique<fault::Injector>(
        sim_, sim::Rng(cfg_.seed, sim::substreams::kFaultUplinkRtcp), fcfg, [this](Packet p) {
          if (inj_uplink_wireless_) {
            inj_uplink_wireless_->handle(std::move(p));
          } else {
            ap_->from_client(std::move(p));
          }
        });
  }

  // AP -> servers wired uplink.
  net::PointToPointLink::Config up_cfg;
  up_cfg.rate_bps = cfg_.wan_rate_bps;
  up_cfg.prop_delay = cfg_.wan_one_way;
  wan_up_ = std::make_unique<net::PointToPointLink>(
      sim_, up_cfg, [this](Packet p) { server_receive(std::move(p)); });
  if (inj_uplink_wan_) wan_up_->set_fault_hook(inj_uplink_wan_->as_handler());

  // The AP itself.
  ap_ = std::make_unique<AccessPoint>(
      sim_, *rng_, *down_channel_, *medium_, cfg_.ap,
      [this](Packet p) {
        if (inj_downlink_wireless_) {
          inj_downlink_wireless_->handle(std::move(p));
        } else {
          client_receive(std::move(p));
        }
      },
      [this](Packet p) { wan_up_->send(std::move(p)); });

  // AP-rewritten-feedback fault boundary: everything the optimiser emits
  // towards the WAN (released OOB delay-token ACKs, AP-built TWCC,
  // forwarded client RTCP of optimised flows) detours through this
  // injector before the wired uplink — exactly the shortest control loop,
  // nothing else.
  if (cfg_.faults.ap_feedback.any()) {
    fault::InjectorConfig fcfg = cfg_.faults.ap_feedback;
    fcfg.only_feedback = true;
    inj_ap_feedback_ = std::make_unique<fault::Injector>(
        sim_, sim::Rng(cfg_.seed, sim::substreams::kFaultApFeedback), fcfg,
        [this](Packet p) { wan_up_->send(std::move(p)); });
    ap_->set_feedback_fault_hook(inj_ap_feedback_->as_handler());
  }

  // Servers -> AP wired downlink.
  net::PointToPointLink::Config down_cfg;
  down_cfg.rate_bps = cfg_.wan_rate_bps;
  down_cfg.prop_delay = cfg_.wan_one_way;
  wan_down_ = std::make_unique<net::PointToPointLink>(
      sim_, down_cfg, [this](Packet p) { ap_->from_wan(std::move(p)); });
  if (inj_downlink_wan_) wan_down_->set_fault_hook(inj_downlink_wan_->as_handler());

  // Client uplink: small FIFO through the shared wireless medium.
  const PacketHandler uplink_delivery = [this](Packet p) {
    if (inj_uplink_rtcp_) {
      inj_uplink_rtcp_->handle(std::move(p));  // chains into the next hop
    } else if (inj_uplink_wireless_) {
      inj_uplink_wireless_->handle(std::move(p));
    } else {
      ap_->from_client(std::move(p));
    }
  };
  if (cfg_.ap.link == LinkKind::kWifi) {
    uplink_qdisc_ = std::make_unique<queue::DropTailFifo>(200 * 1500);
    wireless::WifiLink::Config ul_cfg = cfg_.ap.wifi;
    ul_cfg.max_agg_packets = 8;  // feedback packets are small and few
    uplink_wifi_ = std::make_unique<wireless::WifiLink>(
        sim_, *rng_, *up_channel_, *medium_, *uplink_qdisc_, ul_cfg,
        uplink_delivery);
  } else {
    uplink_cell_qdisc_ = std::make_unique<queue::DropTailFifo>(200 * 1500);
    uplink_cell_ = std::make_unique<wireless::CellularLink>(
        sim_, *rng_, *up_channel_, *uplink_cell_qdisc_, cfg_.ap.cellular,
        uplink_delivery);
  }

  for (int i = 0; i < cfg_.rtc_flows; ++i) build_rtc_flow(static_cast<std::size_t>(i));
  for (int i = 0; i < cfg_.competing_bulk_flows; ++i) {
    build_bulk_flow(static_cast<std::size_t>(i));
  }
  if (cfg_.scp_periodic_competitor && bulk_flows_.empty()) build_bulk_flow(0);

  // Periodic machinery: bulk refills, series sampling, scenario events.
  sim_.schedule_after(Duration::millis(20), [this] { tick_bulk_sources(); });
  sim_.schedule_after(Duration::millis(50), [this] { sample_series(); });

  if (cfg_.scp_periodic_competitor) {
    // Toggle the bulk flow every 30 s (fig18 "scp").
    struct Toggler {
      Scenario* s;
      void operator()(bool on) const {
        for (auto& b : s->bulk_flows_) b->active = on;
        s->sim_.schedule_after(Duration::seconds(30),
                               [t = *this, on] { t(!on); });
      }
    };
    bulk_flows_.front()->active = false;
    sim_.schedule_after(Duration::seconds(30), [t = Toggler{this}] { t(true); });
  }
  // Scheduled non-packet faults: AP clock steps and optimiser restarts.
  for (const auto& jump : cfg_.faults.clock_jumps) {
    sim_.schedule_at(jump.at, [this, d = jump.delta] {
      ap_->inject_clock_jump(d);
    });
  }
  for (const auto& at : cfg_.faults.ap_restarts) {
    sim_.schedule_at(at, [this] { ap_->restart_optimizer(); });
  }
  invariants_at_start_ = obs::invariants().total();

  if (cfg_.mcs_random_switch) {
    struct McsSwitcher {
      Scenario* s;
      void operator()() const {
        const int mcs = static_cast<int>(s->scenario_rng_->uniform_int(6));  // MCS 0..5
        s->down_channel_->set_mcs(mcs);
        s->up_channel_->set_mcs(mcs);
        s->sim_.schedule_after(Duration::seconds(30), [t = *this] { t(); });
      }
    };
    sim_.schedule_after(Duration::seconds(30), [t = McsSwitcher{this}] { t(); });
  }
}

void Scenario::build_rtc_flow(std::size_t index) {
  auto f = std::make_unique<RtcFlow>();
  f->flow = FlowId{/*src_ip=*/1, /*dst_ip=*/static_cast<std::uint32_t>(100 + index),
                   /*src_port=*/5000, /*dst_port=*/6000,
                   cfg_.protocol == Protocol::kRtp ? std::uint8_t{17} : std::uint8_t{6}};
  f->optimized = cfg_.optimize_flow.empty() ? true
                                            : (index < cfg_.optimize_flow.size() &&
                                               cfg_.optimize_flow[index]);
  f->span_key = static_cast<std::uint32_t>(index + 1);
  f->last_uplink_owd_ms = cfg_.wan_one_way.to_millis() + 2.0;
  if (f->optimized && cfg_.ap.mode != ApMode::kNone) {
    ap_->register_rtc_flow(f->flow);
  }

  RtcFlow* fp = f.get();
  if (index == 0) {
    // Flow 0 feeds the time-series outputs used by the degradation-
    // duration benches (Figs. 4, 14-16).
    f->frame_stats.set_observer([this](TimePoint capture, TimePoint decode) {
      result_.frame_delay_series_ms.record(decode, (decode - capture).to_millis());
    });
  }
  // Latency attribution: frame spans arrive here from the RTP receiver's
  // jitter buffer (or synthesised below for TCP-framed video). Post-warmup
  // only, matching every other distribution this harness records.
  f->frame_stats.set_span_observer([this, fp](const obs::FrameSpan& s) {
    if (TimePoint(s.decode_ns) < warmup_end_) return;
    result_.attrib.record_frame(fp->optimized, s);
  });
  if (cfg_.protocol == Protocol::kRtp) {
    transport::RtpSender::Config scfg;
    scfg.ssrc = static_cast<std::uint32_t>(index + 1);
    scfg.video = cfg_.video;
    scfg.gcc.start_rate_bps = cfg_.video.start_bitrate_bps;
    scfg.gcc.min_rate_bps = cfg_.video.min_bitrate_bps;
    scfg.gcc.max_rate_bps = cfg_.video.max_bitrate_bps;
    scfg.nada.start_rate_bps = cfg_.video.start_bitrate_bps;
    scfg.nada.min_rate_bps = cfg_.video.min_bitrate_bps;
    scfg.nada.max_rate_bps = cfg_.video.max_bitrate_bps;
    scfg.scream.start_rate_bps = cfg_.video.start_bitrate_bps;
    scfg.scream.min_rate_bps = cfg_.video.min_bitrate_bps;
    scfg.scream.max_rate_bps = cfg_.video.max_bitrate_bps;
    scfg.rate_controller = cfg_.rtp_cca;
    f->rtp_sender = std::make_unique<transport::RtpSender>(
        sim_, *rng_, f->flow, scfg, uids_,
        [this](Packet p) { wan_down_->send(std::move(p)); });

    transport::RtpReceiver::Config rcfg;
    rcfg.ssrc = scfg.ssrc;
    f->rtp_receiver = std::make_unique<transport::RtpReceiver>(
        sim_, rcfg, uids_, [this](Packet p) { client_send_uplink(std::move(p)); },
        f->frame_stats);
    f->rtp_sender->start();
  } else {
    transport::TcpSender::Config scfg;
    f->tcp_sender = std::make_unique<transport::TcpSender>(
        sim_, f->flow, make_tcp_cca(cfg_.tcp_cca), scfg, uids_,
        [this](Packet p) { wan_down_->send(std::move(p)); });
    // For TCP the per-packet network RTT is what a server-side capture
    // measures: data departure to ACK arrival. Zhuge's held ACKs shift
    // this curve forward (paper Fig. 10) without double-counting.
    f->tcp_sender->set_rtt_observer([this, fp, index](Duration rtt, TimePoint now) {
      if (now >= warmup_end_) {
        fp->network_rtt_ms.add(rtt.to_millis());
        if (index == 0) result_.sender_rtt_ms.add(rtt.to_millis());
      }
      if (index == 0) result_.rtt_series_ms.record(now, rtt.to_millis());
      ZHUGE_METRIC_OBSERVE("app.rtt_ms", rtt.to_millis());
      ZHUGE_TRACE(now, "app", "rtt", {"rtt_ms", rtt.to_millis()},
                  {"flow", double(index)});
    });
    f->tcp_encoder = std::make_unique<rtc::VideoEncoder>(cfg_.video, *rng_);

    transport::TcpReceiver::Config rcfg;
    f->tcp_receiver = std::make_unique<transport::TcpReceiver>(
        sim_, rcfg, uids_, [this](Packet p) { client_send_uplink(std::move(p)); },
        [this, fp](std::uint32_t frame_id, TimePoint capture, TimePoint now) {
          fp->frame_stats.on_frame_decoded(capture, now);
          if (obs::attrib_enabled()) {
            // TCP-framed video has no jitter-buffer stages; synthesise the
            // capture->decode span so frame_e2e still covers these flows.
            obs::FrameSpan s;
            s.flow_key = fp->span_key;
            s.frame_id = frame_id;
            s.capture_ns = capture.count_ns();
            s.decode_ns = now.count_ns();
            fp->frame_stats.on_frame_span(s);
          }
        });

    // Video-over-TCP source: frames at fps tracking the delivery rate;
    // the encoder skips frames when the socket backlog exceeds ~250 ms of
    // video (real encoders stall rather than queue without bound).
    struct TcpFrameTick {
      Scenario* s;
      RtcFlow* f;
      void operator()() const {
        auto& sender = *f->tcp_sender;
        const double hint = std::max(
            sender.congestion_control().pacing_rate_bps() * 0.85,
            sender.delivery_rate_bps(s->sim_.now()) * 0.95);
        double target = hint > 0 ? hint : s->cfg_.video.start_bitrate_bps;
        // Upward probe: rate-sampling CCAs (BBR) pace off their own
        // bandwidth estimate, which is in turn fed by what we offer —
        // tracking the hints alone is a stable fixed point at *any* rate,
        // so a fault that knocks the estimate down would pin the flow low
        // forever. Real encoders raise the offered bitrate while the
        // socket keeps up; congestion shows up as backlog and pulls the
        // offer back to the hints (next_frame_bytes clamps at max_bitrate).
        if (sender.backlog_bytes() == 0) {
          target = std::max(target, f->tcp_encoder->encoder_rate_bps() * 1.05);
        }
        const std::uint64_t bytes = f->tcp_encoder->next_frame_bytes(target);
        // Skip frames once ~100 ms of video is stuck in the socket: a
        // real-time encoder stalls rather than queueing without bound,
        // and anything deeper guarantees >400 ms frame delays.
        const double backlog_limit =
            std::max(f->tcp_encoder->encoder_rate_bps(), 1e5) * 0.10 / 8.0;
        if (static_cast<double>(sender.backlog_bytes()) < backlog_limit) {
          sender.write_frame(f->tcp_next_frame++, s->sim_.now(), bytes);
        }
        s->sim_.schedule_after(f->tcp_encoder->frame_interval(),
                               [t = *this] { t(); });
      }
    };
    sim_.schedule_after(Duration::millis(1), [t = TcpFrameTick{this, fp}] { t(); });
  }
  rtc_flows_.push_back(std::move(f));
}

void Scenario::build_bulk_flow(std::size_t index) {
  auto b = std::make_unique<BulkFlow>();
  b->flow = FlowId{/*src_ip=*/static_cast<std::uint32_t>(10 + index),
                   /*dst_ip=*/200, /*src_port=*/7000,
                   /*dst_port=*/static_cast<std::uint16_t>(8000 + index), 6};
  transport::TcpSender::Config scfg;
  b->sender = std::make_unique<transport::TcpSender>(
      sim_, b->flow, std::make_unique<cca::Cubic>(), scfg, uids_,
      [this](Packet p) { wan_down_->send(std::move(p)); });
  transport::TcpReceiver::Config rcfg;
  b->receiver = std::make_unique<transport::TcpReceiver>(
      sim_, rcfg, uids_, [this](Packet p) { client_send_uplink(std::move(p)); },
      nullptr);
  bulk_flows_.push_back(std::move(b));
}

void Scenario::tick_bulk_sources() {
  for (auto& b : bulk_flows_) {
    if (b->active && b->sender->backlog_bytes() < 256 * 1024) {
      b->sender->write_frame(b->next_chunk++, sim_.now(), 64 * 1024);
    }
  }
  sim_.schedule_after(Duration::millis(20), [this] { tick_bulk_sources(); });
}

void Scenario::sample_series() {
  if (!rtc_flows_.empty()) {
    const auto& f = *rtc_flows_.front();
    double rate = 0.0;
    if (f.rtp_sender) {
      rate = f.rtp_sender->target_rate_bps();
    } else if (f.tcp_sender) {
      const Duration srtt = f.tcp_sender->smoothed_rtt();
      rate = srtt > Duration::zero()
                 ? static_cast<double>(f.tcp_sender->congestion_control().cwnd_bytes()) *
                       8.0 / srtt.to_seconds()
                 : 0.0;
    }
    result_.rate_series_bps.record(sim_.now(), rate);
    result_.goodput_series_bps.record(
        sim_.now(), static_cast<double>(goodput_bucket_bytes_) * 8.0 / 0.05);
    goodput_bucket_bytes_ = 0;
    ZHUGE_METRIC_SET("app.flow0.target_rate_bps", rate);
    ZHUGE_METRIC_SET("ap.queue_depth_bytes",
                     double(ap_->downlink_qdisc().byte_count()));
    ZHUGE_TRACE(sim_.now(), "app", "sample", {"rate_mbps", rate / 1e6},
                {"ap_queue_bytes", double(ap_->downlink_qdisc().byte_count())},
                {"sim_pending", double(sim_.pending())});
  }
  sim_.schedule_after(Duration::millis(50), [this] { sample_series(); });
}

void Scenario::client_send_uplink(Packet p) {
  if (uplink_wifi_ != nullptr) {
    uplink_wifi_->offer(std::move(p));
  } else {
    uplink_cell_->offer(std::move(p));
  }
}

void Scenario::server_receive(Packet p) {
  const TimePoint now = sim_.now();
  // Demux to the matching sender; update the uplink OWD estimate used by
  // the per-packet network-RTT metric.
  for (auto& f : rtc_flows_) {
    if (p.flow == f->flow.reversed()) {
      const double owd = (now - p.sent_time).to_millis();
      if (owd > 0 && owd < 10e3) f->last_uplink_owd_ms = owd;
      if (f->rtp_sender && p.is_rtcp()) {
        f->rtp_sender->on_rtcp(p);
      } else if (f->tcp_sender && p.is_tcp()) {
        f->tcp_sender->on_ack(p);
      }
      return;
    }
  }
  for (auto& b : bulk_flows_) {
    if (p.flow == b->flow.reversed() && p.is_tcp()) {
      b->sender->on_ack(p);
      return;
    }
  }
}

void Scenario::handle_delivery_metrics(const Packet& p, RtcFlow& f) {
  const TimePoint now = sim_.now();
  // RTP network RTT: measured downlink OWD plus the latest measured
  // uplink OWD (client -> AP -> server); uplink wireless contention is
  // included. TCP flows instead record sender-measured RTT samples (see
  // build_rtc_flow), matching a server-side packet capture.
  const bool is_tcp_flow = f.tcp_sender != nullptr;
  const double down_ms = (now - p.sent_time).to_millis();
  const double rtt_ms = down_ms + f.last_uplink_owd_ms;
  if (!is_tcp_flow && &f == rtc_flows_.front().get()) {
    result_.rtt_series_ms.record(now, rtt_ms);
  }
  if (!is_tcp_flow) {
    ZHUGE_METRIC_OBSERVE("app.rtt_ms", rtt_ms);
    ZHUGE_TRACE(now, "app", "rtt", {"rtt_ms", rtt_ms}, {"owd_ms", down_ms});
  }
  if (&f == rtc_flows_.front().get()) goodput_bucket_bytes_ += p.size_bytes;
  if (now >= warmup_end_) {
    if (!is_tcp_flow) f.network_rtt_ms.add(rtt_ms);
    f.downlink_owd_ms.add(down_ms);
    f.app_bytes_delivered += p.size_bytes;
    if (obs::attrib_enabled()) {
      result_.attrib.record_packet(f.span_key, f.optimized,
                                   p.sent_time.count_ns(),
                                   p.ap_enqueue_time.count_ns(),
                                   now.count_ns(), p.span);
    }
    if (p.predicted_delay_ms >= 0.0) {
      const double actual_ms = (now - p.ap_enqueue_time).to_millis();
      result_.prediction_error_ms.add(std::abs(p.predicted_delay_ms - actual_ms));
      result_.predicted_vs_real_ms.emplace_back(p.predicted_delay_ms, actual_ms);
      ZHUGE_METRIC_OBSERVE("fortune.abs_error_ms",
                           std::abs(p.predicted_delay_ms - actual_ms));
      ZHUGE_TRACE(now, "app", "delivery",
                  {"predicted_ms", p.predicted_delay_ms},
                  {"actual_ms", actual_ms}, {"owd_ms", down_ms});
    }
  }
}

void Scenario::client_receive(Packet p) {
  for (auto& f : rtc_flows_) {
    if (p.flow == f->flow) {
      handle_delivery_metrics(p, *f);
      if (f->rtp_receiver && p.is_rtp()) {
        f->rtp_receiver->on_rtp(p);
      } else if (f->tcp_receiver && p.is_tcp()) {
        f->tcp_receiver->on_data(p);
      }
      return;
    }
  }
  for (auto& b : bulk_flows_) {
    if (p.flow == b->flow && p.is_tcp()) {
      b->receiver->on_data(p);
      return;
    }
  }
}

ScenarioResult Scenario::run() {
  sim_.run_until(run_end_);

  // Drain every held feedback packet while the whole topology is still
  // alive — nothing Zhuge recorded may be stranded at teardown.
  result_.flushed_acks_at_end = ap_->flush_feedback();
  result_.stranded_acks = ap_->pending_feedback();
  result_.robustness = ap_->robustness();
  result_.ladder_log = ap_->ladder_log();
  for (const auto* inj :
       {inj_downlink_wan_.get(), inj_uplink_wireless_.get(),
        inj_downlink_wireless_.get(), inj_uplink_wan_.get(),
        inj_ap_feedback_.get(), inj_uplink_rtcp_.get()}) {
    if (inj == nullptr) continue;
    result_.fault_drops += inj->dropped();
    result_.fault_duplicated += inj->duplicated();
    result_.fault_reordered += inj->reordered();
    result_.fault_delay_spiked += inj->delay_spiked();
  }
  result_.invariant_violations =
      obs::invariants().total() - invariants_at_start_;

  const double measured_secs = (cfg_.duration - cfg_.warmup).to_seconds();
  const auto warm_sec = static_cast<std::size_t>(cfg_.warmup.to_seconds());
  const auto end_sec = static_cast<std::size_t>(cfg_.duration.to_seconds());

  for (auto& f : rtc_flows_) {
    FlowResult fr;
    fr.network_rtt_ms = std::move(f->network_rtt_ms);
    fr.downlink_owd_ms = std::move(f->downlink_owd_ms);
    fr.frame_delay_ms = f->frame_stats.frame_delays_ms();
    fr.frame_rate_fps = f->frame_stats.frame_rates(warm_sec, end_sec);
    fr.goodput_bps =
        static_cast<double>(f->app_bytes_delivered) * 8.0 / measured_secs;
    fr.frames_decoded = f->frame_stats.frames_decoded();
    if (f->rtp_sender) {
      fr.frames_sent = f->rtp_sender->frames_sent();
    } else {
      fr.frames_sent = f->tcp_next_frame;  // frames offered to the socket
    }
    result_.flows.push_back(std::move(fr));

    // Flow 0 series: frame delay per decoded frame is folded in here.
  }
  result_.qdisc_drops = ap_->downlink_qdisc().drops();
  if (!rtc_flows_.empty() && rtc_flows_.front()->tcp_sender) {
    result_.tcp_retransmissions = rtc_flows_.front()->tcp_sender->retransmissions();
  }
  result_.events_executed = sim_.events_executed();

  // End-of-run summary gauges (simulator accounting + per-flow results).
  if (obs::metrics_enabled()) {
    ZHUGE_METRIC_SET("sim.events_executed", double(sim_.events_executed()));
    ZHUGE_METRIC_SET("sim.events_scheduled", double(sim_.events_scheduled()));
    ZHUGE_METRIC_SET("sim.events_cancelled", double(sim_.events_cancelled()));
    ZHUGE_METRIC_SET("ap.qdisc_drops", double(result_.qdisc_drops));
    for (std::size_t i = 0; i < result_.flows.size(); ++i) {
      const auto& fr = result_.flows[i];
      const std::string prefix = "app.flow" + std::to_string(i);
      ZHUGE_METRIC_SET(prefix + ".goodput_bps", fr.goodput_bps);
      ZHUGE_METRIC_SET(prefix + ".frames_decoded", double(fr.frames_decoded));
      if (fr.network_rtt_ms.count() > 0) {
        ZHUGE_METRIC_SET(prefix + ".rtt_p50_ms", fr.network_rtt_ms.quantile(0.5));
        ZHUGE_METRIC_SET(prefix + ".rtt_p95_ms", fr.network_rtt_ms.quantile(0.95));
      }
    }
  }
  return std::move(result_);
}

// ---------------------------------------------------------------------------
// Multi-station scenario engine
// ---------------------------------------------------------------------------

/// One live flow of a multi-station run: endpoints plus metric sinks. The
/// transport endpoints own timer-cancelling destructors, so destroying an
/// MFlow mid-run (churn departure) leaves no dangling callbacks.
struct MFlow {
  FlowEvent ev;
  FlowId flow;

  std::unique_ptr<transport::RtpSender> rtp_sender;
  std::unique_ptr<transport::RtpReceiver> rtp_receiver;
  std::unique_ptr<transport::TcpSender> tcp_sender;
  std::unique_ptr<transport::TcpReceiver> tcp_receiver;
  std::unique_ptr<rtc::VideoEncoder> tcp_encoder;
  std::uint32_t tcp_next_frame = 0;
  sim::EventId tick_id{};  ///< TCP frame tick; cancelled at departure

  rtc::FrameStats frame_stats;
  stats::Distribution network_rtt_ms;
  stats::Distribution downlink_owd_ms;
  std::uint64_t app_bytes_delivered = 0;  ///< post-warmup
  std::uint64_t packets_delivered = 0;
  double last_uplink_owd_ms = 0.0;
};

/// Everything alive during one multi-station run. Same construction-order
/// discipline as Scenario: declaration order is destruction-safety order.
class MultiScenario {
 public:
  MultiScenario(const ScenarioSpec& spec, std::uint64_t seed)
      : spec_(spec), seed_(seed) {
    build();
  }

  MultiStationResult run();

 private:
  void build();
  void build_station(int index);
  void arrive(const FlowEvent& ev);
  void depart(std::uint32_t index);
  void finalize_flow(MFlow& f);
  void sample_active();
  void set_station_mcs(int station, int mcs);
  void client_send_uplink(int station, Packet p);
  void server_receive(Packet p);
  void client_receive(Packet p);
  void handle_delivery_metrics(const Packet& p, MFlow& f);

  [[nodiscard]] static std::uint32_t station_ip(int station) {
    return static_cast<std::uint32_t>(100 + station);
  }

  ScenarioSpec spec_;
  std::uint64_t seed_;
  sim::Simulator sim_;
  std::unique_ptr<sim::Rng> rng_;           ///< stream 11, like Scenario
  std::unique_ptr<sim::Rng> scenario_rng_;  ///< stream 23: fade phases
  net::PacketUidSource uids_;

  std::unique_ptr<wireless::Channel> default_channel_;  ///< unused default link
  /// Synthetic ABW traces for trace-class stations. Declared before the
  /// channels, which keep raw pointers into them.
  std::vector<std::unique_ptr<trace::Trace>> station_traces_;
  std::vector<std::unique_ptr<wireless::Channel>> down_channels_;
  std::vector<std::unique_ptr<wireless::Channel>> up_channels_;
  std::unique_ptr<wireless::Medium> medium_;

  // Feedback-path fault injectors (spec "feedback_faults" section); both
  // run with only_feedback forced on. Declared before ap_ and the uplink
  // links whose handlers dereference them at call time.
  std::unique_ptr<fault::Injector> inj_ap_feedback_;  ///< AP-rewritten fb -> WAN
  std::unique_ptr<fault::Injector> inj_uplink_rtcp_;  ///< client RTCP -> AP

  std::unique_ptr<AccessPoint> ap_;
  std::unique_ptr<net::PointToPointLink> wan_down_;
  std::unique_ptr<net::PointToPointLink> wan_up_;

  /// Per-station client uplink over the shared medium.
  struct UplinkPath {
    std::unique_ptr<queue::DropTailFifo> qdisc;
    std::unique_ptr<wireless::WifiLink> link;
  };
  std::vector<UplinkPath> uplinks_;

  std::vector<FlowEvent> schedule_;
  /// Live flows by schedule index; ordered so end-of-run finalisation walks
  /// in index order (part of the simulated outcome).
  std::map<std::uint32_t, std::unique_ptr<MFlow>> active_;
  std::map<FlowId, std::uint32_t> by_flow_;  ///< downlink 5-tuple -> index

  MultiStationResult result_;
  TimePoint warmup_end_;
  TimePoint run_end_;
  std::uint64_t invariants_at_start_ = 0;
};

void MultiScenario::build() {
  rng_ = std::make_unique<sim::Rng>(seed_, sim::substreams::kScenarioMain);
  scenario_rng_ = std::make_unique<sim::Rng>(seed_, sim::substreams::kScenarioAux);
  warmup_end_ = TimePoint::zero() + Duration::from_seconds(spec_.warmup_s);
  run_end_ = TimePoint::zero() + Duration::from_seconds(spec_.duration_s);

  result_.name = spec_.name;
  result_.seed = seed_;

  const int n_stations = spec_.station_count();
  default_channel_ = std::make_unique<wireless::Channel>(7);
  medium_ = std::make_unique<wireless::Medium>(sim_, *rng_,
                                               wireless::Medium::Config{});

  // AP -> servers wired uplink.
  net::PointToPointLink::Config wan_cfg;
  wan_cfg.rate_bps = spec_.wan_rate_mbps * 1e6;
  wan_cfg.prop_delay = Duration::from_seconds(spec_.wan_one_way_ms / 1e3);
  wan_up_ = std::make_unique<net::PointToPointLink>(
      sim_, wan_cfg, [this](Packet p) { server_receive(std::move(p)); });

  // Client->AP RTCP fault boundary, shared by every station uplink. Built
  // before the AP/stations so their delivery handlers can chain into it.
  if (spec_.uplink_rtcp_fault.any()) {
    fault::InjectorConfig fcfg = spec_.uplink_rtcp_fault;
    fcfg.only_feedback = true;
    inj_uplink_rtcp_ = std::make_unique<fault::Injector>(
        sim_, sim::Rng(seed_, sim::substreams::kFaultUplinkRtcp), fcfg,
        [this](Packet p) { ap_->from_client(std::move(p)); });
  }

  AccessPoint::Config apcfg;
  apcfg.mode = spec_.ap_mode;
  apcfg.qdisc = QdiscKind::kFifo;  // default link is unused; stations rule
  apcfg.link = LinkKind::kWifi;
  apcfg.zhuge.watchdog.initial_level = spec_.zhuge_initial_ladder;
  ap_ = std::make_unique<AccessPoint>(
      sim_, *rng_, *default_channel_, *medium_, apcfg,
      [this](Packet p) { client_receive(std::move(p)); },
      [this](Packet p) { wan_up_->send(std::move(p)); });

  // AP-rewritten-feedback fault boundary (same semantics as Scenario's):
  // the optimiser's emitted feedback detours through the injector before
  // the wired uplink towards the servers.
  if (spec_.ap_feedback_fault.any()) {
    fault::InjectorConfig fcfg = spec_.ap_feedback_fault;
    fcfg.only_feedback = true;
    inj_ap_feedback_ = std::make_unique<fault::Injector>(
        sim_, sim::Rng(seed_, sim::substreams::kFaultApFeedback), fcfg,
        [this](Packet p) { wan_up_->send(std::move(p)); });
    ap_->set_feedback_fault_hook(inj_ap_feedback_->as_handler());
  }

  // Servers -> AP wired downlink.
  wan_down_ = std::make_unique<net::PointToPointLink>(
      sim_, wan_cfg, [this](Packet p) { ap_->from_wan(std::move(p)); });

  for (int i = 0; i < n_stations; ++i) build_station(i);

  // Flow schedule: arrivals and mid-run departures, in index order so that
  // same-timestamp events resolve by the simulator's FIFO tie-break.
  schedule_ = expand_flow_schedule(spec_, seed_);
  result_.flows.resize(schedule_.size());
  for (const auto& ev : schedule_) {
    auto& slot = result_.flows[ev.index];
    slot.index = ev.index;
    slot.kind = ev.kind;
    slot.station = ev.station;
    slot.zhuge = ev.zhuge;
    slot.start_s = ev.start_s;
    slot.stop_s = ev.stop_s;
    sim_.schedule_at(TimePoint::zero() + Duration::from_seconds(ev.start_s),
                     [this, ev] { arrive(ev); });
    if (ev.stop_s < spec_.duration_s) {
      sim_.schedule_at(TimePoint::zero() + Duration::from_seconds(ev.stop_s),
                       [this, idx = ev.index] { depart(idx); });
    }
  }

  // Station departures (deassociation): quiesce at leave_s.
  for (int i = 0; i < n_stations; ++i) {
    const double leave = spec_.station_group(i).leave_s;
    if (leave > 0 && leave < spec_.duration_s) {
      sim_.schedule_at(TimePoint::zero() + Duration::from_seconds(leave),
                       [this, ip = station_ip(i)] {
                         ap_->unregister_station(ip);
                       });
    }
  }

  sim_.schedule_after(Duration::millis(100), [this] { sample_active(); });
  invariants_at_start_ = obs::invariants().total();
}

void MultiScenario::build_station(int index) {
  const StationGroupSpec& g = spec_.station_group(index);
  if (g.trace_class.has_value()) {
    // Trace-class station: the downlink ABW follows a synthetic trace of
    // the spec'd class, seeded per station so a dense group does not fade
    // in lockstep. The uplink stays in MCS mode (RTCP feedback is small;
    // the paper's trace-driven runs vary only the bottleneck direction).
    station_traces_.push_back(std::make_unique<trace::Trace>(trace::make_trace(
        *g.trace_class, seed_ + static_cast<std::uint64_t>(index),
        Duration::from_seconds(spec_.duration_s))));
    down_channels_.push_back(
        std::make_unique<wireless::Channel>(station_traces_.back().get()));
  } else {
    down_channels_.push_back(std::make_unique<wireless::Channel>(g.mcs));
  }
  up_channels_.push_back(std::make_unique<wireless::Channel>(g.mcs));

  AccessPoint::StationConfig scfg;
  scfg.qdisc = g.qdisc;
  scfg.queue_limit_bytes = g.queue_limit_bytes;
  ap_->register_station(station_ip(index), *down_channels_.back(), scfg);

  // Client-side uplink path over the same contended medium.
  UplinkPath up;
  up.qdisc = std::make_unique<queue::DropTailFifo>(200 * 1500);
  wireless::WifiLink::Config ul_cfg;
  ul_cfg.max_agg_packets = 8;  // feedback packets are small and few
  up.link = std::make_unique<wireless::WifiLink>(
      sim_, *rng_, *up_channels_.back(), *medium_, *up.qdisc, ul_cfg,
      [this](Packet p) {
        if (inj_uplink_rtcp_) {
          inj_uplink_rtcp_->handle(std::move(p));
        } else {
          ap_->from_client(std::move(p));
        }
      });
  uplinks_.push_back(std::move(up));

  // Square-wave PHY fade. The phase draw comes from scenario_rng_ in
  // station order at build time, so the channel realisation is identical
  // across AP modes and flow schedules.
  if (g.fade.period_s > 0 && g.fade.depth_mcs > 0) {
    const double phase = scenario_rng_->uniform(0.0, g.fade.period_s);
    const int high = g.mcs;
    const int low = std::max(0, g.mcs - g.fade.depth_mcs);
    const Duration faded_for =
        Duration::from_seconds(g.fade.period_s * g.fade.duty);
    const Duration clear_for =
        Duration::from_seconds(g.fade.period_s * (1.0 - g.fade.duty));
    struct FadeTick {
      MultiScenario* s;
      int station;
      int high, low;
      Duration faded_for, clear_for;
      void operator()(bool faded) const {
        s->set_station_mcs(station, faded ? low : high);
        s->sim_.schedule_after(faded ? faded_for : clear_for,
                               [t = *this, faded] { t(!faded); });
      }
    };
    sim_.schedule_after(
        Duration::from_seconds(phase),
        [t = FadeTick{this, index, high, low, faded_for, clear_for}] {
          t(true);
        });
  }
}

void MultiScenario::set_station_mcs(int station, int mcs) {
  down_channels_[static_cast<std::size_t>(station)]->set_mcs(mcs);
  up_channels_[static_cast<std::size_t>(station)]->set_mcs(mcs);
  ZHUGE_TRACE(sim_.now(), "mstation", "fade", {"station", double(station)},
              {"mcs", double(mcs)});
}

void MultiScenario::arrive(const FlowEvent& ev) {
  auto f = std::make_unique<MFlow>();
  f->ev = ev;
  const bool is_rtp = ev.kind == SpecFlowKind::kRtpGcc;
  f->flow = FlowId{/*src_ip=*/1, station_ip(ev.station),
                   /*src_port=*/5000,
                   static_cast<std::uint16_t>(6000 + ev.index % 50000),
                   is_rtp ? std::uint8_t{17} : std::uint8_t{6}};
  f->last_uplink_owd_ms = spec_.wan_one_way_ms + 2.0;

  if (ev.zhuge && spec_.ap_mode != ApMode::kNone) {
    ap_->register_rtc_flow(f->flow);
  }

  rtc::VideoConfig video;
  video.fps = ev.fps;
  video.max_bitrate_bps = ev.max_bitrate_mbps * 1e6;
  video.start_bitrate_bps =
      std::min(video.start_bitrate_bps, video.max_bitrate_bps);

  MFlow* fp = f.get();
  f->frame_stats.set_observer([this](TimePoint capture, TimePoint decode) {
    if (decode >= warmup_end_) {
      result_.agg_frame_delay_ms.add((decode - capture).to_millis());
    }
  });
  // Latency attribution: a flow is "optimized" when the AP actually runs
  // Zhuge for it, which is what the stage-resolved on/off comparison keys on.
  const bool span_opt = ev.zhuge && spec_.ap_mode != ApMode::kNone;
  f->frame_stats.set_span_observer(
      [this, span_opt](const obs::FrameSpan& s) {
        if (TimePoint(s.decode_ns) < warmup_end_) return;
        result_.attrib.record_frame(span_opt, s);
      });

  const int station = ev.station;
  if (is_rtp) {
    transport::RtpSender::Config scfg;
    scfg.ssrc = ev.index + 1;
    scfg.video = video;
    scfg.gcc.start_rate_bps = video.start_bitrate_bps;
    scfg.gcc.min_rate_bps = video.min_bitrate_bps;
    scfg.gcc.max_rate_bps = video.max_bitrate_bps;
    f->rtp_sender = std::make_unique<transport::RtpSender>(
        sim_, *rng_, f->flow, scfg, uids_,
        [this](Packet p) { wan_down_->send(std::move(p)); });
    transport::RtpReceiver::Config rcfg;
    rcfg.ssrc = scfg.ssrc;
    f->rtp_receiver = std::make_unique<transport::RtpReceiver>(
        sim_, rcfg, uids_,
        [this, station](Packet p) { client_send_uplink(station, std::move(p)); },
        f->frame_stats);
    f->rtp_sender->start();
  } else {
    transport::TcpSender::Config scfg;
    std::unique_ptr<cca::CongestionControl> cca;
    switch (ev.kind) {
      case SpecFlowKind::kTcpCubic: cca = std::make_unique<cca::Cubic>(); break;
      case SpecFlowKind::kTcpAbc: cca = std::make_unique<cca::AbcSender>(); break;
      default: cca = std::make_unique<cca::Bbr>(); break;
    }
    f->tcp_sender = std::make_unique<transport::TcpSender>(
        sim_, f->flow, std::move(cca), scfg, uids_,
        [this](Packet p) { wan_down_->send(std::move(p)); });
    f->tcp_sender->set_rtt_observer([this, fp](Duration rtt, TimePoint now) {
      if (now >= warmup_end_) {
        fp->network_rtt_ms.add(rtt.to_millis());
        result_.agg_network_rtt_ms.add(rtt.to_millis());
      }
    });
    f->tcp_encoder = std::make_unique<rtc::VideoEncoder>(video, *rng_);
    transport::TcpReceiver::Config rcfg;
    f->tcp_receiver = std::make_unique<transport::TcpReceiver>(
        sim_, rcfg, uids_,
        [this, station](Packet p) { client_send_uplink(station, std::move(p)); },
        [fp](std::uint32_t frame_id, TimePoint capture, TimePoint now) {
          fp->frame_stats.on_frame_decoded(capture, now);
          if (obs::attrib_enabled()) {
            obs::FrameSpan s;
            s.flow_key = fp->ev.index + 1;
            s.frame_id = frame_id;
            s.capture_ns = capture.count_ns();
            s.decode_ns = now.count_ns();
            fp->frame_stats.on_frame_span(s);
          }
        });

    // Video-over-TCP frame tick (same backlog-limited source as Scenario's).
    struct FrameTick {
      MultiScenario* s;
      MFlow* f;
      void operator()() const {
        auto& sender = *f->tcp_sender;
        const double hint =
            std::max(sender.congestion_control().pacing_rate_bps() * 0.85,
                     sender.delivery_rate_bps(s->sim_.now()) * 0.95);
        double target = hint > 0 ? hint : f->tcp_encoder->encoder_rate_bps();
        // Upward probe while the socket keeps up (see Scenario's tick):
        // without it BBR's self-referential estimate pins the flow at
        // whatever rate a transient fault left it.
        if (sender.backlog_bytes() == 0) {
          target = std::max(target, f->tcp_encoder->encoder_rate_bps() * 1.05);
        }
        const std::uint64_t bytes = f->tcp_encoder->next_frame_bytes(target);
        const double backlog_limit =
            std::max(f->tcp_encoder->encoder_rate_bps(), 1e5) * 0.10 / 8.0;
        if (static_cast<double>(sender.backlog_bytes()) < backlog_limit) {
          sender.write_frame(f->tcp_next_frame++, s->sim_.now(), bytes);
        }
        f->tick_id = s->sim_.schedule_after(f->tcp_encoder->frame_interval(),
                                            [t = *this] { t(); });
      }
    };
    f->tick_id = sim_.schedule_after(Duration::millis(1),
                                     [t = FrameTick{this, fp}] { t(); });
  }

  by_flow_[f->flow] = ev.index;
  active_[ev.index] = std::move(f);
  ++result_.arrivals;
  ZHUGE_METRIC_INC("mstation.arrivals");
  ZHUGE_TRACE(sim_.now(), "mstation", "arrive", {"flow", double(ev.index)},
              {"station", double(ev.station)});
}

void MultiScenario::depart(std::uint32_t index) {
  const auto it = active_.find(index);
  if (it == active_.end()) return;
  MFlow& f = *it->second;
  sim_.cancel(f.tick_id);
  // Flush any feedback Zhuge still holds for the flow before its endpoints
  // disappear (the AckScheduler drains through the uplink handler, which
  // demuxes to a dead flow and counts as late -- matching a real AP that
  // releases buffered ACKs after the TCP connection closed).
  ap_->unregister_rtc_flow(f.flow);
  finalize_flow(f);
  by_flow_.erase(f.flow);
  active_.erase(it);
  ++result_.departures;
  ZHUGE_METRIC_INC("mstation.departures");
  ZHUGE_TRACE(sim_.now(), "mstation", "depart", {"flow", double(index)});
}

void MultiScenario::finalize_flow(MFlow& f) {
  MultiFlowResult& fr = result_.flows[f.ev.index];
  fr.network_rtt_ms = std::move(f.network_rtt_ms);
  fr.downlink_owd_ms = std::move(f.downlink_owd_ms);
  fr.frame_delay_ms = f.frame_stats.frame_delays_ms();
  fr.frames_decoded = f.frame_stats.frames_decoded();
  fr.frames_sent =
      f.rtp_sender ? f.rtp_sender->frames_sent() : f.tcp_next_frame;
  fr.packets_delivered = f.packets_delivered;
  const double lo = std::max(f.ev.start_s, spec_.warmup_s);
  const double hi = std::min(f.ev.stop_s, spec_.duration_s);
  fr.goodput_bps =
      hi > lo ? static_cast<double>(f.app_bytes_delivered) * 8.0 / (hi - lo)
              : 0.0;
}

void MultiScenario::sample_active() {
  result_.active_flows.record(sim_.now(), static_cast<double>(active_.size()));
  ZHUGE_METRIC_SET("mstation.active_flows", double(active_.size()));
  sim_.schedule_after(Duration::millis(100), [this] { sample_active(); });
}

void MultiScenario::client_send_uplink(int station, Packet p) {
  uplinks_[static_cast<std::size_t>(station)].link->offer(std::move(p));
}

void MultiScenario::server_receive(Packet p) {
  const auto it = by_flow_.find(p.flow.reversed());
  if (it == by_flow_.end()) {
    ++result_.late_packets;
    return;
  }
  MFlow& f = *active_.at(it->second);
  const double owd = (sim_.now() - p.sent_time).to_millis();
  if (owd > 0 && owd < 10e3) f.last_uplink_owd_ms = owd;
  if (f.rtp_sender && p.is_rtcp()) {
    f.rtp_sender->on_rtcp(p);
  } else if (f.tcp_sender && p.is_tcp()) {
    f.tcp_sender->on_ack(p);
  }
}

void MultiScenario::handle_delivery_metrics(const Packet& p, MFlow& f) {
  const TimePoint now = sim_.now();
  ++f.packets_delivered;
  if (now < warmup_end_) return;
  const double down_ms = (now - p.sent_time).to_millis();
  f.downlink_owd_ms.add(down_ms);
  f.app_bytes_delivered += p.size_bytes;
  if (f.rtp_sender != nullptr) {
    // RTP network RTT: downlink OWD plus the latest measured uplink OWD
    // (TCP flows record sender-side RTT samples instead).
    const double rtt_ms = down_ms + f.last_uplink_owd_ms;
    f.network_rtt_ms.add(rtt_ms);
    result_.agg_network_rtt_ms.add(rtt_ms);
  }
  if (p.predicted_delay_ms >= 0.0) {
    const double actual_ms = (now - p.ap_enqueue_time).to_millis();
    result_.prediction_error_ms.add(std::abs(p.predicted_delay_ms - actual_ms));
  }
  if (obs::attrib_enabled()) {
    const bool span_opt = f.ev.zhuge && spec_.ap_mode != ApMode::kNone;
    result_.attrib.record_packet(f.ev.index + 1, span_opt,
                                 p.sent_time.count_ns(),
                                 p.ap_enqueue_time.count_ns(),
                                 now.count_ns(), p.span);
  }
}

void MultiScenario::client_receive(Packet p) {
  const auto it = by_flow_.find(p.flow);
  if (it == by_flow_.end()) {
    ++result_.late_packets;
    return;
  }
  MFlow& f = *active_.at(it->second);
  handle_delivery_metrics(p, f);
  if (f.rtp_receiver && p.is_rtp()) {
    f.rtp_receiver->on_rtp(p);
  } else if (f.tcp_receiver && p.is_tcp()) {
    f.tcp_receiver->on_data(p);
  }
}

MultiStationResult MultiScenario::run() {
  sim_.run_until(run_end_);

  // Drain held feedback while the topology is still alive, then finalise
  // the flows that ran to the end of the simulation.
  result_.flushed_acks_at_end = ap_->flush_feedback();
  result_.stranded_acks = ap_->pending_feedback();
  result_.robustness = ap_->robustness();
  result_.ladder_log = ap_->ladder_log();
  for (const auto* inj : {inj_ap_feedback_.get(), inj_uplink_rtcp_.get()}) {
    if (inj == nullptr) continue;
    result_.fault_drops += inj->dropped();
    result_.fault_duplicated += inj->duplicated();
    result_.fault_reordered += inj->reordered();
    result_.fault_delay_spiked += inj->delay_spiked();
    result_.fault_bypassed += inj->bypassed();
  }
  for (auto& [idx, f] : active_) {
    sim_.cancel(f->tick_id);
    finalize_flow(*f);
  }

  const int n_stations = spec_.station_count();
  for (int i = 0; i < n_stations; ++i) {
    StationResult sr;
    if (auto* link = ap_->station_link(station_ip(i)); link != nullptr) {
      sr.airtime_s = link->airtime_used().to_seconds();
      sr.qdisc_drops = link->qdisc().drops();
      sr.delivered_packets = link->delivered_packets();
      result_.qdisc_drops += sr.qdisc_drops;
    }
    result_.stations.push_back(sr);
  }
  result_.quiesced_drops = ap_->quiesced_drops();
  result_.events_executed = sim_.events_executed();
  result_.invariant_violations =
      obs::invariants().total() - invariants_at_start_;

  if (obs::metrics_enabled()) {
    ZHUGE_METRIC_SET("mstation.flows_total", double(result_.flows.size()));
    ZHUGE_METRIC_SET("mstation.qdisc_drops", double(result_.qdisc_drops));
    ZHUGE_METRIC_SET("mstation.events_executed",
                     double(result_.events_executed));
    if (result_.agg_network_rtt_ms.count() > 0) {
      ZHUGE_METRIC_SET("mstation.rtt_p50_ms",
                       result_.agg_network_rtt_ms.quantile(0.5));
      ZHUGE_METRIC_SET("mstation.rtt_p99_ms",
                       result_.agg_network_rtt_ms.quantile(0.99));
    }
  }
  return std::move(result_);
}

}  // namespace

ScenarioResult run_scenario(const ScenarioConfig& cfg) {
  Scenario s(cfg);
  return s.run();
}

MultiStationResult run_multi_station(const ScenarioSpec& spec) {
  return run_multi_station(spec, spec.seed);
}

MultiStationResult run_multi_station(const ScenarioSpec& spec,
                                     std::uint64_t seed) {
  MultiScenario s(spec, seed);
  return s.run();
}

}  // namespace zhuge::app
