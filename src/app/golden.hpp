#pragma once
// Golden-trace regression records.
//
// A golden record pins the full 64-bit result fingerprint (see
// sweep::result_fingerprint) of a canonical scenario at a fixed seed,
// plus a handful of headline metrics. The fingerprint catches ANY
// behavioural drift — one packet scheduled one microsecond differently
// anywhere in the stack changes the hash — while the stored headline
// metrics let the drift report say what moved, not just that something
// did. Records live in tests/golden/*.json and are refreshed with
// `scenario_run --update-golden` when a change is intentional.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "app/spec.hpp"
#include "app/sweep.hpp"

namespace zhuge::app {

/// One pinned scenario outcome.
struct GoldenRecord {
  std::string name;
  std::uint64_t seed = 1;
  std::uint64_t fingerprint = 0;
  /// Headline metrics captured when the record was made (diagnostics for
  /// drift reports; the fingerprint alone decides pass/fail).
  std::map<std::string, double> headline;
};

/// Names of the canonical golden scenarios:
///   rtp_zhuge_single — one RTP/GCC flow through a Zhuge AP, MCS-7 Wi-Fi
///   tcp_mix          — TCP/BBR RTC flow + 2 CUBIC bulk competitors
///   chaos_burst      — RTP/Zhuge under a 3 s Gilbert-Elliott WAN burst
[[nodiscard]] std::vector<std::string> golden_scenario_names();

/// The canonical config behind a name; nullopt for unknown names.
[[nodiscard]] std::optional<ScenarioConfig> golden_scenario_config(
    const std::string& name);

/// Run a canonical scenario (under an ObsFreeze, so the fingerprint is
/// what a parallel sweep would produce) and build its record.
[[nodiscard]] std::optional<GoldenRecord> compute_golden(
    const std::string& name);

/// Compare two records. Empty result = match; otherwise one
/// human-readable line per mismatch (fingerprint first, then any
/// headline metric whose value moved).
[[nodiscard]] std::vector<std::string> compare_golden(
    const GoldenRecord& expected, const GoldenRecord& actual);

/// (De)serialisation. Fingerprints are stored as 16-digit hex strings —
/// a JSON number (double) cannot hold 64 bits exactly.
[[nodiscard]] Json golden_to_json(const GoldenRecord& rec);
[[nodiscard]] std::optional<GoldenRecord> golden_from_json(const Json& j,
                                                           std::string* err);
[[nodiscard]] std::optional<GoldenRecord> load_golden_file(
    const std::string& path, std::string* err);
/// Write a pretty-printed record; returns false on I/O failure.
[[nodiscard]] bool write_golden_file(const std::string& path,
                                     const GoldenRecord& rec);

// ---------------------------------------------------------------------------
// Latency-attribution goldens
// ---------------------------------------------------------------------------

/// Pinned per-stage latency profile of a canonical scenario: the aggregate
/// p95 of every stage that saw traffic, in microseconds. Unlike the full
/// fingerprint, a drift report here names the *stage* that moved — "air
/// p95 grew 40%" localises a regression the 64-bit hash can only detect.
struct AttribGolden {
  std::string name;
  std::uint64_t seed = 1;
  std::map<std::string, double> stage_p95_us;  ///< stage name -> p95 (us)
};

/// Build the record from a run's attribution aggregate.
[[nodiscard]] AttribGolden make_attrib_golden(const std::string& name,
                                              std::uint64_t seed,
                                              const obs::Attribution& attrib);

/// Compare with relative tolerance (default 1e-6 — the records are
/// deterministic; the slack only absorbs JSON round-trip rounding). One
/// human-readable line per drifting stage.
[[nodiscard]] std::vector<std::string> compare_attrib_golden(
    const AttribGolden& expected, const AttribGolden& actual,
    double rel_tol = 1e-6);

[[nodiscard]] Json attrib_golden_to_json(const AttribGolden& rec);
[[nodiscard]] std::optional<AttribGolden> attrib_golden_from_json(
    const Json& j, std::string* err);
[[nodiscard]] std::optional<AttribGolden> load_attrib_golden_file(
    const std::string& path, std::string* err);
[[nodiscard]] bool write_attrib_golden_file(const std::string& path,
                                            const AttribGolden& rec);

}  // namespace zhuge::app
