#include "app/eval.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace zhuge::app {

namespace {

std::string to_hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// "line N: " prefix (same idiom as the scenario-spec validator).
std::string at_line(const Json& v) {
  return v.line() > 0 ? "line " + std::to_string(v.line()) + ": " : "";
}

bool parse_mechanism(const std::string& s, ApMode& out) {
  if (s == "vanilla") out = ApMode::kNone;
  else if (s == "zhuge") out = ApMode::kZhuge;
  else if (s == "fastack") out = ApMode::kFastAck;
  else if (s == "abc") out = ApMode::kAbc;
  else return false;
  return true;
}

bool parse_cca(const std::string& s, EvalCca& out) {
  if (s == "gcc") out = EvalCca::kGcc;
  else if (s == "cubic") out = EvalCca::kCubic;
  else if (s == "bbr") out = EvalCca::kBbr;
  else return false;
  return true;
}

/// The flow kind a cell schedules: GCC is RTP; TCP columns keep their CCA
/// except under the ABC mechanism, where the host stack is replaced by
/// cooperating tcp_abc senders (ABC is an end-to-end redesign — the CCA
/// column records which host stack it displaced).
SpecFlowKind cell_flow_kind(ApMode mechanism, EvalCca cca) {
  switch (cca) {
    case EvalCca::kGcc: return SpecFlowKind::kRtpGcc;
    case EvalCca::kCubic:
      return mechanism == ApMode::kAbc ? SpecFlowKind::kTcpAbc
                                       : SpecFlowKind::kTcpCubic;
    case EvalCca::kBbr:
      return mechanism == ApMode::kAbc ? SpecFlowKind::kTcpAbc
                                       : SpecFlowKind::kTcpBbr;
  }
  return SpecFlowKind::kRtpGcc;
}

/// Whether the AP mechanism can act on the workload at all. FastAck and
/// ABC operate on TCP only; vanilla is the no-mechanism control.
bool mechanism_acts_on(ApMode mechanism, EvalCca cca) {
  switch (mechanism) {
    case ApMode::kNone: return false;
    case ApMode::kZhuge: return true;
    case ApMode::kFastAck: return cca != EvalCca::kGcc;
    case ApMode::kAbc: return cca != EvalCca::kGcc;
  }
  return false;
}

EvalCell run_eval_cell(const EvalCellSpec& cs) {
  const MultiStationResult r = run_multi_station(cs.scenario);

  EvalCell c;
  c.name = cs.name;
  c.mechanism = eval_mechanism_name(cs.mechanism);
  c.cca = to_string(cs.cca);
  c.trace = trace::short_name(cs.trace);
  c.density = cs.density;
  c.mechanism_active = cs.mechanism_active;

  const stats::Distribution& fd = r.agg_frame_delay_ms;
  c.frame_delay_cdf_ms.reserve(kEvalCdfDeciles);
  for (int d = 1; d <= kEvalCdfDeciles; ++d) {
    c.frame_delay_cdf_ms.push_back(fd.quantile(0.1 * d));
  }
  c.frame_delay_p50_ms = fd.quantile(0.50);
  c.frame_delay_p95_ms = fd.quantile(0.95);
  c.frame_delay_p99_ms = fd.quantile(0.99);
  c.delayed_frame_ratio = fd.ratio_above(400.0);

  for (const MultiFlowResult& f : r.flows) {
    c.frames_sent += f.frames_sent;
    c.frames_decoded += f.frames_decoded;
    c.goodput_bps += f.goodput_bps;
  }
  c.stall_rate = c.frames_sent > 0
                     ? 1.0 - static_cast<double>(c.frames_decoded) /
                                 static_cast<double>(c.frames_sent)
                     : 0.0;
  c.rtt_p50_ms = r.agg_network_rtt_ms.quantile(0.50);
  c.rtt_p95_ms = r.agg_network_rtt_ms.quantile(0.95);

  c.result_fingerprint = multi_result_fingerprint(r);
  c.fingerprint = eval_cell_fingerprint(c);
  return c;
}

/// Axis-point key ("W1/gcc/d4") the headline comparisons pair cells by.
std::string point_key(const EvalCell& c) {
  return c.trace + "/" + c.cca + "/d" + std::to_string(c.density);
}

std::vector<EvalHeadline> compute_headline(const std::vector<EvalCell>& cells) {
  std::vector<EvalHeadline> out;
  for (const EvalCell& z : cells) {
    if (z.mechanism != "zhuge") continue;
    for (const EvalCell& v : cells) {
      if (v.mechanism != "vanilla") continue;
      if (v.trace != z.trace || v.cca != z.cca || v.density != z.density) {
        continue;
      }
      EvalHeadline h;
      h.name = point_key(z);
      h.zhuge_p95_ms = z.frame_delay_p95_ms;
      h.vanilla_p95_ms = v.frame_delay_p95_ms;
      h.zhuge_wins = z.frame_delay_p95_ms < v.frame_delay_p95_ms;
      out.push_back(std::move(h));
      break;
    }
  }
  return out;
}

/// Anchor geometry for the pinned headline cells: GCC at 4 stations on a
/// 2.5 Mbps/30 fps workload, 20 s with 2 s warmup — dense enough that the
/// trace's fades actually congest the AP, short enough for a gating CI
/// job.
constexpr int kAnchorDensity = 4;
constexpr double kAnchorDurationS = 20.0;
constexpr double kAnchorWarmupS = 2.0;

}  // namespace

const char* to_string(EvalCca cca) {
  switch (cca) {
    case EvalCca::kGcc: return "gcc";
    case EvalCca::kCubic: return "cubic";
    case EvalCca::kBbr: return "bbr";
  }
  return "?";
}

const char* eval_mechanism_name(ApMode mode) {
  switch (mode) {
    case ApMode::kNone: return "vanilla";
    case ApMode::kZhuge: return "zhuge";
    case ApMode::kFastAck: return "fastack";
    case ApMode::kAbc: return "abc";
  }
  return "?";
}

std::optional<EvalSpec> parse_eval_spec(std::string_view text,
                                        std::string* err) {
  const auto fail = [err](const std::string& msg) -> std::optional<EvalSpec> {
    if (err != nullptr) *err = msg;
    return std::nullopt;
  };

  std::string jerr;
  const auto doc = Json::parse(text, &jerr);
  if (!doc.has_value()) return fail(jerr);
  if (!doc->is_object()) return fail("eval spec must be a JSON object");

  // Strict key set: a typo'd axis name would silently run the default
  // axis while claiming a narrowed matrix (or vice versa).
  static constexpr std::string_view kKnown[] = {
      "name", "duration_s", "warmup_s",   "seed",      "max_bitrate_mbps",
      "fps",  "mechanisms", "ccas",       "traces",    "densities"};
  for (const auto& [key, value] : doc->object()) {
    if (std::find(std::begin(kKnown), std::end(kKnown), key) ==
        std::end(kKnown)) {
      return fail(at_line(value) + "eval: unknown key \"" + key + "\"");
    }
  }

  EvalSpec spec;
  if (const Json* v = doc->find("name")) spec.name = v->string_or(spec.name);
  if (const Json* v = doc->find("duration_s")) {
    spec.duration_s = v->number_or(spec.duration_s);
  }
  if (const Json* v = doc->find("warmup_s")) {
    spec.warmup_s = v->number_or(spec.warmup_s);
  }
  if (spec.duration_s <= 0) return fail("duration_s must be > 0");
  if (spec.warmup_s < 0 || spec.warmup_s >= spec.duration_s) {
    return fail("warmup_s must be in [0, duration_s)");
  }
  if (const Json* v = doc->find("seed")) {
    spec.seed = static_cast<std::uint64_t>(
        v->number_or(static_cast<double>(spec.seed)));
  }
  if (const Json* v = doc->find("max_bitrate_mbps")) {
    spec.max_bitrate_mbps = v->number_or(spec.max_bitrate_mbps);
  }
  if (const Json* v = doc->find("fps")) spec.fps = v->number_or(spec.fps);
  if (spec.max_bitrate_mbps <= 0 || spec.fps <= 0) {
    return fail("max_bitrate_mbps and fps must be > 0");
  }

  const auto parse_axis = [&](const char* key, auto& dst, auto parse_one,
                              const char* expect) -> bool {
    const Json* arr = doc->find(key);
    if (arr == nullptr) return true;  // keep the default axis
    if (!arr->is_array() || arr->array().empty()) {
      if (err != nullptr) {
        *err = at_line(*arr) + std::string(key) + " must be a non-empty array";
      }
      return false;
    }
    dst.clear();
    for (const Json& e : arr->array()) {
      typename std::decay_t<decltype(dst)>::value_type parsed{};
      if (!parse_one(e, parsed)) {
        if (err != nullptr) {
          *err = at_line(e) + std::string(key) + "[] must be " + expect;
        }
        return false;
      }
      dst.push_back(parsed);
    }
    return true;
  };

  if (!parse_axis(
          "mechanisms", spec.mechanisms,
          [](const Json& e, ApMode& out) {
            return parse_mechanism(e.string_or(""), out);
          },
          "vanilla|zhuge|fastack|abc")) {
    return std::nullopt;
  }
  if (!parse_axis(
          "ccas", spec.ccas,
          [](const Json& e, EvalCca& out) {
            return parse_cca(e.string_or(""), out);
          },
          "gcc|cubic|bbr")) {
    return std::nullopt;
  }
  if (!parse_axis(
          "traces", spec.traces,
          [](const Json& e, trace::TraceKind& out) {
            return parse_trace_class(e.string_or(""), out);
          },
          "W1|W2|C1|C2|C3|ETH|ABC")) {
    return std::nullopt;
  }
  if (!parse_axis(
          "densities", spec.densities,
          [](const Json& e, int& out) {
            if (e.kind() != Json::Kind::kNumber) return false;
            out = static_cast<int>(e.number_or(0));
            return out >= 1 && out <= 64;
          },
          "integers in [1, 64]")) {
    return std::nullopt;
  }
  return spec;
}

std::optional<EvalSpec> load_eval_spec(const std::string& path,
                                       std::string* err) {
  std::ifstream in(path);
  if (!in) {
    if (err != nullptr) *err = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  auto spec = parse_eval_spec(ss.str(), err);
  if (!spec.has_value() && err != nullptr) *err = path + ": " + *err;
  return spec;
}

std::vector<EvalCellSpec> expand_eval_matrix(const EvalSpec& spec) {
  std::vector<EvalCellSpec> cells;
  cells.reserve(spec.traces.size() * spec.ccas.size() *
                spec.mechanisms.size() * spec.densities.size());
  for (const trace::TraceKind trace : spec.traces) {
    for (const EvalCca cca : spec.ccas) {
      for (const ApMode mech : spec.mechanisms) {
        for (const int density : spec.densities) {
          EvalCellSpec cell;
          cell.mechanism = mech;
          cell.cca = cca;
          cell.trace = trace;
          cell.density = density;
          cell.mechanism_active = mechanism_acts_on(mech, cca);
          cell.name = std::string(trace::short_name(trace)) + "/" +
                      to_string(cca) + "/" + eval_mechanism_name(mech) +
                      "/d" + std::to_string(density);

          ScenarioSpec& s = cell.scenario;
          s.name = cell.name;
          s.duration_s = spec.duration_s;
          s.warmup_s = spec.warmup_s;
          s.seed = spec.seed;
          s.ap_mode = mech;

          StationGroupSpec g;
          g.count = density;
          g.mcs = 7;
          g.trace_class = trace;
          s.stations.push_back(g);

          for (int i = 0; i < density; ++i) {
            SpecFlow f;
            f.kind = cell_flow_kind(mech, cca);
            f.station = i;
            // "Optimised" marker: the AP registers the flow whenever the
            // mechanism exists; vanilla ignores it by construction.
            f.zhuge = true;
            // Small stagger so dense cells don't key their frame clocks
            // in phase.
            f.start_s = 0.1 * i;
            f.max_bitrate_mbps = spec.max_bitrate_mbps;
            f.fps = spec.fps;
            s.flows.push_back(f);
          }
          cells.push_back(std::move(cell));
        }
      }
    }
  }
  return cells;
}

std::uint64_t eval_cell_fingerprint(const EvalCell& cell) {
  Fnv fp;
  fp.bytes(cell.name.data(), cell.name.size());
  fp.u64(static_cast<std::uint64_t>(cell.density));
  fp.u64(cell.mechanism_active ? 1 : 0);
  fp.u64(cell.frame_delay_cdf_ms.size());
  for (const double v : cell.frame_delay_cdf_ms) fp.f64(v);
  fp.f64(cell.frame_delay_p50_ms);
  fp.f64(cell.frame_delay_p95_ms);
  fp.f64(cell.frame_delay_p99_ms);
  fp.f64(cell.delayed_frame_ratio);
  fp.f64(cell.stall_rate);
  fp.f64(cell.rtt_p50_ms);
  fp.f64(cell.rtt_p95_ms);
  fp.f64(cell.goodput_bps);
  fp.u64(cell.frames_sent);
  fp.u64(cell.frames_decoded);
  fp.u64(cell.result_fingerprint);
  return fp.h;
}

EvalMatrixResult run_eval_matrix(const std::vector<EvalCellSpec>& cells,
                                 unsigned threads) {
  EvalMatrixResult out;
  out.cells.resize(cells.size());
  {
    const ObsFreeze freeze;
    run_indexed_pool(cells.size(), threads,
                     [&](std::size_t i) { out.cells[i] = run_eval_cell(cells[i]); });
  }
  // Chain serially in grid order: the matrix fingerprint is independent of
  // worker count and completion order by construction.
  Fnv chain;
  for (const EvalCell& c : out.cells) chain.u64(c.fingerprint);
  out.fingerprint = chain.h;
  out.headline = compute_headline(out.cells);
  return out;
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

void write_eval_report_text(const EvalMatrixResult& res, std::ostream& out) {
  char line[256];
  std::snprintf(line, sizeof(line),
                "eval matrix: %zu cells, fingerprint %s\n", res.cells.size(),
                to_hex16(res.fingerprint).c_str());
  out << line;
  out << "trace cca    mech     dens act  fd_p50   fd_p95   fd_p99  "
         ">400ms   stall  rtt_p95  goodput\n";
  for (const EvalCell& c : res.cells) {
    std::snprintf(line, sizeof(line),
                  "%-5s %-6s %-8s %4d %3s %7.1f  %7.1f  %7.1f  %5.2f%%  "
                  "%5.2f%%  %7.1f  %6.2fM\n",
                  c.trace.c_str(), c.cca.c_str(), c.mechanism.c_str(),
                  c.density, c.mechanism_active ? "yes" : "-",
                  c.frame_delay_p50_ms, c.frame_delay_p95_ms,
                  c.frame_delay_p99_ms, c.delayed_frame_ratio * 100.0,
                  c.stall_rate * 100.0, c.rtt_p95_ms, c.goodput_bps / 1e6);
    out << line;
  }
  if (!res.headline.empty()) {
    out << "\nheadline (zhuge p95 frame delay < vanilla p95):\n";
    for (const EvalHeadline& h : res.headline) {
      std::snprintf(line, sizeof(line),
                    "  %-12s zhuge %7.1f ms vs vanilla %7.1f ms -> %s\n",
                    h.name.c_str(), h.zhuge_p95_ms, h.vanilla_p95_ms,
                    h.zhuge_wins ? "ZHUGE WINS" : "no win");
      out << line;
    }
  }
}

namespace {

/// %.17g: shortest representation that round-trips an IEEE double.
std::string g17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void write_eval_report_csv(const EvalMatrixResult& res, std::ostream& out) {
  out << "cell,trace,cca,mechanism,density,mechanism_active,"
         "frame_delay_p50_ms,frame_delay_p95_ms,frame_delay_p99_ms,"
         "delayed_frame_ratio,stall_rate,rtt_p50_ms,rtt_p95_ms,goodput_bps,"
         "frames_sent,frames_decoded";
  for (int d = 1; d <= kEvalCdfDeciles; ++d) out << ",cdf_p" << d * 10;
  out << ",result_fingerprint,fingerprint\n";
  for (const EvalCell& c : res.cells) {
    out << c.name << ',' << c.trace << ',' << c.cca << ',' << c.mechanism
        << ',' << c.density << ',' << (c.mechanism_active ? 1 : 0) << ','
        << g17(c.frame_delay_p50_ms) << ',' << g17(c.frame_delay_p95_ms)
        << ',' << g17(c.frame_delay_p99_ms) << ','
        << g17(c.delayed_frame_ratio) << ',' << g17(c.stall_rate) << ','
        << g17(c.rtt_p50_ms) << ',' << g17(c.rtt_p95_ms) << ','
        << g17(c.goodput_bps) << ',' << c.frames_sent << ','
        << c.frames_decoded;
    for (const double v : c.frame_delay_cdf_ms) out << ',' << g17(v);
    out << ',' << to_hex16(c.result_fingerprint) << ','
        << to_hex16(c.fingerprint) << '\n';
  }
}

Json eval_report_to_json(const EvalMatrixResult& res) {
  Json j = Json::make_object();
  j.set("fingerprint", Json::make_string(to_hex16(res.fingerprint)));
  Json cells = Json::make_array();
  for (const EvalCell& c : res.cells) {
    Json cj = Json::make_object();
    cj.set("name", Json::make_string(c.name));
    cj.set("trace", Json::make_string(c.trace));
    cj.set("cca", Json::make_string(c.cca));
    cj.set("mechanism", Json::make_string(c.mechanism));
    cj.set("density", Json::make_number(c.density));
    cj.set("mechanism_active", Json::make_bool(c.mechanism_active));
    Json cdf = Json::make_array();
    for (const double v : c.frame_delay_cdf_ms) cdf.push(Json::make_number(v));
    cj.set("frame_delay_cdf_ms", std::move(cdf));
    cj.set("frame_delay_p50_ms", Json::make_number(c.frame_delay_p50_ms));
    cj.set("frame_delay_p95_ms", Json::make_number(c.frame_delay_p95_ms));
    cj.set("frame_delay_p99_ms", Json::make_number(c.frame_delay_p99_ms));
    cj.set("delayed_frame_ratio", Json::make_number(c.delayed_frame_ratio));
    cj.set("stall_rate", Json::make_number(c.stall_rate));
    cj.set("rtt_p50_ms", Json::make_number(c.rtt_p50_ms));
    cj.set("rtt_p95_ms", Json::make_number(c.rtt_p95_ms));
    cj.set("goodput_bps", Json::make_number(c.goodput_bps));
    cj.set("frames_sent",
           Json::make_number(static_cast<double>(c.frames_sent)));
    cj.set("frames_decoded",
           Json::make_number(static_cast<double>(c.frames_decoded)));
    cj.set("result_fingerprint",
           Json::make_string(to_hex16(c.result_fingerprint)));
    cj.set("cell_fingerprint", Json::make_string(to_hex16(c.fingerprint)));
    cells.push(std::move(cj));
  }
  j.set("cells", std::move(cells));
  Json headline = Json::make_array();
  for (const EvalHeadline& h : res.headline) {
    Json hj = Json::make_object();
    hj.set("name", Json::make_string(h.name));
    hj.set("zhuge_p95_ms", Json::make_number(h.zhuge_p95_ms));
    hj.set("vanilla_p95_ms", Json::make_number(h.vanilla_p95_ms));
    hj.set("zhuge_wins", Json::make_bool(h.zhuge_wins));
    headline.push(std::move(hj));
  }
  j.set("headline", std::move(headline));
  return j;
}

namespace {

std::optional<std::uint64_t> hex_field(const Json& obj, const char* key) {
  const Json* v = obj.find(key);
  if (v == nullptr) return std::nullopt;
  const std::string s = v->string_or("");
  if (s.empty()) return std::nullopt;
  std::uint64_t out = 0;
  for (const char ch : s) {
    int digit;
    if (ch >= '0' && ch <= '9') digit = ch - '0';
    else if (ch >= 'a' && ch <= 'f') digit = 10 + ch - 'a';
    else return std::nullopt;
    out = out << 4 | static_cast<std::uint64_t>(digit);
  }
  return out;
}

}  // namespace

std::optional<EvalMatrixResult> eval_report_from_json(const Json& j,
                                                      std::string* err) {
  const auto fail = [err](const char* msg) -> std::optional<EvalMatrixResult> {
    if (err != nullptr) *err = msg;
    return std::nullopt;
  };
  if (!j.is_object()) return fail("eval report must be an object");
  EvalMatrixResult res;
  const auto fp = hex_field(j, "fingerprint");
  if (!fp.has_value()) return fail("eval report missing hex \"fingerprint\"");
  res.fingerprint = *fp;

  const Json* cells = j.find("cells");
  if (cells == nullptr || !cells->is_array()) {
    return fail("eval report missing \"cells\" array");
  }
  for (const Json& cj : cells->array()) {
    if (!cj.is_object()) return fail("cells[] entries must be objects");
    EvalCell c;
    c.name = cj.find("name") != nullptr ? cj.find("name")->string_or("") : "";
    if (c.name.empty()) return fail("cells[] entry missing \"name\"");
    c.trace = cj.find("trace") != nullptr ? cj.find("trace")->string_or("") : "";
    c.cca = cj.find("cca") != nullptr ? cj.find("cca")->string_or("") : "";
    c.mechanism =
        cj.find("mechanism") != nullptr ? cj.find("mechanism")->string_or("") : "";
    if (const Json* v = cj.find("density")) {
      c.density = static_cast<int>(v->number_or(1));
    }
    if (const Json* v = cj.find("mechanism_active")) {
      c.mechanism_active = v->bool_or(false);
    }
    if (const Json* v = cj.find("frame_delay_cdf_ms"); v != nullptr && v->is_array()) {
      for (const Json& e : v->array()) {
        c.frame_delay_cdf_ms.push_back(e.number_or(0.0));
      }
    }
    const auto num = [&cj](const char* key, double& dst) {
      if (const Json* v = cj.find(key)) dst = v->number_or(dst);
    };
    num("frame_delay_p50_ms", c.frame_delay_p50_ms);
    num("frame_delay_p95_ms", c.frame_delay_p95_ms);
    num("frame_delay_p99_ms", c.frame_delay_p99_ms);
    num("delayed_frame_ratio", c.delayed_frame_ratio);
    num("stall_rate", c.stall_rate);
    num("rtt_p50_ms", c.rtt_p50_ms);
    num("rtt_p95_ms", c.rtt_p95_ms);
    num("goodput_bps", c.goodput_bps);
    if (const Json* v = cj.find("frames_sent")) {
      c.frames_sent = static_cast<std::uint64_t>(v->number_or(0));
    }
    if (const Json* v = cj.find("frames_decoded")) {
      c.frames_decoded = static_cast<std::uint64_t>(v->number_or(0));
    }
    const auto rfp = hex_field(cj, "result_fingerprint");
    const auto cfp = hex_field(cj, "cell_fingerprint");
    if (!rfp.has_value() || !cfp.has_value()) {
      return fail("cells[] entry missing hex fingerprints");
    }
    c.result_fingerprint = *rfp;
    c.fingerprint = *cfp;
    res.cells.push_back(std::move(c));
  }

  if (const Json* headline = j.find("headline");
      headline != nullptr && headline->is_array()) {
    for (const Json& hj : headline->array()) {
      if (!hj.is_object()) return fail("headline[] entries must be objects");
      EvalHeadline h;
      h.name = hj.find("name") != nullptr ? hj.find("name")->string_or("") : "";
      if (const Json* v = hj.find("zhuge_p95_ms")) {
        h.zhuge_p95_ms = v->number_or(0.0);
      }
      if (const Json* v = hj.find("vanilla_p95_ms")) {
        h.vanilla_p95_ms = v->number_or(0.0);
      }
      if (const Json* v = hj.find("zhuge_wins")) {
        h.zhuge_wins = v->bool_or(false);
      }
      res.headline.push_back(std::move(h));
    }
  }
  return res;
}

// ---------------------------------------------------------------------------
// Golden anchors
// ---------------------------------------------------------------------------

std::vector<std::string> eval_golden_names() {
  return {"eval_w1_gcc", "eval_c1_gcc"};
}

std::optional<GoldenRecord> compute_eval_golden(const std::string& name) {
  trace::TraceKind trace;
  if (name == "eval_w1_gcc") {
    trace = trace::TraceKind::kRestaurantWifi;
  } else if (name == "eval_c1_gcc") {
    trace = trace::TraceKind::kIndoorMixed45G;
  } else {
    return std::nullopt;
  }

  EvalSpec spec;
  spec.name = name;
  spec.duration_s = kAnchorDurationS;
  spec.warmup_s = kAnchorWarmupS;
  spec.mechanisms = {ApMode::kNone, ApMode::kZhuge};
  spec.ccas = {EvalCca::kGcc};
  spec.traces = {trace};
  spec.densities = {kAnchorDensity};

  const auto cells = expand_eval_matrix(spec);
  const EvalMatrixResult res = run_eval_matrix(cells, 1);

  GoldenRecord rec;
  rec.name = name;
  rec.seed = spec.seed;
  rec.fingerprint = res.fingerprint;
  rec.headline["cells"] = static_cast<double>(res.cells.size());
  for (const EvalCell& c : res.cells) {
    const std::string prefix = c.mechanism + "_";
    rec.headline[prefix + "frame_p95_ms"] = c.frame_delay_p95_ms;
    rec.headline[prefix + "delayed_ratio"] = c.delayed_frame_ratio;
    rec.headline[prefix + "goodput_bps"] = c.goodput_bps;
  }
  if (!res.headline.empty()) {
    rec.headline["zhuge_wins"] = res.headline.front().zhuge_wins ? 1.0 : 0.0;
  }
  return rec;
}

}  // namespace zhuge::app
