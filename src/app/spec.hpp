#pragma once
// Declarative multi-station scenario specs.
//
// A ScenarioSpec describes N stations on one AP (per-station MCS and fade
// profile), a set of statically scheduled flows, and an optional flow-churn
// process whose arrival/departure schedule is drawn from a dedicated RNG
// substream — the versioned-workload idea from the closed-loop benchmarking
// literature: the workload is data, not code, so dense scale scenarios are
// reproducible, diffable, and shareable.
//
// Specs are written in a small JSON subset (objects, arrays, strings,
// numbers, bools, null; no external dependency). The same Json class is
// reused by the golden-trace records.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "app/access_point.hpp"
#include "fault/fault.hpp"
#include "obs/slo.hpp"
#include "trace/synthetic.hpp"

namespace zhuge::app {

// ---------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser (subset: no \uXXXX escapes,
// no scientific-notation edge cases beyond what from_chars accepts).
// ---------------------------------------------------------------------------

class Json {
 public:
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Json>;
  /// Ordered map: object iteration (dump, golden comparison) must be
  /// platform-stable.
  using Object = std::map<std::string, Json>;

  Json() = default;
  static Json make_bool(bool b);
  static Json make_number(double v);
  static Json make_string(std::string s);
  static Json make_array();
  static Json make_object();

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }

  [[nodiscard]] double number_or(double fallback) const {
    return kind_ == Kind::kNumber ? num_ : fallback;
  }
  [[nodiscard]] bool bool_or(bool fallback) const {
    return kind_ == Kind::kBool ? b_ : fallback;
  }
  [[nodiscard]] std::string string_or(std::string fallback) const {
    return kind_ == Kind::kString ? str_ : std::move(fallback);
  }
  [[nodiscard]] const Array& array() const { return arr_; }
  [[nodiscard]] const Object& object() const { return obj_; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(const std::string& key) const;

  /// Mutators for building documents (golden records).
  Json& set(const std::string& key, Json v);
  Json& push(Json v);

  /// Serialise. `indent` > 0 pretty-prints; doubles round-trip (%.17g).
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parse `text`. On failure returns nullopt and sets `*err` (if non-null)
  /// to "line N: message".
  static std::optional<Json> parse(std::string_view text, std::string* err);

  /// 1-based source line this value started on; 0 for built documents.
  /// Spec validation uses it for "line N: ..." diagnostics on semantic
  /// errors (unknown key, out-of-range value), not just syntax errors.
  [[nodiscard]] int line() const { return line_; }
  void set_line(int line) { line_ = line; }

 private:
  Kind kind_ = Kind::kNull;
  int line_ = 0;
  bool b_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;

  void dump_to(std::string& out, int indent, int depth) const;
};

// ---------------------------------------------------------------------------
// Spec model
// ---------------------------------------------------------------------------

/// Flow families a spec can schedule (RTP/GCC per the paper's RTC workload;
/// CUBIC and BBR as the competing-TCP workloads of §6/Fig. 16; tcp_abc is
/// the cooperating sender for the ABC baseline AP — its cwnd follows the
/// router's accelerate/brake marks, so it only makes sense under
/// ap_mode "abc").
enum class SpecFlowKind : std::uint8_t { kRtpGcc, kTcpCubic, kTcpBbr, kTcpAbc };

[[nodiscard]] const char* to_string(SpecFlowKind kind);

/// Periodic PHY fade: every `period_s` the station drops `depth_mcs` MCS
/// indices for `duty` of the period (mmWave-blockage-style square wave).
/// period_s == 0 disables fading.
struct FadeSpec {
  double period_s = 0.0;
  int depth_mcs = 0;
  double duty = 0.5;
};

/// A group of `count` identical stations.
struct StationGroupSpec {
  int count = 1;
  int mcs = 7;  ///< 802.11n-like MCS index 0..7
  QdiscKind qdisc = QdiscKind::kFifo;
  std::int64_t queue_limit_bytes = 300 * 1500;
  FadeSpec fade{};
  /// When set ("trace": "W1"|"W2"|"C1"|"C2"|"C3"|"ETH"|"ABC") the station's
  /// downlink PHY follows a synthetic trace of that class instead of a
  /// fixed MCS rate; each station in the group gets its own trace drawn
  /// from seed + station index so a dense group doesn't fade in lockstep.
  /// `mcs` still sets the uplink rate. Unset = MCS mode (existing specs
  /// unchanged).
  std::optional<trace::TraceKind> trace_class{};
  /// When > 0 every station in the group deassociates at this time: the AP
  /// quiesces it (AccessPoint::unregister_station) and its remaining
  /// downlink traffic black-holes. -1 = stays for the whole run.
  double leave_s = -1.0;
};

/// One statically scheduled flow.
struct SpecFlow {
  SpecFlowKind kind = SpecFlowKind::kRtpGcc;
  int station = 0;        ///< station index after group expansion
  bool zhuge = false;     ///< per-flow AP optimisation on/off
  double start_s = 0.0;
  double stop_s = -1.0;   ///< -1 = run end
  double max_bitrate_mbps = 2.5;
  double fps = 30.0;
};

/// Flow-churn process: Poisson-like arrivals with exponential lifetimes,
/// drawn from a dedicated RNG substream (see expand_flow_schedule).
struct ChurnSpec {
  bool enabled = false;
  double mean_interarrival_s = 1.0;
  double mean_lifetime_s = 10.0;
  double max_lifetime_s = 60.0;   ///< clamp for the exponential tail
  int max_concurrent = 16;        ///< arrivals beyond this are skipped
  double mix_rtp_gcc = 1.0;       ///< relative weights of the flow kinds
  double mix_tcp_cubic = 0.0;
  double mix_tcp_bbr = 0.0;
  double zhuge_fraction = 1.0;    ///< P(churn flow gets Zhuge), RTP only
  double start_s = 0.0;
  double stop_s = -1.0;           ///< -1 = run end
  double max_bitrate_mbps = 2.5;
  double fps = 30.0;
};

/// Full declarative multi-station scenario.
struct ScenarioSpec {
  std::string name = "unnamed";
  double duration_s = 30.0;
  double warmup_s = 5.0;
  std::uint64_t seed = 1;
  ApMode ap_mode = ApMode::kZhuge;
  double wan_one_way_ms = 20.0;
  double wan_rate_mbps = 1000.0;
  std::vector<StationGroupSpec> stations;
  std::vector<SpecFlow> flows;
  ChurnSpec churn{};

  /// Feedback-path fault injection ("feedback_faults" section, strictly
  /// validated): ap_feedback impairs the AP-rewritten feedback on its way
  /// to the servers, uplink_rtcp impairs client RTCP before the AP. Both
  /// run feedback-only; data packets pass untouched.
  fault::InjectorConfig ap_feedback_fault{};
  fault::InjectorConfig uplink_rtcp_fault{};

  /// Pin the Zhuge degradation ladder ("zhuge_initial_ladder" key). The
  /// default kFull runs the normal watchdog; any other level disables
  /// watchdog transitions and holds every optimised flow at that level —
  /// kPassThrough is the fingerprint-identical-to-Zhuge-off control.
  obs::LadderLevel zhuge_initial_ladder = obs::LadderLevel::kFull;

  /// Total stations after group expansion.
  [[nodiscard]] int station_count() const;
  /// The group a station index falls in (station_count() must be > index).
  [[nodiscard]] const StationGroupSpec& station_group(int station) const;
};

/// Parse a trace-class short name ("W1"..."C3", "ETH", "ABC") into its
/// generator kind. Shared by the station "trace" key and the eval matrix's
/// trace axis.
[[nodiscard]] bool parse_trace_class(const std::string& s,
                                     trace::TraceKind& out);

/// Parse a spec document. Unknown keys are ignored (forward compatibility)
/// EXCEPT inside "feedback_faults", which is strictly validated — a typo'd
/// fault key would silently run a clean scenario while claiming chaos
/// coverage, so unknown keys, non-numeric values, and out-of-range values
/// there fail with line-numbered errors. Structural errors (wrong JSON, no
/// stations, bad enums) fail with `*err`.
[[nodiscard]] std::optional<ScenarioSpec> parse_scenario_spec(
    std::string_view text, std::string* err);

/// Read + parse a spec file.
[[nodiscard]] std::optional<ScenarioSpec> load_scenario_spec(
    const std::string& path, std::string* err);

// ---------------------------------------------------------------------------
// Schedule expansion
// ---------------------------------------------------------------------------

/// A concrete flow lifetime produced from the spec: static flows first (in
/// declaration order), then churn arrivals in time order.
struct FlowEvent {
  std::uint32_t index = 0;  ///< dense id; the engine derives ports from it
  SpecFlowKind kind = SpecFlowKind::kRtpGcc;
  int station = 0;
  bool zhuge = false;
  double start_s = 0.0;
  double stop_s = 0.0;
  double max_bitrate_mbps = 2.5;
  double fps = 30.0;
};

/// Expand the spec into a deterministic flow schedule for `seed`. Churn
/// draws come from Rng(seed, substreams::kSpecFlowChurn) in a fixed per-arrival order
/// (interarrival, lifetime, kind, station, zhuge) — draws are consumed even
/// for arrivals skipped by max_concurrent, so admitting or dropping one
/// arrival never shifts the randomness of the rest of the schedule.
[[nodiscard]] std::vector<FlowEvent> expand_flow_schedule(
    const ScenarioSpec& spec, std::uint64_t seed);

}  // namespace zhuge::app
