#pragma once
// The last-mile access point: downlink qdisc + wireless link + optional
// in-AP optimisation (Zhuge, FastAck, or the ABC router). This is the only
// box the paper modifies — everything else (server, client) runs stock.

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "baseline/abc_router.hpp"
#include "baseline/fastack.hpp"
#include "core/zhuge.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "queue/codel.hpp"
#include "queue/fifo.hpp"
#include "queue/fq_codel.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "wireless/cellular_link.hpp"
#include "wireless/channel.hpp"
#include "wireless/medium.hpp"
#include "wireless/wifi_link.hpp"

namespace zhuge::app {

using net::Packet;
using net::PacketHandler;
using sim::Duration;
using sim::TimePoint;

/// Which optimisation runs on the AP.
enum class ApMode : std::uint8_t { kNone, kZhuge, kFastAck, kAbc };

/// Downlink queue discipline.
enum class QdiscKind : std::uint8_t { kFifo, kCoDel, kFqCoDel };

/// Last-hop technology.
enum class LinkKind : std::uint8_t { kWifi, kCellular };

/// A wireless access point with a pluggable downlink qdisc, a wireless
/// last hop, and an optional AP-side optimisation module.
class AccessPoint {
 public:
  struct Config {
    ApMode mode = ApMode::kNone;
    QdiscKind qdisc = QdiscKind::kFifo;
    LinkKind link = LinkKind::kWifi;
    std::int64_t queue_limit_bytes = 300 * 1500;  ///< FIFO bufferbloat depth
    wireless::WifiLink::Config wifi{};
    wireless::CellularLink::Config cellular{};
    core::ZhugeConfig zhuge{};
    baseline::AbcRouter::Config abc{};
    baseline::FastAck::Config fastack{};
  };

  /// `to_client` receives packets that crossed the wireless downlink;
  /// `to_server` is the AP's wired uplink towards the WAN.
  AccessPoint(sim::Simulator& simulator, sim::Rng& rng,
              wireless::Channel& channel, wireless::Medium& medium, Config cfg,
              PacketHandler to_client, PacketHandler to_server);

  /// Per-station downlink attachment for multi-station scenarios: each
  /// station gets its own qdisc + AMPDU WifiLink contending on the AP's
  /// shared CSMA medium (so airtime is split the way the paper's testbed
  /// splits it, not per-flow).
  struct StationConfig {
    QdiscKind qdisc = QdiscKind::kFifo;
    std::int64_t queue_limit_bytes = 300 * 1500;
    wireless::WifiLink::Config wifi{};
  };

  /// Attach a station reachable at client IP `ip`. Downlink packets whose
  /// `flow.dst_ip == ip` are routed through the station's own qdisc and
  /// wireless link instead of the default one; `channel` models that
  /// station's PHY (per-station MCS/fade) and must outlive the AP.
  void register_station(std::uint32_t ip, wireless::Channel& channel,
                        const StationConfig& cfg);

  /// Quiesce a station: unregister its RTC flows (flushing held feedback),
  /// drop everything still queued for it, and black-hole subsequent
  /// downlink arrivals. The WifiLink object itself stays alive until the
  /// AP is destroyed — the CSMA medium may still hold a grant callback for
  /// it, so destroying it here would dangle. Returns feedback packets
  /// flushed from optimiser state.
  std::size_t unregister_station(std::uint32_t ip);

  /// The station's wireless link (airtime, delivery counters), or nullptr
  /// if `ip` was never registered. Valid for quiesced stations too.
  [[nodiscard]] wireless::WifiLink* station_link(std::uint32_t ip);

  /// Number of currently active (non-quiesced) stations.
  [[nodiscard]] std::size_t active_station_count() const;

  /// Downlink packets black-holed because their station was quiesced.
  [[nodiscard]] std::uint64_t quiesced_drops() const { return quiesced_drops_; }

  /// Downlink entry: a packet arrives from the WAN (Ethernet port).
  void from_wan(Packet p);

  /// Uplink entry: a packet arrives from the client over wireless.
  void from_client(Packet p);

  /// Interpose on the AP->sender *rewritten feedback* path: everything a
  /// ZhugeFlow emits towards the WAN (released OOB delay-token ACKs,
  /// AP-constructed TWCC, forwarded client RTCP of optimised flows) goes
  /// through `hook` instead of the wired uplink. Fault injection uses
  /// this to impair exactly the control loop and nothing else; pass an
  /// empty handler to restore the direct path.
  void set_feedback_fault_hook(PacketHandler hook) {
    feedback_fault_hook_ = std::move(hook);
  }

  /// Mark a flow (server->client direction) as an RTC flow to optimise —
  /// the paper's configurable IP list (§7.1).
  void register_rtc_flow(const net::FlowId& flow);

  /// Stop optimising a flow: flush its held feedback (nothing stranded),
  /// then destroy its per-flow state. Returns the number of packets
  /// flushed. Safe to call for unknown flows (returns 0).
  std::size_t unregister_rtc_flow(const net::FlowId& flow);

  /// Simulate an in-place optimiser restart (crash/upgrade): every
  /// per-flow optimiser state is flushed and wiped, then rebuilt fresh
  /// for the still-registered RTC flows. The data path (qdisc, wireless
  /// link) keeps running throughout.
  void restart_optimizer();

  /// The AP's clock jumps by `delta` relative to the rest of the network
  /// (NTP step, firmware reboot). Per-flow state rebases itself.
  void inject_clock_jump(Duration delta);

  /// Flush all held feedback of every optimised flow (end-of-run drain;
  /// the chaos harness asserts zero stranded ACKs afterwards). Returns
  /// packets flushed.
  std::size_t flush_feedback();

  /// Aggregated fail-open statistics across current and past flow
  /// incarnations (restart_optimizer() folds dying flows in).
  struct RobustnessStats {
    std::uint64_t degrades = 0;
    std::uint64_t reactivates = 0;
    std::uint64_t flushed_acks = 0;
    std::uint64_t optimizer_restarts = 0;
    std::uint64_t clock_jumps = 0;
  };
  [[nodiscard]] RobustnessStats robustness() const;

  /// Ladder transitions of every optimised flow, current and retired,
  /// stamped with a stable per-flow key (registration order). Unsorted
  /// across flows; obs::compute_recovery_slo sorts. Observability output
  /// only — never hashed into result fingerprints.
  [[nodiscard]] std::vector<obs::LadderTransition> ladder_log() const;

  /// Feedback packets/fortunes currently held by any optimised flow.
  [[nodiscard]] std::size_t pending_feedback() const {
    std::size_t n = 0;
    for (const auto& [flow, zf] : zhuge_flows_) n += zf->pending_feedback();
    return n;
  }

  [[nodiscard]] queue::Qdisc& downlink_qdisc() { return *qdisc_; }
  [[nodiscard]] core::ZhugeFlow* zhuge_flow(const net::FlowId& flow);
  [[nodiscard]] std::uint64_t uplink_delayed() const { return uplink_delayed_; }
  [[nodiscard]] std::uint64_t uplink_dropped() const { return uplink_dropped_; }
  [[nodiscard]] wireless::WifiLink* wifi_link() { return wifi_link_.get(); }

 private:
  struct Station {
    QdiscKind kind = QdiscKind::kFifo;
    std::unique_ptr<queue::Qdisc> qdisc;
    std::unique_ptr<wireless::WifiLink> link;
    bool active = true;
  };

  void send_feedback(Packet p);
  void retire_flow_stats(const net::FlowId& flow, core::ZhugeFlow& zf);
  void on_qdisc_dequeue(const Packet& p, TimePoint now);
  void on_station_dequeue(Station& st, std::uint32_t ip, const Packet& p,
                          TimePoint now);
  void on_wireless_delivered(const Packet& p, TimePoint now);
  [[nodiscard]] Duration instantaneous_queue_delay(const queue::Qdisc& q,
                                                   TimePoint now) const;

  sim::Simulator& sim_;
  sim::Rng& rng_;
  Config cfg_;
  wireless::Medium& medium_;
  PacketHandler to_client_;  ///< copy shared with every station link
  PacketHandler to_server_;

  std::unique_ptr<queue::Qdisc> qdisc_;
  std::unique_ptr<wireless::WifiLink> wifi_link_;
  std::unique_ptr<wireless::CellularLink> cellular_link_;

  /// Stations keyed by client IP. Ordered map: quiesce/teardown walk this
  /// and emit packets, so iteration order must be platform-stable.
  std::map<std::uint32_t, std::unique_ptr<Station>> stations_;
  std::uint64_t quiesced_drops_ = 0;

  // Ordered maps: teardown/flush/restart walk these and emit packets, so
  // iteration order is part of the simulated outcome and must not depend
  // on a hash function (sweep bit-identity across platforms).
  std::map<net::FlowId, std::unique_ptr<core::ZhugeFlow>> zhuge_flows_;
  std::map<net::FlowId, std::unique_ptr<baseline::FastAck>> fastack_flows_;
  std::set<net::FlowId> rtc_flows_;
  std::unique_ptr<baseline::AbcRouter> abc_router_;
  stats::WindowedRate abc_dequeue_rate_;

  std::uint64_t uplink_delayed_ = 0;
  std::uint64_t uplink_dropped_ = 0;

  /// Fault-injection interposer on the rewritten-feedback path; empty =
  /// feedback goes straight to to_server_.
  PacketHandler feedback_fault_hook_;

  // Fail-open accounting retired from flows destroyed by
  // unregister/restart, so robustness() stays cumulative.
  RobustnessStats retired_stats_;

  /// Stable flow keys for ladder_log() (assigned in registration order;
  /// an unregister/re-register keeps the original key).
  std::map<net::FlowId, std::uint32_t> flow_keys_;
  std::uint32_t next_flow_key_ = 0;
  std::vector<obs::LadderTransition> retired_ladder_log_;
};

}  // namespace zhuge::app
