#include "app/chaos.hpp"

#include <cstdio>
#include <iterator>
#include <utility>

#include "app/spec.hpp"
#include "app/sweep.hpp"

namespace zhuge::app {

namespace {

using fault::Window;
using sim::Duration;
using sim::TimePoint;

TimePoint at(double seconds) {
  return TimePoint::zero() + Duration::from_seconds(seconds);
}

/// Common healthy baseline every case perturbs: RTP/GCC through a Zhuge
/// AP over a steady MCS-7 Wi-Fi channel, 25 s run with a 5 s warmup.
/// MCS mode (no external trace) keeps the suite self-contained.
ScenarioConfig chaos_base(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kRtp;
  cfg.ap.mode = ApMode::kZhuge;
  cfg.ap.qdisc = QdiscKind::kFifo;
  cfg.mcs_index = 7;
  cfg.duration = Duration::seconds(25);
  cfg.warmup = Duration::seconds(5);
  cfg.seed = seed;
  return cfg;
}

ChaosCase make_case(std::string name, std::uint64_t seed, double start_s,
                    double end_s) {
  ChaosCase c;
  c.name = std::move(name);
  c.config = chaos_base(seed);
  c.fault_start = at(start_s);
  c.fault_end = at(end_s);
  return c;
}

}  // namespace

std::vector<ChaosCase> standard_chaos_suite(std::uint64_t seed) {
  std::vector<ChaosCase> suite;

  {  // Downlink wireless blackout: the client vanishes for 1.5 s.
    ChaosCase c = make_case("downlink_blackout", seed, 10.0, 11.5);
    c.config.faults.downlink_wireless.blackouts = {
        Window{c.fault_start, c.fault_end}};
    // 1.5 s of total loss drops every in-flight packet; give GCC's ramp
    // room before judging recovery (same reasoning as uplink_starvation).
    c.config.duration = Duration::seconds(30);
    c.post_settle = Duration::seconds(6);
    suite.push_back(std::move(c));
  }

  {  // Uplink feedback starvation: every client->AP packet dies for 2 s
     // while downlink data keeps flowing. The watchdog MUST fail open.
    ChaosCase c = make_case("uplink_starvation", seed, 10.0, 12.0);
    c.config.faults.uplink_wireless.blackouts = {
        Window{c.fault_start, c.fault_end}};
    c.expect_degrade = true;
    // Two seconds with zero feedback drives GCC to its rate floor; the
    // ramp back is deliberately slow, so judge recovery once it is done.
    c.config.duration = Duration::seconds(35);
    c.post_settle = Duration::seconds(8);
    suite.push_back(std::move(c));
  }

  {  // Gilbert-Elliott burst loss on the WAN downlink for 3 s.
    ChaosCase c = make_case("wan_burst_loss", seed, 10.0, 13.0);
    c.config.faults.downlink_wan.burst =
        fault::GilbertElliott{/*p_enter_bad=*/0.02, /*p_exit_bad=*/0.25,
                              /*loss_good=*/0.0, /*loss_bad=*/0.5};
    c.config.faults.downlink_wan.active = {Window{c.fault_start, c.fault_end}};
    suite.push_back(std::move(c));
  }

  {  // Duplication + reordering on the WAN downlink for 3 s: the in-band
     // updater must still emit strictly monotone AP-built TWCC.
    ChaosCase c = make_case("dup_reorder", seed, 10.0, 13.0);
    c.config.faults.downlink_wan.dup_prob = 0.10;
    c.config.faults.downlink_wan.reorder_prob = 0.10;
    c.config.faults.downlink_wan.reorder_delay = Duration::millis(5);
    c.config.faults.downlink_wan.active = {Window{c.fault_start, c.fault_end}};
    suite.push_back(std::move(c));
  }

  {  // Uplink fade: feedback crosses the wired uplink 60 ms late for 3 s.
    ChaosCase c = make_case("uplink_fade", seed, 10.0, 13.0);
    c.config.faults.uplink_wan.fade_delay = Duration::millis(60);
    c.config.faults.uplink_wan.fades = {Window{c.fault_start, c.fault_end}};
    suite.push_back(std::move(c));
  }

  {  // Mid-flow AP optimiser restart: all ZhugeFlow state wiped at 11 s.
    ChaosCase c = make_case("ap_restart", seed, 11.0, 11.0);
    c.config.faults.ap_restarts = {c.fault_start};
    suite.push_back(std::move(c));
  }

  {  // AP clock steps 300 ms forward at 10.5 s and back at 12 s.
    ChaosCase c = make_case("clock_jump", seed, 10.5, 12.0);
    c.config.faults.clock_jumps = {
        fault::ClockJump{c.fault_start, Duration::millis(300)},
        fault::ClockJump{c.fault_end, Duration::millis(-300)}};
    suite.push_back(std::move(c));
  }

  return suite;
}

ChaosVerdict run_chaos_case(const ChaosCase& c, obs::Attribution* attrib_out) {
  ChaosVerdict v;
  v.name = c.name;

  const ScenarioResult r = run_scenario(c.config);
  if (attrib_out != nullptr) attrib_out->merge(r.attrib);

  // Goodput recovery: compare the steady window just before the fault
  // against the window after the fault cleared and the CCA had 2 s to
  // settle. Both windows avoid warmup and the fault itself.
  const TimePoint pre_from =
      std::max(TimePoint::zero() + c.config.warmup, c.fault_start - Duration::seconds(3));
  const TimePoint post_from = c.fault_end + c.post_settle;
  const TimePoint run_end = TimePoint::zero() + c.config.duration;
  v.pre_fault_goodput_bps =
      r.goodput_series_bps.time_weighted_mean(pre_from, c.fault_start);
  v.post_fault_goodput_bps =
      r.goodput_series_bps.time_weighted_mean(post_from, run_end);
  v.recovery_ratio = v.pre_fault_goodput_bps > 0.0
                         ? v.post_fault_goodput_bps / v.pre_fault_goodput_bps
                         : 0.0;

  v.stranded_acks = r.stranded_acks;
  v.invariant_violations = r.invariant_violations;
  v.degrades = r.robustness.degrades;
  v.reactivates = r.robustness.reactivates;
  v.flushed_acks = r.robustness.flushed_acks + r.flushed_acks_at_end;
  v.fault_drops = r.fault_drops;

  // Recovery SLO from the ladder-transition log plus flow 0's decoded
  // frames (the series carries (decode instant, frame delay) pairs, which
  // is exactly obs::FramePoint).
  obs::SloInputs si;
  si.transitions = r.ladder_log;
  si.fault_start_ns = c.fault_start.count_ns();
  si.fault_end_ns = c.fault_end.count_ns();
  si.run_end_ns = run_end.count_ns();
  si.video_fps = c.config.video.fps;
  si.frames.reserve(r.frame_delay_series_ms.points().size());
  for (const auto& p : r.frame_delay_series_ms.points()) {
    si.frames.push_back(obs::FramePoint{p.t.count_ns(), p.value});
  }
  v.slo = obs::compute_recovery_slo(si);

  if (v.recovery_ratio < c.min_recovery_ratio) {
    v.failure = "goodput did not recover (ratio " +
                std::to_string(v.recovery_ratio) + " < " +
                std::to_string(c.min_recovery_ratio) + ")";
  } else if (v.stranded_acks != 0) {
    v.failure = std::to_string(v.stranded_acks) +
                " feedback packets stranded in Zhuge state";
  } else if (v.invariant_violations != 0) {
    v.failure = std::to_string(v.invariant_violations) +
                " runtime invariant violations";
  } else if (c.expect_degrade && v.degrades == 0) {
    v.failure = "watchdog never failed open under feedback starvation";
  }
  v.passed = v.failure.empty();
  return v;
}

std::string format_verdict(const ChaosVerdict& v) {
  std::string line = (v.passed ? "PASS " : "FAIL ") + v.name + ": goodput " +
                     std::to_string(v.pre_fault_goodput_bps / 1e6) + " -> " +
                     std::to_string(v.post_fault_goodput_bps / 1e6) +
                     " Mbps (ratio " + std::to_string(v.recovery_ratio) +
                     "), degrades=" + std::to_string(v.degrades) +
                     ", reactivates=" + std::to_string(v.reactivates) +
                     ", flushed=" + std::to_string(v.flushed_acks) +
                     ", fault_drops=" + std::to_string(v.fault_drops) +
                     ", invariants=" + std::to_string(v.invariant_violations);
  if (!v.passed) line += " — " + v.failure;
  return line;
}

std::string verdict_json(const ChaosVerdict& v) {
  const auto num = [](double d) { return Json::make_number(d); };
  const auto cnt = [&num](std::uint64_t c) {
    return num(static_cast<double>(c));
  };
  Json o = Json::make_object();
  o.set("name", Json::make_string(v.name));
  o.set("passed", Json::make_bool(v.passed));
  if (!v.failure.empty()) o.set("failure", Json::make_string(v.failure));
  o.set("pre_fault_goodput_bps", num(v.pre_fault_goodput_bps));
  o.set("post_fault_goodput_bps", num(v.post_fault_goodput_bps));
  o.set("recovery_ratio", num(v.recovery_ratio));
  o.set("stranded_acks", cnt(v.stranded_acks));
  o.set("invariant_violations", cnt(v.invariant_violations));
  o.set("degrades", cnt(v.degrades));
  o.set("reactivates", cnt(v.reactivates));
  o.set("flushed_acks", cnt(v.flushed_acks));
  o.set("fault_drops", cnt(v.fault_drops));

  Json slo = Json::make_object();
  slo.set("triggered", Json::make_bool(v.slo.triggered));
  slo.set("recovered", Json::make_bool(v.slo.recovered));
  slo.set("time_to_detect_ms", num(v.slo.time_to_detect_ms));
  slo.set("time_to_recover_ms", num(v.slo.time_to_recover_ms));
  Json dwell = Json::make_object();
  for (std::size_t i = 0; i < obs::kLadderLevelCount; ++i) {
    dwell.set(obs::ladder_level_name(static_cast<obs::LadderLevel>(i)),
              num(v.slo.dwell_ms[i]));
  }
  slo.set("dwell_ms", std::move(dwell));
  slo.set("deepest", Json::make_string(obs::ladder_level_name(v.slo.deepest)));
  slo.set("escalations", cnt(v.slo.escalations));
  slo.set("step_downs", cnt(v.slo.step_downs));
  slo.set("frames_expected_in_transition",
          cnt(v.slo.frames_expected_in_transition));
  slo.set("frames_decoded_in_transition",
          cnt(v.slo.frames_decoded_in_transition));
  slo.set("frames_lost_in_transition", cnt(v.slo.frames_lost_in_transition));
  slo.set("healthy_p95_ms", num(v.slo.healthy_p95_ms));
  slo.set("post_recovery_p95_ms", num(v.slo.post_recovery_p95_ms));
  slo.set("post_over_healthy_p95", num(v.slo.post_over_healthy_p95));
  o.set("slo", std::move(slo));

  // 64-bit hashes do not round-trip through a JSON double; hex string.
  char fp[19];
  std::snprintf(fp, sizeof fp, "%016llx",
                static_cast<unsigned long long>(chaos_verdict_fingerprint(v)));
  o.set("fingerprint", Json::make_string(fp));
  return o.dump();
}

// ---------------------------------------------------------------------------
// Chaos matrix
// ---------------------------------------------------------------------------

std::vector<ChaosCase> chaos_matrix(std::uint64_t seed) {
  struct MatrixCca {
    const char* name;
    Protocol protocol;
    TcpCcaKind tcp;
  };
  // tcp field is unused for the RTP/GCC row.
  static constexpr MatrixCca kCcas[] = {
      {"gcc", Protocol::kRtp, TcpCcaKind::kCubic},
      {"cubic", Protocol::kTcp, TcpCcaKind::kCubic},
      {"bbr", Protocol::kTcp, TcpCcaKind::kBbr},
  };

  struct MatrixProfile {
    const char* name;
    int mcs;
    QdiscKind qdisc;
  };
  static constexpr MatrixProfile kProfiles[] = {
      {"steady", 7, QdiscKind::kFifo},
      {"stressed", 3, QdiscKind::kCoDel},
  };

  // The four feedback-path fault kinds, split across the two control-loop
  // boundaries so the matrix exercises both: total loss and delay spikes
  // hit the client->AP RTCP ingress, duplication and reordering hit the
  // AP-rewritten feedback on its way to the servers.
  enum class FaultKind : std::uint8_t { kLoss, kDup, kReorder, kSpike };
  struct MatrixFault {
    const char* name;
    FaultKind kind;
    double start_s, end_s;     ///< fault window
    double duration_s;         ///< whole-run length
    double settle_s;           ///< post-fault settle before judging goodput
    bool expect_degrade;       ///< the ladder must escalate during the case
  };
  static constexpr MatrixFault kFaults[] = {
      // 2 s of total feedback silence: the watchdog MUST escalate, and the
      // CCA's ramp back from its floor needs the long settle.
      {"fb_loss", FaultKind::kLoss, 10.0, 12.0, 35.0, 8.0, true},
      {"fb_dup", FaultKind::kDup, 10.0, 13.0, 28.0, 4.0, false},
      {"fb_reorder", FaultKind::kReorder, 10.0, 13.0, 28.0, 4.0, false},
      {"fb_spike", FaultKind::kSpike, 10.0, 13.0, 28.0, 4.0, false},
  };

  std::vector<ChaosCase> cases;
  cases.reserve(std::size(kFaults) * std::size(kCcas) * std::size(kProfiles));
  for (const auto& fk : kFaults) {
    for (const auto& cca : kCcas) {
      for (const auto& prof : kProfiles) {
        ChaosCase c = make_case(std::string(fk.name) + "/" + cca.name + "/" +
                                    prof.name,
                                seed, fk.start_s, fk.end_s);
        c.config.protocol = cca.protocol;
        c.config.tcp_cca = cca.tcp;
        c.config.mcs_index = prof.mcs;
        c.config.ap.qdisc = prof.qdisc;
        c.config.duration = Duration::from_seconds(fk.duration_s);
        c.post_settle = Duration::from_seconds(fk.settle_s);
        c.expect_degrade = fk.expect_degrade;
        const Window w{c.fault_start, c.fault_end};
        switch (fk.kind) {
          case FaultKind::kLoss:
            c.config.faults.uplink_rtcp.loss_prob = 1.0;
            c.config.faults.uplink_rtcp.active = {w};
            break;
          case FaultKind::kDup:
            c.config.faults.ap_feedback.dup_prob = 0.3;
            c.config.faults.ap_feedback.active = {w};
            break;
          case FaultKind::kReorder:
            c.config.faults.ap_feedback.reorder_prob = 0.3;
            c.config.faults.ap_feedback.reorder_delay = Duration::millis(10);
            c.config.faults.ap_feedback.active = {w};
            break;
          case FaultKind::kSpike:
            c.config.faults.uplink_rtcp.spike_prob = 0.9;
            c.config.faults.uplink_rtcp.spike_delay = Duration::millis(120);
            c.config.faults.uplink_rtcp.active = {w};
            break;
        }
        cases.push_back(std::move(c));
      }
    }
  }
  return cases;
}

std::uint64_t chaos_verdict_fingerprint(const ChaosVerdict& v) {
  Fnv f;
  f.bytes(v.name.data(), v.name.size());
  f.u64(v.passed ? 1 : 0);
  f.f64(v.pre_fault_goodput_bps);
  f.f64(v.post_fault_goodput_bps);
  f.f64(v.recovery_ratio);
  f.u64(v.stranded_acks);
  f.u64(v.invariant_violations);
  f.u64(v.degrades);
  f.u64(v.reactivates);
  f.u64(v.flushed_acks);
  f.u64(v.fault_drops);
  const obs::RecoverySlo& s = v.slo;
  f.u64(s.triggered ? 1 : 0);
  f.u64(s.recovered ? 1 : 0);
  f.f64(s.time_to_detect_ms);
  f.f64(s.time_to_recover_ms);
  for (const double d : s.dwell_ms) f.f64(d);
  f.u64(static_cast<std::uint64_t>(s.deepest));
  f.u64(s.escalations);
  f.u64(s.step_downs);
  f.u64(s.frames_expected_in_transition);
  f.u64(s.frames_decoded_in_transition);
  f.u64(s.frames_lost_in_transition);
  f.f64(s.healthy_p95_ms);
  f.f64(s.post_recovery_p95_ms);
  f.f64(s.post_over_healthy_p95);
  return f.h;
}

ChaosMatrixResult run_chaos_matrix(const std::vector<ChaosCase>& cases,
                                   unsigned threads) {
  ChaosMatrixResult out;
  out.verdicts.resize(cases.size());
  {
    // The obs registries (metrics, tracer, invariants, attrib) are shared
    // and unsynchronized; freeze them exactly like the sweep pools do so
    // a run observes the same global state serially or under the pool.
    ObsFreeze freeze;
    run_indexed_pool(cases.size(), threads, [&](std::size_t i) {
      out.verdicts[i] = run_chaos_case(cases[i]);
    });
  }
  // Aggregation is serial and in grid order regardless of which worker
  // finished first, so the fingerprint and the SLO rows are stable.
  Fnv chain;
  for (const auto& v : out.verdicts) {
    chain.u64(chaos_verdict_fingerprint(v));
    out.slo.add(v.name, v.slo);
    if (!v.passed) ++out.failed;
  }
  out.fingerprint = chain.h;
  return out;
}

}  // namespace zhuge::app
