#include "app/chaos.hpp"

#include <utility>

namespace zhuge::app {

namespace {

using fault::Window;
using sim::Duration;
using sim::TimePoint;

TimePoint at(double seconds) {
  return TimePoint::zero() + Duration::from_seconds(seconds);
}

/// Common healthy baseline every case perturbs: RTP/GCC through a Zhuge
/// AP over a steady MCS-7 Wi-Fi channel, 25 s run with a 5 s warmup.
/// MCS mode (no external trace) keeps the suite self-contained.
ScenarioConfig chaos_base(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kRtp;
  cfg.ap.mode = ApMode::kZhuge;
  cfg.ap.qdisc = QdiscKind::kFifo;
  cfg.mcs_index = 7;
  cfg.duration = Duration::seconds(25);
  cfg.warmup = Duration::seconds(5);
  cfg.seed = seed;
  return cfg;
}

ChaosCase make_case(std::string name, std::uint64_t seed, double start_s,
                    double end_s) {
  ChaosCase c;
  c.name = std::move(name);
  c.config = chaos_base(seed);
  c.fault_start = at(start_s);
  c.fault_end = at(end_s);
  return c;
}

}  // namespace

std::vector<ChaosCase> standard_chaos_suite(std::uint64_t seed) {
  std::vector<ChaosCase> suite;

  {  // Downlink wireless blackout: the client vanishes for 1.5 s.
    ChaosCase c = make_case("downlink_blackout", seed, 10.0, 11.5);
    c.config.faults.downlink_wireless.blackouts = {
        Window{c.fault_start, c.fault_end}};
    // 1.5 s of total loss drops every in-flight packet; give GCC's ramp
    // room before judging recovery (same reasoning as uplink_starvation).
    c.config.duration = Duration::seconds(30);
    c.post_settle = Duration::seconds(6);
    suite.push_back(std::move(c));
  }

  {  // Uplink feedback starvation: every client->AP packet dies for 2 s
     // while downlink data keeps flowing. The watchdog MUST fail open.
    ChaosCase c = make_case("uplink_starvation", seed, 10.0, 12.0);
    c.config.faults.uplink_wireless.blackouts = {
        Window{c.fault_start, c.fault_end}};
    c.expect_degrade = true;
    // Two seconds with zero feedback drives GCC to its rate floor; the
    // ramp back is deliberately slow, so judge recovery once it is done.
    c.config.duration = Duration::seconds(35);
    c.post_settle = Duration::seconds(8);
    suite.push_back(std::move(c));
  }

  {  // Gilbert-Elliott burst loss on the WAN downlink for 3 s.
    ChaosCase c = make_case("wan_burst_loss", seed, 10.0, 13.0);
    c.config.faults.downlink_wan.burst =
        fault::GilbertElliott{/*p_enter_bad=*/0.02, /*p_exit_bad=*/0.25,
                              /*loss_good=*/0.0, /*loss_bad=*/0.5};
    c.config.faults.downlink_wan.active = {Window{c.fault_start, c.fault_end}};
    suite.push_back(std::move(c));
  }

  {  // Duplication + reordering on the WAN downlink for 3 s: the in-band
     // updater must still emit strictly monotone AP-built TWCC.
    ChaosCase c = make_case("dup_reorder", seed, 10.0, 13.0);
    c.config.faults.downlink_wan.dup_prob = 0.10;
    c.config.faults.downlink_wan.reorder_prob = 0.10;
    c.config.faults.downlink_wan.reorder_delay = Duration::millis(5);
    c.config.faults.downlink_wan.active = {Window{c.fault_start, c.fault_end}};
    suite.push_back(std::move(c));
  }

  {  // Uplink fade: feedback crosses the wired uplink 60 ms late for 3 s.
    ChaosCase c = make_case("uplink_fade", seed, 10.0, 13.0);
    c.config.faults.uplink_wan.fade_delay = Duration::millis(60);
    c.config.faults.uplink_wan.fades = {Window{c.fault_start, c.fault_end}};
    suite.push_back(std::move(c));
  }

  {  // Mid-flow AP optimiser restart: all ZhugeFlow state wiped at 11 s.
    ChaosCase c = make_case("ap_restart", seed, 11.0, 11.0);
    c.config.faults.ap_restarts = {c.fault_start};
    suite.push_back(std::move(c));
  }

  {  // AP clock steps 300 ms forward at 10.5 s and back at 12 s.
    ChaosCase c = make_case("clock_jump", seed, 10.5, 12.0);
    c.config.faults.clock_jumps = {
        fault::ClockJump{c.fault_start, Duration::millis(300)},
        fault::ClockJump{c.fault_end, Duration::millis(-300)}};
    suite.push_back(std::move(c));
  }

  return suite;
}

ChaosVerdict run_chaos_case(const ChaosCase& c, obs::Attribution* attrib_out) {
  ChaosVerdict v;
  v.name = c.name;

  const ScenarioResult r = run_scenario(c.config);
  if (attrib_out != nullptr) attrib_out->merge(r.attrib);

  // Goodput recovery: compare the steady window just before the fault
  // against the window after the fault cleared and the CCA had 2 s to
  // settle. Both windows avoid warmup and the fault itself.
  const TimePoint pre_from =
      std::max(TimePoint::zero() + c.config.warmup, c.fault_start - Duration::seconds(3));
  const TimePoint post_from = c.fault_end + c.post_settle;
  const TimePoint run_end = TimePoint::zero() + c.config.duration;
  v.pre_fault_goodput_bps =
      r.goodput_series_bps.time_weighted_mean(pre_from, c.fault_start);
  v.post_fault_goodput_bps =
      r.goodput_series_bps.time_weighted_mean(post_from, run_end);
  v.recovery_ratio = v.pre_fault_goodput_bps > 0.0
                         ? v.post_fault_goodput_bps / v.pre_fault_goodput_bps
                         : 0.0;

  v.stranded_acks = r.stranded_acks;
  v.invariant_violations = r.invariant_violations;
  v.degrades = r.robustness.degrades;
  v.reactivates = r.robustness.reactivates;
  v.flushed_acks = r.robustness.flushed_acks + r.flushed_acks_at_end;
  v.fault_drops = r.fault_drops;

  if (v.recovery_ratio < c.min_recovery_ratio) {
    v.failure = "goodput did not recover (ratio " +
                std::to_string(v.recovery_ratio) + " < " +
                std::to_string(c.min_recovery_ratio) + ")";
  } else if (v.stranded_acks != 0) {
    v.failure = std::to_string(v.stranded_acks) +
                " feedback packets stranded in Zhuge state";
  } else if (v.invariant_violations != 0) {
    v.failure = std::to_string(v.invariant_violations) +
                " runtime invariant violations";
  } else if (c.expect_degrade && v.degrades == 0) {
    v.failure = "watchdog never failed open under feedback starvation";
  }
  v.passed = v.failure.empty();
  return v;
}

std::string format_verdict(const ChaosVerdict& v) {
  std::string line = (v.passed ? "PASS " : "FAIL ") + v.name + ": goodput " +
                     std::to_string(v.pre_fault_goodput_bps / 1e6) + " -> " +
                     std::to_string(v.post_fault_goodput_bps / 1e6) +
                     " Mbps (ratio " + std::to_string(v.recovery_ratio) +
                     "), degrades=" + std::to_string(v.degrades) +
                     ", reactivates=" + std::to_string(v.reactivates) +
                     ", flushed=" + std::to_string(v.flushed_acks) +
                     ", fault_drops=" + std::to_string(v.fault_drops) +
                     ", invariants=" + std::to_string(v.invariant_violations);
  if (!v.passed) line += " — " + v.failure;
  return line;
}

}  // namespace zhuge::app
