#pragma once
// Paper evaluation matrix: the baseline tournament behind the headline
// claim (§7.3 / Figs. 11–13): Zhuge's shortened control loop vs the
// endpoint-loop baselines, crossed over sender CCAs, wireless trace
// classes, and station densities.
//
// An EvalSpec is a declarative axis product — mechanisms {vanilla, zhuge,
// fastack, abc} x CCAs {gcc, cubic, bbr} x trace classes W1/W2/C1–C3 x
// station densities — that expands into one ScenarioSpec per cell on the
// multi-station engine. Cells run on the shared indexed pool; each cell's
// verdict (frame-delay CDF, p95/p99 tails, delayed-frame ratio, stall
// rate, RTT tails, goodput) is fingerprinted independently inside the
// pool and chained serially in grid order afterwards, so the matrix
// fingerprint is bit-identical for any thread count — the same contract
// as the chaos matrix.
//
// Headline comparisons (Zhuge p95 frame delay < vanilla p95 per trace
// class) are derived from the cells and pinned as golden anchors under
// the `repro` ctest label; tools/eval_run packages the whole thing as
// "does this repo still match the paper" in one command.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "app/golden.hpp"
#include "app/spec.hpp"
#include "app/sweep.hpp"
#include "trace/synthetic.hpp"

namespace zhuge::app {

/// Sender-side CCA columns of the matrix. GCC is the RTP/RTC workload;
/// CUBIC and BBR are the TCP workloads of Fig. 12/15.
enum class EvalCca : std::uint8_t { kGcc, kCubic, kBbr };

[[nodiscard]] const char* to_string(EvalCca cca);

/// Mechanism row name; ApMode::kNone is spelled "vanilla" in eval context.
[[nodiscard]] const char* eval_mechanism_name(ApMode mode);

/// Declarative evaluation matrix. The defaults reproduce the paper's full
/// tournament; tools/eval_run can load a narrowed spec from JSON
/// (strictly validated — a typo'd axis would silently shrink the matrix
/// while claiming full coverage, so unknown keys and bad axis values fail
/// with line-numbered errors).
struct EvalSpec {
  std::string name = "paper_matrix";
  double duration_s = 10.0;
  double warmup_s = 2.0;
  std::uint64_t seed = 1;
  double max_bitrate_mbps = 2.5;
  double fps = 30.0;
  std::vector<ApMode> mechanisms{ApMode::kNone, ApMode::kZhuge,
                                 ApMode::kFastAck, ApMode::kAbc};
  std::vector<EvalCca> ccas{EvalCca::kGcc, EvalCca::kCubic, EvalCca::kBbr};
  std::vector<trace::TraceKind> traces{
      trace::TraceKind::kRestaurantWifi, trace::TraceKind::kOfficeWifi,
      trace::TraceKind::kIndoorMixed45G, trace::TraceKind::kCity4G,
      trace::TraceKind::kCity5G};
  std::vector<int> densities{1, 4};
};

/// Parse / load an EvalSpec JSON document. Strict: unknown keys, unknown
/// axis values, and out-of-range numbers fail with "line N: ..." errors.
[[nodiscard]] std::optional<EvalSpec> parse_eval_spec(std::string_view text,
                                                      std::string* err);
[[nodiscard]] std::optional<EvalSpec> load_eval_spec(const std::string& path,
                                                     std::string* err);

/// One expanded matrix cell: the axis point plus the concrete ScenarioSpec
/// it runs. `mechanism_active` is false for combinations where the AP
/// mechanism cannot act on the workload (fastack/abc under GCC: both
/// operate on TCP only) — those cells run anyway as explicit vanilla
/// controls, never silently skipped, and the report flags them.
struct EvalCellSpec {
  std::string name;  ///< "W1/gcc/zhuge/d4"
  ApMode mechanism = ApMode::kNone;
  EvalCca cca = EvalCca::kGcc;
  trace::TraceKind trace = trace::TraceKind::kRestaurantWifi;
  int density = 1;
  bool mechanism_active = false;
  ScenarioSpec scenario;
};

/// Expand the axis product into cells, axes varying slowest-to-fastest in
/// declaration order (trace, cca, mechanism, density). Under ap_mode
/// "abc" the TCP workload runs cooperating tcp_abc senders (ABC replaces
/// the host stack; that is the paper's point about it needing host
/// changes).
[[nodiscard]] std::vector<EvalCellSpec> expand_eval_matrix(const EvalSpec& spec);

/// Frame-delay CDF decile grid (p10..p90), fixed so reports and their
/// round-trips agree on the shape.
inline constexpr int kEvalCdfDeciles = 9;

/// One judged cell. All numeric fields are part of the cell fingerprint.
struct EvalCell {
  std::string name;
  std::string mechanism;  ///< "vanilla"|"zhuge"|"fastack"|"abc"
  std::string cca;        ///< "gcc"|"cubic"|"bbr"
  std::string trace;      ///< "W1"|...
  int density = 1;
  bool mechanism_active = false;
  /// Frame-delay CDF deciles p10..p90 in ms (kEvalCdfDeciles entries).
  std::vector<double> frame_delay_cdf_ms;
  double frame_delay_p50_ms = 0.0;
  double frame_delay_p95_ms = 0.0;
  double frame_delay_p99_ms = 0.0;
  double delayed_frame_ratio = 0.0;  ///< P(frame delay > 400 ms), Fig. 11
  double stall_rate = 0.0;           ///< 1 - frames_decoded / frames_sent
  double rtt_p50_ms = 0.0;
  double rtt_p95_ms = 0.0;
  double goodput_bps = 0.0;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_decoded = 0;
  std::uint64_t result_fingerprint = 0;  ///< full multi_result_fingerprint
  std::uint64_t fingerprint = 0;         ///< cell verdict fingerprint
};

/// FNV-1a64 over the cell name and the bit patterns of every numeric
/// field above (including the full-result fingerprint, so any behavioural
/// drift anywhere in the stack flips the cell).
[[nodiscard]] std::uint64_t eval_cell_fingerprint(const EvalCell& cell);

/// One headline comparison: the paper's claim instantiated on a
/// (trace, cca, density) point where both a zhuge and a vanilla cell ran.
struct EvalHeadline {
  std::string name;          ///< "W1/gcc/d4"
  double zhuge_p95_ms = 0.0;
  double vanilla_p95_ms = 0.0;
  bool zhuge_wins = false;   ///< zhuge p95 < vanilla p95
};

struct EvalMatrixResult {
  std::vector<EvalCell> cells;        ///< grid order
  std::vector<EvalHeadline> headline; ///< grid order over comparable points
  std::uint64_t fingerprint = 0;      ///< chained cell fingerprints
};

/// Run every cell on the indexed pool (obs frozen) and chain the cell
/// fingerprints serially in grid order. Bit-identical for any `threads`.
[[nodiscard]] EvalMatrixResult run_eval_matrix(
    const std::vector<EvalCellSpec>& cells, unsigned threads);

// ---------------------------------------------------------------------------
// Figure-oriented reports
// ---------------------------------------------------------------------------

void write_eval_report_text(const EvalMatrixResult& res, std::ostream& out);
/// CSV with %.17g doubles so every value round-trips bit-exactly.
void write_eval_report_csv(const EvalMatrixResult& res, std::ostream& out);
[[nodiscard]] Json eval_report_to_json(const EvalMatrixResult& res);
/// Inverse of eval_report_to_json (fingerprints included), for round-trip
/// tests and downstream tooling.
[[nodiscard]] std::optional<EvalMatrixResult> eval_report_from_json(
    const Json& j, std::string* err);

// ---------------------------------------------------------------------------
// Golden anchors (repro suite)
// ---------------------------------------------------------------------------

/// The pinned headline cells: Zhuge p95 frame delay < vanilla p95 on the
/// W1 and C1 trace classes (GCC workload, anchor density).
[[nodiscard]] std::vector<std::string> eval_golden_names();

/// Run the two cells behind `name` ("eval_w1_gcc" / "eval_c1_gcc")
/// serially and package them as a GoldenRecord: fingerprint = chained
/// matrix fingerprint, headline = the p95 pair, the win verdict, and the
/// delayed-frame ratios. nullopt for unknown names.
[[nodiscard]] std::optional<GoldenRecord> compute_eval_golden(
    const std::string& name);

}  // namespace zhuge::app
