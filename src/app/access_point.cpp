#include "app/access_point.hpp"

#include <vector>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace zhuge::app {

namespace {

std::unique_ptr<queue::Qdisc> make_qdisc(QdiscKind kind, std::int64_t limit) {
  switch (kind) {
    case QdiscKind::kFifo:
      return std::make_unique<queue::DropTailFifo>(limit);
    case QdiscKind::kCoDel: {
      queue::CoDelConfig cfg;
      cfg.limit_bytes = limit;
      return std::make_unique<queue::CoDel>(cfg);
    }
    case QdiscKind::kFqCoDel: {
      queue::FqCoDel::Config cfg;
      cfg.codel.limit_bytes = limit;
      cfg.total_limit_bytes = limit;
      return std::make_unique<queue::FqCoDel>(cfg);
    }
  }
  return nullptr;
}

}  // namespace

AccessPoint::AccessPoint(sim::Simulator& simulator, sim::Rng& rng,
                         wireless::Channel& channel, wireless::Medium& medium,
                         Config cfg, PacketHandler to_client,
                         PacketHandler to_server)
    : sim_(simulator),
      rng_(rng),
      cfg_(cfg),
      medium_(medium),
      to_client_(std::move(to_client)),
      to_server_(std::move(to_server)),
      qdisc_(make_qdisc(cfg.qdisc, cfg.queue_limit_bytes)),
      abc_dequeue_rate_(Duration::millis(200)) {
  if (cfg_.link == LinkKind::kWifi) {
    wifi_link_ = std::make_unique<wireless::WifiLink>(
        sim_, rng_, channel, medium, *qdisc_, cfg_.wifi, to_client_);
    wifi_link_->set_dequeue_observer(
        [this](const Packet& p, TimePoint now) { on_qdisc_dequeue(p, now); });
    wifi_link_->set_delivery_observer([this](const Packet& p, TimePoint now) {
      on_wireless_delivered(p, now);
    });
  } else {
    cellular_link_ = std::make_unique<wireless::CellularLink>(
        sim_, rng_, channel, *qdisc_, cfg_.cellular, to_client_);
    cellular_link_->set_dequeue_observer(
        [this](const Packet& p, TimePoint now) { on_qdisc_dequeue(p, now); });
    cellular_link_->set_delivery_observer([this](const Packet& p, TimePoint now) {
      on_wireless_delivered(p, now);
    });
  }
  if (cfg_.mode == ApMode::kAbc) {
    abc_router_ = std::make_unique<baseline::AbcRouter>(cfg_.abc);
  }
}

void AccessPoint::register_station(std::uint32_t ip, wireless::Channel& channel,
                                   const StationConfig& scfg) {
  auto st = std::make_unique<Station>();
  st->kind = scfg.qdisc;
  st->qdisc = make_qdisc(scfg.qdisc, scfg.queue_limit_bytes);
  st->link = std::make_unique<wireless::WifiLink>(
      sim_, rng_, channel, medium_, *st->qdisc, scfg.wifi, to_client_);
  Station* raw = st.get();
  st->link->set_dequeue_observer([this, raw, ip](const Packet& p, TimePoint now) {
    on_station_dequeue(*raw, ip, p, now);
  });
  st->link->set_delivery_observer([this](const Packet& p, TimePoint now) {
    on_wireless_delivered(p, now);
  });
  stations_[ip] = std::move(st);
  ZHUGE_METRIC_INC("ap.station_registered");
  ZHUGE_TRACE(sim_.now(), "ap", "register_station", {"ip", double(ip)});
}

std::size_t AccessPoint::unregister_station(std::uint32_t ip) {
  const auto it = stations_.find(ip);
  if (it == stations_.end() || !it->second->active) return 0;
  Station& st = *it->second;
  st.active = false;
  // Flush optimiser state for every flow routed at this station. Collect
  // first: unregister_rtc_flow mutates the set being walked.
  std::vector<net::FlowId> victims;
  for (const auto& flow : rtc_flows_) {
    if (flow.dst_ip == ip) victims.push_back(flow);
  }
  std::size_t flushed = 0;
  for (const auto& flow : victims) flushed += unregister_rtc_flow(flow);
  // Drop whatever is still queued. Dequeueing directly bypasses the link's
  // observer, so no Fortune Teller sees these as departures.
  std::size_t dropped = 0;
  while (st.qdisc->dequeue(sim_.now()).has_value()) ++dropped;
  quiesced_drops_ += dropped;
  ZHUGE_METRIC_INC("ap.station_unregistered");
  ZHUGE_TRACE(sim_.now(), "ap", "unregister_station", {"ip", double(ip)},
              {"flushed", double(flushed)}, {"dropped", double(dropped)});
  return flushed;
}

wireless::WifiLink* AccessPoint::station_link(std::uint32_t ip) {
  const auto it = stations_.find(ip);
  return it == stations_.end() ? nullptr : it->second->link.get();
}

std::size_t AccessPoint::active_station_count() const {
  std::size_t n = 0;
  for (const auto& [ip, st] : stations_) n += st->active ? 1 : 0;
  return n;
}

void AccessPoint::send_feedback(Packet p) {
  if (feedback_fault_hook_) {
    feedback_fault_hook_(std::move(p));
  } else {
    to_server_(std::move(p));
  }
}

void AccessPoint::register_rtc_flow(const net::FlowId& flow) {
  rtc_flows_.insert(flow);
  flow_keys_.emplace(flow, next_flow_key_);
  if (flow_keys_.size() > next_flow_key_) ++next_flow_key_;
  if (cfg_.mode == ApMode::kZhuge) {
    zhuge_flows_.emplace(
        flow, std::make_unique<core::ZhugeFlow>(
                  sim_, rng_, flow, cfg_.zhuge,
                  [this](Packet p) { send_feedback(std::move(p)); }));
  } else if (cfg_.mode == ApMode::kFastAck) {
    fastack_flows_.emplace(flow,
                           std::make_unique<baseline::FastAck>(cfg_.fastack));
  }
}

core::ZhugeFlow* AccessPoint::zhuge_flow(const net::FlowId& flow) {
  const auto it = zhuge_flows_.find(flow);
  return it == zhuge_flows_.end() ? nullptr : it->second.get();
}

void AccessPoint::retire_flow_stats(const net::FlowId& flow,
                                    core::ZhugeFlow& zf) {
  retired_stats_.degrades += zf.degrade_count();
  retired_stats_.reactivates += zf.reactivate_count();
  retired_stats_.flushed_acks += zf.flushed_on_teardown();
  const auto key_it = flow_keys_.find(flow);
  const std::uint32_t key =
      key_it != flow_keys_.end() ? key_it->second : 0xffffffffu;
  for (obs::LadderTransition t : zf.ladder_log()) {
    t.flow_key = key;
    retired_ladder_log_.push_back(t);
  }
}

std::size_t AccessPoint::unregister_rtc_flow(const net::FlowId& flow) {
  rtc_flows_.erase(flow);
  fastack_flows_.erase(flow);
  std::size_t flushed = 0;
  if (const auto it = zhuge_flows_.find(flow); it != zhuge_flows_.end()) {
    flushed = it->second->teardown();
    retire_flow_stats(flow, *it->second);
    zhuge_flows_.erase(it);
    ZHUGE_METRIC_INC("ap.flow_unregistered");
    ZHUGE_TRACE(sim_.now(), "ap", "unregister_flow",
                {"flushed", double(flushed)});
  }
  return flushed;
}

void AccessPoint::restart_optimizer() {
  ++retired_stats_.optimizer_restarts;
  std::size_t flushed = 0;
  for (auto& [flow, zf] : zhuge_flows_) {
    flushed += zf->teardown();
    retire_flow_stats(flow, *zf);
  }
  zhuge_flows_.clear();
  fastack_flows_.clear();
  for (const auto& flow : rtc_flows_) {
    if (cfg_.mode == ApMode::kZhuge) {
      zhuge_flows_.emplace(
          flow, std::make_unique<core::ZhugeFlow>(
                    sim_, rng_, flow, cfg_.zhuge,
                    [this](Packet p) { send_feedback(std::move(p)); }));
    } else if (cfg_.mode == ApMode::kFastAck) {
      fastack_flows_.emplace(flow,
                             std::make_unique<baseline::FastAck>(cfg_.fastack));
    }
  }
  ZHUGE_METRIC_INC("ap.optimizer_restarts");
  ZHUGE_TRACE(sim_.now(), "ap", "optimizer_restart",
              {"flows", double(rtc_flows_.size())},
              {"flushed", double(flushed)});
}

void AccessPoint::inject_clock_jump(Duration delta) {
  ++retired_stats_.clock_jumps;
  for (auto& [flow, zf] : zhuge_flows_) zf->on_clock_jump(delta);
  ZHUGE_METRIC_INC("ap.clock_jumps");
  ZHUGE_TRACE(sim_.now(), "ap", "clock_jump", {"delta_ms", delta.to_millis()});
}

std::size_t AccessPoint::flush_feedback() {
  std::size_t flushed = 0;
  for (auto& [flow, zf] : zhuge_flows_) flushed += zf->teardown();
  return flushed;
}

AccessPoint::RobustnessStats AccessPoint::robustness() const {
  RobustnessStats s = retired_stats_;
  for (const auto& [flow, zf] : zhuge_flows_) {
    s.degrades += zf->degrade_count();
    s.reactivates += zf->reactivate_count();
    s.flushed_acks += zf->flushed_on_teardown();
  }
  return s;
}

std::vector<obs::LadderTransition> AccessPoint::ladder_log() const {
  std::vector<obs::LadderTransition> log = retired_ladder_log_;
  for (const auto& [flow, zf] : zhuge_flows_) {
    const auto key_it = flow_keys_.find(flow);
    const std::uint32_t key =
        key_it != flow_keys_.end() ? key_it->second : 0xffffffffu;
    for (obs::LadderTransition t : zf->ladder_log()) {
      t.flow_key = key;
      log.push_back(t);
    }
  }
  return log;
}

Duration AccessPoint::instantaneous_queue_delay(const queue::Qdisc& q,
                                                TimePoint now) const {
  // `q` is the qdisc the marked packet is about to enter (a station's own
  // queue when routed, the default link's otherwise); the dequeue rate is
  // the AP-wide aggregate, which is what ABC's router-side token rate
  // tracks on a shared airtime medium.
  const double rate = const_cast<stats::WindowedRate&>(abc_dequeue_rate_)
                          .rate_bps(now)
                          .value_or(10e6);
  return Duration::from_seconds(static_cast<double>(q.byte_count()) * 8.0 /
                                std::max(rate, 1e3));
}

void AccessPoint::from_wan(Packet p) {
  const TimePoint now = sim_.now();
  ZHUGE_METRIC_INC("ap.downlink_packets");
  // Station routing: a registered station's traffic goes through its own
  // qdisc + wireless link; everything else uses the default downlink.
  Station* st = nullptr;
  if (!stations_.empty()) {
    if (const auto it = stations_.find(p.flow.dst_ip); it != stations_.end()) {
      st = it->second.get();
      if (!st->active) {
        // Quiesced station: the client left the network; its traffic
        // black-holes exactly like a real AP's for a deassociated STA.
        ++quiesced_drops_;
        return;
      }
    }
  }
  queue::Qdisc& dl_qdisc = st != nullptr ? *st->qdisc : *qdisc_;
  if (abc_router_ != nullptr && p.is_tcp() && !p.tcp().is_ack) {
    p.tcp().abc_mark = abc_router_->mark(
        p.size_bytes, instantaneous_queue_delay(dl_qdisc, now), now);
  }
  core::ZhugeFlow* zf = zhuge_flow(p.flow);
  Duration predicted = Duration::zero();
  const bool is_rtp = p.is_rtp();
  net::RtpHeader rtp_copy;
  if (zf != nullptr) {
    predicted = zf->predict_downlink(p, dl_qdisc);
    if (is_rtp) rtp_copy = p.rtp();
    // Event-driven fail-open check: a downlink packet arriving while the
    // uplink has been silent is exactly the evidence the watchdog needs.
    zf->check_watchdog(now);
  }
  const bool accepted = st != nullptr      ? st->link->offer(std::move(p))
                        : wifi_link_ != nullptr
                            ? wifi_link_->offer(std::move(p))
                            : cellular_link_->offer(std::move(p));
  // Tail-dropped packets are never reported as received: the AP witnesses
  // the drop, so the loss stays visible to the sender.
  if (zf != nullptr && accepted) {
    zf->commit_downlink(is_rtp, is_rtp ? &rtp_copy : nullptr, predicted);
  }
}

void AccessPoint::on_qdisc_dequeue(const Packet& p, TimePoint now) {
  abc_dequeue_rate_.record(now, p.size_bytes);
  if (cfg_.qdisc == QdiscKind::kFqCoDel) {
    // Per-flow sub-queues: each Fortune Teller observes only its own
    // flow's departures (§4's "calculation with queue disciplines").
    if (auto* zf = zhuge_flow(p.flow); zf != nullptr) {
      zf->on_dequeue(p, now, qdisc_->byte_count_flow(p.flow) == 0);
    }
    return;
  }
  // Shared FIFO/CoDel queue: a packet's qLong is the *whole* queue drained
  // at the *total* dequeue rate, so every registered teller must see every
  // departure — feeding each teller only its own flow's departures would
  // overestimate delays in competition (whole-queue bytes divided by a
  // single flow's share of the rate).
  const bool empty_after = qdisc_->byte_count() == 0;
  for (auto& [flow, zf] : zhuge_flows_) {
    zf->on_dequeue(p, now, empty_after);
  }
}

void AccessPoint::on_station_dequeue(Station& st, std::uint32_t ip,
                                     const Packet& p, TimePoint now) {
  // Station departures feed the same aggregate dequeue-rate window as the
  // default link's: the ABC router's queue-delay estimate must see the
  // multi-station path too. Only read when mode == kAbc, so recording it
  // unconditionally cannot perturb other modes' results.
  abc_dequeue_rate_.record(now, p.size_bytes);
  if (st.kind == QdiscKind::kFqCoDel) {
    if (auto* zf = zhuge_flow(p.flow); zf != nullptr) {
      zf->on_dequeue(p, now, st.qdisc->byte_count_flow(p.flow) == 0);
    }
    return;
  }
  // Shared per-station queue: every teller whose flow rides this station
  // must see every departure of this station's queue (same whole-queue
  // semantics as the single-client path, scoped to the station).
  const bool empty_after = st.qdisc->byte_count() == 0;
  for (auto& [flow, zf] : zhuge_flows_) {
    if (flow.dst_ip == ip) zf->on_dequeue(p, now, empty_after);
  }
}

void AccessPoint::on_wireless_delivered(const Packet& p, TimePoint now) {
  const auto it = fastack_flows_.find(p.flow);
  if (it == fastack_flows_.end()) return;
  if (auto ack = it->second->on_wireless_delivered(p, now, p.uid ^ (1ULL << 63));
      ack.has_value()) {
    to_server_(std::move(*ack));
  }
}

void AccessPoint::from_client(Packet p) {
  // FastAck: suppress the client's own pure ACKs for optimised flows.
  if (cfg_.mode == ApMode::kFastAck &&
      fastack_flows_.count(p.flow.reversed()) > 0 &&
      baseline::FastAck::should_drop_uplink(p)) {
    ++uplink_dropped_;
    return;
  }
  // Zhuge: the uplink handling for the reverse flow (drop a client TWCC,
  // hold an out-of-band ACK on the retreatable release queue, or pass).
  if (auto* zf = zhuge_flow(p.flow.reversed()); zf != nullptr) {
    const auto action = zf->handle_uplink(std::move(p));
    zf->check_watchdog(sim_.now());
    switch (action) {
      case core::UplinkAction::kDrop:
        ++uplink_dropped_;
        ZHUGE_METRIC_INC("ap.uplink_dropped");
        break;
      case core::UplinkAction::kDelay:
        ++uplink_delayed_;
        ZHUGE_METRIC_INC("ap.uplink_delayed");
        break;
      case core::UplinkAction::kForward:
        ZHUGE_METRIC_INC("ap.uplink_forwarded");
        break;
    }
    return;
  }
  to_server_(std::move(p));
}

}  // namespace zhuge::app
