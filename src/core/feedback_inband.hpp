#pragma once
// Zhuge Feedback Updater — in-band protocols (§5.3).
//
// For RTP/RTCP the receiver writes per-packet arrival timestamps into TWCC
// feedback packets. Zhuge instead:
//   Step 1 — on every downlink RTP packet, records (twcc_seq,
//            predicted_recv_time = now + totalDelay) on the AP clock;
//   Step 2 — periodically constructs a TWCC feedback packet itself from
//            the recorded fortunes and sends it straight up the (wired)
//            WAN path, while dropping the client's own TWCC packets to
//            keep the sender's timestamp stream consistent.
// Other RTCP (NACK, receiver reports) passes through untouched. Timestamps
// all come from one AP clock, so the sender's delta-based CCA (GCC) needs
// no synchronisation — exactly the argument of §5.3.
//
// Robustness contract (chaos-tested):
//  * entries are sorted and deduped by unwrapped TWCC sequence before a
//    feedback packet is built, so duplicated / reordered downlink RTP
//    after a fault cannot produce a non-monotone AP-built TWCC
//    (checked: feedback.twcc_monotone);
//  * the flush timer is cancelled on destruction — a flow torn down
//    mid-run (AP restart) must not leave a dangling callback;
//  * flush_now() / reset_after_outage() let the owner drain or wipe state
//    at teardown and across outages, and on_clock_jump() rebases the
//    monotone reported-receive clamp after a clock discontinuity.

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>

#include "net/packet.hpp"
#include "net/seq.hpp"
#include "obs/invariants.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace zhuge::core {

using net::Packet;
using sim::Duration;
using sim::TimePoint;

/// Configuration for the in-band updater.
struct InbandConfig {
  Duration feedback_interval = Duration::millis(25);  ///< TWCC send period
  std::size_t max_entries_per_feedback = 128;
  std::uint32_t feedback_packet_bytes = 80;  ///< wire size of built TWCC
};

/// Per-flow in-band feedback constructor.
class InbandFeedbackUpdater {
 public:
  /// `send_feedback` receives AP-constructed TWCC packets destined for the
  /// sender (they enter the AP's wired uplink, bypassing the wireless hop).
  InbandFeedbackUpdater(sim::Simulator& simulator, InbandConfig cfg,
                        net::FlowId media_flow, std::uint32_t ssrc,
                        net::PacketHandler send_feedback)
      : sim_(simulator),
        cfg_(cfg),
        media_flow_(media_flow),
        ssrc_(ssrc),
        send_feedback_(std::move(send_feedback)) {}

  ~InbandFeedbackUpdater() {
    if (timer_ != 0) sim_.cancel(timer_);
  }

  InbandFeedbackUpdater(const InbandFeedbackUpdater&) = delete;
  InbandFeedbackUpdater& operator=(const InbandFeedbackUpdater&) = delete;

  /// Step 1: record the fortune of a downlink RTP packet.
  ///
  /// Reported receive times are clamped to be non-decreasing: a real
  /// receiver's arrival clock is monotonic, and per-packet prediction
  /// noise (head-of-queue wait sawtooth under AMPDU batching) must not
  /// surface as negative inter-arrival gradients at the sender.
  void on_rtp_packet(const net::RtpHeader& rtp, Duration predicted_delay) {
    TimePoint predicted_recv = sim_.now() + predicted_delay + skew_;
    if (predicted_recv < last_reported_recv_) predicted_recv = last_reported_recv_;
    last_reported_recv_ = predicted_recv;
    ZHUGE_METRIC_INC("feedback.inband.rtp_recorded");
    ZHUGE_TRACE(sim_.now(), "feedback.inband", "record_fortune",
                {"twcc_seq", double(rtp.twcc_seq)},
                {"predicted_delay_ms", predicted_delay.to_millis()},
                {"pending", double(pending_.size() + 1)});
    pending_.push_back({unwrapper_.unwrap(rtp.twcc_seq), rtp.twcc_seq,
                        predicted_recv});
    if (timer_ == 0) {
      timer_ = sim_.schedule_after(cfg_.feedback_interval, [this] {
        timer_ = 0;
        flush();
      });
    }
  }

  /// Filter for uplink RTCP: returns true when the packet must be dropped
  /// (a client-built TWCC for our flow — Zhuge replaces those).
  [[nodiscard]] bool should_drop_uplink(const Packet& p) const {
    if (!p.is_rtcp()) return false;
    const auto* fb = std::get_if<net::TwccFeedback>(&p.rtcp().payload);
    return fb != nullptr && fb->ssrc == ssrc_;
  }

  [[nodiscard]] std::uint64_t feedback_sent() const { return feedback_sent_; }
  [[nodiscard]] std::size_t pending_entries() const { return pending_.size(); }

  /// Drain every recorded fortune into feedback packets right now
  /// (teardown / fail-open): the sender keeps receiving a consistent
  /// timestamp stream for packets whose client TWCC was already dropped.
  void flush_now() {
    while (!pending_.empty()) flush();
    if (timer_ != 0) {  // an intermediate flush() may have re-armed it
      sim_.cancel(timer_);
      timer_ = 0;
    }
  }

  /// Wipe recorded fortunes and the sequence unwrapper after an outage or
  /// AP restart. The monotone reported-receive clamp is kept: the sender
  /// already saw those timestamps and a restarted AP must not report
  /// receive times that run backwards past them.
  void reset_after_outage() {
    if (timer_ != 0) {
      sim_.cancel(timer_);
      timer_ = 0;
    }
    pending_.clear();
    unwrapper_ = net::SeqUnwrapper{};
  }

  /// Clock discontinuity on the AP: remember the offset so reported
  /// receive times stay continuous on the sender's timeline, and rebase
  /// the monotone clamp if the jump was backward (otherwise every future
  /// fortune would be pinned to the pre-jump clock).
  void on_clock_jump(Duration delta) {
    skew_ = skew_ - delta;
    const TimePoint now = sim_.now();
    if (last_reported_recv_ > now + skew_ + Duration::millis(1000)) {
      last_reported_recv_ = now + skew_;
    }
  }

 private:
  /// Step 2: build and send one TWCC packet from the recorded fortunes.
  void flush() {
    if (!pending_.empty()) {
      // Faults upstream (duplication, reordering) can hand us RTP out of
      // order or twice; the sender expects one monotone entry per seq.
      std::sort(pending_.begin(), pending_.end(),
                [](const Entry& a, const Entry& b) { return a.seq64 < b.seq64; });
      pending_.erase(std::unique(pending_.begin(), pending_.end(),
                                 [](const Entry& a, const Entry& b) {
                                   return a.seq64 == b.seq64;
                                 }),
                     pending_.end());

      net::TwccFeedback fb;
      fb.ssrc = ssrc_;
      fb.constructed_by_ap = true;
      const std::size_t n = std::min(pending_.size(), cfg_.max_entries_per_feedback);
      fb.entries.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        ZHUGE_INVARIANT(sim_.now(), "feedback.twcc_monotone",
                        i == 0 || pending_[i].seq64 > pending_[i - 1].seq64,
                        "AP-built TWCC entries not strictly increasing");
        fb.entries.push_back({pending_[i].twcc_seq, pending_[i].predicted_recv});
      }
      pending_.erase(pending_.begin(),
                     pending_.begin() + static_cast<std::ptrdiff_t>(n));

      Packet p;
      p.flow = media_flow_.reversed();
      p.size_bytes = cfg_.feedback_packet_bytes;
      p.sent_time = sim_.now();
      p.header = net::RtcpHeader{std::move(fb)};
      ++feedback_sent_;
      ZHUGE_METRIC_INC("feedback.inband.twcc_sent");
      ZHUGE_TRACE(sim_.now(), "feedback.inband", "twcc_flush",
                  {"entries", double(n)}, {"backlog", double(pending_.size())});
      send_feedback_(std::move(p));
    }
    if (!pending_.empty() && timer_ == 0) {
      timer_ = sim_.schedule_after(cfg_.feedback_interval, [this] {
        timer_ = 0;
        flush();
      });
    }
  }

  struct Entry {
    std::int64_t seq64;  ///< unwrapped twcc_seq, sort/dedupe key
    std::uint16_t twcc_seq;
    TimePoint predicted_recv;
  };

  sim::Simulator& sim_;
  InbandConfig cfg_;
  net::FlowId media_flow_;
  std::uint32_t ssrc_;
  net::PacketHandler send_feedback_;
  std::deque<Entry> pending_;
  net::SeqUnwrapper unwrapper_;
  sim::EventId timer_ = 0;
  std::uint64_t feedback_sent_ = 0;
  TimePoint last_reported_recv_;
  Duration skew_ = Duration::zero();  ///< AP-clock offset after jumps
};

}  // namespace zhuge::core
