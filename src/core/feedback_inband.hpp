#pragma once
// Zhuge Feedback Updater — in-band protocols (§5.3).
//
// For RTP/RTCP the receiver writes per-packet arrival timestamps into TWCC
// feedback packets. Zhuge instead:
//   Step 1 — on every downlink RTP packet, records (twcc_seq,
//            predicted_recv_time = now + totalDelay) on the AP clock;
//   Step 2 — periodically constructs a TWCC feedback packet itself from
//            the recorded fortunes and sends it straight up the (wired)
//            WAN path, while dropping the client's own TWCC packets to
//            keep the sender's timestamp stream consistent.
// Other RTCP (NACK, receiver reports) passes through untouched. Timestamps
// all come from one AP clock, so the sender's delta-based CCA (GCC) needs
// no synchronisation — exactly the argument of §5.3.

#include <cstdint>
#include <deque>
#include <functional>

#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace zhuge::core {

using net::Packet;
using sim::Duration;
using sim::TimePoint;

/// Configuration for the in-band updater.
struct InbandConfig {
  Duration feedback_interval = Duration::millis(25);  ///< TWCC send period
  std::size_t max_entries_per_feedback = 128;
  std::uint32_t feedback_packet_bytes = 80;  ///< wire size of built TWCC
};

/// Per-flow in-band feedback constructor.
class InbandFeedbackUpdater {
 public:
  /// `send_feedback` receives AP-constructed TWCC packets destined for the
  /// sender (they enter the AP's wired uplink, bypassing the wireless hop).
  InbandFeedbackUpdater(sim::Simulator& simulator, InbandConfig cfg,
                        net::FlowId media_flow, std::uint32_t ssrc,
                        net::PacketHandler send_feedback)
      : sim_(simulator),
        cfg_(cfg),
        media_flow_(media_flow),
        ssrc_(ssrc),
        send_feedback_(std::move(send_feedback)) {}

  /// Step 1: record the fortune of a downlink RTP packet.
  ///
  /// Reported receive times are clamped to be non-decreasing: a real
  /// receiver's arrival clock is monotonic, and per-packet prediction
  /// noise (head-of-queue wait sawtooth under AMPDU batching) must not
  /// surface as negative inter-arrival gradients at the sender.
  void on_rtp_packet(const net::RtpHeader& rtp, Duration predicted_delay) {
    TimePoint predicted_recv = sim_.now() + predicted_delay;
    if (predicted_recv < last_reported_recv_) predicted_recv = last_reported_recv_;
    last_reported_recv_ = predicted_recv;
    ZHUGE_METRIC_INC("feedback.inband.rtp_recorded");
    ZHUGE_TRACE(sim_.now(), "feedback.inband", "record_fortune",
                {"twcc_seq", double(rtp.twcc_seq)},
                {"predicted_delay_ms", predicted_delay.to_millis()},
                {"pending", double(pending_.size() + 1)});
    pending_.push_back({rtp.twcc_seq, predicted_recv});
    if (!timer_armed_) {
      timer_armed_ = true;
      sim_.schedule_after(cfg_.feedback_interval, [this] { flush(); });
    }
  }

  /// Filter for uplink RTCP: returns true when the packet must be dropped
  /// (a client-built TWCC for our flow — Zhuge replaces those).
  [[nodiscard]] bool should_drop_uplink(const Packet& p) const {
    if (!p.is_rtcp()) return false;
    const auto* fb = std::get_if<net::TwccFeedback>(&p.rtcp().payload);
    return fb != nullptr && fb->ssrc == ssrc_;
  }

  [[nodiscard]] std::uint64_t feedback_sent() const { return feedback_sent_; }

 private:
  /// Step 2: build and send one TWCC packet from the recorded fortunes.
  void flush() {
    timer_armed_ = false;
    if (!pending_.empty()) {
      net::TwccFeedback fb;
      fb.ssrc = ssrc_;
      fb.constructed_by_ap = true;
      const std::size_t n = std::min(pending_.size(), cfg_.max_entries_per_feedback);
      fb.entries.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        fb.entries.push_back({pending_[i].twcc_seq, pending_[i].predicted_recv});
      }
      pending_.erase(pending_.begin(),
                     pending_.begin() + static_cast<std::ptrdiff_t>(n));

      Packet p;
      p.flow = media_flow_.reversed();
      p.size_bytes = cfg_.feedback_packet_bytes;
      p.sent_time = sim_.now();
      p.header = net::RtcpHeader{std::move(fb)};
      ++feedback_sent_;
      ZHUGE_METRIC_INC("feedback.inband.twcc_sent");
      ZHUGE_TRACE(sim_.now(), "feedback.inband", "twcc_flush",
                  {"entries", double(n)}, {"backlog", double(pending_.size())});
      send_feedback_(std::move(p));
    }
    if (!pending_.empty()) {
      timer_armed_ = true;
      sim_.schedule_after(cfg_.feedback_interval, [this] { flush(); });
    }
  }

  struct Entry {
    std::uint16_t twcc_seq;
    TimePoint predicted_recv;
  };

  sim::Simulator& sim_;
  InbandConfig cfg_;
  net::FlowId media_flow_;
  std::uint32_t ssrc_;
  net::PacketHandler send_feedback_;
  std::deque<Entry> pending_;
  bool timer_armed_ = false;
  std::uint64_t feedback_sent_ = 0;
  TimePoint last_reported_recv_;
};

}  // namespace zhuge::core
