#pragma once
// Zhuge Fortune Teller (§4): per-packet delay prediction at the AP.
//
// On each downlink packet arrival the teller predicts the delay that packet
// will experience to the client:
//
//   totalDelay = qLong + qShort + tx                      (Fig. 6)
//     qLong  = cur(qSize) / avg(txRate)
//       with qSize = max(bytesInQueue - maxBurstSize, 0)  (Eq. 1)
//     qShort = cur(qFrontWaitTime)
//     tx     = avg(dequeueIntvl), ignoring intervals < 1 ms
//
// qLong covers queue build-up from bursty RTC arrivals; qShort is the
// instant signal of a stalling channel (head-of-queue sojourn); tx is the
// link-layer transmission delay. Averages use a sliding window (40 ms by
// default — one video frame interval at 25 fps, §7.1), resolving the
// transience-equilibrium nexus that defeats a single-window estimator.
//
// Hot-path layout (PR 8): on_dequeue() and predict() run for *every*
// downlink packet at the AP, so both are defined inline here — the
// windowed estimators they drive are SoA ring buffers (stats/windowed.hpp)
// and the compiler fuses the record/evict/query chain into one straight
// pass without a cross-TU call per packet. The arithmetic is unchanged
// from the out-of-line implementation; tests/fortune_teller_test.cpp pins
// bit-equivalence against a reference deque implementation and the golden
// scenario fingerprints pin it end-to-end.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "queue/qdisc.hpp"
#include "sim/time.hpp"
#include "stats/windowed.hpp"

namespace zhuge::core {

using sim::Duration;
using sim::TimePoint;

/// Tuning knobs for the Fortune Teller. Defaults follow the paper.
struct FortuneTellerConfig {
  Duration window = Duration::millis(40);     ///< avg(.) sliding window
  Duration burst_resolution = Duration::millis(1);  ///< simultaneity threshold
  Duration burst_window = Duration::millis(200);    ///< maxBurstSize lookback
  double fallback_rate_bps = 10e6;  ///< used before any departure is seen
  Duration fallback_tx = Duration::millis(2);       ///< tx before any sample
  Duration max_prediction = Duration::seconds(4);   ///< sanity clamp
  bool burst_adjustment = true;   ///< Eq. 1 on/off (ablation)
  bool use_qshort = true;         ///< qShort term on/off (ablation)
};

/// Per-flow delay predictor. Feed it every departure of the flow from the
/// network-layer queue via on_dequeue(); ask predict() on packet arrival.
class FortuneTeller {
 public:
  explicit FortuneTeller(FortuneTellerConfig cfg = {})
      : cfg_(cfg),
        tx_rate_(cfg.window),
        dequeue_interval_(cfg.window),
        burst_max_(cfg.burst_window) {}

  /// Record one packet of this flow leaving the network-layer queue.
  /// Multiple packets aggregated into one AMPDU arrive here at the same
  /// instant and are folded into a single burst. `queue_empty_after` must
  /// be true when this departure left the flow's queue empty: the gap that
  /// follows an emptied queue is application idle time (e.g. the spacing
  /// between video frames), not channel latency, and must not contaminate
  /// the avg(dequeueIntvl) transmission-delay estimate.
  void on_dequeue(std::int64_t bytes, TimePoint now, bool queue_empty_after = false) {
    tx_rate_.record(now, bytes);

    if (last_dequeue_ns_ != kNoDequeue) {
      const Duration gap = now - TimePoint{last_dequeue_ns_};
      if (gap >= cfg_.burst_resolution) {
        // A new burst begins: the previous one is complete.
        finalize_burst(now);
        // Record the inter-departure interval; sub-millisecond gaps are
        // intra-AMPDU and tell us nothing about the channel (§4.2), and a
        // gap that followed an emptied queue is application idle time.
        if (!last_left_queue_empty_) {
          dequeue_interval_.record(now, gap.to_seconds());
        }
        current_burst_bytes_ = bytes;
        current_burst_start_ = now;
      } else {
        current_burst_bytes_ += bytes;  // same simultaneous departure
      }
    } else {
      current_burst_bytes_ = bytes;
      current_burst_start_ = now;
    }
    last_dequeue_ns_ = now.count_ns();
    last_left_queue_empty_ = queue_empty_after;
  }

  /// Per-component prediction (for tests, Fig. 7 and the heatmap bench).
  struct Prediction {
    Duration q_long;
    Duration q_short;
    Duration tx;
    [[nodiscard]] Duration total() const { return q_long + q_short + tx; }
  };

  /// Predict the delay a packet arriving now would experience, given the
  /// queue's current state for this flow.
  [[nodiscard]] Prediction predict(TimePoint now, std::int64_t queue_bytes,
                                   std::optional<TimePoint> head_since) {
    Prediction out{};

    // qLong (Eq. 1): queue backlog beyond one link-layer burst, divided by
    // the windowed dequeue rate.
    std::int64_t q_size = queue_bytes;
    if (cfg_.burst_adjustment) {
      q_size = std::max<std::int64_t>(queue_bytes - max_burst_bytes(now), 0);
    }
    const double rate = tx_rate_.rate_bps_or(now, cfg_.fallback_rate_bps);
    out.q_long = Duration::from_seconds(static_cast<double>(q_size) * 8.0 / rate);

    // qShort: how long the current head packet has been waiting for a grant.
    if (cfg_.use_qshort && head_since.has_value()) {
      out.q_short = now - *head_since;
    }

    // tx: link-layer transmission delay.
    out.tx = tx_delay(now);

    // Sanity clamp: predictions beyond the clamp are equally actionable.
    const Duration total = out.q_long + out.q_short + out.tx;
    if (total > cfg_.max_prediction) {
      const double scale = cfg_.max_prediction.ratio(total);
      out.q_long = out.q_long * scale;
      out.q_short = out.q_short * scale;
      out.tx = out.tx * scale;
    }

    ZHUGE_METRIC_INC("fortune.predictions");
    ZHUGE_METRIC_OBSERVE("fortune.predicted_ms", out.total().to_millis());
    ZHUGE_TRACE(now, "fortune", "predict", {"qLong_ms", out.q_long.to_millis()},
                {"qShort_ms", out.q_short.to_millis()},
                {"tx_ms", out.tx.to_millis()},
                {"queue_bytes", double(queue_bytes)}, {"rate_mbps", rate / 1e6});
    return out;
  }

  /// Convenience overload reading per-flow state straight from a qdisc.
  [[nodiscard]] Prediction predict(TimePoint now, const queue::Qdisc& qdisc,
                                   const net::FlowId& flow) {
    return predict(now, qdisc.byte_count_flow(flow), qdisc.head_since_flow(flow));
  }

  /// Current avg(txRate) estimate in bits/second (fallback if no samples).
  [[nodiscard]] double tx_rate_bps(TimePoint now) {
    return tx_rate_.rate_bps_or(now, cfg_.fallback_rate_bps);
  }

  /// Current avg(dequeueIntvl) estimate. Dequeue intervals are strictly
  /// positive, so a negative sentinel cleanly marks "no samples".
  [[nodiscard]] Duration tx_delay(TimePoint now) {
    const double m = dequeue_interval_.mean_or(now, -1.0);
    if (m < 0.0) return cfg_.fallback_tx;
    return Duration::from_seconds(m);
  }

  /// Current maxBurstSize (bytes) within the burst window.
  [[nodiscard]] std::int64_t max_burst_bytes(TimePoint now) {
    // Include the burst currently being accumulated.
    const double past = burst_max_.max(now, 0.0);
    return static_cast<std::int64_t>(
        std::max(past, static_cast<double>(current_burst_bytes_)));
  }

  [[nodiscard]] const FortuneTellerConfig& config() const { return cfg_; }

 private:
  void finalize_burst(TimePoint now) {
    if (current_burst_bytes_ > 0) {
      burst_max_.record(now, static_cast<double>(current_burst_bytes_));
    }
    current_burst_bytes_ = 0;
  }

  /// Sentinel for "no departure seen yet" — cheaper to test per packet
  /// than an engaged-optional flag, and no legitimate departure can carry
  /// it (simulation time is non-negative).
  static constexpr std::int64_t kNoDequeue = std::numeric_limits<std::int64_t>::min();

  FortuneTellerConfig cfg_;
  stats::WindowedRate tx_rate_;
  stats::WindowedMean dequeue_interval_;  ///< seconds, intervals >= 1 ms only
  stats::WindowedMax burst_max_;          ///< bytes per <=1 ms departure burst

  std::int64_t last_dequeue_ns_ = kNoDequeue;
  bool last_left_queue_empty_ = false;
  std::int64_t current_burst_bytes_ = 0;
  TimePoint current_burst_start_;
};

}  // namespace zhuge::core
