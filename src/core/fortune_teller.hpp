#pragma once
// Zhuge Fortune Teller (§4): per-packet delay prediction at the AP.
//
// On each downlink packet arrival the teller predicts the delay that packet
// will experience to the client:
//
//   totalDelay = qLong + qShort + tx                      (Fig. 6)
//     qLong  = cur(qSize) / avg(txRate)
//       with qSize = max(bytesInQueue - maxBurstSize, 0)  (Eq. 1)
//     qShort = cur(qFrontWaitTime)
//     tx     = avg(dequeueIntvl), ignoring intervals < 1 ms
//
// qLong covers queue build-up from bursty RTC arrivals; qShort is the
// instant signal of a stalling channel (head-of-queue sojourn); tx is the
// link-layer transmission delay. Averages use a sliding window (40 ms by
// default — one video frame interval at 25 fps, §7.1), resolving the
// transience-equilibrium nexus that defeats a single-window estimator.

#include <cstdint>
#include <optional>

#include "queue/qdisc.hpp"
#include "sim/time.hpp"
#include "stats/windowed.hpp"

namespace zhuge::core {

using sim::Duration;
using sim::TimePoint;

/// Tuning knobs for the Fortune Teller. Defaults follow the paper.
struct FortuneTellerConfig {
  Duration window = Duration::millis(40);     ///< avg(.) sliding window
  Duration burst_resolution = Duration::millis(1);  ///< simultaneity threshold
  Duration burst_window = Duration::millis(200);    ///< maxBurstSize lookback
  double fallback_rate_bps = 10e6;  ///< used before any departure is seen
  Duration fallback_tx = Duration::millis(2);       ///< tx before any sample
  Duration max_prediction = Duration::seconds(4);   ///< sanity clamp
  bool burst_adjustment = true;   ///< Eq. 1 on/off (ablation)
  bool use_qshort = true;         ///< qShort term on/off (ablation)
};

/// Per-flow delay predictor. Feed it every departure of the flow from the
/// network-layer queue via on_dequeue(); ask predict() on packet arrival.
class FortuneTeller {
 public:
  explicit FortuneTeller(FortuneTellerConfig cfg = {})
      : cfg_(cfg),
        tx_rate_(cfg.window),
        dequeue_interval_(cfg.window),
        burst_max_(cfg.burst_window) {}

  /// Record one packet of this flow leaving the network-layer queue.
  /// Multiple packets aggregated into one AMPDU arrive here at the same
  /// instant and are folded into a single burst. `queue_empty_after` must
  /// be true when this departure left the flow's queue empty: the gap that
  /// follows an emptied queue is application idle time (e.g. the spacing
  /// between video frames), not channel latency, and must not contaminate
  /// the avg(dequeueIntvl) transmission-delay estimate.
  void on_dequeue(std::int64_t bytes, TimePoint now, bool queue_empty_after = false);

  /// Per-component prediction (for tests, Fig. 7 and the heatmap bench).
  struct Prediction {
    Duration q_long;
    Duration q_short;
    Duration tx;
    [[nodiscard]] Duration total() const { return q_long + q_short + tx; }
  };

  /// Predict the delay a packet arriving now would experience, given the
  /// queue's current state for this flow.
  [[nodiscard]] Prediction predict(TimePoint now, std::int64_t queue_bytes,
                                   std::optional<TimePoint> head_since);

  /// Convenience overload reading per-flow state straight from a qdisc.
  [[nodiscard]] Prediction predict(TimePoint now, const queue::Qdisc& qdisc,
                                   const net::FlowId& flow) {
    return predict(now, qdisc.byte_count_flow(flow), qdisc.head_since_flow(flow));
  }

  /// Current avg(txRate) estimate in bits/second (fallback if no samples).
  [[nodiscard]] double tx_rate_bps(TimePoint now);
  /// Current avg(dequeueIntvl) estimate.
  [[nodiscard]] Duration tx_delay(TimePoint now);
  /// Current maxBurstSize (bytes) within the burst window.
  [[nodiscard]] std::int64_t max_burst_bytes(TimePoint now);

  [[nodiscard]] const FortuneTellerConfig& config() const { return cfg_; }

 private:
  void finalize_burst(TimePoint now);

  FortuneTellerConfig cfg_;
  stats::WindowedRate tx_rate_;
  stats::WindowedMean dequeue_interval_;  ///< seconds, intervals >= 1 ms only
  stats::WindowedMax burst_max_;          ///< bytes per <=1 ms departure burst

  std::optional<TimePoint> last_dequeue_;
  bool last_left_queue_empty_ = false;
  std::int64_t current_burst_bytes_ = 0;
  TimePoint current_burst_start_;
};

}  // namespace zhuge::core
