#pragma once
// Zhuge per-flow processor: Fortune Teller + Feedback Updater glue.
//
// One ZhugeFlow instance lives on the AP for each optimised RTC flow
// (flows are identified by 5-tuple only; §5.2). The AP calls:
//   * on_dequeue()  — every departure of the flow from the downlink qdisc
//   * on_downlink() — every downlink data packet, before it enters the
//                     wireless queue (predicts and records its fortune)
//   * on_uplink()   — every uplink packet of the reverse flow; the returned
//                     decision says whether to forward now, hold for a
//                     computed delay (out-of-band), or drop (a client TWCC
//                     that Zhuge replaces, in-band).

#include <cstdint>
#include <memory>
#include <optional>

#include "core/feedback_inband.hpp"
#include "core/feedback_oob.hpp"
#include "core/fortune_teller.hpp"
#include "net/packet.hpp"
#include "queue/qdisc.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace zhuge::core {

/// Everything tunable about one Zhuge flow.
struct ZhugeConfig {
  FortuneTellerConfig fortune{};
  OobConfig oob{};
  InbandConfig inband{};
};

/// What the AP should do with an uplink packet.
enum class UplinkAction : std::uint8_t { kForward, kDelay, kDrop };

struct UplinkDecision {
  UplinkAction action = UplinkAction::kForward;
  Duration delay = Duration::zero();  ///< meaningful for kDelay
};

/// Per-flow Zhuge state machine.
class ZhugeFlow {
 public:
  /// `send_feedback` is the AP's wired uplink towards the sender; the
  /// in-band updater pushes its self-built TWCC packets through it.
  ZhugeFlow(sim::Simulator& simulator, sim::Rng& rng, net::FlowId flow,
            ZhugeConfig cfg, net::PacketHandler send_feedback)
      : sim_(simulator),
        rng_(rng),
        flow_(flow),
        cfg_(cfg),
        send_feedback_(std::move(send_feedback)),
        teller_(cfg.fortune) {}

  /// Feed departures of this flow from the downlink network-layer queue.
  /// `queue_empty_after`: the flow's queue is empty after this departure.
  void on_dequeue(const net::Packet& p, TimePoint now, bool queue_empty_after = false) {
    teller_.on_dequeue(p.size_bytes, now, queue_empty_after);
  }

  /// Predict the fortune of a downlink data packet just before it is
  /// offered to the qdisc (the packet sees the queue in front of it, §2.3)
  /// and annotate `p.predicted_delay_ms`.
  [[nodiscard]] Duration predict_downlink(net::Packet& p, const queue::Qdisc& qdisc) {
    const auto pred = teller_.predict(sim_.now(), qdisc, flow_);
    const Duration total = pred.total();
    p.predicted_delay_ms = total.to_millis();
    return total;
  }

  /// Commit the predicted fortune to the feedback state. Call only after
  /// the packet was actually accepted by the qdisc: a tail-dropped packet
  /// must not be reported as (eventually) received — the AP sees the drop
  /// and keeps the loss visible to the sender.
  void commit_downlink(bool is_rtp, const net::RtpHeader* rtp, Duration total) {
    if (is_rtp && rtp != nullptr) {
      inband(rtp->ssrc).on_rtp_packet(*rtp, total);
    } else {
      oob().on_data_delay(total, sim_.now());
    }
  }

  /// Convenience: predict + offer-independent commit (tests, benches).
  void on_downlink(net::Packet& p, const queue::Qdisc& qdisc) {
    const Duration total = predict_downlink(p, qdisc);
    if (p.is_rtp()) {
      commit_downlink(true, &p.rtp(), total);
    } else {
      commit_downlink(false, nullptr, total);
    }
  }

  /// Handle an uplink packet of the reverse flow end to end: drop it,
  /// forward it immediately, or hold it on the retreatable release queue.
  /// Returns the action taken (for the AP's counters).
  UplinkAction handle_uplink(net::Packet p) {
    if (p.is_rtcp()) {
      if (inband_ && inband_->should_drop_uplink(p)) return UplinkAction::kDrop;
      send_feedback_(std::move(p));
      return UplinkAction::kForward;
    }
    const bool oob_feedback = (p.is_tcp() && p.tcp().is_ack) || !p.is_rtp();
    if (oob_feedback && oob_) {
      oob_->schedule_feedback(std::move(p), sim_.now());
      return UplinkAction::kDelay;
    }
    send_feedback_(std::move(p));
    return UplinkAction::kForward;
  }

  /// Decide what to do with an uplink packet of the reverse flow
  /// (introspection form used by unit tests; does not forward anything).
  [[nodiscard]] UplinkDecision on_uplink(const net::Packet& p) {
    if (p.is_rtcp()) {
      // In-band mode: drop the client's own TWCC (Zhuge builds its own);
      // NACKs and receiver reports pass through untouched.
      if (inband_ && inband_->should_drop_uplink(p)) {
        return {UplinkAction::kDrop, Duration::zero()};
      }
      return {UplinkAction::kForward, Duration::zero()};
    }
    if (p.is_tcp() && p.tcp().is_ack && oob_) {
      return {UplinkAction::kDelay, oob_->ack_delay(sim_.now())};
    }
    // Unknown/encrypted out-of-band feedback: if we have been predicting
    // for this flow in OOB mode, treat any reverse-direction packet as
    // feedback (QUIC case — headers unreadable, 5-tuple only).
    if (!p.is_rtp() && oob_) {
      return {UplinkAction::kDelay, oob_->ack_delay(sim_.now())};
    }
    return {UplinkAction::kForward, Duration::zero()};
  }

  [[nodiscard]] FortuneTeller& fortune_teller() { return teller_; }
  [[nodiscard]] const net::FlowId& flow() const { return flow_; }
  [[nodiscard]] bool is_inband() const { return inband_ != nullptr; }

 private:
  OobFeedbackUpdater& oob() {
    if (!oob_) {
      oob_ = std::make_unique<OobFeedbackUpdater>(sim_, cfg_.oob, rng_,
                                                  send_feedback_);
    }
    return *oob_;
  }
  InbandFeedbackUpdater& inband(std::uint32_t ssrc) {
    if (!inband_) {
      inband_ = std::make_unique<InbandFeedbackUpdater>(sim_, cfg_.inband, flow_,
                                                        ssrc, send_feedback_);
    }
    return *inband_;
  }

  sim::Simulator& sim_;
  sim::Rng& rng_;
  net::FlowId flow_;
  ZhugeConfig cfg_;
  net::PacketHandler send_feedback_;
  FortuneTeller teller_;
  std::unique_ptr<OobFeedbackUpdater> oob_;
  std::unique_ptr<InbandFeedbackUpdater> inband_;
};

}  // namespace zhuge::core
