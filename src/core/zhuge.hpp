#pragma once
// Zhuge per-flow processor: Fortune Teller + Feedback Updater glue.
//
// One ZhugeFlow instance lives on the AP for each optimised RTC flow
// (flows are identified by 5-tuple only; §5.2). The AP calls:
//   * on_dequeue()  — every departure of the flow from the downlink qdisc
//   * on_downlink() — every downlink data packet, before it enters the
//                     wireless queue (predicts and records its fortune)
//   * on_uplink()   — every uplink packet of the reverse flow; the returned
//                     decision says whether to forward now, hold for a
//                     computed delay (out-of-band), or drop (a client TWCC
//                     that Zhuge replaces, in-band).
//
// Fail-open degradation (robustness; not in the paper): Zhuge sits in the
// feedback path, so a broken Zhuge is strictly worse than no Zhuge — a
// wedged optimiser that keeps holding ACKs or dropping client TWCC
// silently starves the sender's congestion controller. The watchdog
// therefore fails *open*: when uplink feedback goes silent while downlink
// data keeps flowing, or when Fortune Teller predictions diverge
// persistently from observed queue delays, the flow flushes every held
// ACK, stops dropping client TWCC, and forwards everything untouched
// (exactly the no-Zhuge baseline). Once feedback returns and predictions
// re-converge, the flow re-activates with its learning state reset —
// keeping only what is needed to preserve feedback order across the
// outage.

#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/feedback_inband.hpp"
#include "core/feedback_oob.hpp"
#include "core/fortune_teller.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "queue/qdisc.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "stats/windowed.hpp"

namespace zhuge::core {

/// Fail-open watchdog tuning. Thresholds are deliberately generous:
/// degrading a healthy flow costs real optimisation, so only sustained,
/// unambiguous brokenness may trip it.
struct WatchdogConfig {
  bool enabled = true;
  /// Uplink silence longer than this — while downlink data keeps flowing
  /// and an updater exists (i.e. Zhuge is actively intercepting feedback)
  /// — trips fail-open.
  Duration feedback_timeout = Duration::millis(500);
  /// EWMA of |observed queue wait − predicted delay| above this (ms),
  /// sustained over min_divergence_samples, trips fail-open.
  double divergence_threshold_ms = 400.0;
  double divergence_alpha = 0.05;
  std::uint64_t min_divergence_samples = 200;
  /// Minimum time spent degraded before re-activation is considered.
  Duration recovery_settle = Duration::millis(250);
};

/// Everything tunable about one Zhuge flow.
struct ZhugeConfig {
  FortuneTellerConfig fortune{};
  OobConfig oob{};
  InbandConfig inband{};
  WatchdogConfig watchdog{};
};

/// What the AP should do with an uplink packet.
enum class UplinkAction : std::uint8_t { kForward, kDelay, kDrop };

struct UplinkDecision {
  UplinkAction action = UplinkAction::kForward;
  Duration delay = Duration::zero();  ///< meaningful for kDelay
};

/// Degradation state of one flow.
enum class FlowMode : std::uint8_t { kActive, kDegraded };

/// Per-flow Zhuge state machine.
class ZhugeFlow {
 public:
  /// `send_feedback` is the AP's wired uplink towards the sender; the
  /// in-band updater pushes its self-built TWCC packets through it.
  ZhugeFlow(sim::Simulator& simulator, sim::Rng& rng, net::FlowId flow,
            ZhugeConfig cfg, net::PacketHandler send_feedback)
      : sim_(simulator),
        rng_(rng),
        flow_(flow),
        cfg_(cfg),
        send_feedback_(std::move(send_feedback)),
        teller_(cfg.fortune),
        divergence_ms_(cfg.watchdog.divergence_alpha) {}

  /// Feed departures of this flow from the downlink network-layer queue.
  /// `queue_empty_after`: the flow's queue is empty after this departure.
  void on_dequeue(const net::Packet& p, TimePoint now, bool queue_empty_after = false) {
    teller_.on_dequeue(p.size_bytes, now, queue_empty_after);
    // Prediction-quality tracking for the watchdog: compare the fortune
    // told at enqueue with the queue wait actually experienced. Own-flow
    // packets only (shared queues feed every teller every departure).
    if (p.flow == flow_ && p.predicted_delay_ms >= 0.0) {
      const double waited_ms = (now - p.ap_enqueue_time).to_millis();
      divergence_ms_.record(std::abs(waited_ms - p.predicted_delay_ms));
      ++divergence_samples_;
    }
  }

  /// Predict the fortune of a downlink data packet just before it is
  /// offered to the qdisc (the packet sees the queue in front of it, §2.3)
  /// and annotate `p.predicted_delay_ms`.
  [[nodiscard]] Duration predict_downlink(net::Packet& p, const queue::Qdisc& qdisc) {
    last_downlink_ = sim_.now();
    saw_downlink_ = true;
    const auto pred = teller_.predict(sim_.now(), qdisc, flow_);
    const Duration total = pred.total();
    p.predicted_delay_ms = total.to_millis();
    return total;
  }

  /// Commit the predicted fortune to the feedback state. Call only after
  /// the packet was actually accepted by the qdisc: a tail-dropped packet
  /// must not be reported as (eventually) received — the AP sees the drop
  /// and keeps the loss visible to the sender. No-op while degraded: a
  /// failed-open flow records no fortunes (the client's own feedback is
  /// flowing instead).
  void commit_downlink(bool is_rtp, const net::RtpHeader* rtp, Duration total) {
    if (mode_ == FlowMode::kDegraded) return;
    if (is_rtp && rtp != nullptr) {
      inband(rtp->ssrc).on_rtp_packet(*rtp, total);
    } else {
      oob().on_data_delay(total, sim_.now());
    }
  }

  /// Convenience: predict + offer-independent commit (tests, benches).
  void on_downlink(net::Packet& p, const queue::Qdisc& qdisc) {
    const Duration total = predict_downlink(p, qdisc);
    if (p.is_rtp()) {
      commit_downlink(true, &p.rtp(), total);
    } else {
      commit_downlink(false, nullptr, total);
    }
  }

  /// Handle an uplink packet of the reverse flow end to end: drop it,
  /// forward it immediately, or hold it on the retreatable release queue.
  /// Returns the action taken (for the AP's counters). While degraded,
  /// everything passes through untouched (fail-open).
  UplinkAction handle_uplink(net::Packet p) {
    touch_uplink();
    if (mode_ == FlowMode::kDegraded) {
      send_feedback_(std::move(p));
      return UplinkAction::kForward;
    }
    if (p.is_rtcp()) {
      if (inband_ && inband_->should_drop_uplink(p)) return UplinkAction::kDrop;
      send_feedback_(std::move(p));
      return UplinkAction::kForward;
    }
    const bool oob_feedback = (p.is_tcp() && p.tcp().is_ack) || !p.is_rtp();
    if (oob_feedback && oob_) {
      oob_->schedule_feedback(std::move(p), sim_.now());
      return UplinkAction::kDelay;
    }
    send_feedback_(std::move(p));
    return UplinkAction::kForward;
  }

  /// Decide what to do with an uplink packet of the reverse flow
  /// (introspection form used by unit tests; does not forward anything).
  [[nodiscard]] UplinkDecision on_uplink(const net::Packet& p) {
    touch_uplink();
    if (mode_ == FlowMode::kDegraded) {
      return {UplinkAction::kForward, Duration::zero()};
    }
    if (p.is_rtcp()) {
      // In-band mode: drop the client's own TWCC (Zhuge builds its own);
      // NACKs and receiver reports pass through untouched.
      if (inband_ && inband_->should_drop_uplink(p)) {
        return {UplinkAction::kDrop, Duration::zero()};
      }
      return {UplinkAction::kForward, Duration::zero()};
    }
    if (p.is_tcp() && p.tcp().is_ack && oob_) {
      return {UplinkAction::kDelay, oob_->ack_delay(sim_.now())};
    }
    // Unknown/encrypted out-of-band feedback: if we have been predicting
    // for this flow in OOB mode, treat any reverse-direction packet as
    // feedback (QUIC case — headers unreadable, 5-tuple only).
    if (!p.is_rtp() && oob_) {
      return {UplinkAction::kDelay, oob_->ack_delay(sim_.now())};
    }
    return {UplinkAction::kForward, Duration::zero()};
  }

  /// Evaluate the fail-open watchdog. Event-driven: the AP calls this on
  /// packet arrivals (no timer — a silent *network* has nothing to fail
  /// open for, and a recurring timer would keep an otherwise-finished
  /// simulation alive forever).
  void check_watchdog(TimePoint now) {
    if (!cfg_.watchdog.enabled) return;
    if (mode_ == FlowMode::kActive) {
      if (feedback_silent(now)) {
        degrade(now, "feedback_silence");
      } else if (divergence_tripped()) {
        degrade(now, "prediction_divergence");
      }
      return;
    }
    // Degraded: re-activate once feedback is demonstrably alive again,
    // predictions are no longer wildly off, and we have sat out the
    // settle period.
    if (now - degraded_since_ < cfg_.watchdog.recovery_settle) return;
    const bool uplink_alive =
        saw_uplink_ && now - last_uplink_ < cfg_.watchdog.feedback_timeout / 2;
    if (uplink_alive && !divergence_tripped()) reactivate(now);
  }

  /// Flush every held/pending feedback artefact immediately. Called on
  /// flow teardown and before destruction during a live simulation — an
  /// ACK recorded by Zhuge must never be stranded. Idempotent.
  /// Returns how many packets were released.
  std::size_t teardown() {
    std::size_t flushed = 0;
    if (oob_) flushed += oob_->flush_pending();
    if (inband_) {
      const auto before = inband_->feedback_sent();
      inband_->flush_now();
      flushed += static_cast<std::size_t>(inband_->feedback_sent() - before);
    }
    flushed_on_teardown_ += flushed;
    return flushed;
  }

  /// AP clock discontinuity of `delta` (positive = jumped forward).
  void on_clock_jump(Duration delta) {
    if (oob_) oob_->on_clock_jump(sim_.now());
    if (inband_) inband_->on_clock_jump(delta);
    ZHUGE_TRACE(sim_.now(), "zhuge", "clock_jump",
                {"delta_ms", delta.to_millis()});
  }

  [[nodiscard]] FortuneTeller& fortune_teller() { return teller_; }
  [[nodiscard]] const net::FlowId& flow() const { return flow_; }
  [[nodiscard]] bool is_inband() const { return inband_ != nullptr; }
  [[nodiscard]] FlowMode mode() const { return mode_; }
  [[nodiscard]] std::uint64_t degrade_count() const { return degrade_count_; }
  [[nodiscard]] std::uint64_t reactivate_count() const { return reactivate_count_; }
  [[nodiscard]] std::uint64_t flushed_on_teardown() const { return flushed_on_teardown_; }
  [[nodiscard]] std::size_t pending_feedback() const {
    std::size_t n = 0;
    if (oob_) n += oob_->pending_holds();
    if (inband_) n += inband_->pending_entries();
    return n;
  }

 private:
  [[nodiscard]] bool feedback_silent(TimePoint now) const {
    // Silence only means something when Zhuge is actually intercepting
    // feedback (an updater exists), feedback has flowed before, and the
    // downlink is currently active — otherwise the whole path is idle.
    if (oob_ == nullptr && inband_ == nullptr) return false;
    if (!saw_uplink_ || !saw_downlink_) return false;
    return now - last_uplink_ > cfg_.watchdog.feedback_timeout &&
           now - last_downlink_ < cfg_.watchdog.feedback_timeout / 4;
  }

  [[nodiscard]] bool divergence_tripped() const {
    return divergence_samples_ >= cfg_.watchdog.min_divergence_samples &&
           divergence_ms_.has_value() &&
           divergence_ms_.value() > cfg_.watchdog.divergence_threshold_ms;
  }

  void degrade(TimePoint now, const char* reason) {
    mode_ = FlowMode::kDegraded;
    degraded_since_ = now;
    ++degrade_count_;
    const std::size_t flushed = teardown();
    ZHUGE_METRIC_INC("zhuge.degrade");
    ZHUGE_TRACE(now, "zhuge", "degrade", {"flushed", double(flushed)},
                {"silence", std::string(reason) == "feedback_silence" ? 1.0 : 0.0});
  }

  void reactivate(TimePoint now) {
    mode_ = FlowMode::kActive;
    ++reactivate_count_;
    if (oob_) oob_->reset_after_outage();
    if (inband_) inband_->reset_after_outage();
    divergence_ms_.reset();
    divergence_samples_ = 0;
    ZHUGE_METRIC_INC("zhuge.reactivate");
    ZHUGE_TRACE(now, "zhuge", "reactivate");
  }

  void touch_uplink() {
    last_uplink_ = sim_.now();
    saw_uplink_ = true;
  }

  OobFeedbackUpdater& oob() {
    if (!oob_) {
      oob_ = std::make_unique<OobFeedbackUpdater>(sim_, cfg_.oob, rng_,
                                                  send_feedback_);
    }
    return *oob_;
  }
  InbandFeedbackUpdater& inband(std::uint32_t ssrc) {
    if (!inband_) {
      inband_ = std::make_unique<InbandFeedbackUpdater>(sim_, cfg_.inband, flow_,
                                                        ssrc, send_feedback_);
    }
    return *inband_;
  }

  sim::Simulator& sim_;
  sim::Rng& rng_;
  net::FlowId flow_;
  ZhugeConfig cfg_;
  net::PacketHandler send_feedback_;
  FortuneTeller teller_;
  std::unique_ptr<OobFeedbackUpdater> oob_;
  std::unique_ptr<InbandFeedbackUpdater> inband_;

  FlowMode mode_ = FlowMode::kActive;
  TimePoint last_uplink_;
  TimePoint last_downlink_;
  TimePoint degraded_since_;
  bool saw_uplink_ = false;
  bool saw_downlink_ = false;
  stats::Ewma divergence_ms_;
  std::uint64_t divergence_samples_ = 0;
  std::uint64_t degrade_count_ = 0;
  std::uint64_t reactivate_count_ = 0;
  std::uint64_t flushed_on_teardown_ = 0;
};

}  // namespace zhuge::core
