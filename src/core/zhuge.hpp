#pragma once
// Zhuge per-flow processor: Fortune Teller + Feedback Updater glue.
//
// One ZhugeFlow instance lives on the AP for each optimised RTC flow
// (flows are identified by 5-tuple only; §5.2). The AP calls:
//   * on_dequeue()  — every departure of the flow from the downlink qdisc
//   * on_downlink() — every downlink data packet, before it enters the
//                     wireless queue (predicts and records its fortune)
//   * on_uplink()   — every uplink packet of the reverse flow; the returned
//                     decision says whether to forward now, hold for a
//                     computed delay (out-of-band), or drop (a client TWCC
//                     that Zhuge replaces, in-band).
//
// Graded fail-open degradation (robustness; not in the paper): Zhuge sits
// in the feedback path, so a broken Zhuge is strictly worse than no Zhuge
// — a wedged optimiser that keeps holding ACKs or dropping client TWCC
// silently starves the sender's congestion controller. Instead of a
// binary degrade, the watchdog walks a ladder where each level strictly
// weakens the intervention:
//
//   Full            all interventions active (the paper's mechanism)
//   ClampedPredict  predictions staleness-bounded and clamped; negative
//                   delay tokens are no longer banked (conservative OOB)
//   HoldOnly        no fortunes are committed; client TWCC passes through
//                   undropped; OOB feedback is held at the order-
//                   preserving floor only (no new delay is ever added)
//   PassThrough     everything forwarded untouched and nothing annotated
//                   — byte-identical to running without Zhuge
//
// Escalation is per-trigger (prediction divergence floors at
// ClampedPredict, feedback silence at HoldOnly), rate-limited by a
// holddown, and flushes all held feedback. Recovery steps down one level
// at a time after a settle period with live feedback and no divergence;
// a re-escalation shortly after a step-down doubles the settle
// (exponential backoff on reactivation probes) until a full recovery
// resets it. Every move is recorded as an obs::LadderTransition for
// recovery-SLO accounting (obs/slo.hpp).

#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/feedback_inband.hpp"
#include "core/feedback_oob.hpp"
#include "core/fortune_teller.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/tracer.hpp"
#include "queue/qdisc.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "stats/windowed.hpp"

namespace zhuge::core {

/// Fail-open watchdog tuning. Thresholds are deliberately generous:
/// degrading a healthy flow costs real optimisation, so only sustained,
/// unambiguous brokenness may trip it.
struct WatchdogConfig {
  bool enabled = true;
  /// Uplink silence longer than this — while downlink data keeps flowing
  /// and an updater exists (i.e. Zhuge is actively intercepting feedback)
  /// — escalates the ladder (floor: HoldOnly).
  Duration feedback_timeout = Duration::millis(500);
  /// EWMA of |observed queue wait − predicted delay| above this (ms),
  /// sustained over min_divergence_samples, escalates the ladder
  /// (floor: ClampedPredict).
  double divergence_threshold_ms = 400.0;
  double divergence_alpha = 0.05;
  std::uint64_t min_divergence_samples = 200;
  /// Minimum time spent at a degraded level before a step-down probe.
  Duration recovery_settle = Duration::millis(250);

  // ---- graded-ladder tuning ----
  /// Starting level. Anything but Full *pins* the ladder (no watchdog
  /// transitions) — an ablation/verification override, e.g. PassThrough
  /// must be fingerprint-identical to running without Zhuge.
  obs::LadderLevel initial_level = obs::LadderLevel::kFull;
  /// ClampedPredict: ceiling on any committed prediction.
  double clamped_max_prediction_ms = 100.0;
  /// ClampedPredict: with no own-flow dequeue seen this recently, the
  /// teller's view of the queue is stale — predict zero instead.
  Duration clamped_staleness = Duration::millis(250);
  /// Minimum spacing between successive escalations (hysteresis), so one
  /// sustained trigger climbs the ladder instead of leaping to the top.
  Duration escalate_holddown = Duration::millis(200);
  /// A re-escalation within this window of the previous step-down means
  /// the probe failed: the settle period doubles (capped below).
  Duration probe_failure_window = Duration::seconds(1);
  Duration max_recovery_settle = Duration::seconds(4);
};

/// Everything tunable about one Zhuge flow.
struct ZhugeConfig {
  FortuneTellerConfig fortune{};
  OobConfig oob{};
  InbandConfig inband{};
  WatchdogConfig watchdog{};
};

/// What the AP should do with an uplink packet.
enum class UplinkAction : std::uint8_t { kForward, kDelay, kDrop };

struct UplinkDecision {
  UplinkAction action = UplinkAction::kForward;
  Duration delay = Duration::zero();  ///< meaningful for kDelay
};

/// Binary degradation view kept for callers that only care whether any
/// intervention is still running (kActive == ladder level Full).
enum class FlowMode : std::uint8_t { kActive, kDegraded };

/// Per-flow Zhuge state machine.
class ZhugeFlow {
 public:
  /// `send_feedback` is the AP's wired uplink towards the sender; the
  /// in-band updater pushes its self-built TWCC packets through it.
  ZhugeFlow(sim::Simulator& simulator, sim::Rng& rng, net::FlowId flow,
            ZhugeConfig cfg, net::PacketHandler send_feedback)
      : sim_(simulator),
        rng_(rng),
        flow_(flow),
        cfg_(cfg),
        send_feedback_(std::move(send_feedback)),
        teller_(cfg.fortune),
        divergence_ms_(cfg.watchdog.divergence_alpha),
        level_(cfg.watchdog.initial_level),
        settle_(cfg.watchdog.recovery_settle),
        pinned_(cfg.watchdog.initial_level != obs::LadderLevel::kFull) {
    if (pinned_) {
      ladder_log_.push_back(obs::LadderTransition{
          0, 0, obs::LadderLevel::kFull, level_, obs::LadderReason::kForced});
    }
  }

  /// Feed departures of this flow from the downlink network-layer queue.
  /// `queue_empty_after`: the flow's queue is empty after this departure.
  void on_dequeue(const net::Packet& p, TimePoint now, bool queue_empty_after = false) {
    teller_.on_dequeue(p.size_bytes, now, queue_empty_after);
    if (p.flow == flow_) {
      last_own_dequeue_ = now;
      saw_own_dequeue_ = true;
    }
    // Prediction-quality tracking for the watchdog: compare the fortune
    // told at enqueue with the queue wait actually experienced. Own-flow
    // packets only (shared queues feed every teller every departure).
    if (p.flow == flow_ && p.predicted_delay_ms >= 0.0) {
      const double waited_ms = (now - p.ap_enqueue_time).to_millis();
      divergence_ms_.record(std::abs(waited_ms - p.predicted_delay_ms));
      ++divergence_samples_;
    }
  }

  /// Predict the fortune of a downlink data packet just before it is
  /// offered to the qdisc (the packet sees the queue in front of it, §2.3)
  /// and annotate `p.predicted_delay_ms`. At PassThrough nothing is
  /// predicted or annotated — the packet must be indistinguishable from a
  /// no-Zhuge run.
  [[nodiscard]] Duration predict_downlink(net::Packet& p, const queue::Qdisc& qdisc) {
    last_downlink_ = sim_.now();
    saw_downlink_ = true;
    if (level_ == obs::LadderLevel::kPassThrough) return Duration::zero();
    const auto pred = teller_.predict(sim_.now(), qdisc, flow_);
    Duration total = pred.total();
    if (level_ == obs::LadderLevel::kClampedPredict) {
      const bool stale = !saw_own_dequeue_ ||
                         sim_.now() - last_own_dequeue_ > cfg_.watchdog.clamped_staleness;
      if (stale) {
        total = Duration::zero();
      } else {
        const Duration cap =
            Duration::from_millis(cfg_.watchdog.clamped_max_prediction_ms);
        if (total > cap) total = cap;
      }
    }
    p.predicted_delay_ms = total.to_millis();
    return total;
  }

  /// Commit the predicted fortune to the feedback state. Call only after
  /// the packet was actually accepted by the qdisc: a tail-dropped packet
  /// must not be reported as (eventually) received — the AP sees the drop
  /// and keeps the loss visible to the sender. No-op from HoldOnly up:
  /// a failed-open flow records no fortunes (the client's own feedback is
  /// flowing instead).
  void commit_downlink(bool is_rtp, const net::RtpHeader* rtp, Duration total) {
    if (level_ >= obs::LadderLevel::kHoldOnly) return;
    if (is_rtp && rtp != nullptr) {
      inband(rtp->ssrc).on_rtp_packet(*rtp, total);
    } else {
      oob().on_data_delay(total, sim_.now());
    }
  }

  /// Convenience: predict + offer-independent commit (tests, benches).
  void on_downlink(net::Packet& p, const queue::Qdisc& qdisc) {
    const Duration total = predict_downlink(p, qdisc);
    if (p.is_rtp()) {
      commit_downlink(true, &p.rtp(), total);
    } else {
      commit_downlink(false, nullptr, total);
    }
  }

  /// Handle an uplink packet of the reverse flow end to end: drop it,
  /// forward it immediately, or hold it on the retreatable release queue.
  /// Returns the action taken (for the AP's counters). Intervention
  /// strictly weakens as the ladder level rises; at PassThrough everything
  /// passes untouched (fail-open).
  UplinkAction handle_uplink(net::Packet p) {
    touch_uplink();
    if (level_ == obs::LadderLevel::kPassThrough) {
      send_feedback_(std::move(p));
      return UplinkAction::kForward;
    }
    if (level_ == obs::LadderLevel::kHoldOnly) {
      // No TWCC drops and no new delay. OOB feedback only rides the
      // scheduler (at the order-preserving floor) while earlier holds are
      // still pending, so the level change can never reorder feedback;
      // with nothing pending it passes straight through.
      if (!p.is_rtcp() && oob_ && oob_->pending_holds() > 0 &&
          ((p.is_tcp() && p.tcp().is_ack) || !p.is_rtp())) {
        oob_->schedule_feedback_floor(std::move(p), sim_.now());
        return UplinkAction::kDelay;
      }
      send_feedback_(std::move(p));
      return UplinkAction::kForward;
    }
    if (p.is_rtcp()) {
      if (inband_ && inband_->should_drop_uplink(p)) return UplinkAction::kDrop;
      send_feedback_(std::move(p));
      return UplinkAction::kForward;
    }
    const bool oob_feedback = (p.is_tcp() && p.tcp().is_ack) || !p.is_rtp();
    if (oob_feedback && oob_) {
      oob_->schedule_feedback(std::move(p), sim_.now());
      return UplinkAction::kDelay;
    }
    send_feedback_(std::move(p));
    return UplinkAction::kForward;
  }

  /// Decide what to do with an uplink packet of the reverse flow
  /// (introspection form used by unit tests; does not forward anything).
  [[nodiscard]] UplinkDecision on_uplink(const net::Packet& p) {
    touch_uplink();
    if (level_ == obs::LadderLevel::kPassThrough) {
      return {UplinkAction::kForward, Duration::zero()};
    }
    if (level_ == obs::LadderLevel::kHoldOnly) {
      return {UplinkAction::kForward, Duration::zero()};
    }
    if (p.is_rtcp()) {
      // In-band mode: drop the client's own TWCC (Zhuge builds its own);
      // NACKs and receiver reports pass through untouched.
      if (inband_ && inband_->should_drop_uplink(p)) {
        return {UplinkAction::kDrop, Duration::zero()};
      }
      return {UplinkAction::kForward, Duration::zero()};
    }
    if (p.is_tcp() && p.tcp().is_ack && oob_) {
      return {UplinkAction::kDelay, oob_->ack_delay(sim_.now())};
    }
    // Unknown/encrypted out-of-band feedback: if we have been predicting
    // for this flow in OOB mode, treat any reverse-direction packet as
    // feedback (QUIC case — headers unreadable, 5-tuple only).
    if (!p.is_rtp() && oob_) {
      return {UplinkAction::kDelay, oob_->ack_delay(sim_.now())};
    }
    return {UplinkAction::kForward, Duration::zero()};
  }

  /// Evaluate the fail-open watchdog. Event-driven: the AP calls this on
  /// packet arrivals (no timer — a silent *network* has nothing to fail
  /// open for, and a recurring timer would keep an otherwise-finished
  /// simulation alive forever).
  void check_watchdog(TimePoint now) {
    if (!cfg_.watchdog.enabled || pinned_) return;
    if (level_ < obs::LadderLevel::kPassThrough) {
      const bool silence = feedback_silent(now);
      const bool diverged = divergence_tripped();
      if (silence || diverged) {
        const bool holddown_ok =
            !has_escalated_ ||
            now - last_escalation_ >= cfg_.watchdog.escalate_holddown;
        if (holddown_ok) {
          escalate(now, silence ? obs::LadderReason::kFeedbackSilence
                                : obs::LadderReason::kPredictionDivergence);
        }
        return;
      }
    }
    // Recovery probe: step down one level once feedback is demonstrably
    // alive again, predictions are no longer wildly off, and we have sat
    // out the (possibly backed-off) settle period.
    if (level_ == obs::LadderLevel::kFull) return;
    if (now - level_since_ < settle_) return;
    const bool uplink_alive =
        saw_uplink_ && now - last_uplink_ < cfg_.watchdog.feedback_timeout / 2;
    if (uplink_alive && !divergence_tripped()) step_down(now);
  }

  /// Flush every held/pending feedback artefact immediately. Called on
  /// flow teardown and before destruction during a live simulation — an
  /// ACK recorded by Zhuge must never be stranded. Idempotent.
  /// Returns how many packets were released.
  std::size_t teardown() {
    std::size_t flushed = 0;
    if (oob_) flushed += oob_->flush_pending();
    if (inband_) {
      const auto before = inband_->feedback_sent();
      inband_->flush_now();
      flushed += static_cast<std::size_t>(inband_->feedback_sent() - before);
    }
    flushed_on_teardown_ += flushed;
    return flushed;
  }

  /// AP clock discontinuity of `delta` (positive = jumped forward).
  void on_clock_jump(Duration delta) {
    if (oob_) oob_->on_clock_jump(sim_.now());
    if (inband_) inband_->on_clock_jump(delta);
    ZHUGE_TRACE(sim_.now(), "zhuge", "clock_jump",
                {"delta_ms", delta.to_millis()});
  }

  /// Test/ablation hook: jump to `level` (reason Forced) and pin the
  /// ladder there. Escalating moves flush held feedback like a watchdog
  /// escalation would.
  void force_level(obs::LadderLevel level) {
    pinned_ = true;
    if (level == level_) return;
    set_level(sim_.now(), level, obs::LadderReason::kForced);
  }

  [[nodiscard]] FortuneTeller& fortune_teller() { return teller_; }
  [[nodiscard]] const net::FlowId& flow() const { return flow_; }
  [[nodiscard]] bool is_inband() const { return inband_ != nullptr; }
  [[nodiscard]] FlowMode mode() const {
    return level_ == obs::LadderLevel::kFull ? FlowMode::kActive
                                             : FlowMode::kDegraded;
  }
  [[nodiscard]] obs::LadderLevel level() const { return level_; }
  [[nodiscard]] const std::vector<obs::LadderTransition>& ladder_log() const {
    return ladder_log_;
  }
  [[nodiscard]] Duration current_settle() const { return settle_; }
  [[nodiscard]] std::uint64_t degrade_count() const { return degrade_count_; }
  [[nodiscard]] std::uint64_t reactivate_count() const { return reactivate_count_; }
  [[nodiscard]] std::uint64_t flushed_on_teardown() const { return flushed_on_teardown_; }
  [[nodiscard]] std::uint64_t divergence_samples() const { return divergence_samples_; }
  [[nodiscard]] std::size_t pending_feedback() const {
    std::size_t n = 0;
    if (oob_) n += oob_->pending_holds();
    if (inband_) n += inband_->pending_entries();
    return n;
  }

 private:
  [[nodiscard]] bool feedback_silent(TimePoint now) const {
    // Silence only means something when Zhuge is actually intercepting
    // feedback (an updater exists), feedback has flowed before, and the
    // downlink is currently active — otherwise the whole path is idle.
    if (oob_ == nullptr && inband_ == nullptr) return false;
    if (!saw_uplink_ || !saw_downlink_) return false;
    return now - last_uplink_ > cfg_.watchdog.feedback_timeout &&
           now - last_downlink_ < cfg_.watchdog.feedback_timeout / 4;
  }

  [[nodiscard]] bool divergence_tripped() const {
    return divergence_samples_ >= cfg_.watchdog.min_divergence_samples &&
           divergence_ms_.has_value() &&
           divergence_ms_.value() > cfg_.watchdog.divergence_threshold_ms;
  }

  /// Move to `to`, recording the transition and applying per-level side
  /// effects. Divergence evidence resets on every move: samples gathered
  /// under one intervention regime say nothing about the next one.
  void set_level(TimePoint now, obs::LadderLevel to, obs::LadderReason reason) {
    const obs::LadderLevel from = level_;
    if (to > from) teardown();  // escalation must never strand feedback
    level_ = to;
    level_since_ = now;
    divergence_ms_.reset();
    divergence_samples_ = 0;
    if (oob_) oob_->set_conservative(to == obs::LadderLevel::kClampedPredict);
    ladder_log_.push_back(
        obs::LadderTransition{now.count_ns(), 0, from, to, reason});
    ZHUGE_TRACE(now, "zhuge", "ladder",
                {"from", static_cast<double>(static_cast<int>(from))},
                {"to", static_cast<double>(static_cast<int>(to))},
                {"reason", static_cast<double>(static_cast<int>(reason))});
  }

  void escalate(TimePoint now, obs::LadderReason reason) {
    // Per-trigger floor: divergence says predictions are wrong (stop
    // trusting them), silence says the whole loop is broken (stop
    // intervening). A repeat of the same trigger climbs one more level.
    const obs::LadderLevel floor =
        reason == obs::LadderReason::kFeedbackSilence
            ? obs::LadderLevel::kHoldOnly
            : obs::LadderLevel::kClampedPredict;
    obs::LadderLevel to = std::max(
        static_cast<obs::LadderLevel>(static_cast<std::uint8_t>(level_) + 1),
        floor);
    if (to > obs::LadderLevel::kPassThrough) to = obs::LadderLevel::kPassThrough;
    // A failed recovery probe (re-escalation shortly after a step-down)
    // doubles the settle period — exponential backoff on reactivation.
    if (has_stepped_down_ &&
        now - last_step_down_ <= cfg_.watchdog.probe_failure_window) {
      settle_ = std::min(settle_ * 2.0, cfg_.watchdog.max_recovery_settle);
    }
    last_escalation_ = now;
    has_escalated_ = true;
    ++degrade_count_;
    set_level(now, to, reason);
    ZHUGE_METRIC_INC("zhuge.degrade");
  }

  void step_down(TimePoint now) {
    const auto from = level_;
    const auto to =
        static_cast<obs::LadderLevel>(static_cast<std::uint8_t>(level_) - 1);
    last_step_down_ = now;
    has_stepped_down_ = true;
    ++reactivate_count_;
    set_level(now, to, obs::LadderReason::kRecoveryProbe);
    // Crossing back below HoldOnly re-enables commits after a suspension:
    // the updaters' learning state (sequence unwrapper, delta history,
    // token bank) is outage-era garbage by now — wipe it before the first
    // post-recovery fortune lands. The release clock is kept either way;
    // feedback order must survive the outage.
    if (from >= obs::LadderLevel::kHoldOnly || to == obs::LadderLevel::kFull) {
      if (oob_) oob_->reset_after_outage();
      if (inband_) inband_->reset_after_outage();
    }
    if (to == obs::LadderLevel::kFull) settle_ = cfg_.watchdog.recovery_settle;
    ZHUGE_METRIC_INC("zhuge.reactivate");
  }

  void touch_uplink() {
    last_uplink_ = sim_.now();
    saw_uplink_ = true;
  }

  OobFeedbackUpdater& oob() {
    if (!oob_) {
      oob_ = std::make_unique<OobFeedbackUpdater>(sim_, cfg_.oob, rng_,
                                                  send_feedback_);
      oob_->set_conservative(level_ == obs::LadderLevel::kClampedPredict);
    }
    return *oob_;
  }
  InbandFeedbackUpdater& inband(std::uint32_t ssrc) {
    if (!inband_) {
      inband_ = std::make_unique<InbandFeedbackUpdater>(sim_, cfg_.inband, flow_,
                                                        ssrc, send_feedback_);
    }
    return *inband_;
  }

  sim::Simulator& sim_;
  sim::Rng& rng_;
  net::FlowId flow_;
  ZhugeConfig cfg_;
  net::PacketHandler send_feedback_;
  FortuneTeller teller_;
  std::unique_ptr<OobFeedbackUpdater> oob_;
  std::unique_ptr<InbandFeedbackUpdater> inband_;

  TimePoint last_uplink_;
  TimePoint last_downlink_;
  TimePoint last_own_dequeue_;
  bool saw_uplink_ = false;
  bool saw_downlink_ = false;
  bool saw_own_dequeue_ = false;
  stats::Ewma divergence_ms_;
  std::uint64_t divergence_samples_ = 0;

  // ---- ladder state ----
  obs::LadderLevel level_;
  TimePoint level_since_;
  TimePoint last_escalation_;
  TimePoint last_step_down_;
  Duration settle_;
  bool pinned_ = false;
  bool has_escalated_ = false;
  bool has_stepped_down_ = false;
  std::vector<obs::LadderTransition> ladder_log_;

  std::uint64_t degrade_count_ = 0;
  std::uint64_t reactivate_count_ = 0;
  std::uint64_t flushed_on_teardown_ = 0;
};

}  // namespace zhuge::core
