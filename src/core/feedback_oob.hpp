#pragma once
// Zhuge Feedback Updater — out-of-band protocols (§5.2, Algorithms 1–2).
//
// For TCP/QUIC-style protocols the *timing* of ACK arrivals is the
// congestion signal, so Zhuge delays uplink ACKs to mirror the delays the
// Fortune Teller predicts for downlink data:
//
//  * Relative deltas, not absolutes — only the packet-to-packet *change*
//    in predicted delay is applied, so a steadily-built queue adds no
//    steady-state RTT inflation.
//  * Distributional equivalence — each ACK samples a delay from the recent
//    delta distribution rather than accumulating every delta into one ACK.
//  * Delay tokens — negative deltas (queue draining) cannot be applied as
//    negative waiting time; they first *retreat* already-scheduled holds
//    (so drain news travels as fast as congestion news) and any remainder
//    is banked to cancel future positive samples, keeping the mean applied
//    delay equal to the mean predicted delta.
//  * Order preservation — an ACK is never scheduled before the previously
//    scheduled ACK of the same flow.
//  * Conservation — the cumulative applied shift never exceeds the
//    cumulative positive delta observed on data packets (sampling draws
//    with replacement, so an uncapped sampler could re-apply one large
//    delta many times when ACKs momentarily outnumber data packets).
//
// Note on Algorithm 2 line 1: the paper prints `min(0, lastSentTime −
// curArrvTime)`, which is non-positive and would defeat the stated goal of
// order preservation; we implement the evident intent, `max(0, …)`.
// Tokens are consumed against the sampled delta only, never against the
// order-preserving floor — consuming the floor (as a literal reading of
// lines 3–10 would) could reorder feedback, which §5.2 explicitly forbids.

#include <cstdint>
#include <deque>
#include <memory>

#include "core/ack_scheduler.hpp"
#include "obs/invariants.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "stats/windowed.hpp"

namespace zhuge::core {

using sim::Duration;
using sim::TimePoint;

/// Configuration for the out-of-band updater.
struct OobConfig {
  Duration delta_window = Duration::millis(40);  ///< delta-history span
  /// Per-ACK clamp on the added delay. Must stay safely below the
  /// sender's minimum RTO: an ACK held longer than the RTO fires a
  /// spurious timeout, collapsing the window the mechanism is trying to
  /// steer gently.
  Duration max_extra_delay = Duration::millis(120);
  /// Cap on how far the ACK release clock may run ahead of real time.
  /// During a deep fade the predicted deltas legitimately sum to seconds;
  /// scheduling ACKs that far out blacks the feedback stream out long
  /// after the queue has drained. An ACK ~250 ms late already says "delay
  /// blew up" as loudly as a 4 s one.
  Duration max_pending_shift = Duration::millis(250);
  bool distributional_sampling = true;  ///< false = accumulate deltas (ablation)
  bool use_tokens = true;               ///< false = discard negative deltas (ablation)
  bool retreat_pending = true;          ///< false = one-shot holds (ablation)
  /// EWMA applied to the predicted totalDelay before delta extraction.
  /// Packets later in a frame burst genuinely wait longer, and their ACKs
  /// already carry that delay naturally — re-applying the intra-burst
  /// sawtooth as extra ACK delay would double the path's delay variance
  /// and poison delay-sensitive CCAs (Copa's dq floor). Smoothing keeps
  /// multi-packet trends (real ABW changes) and drops per-packet noise.
  /// 1.0 disables smoothing (the paper's literal Algorithm 1).
  double delta_smoothing_alpha = 0.25;
};

/// Per-flow out-of-band feedback state machine.
///
/// Two construction modes:
///  * computation-only (tests, CPU benches): ack_delay() returns the hold
///    time and the caller does its own scheduling;
///  * full (the AP): schedule_feedback() owns holding and releasing the
///    packets, including retreating pending holds on queue drain.
class OobFeedbackUpdater {
 public:
  /// Computation-only mode.
  OobFeedbackUpdater(OobConfig cfg, sim::Rng& rng)
      : cfg_(cfg), rng_(rng), delta_history_(cfg.delta_window) {}

  /// Full mode: held packets are released through `out`.
  OobFeedbackUpdater(sim::Simulator& simulator, OobConfig cfg, sim::Rng& rng,
                     net::PacketHandler out)
      : cfg_(cfg), rng_(rng), delta_history_(cfg.delta_window) {
    scheduler_ = std::make_unique<AckScheduler>(simulator, std::move(out));
    // Every hold is floor+extra <= max_pending_shift by construction;
    // declare that as a checked bound so regressions (and faults that
    // would strand ACKs) surface as feedback.hold_bound violations.
    scheduler_->set_max_hold(cfg.max_pending_shift);
  }

  /// Algorithm 1: fold one predicted totalDelay into the delta state.
  void on_data_delay(Duration total_delay, TimePoint now) {
    if (has_last_) {
      total_delay = last_total_delay_ +
                    (total_delay - last_total_delay_) * cfg_.delta_smoothing_alpha;
      const Duration delta = total_delay - last_total_delay_;
      ZHUGE_TRACE(now, "feedback.oob", "data_delta",
                  {"delta_ms", delta.to_millis()},
                  {"smoothed_total_ms", total_delay.to_millis()},
                  {"token_total_ms", token_total_.to_millis()});
      if (delta >= Duration::zero()) {
        observed_shift_ += delta;
        if (cfg_.distributional_sampling) {
          delta_history_.record(now, delta.to_seconds());
        } else {
          pending_accumulated_ += delta;  // ablation: per-ACK accumulation
        }
      } else {
        Duration credit = -delta;
        if (scheduler_ != nullptr && cfg_.retreat_pending) {
          // Queue draining: pull already-scheduled holds back first so the
          // sender learns of the drain immediately.
          const Duration retreated = scheduler_->retreat(credit);
          applied_shift_ -= retreated;
          if (applied_shift_ < Duration::zero()) applied_shift_ = Duration::zero();
          credit -= retreated;
        }
        if (cfg_.use_tokens && !conservative_ && credit > Duration::zero()) {
          token_history_.push_back(credit);
          token_total_ += credit;
        }
      }
    }
    last_total_delay_ = total_delay;
    has_last_ = true;
  }

  /// Algorithm 2, computation-only form: how long to hold the feedback
  /// packet arriving at `now`. Advances the release clock; call exactly
  /// once per feedback packet.
  [[nodiscard]] Duration ack_delay(TimePoint now) {
    const TimePoint last =
        scheduler_ != nullptr ? scheduler_->last_release(now)
                              : (has_sent_ ? last_sent_time_ : now);
    const Duration floor = last > now ? last - now : Duration::zero();
    const Duration extra = draw_extra(now, floor);
    const Duration actual = floor + extra;
    ZHUGE_INVARIANT(now, "feedback.extra_bound", extra <= cfg_.max_extra_delay,
                    "sampled extra exceeds max_extra_delay");
    last_sent_time_ = now + actual;
    has_sent_ = true;
    ZHUGE_METRIC_INC("feedback.oob.acks");
    ZHUGE_METRIC_OBSERVE("feedback.oob.ack_hold_ms", actual.to_millis());
    ZHUGE_TRACE(now, "feedback.oob", "ack_hold", {"hold_ms", actual.to_millis()},
                {"floor_ms", floor.to_millis()}, {"extra_ms", extra.to_millis()},
                {"pending_holds", double(pending_holds())});
    return actual;
  }

  /// Full-mode entry: compute the hold and enqueue the packet for release.
  void schedule_feedback(net::Packet p, TimePoint now) {
    const Duration actual = ack_delay(now);
    scheduler_->hold(std::move(p), now + actual);
  }

  /// Full-mode entry for degraded ladder levels: hold at the
  /// order-preserving floor only. No sampling, no token consumption, no
  /// RNG draw — feedback order stays intact across the level change but
  /// no new delay is ever added.
  void schedule_feedback_floor(net::Packet p, TimePoint now) {
    const TimePoint last = scheduler_->last_release(now);
    const Duration floor = last > now ? last - now : Duration::zero();
    last_sent_time_ = now + floor;
    has_sent_ = true;
    ZHUGE_METRIC_INC("feedback.oob.floor_acks");
    scheduler_->hold(std::move(p), now + floor);
  }

  /// Conservative mode (ladder level ClampedPredict): negative deltas
  /// still retreat pending holds — drain news must keep travelling fast —
  /// but are never banked as tokens, and the existing bank is dropped on
  /// entry. Stale credit cannot cancel delay applied after recovery.
  void set_conservative(bool on) {
    if (on && !conservative_) {
      token_history_.clear();
      token_total_ = Duration::zero();
    }
    conservative_ = on;
  }
  [[nodiscard]] bool conservative() const { return conservative_; }

  /// Outstanding token budget (tests / introspection).
  [[nodiscard]] Duration token_total() const { return token_total_; }
  [[nodiscard]] std::size_t delta_count() const { return delta_history_.sample_count(); }
  [[nodiscard]] Duration applied_shift() const { return applied_shift_; }
  [[nodiscard]] Duration observed_shift() const { return observed_shift_; }
  [[nodiscard]] std::size_t pending_holds() const {
    return scheduler_ == nullptr ? 0 : scheduler_->pending();
  }

  /// Release every held ACK immediately (teardown / fail-open). Returns
  /// how many packets were flushed.
  std::size_t flush_pending() {
    return scheduler_ == nullptr ? 0 : scheduler_->flush();
  }

  /// Reset learning state after an outage or AP restart. The release
  /// clock (last_sent_time_) is *kept*: ACKs observed before the outage
  /// were genuinely sent, and forgetting them could reorder feedback.
  /// Delta history ages out of its window on its own.
  void reset_after_outage() {
    token_history_.clear();
    token_total_ = Duration::zero();
    observed_shift_ = Duration::zero();
    applied_shift_ = Duration::zero();
    pending_accumulated_ = Duration::zero();
    has_last_ = false;
  }

  /// Clock discontinuity between AP and the rest of the network. After a
  /// backward jump the remembered release clock can sit far in the new
  /// future and would freeze feedback; clamp it into a sane band.
  void on_clock_jump(TimePoint now) {
    if (!has_sent_) return;
    const TimePoint hi = now + cfg_.max_pending_shift;
    if (last_sent_time_ > hi) last_sent_time_ = hi;
    if (last_sent_time_ < now) last_sent_time_ = now;
  }

 private:
  /// Sample a delta, consume tokens, apply conservation and caps.
  [[nodiscard]] Duration draw_extra(TimePoint now, Duration floor) {
    Duration extra = Duration::zero();
    if (cfg_.distributional_sampling) {
      if (const auto s = delta_history_.sample(now, rng_); s.has_value()) {
        extra = Duration::from_seconds(*s);
      }
    } else {
      extra = pending_accumulated_;
      pending_accumulated_ = Duration::zero();
    }

    // Consume banked negative deltas against the sampled part only.
    while (!token_history_.empty() && extra > Duration::zero()) {
      Duration& front = token_history_.front();
      if (front > extra) {
        front -= extra;
        token_total_ -= extra;
        extra = Duration::zero();
        break;
      }
      extra -= front;
      token_total_ -= front;
      token_history_.pop_front();
    }

    // Conservation cap.
    const Duration budget = observed_shift_ - applied_shift_;
    if (extra > budget) extra = std::max(budget, Duration::zero());
    if (extra > cfg_.max_extra_delay) extra = cfg_.max_extra_delay;
    // Pending-shift cap.
    if (floor + extra > cfg_.max_pending_shift) {
      extra = floor >= cfg_.max_pending_shift ? Duration::zero()
                                              : cfg_.max_pending_shift - floor;
    }
    applied_shift_ += extra;
    return extra;
  }

  OobConfig cfg_;
  sim::Rng& rng_;
  stats::WindowedSampler delta_history_;  ///< recent non-negative deltas (s)
  std::deque<Duration> token_history_;
  Duration token_total_ = Duration::zero();
  std::unique_ptr<AckScheduler> scheduler_;  ///< full mode only

  Duration observed_shift_ = Duration::zero();  ///< cumulative +deltas seen
  Duration applied_shift_ = Duration::zero();   ///< cumulative delay applied

  Duration last_total_delay_ = Duration::zero();
  bool has_last_ = false;
  TimePoint last_sent_time_;
  bool has_sent_ = false;
  Duration pending_accumulated_ = Duration::zero();  ///< ablation mode only
  bool conservative_ = false;  ///< ladder ClampedPredict: no token banking
};

}  // namespace zhuge::core
