// The Fortune Teller is fully inline (see fortune_teller.hpp): on_dequeue()
// and predict() are the AP's per-packet hot path and must fuse with the SoA
// windowed estimators they drive. This TU only anchors the zhuge_core
// library target.
#include "core/fortune_teller.hpp"
