#include "core/fortune_teller.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace zhuge::core {

void FortuneTeller::on_dequeue(std::int64_t bytes, TimePoint now,
                               bool queue_empty_after) {
  tx_rate_.record(now, bytes);

  if (last_dequeue_.has_value()) {
    const Duration gap = now - *last_dequeue_;
    if (gap >= cfg_.burst_resolution) {
      // A new burst begins: the previous one is complete.
      finalize_burst(now);
      // Record the inter-departure interval; sub-millisecond gaps are
      // intra-AMPDU and tell us nothing about the channel (§4.2), and a
      // gap that followed an emptied queue is application idle time.
      if (!last_left_queue_empty_) {
        dequeue_interval_.record(now, gap.to_seconds());
      }
      current_burst_bytes_ = bytes;
      current_burst_start_ = now;
    } else {
      current_burst_bytes_ += bytes;  // same simultaneous departure
    }
  } else {
    current_burst_bytes_ = bytes;
    current_burst_start_ = now;
  }
  last_dequeue_ = now;
  last_left_queue_empty_ = queue_empty_after;
}

void FortuneTeller::finalize_burst(TimePoint now) {
  if (current_burst_bytes_ > 0) {
    burst_max_.record(now, static_cast<double>(current_burst_bytes_));
  }
  current_burst_bytes_ = 0;
}

double FortuneTeller::tx_rate_bps(TimePoint now) {
  const auto r = tx_rate_.rate_bps(now);
  if (!r.has_value() || *r <= 0.0) return cfg_.fallback_rate_bps;
  return *r;
}

Duration FortuneTeller::tx_delay(TimePoint now) {
  const auto m = dequeue_interval_.mean(now);
  if (!m.has_value()) return cfg_.fallback_tx;
  return Duration::from_seconds(*m);
}

std::int64_t FortuneTeller::max_burst_bytes(TimePoint now) {
  // Include the burst currently being accumulated.
  const double past = burst_max_.max(now, 0.0);
  return static_cast<std::int64_t>(
      std::max(past, static_cast<double>(current_burst_bytes_)));
}

FortuneTeller::Prediction FortuneTeller::predict(
    TimePoint now, std::int64_t queue_bytes, std::optional<TimePoint> head_since) {
  Prediction out{};

  // qLong (Eq. 1): queue backlog beyond one link-layer burst, divided by
  // the windowed dequeue rate.
  std::int64_t q_size = queue_bytes;
  if (cfg_.burst_adjustment) {
    q_size = std::max<std::int64_t>(queue_bytes - max_burst_bytes(now), 0);
  }
  const double rate = tx_rate_bps(now);
  out.q_long = Duration::from_seconds(static_cast<double>(q_size) * 8.0 / rate);

  // qShort: how long the current head packet has been waiting for a grant.
  if (cfg_.use_qshort && head_since.has_value()) {
    out.q_short = now - *head_since;
  }

  // tx: link-layer transmission delay.
  out.tx = tx_delay(now);

  // Sanity clamp: predictions beyond the clamp are equally actionable.
  const Duration total = out.q_long + out.q_short + out.tx;
  if (total > cfg_.max_prediction) {
    const double scale = cfg_.max_prediction.ratio(total);
    out.q_long = out.q_long * scale;
    out.q_short = out.q_short * scale;
    out.tx = out.tx * scale;
  }

  ZHUGE_METRIC_INC("fortune.predictions");
  ZHUGE_METRIC_OBSERVE("fortune.predicted_ms", out.total().to_millis());
  ZHUGE_TRACE(now, "fortune", "predict", {"qLong_ms", out.q_long.to_millis()},
              {"qShort_ms", out.q_short.to_millis()},
              {"tx_ms", out.tx.to_millis()},
              {"queue_bytes", double(queue_bytes)}, {"rate_mbps", rate / 1e6});
  return out;
}

}  // namespace zhuge::core
