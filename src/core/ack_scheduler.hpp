#pragma once
// Release scheduler for delayed out-of-band feedback packets.
//
// The out-of-band updater does not just compute a hold time and fire a
// one-shot timer: when the Fortune Teller observes the queue *draining*
// (negative delay deltas), already-scheduled holds are retreated so the
// good news reaches the sender just as fast as the bad news did — a
// one-shot timer would freeze the release clock at its most pessimistic
// value and black the feedback stream out after the congestion has passed.
// Retreats shift every pending release by the same amount (clamped at
// now), which preserves order.

#include <deque>

#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace zhuge::core {

using sim::Duration;
using sim::TimePoint;

/// Ordered, retreatable release queue for held feedback packets.
class AckScheduler {
 public:
  AckScheduler(sim::Simulator& simulator, net::PacketHandler out)
      : sim_(simulator), out_(std::move(out)) {}

  /// Hold `p` until `release` (clamped to now). Releases stay ordered as
  /// long as callers never pass a `release` before the previous one —
  /// which the order-preserving floor in the updater guarantees.
  void hold(net::Packet p, TimePoint release) {
    if (release < sim_.now()) release = sim_.now();
    pending_.push_back({std::move(p), release});
    arm();
  }

  /// Shift every pending release `amount` earlier (never before now).
  /// Returns how much the *latest* release actually retreated, so the
  /// caller can keep its shift accounting consistent.
  Duration retreat(Duration amount) {
    const TimePoint now = sim_.now();
    if (pending_.empty() || amount <= Duration::zero()) return Duration::zero();
    const TimePoint last_before = pending_.back().release;
    for (auto& h : pending_) {
      h.release = std::max(now, h.release - amount);
    }
    arm();
    return last_before - pending_.back().release;
  }

  /// Release time of the most recently scheduled packet (now if empty).
  [[nodiscard]] TimePoint last_release(TimePoint now) const {
    return pending_.empty() ? now : pending_.back().release;
  }

  [[nodiscard]] std::size_t pending() const { return pending_.size(); }

 private:
  struct Held {
    net::Packet packet;
    TimePoint release;
  };

  void arm() {
    if (timer_ != 0) {
      sim_.cancel(timer_);
      timer_ = 0;
    }
    if (pending_.empty()) return;
    timer_ = sim_.schedule_at(pending_.front().release, [this] {
      timer_ = 0;
      fire();
    });
  }

  void fire() {
    const TimePoint now = sim_.now();
    while (!pending_.empty() && pending_.front().release <= now) {
      out_(std::move(pending_.front().packet));
      pending_.pop_front();
    }
    arm();
  }

  sim::Simulator& sim_;
  net::PacketHandler out_;
  std::deque<Held> pending_;
  sim::EventId timer_ = 0;
};

}  // namespace zhuge::core
