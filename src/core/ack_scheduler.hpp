#pragma once
// Release scheduler for delayed out-of-band feedback packets.
//
// The out-of-band updater does not just compute a hold time and fire a
// one-shot timer: when the Fortune Teller observes the queue *draining*
// (negative delay deltas), already-scheduled holds are retreated so the
// good news reaches the sender just as fast as the bad news did — a
// one-shot timer would freeze the release clock at its most pessimistic
// value and black the feedback stream out after the congestion has passed.
// Retreats shift every pending release by the same amount (clamped at
// now), which preserves order.
//
// Robustness contract (chaos-tested):
//  * flush() releases every held packet immediately — callers invoke it on
//    flow teardown and on fail-open degradation, so an ACK is never
//    stranded inside a dying or bypassed flow object;
//  * an optional max-hold bound turns "no ACK held past the cap" into a
//    checked invariant (feedback.hold_bound) instead of an assumption;
//  * the destructor cancels the pending timer — a flow torn down mid-run
//    (AP restart) must not leave a dangling callback in the simulator.

#include <deque>

#include "net/packet.hpp"
#include "obs/invariants.hpp"
#include "sim/simulator.hpp"

namespace zhuge::core {

using sim::Duration;
using sim::TimePoint;

/// Ordered, retreatable release queue for held feedback packets.
class AckScheduler {
 public:
  AckScheduler(sim::Simulator& simulator, net::PacketHandler out)
      : sim_(simulator), out_(std::move(out)) {}

  ~AckScheduler() {
    if (timer_ != 0) sim_.cancel(timer_);
  }

  AckScheduler(const AckScheduler&) = delete;
  AckScheduler& operator=(const AckScheduler&) = delete;

  /// Hold `p` until `release` (clamped to now). Releases stay ordered as
  /// long as callers never pass a `release` before the previous one —
  /// which the order-preserving floor in the updater guarantees (and the
  /// feedback.ack_order invariant checks).
  void hold(net::Packet p, TimePoint release) {
    const TimePoint now = sim_.now();
    if (release < now) release = now;
    ZHUGE_INVARIANT(now, "feedback.ack_order",
                    pending_.empty() || release >= pending_.back().release,
                    "hold scheduled before the previously scheduled release");
    pending_.push_back({std::move(p), release, now});
    arm();
  }

  /// Shift every pending release `amount` earlier (never before now).
  /// Returns how much the *latest* release actually retreated, so the
  /// caller can keep its shift accounting consistent.
  Duration retreat(Duration amount) {
    const TimePoint now = sim_.now();
    if (pending_.empty() || amount <= Duration::zero()) return Duration::zero();
    const TimePoint last_before = pending_.back().release;
    for (auto& h : pending_) {
      h.release = std::max(now, h.release - amount);
    }
    arm();
    return last_before - pending_.back().release;
  }

  /// Release every held packet immediately, in order. Returns how many
  /// packets were flushed. Used on flow teardown and fail-open.
  std::size_t flush() {
    const std::size_t n = pending_.size();
    while (!pending_.empty()) {
      release_front(sim_.now());
    }
    if (timer_ != 0) {
      sim_.cancel(timer_);
      timer_ = 0;
    }
    return n;
  }

  /// Declare the longest a packet may legally sit in this queue; releases
  /// beyond it raise the feedback.hold_bound invariant. Zero disables.
  void set_max_hold(Duration max_hold) { max_hold_ = max_hold; }

  /// Release time of the most recently scheduled packet (now if empty).
  [[nodiscard]] TimePoint last_release(TimePoint now) const {
    return pending_.empty() ? now : pending_.back().release;
  }

  [[nodiscard]] std::size_t pending() const { return pending_.size(); }

 private:
  struct Held {
    net::Packet packet;
    TimePoint release;
    TimePoint held_since;
  };

  void arm() {
    if (timer_ != 0) {
      sim_.cancel(timer_);
      timer_ = 0;
    }
    if (pending_.empty()) return;
    timer_ = sim_.schedule_at(pending_.front().release, [this] {
      timer_ = 0;
      fire();
    });
  }

  void release_front(TimePoint now) {
    Held h = std::move(pending_.front());
    pending_.pop_front();
    ZHUGE_INVARIANT(now, "feedback.hold_bound",
                    max_hold_ <= Duration::zero() ||
                        now - h.held_since <= max_hold_,
                    "ACK held " + std::to_string((now - h.held_since).to_millis()) +
                        " ms, cap " + std::to_string(max_hold_.to_millis()) + " ms");
    out_(std::move(h.packet));
  }

  void fire() {
    const TimePoint now = sim_.now();
    while (!pending_.empty() && pending_.front().release <= now) {
      release_front(now);
    }
    arm();
  }

  sim::Simulator& sim_;
  net::PacketHandler out_;
  std::deque<Held> pending_;
  sim::EventId timer_ = 0;
  Duration max_hold_ = Duration::zero();
};

}  // namespace zhuge::core
