#include "transport/rtp_receiver.hpp"

#include <algorithm>

namespace zhuge::transport {

Packet RtpReceiver::make_rtcp(net::RtcpHeader h) {
  Packet p;
  p.uid = uids_.next();
  p.flow = reverse_flow_;
  p.size_bytes = cfg_.rtcp_bytes;
  p.sent_time = sim_.now();
  p.header = std::move(h);
  return p;
}

RtpReceiver::~RtpReceiver() {
  sim_.cancel(twcc_timer_);
  sim_.cancel(nack_timer_);
  sim_.cancel(rr_timer_);
}

void RtpReceiver::arm_timers() {
  arm_timers_twcc();
  arm_timers_nack();
  arm_timers_rr();
}

void RtpReceiver::arm_timers_twcc() {
  twcc_timer_ = sim_.schedule_after(cfg_.twcc_interval, [this] {
    send_twcc();
    arm_timers_twcc();
  });
}

void RtpReceiver::arm_timers_nack() {
  nack_timer_ = sim_.schedule_after(cfg_.nack_retry_interval, [this] {
    send_nacks();
    arm_timers_nack();
  });
}

void RtpReceiver::arm_timers_rr() {
  rr_timer_ = sim_.schedule_after(cfg_.rr_interval, [this] {
    send_rr();
    arm_timers_rr();
  });
}

void RtpReceiver::on_rtp(const Packet& p) {
  const TimePoint now = sim_.now();
  const net::RtpHeader& h = p.rtp();
  ++packets_received_;
  // Receiver-report loss counts *original* transmissions only: a packet
  // recovered by NACK retransmission was still lost on the path, and the
  // loss-based controllers need to see it.
  if (!h.retransmission) ++interval_received_;

  if (!flow_known_) {
    reverse_flow_ = p.flow.reversed();
    flow_known_ = true;
  }

  pending_twcc_.push_back({h.twcc_seq, now});

  // Loss tracking on unwrapped RTP seq.
  const std::int64_t seq = rtp_unwrap_.unwrap(h.seq);
  if (interval_expected_base_ < 0) interval_expected_base_ = seq;
  if (seq > highest_rtp_) {
    for (std::int64_t s = highest_rtp_ + 1; s < seq; ++s) {
      missing_.emplace(s, NackState{});
    }
    highest_rtp_ = seq;
  } else {
    missing_.erase(seq);  // retransmission or reordering filled a hole
  }

  // Frame reassembly.
  FrameState& fs = frames_[h.frame_id];
  fs.total = h.packets_in_frame;
  fs.capture = h.capture_time;
  if (!fs.seen) {
    fs.seen = true;
    fs.first_arrival = now;
  }
  fs.received.insert(h.packet_in_frame);
  if (!fs.complete && fs.total > 0 && fs.received.size() >= fs.total) {
    fs.complete = true;
    fs.complete_time = now;
  }
  try_decode();
}

void RtpReceiver::try_decode() {
  // Strictly in-order decode: a frame decodes only when complete and all
  // previous frames have been decoded (reference dependency).
  while (true) {
    auto it = frames_.find(next_decode_frame_);
    if (it == frames_.end()) break;
    FrameState& fs = it->second;
    if (fs.total == 0 || fs.received.size() < fs.total) break;
    stats_.on_frame_decoded(fs.capture, sim_.now());
    if (obs::attrib_enabled()) {
      obs::FrameSpan span;
      span.flow_key = cfg_.ssrc;
      span.frame_id = next_decode_frame_;
      span.capture_ns = fs.capture.count_ns();
      span.first_arrival_ns = fs.seen ? fs.first_arrival.count_ns() : -1;
      span.complete_ns = fs.complete ? fs.complete_time.count_ns() : -1;
      span.decode_ns = sim_.now().count_ns();
      span.packets = fs.total;
      stats_.on_frame_span(span);
    }
    frames_.erase(it);
    ++next_decode_frame_;
  }
  // Drop state of frames far in the past (already decoded duplicates).
  while (!frames_.empty() && frames_.begin()->first < next_decode_frame_) {
    frames_.erase(frames_.begin());
  }
}

void RtpReceiver::send_twcc() {
  if (flow_known_ && !pending_twcc_.empty()) {
    net::TwccFeedback fb;
    fb.ssrc = cfg_.ssrc;
    fb.entries = std::move(pending_twcc_);
    pending_twcc_.clear();
    rtcp_out_(make_rtcp(net::RtcpHeader{std::move(fb)}));
  }
}

void RtpReceiver::maybe_skip_stalled() {
  // A permanently-lost frame (NACK budget exhausted at both ends) would
  // stall the in-order decoder forever; abandon it after stall_timeout.
  while (true) {
    auto it = frames_.find(next_decode_frame_);
    const bool have_newer =
        !frames_.empty() && frames_.rbegin()->first > next_decode_frame_;
    if (it == frames_.end()) {
      // Head frame entirely missing but newer frames exist and are aging.
      if (have_newer && sim_.now() - frames_.begin()->second.first_arrival >
                            cfg_.stall_timeout) {
        ++next_decode_frame_;
        continue;
      }
      break;
    }
    if (it->second.received.size() >= it->second.total && it->second.total > 0) {
      try_decode();
      continue;
    }
    if (it->second.seen &&
        sim_.now() - it->second.first_arrival > cfg_.stall_timeout) {
      frames_.erase(it);
      ++next_decode_frame_;
      continue;
    }
    break;
  }
}

void RtpReceiver::send_nacks() {
  maybe_skip_stalled();
  if (!flow_known_ || missing_.empty()) return;
  const TimePoint now = sim_.now();
  net::RtcpNack nack;
  nack.ssrc = cfg_.ssrc;
  for (auto it = missing_.begin(); it != missing_.end();) {
    NackState& st = it->second;
    if (st.retries >= cfg_.max_nack_retries) {
      it = missing_.erase(it);  // give up; frame will stall until skipped
      continue;
    }
    if (st.retries == 0 || now - st.last_sent >= cfg_.nack_retry_interval) {
      nack.seqs.push_back(static_cast<std::uint16_t>(it->first & 0xFFFF));
      ++st.retries;
      st.last_sent = now;
    }
    ++it;
  }
  if (!nack.seqs.empty()) {
    ++nacks_sent_;
    rtcp_out_(make_rtcp(net::RtcpHeader{std::move(nack)}));
  }
}

void RtpReceiver::send_rr() {
  if (!flow_known_) return;
  net::RtcpReceiverReport rr;
  rr.ssrc = cfg_.ssrc;
  const std::int64_t expected =
      interval_expected_base_ >= 0 ? highest_rtp_ - interval_expected_base_ + 1 : 0;
  if (expected > 0) {
    const double lost = std::max<double>(
        0.0, static_cast<double>(expected) - static_cast<double>(interval_received_));
    rr.loss_fraction = lost / static_cast<double>(expected);
  }
  rr.highest_seq = static_cast<std::uint32_t>(std::max<std::int64_t>(highest_rtp_, 0));
  interval_received_ = 0;
  interval_expected_base_ = highest_rtp_ + 1;
  rtcp_out_(make_rtcp(net::RtcpHeader{rr}));
}

}  // namespace zhuge::transport
