#include "transport/rtp_sender.hpp"

#include <algorithm>

namespace zhuge::transport {

RtpSender::RtpSender(sim::Simulator& simulator, sim::Rng& rng, net::FlowId flow,
                     Config cfg, net::PacketUidSource& uids, PacketHandler out)
    : sim_(simulator),
      rng_(rng),
      flow_(flow),
      cfg_(cfg),
      uids_(uids),
      out_(std::move(out)),
      encoder_(cfg.video, rng),
      gcc_(cfg.gcc),
      nada_(cfg.nada),
      scream_(cfg.scream) {}

RtpSender::~RtpSender() {
  sim_.cancel(frame_timer_);
  for (const sim::EventId id : pacing_timers_) sim_.cancel(id);
}

void RtpSender::start() { on_frame_tick(); }

double RtpSender::target_rate_bps() const {
  switch (cfg_.rate_controller) {
    case RtpCca::kGcc: return gcc_.target_rate_bps();
    case RtpCca::kNada: return nada_.target_rate_bps();
    case RtpCca::kScream: return scream_.target_rate_bps();
  }
  return gcc_.target_rate_bps();
}

void RtpSender::on_frame_tick() {
  // All of the previous frame's paced sends have fired (their offsets are
  // clamped strictly below the frame interval), so drop the stale ids.
  pacing_timers_.clear();
  const TimePoint capture = sim_.now();
  const std::uint64_t frame_bytes = encoder_.next_frame_bytes(target_rate_bps());
  const std::uint32_t frame_id = next_frame_id_++;
  ++frames_sent_;

  const auto n_packets = static_cast<std::uint16_t>(
      (frame_bytes + cfg_.max_payload - 1) / cfg_.max_payload);
  std::uint64_t remaining = frame_bytes;
  for (std::uint16_t i = 0; i < n_packets; ++i) {
    const auto payload = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(cfg_.max_payload, remaining));
    remaining -= payload;

    Packet p;
    p.uid = uids_.next();
    p.flow = flow_;
    p.size_bytes = payload + cfg_.header_bytes;
    p.sent_time = sim_.now();
    // Packetisation instant: the pacing stage measures from here to the
    // (possibly deferred) wire departure in send_packet's pacing timer.
    ZHUGE_SPAN_STAMP(p.span.paced_ns, sim_.now());
    net::RtpHeader h;
    h.ssrc = cfg_.ssrc;
    h.seq = next_rtp_seq_++;
    h.twcc_seq = next_twcc_seq_++;
    h.frame_id = frame_id;
    h.packet_in_frame = i;
    h.packets_in_frame = n_packets;
    h.marker = (i + 1 == n_packets);
    h.capture_time = capture;
    p.header = h;

    // Spread the frame's packets over a short pacing span (senders burst
    // frames out quickly to minimise latency, §3.1). Clamp the span below
    // the frame interval so paced sends never outlive the tick that
    // scheduled them (keeps pacing_timers_ bookkeeping one frame deep).
    const Duration span = std::min(cfg_.pacing_span, encoder_.frame_interval());
    const Duration offset =
        n_packets > 1 ? span * (static_cast<double>(i) /
                                static_cast<double>(n_packets))
                      : Duration::zero();
    send_packet(std::move(p), offset);
  }

  frame_timer_ =
      sim_.schedule_after(encoder_.frame_interval(), [this] { on_frame_tick(); });
}

void RtpSender::send_packet(Packet p, Duration offset) {
  // Record send history at the *scheduled* departure time.
  const TimePoint departure = sim_.now() + offset;
  ++rtp_sent_unwrapped_;
  ++twcc_sent_unwrapped_;
  const std::int64_t rtp_unwrapped = rtp_sent_unwrapped_;
  twcc_history_[twcc_sent_unwrapped_] = {departure, p.size_bytes};

  rtp_history_[rtp_unwrapped] = p;  // copy for possible retransmission
  // Keys are monotone, so the oldest entries are the ordered prefix.
  while (rtp_history_.size() > cfg_.history_packets) {
    rtp_history_.erase(rtp_history_.begin());
  }
  // Bound the TWCC history alongside: drop everything older than the
  // retained window (keys are monotone, so this is an ordered prefix).
  if (twcc_history_.size() > 4 * cfg_.history_packets) {
    const std::int64_t cutoff =
        twcc_sent_unwrapped_ - static_cast<std::int64_t>(2 * cfg_.history_packets);
    twcc_history_.erase(twcc_history_.begin(), twcc_history_.lower_bound(cutoff));
  }

  ++packets_sent_;
  if (offset == Duration::zero()) {
    out_(std::move(p));
  } else {
    const sim::Pool<Packet>::Index idx = paced_pool_.put(std::move(p));
    pacing_timers_.push_back(sim_.schedule_after(offset, [this, idx] {
      Packet pkt = paced_pool_.take(idx);
      pkt.sent_time = sim_.now();
      out_(std::move(pkt));
    }));
  }
}

void RtpSender::on_rtcp(const Packet& p) {
  const auto& payload = p.rtcp().payload;
  if (const auto* fb = std::get_if<net::TwccFeedback>(&payload)) {
    handle_twcc(*fb);
  } else if (const auto* nack = std::get_if<net::RtcpNack>(&payload)) {
    handle_nack(*nack);
  } else if (const auto* rr = std::get_if<net::RtcpReceiverReport>(&payload)) {
    last_loss_fraction_ = rr->loss_fraction;
    gcc_.on_loss_report(rr->loss_fraction, sim_.now());
  }
}

void RtpSender::handle_twcc(const net::TwccFeedback& fb) {
  std::vector<cca::TwccObservation> obs;
  obs.reserve(fb.entries.size());
  std::int64_t min_seq = INT64_MAX;
  std::int64_t max_seq = INT64_MIN;
  for (const auto& e : fb.entries) {
    const std::int64_t unwrapped = twcc_unwrap_rx_.unwrap(e.twcc_seq);
    min_seq = std::min(min_seq, unwrapped);
    max_seq = std::max(max_seq, unwrapped);
    const auto it = twcc_history_.find(unwrapped);
    if (it == twcc_history_.end()) continue;
    cca::TwccObservation o;
    o.twcc_seq = e.twcc_seq;
    o.send_time = it->second.send_time;
    o.recv_time = e.recv_time;
    o.size_bytes = it->second.size_bytes;
    obs.push_back(o);
  }
  if (obs.empty()) return;
  std::sort(obs.begin(), obs.end(), [](const auto& a, const auto& b) {
    return a.send_time < b.send_time;
  });

  // Transport-wide loss: sequence gaps between consecutive feedback ranges
  // are packets the path dropped (tail drops stay visible under Zhuge
  // because the AP never reports packets it discarded).
  // A much larger gap than any plausible drop burst means the *feedback*
  // stream was interrupted (uplink blackout, AP fail-open transition):
  // the unreported packets were delivered, their reports died. Rebase
  // instead of charging the gap as data loss.
  if (twcc_loss_base_ >= 0 &&
      min_seq - twcc_loss_base_ > cfg_.feedback_gap_forgive_pkts) {
    twcc_loss_base_ = min_seq;
  }
  if (twcc_loss_base_ >= 0 && max_seq >= twcc_loss_base_) {
    const std::int64_t expected = max_seq - twcc_loss_base_ + 1;
    const std::int64_t received = static_cast<std::int64_t>(fb.entries.size());
    // Pool reports until the window holds enough packets for the fraction
    // to be meaningful. At low send rates a report can cover 1-2 packets,
    // where a single missing report reads as 50-100% loss — one such
    // report right after a recovery re-triggers the loss cut and traps the
    // controller at its floor.
    twcc_loss_expected_ += expected;
    twcc_loss_received_ += std::min(received, expected);
    if (twcc_loss_expected_ >= cfg_.loss_window_min_pkts) {
      const double loss = std::max(
          0.0, 1.0 - static_cast<double>(twcc_loss_received_) /
                         static_cast<double>(twcc_loss_expected_));
      // Smooth across windows (one covers a few tens of ms only).
      last_loss_fraction_ = 0.7 * last_loss_fraction_ + 0.3 * loss;
      gcc_.on_loss_report(last_loss_fraction_, sim_.now());
      twcc_loss_expected_ = 0;
      twcc_loss_received_ = 0;
    }
  }
  twcc_loss_base_ = max_seq + 1;

  switch (cfg_.rate_controller) {
    case RtpCca::kGcc:
      gcc_.on_feedback(obs, sim_.now());
      break;
    case RtpCca::kNada:
      nada_.on_feedback(obs, last_loss_fraction_, sim_.now());
      break;
    case RtpCca::kScream:
      scream_.on_feedback(obs, last_loss_fraction_, sim_.now());
      break;
  }
}

void RtpSender::handle_nack(const net::RtcpNack& nack) {
  const double rtx_budget_bps = cfg_.max_rtx_rate_fraction * target_rate_bps();
  for (std::uint16_t seq : nack.seqs) {
    if (rtx_rate_.rate_bps(sim_.now()).value_or(0.0) > rtx_budget_bps) {
      // Retransmission budget exhausted; the receiver will NACK again.
      ++rtx_suppressed_;
      continue;
    }
    const std::int64_t unwrapped = rtp_unwrap_rx_.unwrap(seq);
    const auto it = rtp_history_.find(unwrapped);
    if (it == rtp_history_.end()) continue;
    Packet rtx = it->second;
    rtx.uid = uids_.next();
    rtx.sent_time = sim_.now();
    // The history copy carries the original transmission's span stamps;
    // this is a new wire journey, so start a fresh span.
    rtx.span = {};
    ZHUGE_SPAN_STAMP(rtx.span.paced_ns, sim_.now());
    rtx.rtp().retransmission = true;
    // Retransmissions travel with fresh TWCC sequence numbers.
    rtx.rtp().twcc_seq = next_twcc_seq_++;
    ++twcc_sent_unwrapped_;
    twcc_history_[twcc_sent_unwrapped_] = {sim_.now(), rtx.size_bytes};
    ++retransmissions_;
    ++packets_sent_;
    rtx_rate_.record(sim_.now(), rtx.size_bytes);
    out_(std::move(rtx));
  }
}

}  // namespace zhuge::transport
