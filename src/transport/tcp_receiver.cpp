#include "transport/tcp_receiver.hpp"

namespace zhuge::transport {

void TcpReceiver::merge_interval(std::uint64_t start, std::uint64_t end) {
  if (end <= rcv_nxt_) return;  // duplicate
  start = std::max(start, rcv_nxt_);

  // Insert [start, end) into the out-of-order set, merging overlaps.
  auto it = ooo_.lower_bound(start);
  if (it != ooo_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) {
      start = prev->first;
      end = std::max(end, prev->second);
      it = ooo_.erase(prev);
    }
  }
  while (it != ooo_.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = ooo_.erase(it);
  }
  ooo_.emplace(start, end);

  // Advance the contiguous prefix.
  while (!ooo_.empty()) {
    auto first = ooo_.begin();
    if (first->first > rcv_nxt_) break;
    rcv_nxt_ = std::max(rcv_nxt_, first->second);
    ooo_.erase(first);
  }
}

void TcpReceiver::deliver_frames(TimePoint now) {
  while (!frame_ends_.empty()) {
    auto it = frame_ends_.begin();
    if (it->first > rcv_nxt_) break;
    if (on_frame_) on_frame_(it->second.first, it->second.second, now);
    frames_delivered_upto_ = it->first;
    frame_ends_.erase(it);
  }
}

void TcpReceiver::on_data(const Packet& data) {
  const TimePoint now = sim_.now();
  const net::TcpHeader& h = data.tcp();

  total_bytes_ += h.end_seq - h.seq;
  max_seen_ = std::max(max_seen_, h.end_seq);
  merge_interval(h.seq, h.end_seq);

  // Remember where this packet's frame ends so completion is detectable
  // even when the frame's packets arrive out of order. Retransmissions of
  // already-delivered frames must not re-register them.
  if (h.frame_end_seq > frames_delivered_upto_) {
    frame_ends_.emplace(h.frame_end_seq,
                        std::make_pair(h.frame_id, h.capture_time));
  }
  deliver_frames(now);

  Packet ack;
  ack.uid = uids_.next();
  ack.flow = data.flow.reversed();
  ack.size_bytes = cfg_.ack_bytes;
  ack.sent_time = now;
  net::TcpHeader ah;
  ah.is_ack = true;
  ah.ack = rcv_nxt_;
  ah.sack_upto = max_seen_;
  ah.ts_echo = h.ts_val;
  ah.abc_echo = h.abc_mark;
  ack.header = ah;
  ack_out_(std::move(ack));
}

}  // namespace zhuge::transport
