#pragma once
// RTP receiver: jitter buffer with in-order decode, TWCC feedback
// construction (the packets Zhuge drops and replaces, §5.3), NACK-based
// loss recovery, and periodic receiver reports.

#include <cstdint>
#include <map>
#include <set>

#include "net/packet.hpp"
#include "net/seq.hpp"
#include "rtc/video.hpp"
#include "sim/simulator.hpp"

namespace zhuge::transport {

using net::Packet;
using net::PacketHandler;
using sim::Duration;
using sim::TimePoint;

/// RTP receiver half.
class RtpReceiver {
 public:
  struct Config {
    std::uint32_t ssrc = 1;
    Duration twcc_interval = Duration::millis(25);
    Duration nack_retry_interval = Duration::millis(30);
    int max_nack_retries = 10;
    Duration rr_interval = Duration::millis(500);
    std::uint32_t rtcp_bytes = 80;
    /// A head-of-line frame older than this is abandoned (decoder resync;
    /// real decoders recover at the next I-frame). Skipped frames are not
    /// counted as decoded, so stalls show up in the frame-rate metric.
    Duration stall_timeout = Duration::seconds(2);
  };

  RtpReceiver(sim::Simulator& simulator, Config cfg, net::PacketUidSource& uids,
              PacketHandler rtcp_out, rtc::FrameStats& stats)
      : sim_(simulator),
        cfg_(cfg),
        uids_(uids),
        rtcp_out_(std::move(rtcp_out)),
        stats_(stats) {
    arm_timers();
  }

  /// Cancels the three periodic feedback timers so a receiver can be
  /// destroyed mid-run (flow churn) without dangling callbacks.
  ~RtpReceiver();

  RtpReceiver(const RtpReceiver&) = delete;
  RtpReceiver& operator=(const RtpReceiver&) = delete;

  /// Process one downlink RTP packet.
  void on_rtp(const Packet& p);

  [[nodiscard]] std::uint64_t packets_received() const { return packets_received_; }
  [[nodiscard]] std::uint64_t nacks_sent() const { return nacks_sent_; }
  [[nodiscard]] std::uint32_t next_decode_frame() const { return next_decode_frame_; }

 private:
  void arm_timers();
  void arm_timers_twcc();
  void arm_timers_nack();
  void arm_timers_rr();
  void send_twcc();
  void send_nacks();
  void send_rr();
  void try_decode();
  void maybe_skip_stalled();
  Packet make_rtcp(net::RtcpHeader h);

  sim::Simulator& sim_;
  Config cfg_;
  net::PacketUidSource& uids_;
  PacketHandler rtcp_out_;
  rtc::FrameStats& stats_;

  net::FlowId reverse_flow_;  ///< learned from the first RTP packet
  bool flow_known_ = false;

  // TWCC bookkeeping.
  std::vector<net::TwccFeedback::Entry> pending_twcc_;

  // Frame reassembly: frame_id -> (packets received, total, capture).
  struct FrameState {
    std::set<std::uint16_t> received;
    std::uint16_t total = 0;
    TimePoint capture;
    TimePoint first_arrival;
    TimePoint complete_time;  ///< when the last missing packet arrived
    bool seen = false;
    bool complete = false;
  };
  std::map<std::uint32_t, FrameState> frames_;
  std::uint32_t next_decode_frame_ = 0;

  // Loss detection / NACK, on unwrapped RTP sequence numbers.
  net::SeqUnwrapper rtp_unwrap_;
  std::int64_t highest_rtp_ = -1;
  struct NackState {
    int retries = 0;
    TimePoint last_sent;
  };
  std::map<std::int64_t, NackState> missing_;

  // Receiver-report accounting over the current RR interval.
  std::uint64_t interval_received_ = 0;
  std::int64_t interval_expected_base_ = -1;

  std::uint64_t packets_received_ = 0;
  std::uint64_t nacks_sent_ = 0;

  // Periodic feedback timers (self-rescheduling; cancelled by the dtor).
  sim::EventId twcc_timer_{};
  sim::EventId nack_timer_{};
  sim::EventId rr_timer_{};
};

}  // namespace zhuge::transport
