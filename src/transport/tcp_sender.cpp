#include "transport/tcp_sender.hpp"

#include <algorithm>

namespace zhuge::transport {

void TcpSender::write_frame(std::uint32_t frame_id, TimePoint capture_time,
                            std::uint64_t bytes) {
  const std::uint64_t end = next_frame_start_ + bytes;
  app_queue_.push_back({frame_id, capture_time, bytes, end});
  next_frame_start_ = end;
  backlog_bytes_ += bytes;
  try_send();
}

Duration TcpSender::current_rto() const {
  Duration rto = cfg_.min_rto;
  if (srtt_ > Duration::zero()) {
    rto = std::max(cfg_.min_rto, srtt_ + rttvar_ * 4.0);
  }
  for (int i = 0; i < rto_backoff_; ++i) rto = rto * 2.0;
  return std::min(rto, cfg_.max_rto);
}

void TcpSender::arm_rto() {
  if (rto_timer_ != 0) sim_.cancel(rto_timer_);
  rto_timer_ = 0;
  if (in_flight_.empty()) return;
  rto_timer_ = sim_.schedule_after(current_rto(), [this] {
    rto_timer_ = 0;
    on_rto_fired();
  });
}

void TcpSender::on_rto_fired() {
  if (in_flight_.empty()) return;
  ++rto_backoff_;
  cca_->on_rto(sim_.now());
  retransmit_first_unacked();
  arm_rto();
}

void TcpSender::retransmit_first_unacked() {
  auto it = in_flight_.begin();
  if (it == in_flight_.end()) return;
  ++it->second.transmissions;
  ++retransmissions_;
  send_segment(it->first, it->second, /*retransmit=*/true);
}

void TcpSender::send_segment(std::uint64_t seq, const SentSegment& meta,
                             bool retransmit) {
  Packet p;
  p.uid = uids_.next();
  p.flow = flow_;
  p.size_bytes = static_cast<std::uint32_t>(meta.end_seq - seq) + cfg_.header_bytes;
  p.sent_time = sim_.now();
  net::TcpHeader h;
  h.seq = seq;
  h.end_seq = meta.end_seq;
  h.ts_val = static_cast<std::uint64_t>(sim_.now().count_ns());
  h.frame_id = meta.frame_id;
  h.frame_end_seq = meta.frame_end_seq;
  h.capture_time = meta.capture_time;
  p.header = h;
  if (!retransmit) {
    // Already accounted by caller.
  }
  out_(std::move(p));
}

void TcpSender::try_send() {
  const TimePoint now = sim_.now();
  const double pace = cca_->pacing_rate_bps();

  while (backlog_bytes_ > 0) {
    if (bytes_in_flight_ + cfg_.mss > cca_->cwnd_bytes()) return;  // window-limited
    if (pace > 0.0 && next_send_time_ > now) {
      arm_pacing_timer(next_send_time_);
      return;
    }

    FrameChunk& chunk = app_queue_.front();
    const std::uint64_t take =
        std::min<std::uint64_t>(cfg_.mss, chunk.remaining);
    SentSegment seg;
    seg.end_seq = next_seq_ + take;
    seg.sent_time = now;
    seg.frame_id = chunk.frame_id;
    seg.capture_time = chunk.capture_time;
    seg.frame_end_seq = chunk.end_seq;
    seg.delivered_at_send = delivered_bytes_;

    in_flight_.emplace(next_seq_, seg);
    bytes_in_flight_ += take;
    backlog_bytes_ -= take;
    chunk.remaining -= take;
    if (chunk.remaining == 0) app_queue_.pop_front();

    send_segment(next_seq_, seg, /*retransmit=*/false);
    next_seq_ = seg.end_seq;

    if (pace > 0.0) {
      next_send_time_ =
          std::max(next_send_time_, now) +
          Duration::from_seconds(static_cast<double>(take + cfg_.header_bytes) * 8.0 / pace);
    }
    if (rto_timer_ == 0) arm_rto();
  }
  // Ran out of data with window to spare: everything outstanding was sent
  // while the app was the limit, so delivery-rate samples from those ACKs
  // must not be read as path capacity (Linux/BBR app_limited marking).
  if (bytes_in_flight_ + cfg_.mss <= cca_->cwnd_bytes()) {
    app_limited_until_ = next_seq_;
  }
}

void TcpSender::arm_pacing_timer(TimePoint when) {
  if (pacing_timer_ != 0) return;  // already armed
  pacing_timer_ = sim_.schedule_at(when, [this] {
    pacing_timer_ = 0;
    try_send();
  });
}

void TcpSender::on_ack(const Packet& ack) {
  const TimePoint now = sim_.now();
  const net::TcpHeader& h = ack.tcp();

  // RTT sample via timestamp echo; valid because the receiver echoes the
  // ts of the segment that triggered this ACK (Karn-safe for first
  // transmissions; retransmitted segments carry a fresh ts_val, so echo
  // ambiguity only inflates, never deflates).
  Duration rtt = Duration::zero();
  if (h.ts_echo != 0) {
    rtt = now - TimePoint{static_cast<std::int64_t>(h.ts_echo)};
    if (rtt > Duration::zero()) {
      if (rtt_observer_) rtt_observer_(rtt, now);
      if (srtt_ == Duration::zero()) {
        srtt_ = rtt;
        rttvar_ = rtt * 0.5;
      } else {
        const Duration err = rtt >= srtt_ ? rtt - srtt_ : srtt_ - rtt;
        rttvar_ = rttvar_ * 0.75 + err * 0.25;
        srtt_ = srtt_ * 0.875 + rtt * 0.125;
      }
    }
  }

  // Cumulative ACK: drop fully-acked segments. The newest first-transmit
  // segment acked here anchors the delivery-rate sample (Karn's rule:
  // retransmitted segments have ambiguous flight times).
  std::uint64_t newly_acked = 0;
  bool have_sample = false;
  SentSegment sample_seg{};
  while (!in_flight_.empty()) {
    auto it = in_flight_.begin();
    if (it->second.end_seq > h.ack) break;
    newly_acked += it->second.end_seq - it->first;
    if (it->second.transmissions == 1) {
      sample_seg = it->second;
      have_sample = true;
    }
    in_flight_.erase(it);
  }
  double delivery_sample_bps = 0.0;
  if (newly_acked > 0) {
    bytes_in_flight_ -= std::min(bytes_in_flight_, newly_acked);
    snd_una_ = h.ack;
    delivered_bytes_ += newly_acked;
    delivered_rate_.record(now, static_cast<std::int64_t>(newly_acked));
    if (have_sample && now > sample_seg.sent_time) {
      // Bytes delivered across this segment's flight, over the flight
      // time: equals path throughput when the pipe stayed busy, and
      // crucially reflects the probe gain for the probe RTT alone.
      delivery_sample_bps =
          static_cast<double>(delivered_bytes_ - sample_seg.delivered_at_send) *
          8.0 / (now - sample_seg.sent_time).to_seconds();
    }
    rto_backoff_ = 0;
    dupacks_ = 0;
    arm_rto();
    // NewReno partial ACK: while in recovery, an ACK that advances
    // snd_una but leaves older data outstanding exposes the next hole —
    // retransmit it immediately instead of waiting out an RTO per hole
    // (an RTO-per-hole cascade is a death spiral under bursty loss).
    if (snd_una_ < recovery_until_ && !in_flight_.empty() &&
        in_flight_.begin()->first < h.sack_upto) {
      ++in_flight_.begin()->second.transmissions;
      ++retransmissions_;
      send_segment(in_flight_.begin()->first, in_flight_.begin()->second, true);
    }
  } else if (h.ack == last_ack_ && !in_flight_.empty()) {
    ++dupacks_;
  }
  last_ack_ = h.ack;

  // Fast retransmit on dupacks or a SACK-visible hole.
  const bool sack_hole =
      h.sack_upto > h.ack + static_cast<std::uint64_t>(cfg_.dupack_threshold) * cfg_.mss;
  if ((dupacks_ >= cfg_.dupack_threshold || sack_hole) && !in_flight_.empty() &&
      snd_una_ >= recovery_until_) {
    recovery_until_ = next_seq_;  // one loss event per window
    cca_->on_loss(now, cfg_.mss);
    retransmit_first_unacked();
    dupacks_ = 0;
  }

  cca::AckEvent ev;
  ev.now = now;
  ev.rtt = rtt;
  ev.acked_bytes = newly_acked;
  ev.bytes_in_flight = bytes_in_flight_;
  ev.delivery_rate_bps = delivery_sample_bps > 0.0
                             ? delivery_sample_bps
                             : delivered_rate_.rate_bps(now).value_or(0.0);
  ev.app_limited = app_limited_until_ > 0 && h.ack <= app_limited_until_;
  ev.abc_echo = h.abc_echo;
  cca_->on_ack(ev);

  try_send();
}

}  // namespace zhuge::transport
