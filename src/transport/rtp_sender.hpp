#pragma once
// RTP media sender with transport-wide congestion control (in-band
// feedback, §5.1/§5.3). Encodes frames at the CCA's target bitrate,
// packetises them into RTP packets carrying TWCC sequence numbers, keeps a
// send history for TWCC reconstruction and NACK retransmission, and feeds
// TWCC reports into GCC (or NADA).

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "cca/gcc.hpp"
#include "cca/nada.hpp"
#include "cca/scream.hpp"
#include "net/packet.hpp"
#include "net/seq.hpp"
#include "stats/windowed.hpp"
#include "rtc/video.hpp"
#include "sim/pool.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace zhuge::transport {

using net::Packet;
using net::PacketHandler;
using sim::Duration;
using sim::TimePoint;

/// Which rate controller drives the encoder.
enum class RtpCca : std::uint8_t { kGcc, kNada, kScream };

/// RTP sender: video pipeline + congestion control.
class RtpSender {
 public:
  struct Config {
    std::uint32_t ssrc = 1;
    std::uint32_t max_payload = 1200;
    std::uint32_t header_bytes = 40;  ///< IP+UDP+RTP overhead
    rtc::VideoConfig video{};
    cca::Gcc::Config gcc{};
    cca::Nada::Config nada{};
    cca::Scream::Config scream{};
    RtpCca rate_controller = RtpCca::kGcc;
    std::size_t history_packets = 2048;  ///< NACK retransmission depth
    Duration pacing_span = Duration::millis(5);  ///< frame burst spread
    /// Retransmissions may use at most this fraction of the target rate
    /// (measured over rtx_rate_window). Without the cap, a loss burst
    /// turns the NACK machinery into an unbounded retransmission storm
    /// that keeps the bottleneck queue pinned full no matter what the
    /// congestion controller decides.
    double max_rtx_rate_fraction = 0.25;
    Duration rtx_rate_window = Duration::millis(200);
    /// Inter-report TWCC seq gaps larger than this are treated as a
    /// feedback-path outage (the reports died, not the data) and excluded
    /// from the transport-wide loss estimate. A healthy feedback stream
    /// has gap 0; genuine tail-drop bursts between reports stay well
    /// under this. Without the guard, the first report after a feedback
    /// blackout charges the whole silent interval as data loss and GCC
    /// collapses to its floor even though every packet was delivered.
    std::int64_t feedback_gap_forgive_pkts = 50;
    /// Transport-wide loss is computed over a pooled window of at least
    /// this many expected packets, accumulated across TWCC reports. A
    /// single report can cover only 1-2 packets at low rates, where one
    /// genuinely lost packet reads as 50-100% loss and re-triggers the GCC
    /// loss cut right as the controller climbs out of a fault.
    std::int64_t loss_window_min_pkts = 4;
  };

  RtpSender(sim::Simulator& simulator, sim::Rng& rng, net::FlowId flow,
            Config cfg, net::PacketUidSource& uids, PacketHandler out);

  /// Cancels the frame tick and any still-pending paced sends so a sender
  /// can be destroyed mid-run (flow churn) without leaving callbacks that
  /// dangle into freed memory.
  ~RtpSender();

  RtpSender(const RtpSender&) = delete;
  RtpSender& operator=(const RtpSender&) = delete;

  /// Begin producing frames (call once).
  void start();

  /// Process an uplink RTCP packet (TWCC feedback, NACK, or RR).
  void on_rtcp(const Packet& p);

  [[nodiscard]] double target_rate_bps() const;
  [[nodiscard]] double encoder_rate_bps() const { return encoder_.encoder_rate_bps(); }
  [[nodiscard]] std::uint64_t frames_sent() const { return frames_sent_; }
  [[nodiscard]] std::uint64_t packets_sent() const { return packets_sent_; }
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }
  [[nodiscard]] std::uint64_t rtx_suppressed() const { return rtx_suppressed_; }
  [[nodiscard]] const cca::Gcc& gcc() const { return gcc_; }

 private:
  void on_frame_tick();
  void send_packet(Packet p, Duration offset);
  void handle_twcc(const net::TwccFeedback& fb);
  void handle_nack(const net::RtcpNack& nack);

  sim::Simulator& sim_;
  sim::Rng& rng_;
  net::FlowId flow_;
  Config cfg_;
  net::PacketUidSource& uids_;
  PacketHandler out_;

  rtc::VideoEncoder encoder_;
  cca::Gcc gcc_;
  cca::Nada nada_;
  cca::Scream scream_;

  std::uint16_t next_rtp_seq_ = 0;
  std::uint16_t next_twcc_seq_ = 0;
  std::uint32_t next_frame_id_ = 0;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t retransmissions_ = 0;

  struct SendRecord {
    TimePoint send_time;
    std::uint32_t size_bytes = 0;
  };
  /// TWCC send history keyed by *unwrapped* TWCC sequence. Ordered so the
  /// age-based prune is a cheap erase-prefix and no hash order leaks in.
  std::map<std::int64_t, SendRecord> twcc_history_;
  net::SeqUnwrapper twcc_unwrap_rx_;  ///< unwraps seqs in feedback
  std::int64_t twcc_sent_unwrapped_ = -1;

  /// Packet history for NACK retransmission, keyed by unwrapped RTP seq.
  std::map<std::int64_t, Packet> rtp_history_;
  net::SeqUnwrapper rtp_unwrap_rx_;
  std::int64_t rtp_sent_unwrapped_ = -1;

  sim::EventId frame_timer_{};
  /// Paced sends still pending from the current frame. The pacing span is
  /// clamped below the frame interval, so every entry has fired by the next
  /// tick and the vector is cleared there (never grows past one frame).
  std::vector<sim::EventId> pacing_timers_;
  /// Packets awaiting their pacing offset. Parked here so the pacing
  /// events carry a 4-byte slot index instead of the whole packet; slots
  /// recycle within a frame interval, so the pool peaks at one frame's
  /// packetisation and never grows again.
  sim::Pool<Packet> paced_pool_;

  double last_loss_fraction_ = 0.0;
  std::int64_t twcc_loss_base_ = 0;  ///< next expected unwrapped TWCC seq
  std::int64_t twcc_loss_expected_ = 0;  ///< pooled window: expected pkts
  std::int64_t twcc_loss_received_ = 0;  ///< pooled window: reported pkts
  stats::WindowedRate rtx_rate_{sim::Duration::millis(200)};
  std::uint64_t rtx_suppressed_ = 0;
};

}  // namespace zhuge::transport
