#pragma once
// TCP-like reliable sender for RTC-over-TCP flows (§5.1 "out-of-band
// feedback"). Byte-sequenced, cumulatively ACKed, paced by a pluggable
// CongestionControl. The application pushes video frames; the receiver
// side reconstructs frame completion from framing metadata.
//
// Deliberately RTC-flavoured: per-packet ACKs (no delayed ACK), SACK-lite
// loss recovery, Karn-compliant RTT sampling via timestamp echo — the
// pieces the evaluated CCAs (Copa, BBR, ABC) actually consume.

#include <cstdint>
#include <deque>
#include <map>
#include <memory>

#include "cca/cca.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "stats/windowed.hpp"

namespace zhuge::transport {

using net::Packet;
using net::PacketHandler;
using sim::Duration;
using sim::TimePoint;

/// Reliable paced byte-stream sender.
class TcpSender {
 public:
  struct Config {
    std::uint32_t mss = cca::kMss;      ///< payload bytes per segment
    std::uint32_t header_bytes = 40;    ///< IP+TCP overhead on the wire
    Duration min_rto = Duration::millis(200);
    Duration max_rto = Duration::seconds(4);
    int dupack_threshold = 3;
  };

  TcpSender(sim::Simulator& simulator, net::FlowId flow,
            std::unique_ptr<cca::CongestionControl> cca, Config cfg,
            net::PacketUidSource& uids, PacketHandler out)
      : sim_(simulator),
        flow_(flow),
        cca_(std::move(cca)),
        cfg_(cfg),
        uids_(uids),
        out_(std::move(out)),
        delivered_rate_(Duration::millis(500)) {}

  /// Cancels the RTO and pacing timers so a sender can be destroyed
  /// mid-run (flow churn) without dangling callbacks.
  ~TcpSender() {
    if (rto_timer_ != 0) sim_.cancel(rto_timer_);
    if (pacing_timer_ != 0) sim_.cancel(pacing_timer_);
  }

  TcpSender(const TcpSender&) = delete;
  TcpSender& operator=(const TcpSender&) = delete;

  /// Queue one application video frame of `bytes` bytes for transmission.
  void write_frame(std::uint32_t frame_id, TimePoint capture_time, std::uint64_t bytes);

  /// Process an incoming ACK packet of this flow.
  void on_ack(const Packet& ack);

  /// Observe every valid RTT sample the sender measures (Fig. 10's
  /// "measured RTT at the server" — shifted forward under Zhuge).
  using RttObserver = std::function<void(Duration, TimePoint)>;
  void set_rtt_observer(RttObserver obs) { rtt_observer_ = std::move(obs); }

  [[nodiscard]] cca::CongestionControl& congestion_control() { return *cca_; }
  [[nodiscard]] std::uint64_t bytes_in_flight() const { return bytes_in_flight_; }
  [[nodiscard]] std::uint64_t backlog_bytes() const { return backlog_bytes_; }
  [[nodiscard]] Duration smoothed_rtt() const { return srtt_; }
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }
  /// Delivery rate seen through ACKs (bps), for logging/benches.
  [[nodiscard]] double delivery_rate_bps(TimePoint now) {
    return delivered_rate_.rate_bps(now).value_or(0.0);
  }

 private:
  struct FrameChunk {
    std::uint32_t frame_id;
    TimePoint capture_time;
    std::uint64_t remaining;
    std::uint64_t end_seq;  ///< stream offset one past this frame
  };
  struct SentSegment {
    std::uint64_t end_seq;
    TimePoint sent_time;
    std::uint32_t frame_id;
    TimePoint capture_time;
    std::uint64_t frame_end_seq;
    /// Cumulative bytes delivered when this segment left: the ACK-time
    /// delivery-rate sample is (delivered_now - delivered_at_send) over
    /// the segment's flight time (BBR's rate estimator). A windowed
    /// average would dilute the one-RTT 1.25x probe cycle below the max
    /// filter's notice and bandwidth could never be rediscovered.
    std::uint64_t delivered_at_send = 0;
    int transmissions = 1;
  };

  void try_send();
  void send_segment(std::uint64_t seq, const SentSegment& meta, bool retransmit);
  void arm_pacing_timer(TimePoint when);
  void arm_rto();
  void on_rto_fired();
  void retransmit_first_unacked();
  [[nodiscard]] Duration current_rto() const;

  sim::Simulator& sim_;
  net::FlowId flow_;
  std::unique_ptr<cca::CongestionControl> cca_;
  Config cfg_;
  net::PacketUidSource& uids_;
  PacketHandler out_;

  // Application backlog.
  std::deque<FrameChunk> app_queue_;
  std::uint64_t backlog_bytes_ = 0;
  std::uint64_t next_frame_start_ = 0;  ///< stream offset for the next frame

  // Sequencing.
  std::uint64_t next_seq_ = 0;  ///< next new byte to send
  std::uint64_t snd_una_ = 0;   ///< oldest unacknowledged byte
  std::map<std::uint64_t, SentSegment> in_flight_;  ///< by start seq
  std::uint64_t bytes_in_flight_ = 0;
  /// ACKs for data at or below this offset carry delivery-rate samples
  /// taken while the app (not cwnd/pacing) limited sending — the sample
  /// measures offered load, not path capacity (BBR-style app_limited).
  std::uint64_t app_limited_until_ = 0;
  std::uint64_t delivered_bytes_ = 0;  ///< cumulative delivered (see above)

  // RTT estimation (timestamp echo; Karn's rule via transmissions==1).
  Duration srtt_ = Duration::zero();
  Duration rttvar_ = Duration::zero();

  // Loss detection.
  std::uint64_t last_ack_ = 0;
  int dupacks_ = 0;
  std::uint64_t recovery_until_ = 0;  ///< fast-recovery high-water mark

  // Pacing.
  TimePoint next_send_time_;
  sim::EventId pacing_timer_ = 0;

  // RTO.
  sim::EventId rto_timer_ = 0;
  int rto_backoff_ = 0;

  stats::WindowedRate delivered_rate_;
  std::uint64_t retransmissions_ = 0;
  RttObserver rtt_observer_;
};

}  // namespace zhuge::transport
