#pragma once
// TCP-like receiver: per-packet cumulative ACKs with SACK-lite, timestamp
// echo, ABC mark echo, and application-level video-frame reassembly.

#include <cstdint>
#include <functional>
#include <map>

#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace zhuge::transport {

using net::Packet;
using net::PacketHandler;
using sim::TimePoint;

/// Receiver half of the TCP-like stack.
class TcpReceiver {
 public:
  struct Config {
    std::uint32_t ack_bytes = 40;  ///< wire size of an ACK
  };

  /// Called once per completed video frame: (frame_id, capture, now).
  using FrameCallback =
      std::function<void(std::uint32_t, TimePoint, TimePoint)>;

  TcpReceiver(sim::Simulator& simulator, Config cfg, net::PacketUidSource& uids,
              PacketHandler ack_out, FrameCallback on_frame)
      : sim_(simulator),
        cfg_(cfg),
        uids_(uids),
        ack_out_(std::move(ack_out)),
        on_frame_(std::move(on_frame)) {}

  /// Process one data packet; emits exactly one ACK.
  void on_data(const Packet& data);

  [[nodiscard]] std::uint64_t contiguous_received() const { return rcv_nxt_; }
  [[nodiscard]] std::uint64_t total_received_bytes() const { return total_bytes_; }

 private:
  void merge_interval(std::uint64_t start, std::uint64_t end);
  void deliver_frames(TimePoint now);

  sim::Simulator& sim_;
  Config cfg_;
  net::PacketUidSource& uids_;
  PacketHandler ack_out_;
  FrameCallback on_frame_;

  std::uint64_t rcv_nxt_ = 0;    ///< contiguous prefix received
  std::uint64_t max_seen_ = 0;   ///< highest byte seen (SACK-lite)
  std::map<std::uint64_t, std::uint64_t> ooo_;  ///< out-of-order intervals
  std::map<std::uint64_t, std::pair<std::uint32_t, TimePoint>>
      frame_ends_;  ///< frame_end_seq -> (frame_id, capture_time)
  std::uint64_t frames_delivered_upto_ = 0;  ///< last delivered frame end
  std::uint64_t total_bytes_ = 0;
};

}  // namespace zhuge::transport
