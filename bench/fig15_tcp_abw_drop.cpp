// Fig. 15 reproduction: TCP degradation durations after a bandwidth drop
// of factor k for Copa, Copa+FastAck, ABC, and Copa+Zhuge. The paper's
// shape: Zhuge wins for k < 15-30; at extreme k the durations are bounded
// by RTO recovery and ABC's explicit signalling can win.

#include "bench_util.hpp"

using namespace zhuge;
using namespace zhuge::bench;

int main(int argc, char** argv) {
  zhuge::bench::ObsSession obs_session(argc, argv);
  std::printf("=== Fig. 15: TCP degradation durations after ABW drop ===\n");
  const Duration drop_at = Duration::seconds(20);
  const Duration dur = Duration::seconds(40);
  const std::vector<double> ks = {2, 5, 10, 20, 50};

  struct Mode {
    const char* label;
    ApMode ap;
    TcpCcaKind cca;
  };
  const std::vector<Mode> modes = {
      {"Copa", ApMode::kNone, TcpCcaKind::kCopa},
      {"Copa+FastAck", ApMode::kFastAck, TcpCcaKind::kCopa},
      {"ABC", ApMode::kAbc, TcpCcaKind::kAbc},
      {"Copa+Zhuge", ApMode::kZhuge, TcpCcaKind::kCopa},
  };

  std::vector<std::vector<Degradation>> table;
  for (const auto& m : modes) {
    std::vector<Degradation> row;
    for (double k : ks) {
      Degradation acc;
      const int seeds = 3;
      for (int s = 1; s <= seeds; ++s) {
        const auto tr = trace::step_trace(30e6, 30e6 / k, drop_at, dur);
        auto cfg = drop_config(tr, static_cast<std::uint64_t>(s));
        cfg.protocol = Protocol::kTcp;
        cfg.tcp_cca = m.cca;
        cfg.ap.mode = m.ap;
        const auto d = degradation_after(app::run_scenario(cfg), drop_at, dur);
        acc.rtt_secs += d.rtt_secs / seeds;
        acc.fd_secs += d.fd_secs / seeds;
        acc.fps_secs += d.fps_secs / seeds;
      }
      row.push_back(acc);
    }
    table.push_back(row);
  }

  const char* headings[3] = {"(a) NetworkRtt > 200 ms, seconds",
                             "(b) FrameDelay > 400 ms, seconds",
                             "(c) FrameRate < 10 fps, seconds"};
  for (int metric = 0; metric < 3; ++metric) {
    std::printf("\n%s\n  %-14s", headings[metric], "mode \\ k");
    for (double k : ks) std::printf(" %7.0fx", k);
    std::printf("\n");
    for (std::size_t mi = 0; mi < modes.size(); ++mi) {
      std::printf("  %-14s", modes[mi].label);
      for (const auto& d : table[mi]) {
        const double v = metric == 0 ? d.rtt_secs : metric == 1 ? d.fd_secs : d.fps_secs;
        std::printf(" %8.2f", v);
      }
      std::printf("\n");
    }
  }
  std::printf("\n(paper: Copa+Zhuge cuts RTT degradation 14-64%% for k < 30; at\n"
              " k >= 30 the durations are RTO-bound and ABC can do better)\n");
  return 0;
}
