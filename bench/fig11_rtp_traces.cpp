// Fig. 11 reproduction: trace-driven RTP/RTCP evaluation. For each of the
// five wireless traces: P(RTT>200ms) and P(frame delay>400ms) under
// Gcc+FIFO, Gcc+CoDel, and Gcc+Zhuge.

#include "bench_util.hpp"

using namespace zhuge;
using namespace zhuge::bench;

int main(int argc, char** argv) {
  zhuge::bench::ObsSession obs_session(argc, argv);
  std::printf("=== Fig. 11: RTP/RTCP over real-world-like traces ===\n");
  const Duration dur = Duration::seconds(150);
  const int seeds = 3;

  struct Mode {
    const char* label;
    ApMode ap;
    QdiscKind qdisc;
  };
  const std::vector<Mode> modes = {
      {"Gcc+FIFO", ApMode::kNone, QdiscKind::kFifo},
      {"Gcc+CoDel", ApMode::kNone, QdiscKind::kCoDel},
      {"Gcc+Zhuge", ApMode::kZhuge, QdiscKind::kFifo},
  };

  std::printf("\n(a) P(NetworkRtt > 200 ms)\n  %-10s", "trace");
  for (const auto& m : modes) std::printf(" %12s", m.label);
  std::printf("\n");

  std::vector<std::vector<TailMetrics>> table;  // [trace][mode]
  for (const auto kind : kPaperTraces) {
    std::vector<TailMetrics> row;
    std::printf("  %-10s", trace::short_name(kind));
    for (const auto& m : modes) {
      const auto metrics = averaged_tails(
          [&](int s) {
            const auto tr = trace::make_trace(kind, 13u * static_cast<unsigned>(s), dur);
            auto cfg = trace_config(tr, kind, dur, static_cast<std::uint64_t>(s));
            cfg.protocol = Protocol::kRtp;
            cfg.ap.mode = m.ap;
            cfg.ap.qdisc = m.qdisc;
            return app::run_scenario(cfg);
          },
          seeds);
      row.push_back(metrics);
      std::printf(" %11.3f%%", 100.0 * metrics.rtt_gt_200);
    }
    table.push_back(row);
    std::printf("\n");
  }

  std::printf("\n(b) P(FrameDelay > 400 ms)\n  %-10s", "trace");
  for (const auto& m : modes) std::printf(" %12s", m.label);
  std::printf("\n");
  for (std::size_t i = 0; i < kPaperTraces.size(); ++i) {
    std::printf("  %-10s", trace::short_name(kPaperTraces[i]));
    for (const auto& metrics : table[i]) {
      std::printf(" %11.3f%%", 100.0 * metrics.fd_gt_400);
    }
    std::printf("\n");
  }

  std::printf("\n(paper: Zhuge reduces the long-RTT ratio by 45-75%% and the\n"
              " delayed-frame ratio by 38-92%% vs the best baseline)\n");
  return 0;
}
