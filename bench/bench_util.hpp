#pragma once
// Shared helpers for the figure/table reproduction benches. Each bench is
// a standalone binary that prints the same rows/series the paper's figure
// reports; EXPERIMENTS.md records the mapping. Every bench accepts
// `--trace out.json` / `--metrics out.json` (see ObsSession below).

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "app/scenario.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/session.hpp"
#include "obs/tracer.hpp"
#include "trace/synthetic.hpp"

namespace zhuge::bench {

using app::ApMode;
using app::Protocol;
using app::QdiscKind;
using app::ScenarioConfig;
using app::ScenarioResult;
using app::TcpCcaKind;
using sim::Duration;
using sim::TimePoint;

/// The five wireless trace classes evaluated in §7.3.
inline const std::vector<trace::TraceKind> kPaperTraces = {
    trace::TraceKind::kRestaurantWifi, trace::TraceKind::kOfficeWifi,
    trace::TraceKind::kIndoorMixed45G, trace::TraceKind::kCity4G,
    trace::TraceKind::kCity5G};

/// Cellular traces ride the cellular link model; WiFi traces the AMPDU one.
inline app::LinkKind link_for(trace::TraceKind kind) {
  switch (kind) {
    case trace::TraceKind::kRestaurantWifi:
    case trace::TraceKind::kOfficeWifi:
      return app::LinkKind::kWifi;
    default:
      return app::LinkKind::kCellular;
  }
}

/// Baseline scenario for trace-driven evaluation (§7.2-§7.3 setup:
/// 1080p24 video averaging ~2 Mbps, 50 ms base RTT).
inline ScenarioConfig trace_config(const trace::Trace& tr, trace::TraceKind kind,
                                   Duration duration, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.channel_trace = &tr;
  cfg.ap.link = link_for(kind);
  cfg.duration = duration;
  cfg.warmup = Duration::seconds(5);
  cfg.seed = seed;
  return cfg;
}

/// Microbenchmark scenario: fixed 30 Mbps link, video cap high enough for
/// the CCA to fill it (Fig. 4/14/15 setup).
inline ScenarioConfig drop_config(const trace::Trace& tr, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.channel_trace = &tr;
  cfg.duration = Duration::seconds(40);
  cfg.warmup = Duration::seconds(5);
  cfg.seed = seed;
  cfg.video.max_bitrate_bps = 40e6;
  // NS-3-style 100-packet bottleneck buffer: the microbenchmarks measure
  // reaction speed, and a deeply bufferbloated queue would bury the
  // control-loop differences under multi-second drain times.
  cfg.ap.queue_limit_bytes = 100 * 1500;
  return cfg;
}

struct TailMetrics {
  double rtt_gt_200 = 0.0;   ///< P(network RTT > 200 ms)
  double fd_gt_400 = 0.0;    ///< P(frame delay > 400 ms)
  double fps_lt_10 = 0.0;    ///< P(per-second frame rate < 10)
  double goodput_mbps = 0.0;
  double p99_rtt_ms = 0.0;
};

inline TailMetrics tail_metrics(const ScenarioResult& r) {
  TailMetrics m;
  const auto& f = r.primary();
  m.rtt_gt_200 = f.network_rtt_ms.ratio_above(200.0);
  m.fd_gt_400 = f.frame_delay_ms.ratio_above(400.0);
  m.fps_lt_10 = f.frame_rate_fps.ratio_below(10.0);
  m.goodput_mbps = f.goodput_bps / 1e6;
  m.p99_rtt_ms = f.network_rtt_ms.quantile(0.99);
  return m;
}

/// Average tail metrics over several seeds. `run` executes one seed and
/// returns the ScenarioResult (it owns the trace for the duration of the
/// run, avoiding dangling channel_trace pointers).
template <typename RunSeed>
TailMetrics averaged_tails(RunSeed&& run, int seeds) {
  TailMetrics sum;
  for (int s = 1; s <= seeds; ++s) {
    const TailMetrics m = tail_metrics(run(s));
    sum.rtt_gt_200 += m.rtt_gt_200;
    sum.fd_gt_400 += m.fd_gt_400;
    sum.fps_lt_10 += m.fps_lt_10;
    sum.goodput_mbps += m.goodput_mbps;
    sum.p99_rtt_ms += m.p99_rtt_ms;
  }
  const double n = seeds;
  sum.rtt_gt_200 /= n;
  sum.fd_gt_400 /= n;
  sum.fps_lt_10 /= n;
  sum.goodput_mbps /= n;
  sum.p99_rtt_ms /= n;
  return sum;
}

/// Degradation durations after a bandwidth drop at `drop_at` (Fig. 4/14/15).
struct Degradation {
  double rtt_secs = 0.0;   ///< time with RTT > 200 ms
  double fd_secs = 0.0;    ///< time with frame delay > 400 ms
  double fps_secs = 0.0;   ///< time with frame rate < 10 fps
};

inline Degradation degradation_after(const ScenarioResult& r, Duration drop_at,
                                     Duration duration) {
  Degradation d;
  const TimePoint t0 = TimePoint::zero() + drop_at;
  const TimePoint t1 = TimePoint::zero() + duration;
  d.rtt_secs = r.rtt_series_ms.time_above(200.0, t0, t1).to_seconds();
  d.fd_secs = r.frame_delay_series_ms.time_above(400.0, t0, t1).to_seconds();
  // Frame rate < 10 fps: derive from per-second decode counts in the
  // frame-delay series' gaps — approximated by counting seconds without
  // at least 10 decoded frames.
  const auto& pts = r.frame_delay_series_ms.points();
  const auto from_sec = static_cast<std::size_t>(drop_at.to_seconds());
  const auto to_sec = static_cast<std::size_t>(duration.to_seconds());
  std::vector<int> per_second(to_sec + 1, 0);
  for (const auto& p : pts) {
    const auto sec = static_cast<std::size_t>(p.t.to_seconds());
    if (sec <= to_sec) ++per_second[sec];
  }
  for (std::size_t s = from_sec; s < to_sec; ++s) {
    if (per_second[s] < 10) d.fps_secs += 1.0;
  }
  return d;
}

/// Print a log-spaced 1-CDF column (the paper's Fig. 2/13 axes).
inline void print_ccdf(const char* label, const stats::Distribution& d,
                       const std::vector<double>& thresholds) {
  std::printf("  %-24s", label);
  for (double t : thresholds) std::printf(" %8.4f%%", 100.0 * d.ratio_above(t));
  std::printf("\n");
}

inline const char* mode_name(ApMode m) {
  switch (m) {
    case ApMode::kNone: return "none";
    case ApMode::kZhuge: return "Zhuge";
    case ApMode::kFastAck: return "FastAck";
    case ApMode::kAbc: return "ABC";
  }
  return "?";
}

/// Observability session for a bench binary: the shared CLI session from
/// obs/session.hpp (benches, examples, and tools all use the same one, so
/// every entrypoint handles --trace/--metrics identically).
using ObsSession = obs::ObsSession;

}  // namespace zhuge::bench
