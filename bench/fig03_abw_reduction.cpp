// Fig. 3(b) reproduction: CDF of the ABW reduction ratio between
// consecutive 200 ms windows, per trace class. Paper calibration targets:
// P[reduction > 10x] in 0.6-7.3 % for wireless, < 0.1 % for wired.

#include "bench_util.hpp"

using namespace zhuge;
using namespace zhuge::bench;

int main(int argc, char** argv) {
  zhuge::bench::ObsSession obs_session(argc, argv);
  std::printf("=== Fig. 3(b): ABW reduction ratio distribution (200 ms windows) ===\n");
  const Duration dur = Duration::seconds(1200);
  const std::vector<double> ks = {1.25, 2, 5, 10, 20, 50};

  std::printf("  %-28s", "trace \\ P[reduction > k]");
  for (double k : ks) std::printf("   >%4.2gx ", k);
  std::printf("\n");

  std::vector<trace::TraceKind> kinds = kPaperTraces;
  kinds.push_back(trace::TraceKind::kEthernet);
  for (const auto kind : kinds) {
    const auto tr = trace::make_trace(kind, 23, dur);
    const auto stats = trace::abw_reduction_stats(tr);
    std::printf("  %-28s", trace::long_name(kind));
    for (double k : ks) std::printf(" %8.3f%%", 100.0 * stats.fraction_above(k));
    std::printf("\n");
  }
  std::printf("\n(paper: wireless traces show 0.6%%-7.3%% above 10x; wired <0.1%%)\n");
  return 0;
}
