// Fig. 4 reproduction: convergence duration after a wireless bandwidth
// drop for different CCAs (CUBIC/BBR/Copa over TCP, GCC over RTP) with
// FIFO and CoDel queue management. Two y-axes as in the paper:
//  (a) RTT-degradation duration (time with RTT > 200 ms),
//  (b) sending-rate re-convergence duration (time until the CCA's rate
//      settles below 2x the post-drop capacity).

#include "bench_util.hpp"

using namespace zhuge;
using namespace zhuge::bench;

namespace {

struct Algo {
  const char* label;
  Protocol protocol;
  TcpCcaKind tcp;
  transport::RtpCca rtp;
};

double rate_convergence_secs(const app::ScenarioResult& r, double post_capacity_bps,
                             Duration drop_at, Duration duration) {
  const TimePoint t0 = TimePoint::zero() + drop_at;
  const TimePoint t1 = TimePoint::zero() + duration;
  return (r.rate_series_bps.last_above(2.0 * post_capacity_bps, t0, t1) - t0)
      .to_seconds();
}

}  // namespace

int main(int argc, char** argv) {
  zhuge::bench::ObsSession obs_session(argc, argv);
  std::printf("=== Fig. 4: convergence after a bandwidth drop (30 Mbps -> 30/k) ===\n");
  const Duration drop_at = Duration::seconds(20);
  const Duration dur = Duration::seconds(40);
  const std::vector<double> ks = {2, 5, 10, 20, 50};

  const std::vector<Algo> algos = {
      {"Cubic", Protocol::kTcp, TcpCcaKind::kCubic, transport::RtpCca::kGcc},
      {"Bbr", Protocol::kTcp, TcpCcaKind::kBbr, transport::RtpCca::kGcc},
      {"Copa", Protocol::kTcp, TcpCcaKind::kCopa, transport::RtpCca::kGcc},
      {"Gcc", Protocol::kRtp, TcpCcaKind::kCopa, transport::RtpCca::kGcc},
  };
  const std::vector<std::pair<const char*, QdiscKind>> qdiscs = {
      {"FIFO", QdiscKind::kFifo}, {"CoDel", QdiscKind::kCoDel}};

  std::printf("\n(a) RTT-degradation duration, seconds (RTT > 200 ms)\n");
  std::printf("  %-14s", "algo+qdisc \\ k");
  for (double k : ks) std::printf(" %7.0fx", k);
  std::printf("\n");

  struct Cell {
    double rtt;
    double rate;
  };
  std::vector<std::vector<Cell>> table;

  for (const auto& algo : algos) {
    for (const auto& [qname, qkind] : qdiscs) {
      std::vector<Cell> row;
      std::printf("  %-6s+%-7s", algo.label, qname);
      for (double k : ks) {
        const auto tr = trace::step_trace(30e6, 30e6 / k, drop_at, dur);
        auto cfg = drop_config(tr, 3);
        cfg.protocol = algo.protocol;
        cfg.tcp_cca = algo.tcp;
        cfg.rtp_cca = algo.rtp;
        cfg.ap.qdisc = qkind;
        const auto r = app::run_scenario(cfg);
        Cell c;
        c.rtt = degradation_after(r, drop_at, dur).rtt_secs;
        c.rate = rate_convergence_secs(r, 30e6 / k, drop_at, dur);
        row.push_back(c);
        std::printf(" %8.2f", c.rtt);
      }
      table.push_back(row);
      std::printf("\n");
    }
  }

  std::printf("\n(b) sending-rate re-convergence duration, seconds"
              " (rate > 2x post-drop capacity)\n");
  std::printf("  %-14s", "algo+qdisc \\ k");
  for (double k : ks) std::printf(" %7.0fx", k);
  std::printf("\n");
  std::size_t idx = 0;
  for (const auto& algo : algos) {
    for (const auto& [qname, qkind] : qdiscs) {
      std::printf("  %-6s+%-7s", algo.label, qname);
      for (const auto& c : table[idx]) std::printf(" %8.2f", c.rate);
      ++idx;
      std::printf("\n");
    }
  }
  std::printf("\n(paper: all end-host CCAs suffer seconds of degradation at"
              " k >= 10; CoDel barely helps delay-based CCAs)\n");
  return 0;
}
