// Fig. 17 reproduction: degradation *frequency* with 5..40 wireless
// interferers (saturating bulk senders on other APs sharing the channel).
// Interference is continuous, so the metric is the fraction of time spent
// degraded rather than a per-event duration.

#include "bench_util.hpp"

using namespace zhuge;
using namespace zhuge::bench;

int main(int argc, char** argv) {
  zhuge::bench::ObsSession obs_session(argc, argv);
  std::printf("=== Fig. 17: RTP under wireless interference ===\n");
  const Duration dur = Duration::seconds(60);
  const Duration measure_from = Duration::seconds(5);
  const std::vector<int> interferers = {5, 10, 20, 30, 40};

  struct Mode {
    const char* label;
    ApMode ap;
    QdiscKind qdisc;
  };
  const std::vector<Mode> modes = {
      {"Gcc+FIFO", ApMode::kNone, QdiscKind::kFifo},
      {"Gcc+CoDel", ApMode::kNone, QdiscKind::kCoDel},
      {"Gcc+Zhuge", ApMode::kZhuge, QdiscKind::kFifo},
  };

  std::vector<std::vector<Degradation>> table;
  const double window_secs = (dur - measure_from).to_seconds();
  for (const auto& m : modes) {
    std::vector<Degradation> row;
    for (int n : interferers) {
      app::ScenarioConfig cfg;
      cfg.channel_trace = nullptr;  // PHY mode: MCS 7 = 65 Mbps shared
      cfg.mcs_index = 7;
      cfg.interferers = n;
      cfg.duration = dur;
      cfg.warmup = measure_from;
      cfg.seed = 7;
      cfg.protocol = Protocol::kRtp;
      cfg.ap.mode = m.ap;
      cfg.ap.qdisc = m.qdisc;
      const auto r = app::run_scenario(cfg);
      row.push_back(degradation_after(r, measure_from, dur));
    }
    table.push_back(row);
  }

  const char* headings[3] = {"(a) frequency of NetworkRtt > 200 ms",
                             "(b) frequency of FrameDelay > 400 ms",
                             "(c) frequency of FrameRate < 10 fps"};
  for (int metric = 0; metric < 3; ++metric) {
    std::printf("\n%s\n  %-12s", headings[metric], "mode \\ n");
    for (int n : interferers) std::printf(" %7d", n);
    std::printf("\n");
    for (std::size_t mi = 0; mi < modes.size(); ++mi) {
      std::printf("  %-12s", modes[mi].label);
      for (const auto& d : table[mi]) {
        const double v = metric == 0 ? d.rtt_secs : metric == 1 ? d.fd_secs : d.fps_secs;
        std::printf(" %6.2f%%", 100.0 * v / window_secs);
      }
      std::printf("\n");
    }
  }
  std::printf("\n(paper: Zhuge halves the degradation frequency; Cisco measured up\n"
              " to 29 interferers at P90 on 2.4 GHz, so this regime is realistic)\n");
  return 0;
}
