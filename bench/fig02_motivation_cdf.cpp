// Fig. 2 reproduction: RTT / frame-delay / frame-rate tails of Ethernet vs
// WiFi vs 4G access for the same GCC/RTP application. The paper's shape:
// comparable medians, but wireless tails are an order of magnitude worse.

#include "bench_util.hpp"

using namespace zhuge;
using namespace zhuge::bench;

int main(int argc, char** argv) {
  zhuge::bench::ObsSession obs_session(argc, argv);
  std::printf("=== Fig. 2: access-technology tails (GCC/RTP, %ds per run) ===\n", 240);
  const Duration dur = Duration::seconds(240);
  const std::vector<double> rtt_thresh = {100, 150, 200, 400, 800};
  const std::vector<double> fd_thresh = {100, 200, 400, 800, 1600};

  struct Row {
    const char* label;
    trace::TraceKind kind;
  };
  const std::vector<Row> rows = {
      {"Ethernet", trace::TraceKind::kEthernet},
      {"WiFi (office)", trace::TraceKind::kOfficeWifi},
      {"4G (city)", trace::TraceKind::kCity4G},
  };

  std::printf("\nP(RTT > x ms):\n  %-24s", "access \\ x");
  for (double t : rtt_thresh) std::printf(" %7.0fms", t);
  std::printf("\n");
  std::vector<app::ScenarioResult> results;
  for (const auto& row : rows) {
    const auto tr = trace::make_trace(row.kind, 17, dur);
    auto cfg = trace_config(tr, row.kind, dur, 17);
    results.push_back(app::run_scenario(cfg));
    print_ccdf(row.label, results.back().primary().network_rtt_ms, rtt_thresh);
  }

  std::printf("\nP(frame delay > x ms):\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    print_ccdf(rows[i].label, results[i].primary().frame_delay_ms, fd_thresh);
  }

  std::printf("\nP(frame rate < x fps):\n  %-24s %9s %9s %9s\n", "", "<10fps", "<15fps",
              "<20fps");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& fr = results[i].primary().frame_rate_fps;
    std::printf("  %-24s %8.4f%% %8.4f%% %8.4f%%\n", rows[i].label,
                100.0 * fr.ratio_below(10.0), 100.0 * fr.ratio_below(15.0),
                100.0 * fr.ratio_below(20.0));
  }

  std::printf("\nP50 RTT (comparable across access types, per the paper):\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::printf("  %-24s %6.1f ms\n", rows[i].label,
                results[i].primary().network_rtt_ms.quantile(0.5));
  }
  return 0;
}
