// Hot-path performance baseline (PR 3, re-baselined in PR 8): events/sec
// through the simulator core, Fortune Teller predictions/sec, ack-scheduler
// ops/sec, and the windowed measurement primitives. Run in Release; the
// JSON output is the perf trajectory future PRs compare against:
//
//   ./build/bench/perf_hotpath --benchmark_format=json > perf.json
//
// BENCH_pr8.json in the repository root is the gating baseline: CI runs
// these benchmarks and tools/perf_gate fails the build when any benchmark
// falls out of its tolerance band (see DESIGN.md "Performance" for the
// band rationale and README for the re-bless procedure). BENCH_pr3.json
// records the previous optimization pass for historical comparison.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "core/ack_scheduler.hpp"
#include "core/fortune_teller.hpp"
#include "net/packet.hpp"
#include "sim/pool.hpp"
#include "sim/simulator.hpp"
#include "stats/windowed.hpp"

namespace {

using namespace zhuge;
using sim::Duration;
using sim::TimePoint;

// ---- simulator core ------------------------------------------------------

/// Adversarial heap stress: 64 self-rescheduling timers with *mutually
/// prime-ish periods*, so pop order is maximally unpredictable and every
/// sift comparison is a coin-flip branch — the worst case for the event
/// queue. Closures carry this + three words (32 bytes), which already
/// exceeds libstdc++'s 16-byte std::function SBO, so the pre-PR event
/// loop additionally paid one heap allocation per event.
void BM_SimTimerEvents(benchmark::State& state) {
  sim::Simulator simu;
  struct Timer {
    sim::Simulator* s;
    std::uint64_t acc;
    std::uint64_t step;
    std::uint64_t period_ns;
    void operator()() {
      acc += step;
      s->schedule_after(Duration::nanos(static_cast<std::int64_t>(period_ns)),
                        Timer{*this});
    }
  };
  for (std::uint64_t k = 0; k < 64; ++k) {
    simu.schedule_after(Duration::micros(static_cast<std::int64_t>(k)),
                        Timer{&simu, k, k + 1, 100'000 + 1'000 * k});
  }
  for (auto _ : state) {
    simu.step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimTimerEvents);

/// Headline packets/sec through the event loop, in the PR-8 wire shape:
/// in-flight packets park in a sim::Pool and each delivery event carries
/// a pooled *aggregate* of kAggPackets — the one-event-per-TTI/AMPDU
/// batching the links now use. Items are packets, so the number is
/// directly comparable with the pre-batching per-packet-event figure in
/// BENCH_pr3.json (and with BM_SimPacketEventsUnbatched below, which
/// preserves that old shape).
void BM_SimPacketEvents(benchmark::State& state) {
  constexpr std::size_t kAggPackets = 8;  // typical TTI/AMPDU batch
  sim::Simulator simu;
  sim::Pool<std::vector<net::Packet>> pool;
  struct DeliverAggregate {
    sim::Simulator* s;
    sim::Pool<std::vector<net::Packet>>* pool;
    sim::Pool<std::vector<net::Packet>>::Index idx;
    void operator()() {
      std::vector<net::Packet>& agg = pool->at(idx);
      for (net::Packet& p : agg) {
        p.delivered_time = s->now();
        p.size_bytes += 1;
      }
      s->schedule_after(Duration::micros(120), DeliverAggregate{*this});
    }
  };
  for (std::uint64_t k = 0; k < 4; ++k) {
    std::vector<net::Packet> agg(kAggPackets);
    for (std::size_t i = 0; i < kAggPackets; ++i) {
      net::Packet& p = agg[i];
      p.uid = k * kAggPackets + i;
      p.size_bytes = 1240;
      p.header = net::RtpHeader{};
      p.flow = net::FlowId{1, static_cast<std::uint32_t>(100 + k), 5000, 6000, 17};
    }
    const auto idx = pool.put(std::move(agg));
    simu.schedule_after(Duration::micros(static_cast<std::int64_t>(k)),
                        DeliverAggregate{&simu, &pool, idx});
  }
  for (auto _ : state) {
    simu.step();
  }
  state.SetItemsProcessed(state.iterations() * kAggPackets);
}
BENCHMARK(BM_SimPacketEvents);

/// The pre-PR-8 wire shape, kept for reference: every hop schedules a
/// callback that *owns* the in-flight Packet (~170 bytes including the
/// header variant) — one ~200-byte memcpy into the event engine per hop.
/// The gap between this and BM_SimPacketEvents is what the pooling +
/// aggregate batching buys.
void BM_SimPacketEventsUnbatched(benchmark::State& state) {
  sim::Simulator simu;
  struct Deliver {
    sim::Simulator* s;
    net::Packet p;
    void operator()() {
      p.delivered_time = s->now();
      p.size_bytes += 1;
      s->schedule_after(Duration::micros(120), Deliver{s, std::move(p)});
    }
  };
  for (std::uint64_t k = 0; k < 32; ++k) {
    net::Packet p;
    p.uid = k;
    p.size_bytes = 1240;
    p.header = net::RtpHeader{};
    p.flow = net::FlowId{1, static_cast<std::uint32_t>(100 + k), 5000, 6000, 17};
    simu.schedule_after(Duration::micros(static_cast<std::int64_t>(k)),
                        Deliver{&simu, std::move(p)});
  }
  for (auto _ : state) {
    simu.step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimPacketEventsUnbatched);

/// Cancel/reschedule churn: the AckScheduler re-arms its release timer on
/// every hold/retreat, cancelling the previous one. Exercises cancel cost
/// and the event queue's tolerance of stale entries.
void BM_SimCancelRescheduleChurn(benchmark::State& state) {
  sim::Simulator simu;
  sim::EventId timer = 0;
  std::uint64_t fired = 0;
  std::uint64_t i = 0;
  for (auto _ : state) {
    if (timer != 0) simu.cancel(timer);
    timer = simu.schedule_after(Duration::micros(50), [&fired] { ++fired; });
    if ((++i & 0xFF) == 0) {
      simu.run_until(simu.now() + Duration::micros(10));
    }
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimCancelRescheduleChurn);

// ---- measurement primitives ---------------------------------------------

/// The per-packet Fortune Teller path: one departure record plus one
/// prediction (Fig. 6: qLong + qShort + tx), as every downlink arrival
/// triggers at the AP.
void BM_FortuneTellerPredict(benchmark::State& state) {
  core::FortuneTeller ft;
  std::int64_t t = 0;
  for (auto _ : state) {
    ft.on_dequeue(1500, TimePoint{t}, false);
    auto pred = ft.predict(TimePoint{t}, 25'000, TimePoint{t - 500'000});
    // Observe the whole prediction, not just q_long: with only one
    // component consumed the optimizer may discard the qShort/tx
    // arithmetic entirely (PR 8 bench audit).
    benchmark::DoNotOptimize(pred);
    t += 2'000'000;  // 2 ms between AMPDU bursts
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FortuneTellerPredict);

/// WindowedMean record + max(): BBR's bandwidth filter calls max() on
/// every delivery-rate sample. Pre-PR this rescanned the whole window.
void BM_WindowedMeanRecordMax(benchmark::State& state) {
  stats::WindowedMean wm(Duration::millis(400));
  std::int64_t t = 0;
  double v = 1e6;
  for (auto _ : state) {
    v = (v * 1.000037 > 4e6) ? 1e6 : v * 1.000037;  // wander, deterministic
    wm.record(TimePoint{t}, v);
    const auto m = wm.max(TimePoint{t});
    benchmark::DoNotOptimize(m);
    t += 1'000'000;  // 1 ms apart -> ~400 samples in window
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WindowedMeanRecordMax);

/// WindowedRate record + rate query: avg(txRate) on every dequeue.
void BM_WindowedRateRecord(benchmark::State& state) {
  stats::WindowedRate wr(Duration::millis(40));
  std::int64_t t = 0;
  for (auto _ : state) {
    wr.record(TimePoint{t}, 1500);
    const auto r = wr.rate_bps(TimePoint{t});
    benchmark::DoNotOptimize(r);
    t += 500'000;  // 0.5 ms
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WindowedRateRecord);

// ---- feedback updater ----------------------------------------------------

/// Ack-scheduler ops/sec: hold (with its re-arm) plus the eventual timed
/// release, measured over batches that drain through the simulator.
void BM_AckSchedulerHoldRelease(benchmark::State& state) {
  sim::Simulator simu;
  std::uint64_t released = 0;
  core::AckScheduler sched(simu, [&released](net::Packet) { ++released; });
  net::Packet ack;
  ack.size_bytes = 64;
  net::TcpHeader h;
  h.is_ack = true;
  ack.header = h;
  std::uint64_t i = 0;
  for (auto _ : state) {
    net::Packet p = ack;
    p.uid = i;
    sched.hold(std::move(p), simu.now() + Duration::micros(100));
    if ((++i & 0x3F) == 0) {
      simu.run_until(simu.now() + Duration::millis(1));
    }
  }
  sched.flush();
  benchmark::DoNotOptimize(released);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AckSchedulerHoldRelease);

}  // namespace

BENCHMARK_MAIN();
