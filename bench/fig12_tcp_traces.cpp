// Fig. 12 reproduction: trace-driven TCP evaluation. For each trace:
// P(RTT>200ms) and P(frame delay>400ms) under Copa, Copa+FastAck, ABC
// (host-router co-design), and Copa+Zhuge.

#include "bench_util.hpp"

using namespace zhuge;
using namespace zhuge::bench;

int main(int argc, char** argv) {
  zhuge::bench::ObsSession obs_session(argc, argv);
  std::printf("=== Fig. 12: TCP over real-world-like traces ===\n");
  const Duration dur = Duration::seconds(150);
  const int seeds = 3;

  struct Mode {
    const char* label;
    ApMode ap;
    TcpCcaKind cca;
  };
  const std::vector<Mode> modes = {
      {"Copa", ApMode::kNone, TcpCcaKind::kCopa},
      {"Copa+FastAck", ApMode::kFastAck, TcpCcaKind::kCopa},
      {"ABC", ApMode::kAbc, TcpCcaKind::kAbc},
      {"Copa+Zhuge", ApMode::kZhuge, TcpCcaKind::kCopa},
  };

  std::printf("\n(a) P(NetworkRtt > 200 ms)   [sender-capture semantics]\n  %-10s",
              "trace");
  for (const auto& m : modes) std::printf(" %13s", m.label);
  std::printf("\n");

  std::vector<std::vector<TailMetrics>> table;
  for (const auto kind : kPaperTraces) {
    std::vector<TailMetrics> row;
    std::printf("  %-10s", trace::short_name(kind));
    for (const auto& m : modes) {
      const auto metrics = averaged_tails(
          [&](int s) {
            const auto tr =
                trace::make_trace(kind, 13u * static_cast<unsigned>(s), dur);
            auto cfg = trace_config(tr, kind, dur, static_cast<std::uint64_t>(s));
            cfg.protocol = Protocol::kTcp;
            cfg.tcp_cca = m.cca;
            cfg.ap.mode = m.ap;
            return app::run_scenario(cfg);
          },
          seeds);
      row.push_back(metrics);
      std::printf(" %12.3f%%", 100.0 * metrics.rtt_gt_200);
    }
    table.push_back(row);
    std::printf("\n");
  }

  std::printf("\n(b) P(FrameDelay > 400 ms)\n  %-10s", "trace");
  for (const auto& m : modes) std::printf(" %13s", m.label);
  std::printf("\n");
  for (std::size_t i = 0; i < kPaperTraces.size(); ++i) {
    std::printf("  %-10s", trace::short_name(kPaperTraces[i]));
    for (const auto& metrics : table[i]) {
      std::printf(" %12.3f%%", 100.0 * metrics.fd_gt_400);
    }
    std::printf("\n");
  }

  std::printf("\n(paper: Copa+Zhuge beats the AP-only baselines and is comparable\n"
              " to ABC, which needs host *and* router changes)\n");
  return 0;
}
