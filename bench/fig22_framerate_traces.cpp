// Fig. 22 reproduction (appendix): P(frame rate < 10 fps) over the five
// traces, for both the RTP/GCC and TCP/Copa mode line-ups.

#include "bench_util.hpp"

using namespace zhuge;
using namespace zhuge::bench;

int main(int argc, char** argv) {
  zhuge::bench::ObsSession obs_session(argc, argv);
  std::printf("=== Fig. 22: low-frame-rate ratio over traces ===\n");
  const Duration dur = Duration::seconds(150);
  const int seeds = 3;

  std::printf("\n(a) RTP/RTCP: P(FrameRate < 10 fps)\n  %-10s %12s %12s %12s\n",
              "trace", "Gcc+FIFO", "Gcc+CoDel", "Gcc+Zhuge");
  struct RtpMode {
    ApMode ap;
    QdiscKind qdisc;
  };
  const std::vector<RtpMode> rtp_modes = {{ApMode::kNone, QdiscKind::kFifo},
                                          {ApMode::kNone, QdiscKind::kCoDel},
                                          {ApMode::kZhuge, QdiscKind::kFifo}};
  for (const auto kind : kPaperTraces) {
    std::printf("  %-10s", trace::short_name(kind));
    for (const auto& m : rtp_modes) {
      const auto metrics = averaged_tails(
          [&](int s) {
            const auto tr =
                trace::make_trace(kind, 13u * static_cast<unsigned>(s), dur);
            auto cfg = trace_config(tr, kind, dur, static_cast<std::uint64_t>(s));
            cfg.protocol = Protocol::kRtp;
            cfg.ap.mode = m.ap;
            cfg.ap.qdisc = m.qdisc;
            return app::run_scenario(cfg);
          },
          seeds);
      std::printf(" %11.3f%%", 100.0 * metrics.fps_lt_10);
    }
    std::printf("\n");
  }

  std::printf("\n(b) TCP: P(FrameRate < 10 fps)\n  %-10s %12s %13s %12s %12s\n",
              "trace", "Copa", "Copa+FastAck", "ABC", "Copa+Zhuge");
  struct TcpMode {
    ApMode ap;
    TcpCcaKind cca;
  };
  const std::vector<TcpMode> tcp_modes = {{ApMode::kNone, TcpCcaKind::kCopa},
                                          {ApMode::kFastAck, TcpCcaKind::kCopa},
                                          {ApMode::kAbc, TcpCcaKind::kAbc},
                                          {ApMode::kZhuge, TcpCcaKind::kCopa}};
  for (const auto kind : kPaperTraces) {
    std::printf("  %-10s", trace::short_name(kind));
    for (const auto& m : tcp_modes) {
      const auto metrics = averaged_tails(
          [&](int s) {
            const auto tr =
                trace::make_trace(kind, 13u * static_cast<unsigned>(s), dur);
            auto cfg = trace_config(tr, kind, dur, static_cast<std::uint64_t>(s));
            cfg.protocol = Protocol::kTcp;
            cfg.tcp_cca = m.cca;
            cfg.ap.mode = m.ap;
            return app::run_scenario(cfg);
          },
          seeds);
      std::printf(" %11.3f%%", 100.0 * metrics.fps_lt_10);
    }
    std::printf("\n");
  }
  std::printf("\n(paper: Zhuge attains the smallest or near-smallest low-fps ratio;\n"
              " ABC underperforms on frame rate due to aggressive rate ascent)\n");
  return 0;
}
