// Fig. 21 reproduction: CPU overhead of Zhuge per concurrent flow.
// The paper measures whole-AP CPU utilisation on 2010s-era routers; we
// measure the same quantity at its source — the per-packet processing
// cost of the Fortune Teller + Feedback Updater — with google-benchmark,
// scaled across 1..5 concurrent flows (substitution noted in DESIGN.md).

#include <benchmark/benchmark.h>

#include "core/zhuge.hpp"
#include "queue/fifo.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace zhuge;
using sim::Duration;

/// Per-packet downlink cost (Fortune Teller predict + record).
void BM_ZhugeDownlinkPacket(benchmark::State& state) {
  const auto flows = static_cast<std::size_t>(state.range(0));
  sim::Simulator simu;
  sim::Rng rng(1);
  queue::DropTailFifo qdisc(-1);
  std::vector<std::unique_ptr<core::ZhugeFlow>> zf;
  for (std::size_t i = 0; i < flows; ++i) {
    zf.push_back(std::make_unique<core::ZhugeFlow>(
        simu, rng, net::FlowId{1, static_cast<std::uint32_t>(100 + i), 1, 2, 6},
        core::ZhugeConfig{}, [](net::Packet) {}));
  }
  net::Packet p;
  p.size_bytes = 1240;
  p.header = net::TcpHeader{};
  std::size_t i = 0;
  std::int64_t t = 0;
  for (auto _ : state) {
    auto& flow = *zf[i % flows];
    p.flow = flow.flow();
    flow.on_dequeue(p, sim::TimePoint{t}, false);
    flow.on_downlink(p, qdisc);
    t += 500'000;  // 0.5 ms between packets (~2 Mbps per flow)
    ++i;
    benchmark::DoNotOptimize(p.predicted_delay_ms);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["flows"] = static_cast<double>(flows);
}
BENCHMARK(BM_ZhugeDownlinkPacket)->DenseRange(1, 5);

/// Per-ACK uplink cost (Algorithm 2: sampling, tokens, caps).
void BM_ZhugeUplinkAck(benchmark::State& state) {
  sim::Simulator simu;
  sim::Rng rng(1);
  core::OobConfig cfg;
  core::OobFeedbackUpdater updater(cfg, rng);
  // Prime with a realistic delta history.
  for (int i = 0; i < 100; ++i) {
    updater.on_data_delay(Duration::from_millis(5.0 + (i % 7)), sim::TimePoint{i});
  }
  std::int64_t t = 1'000'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(updater.ack_delay(sim::TimePoint{t}));
    t += 500'000;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZhugeUplinkAck);

/// Capacity estimate: how many 2 Mbps RTC flows one core could serve.
/// (The paper's Netgear/TP-Link APs handled 5 flows at 20-80 % CPU.)
void BM_FlowsPerCoreEstimate(benchmark::State& state) {
  sim::Simulator simu;
  sim::Rng rng(1);
  queue::DropTailFifo qdisc(-1);
  core::ZhugeFlow flow(simu, rng, net::FlowId{1, 100, 1, 2, 6},
                       core::ZhugeConfig{}, [](net::Packet) {});
  net::Packet p;
  p.size_bytes = 1240;
  p.flow = flow.flow();
  p.header = net::TcpHeader{};
  std::int64_t t = 0;
  for (auto _ : state) {
    flow.on_dequeue(p, sim::TimePoint{t}, false);
    flow.on_downlink(p, qdisc);
    t += 500'000;
  }
  // One 2 Mbps flow = ~200 pkts/s each way.
  state.counters["est_flows_per_core"] = benchmark::Counter(
      static_cast<double>(state.iterations()) / 200.0,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FlowsPerCoreEstimate);

}  // namespace

BENCHMARK_MAIN();
