// Fig. 20 reproduction: steady-state fairness between two RTC flows
// sharing the AP, for RTP/GCC and TCP/Copa:
//   bar (a) neither flow optimised, (b) one of two optimised (external
//   fairness), (c) both optimised (internal fairness).
// Reported: per-flow goodput normalised by the link capacity.

#include "bench_util.hpp"

using namespace zhuge;
using namespace zhuge::bench;

namespace {

struct Bar {
  double flow_a = 0.0;
  double flow_b = 0.0;
};

Bar run_bar(Protocol protocol, ApMode mode, std::vector<bool> optimize,
            double capacity_bps, const trace::Trace& tr) {
  app::ScenarioConfig cfg;
  cfg.channel_trace = &tr;
  cfg.duration = Duration::seconds(300);
  cfg.warmup = Duration::seconds(120);  // measure converged steady state
  cfg.seed = 11;
  cfg.protocol = protocol;
  cfg.tcp_cca = TcpCcaKind::kCopa;
  cfg.rtc_flows = 2;
  cfg.ap.mode = mode;
  cfg.optimize_flow = std::move(optimize);
  // Let both flows contend for the link: raise the encoder cap so goodput
  // is bandwidth-limited, not content-limited.
  cfg.video.max_bitrate_bps = capacity_bps;
  const auto r = app::run_scenario(cfg);
  Bar bar;
  bar.flow_a = r.flows[0].goodput_bps / capacity_bps;
  bar.flow_b = r.flows[1].goodput_bps / capacity_bps;
  return bar;
}

}  // namespace

int main(int argc, char** argv) {
  zhuge::bench::ObsSession obs_session(argc, argv);
  std::printf("=== Fig. 20: fairness of Zhuge (goodput normalised by capacity) ===\n");
  const double capacity = 20e6;
  const auto tr = trace::constant_trace(capacity, Duration::seconds(300));

  for (const Protocol protocol : {Protocol::kRtp, Protocol::kTcp}) {
    const char* pname = protocol == Protocol::kRtp ? "RTP/RTCP (GCC)" : "TCP (Copa)";
    std::printf("\n--- %s ---\n", pname);
    const Bar a = run_bar(protocol, ApMode::kNone, {false, false}, capacity, tr);
    const Bar b = run_bar(protocol, ApMode::kZhuge, {true, false}, capacity, tr);
    const Bar c = run_bar(protocol, ApMode::kZhuge, {true, true}, capacity, tr);
    std::printf("  (a) w/o Zhuge:        flow1 %5.1f%%  flow2 %5.1f%%  sum %5.1f%%\n",
                100 * a.flow_a, 100 * a.flow_b, 100 * (a.flow_a + a.flow_b));
    std::printf("  (b) one optimised:    flow1 %5.1f%%* flow2 %5.1f%%  sum %5.1f%%\n",
                100 * b.flow_a, 100 * b.flow_b, 100 * (b.flow_a + b.flow_b));
    std::printf("  (c) both optimised:   flow1 %5.1f%%* flow2 %5.1f%%* sum %5.1f%%\n",
                100 * c.flow_a, 100 * c.flow_b, 100 * (c.flow_a + c.flow_b));
    const auto gap = [](const Bar& bar) {
      return std::abs(bar.flow_a - bar.flow_b) /
             std::max(bar.flow_a + bar.flow_b, 1e-9) * 2.0;
    };
    std::printf("  flow gap: baseline(a) %.1f%%, one-optimised(b) %.1f%%, "
                "both(c) %.1f%%\n",
                100.0 * gap(a), 100.0 * gap(b), 100.0 * gap(c));
    std::printf("  unfairness *added* by Zhuge in (b): %+.1f%% vs the CCA's own\n"
                "  baseline gap  (* = Zhuge-optimised)\n",
                100.0 * (gap(b) - gap(a)));
  }
  std::printf("\n(paper: bitrate difference of optimised vs non-optimised < 3%%;\n"
              " internal fairness unaffected, GCC even gains ~10%% bitrate)\n");
  return 0;
}
