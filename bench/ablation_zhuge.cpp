// Ablation bench for the design choices called out in DESIGN.md §5:
//   1. qShort term on/off (the instant channel-stall signal)
//   2. Eq. 1 burst adjustment on/off
//   3. distributional delta sampling vs per-ACK accumulation (§5.2)
//   4. delay tokens on/off
//   5. retreatable holds on/off (good news travels fast)
//   6. Fortune Teller window length sweep (transience-equilibrium nexus)
// Each variant runs the W1 trace (RTP for 1-2, TCP for 3-5) plus the
// k=10 bandwidth-drop microbenchmark.

#include "bench_util.hpp"

using namespace zhuge;
using namespace zhuge::bench;

namespace {

struct Variant {
  std::string label;
  Protocol protocol;
  std::function<void(app::ScenarioConfig&)> tweak;
};

void run_table(const std::vector<Variant>& variants) {
  std::printf("  %-28s %12s %12s | %12s\n", "variant", "W1 RTT>200", "W1 fd>400",
              "drop k=10 (s)");
  for (const auto& v : variants) {
    // Trace-driven W1.
    const auto metrics = averaged_tails(
        [&](int s) {
          const auto tr = trace::make_trace(trace::TraceKind::kRestaurantWifi,
                                            13u * static_cast<unsigned>(s),
                                            Duration::seconds(150));
          auto cfg = trace_config(tr, trace::TraceKind::kRestaurantWifi,
                                  Duration::seconds(150),
                                  static_cast<std::uint64_t>(s));
          cfg.protocol = v.protocol;
          cfg.ap.mode = ApMode::kZhuge;
          v.tweak(cfg);
          return app::run_scenario(cfg);
        },
        3);
    // Bandwidth-drop microbenchmark.
    const Duration drop_at = Duration::seconds(20);
    const Duration dur = Duration::seconds(40);
    const auto tr = trace::step_trace(30e6, 3e6, drop_at, dur);
    auto cfg = drop_config(tr, 3);
    cfg.protocol = v.protocol;
    cfg.ap.mode = ApMode::kZhuge;
    v.tweak(cfg);
    const auto deg = degradation_after(app::run_scenario(cfg), drop_at, dur);

    std::printf("  %-28s %11.3f%% %11.3f%% | %12.2f\n", v.label.c_str(),
                100.0 * metrics.rtt_gt_200, 100.0 * metrics.fd_gt_400,
                deg.rtt_secs);
  }
}

}  // namespace

int main(int argc, char** argv) {
  zhuge::bench::ObsSession obs_session(argc, argv);
  std::printf("=== Ablations of Zhuge's design choices ===\n");

  std::printf("\n--- Fortune Teller (RTP/GCC path) ---\n");
  run_table({
      {"full Zhuge", Protocol::kRtp, [](app::ScenarioConfig&) {}},
      {"no qShort", Protocol::kRtp,
       [](app::ScenarioConfig& c) { c.ap.zhuge.fortune.use_qshort = false; }},
      {"no burst adjustment (Eq.1)", Protocol::kRtp,
       [](app::ScenarioConfig& c) { c.ap.zhuge.fortune.burst_adjustment = false; }},
      {"window 10 ms (too short)", Protocol::kRtp,
       [](app::ScenarioConfig& c) {
         c.ap.zhuge.fortune.window = Duration::millis(10);
       }},
      {"window 200 ms (too long)", Protocol::kRtp,
       [](app::ScenarioConfig& c) {
         c.ap.zhuge.fortune.window = Duration::millis(200);
       }},
  });

  std::printf("\n--- Feedback Updater (TCP/Copa path) ---\n");
  run_table({
      {"full Zhuge", Protocol::kTcp, [](app::ScenarioConfig&) {}},
      {"accumulate deltas (no dist.)", Protocol::kTcp,
       [](app::ScenarioConfig& c) {
         c.ap.zhuge.oob.distributional_sampling = false;
       }},
      {"no delay tokens", Protocol::kTcp,
       [](app::ScenarioConfig& c) { c.ap.zhuge.oob.use_tokens = false; }},
      {"no retreat of pending holds", Protocol::kTcp,
       [](app::ScenarioConfig& c) { c.ap.zhuge.oob.retreat_pending = false; }},
      {"raw Algorithm 1 (no smooth)", Protocol::kTcp,
       [](app::ScenarioConfig& c) {
         c.ap.zhuge.oob.delta_smoothing_alpha = 1.0;
       }},
  });

  std::printf("\n(lower is better everywhere; 'full Zhuge' should be at or near\n"
              " the best value in each column)\n");
  return 0;
}
