// Fig. 19 reproduction: Fortune Teller prediction accuracy.
// (a) CDF of |predicted - actual| per trace; (b) heatmap of estimated vs
// real delay (row-normalised, log2-spaced 1..256 ms bins).

#include "bench_util.hpp"

#include "stats/distribution.hpp"

using namespace zhuge;
using namespace zhuge::bench;

int main(int argc, char** argv) {
  zhuge::bench::ObsSession obs_session(argc, argv);
  std::printf("=== Fig. 19: Fortune Teller prediction accuracy ===\n");
  const Duration dur = Duration::seconds(150);

  std::printf("\n(a) prediction-error CDF per trace, |estimated - real| (ms)\n");
  std::printf("  %-10s %8s %8s %8s %8s %10s\n", "trace", "p50", "p90", "p99", "mean",
              "samples");
  stats::Heatmap2D heat(1.0, 256.0, 8);
  for (const auto kind : kPaperTraces) {
    const auto tr = trace::make_trace(kind, 41, dur);
    auto cfg = trace_config(tr, kind, dur, 6);
    cfg.ap.mode = ApMode::kZhuge;
    const auto r = app::run_scenario(cfg);
    const auto& e = r.prediction_error_ms;
    std::printf("  %-10s %8.2f %8.2f %8.2f %8.2f %10zu\n", trace::short_name(kind),
                e.quantile(0.5), e.quantile(0.9), e.quantile(0.99), e.mean(),
                e.count());
    for (const auto& [pred, real] : r.predicted_vs_real_ms) {
      heat.add(std::max(pred, 1e-3), std::max(real, 1e-3));
    }
  }

  std::printf("\n(b) heatmap: estimated (columns) vs real (rows) delay,"
              " row-normalised %%\n     est:");
  for (std::size_t x = 0; x < heat.bins(); ++x) {
    std::printf(" %5.0fms", heat.bin_edge(x));
  }
  std::printf("\n");
  for (std::size_t y = 0; y < heat.bins(); ++y) {
    std::printf("  %5.0fms", heat.bin_edge(y));
    for (std::size_t x = 0; x < heat.bins(); ++x) {
      std::printf(" %6.1f%%", 100.0 * heat.cell_row_normalised(x, y));
    }
    std::printf("\n");
  }
  std::printf("\n(paper: errors well below the 50 ms RTT for low delays; at high\n"
              " real delays the estimate may be off but is still 'high enough'\n"
              " to trigger the sender to back off)\n");
  return 0;
}
