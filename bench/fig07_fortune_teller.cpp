// Fig. 7 reproduction: how qLong and qShort react to an ABW drop at t=5ms.
// A micro-simulation of a single downlink queue: steady 8 Mbps arrivals
// into a 10 Mbps channel that drops to ~0.5 Mbps at t=5 ms. qShort rises
// immediately (head-of-queue wait), qLong takes over once the windowed
// dequeue-rate estimate has decayed — the paper's two-regime argument.

#include "bench_util.hpp"

#include "core/fortune_teller.hpp"
#include "queue/fifo.hpp"
#include "wireless/channel.hpp"
#include "wireless/medium.hpp"
#include "wireless/wifi_link.hpp"

using namespace zhuge;
using namespace zhuge::bench;

int main(int argc, char** argv) {
  zhuge::bench::ObsSession obs_session(argc, argv);
  std::printf("=== Fig. 7: qLong/qShort reaction to an ABW drop at t=5ms ===\n");
  sim::Simulator simu;
  sim::Rng rng(1);
  // 10 Mbps until 5 ms, then 0.5 Mbps.
  const auto tr = trace::step_trace(10e6, 0.5e6, Duration::millis(5),
                                    Duration::millis(200));
  wireless::Channel channel(&tr);
  wireless::Medium medium(simu, rng, {});
  queue::DropTailFifo qdisc(-1);
  wireless::WifiLink::Config wcfg;
  wcfg.mpdu_loss_prob = 0.0;
  wcfg.max_agg_packets = 4;
  wcfg.per_frame_overhead = Duration::micros(100);
  wireless::WifiLink link(simu, rng, channel, medium, qdisc, wcfg, [](net::Packet) {});

  core::FortuneTellerConfig fcfg;
  fcfg.window = Duration::millis(20);
  core::FortuneTeller teller(fcfg);
  link.set_dequeue_observer([&](const net::Packet& p, sim::TimePoint now) {
    teller.on_dequeue(p.size_bytes, now, qdisc.byte_count() == 0);
  });

  // 8 Mbps of 1000-byte packets: one per millisecond.
  net::PacketUidSource uids;
  for (int i = 0; i < 200; ++i) {
    simu.schedule_at(sim::TimePoint::zero() + Duration::micros(i * 1000), [&] {
      net::Packet p;
      p.uid = uids.next();
      p.size_bytes = 1000;
      link.offer(std::move(p));
    });
  }

  std::printf("  %6s %10s %10s %10s %10s %10s\n", "t(ms)", "qSize(B)", "txRate(Mb)",
              "qLong(ms)", "qShort(ms)", "total(ms)");
  for (int t_ms = 1; t_ms <= 25; ++t_ms) {
    simu.run_until(sim::TimePoint::zero() + Duration::millis(t_ms));
    const auto pred =
        teller.predict(simu.now(), qdisc.byte_count(), qdisc.head_since());
    std::printf("  %6d %10lld %10.2f %10.2f %10.2f %10.2f\n", t_ms,
                static_cast<long long>(qdisc.byte_count()),
                teller.tx_rate_bps(simu.now()) / 1e6, pred.q_long.to_millis(),
                pred.q_short.to_millis(), pred.total().to_millis());
  }
  std::printf("\n(paper: 5-15 ms is dominated by the qShort rise; after ~15 ms the\n"
              " decayed txRate makes qLong the dominant, stable component)\n");
  return 0;
}
