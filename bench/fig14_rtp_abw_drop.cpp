// Fig. 14 reproduction: RTP/GCC degradation durations after a bandwidth
// drop of factor k (30 Mbps -> 30/k) under FIFO, CoDel, and Zhuge:
// (a) RTT > 200 ms, (b) frame delay > 400 ms, (c) frame rate < 10 fps.

#include "bench_util.hpp"

using namespace zhuge;
using namespace zhuge::bench;

int main(int argc, char** argv) {
  zhuge::bench::ObsSession obs_session(argc, argv);
  std::printf("=== Fig. 14: RTP degradation durations after ABW drop ===\n");
  const Duration drop_at = Duration::seconds(20);
  const Duration dur = Duration::seconds(40);
  const std::vector<double> ks = {2, 5, 10, 20, 50};

  struct Mode {
    const char* label;
    ApMode ap;
    QdiscKind qdisc;
  };
  const std::vector<Mode> modes = {
      {"Gcc+FIFO", ApMode::kNone, QdiscKind::kFifo},
      {"Gcc+CoDel", ApMode::kNone, QdiscKind::kCoDel},
      {"Gcc+Zhuge", ApMode::kZhuge, QdiscKind::kFifo},
  };

  std::vector<std::vector<Degradation>> table;  // [mode][k]
  for (const auto& m : modes) {
    std::vector<Degradation> row;
    for (double k : ks) {
      // Average over a few seeds to stabilise the AQM/loss randomness.
      Degradation acc;
      const int seeds = 3;
      for (int s = 1; s <= seeds; ++s) {
        const auto tr = trace::step_trace(30e6, 30e6 / k, drop_at, dur);
        auto cfg = drop_config(tr, static_cast<std::uint64_t>(s));
        cfg.protocol = Protocol::kRtp;
        cfg.ap.mode = m.ap;
        cfg.ap.qdisc = m.qdisc;
        const auto d = degradation_after(app::run_scenario(cfg), drop_at, dur);
        acc.rtt_secs += d.rtt_secs / seeds;
        acc.fd_secs += d.fd_secs / seeds;
        acc.fps_secs += d.fps_secs / seeds;
      }
      row.push_back(acc);
    }
    table.push_back(row);
  }

  const char* headings[3] = {"(a) NetworkRtt > 200 ms, seconds",
                             "(b) FrameDelay > 400 ms, seconds",
                             "(c) FrameRate < 10 fps, seconds"};
  for (int metric = 0; metric < 3; ++metric) {
    std::printf("\n%s\n  %-12s", headings[metric], "mode \\ k");
    for (double k : ks) std::printf(" %7.0fx", k);
    std::printf("\n");
    for (std::size_t mi = 0; mi < modes.size(); ++mi) {
      std::printf("  %-12s", modes[mi].label);
      for (const auto& d : table[mi]) {
        const double v = metric == 0 ? d.rtt_secs : metric == 1 ? d.fd_secs : d.fps_secs;
        std::printf(" %8.2f", v);
      }
      std::printf("\n");
    }
  }
  std::printf("\n(paper: Gcc+Zhuge cuts degradation durations by >= 50%% across k)\n");
  return 0;
}
