// Fig. 18 reproduction: the paper's OpenWrt-testbed scenarios, rebuilt on
// the simulated AP (substitution documented in DESIGN.md):
//   scp — a bulk transfer toggling on/off every 30 s alongside the RTC flow
//   mcs — the link-layer modulation-coding scheme re-rolled every 30 s
//   raw — the plain fluctuating office channel
// Reported: tail ratios (network RTT, frame delay) and steady-state
// bitrate, with and without Zhuge.

#include "bench_util.hpp"

using namespace zhuge;
using namespace zhuge::bench;

namespace {

app::ScenarioResult run_case(const char* scenario, ApMode mode, std::uint64_t seed,
                             const trace::Trace* office) {
  app::ScenarioConfig cfg;
  cfg.duration = Duration::seconds(240);
  cfg.warmup = Duration::seconds(5);
  cfg.seed = seed;
  cfg.protocol = Protocol::kRtp;
  cfg.ap.mode = mode;
  if (std::string(scenario) == "scp") {
    cfg.channel_trace = nullptr;
    cfg.mcs_index = 4;  // 39 Mbps
    cfg.scp_periodic_competitor = true;
  } else if (std::string(scenario) == "mcs") {
    cfg.channel_trace = nullptr;
    cfg.mcs_index = 5;
    cfg.mcs_random_switch = true;
    // At 2 Mbps even MCS0 (6.5 Mbps) never congests; stream a richer
    // video so the MCS drops actually bite, as they do on the paper's
    // testbed where the channel carries background office traffic too.
    cfg.video.max_bitrate_bps = 12e6;
  } else {  // raw: crowded-office channel
    cfg.channel_trace = office;
  }
  return app::run_scenario(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  zhuge::bench::ObsSession obs_session(argc, argv);
  std::printf("=== Fig. 18: testbed-style scenarios (scp / mcs / raw) ===\n");
  const auto office = trace::make_trace(trace::TraceKind::kOfficeWifi, 31,
                                        Duration::seconds(240));

  std::printf("\n  %-9s %-7s %14s %14s %12s\n", "scenario", "mode", "RTT>200ms",
              "Frame>400ms", "bitrate(Mbps)");
  for (const char* scenario : {"scp", "mcs", "raw"}) {
    TailMetrics base;
    TailMetrics zhuge_m;
    for (int pass = 0; pass < 2; ++pass) {
      const ApMode mode = pass == 0 ? ApMode::kNone : ApMode::kZhuge;
      const auto m = tail_metrics(run_case(scenario, mode, 9, &office));
      (pass == 0 ? base : zhuge_m) = m;
      std::printf("  %-9s %-7s %13.3f%% %13.3f%% %12.2f\n", scenario,
                  mode_name(mode), 100.0 * m.rtt_gt_200, 100.0 * m.fd_gt_400,
                  m.goodput_mbps);
    }
    const auto impr = [](double a, double b) {
      return a > 0 ? 100.0 * (a - b) / a : 0.0;
    };
    std::printf("  %-9s improvement: RTT tail %.0f%%, frame tail %.0f%%, "
                "bitrate delta %+.1f%%\n",
                scenario, impr(base.rtt_gt_200, zhuge_m.rtt_gt_200),
                impr(base.fd_gt_400, zhuge_m.fd_gt_400),
                base.goodput_mbps > 0
                    ? 100.0 * (zhuge_m.goodput_mbps - base.goodput_mbps) /
                          base.goodput_mbps
                    : 0.0);
  }
  std::printf("\n(paper: 17-95%% RTT-tail and 9-67%% frame-tail improvement across\n"
              " scenarios, with the steady-state bitrate unchanged)\n");
  return 0;
}
