// Table 3 reproduction (appendix): evaluation over ABC's original traces —
// decade-old cellular links with roughly an order of magnitude lower ABW
// (our legacy-cellular generator). Copa vs ABC vs Copa+Zhuge.

#include "bench_util.hpp"

using namespace zhuge;
using namespace zhuge::bench;

int main(int argc, char** argv) {
  zhuge::bench::ObsSession obs_session(argc, argv);
  std::printf("=== Table 3: ABC's legacy low-bandwidth cellular traces ===\n");
  const Duration dur = Duration::seconds(150);
  const int seeds = 3;
  const auto kind = trace::TraceKind::kLegacyCellular;

  struct Mode {
    const char* label;
    ApMode ap;
    TcpCcaKind cca;
  };
  const std::vector<Mode> modes = {
      {"Copa", ApMode::kNone, TcpCcaKind::kCopa},
      {"ABC", ApMode::kAbc, TcpCcaKind::kAbc},
      {"Copa+Zhuge", ApMode::kZhuge, TcpCcaKind::kCopa},
  };

  std::vector<TailMetrics> cols;
  for (const auto& m : modes) {
    cols.push_back(averaged_tails(
        [&](int s) {
          const auto tr = trace::make_trace(kind, 13u * static_cast<unsigned>(s), dur);
          auto cfg = trace_config(tr, kind, dur, static_cast<std::uint64_t>(s));
          cfg.protocol = Protocol::kTcp;
          cfg.tcp_cca = m.cca;
          cfg.ap.mode = m.ap;
          // The legacy links average ~2.5 Mbps; keep the video within reach.
          cfg.video.max_bitrate_bps = 2.0e6;
          return app::run_scenario(cfg);
        },
        seeds));
  }

  std::printf("\n  %-26s", "metric");
  for (const auto& m : modes) std::printf(" %12s", m.label);
  std::printf("\n");
  std::printf("  %-26s", "P(NetworkRtt > 200ms)");
  for (const auto& c : cols) std::printf(" %11.2f%%", 100.0 * c.rtt_gt_200);
  std::printf("\n  %-26s", "P(FrameDelay > 400ms)");
  for (const auto& c : cols) std::printf(" %11.2f%%", 100.0 * c.fd_gt_400);
  std::printf("\n  %-26s", "P(FrameRate < 10fps)");
  for (const auto& c : cols) std::printf(" %11.2f%%", 100.0 * c.fps_lt_10);
  std::printf("\n  %-26s", "goodput (Mbps)");
  for (const auto& c : cols) std::printf(" %12.2f", c.goodput_mbps);
  std::printf("\n");

  std::printf("\n(paper Table 3: ABC wins on its own traces on application metrics;\n"
              " Copa+Zhuge still improves on plain Copa by ~67%% and is comparable\n"
              " to ABC without touching server or client)\n");
  return 0;
}
