// Fig. 13 reproduction: detailed tail distributions (1-CDF) of network
// RTT, frame delay, and frame rate for traces W1 (WiFi) and C1 (cellular)
// under Gcc+FIFO, Gcc+CoDel, Gcc+Zhuge.

#include "bench_util.hpp"

using namespace zhuge;
using namespace zhuge::bench;

int main(int argc, char** argv) {
  zhuge::bench::ObsSession obs_session(argc, argv);
  std::printf("=== Fig. 13: tail CDFs on W1 and C1 (RTP/GCC) ===\n");
  const Duration dur = Duration::seconds(300);

  struct Mode {
    const char* label;
    ApMode ap;
    QdiscKind qdisc;
  };
  const std::vector<Mode> modes = {
      {"Gcc+FIFO", ApMode::kNone, QdiscKind::kFifo},
      {"Gcc+CoDel", ApMode::kNone, QdiscKind::kCoDel},
      {"Gcc+Zhuge", ApMode::kZhuge, QdiscKind::kFifo},
  };
  const std::vector<double> rtt_thresh = {100, 200, 400, 800};
  const std::vector<double> fd_thresh = {100, 200, 400, 800};

  for (const auto kind :
       {trace::TraceKind::kRestaurantWifi, trace::TraceKind::kIndoorMixed45G}) {
    std::printf("\n--- trace %s (%s) ---\n", trace::short_name(kind),
                trace::long_name(kind));
    std::vector<app::ScenarioResult> results;
    for (const auto& m : modes) {
      const auto tr = trace::make_trace(kind, 29, dur);
      auto cfg = trace_config(tr, kind, dur, 4);
      cfg.ap.mode = m.ap;
      cfg.ap.qdisc = m.qdisc;
      results.push_back(app::run_scenario(cfg));
    }

    std::printf("P(NetworkRtt > x):%14s", "");
    for (double t : rtt_thresh) std::printf(" %7.0fms", t);
    std::printf("   p99(ms)\n");
    for (std::size_t i = 0; i < modes.size(); ++i) {
      const auto& d = results[i].primary().network_rtt_ms;
      std::printf("  %-24s", modes[i].label);
      for (double t : rtt_thresh) std::printf(" %8.4f%%", 100.0 * d.ratio_above(t));
      std::printf(" %8.0f\n", d.quantile(0.99));
    }

    std::printf("P(FrameDelay > x):%14s", "");
    for (double t : fd_thresh) std::printf(" %7.0fms", t);
    std::printf("\n");
    for (std::size_t i = 0; i < modes.size(); ++i) {
      print_ccdf(modes[i].label, results[i].primary().frame_delay_ms, fd_thresh);
    }

    std::printf("P(FrameRate < x):%15s %9s %9s %9s\n", "", "<6fps", "<10fps", "<12fps");
    for (std::size_t i = 0; i < modes.size(); ++i) {
      const auto& fr = results[i].primary().frame_rate_fps;
      std::printf("  %-24s %8.4f%% %8.4f%% %8.4f%%\n", modes[i].label,
                  100.0 * fr.ratio_below(6.0), 100.0 * fr.ratio_below(10.0),
                  100.0 * fr.ratio_below(12.0));
    }
  }
  std::printf("\n(paper: on W1, Zhuge reduces p99 RTT from ~400 ms to ~170 ms and\n"
              " roughly halves the delayed-frame and low-fps ratios)\n");
  return 0;
}
