// Fig. 16 reproduction: degradation under competing CUBIC bulk flows at
// the same AP (0..40 flows): time with RTT > 200 ms, frame delay > 400 ms
// and frame rate < 10 fps over a 60 s window, per AP mode.

#include "bench_util.hpp"

using namespace zhuge;
using namespace zhuge::bench;

int main(int argc, char** argv) {
  zhuge::bench::ObsSession obs_session(argc, argv);
  std::printf("=== Fig. 16: RTP under competing CUBIC bulk flows ===\n");
  const Duration dur = Duration::seconds(60);
  const Duration measure_from = Duration::seconds(5);
  const std::vector<int> flow_counts = {0, 10, 20, 30, 40};

  struct Mode {
    const char* label;
    ApMode ap;
    QdiscKind qdisc;
  };
  const std::vector<Mode> modes = {
      {"Gcc+FIFO", ApMode::kNone, QdiscKind::kFifo},
      {"Gcc+CoDel", ApMode::kNone, QdiscKind::kCoDel},
      {"Gcc+Zhuge", ApMode::kZhuge, QdiscKind::kFifo},
  };

  std::vector<std::vector<Degradation>> table;
  for (const auto& m : modes) {
    std::vector<Degradation> row;
    for (int flows : flow_counts) {
      const auto tr = trace::constant_trace(30e6, dur);
      app::ScenarioConfig cfg;
      cfg.channel_trace = &tr;
      cfg.duration = dur;
      cfg.warmup = measure_from;
      cfg.seed = 7;
      cfg.protocol = Protocol::kRtp;
      cfg.ap.mode = m.ap;
      cfg.ap.qdisc = m.qdisc;
      cfg.competing_bulk_flows = flows;
      const auto r = app::run_scenario(cfg);
      row.push_back(degradation_after(r, measure_from, dur));
    }
    table.push_back(row);
  }

  const char* headings[3] = {"(a) NetworkRtt > 200 ms, seconds (of 55 s)",
                             "(b) FrameDelay > 400 ms, seconds",
                             "(c) FrameRate < 10 fps, seconds"};
  for (int metric = 0; metric < 3; ++metric) {
    std::printf("\n%s\n  %-12s", headings[metric], "mode \\ flows");
    for (int f : flow_counts) std::printf(" %7d", f);
    std::printf("\n");
    for (std::size_t mi = 0; mi < modes.size(); ++mi) {
      std::printf("  %-12s", modes[mi].label);
      for (const auto& d : table[mi]) {
        const double v = metric == 0 ? d.rtt_secs : metric == 1 ? d.fd_secs : d.fps_secs;
        std::printf(" %7.2f", v);
      }
      std::printf("\n");
    }
  }
  std::printf("\n(paper: Zhuge reduces degradation by up to 40%% under competition)\n");
  return 0;
}
