// trace_summarize — per-component statistics for an exported trace.
//
//   trace_summarize out.json [out2.jsonl ...]
//
// Accepts the Chrome trace JSON or JSONL files written by any bench's
// --trace flag and prints, per (component, event) pair, the event count
// plus per-field count/mean/p50/p95/p99. A final section reports the two
// distributions the paper's evaluation leans on: queue sojourn times and
// Fortune Teller prediction error (predicted vs actual delivery delay).
// Traces recorded with latency attribution on (--attrib) additionally get
// the per-stage latency-budget report (see also tools/latency_attrib).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include <iostream>

#include "obs/attrib.hpp"
#include "obs/trace_reader.hpp"

namespace {

using zhuge::obs::LoadedEvent;

struct FieldStats {
  std::vector<double> values;

  void add(double v) { values.push_back(v); }

  [[nodiscard]] double quantile(double q) {
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    const double pos = q * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values[lo] + (values[hi] - values[lo]) * frac;
  }

  [[nodiscard]] double mean() const {
    if (values.empty()) return 0.0;
    double s = 0.0;
    for (double v : values) s += v;
    return s / static_cast<double>(values.size());
  }
};

void print_field_row(const std::string& name, FieldStats& st) {
  std::printf("      %-22s n=%-8zu mean=%-12.3f p50=%-12.3f p95=%-12.3f p99=%.3f\n",
              name.c_str(), st.values.size(), st.mean(), st.quantile(0.50),
              st.quantile(0.95), st.quantile(0.99));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <trace.json|trace.jsonl> [...]\n", argv[0]);
    return 2;
  }

  std::vector<LoadedEvent> events;
  for (int i = 1; i < argc; ++i) {
    try {
      auto loaded = zhuge::obs::load_trace_file(argv[i]);
      events.insert(events.end(), loaded.begin(), loaded.end());
    } catch (const std::exception& e) {
      // load_trace_file already prefixes the path.
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  if (events.empty()) {
    std::printf("no events.\n");
    return 0;
  }

  double t_min = events.front().t_us, t_max = events.front().t_us;
  // (component, event name) -> field -> values.
  std::map<std::string, std::map<std::string, FieldStats>> groups;
  std::map<std::string, std::size_t> group_counts;
  FieldStats prediction_error_ms;
  std::map<std::string, FieldStats> sojourns_by_queue;
  zhuge::obs::Attribution attrib;

  for (const auto& e : events) {
    attrib.add_trace_event(e);
    t_min = std::min(t_min, e.t_us);
    t_max = std::max(t_max, e.t_us);
    const std::string key = e.component + " / " + e.name;
    ++group_counts[key];
    auto& fields = groups[key];
    double predicted = NAN, actual = NAN;
    for (const auto& [fname, fval] : e.fields) {
      fields[fname].add(fval);
      if (fname == "predicted_ms") predicted = fval;
      if (fname == "actual_ms") actual = fval;
      if (fname == "sojourn_us") sojourns_by_queue[e.component].add(fval);
    }
    if (!std::isnan(predicted) && !std::isnan(actual)) {
      prediction_error_ms.add(std::abs(predicted - actual));
    }
  }

  std::printf("%zu events over %.3f s\n\n", events.size(),
              (t_max - t_min) / 1e6);
  for (auto& [key, fields] : groups) {
    std::printf("  %-40s x%zu\n", key.c_str(), group_counts[key]);
    for (auto& [fname, st] : fields) print_field_row(fname, st);
  }

  if (!sojourns_by_queue.empty()) {
    std::printf("\nqueue sojourn (us):\n");
    for (auto& [comp, st] : sojourns_by_queue) print_field_row(comp, st);
  }
  if (!prediction_error_ms.values.empty()) {
    std::printf("\nprediction |error| (ms):\n");
    print_field_row("fortune vs delivery", prediction_error_ms);
  }
  if (!attrib.empty()) {
    std::printf("\n");
    zhuge::obs::write_attrib_report_text(attrib, std::cout);
  }
  return 0;
}
