// scenario_run — run a declarative multi-station ScenarioSpec, sweep it
// across seeds, and maintain the golden-trace records.
//
//   scenario_run --spec FILE [--seed S] [--seeds N] [--threads N]
//                [--verify-serial] [--metrics PATH] [--print-schedule]
//   scenario_run --update-golden [DIR] | --check-golden [DIR] | --list-golden
//
// A spec run is deterministic in (spec, seed): the printed fingerprint is
// bit-identical across runs and across --threads values, which
// --verify-serial asserts by re-running the grid serially. The golden
// modes regenerate / verify tests/golden/*.json (see src/app/golden.hpp).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <fstream>
#include <iostream>

#include "app/golden.hpp"
#include "app/scenario.hpp"
#include "app/spec.hpp"
#include "app/sweep.hpp"
#include "obs/attrib.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s --spec FILE [--seed S] [--seeds N] [--threads N]\n"
      "          [--verify-serial] [--metrics PATH] [--print-schedule]\n"
      "          [--attrib] [--attrib-out PATH]\n"
      "       %s --update-golden [DIR] | --check-golden [DIR] | --list-golden\n"
      "  --spec FILE       ScenarioSpec JSON (see examples/specs/)\n"
      "  --seed S          override the spec's seed\n"
      "  --seeds N         sweep seeds 1..N instead of a single run\n"
      "  --threads N       worker threads for the sweep (default 1)\n"
      "  --verify-serial   re-run serially, fail on fingerprint mismatch\n"
      "  --metrics PATH    write aggregated headline metrics JSON\n"
      "  --attrib          record per-stage latency attribution and print\n"
      "                    the merged budget report (see latency_attrib)\n"
      "  --attrib-out PATH write the attribution report to PATH instead\n"
      "  --print-schedule  print the expanded flow schedule and exit\n"
      "  --update-golden   regenerate golden records (default DIR tests/golden)\n"
      "  --check-golden    verify golden records, exit 1 on drift\n"
      "  --list-golden     print the canonical golden scenario names\n",
      argv0, argv0);
}

/// The attribution golden anchor: the dense 64-station churn spec, run at
/// its embedded seed with attribution on, pinning each stage's aggregate
/// p95. A drift report here names the stage that moved.
constexpr const char* kAttribGoldenName = "attrib_dense64";
constexpr const char* kAttribGoldenSpec = "examples/specs/dense_64sta_churn.json";

int run_attrib_golden(const std::string& dir, bool update) {
  const std::string path = dir + "/" + std::string(kAttribGoldenName) + ".json";
  std::string err;
  const auto spec = zhuge::app::load_scenario_spec(kAttribGoldenSpec, &err);
  if (!spec.has_value()) {
    // The spec lives under examples/ and is only reachable from the repo
    // root; golden upkeep from elsewhere just skips the attrib anchor.
    std::printf("golden: %-20s SKIP (%s)\n", kAttribGoldenName, err.c_str());
    return 0;
  }
  const auto runs = zhuge::app::run_spec_sweep(
      {{spec->name, *spec, spec->seed}}, {.threads = 1, .attrib = true});
  const auto actual = zhuge::app::make_attrib_golden(
      kAttribGoldenName, spec->seed, runs.front().result.attrib);
  if (update) {
    if (!zhuge::app::write_attrib_golden_file(path, actual)) {
      std::fprintf(stderr, "golden: cannot write %s\n", path.c_str());
      return 2;
    }
    std::printf("golden: wrote %s (%zu stages)\n", path.c_str(),
                actual.stage_p95_us.size());
    return 0;
  }
  const auto expected = zhuge::app::load_attrib_golden_file(path, &err);
  if (!expected.has_value()) {
    std::fprintf(stderr, "golden: %s\n", err.c_str());
    return 1;
  }
  const auto diffs = zhuge::app::compare_attrib_golden(*expected, actual);
  if (diffs.empty()) {
    std::printf("golden: %-20s OK (%zu stages)\n", kAttribGoldenName,
                actual.stage_p95_us.size());
    return 0;
  }
  std::printf("golden: %-20s DRIFT\n", kAttribGoldenName);
  for (const auto& d : diffs) std::printf("  %s\n", d.c_str());
  return 1;
}

void print_run(const zhuge::app::SpecSweepRun& run) {
  const auto& r = run.result;
  std::printf(
      "%-24s fp=%016llx rtt_p50=%7.1fms rtt_p99=%7.1fms "
      "arrivals=%llu departures=%llu drops=%llu %6.2fs\n",
      run.name.c_str(), static_cast<unsigned long long>(run.fingerprint),
      r.agg_network_rtt_ms.count() > 0 ? r.agg_network_rtt_ms.quantile(0.50)
                                       : 0.0,
      r.agg_network_rtt_ms.count() > 0 ? r.agg_network_rtt_ms.quantile(0.99)
                                       : 0.0,
      static_cast<unsigned long long>(r.arrivals),
      static_cast<unsigned long long>(r.departures),
      static_cast<unsigned long long>(r.qdisc_drops), run.wall_seconds);
}

int run_golden(const std::string& dir, bool update) {
  int rc = 0;
  for (const auto& name : zhuge::app::golden_scenario_names()) {
    const std::string path = dir + "/" + name + ".json";
    const auto actual = zhuge::app::compute_golden(name);
    if (!actual.has_value()) {
      std::fprintf(stderr, "golden: unknown scenario %s\n", name.c_str());
      return 2;
    }
    if (update) {
      if (!zhuge::app::write_golden_file(path, *actual)) {
        std::fprintf(stderr, "golden: cannot write %s\n", path.c_str());
        return 2;
      }
      std::printf("golden: wrote %s (fp=%016llx)\n", path.c_str(),
                  static_cast<unsigned long long>(actual->fingerprint));
      continue;
    }
    std::string err;
    const auto expected = zhuge::app::load_golden_file(path, &err);
    if (!expected.has_value()) {
      std::fprintf(stderr, "golden: %s\n", err.c_str());
      rc = 1;
      continue;
    }
    const auto diffs = zhuge::app::compare_golden(*expected, *actual);
    if (diffs.empty()) {
      std::printf("golden: %-20s OK (fp=%016llx)\n", name.c_str(),
                  static_cast<unsigned long long>(actual->fingerprint));
    } else {
      std::printf("golden: %-20s DRIFT\n", name.c_str());
      for (const auto& d : diffs) std::printf("  %s\n", d.c_str());
      rc = 1;
    }
  }
  const int attrib_rc = run_attrib_golden(dir, update);
  rc = rc != 0 ? rc : attrib_rc;
  if (!update && rc != 0) {
    std::printf(
        "golden drift detected. If intentional, refresh with:\n"
        "  scenario_run --update-golden %s\n",
        dir.c_str());
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zhuge;

  std::string spec_path;
  std::uint64_t seed = 0;
  bool seed_set = false;
  std::uint64_t n_seeds = 0;
  unsigned threads = 1;
  bool verify_serial = false;
  std::string metrics_path;
  bool attrib = false;
  std::string attrib_out;
  bool print_schedule = false;
  std::string golden_dir = "tests/golden";
  bool golden_update = false;
  bool golden_check = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto optional_dir = [&] {
      if (i + 1 < argc && argv[i + 1][0] != '-') golden_dir = argv[++i];
    };
    if (arg == "--spec" && i + 1 < argc) {
      spec_path = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
      seed_set = true;
    } else if (arg == "--seeds" && i + 1 < argc) {
      n_seeds = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--verify-serial") {
      verify_serial = true;
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--attrib") {
      attrib = true;
    } else if (arg == "--attrib-out" && i + 1 < argc) {
      attrib = true;
      attrib_out = argv[++i];
    } else if (arg == "--print-schedule") {
      print_schedule = true;
    } else if (arg == "--update-golden") {
      golden_update = true;
      optional_dir();
    } else if (arg == "--check-golden") {
      golden_check = true;
      optional_dir();
    } else if (arg == "--list-golden") {
      for (const auto& name : app::golden_scenario_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  if (golden_update || golden_check) return run_golden(golden_dir, golden_update);

  if (spec_path.empty()) {
    usage(argv[0]);
    return 2;
  }

  std::string err;
  const auto spec = app::load_scenario_spec(spec_path, &err);
  if (!spec.has_value()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 2;
  }
  const std::uint64_t base_seed = seed_set ? seed : spec->seed;

  if (print_schedule) {
    const auto schedule = app::expand_flow_schedule(*spec, base_seed);
    std::printf("# %zu flows, %d stations, seed %llu\n", schedule.size(),
                spec->station_count(),
                static_cast<unsigned long long>(base_seed));
    for (const auto& ev : schedule) {
      std::printf("flow %3u %-10s station=%-3d zhuge=%d  %7.3fs .. %7.3fs\n",
                  ev.index, app::to_string(ev.kind), ev.station,
                  ev.zhuge ? 1 : 0, ev.start_s, ev.stop_s);
    }
    return 0;
  }

  // Build the grid: one point for --seed/spec seed, or seeds 1..N.
  std::vector<app::SpecSweepPoint> grid;
  if (n_seeds > 0) {
    std::vector<std::uint64_t> seeds;
    for (std::uint64_t s = 1; s <= n_seeds; ++s) seeds.push_back(s);
    grid = app::cross_spec_seeds(*spec, seeds);
  } else {
    grid.push_back({spec->name, *spec, base_seed});
  }

  std::printf("scenario: %s, %zu run(s), %u thread(s)\n", spec->name.c_str(),
              grid.size(), threads);
  const auto runs =
      app::run_spec_sweep(grid, {.threads = threads, .attrib = attrib});
  for (const auto& run : runs) print_run(run);

  int rc = 0;
  if (attrib) {
    obs::Attribution merged;
    for (const auto& run : runs) merged.merge(run.result.attrib);
    if (attrib_out.empty()) {
      std::printf("\n");
      obs::write_attrib_report_text(merged, std::cout);
    } else {
      std::ofstream out(attrib_out);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", attrib_out.c_str());
        rc = 3;
      } else {
        obs::write_attrib_report_text(merged, out);
        std::printf("attrib report: %s\n", attrib_out.c_str());
      }
    }
  }
  if (verify_serial) {
    const auto serial =
        app::run_spec_sweep(grid, {.threads = 1, .attrib = attrib});
    for (std::size_t i = 0; i < runs.size(); ++i) {
      if (serial[i].fingerprint != runs[i].fingerprint) {
        std::printf("MISMATCH %s: parallel %016llx != serial %016llx\n",
                    runs[i].name.c_str(),
                    static_cast<unsigned long long>(runs[i].fingerprint),
                    static_cast<unsigned long long>(serial[i].fingerprint));
        rc = 1;
      }
    }
    if (rc == 0) {
      std::printf("verify-serial: all %zu fingerprints match\n", runs.size());
    }
  }

  if (!metrics_path.empty()) {
    obs::Registry registry;
    app::export_spec_sweep_metrics(runs, registry);
    if (!obs::write_metrics_file(registry, metrics_path)) {
      std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
      rc = rc == 0 ? 3 : rc;
    } else {
      std::printf("metrics: %s\n", metrics_path.c_str());
    }
  }
  return rc;
}
