// Internal debug drivers used while developing and calibrating the
// reproduction, consolidated behind one dispatcher so tools/ exposes a
// single entry point (and the include-layering lint has one binary to
// whitelist). Not a supported API; output formats drift freely.
//
//   debug_run <case> [case args...]
//   debug_run --list
//
// Each case was previously its own debug_* binary; invocation is
// unchanged apart from the leading case name.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>

#include "app/scenario.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "trace/synthetic.hpp"

using namespace zhuge;
using sim::Duration;
using sim::TimePoint;

namespace {

// --- scenario: rate/rtt series + headline row for one scenario ------------
//   debug_run scenario [zhuge] [tcp] [secs]
int run_scenario_case(int argc, char** argv) {
  const bool with_zhuge = argc > 0 && std::string_view(argv[0]) == "zhuge";
  const bool tcp = argc > 1 && std::string_view(argv[1]) == "tcp";
  const int secs = argc > 2 ? std::atoi(argv[2]) : 120;
  const trace::Trace tr = trace::make_trace(trace::TraceKind::kRestaurantWifi, 7,
                                            Duration::seconds(secs));
  app::ScenarioConfig cfg;
  cfg.protocol = tcp ? app::Protocol::kTcp : app::Protocol::kRtp;
  cfg.tcp_cca = app::TcpCcaKind::kCopa;
  cfg.ap.mode = with_zhuge ? app::ApMode::kZhuge : app::ApMode::kNone;
  cfg.channel_trace = &tr;
  cfg.duration = Duration::seconds(secs);
  cfg.seed = 42;
  auto r = app::run_scenario(cfg);
  // Join rate and rtt series on time grid
  std::printf("# time rate_mbps rtt_ms\n");
  const auto& rs = r.rate_series_bps.points();
  const auto& ts = r.rtt_series_ms.points();
  size_t j = 0;
  for (size_t i = 0; i < rs.size(); i += 10) {
    while (j + 1 < ts.size() && ts[j + 1].t <= rs[i].t) ++j;
    std::printf("S %.1f %.2f %.0f\n", rs[i].t.to_seconds(), rs[i].value / 1e6,
                j < ts.size() ? ts[j].value : 0.0);
  }
  std::printf(
      "drops %llu pred_err_mean %.1f p99rtt %.0f ratio200 %.3f fd400 %.3f goodput %.2f\n",
      (unsigned long long)r.qdisc_drops, r.prediction_error_ms.mean(),
      r.primary().network_rtt_ms.quantile(0.99),
      r.primary().network_rtt_ms.ratio_above(200),
      r.primary().frame_delay_ms.ratio_above(400),
      r.primary().goodput_bps / 1e6);
  return 0;
}

// --- drop: step-drop probe reporting through the obs metrics registry ----
//   debug_run drop [none|zhuge|fastack|abc] [tcp] [k] [metrics_out.json]
int run_drop(int argc, char** argv) {
  const std::string mode = argc > 0 ? argv[0] : "none";
  const bool tcp = argc > 1 && std::string_view(argv[1]) == "tcp";
  const double k = argc > 2 ? std::atof(argv[2]) : 10.0;
  obs::set_metrics_enabled(true);

  // 30 Mbps for 20 s (converge), drop to 30/k for 20 s.
  const auto drop_at = Duration::seconds(20);
  const auto tr = trace::step_trace(30e6, 30e6 / k, drop_at, Duration::seconds(40));
  app::ScenarioConfig cfg;
  cfg.protocol = tcp ? app::Protocol::kTcp : app::Protocol::kRtp;
  cfg.tcp_cca = mode == "abc" ? app::TcpCcaKind::kAbc : app::TcpCcaKind::kCopa;
  cfg.ap.mode = mode == "zhuge"     ? app::ApMode::kZhuge
                : mode == "fastack" ? app::ApMode::kFastAck
                : mode == "abc"     ? app::ApMode::kAbc
                                    : app::ApMode::kNone;
  cfg.channel_trace = &tr;
  cfg.duration = Duration::seconds(40);
  cfg.seed = 3;
  auto r = app::run_scenario(cfg);

  const auto t0 = TimePoint::zero() + drop_at;
  const auto t1 = TimePoint::zero() + Duration::seconds(40);
  const double rtt_dur = r.rtt_series_ms.time_above(200.0, t0, t1).to_seconds();
  const double fd_dur = r.frame_delay_series_ms.time_above(400.0, t0, t1).to_seconds();

  // Everything below comes out of the obs registry / series helpers.
  auto& reg = obs::metrics();
  const auto& rtt_hist = reg.histogram("app.rtt_ms");
  std::printf(
      "%-8s %s k=%4.0f  rtt>200ms %6.2f s   fd>400ms %6.2f s  p99 %5.0f  goodput %.2f\n",
      mode.c_str(), tcp ? "tcp" : "rtp", k, rtt_dur, fd_dur,
      rtt_hist.quantile(0.99), reg.gauge("app.flow0.goodput_bps").value() / 1e6);
  std::printf(
      "  post-drop avg: rtt %.0f ms (time-weighted), rate %.2f Mbps; "
      "queue drops %llu, pred |err| p95 %.1f ms\n",
      r.rtt_series_ms.time_weighted_mean(t0, t1),
      r.rate_series_bps.time_weighted_mean(t0, t1) / 1e6,
      (unsigned long long)reg.gauge("ap.qdisc_drops").value(),
      reg.histogram("fortune.abs_error_ms").quantile(0.95));

  if (argc > 3 && !obs::write_metrics_file(reg, argv[3])) {
    std::fprintf(stderr, "failed to write %s\n", argv[3]);
    return 1;
  }
  return 0;
}

// --- drop2: step-drop time series / 8-bulk-flow contention ---------------
//   debug_run drop2 [none|zhuge|bulk]
int run_drop2(int argc, char** argv) {
  std::string mode = argc > 0 ? argv[0] : "none";
  if (mode == "bulk") {
    const auto tr = trace::constant_trace(20e6, Duration::seconds(20));
    app::ScenarioConfig cfg;
    cfg.channel_trace = &tr;
    cfg.duration = Duration::seconds(20);
    cfg.warmup = Duration::seconds(3);
    cfg.seed = 5;
    cfg.competing_bulk_flows = 8;
    auto r = app::run_scenario(cfg);
    std::printf("rtc goodput %.2f p90 %.1f p99 %.1f drops %llu\n",
                r.primary().goodput_bps / 1e6,
                r.primary().network_rtt_ms.quantile(.9),
                r.primary().network_rtt_ms.quantile(.99),
                (unsigned long long)r.qdisc_drops);
    return 0;
  }
  const auto tr = trace::step_trace(30e6, 3e6, Duration::seconds(20), Duration::seconds(40));
  app::ScenarioConfig cfg;
  cfg.channel_trace = &tr;
  cfg.duration = Duration::seconds(40);
  cfg.warmup = Duration::seconds(3);
  cfg.seed = 3;
  cfg.video.max_bitrate_bps = 40e6;
  cfg.ap.mode = mode == "zhuge" ? app::ApMode::kZhuge : app::ApMode::kNone;
  auto r = app::run_scenario(cfg);
  const auto& rs = r.rate_series_bps.points();
  const auto& ts = r.rtt_series_ms.points();
  size_t j = 0;
  for (size_t i = 0; i < rs.size(); i += 10) {
    double t = rs[i].t.to_seconds();
    if (t < 19.5 || t > 33) continue;
    while (j + 1 < ts.size() && ts[j + 1].t <= rs[i].t) ++j;
    std::printf("%.1f rate=%.2f rtt=%.0f\n", t, rs[i].value / 1e6,
                j < ts.size() ? ts[j].value : 0);
  }
  std::printf("deg %.2f s drops %llu\n",
              r.rtt_series_ms
                  .time_above(200.0, TimePoint::zero() + Duration::seconds(20),
                              TimePoint::zero() + Duration::seconds(40))
                  .to_seconds(),
              (unsigned long long)r.qdisc_drops);
  return 0;
}

// --- tcp: frame-delay / rtt / fps summary for a constant-rate TCP run ----
//   debug_run tcp
int run_tcp(int, char**) {
  const auto tr = trace::constant_trace(30e6, Duration::seconds(40));
  app::ScenarioConfig cfg;
  cfg.protocol = app::Protocol::kTcp;
  cfg.channel_trace = &tr;
  cfg.duration = Duration::seconds(40);
  cfg.seed = 3;
  auto r = app::run_scenario(cfg);
  const auto& f = r.primary();
  std::printf("frames sent(decoded)=%llu fd p50=%.0f p90=%.0f p99=%.0f fd>400=%.3f\n",
              (unsigned long long)f.frames_decoded, f.frame_delay_ms.quantile(.5),
              f.frame_delay_ms.quantile(.9), f.frame_delay_ms.quantile(.99),
              f.frame_delay_ms.ratio_above(400));
  std::printf("rtt p50=%.0f p99=%.0f  goodput=%.2f sender_rtt p50=%.0f\n",
              f.network_rtt_ms.quantile(.5), f.network_rtt_ms.quantile(.99),
              f.goodput_bps / 1e6, r.sender_rtt_ms.quantile(.5));
  // fps distribution
  std::printf("fps p10=%.0f p50=%.0f\n", f.frame_rate_fps.quantile(.1),
              f.frame_rate_fps.quantile(.5));
  return 0;
}

// --- seeds: zhuge-vs-none headline grid over wifi trace seeds ------------
//   debug_run seeds [tcp]
int run_seeds(int argc, char** argv) {
  const bool tcp = argc > 0 && std::string_view(argv[0]) == "tcp";
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    for (int z = 0; z < 2; ++z) {
      const auto tr = trace::make_trace(trace::TraceKind::kRestaurantWifi,
                                        seed * 13, Duration::seconds(150));
      app::ScenarioConfig cfg;
      cfg.protocol = tcp ? app::Protocol::kTcp : app::Protocol::kRtp;
      cfg.ap.mode = z ? app::ApMode::kZhuge : app::ApMode::kNone;
      cfg.channel_trace = &tr;
      cfg.duration = Duration::seconds(150);
      cfg.seed = seed;
      auto r = app::run_scenario(cfg);
      std::printf(
          "seed %llu %-6s ratio200=%.4f fd400=%.4f p99=%.0f goodput=%.2f down200=%.4f retx=%llu\n",
          (unsigned long long)seed, z ? "zhuge" : "none",
          r.primary().network_rtt_ms.ratio_above(200),
          r.primary().frame_delay_ms.ratio_above(400),
          r.primary().network_rtt_ms.quantile(.99),
          r.primary().goodput_bps / 1e6,
          r.primary().downlink_owd_ms.ratio_above(150),
          (unsigned long long)r.tcp_retransmissions);
    }
  }
  return 0;
}

// --- spike: locate the worst RTT event via the obs tracer ----------------
//   debug_run spike [trace_out.json]
int run_spike(int argc, char** argv) {
  obs::set_tracing_enabled(true);

  const auto tr = trace::make_trace(trace::TraceKind::kRestaurantWifi, 26,
                                    Duration::seconds(150));
  app::ScenarioConfig cfg;
  cfg.protocol = app::Protocol::kTcp;
  cfg.ap.mode = app::ApMode::kNone;
  cfg.channel_trace = &tr;
  cfg.duration = Duration::seconds(150);
  cfg.seed = 2;
  // The spike is mined from the tracer, not the returned result.
  (void)app::run_scenario(cfg);

  // Locate the worst "app"/"rtt" event.
  double worst_ms = 0.0;
  double worst_t_s = 0.0;
  obs::tracer().for_each([&](const obs::TraceEvent& e) {
    if (std::string_view(e.name) != "rtt") return;
    for (std::uint8_t i = 0; i < e.n_fields; ++i) {
      if (std::string_view(e.fields[i].key) == "rtt_ms" &&
          e.fields[i].value > worst_ms) {
        worst_ms = e.fields[i].value;
        worst_t_s = static_cast<double>(e.t_ns) / 1e9;
      }
    }
  });
  std::printf("worst rtt %.0f ms at t=%.2f s\n", worst_ms, worst_t_s);

  // Trace context around the spike: every recorded event within +-1.5 s.
  obs::tracer().for_each([&](const obs::TraceEvent& e) {
    const double t = static_cast<double>(e.t_ns) / 1e9;
    if (t <= worst_t_s - 1.5 || t >= worst_t_s + 1.5) return;
    if (std::string_view(e.name) == "rtt") {
      std::printf("A %.3f %.0f\n", t, e.fields[0].value);
    }
  });
  // Channel rate around that time (from the input trace, not the tracer).
  for (double t = worst_t_s - 1.5; t < worst_t_s + 1.5; t += 0.2) {
    std::printf("C %.2f %.2f Mbps\n", t,
                tr.rate_at(TimePoint{(int64_t)(t * 1e9)}) / 1e6);
  }

  if (argc > 0) {
    if (obs::write_trace_file(obs::tracer(), argv[0])) {
      std::printf("trace written: %s (%zu events)\n", argv[0],
                  obs::tracer().size());
    } else {
      std::fprintf(stderr, "failed to write %s\n", argv[0]);
      return 1;
    }
  }
  return 0;
}

// --- fair: two RTC flows, one optimised, through one AP ------------------
//   debug_run fair
int run_fair(int, char**) {
  const auto tr = trace::constant_trace(20e6, Duration::seconds(90));
  app::ScenarioConfig cfg;
  cfg.channel_trace = &tr;
  cfg.duration = Duration::seconds(90);
  cfg.warmup = Duration::seconds(15);
  cfg.seed = 11;
  cfg.protocol = app::Protocol::kRtp;
  cfg.rtc_flows = 2;
  cfg.ap.mode = app::ApMode::kZhuge;
  cfg.optimize_flow = {true, false};
  cfg.video.max_bitrate_bps = 20e6;
  auto r = app::run_scenario(cfg);
  std::printf("flow1 %.2f flow2 %.2f Mbps\n", r.flows[0].goodput_bps / 1e6,
              r.flows[1].goodput_bps / 1e6);
  return 0;
}

// --- mcs: long MCS-switching run (random rate steps) ---------------------
//   debug_run mcs [zhuge]
int run_mcs(int argc, char** argv) {
  app::ScenarioConfig cfg;
  cfg.mcs_index = 5;
  cfg.mcs_random_switch = true;
  cfg.video.max_bitrate_bps = 12e6;

  cfg.duration = Duration::seconds(240);
  cfg.warmup = Duration::seconds(5);
  cfg.seed = 9;
  cfg.ap.mode = (argc > 0 && std::string_view(argv[0]) == "zhuge")
                    ? app::ApMode::kZhuge
                    : app::ApMode::kNone;
  auto r = app::run_scenario(cfg);
  const auto& ts = r.rtt_series_ms.points();
  const auto& rs = r.rate_series_bps.points();
  size_t j = 0;
  for (size_t i = 0; i < rs.size(); i += 20) {
    while (j + 1 < ts.size() && ts[j + 1].t <= rs[i].t) ++j;
    std::printf("%.0f rate=%.1f rtt=%.0f\n", rs[i].t.to_seconds(),
                rs[i].value / 1e6, j < ts.size() ? ts[j].value : 0.0);
  }
  std::printf("ratio200=%.3f goodput=%.2f drops=%llu\n",
              r.primary().network_rtt_ms.ratio_above(200),
              r.primary().goodput_bps / 1e6, (unsigned long long)r.qdisc_drops);
  return 0;
}

// --- k5: degradation-seconds grid over drop factor x seed ----------------
//   debug_run k5
int run_k5(int, char**) {
  for (double k : {5.0, 10.0, 20.0}) {
    for (int z = 0; z < 2; ++z) {
      std::printf("k=%2.0f %-5s:", k, z ? "zhuge" : "none");
      for (uint64_t s = 1; s <= 3; ++s) {
        const auto tr = trace::step_trace(30e6, 30e6 / k, Duration::seconds(20),
                                          Duration::seconds(40));
        app::ScenarioConfig cfg;
        cfg.channel_trace = &tr;
        cfg.duration = Duration::seconds(40);
        cfg.warmup = Duration::seconds(5);
        cfg.seed = s;
        cfg.video.max_bitrate_bps = 40e6;
        cfg.ap.queue_limit_bytes = 100 * 1500;
        cfg.ap.mode = z ? app::ApMode::kZhuge : app::ApMode::kNone;
        auto r = app::run_scenario(cfg);
        std::printf(" %6.2f",
                    r.rtt_series_ms
                        .time_above(200.0, TimePoint::zero() + Duration::seconds(20),
                                    TimePoint::zero() + Duration::seconds(40))
                        .to_seconds());
      }
      std::printf("\n");
    }
  }
  return 0;
}

struct Case {
  const char* name;
  const char* usage;
  int (*fn)(int, char**);
};

constexpr Case kCases[] = {
    {"scenario", "scenario [zhuge] [tcp] [secs]", run_scenario_case},
    {"drop", "drop [none|zhuge|fastack|abc] [tcp] [k] [metrics_out.json]", run_drop},
    {"drop2", "drop2 [none|zhuge|bulk]", run_drop2},
    {"tcp", "tcp", run_tcp},
    {"seeds", "seeds [tcp]", run_seeds},
    {"spike", "spike [trace_out.json]", run_spike},
    {"fair", "fair", run_fair},
    {"mcs", "mcs [zhuge]", run_mcs},
    {"k5", "k5", run_k5},
};

void list_cases(std::FILE* out) {
  std::fprintf(out, "usage: debug_run <case> [args...]\ncases:\n");
  for (const Case& c : kCases) std::fprintf(out, "  debug_run %s\n", c.usage);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--list") == 0 ||
      std::strcmp(argv[1], "--help") == 0 || std::strcmp(argv[1], "-h") == 0) {
    list_cases(argc < 2 ? stderr : stdout);
    return argc < 2 ? 2 : 0;
  }
  for (const Case& c : kCases) {
    if (std::strcmp(argv[1], c.name) == 0) return c.fn(argc - 2, argv + 2);
  }
  std::fprintf(stderr, "debug_run: unknown case '%s'\n", argv[1]);
  list_cases(stderr);
  return 2;
}
