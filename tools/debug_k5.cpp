#include <cstdio>
#include <string>
#include "app/scenario.hpp"
#include "trace/synthetic.hpp"
using namespace zhuge;
using sim::Duration; using sim::TimePoint;
int main() {
  for (double k : {5.0, 10.0, 20.0}) {
    for (int z = 0; z < 2; ++z) {
      printf("k=%2.0f %-5s:", k, z ? "zhuge" : "none");
      for (uint64_t s = 1; s <= 3; ++s) {
        const auto tr = trace::step_trace(30e6, 30e6/k, Duration::seconds(20), Duration::seconds(40));
        app::ScenarioConfig cfg;
        cfg.channel_trace = &tr; cfg.duration = Duration::seconds(40);
        cfg.warmup = Duration::seconds(5); cfg.seed = s;
        cfg.video.max_bitrate_bps = 40e6;
        cfg.ap.queue_limit_bytes = 100 * 1500;
        cfg.ap.mode = z ? app::ApMode::kZhuge : app::ApMode::kNone;
        auto r = app::run_scenario(cfg);
        printf(" %6.2f", r.rtt_series_ms.time_above(200.0, TimePoint::zero()+Duration::seconds(20), TimePoint::zero()+Duration::seconds(40)).to_seconds());
      }
      printf("\n");
    }
  }
}
