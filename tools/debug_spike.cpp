#include <cstdio>
#include "app/scenario.hpp"
#include "trace/synthetic.hpp"
using namespace zhuge;
int main() {
  const auto tr = trace::make_trace(trace::TraceKind::kRestaurantWifi, 26, sim::Duration::seconds(150));
  app::ScenarioConfig cfg;
  cfg.protocol = app::Protocol::kTcp;
  cfg.ap.mode = app::ApMode::kNone;
  cfg.channel_trace = &tr;
  cfg.duration = sim::Duration::seconds(150);
  cfg.seed = 2;
  auto r = app::run_scenario(cfg);
  // find worst rtt sample
  const auto& ts = r.rtt_series_ms.points();
  size_t worst = 0;
  for (size_t i = 0; i < ts.size(); ++i) if (ts[i].value > ts[worst].value) worst = i;
  const double t0 = ts[worst].t.to_seconds();
  std::printf("worst rtt %.0f ms at t=%.2f s\n", ts[worst].value, t0);
  for (const auto& p : ts) {
    const double t = p.t.to_seconds();
    if (t > t0 - 1.5 && t < t0 + 1.5) std::printf("A %.3f %.0f\n", t, p.value);
  }
  // channel rate around that time
  for (double t = t0 - 1.5; t < t0 + 1.5; t += 0.2)
    std::printf("C %.2f %.2f Mbps\n", t, tr.rate_at(sim::TimePoint{(int64_t)(t*1e9)})/1e6);
  return 0;
}
