// RTT-spike probe: find the worst RTT event in a run and show the trace
// context around it. Built on the obs tracer: the scenario is run with
// tracing enabled and the spike is located from the recorded "app"/"rtt"
// events instead of hand-rolled series walking.
//
//   debug_spike [trace_out.json]
//
// With an argument, the full trace is also written for chrome://tracing.
#include <cstdint>
#include <cstdio>
#include <string_view>

#include "app/scenario.hpp"
#include "obs/export.hpp"
#include "obs/tracer.hpp"
#include "trace/synthetic.hpp"
using namespace zhuge;

int main(int argc, char** argv) {
  obs::set_tracing_enabled(true);

  const auto tr = trace::make_trace(trace::TraceKind::kRestaurantWifi, 26,
                                    sim::Duration::seconds(150));
  app::ScenarioConfig cfg;
  cfg.protocol = app::Protocol::kTcp;
  cfg.ap.mode = app::ApMode::kNone;
  cfg.channel_trace = &tr;
  cfg.duration = sim::Duration::seconds(150);
  cfg.seed = 2;
  app::run_scenario(cfg);

  // Locate the worst "app"/"rtt" event.
  double worst_ms = 0.0;
  double worst_t_s = 0.0;
  obs::tracer().for_each([&](const obs::TraceEvent& e) {
    if (std::string_view(e.name) != "rtt") return;
    for (std::uint8_t i = 0; i < e.n_fields; ++i) {
      if (std::string_view(e.fields[i].key) == "rtt_ms" &&
          e.fields[i].value > worst_ms) {
        worst_ms = e.fields[i].value;
        worst_t_s = static_cast<double>(e.t_ns) / 1e9;
      }
    }
  });
  std::printf("worst rtt %.0f ms at t=%.2f s\n", worst_ms, worst_t_s);

  // Trace context around the spike: every recorded event within +-1.5 s.
  obs::tracer().for_each([&](const obs::TraceEvent& e) {
    const double t = static_cast<double>(e.t_ns) / 1e9;
    if (t <= worst_t_s - 1.5 || t >= worst_t_s + 1.5) return;
    if (std::string_view(e.name) == "rtt") {
      std::printf("A %.3f %.0f\n", t, e.fields[0].value);
    }
  });
  // Channel rate around that time (from the input trace, not the tracer).
  for (double t = worst_t_s - 1.5; t < worst_t_s + 1.5; t += 0.2) {
    std::printf("C %.2f %.2f Mbps\n", t,
                tr.rate_at(sim::TimePoint{(int64_t)(t * 1e9)}) / 1e6);
  }

  if (argc > 1) {
    if (obs::write_trace_file(obs::tracer(), argv[1])) {
      std::printf("trace written: %s (%zu events)\n", argv[1],
                  obs::tracer().size());
    } else {
      std::fprintf(stderr, "failed to write %s\n", argv[1]);
      return 1;
    }
  }
  return 0;
}
