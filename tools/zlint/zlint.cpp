#include "zlint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace zlint {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer. Just enough C++ lexing to walk identifiers, literals and
// punctuation with line numbers; comments and strings are consumed (never
// tokenised) so rule matching cannot fire inside them.
// ---------------------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kPunct };

struct Token {
  TokKind kind;
  std::string_view text;
  int line;
};

struct Include {
  std::string path;  ///< include target, quotes/brackets stripped
  bool quoted;       ///< "..." (project include) vs <...> (system)
  int line;
};

struct FileInfo {
  std::vector<Token> tokens;
  std::vector<Include> includes;
  /// line -> rules silenced on that line ("*" silences everything).
  std::map<int, std::set<std::string>> suppressions;
  /// Lines holding a zlint-allow clause with no ": reason" after it.
  std::vector<int> bad_allow_lines;
  /// First line that produced a token or an include (0 if none).
  int first_code_line = 0;
};

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Extract every rule named in `zlint-allow(rule[,rule...])` clauses.
/// Sets *missing_reason (when non-null) if any clause lacks the mandatory
/// ": reason" tail after the closing paren.
std::vector<std::string> parse_allow_rules(std::string_view comment,
                                           bool* missing_reason = nullptr) {
  std::vector<std::string> out;
  static constexpr std::string_view kTag = "zlint-allow(";
  std::size_t pos = 0;
  while ((pos = comment.find(kTag, pos)) != std::string_view::npos) {
    pos += kTag.size();
    const std::size_t close = comment.find(')', pos);
    if (close == std::string_view::npos) return out;
    std::string_view rules = comment.substr(pos, close - pos);
    while (!rules.empty()) {
      const std::size_t comma = rules.find(',');
      std::string_view one = rules.substr(0, comma);
      while (!one.empty() && one.front() == ' ') one.remove_prefix(1);
      while (!one.empty() && one.back() == ' ') one.remove_suffix(1);
      if (!one.empty()) out.emplace_back(one);
      if (comma == std::string_view::npos) break;
      rules.remove_prefix(comma + 1);
    }
    if (missing_reason != nullptr) {
      // Require ": <non-space>" after the close paren (whitespace allowed
      // around the colon; "*/" may end a block-comment clause).
      std::size_t j = close + 1;
      while (j < comment.size() && (comment[j] == ' ' || comment[j] == '\t'))
        ++j;
      bool ok = j < comment.size() && comment[j] == ':';
      if (ok) {
        ++j;
        while (j < comment.size() &&
               std::isspace(static_cast<unsigned char>(comment[j]))) {
          ++j;
        }
        ok = j < comment.size() && comment.compare(j, 2, "*/") != 0;
      }
      if (!ok) *missing_reason = true;
    }
    pos = close;
  }
  return out;
}

FileInfo lex(std::string_view text) {
  FileInfo out;
  const std::size_t n = text.size();
  std::size_t i = 0;
  int line = 1;
  int last_code_line = 0;  // last line that produced a token
  int paren_depth = 0;     // ( ) nesting, for statement-end detection

  // Suppressions from own-line comments wait here until the next line of
  // code (or include) appears, however many comment lines intervene. Once
  // flushed they also stay active for the rest of that *statement*, so a
  // suppression above a multi-line call covers its continuation lines.
  std::vector<std::string> pending;
  std::set<std::string> stmt_rules;  // active until the statement ends
  const auto flush_pending = [&](int code_line) {
    if (pending.empty()) return;
    for (auto& r : pending) {
      out.suppressions[code_line].insert(r);
      stmt_rules.insert(std::move(r));
    }
    pending.clear();
  };
  const auto note_code_line = [&](int code_line) {
    if (out.first_code_line == 0) out.first_code_line = code_line;
    flush_pending(code_line);
    if (!stmt_rules.empty()) {
      out.suppressions[code_line].insert(stmt_rules.begin(), stmt_rules.end());
    }
  };

  const auto peek = [&](std::size_t off) -> char {
    return i + off < n ? text[i + off] : '\0';
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && peek(1) == '/') {
      const std::size_t start = i;
      const bool own_line = last_code_line != line;
      while (i < n && text[i] != '\n') ++i;
      bool missing = false;
      auto rules = parse_allow_rules(text.substr(start, i - start), &missing);
      if (missing) out.bad_allow_lines.push_back(line);
      for (auto& r : rules) {
        if (own_line) pending.push_back(std::move(r));
        else out.suppressions[line].insert(std::move(r));
      }
      continue;
    }
    // Block comment.
    if (c == '/' && peek(1) == '*') {
      const std::size_t start = i;
      const int start_line = line;
      const bool own_line = last_code_line != line;
      i += 2;
      while (i < n && !(text[i] == '*' && peek(1) == '/')) {
        if (text[i] == '\n') ++line;
        ++i;
      }
      if (i < n) i += 2;
      bool missing = false;
      auto rules = parse_allow_rules(text.substr(start, i - start), &missing);
      if (missing) out.bad_allow_lines.push_back(start_line);
      for (auto& r : rules) {
        if (own_line) pending.push_back(std::move(r));
        else out.suppressions[start_line].insert(std::move(r));
      }
      continue;
    }
    // Preprocessor: only #include needs structure; everything else is
    // lexed normally so banned tokens inside macro bodies still match.
    if (c == '#') {
      std::size_t j = i + 1;
      while (j < n && (text[j] == ' ' || text[j] == '\t')) ++j;
      if (text.compare(j, 7, "include") == 0) {
        j += 7;
        while (j < n && (text[j] == ' ' || text[j] == '\t')) ++j;
        if (j < n && (text[j] == '"' || text[j] == '<')) {
          const char closer = text[j] == '"' ? '"' : '>';
          const std::size_t tstart = j + 1;
          std::size_t tend = tstart;
          while (tend < n && text[tend] != closer && text[tend] != '\n') ++tend;
          note_code_line(line);
          out.includes.push_back(
              {std::string(text.substr(tstart, tend - tstart)),
               closer == '"', line});
          i = tend < n && text[tend] == closer ? tend + 1 : tend;
          continue;
        }
      }
      ++i;
      continue;
    }
    // String literal (incl. prefixed and raw strings).
    if (c == '"' || ((c == 'L' || c == 'u' || c == 'U' || c == 'R') &&
                     (peek(1) == '"' ||
                      (peek(1) == '8' && peek(2) == '"') ||
                      (peek(1) == 'R' && peek(2) == '"')))) {
      // Advance to the opening quote, noting whether this is a raw string.
      bool raw = false;
      while (i < n && text[i] != '"') {
        if (text[i] == 'R') raw = true;
        ++i;
      }
      if (i >= n) break;
      ++i;  // past the opening quote
      if (raw) {
        // R"delim( ... )delim"
        std::size_t dend = i;
        while (dend < n && text[dend] != '(') ++dend;
        const std::string closer =
            ")" + std::string(text.substr(i, dend - i)) + "\"";
        const std::size_t endpos = text.find(closer, dend);
        for (std::size_t k = dend; k < std::min(endpos, n); ++k)
          if (text[k] == '\n') ++line;
        i = endpos == std::string_view::npos ? n : endpos + closer.size();
      } else {
        while (i < n && text[i] != '"') {
          if (text[i] == '\\') ++i;
          else if (text[i] == '\n') ++line;  // unterminated; stay sane
          ++i;
        }
        if (i < n) ++i;
      }
      last_code_line = line;
      continue;
    }
    // Char literal.
    if (c == '\'') {
      ++i;
      while (i < n && text[i] != '\'') {
        if (text[i] == '\\') ++i;
        ++i;
      }
      if (i < n) ++i;
      last_code_line = line;
      continue;
    }
    // Number (also consumes digit separators and suffixes).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      const std::size_t start = i;
      while (i < n) {
        const char d = text[i];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '.' || d == '\'') {
          ++i;
        } else if ((d == '+' || d == '-') && i > start &&
                   (text[i - 1] == 'e' || text[i - 1] == 'E' ||
                    text[i - 1] == 'p' || text[i - 1] == 'P')) {
          ++i;  // exponent sign
        } else {
          break;
        }
      }
      note_code_line(line);
      out.tokens.push_back({TokKind::kNumber, text.substr(start, i - start), line});
      last_code_line = line;
      continue;
    }
    // Identifier.
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(text[i])) ++i;
      note_code_line(line);
      out.tokens.push_back({TokKind::kIdent, text.substr(start, i - start), line});
      last_code_line = line;
      continue;
    }
    // Punctuation: split off the multi-char operators the rules care
    // about; everything else is a single character.
    {
      static constexpr std::string_view kTwo[] = {"::", "==", "!=", "->",
                                                  "<=", ">=", "&&", "||",
                                                  "<<", ">>", "++", "--",
                                                  "+=", "-=", "*=", "/="};
      std::size_t len = 1;
      for (const auto op : kTwo) {
        if (text.compare(i, op.size(), op) == 0) {
          len = op.size();
          break;
        }
      }
      note_code_line(line);
      const std::string_view tok = text.substr(i, len);
      out.tokens.push_back({TokKind::kPunct, tok, line});
      if (tok == "(") ++paren_depth;
      else if (tok == ")") paren_depth = std::max(0, paren_depth - 1);
      // Statement boundary: a top-level ';' or any brace ends the reach of
      // an own-line suppression (';' inside an argument-list lambda body
      // does not — the enclosing statement is still open).
      if (paren_depth == 0 && (tok == ";" || tok == "{" || tok == "}")) {
        stmt_rules.clear();
      }
      last_code_line = line;
      i += len;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Layer classification and the layer DAG.
// ---------------------------------------------------------------------------

/// Top-level dirs under src/, bottom layer first. obs sits just above sim:
/// conceptually cross-cutting, but in the include graph it is a base
/// facility (metric/trace macros) pulled into hot paths everywhere.
constexpr std::string_view kSrcLayers[] = {
    "sim", "obs", "stats", "net", "trace", "queue", "rtc", "wireless",
    "baseline", "cca", "transport", "core", "fault", "app"};

bool is_src_layer(std::string_view layer) {
  return std::find(std::begin(kSrcLayers), std::end(kSrcLayers), layer) !=
         std::end(kSrcLayers);
}

/// from-layer -> set of layers it may include (own layer always allowed).
const std::map<std::string_view, std::set<std::string_view>>& allowed_edges() {
  static const std::map<std::string_view, std::set<std::string_view>> kAllowed = {
      {"sim", {}},
      {"obs", {"sim"}},
      {"stats", {"sim"}},
      {"net", {"sim", "obs"}},
      {"trace", {"sim"}},
      {"queue", {"sim", "net", "obs"}},
      {"rtc", {"sim", "stats", "obs"}},
      {"wireless", {"sim", "net", "queue", "trace", "obs"}},
      // baseline/cca may see obs: net/packet.hpp (which both consume) pulls
      // in obs/spans.hpp for latency-span stamps, so the edge exists
      // transitively regardless; naming it keeps the DAG honest.
      {"baseline", {"sim", "net", "stats", "obs"}},
      {"cca", {"sim", "net", "stats", "obs"}},
      {"transport", {"sim", "net", "stats", "rtc", "cca", "obs"}},
      {"core", {"sim", "net", "stats", "queue", "obs"}},
      {"fault", {"sim", "net", "obs"}},
      {"app",
       {"sim", "obs", "stats", "net", "trace", "queue", "rtc", "wireless",
        "baseline", "cca", "transport", "core", "fault"}},
  };
  return kAllowed;
}

struct FileClass {
  std::string layer;  ///< "sim".."app", or "tools"/"tests"/"bench"/"examples"
  bool in_src = false;
};

FileClass classify(std::string_view rel_path) {
  std::string norm(rel_path);
  std::replace(norm.begin(), norm.end(), '\\', '/');
  while (norm.rfind("./", 0) == 0) norm.erase(0, 2);
  FileClass fc;
  const std::size_t slash = norm.find('/');
  if (slash == std::string::npos) return fc;
  const std::string first = norm.substr(0, slash);
  if (first == "src") {
    const std::size_t slash2 = norm.find('/', slash + 1);
    if (slash2 != std::string::npos) {
      fc.layer = norm.substr(slash + 1, slash2 - slash - 1);
      fc.in_src = true;
    }
  } else if (first == "tools" || first == "tests" || first == "bench" ||
             first == "examples") {
    fc.layer = first;
  }
  return fc;
}

// ---------------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------------

void emit(std::vector<Diagnostic>& diags, std::string_view path, int line,
          std::string_view rule, std::string message) {
  diags.push_back({std::string(path), line, std::string(rule), std::move(message)});
}

bool is_member_access(const Token& t) {
  return t.kind == TokKind::kPunct && (t.text == "." || t.text == "->");
}

/// Does `t[i]` look like a *call of the global/std function* rather than a
/// member call (`obj.time()`), an out-of-line member or declaration
/// (`int time() const`, `Clock::time()`), or another namespace's symbol?
bool banned_call_context(const std::vector<Token>& t, std::size_t i) {
  if (i == 0) return true;
  const Token& prev = t[i - 1];
  if (is_member_access(prev)) return false;
  if (prev.text == "::") return i >= 2 && t[i - 2].text == "std";
  if (prev.kind == TokKind::kIdent) {
    // A preceding identifier is usually a type (declaration) — except for
    // statement keywords, after which this really is a call.
    static const std::set<std::string_view> kStmtKeywords = {
        "return", "co_return", "co_yield", "case", "else", "do", "throw"};
    return kStmtKeywords.count(prev.text) > 0;
  }
  return true;
}

/// banned-api: nondeterminism sources under src/. sim::Rng and the
/// simulated clock are the only legitimate entropy/time sources there.
void rule_banned_api(const FileInfo& f, std::string_view path,
                     std::vector<Diagnostic>& diags) {
  static const std::set<std::string_view> kAlways = {
      "srand",        "random_device",         "system_clock",
      "steady_clock", "high_resolution_clock", "getenv"};
  const auto& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const std::string_view id = t[i].text;
    if (kAlways.count(id) > 0) {
      emit(diags, path, t[i].line, "banned-api",
           "'" + std::string(id) +
               "' is a wall-clock/entropy/environment source; use sim::Rng "
               "and the Simulator clock (or zlint-allow(banned-api) with a "
               "reason)");
      continue;
    }
    if ((id == "rand" || id == "time") && i + 1 < t.size() &&
        t[i + 1].text == "(" && banned_call_context(t, i)) {
      emit(diags, path, t[i].line, "banned-api",
           "call to '" + std::string(id) +
               "()' is nondeterministic; use sim::Rng / the Simulator clock");
    }
  }
}

/// Skip a balanced template argument list starting at `i` (which must
/// point at '<'); returns the index one past the matching '>'. Treats
/// ">>" as two closers (template context).
std::size_t skip_template_args(const std::vector<Token>& t, std::size_t i) {
  int depth = 0;
  for (; i < t.size(); ++i) {
    const std::string_view s = t[i].text;
    if (s == "<") ++depth;
    else if (s == "<<") depth += 2;
    else if (s == ">") --depth;
    else if (s == ">>") depth -= 2;
    else if (s == ";" || s == "{") break;  // malformed; bail out
    if (depth <= 0 && s.front() == '>') return i + 1;
  }
  return i;
}

/// determinism-hazard: iteration over unordered containers in
/// result-affecting layers. Heuristic: track identifiers declared in this
/// file with an unordered_{map,set} type, then flag range-for statements
/// whose range expression mentions one (or the type itself), and direct
/// .begin()/.cbegin()/... iterator walks.
void rule_determinism_hazard(const FileInfo& f, std::string_view path,
                             std::vector<Diagnostic>& diags) {
  const auto& t = f.tokens;
  std::set<std::string_view> unordered_vars;

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent ||
        (t[i].text != "unordered_map" && t[i].text != "unordered_set")) {
      continue;
    }
    std::size_t j = i + 1;
    if (j < t.size() && t[j].text == "<") j = skip_template_args(t, j);
    // Optional cv/ref/pointer decorations, then the declarator name.
    while (j < t.size() &&
           (t[j].text == "&" || t[j].text == "*" || t[j].text == "const")) {
      ++j;
    }
    if (j < t.size() && t[j].kind == TokKind::kIdent) {
      unordered_vars.insert(t[j].text);
    }
  }

  const auto is_unordered_expr_token = [&](const Token& tok) {
    return tok.kind == TokKind::kIdent &&
           (tok.text == "unordered_map" || tok.text == "unordered_set" ||
            unordered_vars.count(tok.text) > 0);
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    // Range-for over an unordered container.
    if (t[i].kind == TokKind::kIdent && t[i].text == "for" &&
        i + 1 < t.size() && t[i + 1].text == "(") {
      int depth = 0;
      std::size_t colon = 0, close = 0;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        const std::string_view s = t[j].text;
        if (s == "(") ++depth;
        else if (s == ")") {
          if (--depth == 0) { close = j; break; }
        } else if (s == ":" && depth == 1 && colon == 0) {
          colon = j;
        }
      }
      if (colon != 0 && close != 0) {
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (is_unordered_expr_token(t[j])) {
            emit(diags, path, t[i].line, "determinism-hazard",
                 "range-for over unordered container '" +
                     std::string(t[j].text) +
                     "': iteration order is implementation-defined and can "
                     "leak into results; use std::map, a sorted snapshot, or "
                     "an insertion-order vector");
            break;
          }
        }
      }
      continue;
    }
    // Iterator walk: var.begin() / var->cbegin() / ...
    if (is_unordered_expr_token(t[i]) && i + 2 < t.size() &&
        is_member_access(t[i + 1]) && t[i + 2].kind == TokKind::kIdent) {
      static const std::set<std::string_view> kIterFns = {
          "begin", "cbegin", "rbegin", "crbegin"};
      if (kIterFns.count(t[i + 2].text) > 0 && i + 3 < t.size() &&
          t[i + 3].text == "(") {
        emit(diags, path, t[i].line, "determinism-hazard",
             "iterator walk over unordered container '" +
                 std::string(t[i].text) +
                 "': iteration order is implementation-defined");
      }
    }
  }
}

bool is_float_literal(std::string_view num) {
  if (num.size() > 1 && (num[1] == 'x' || num[1] == 'X')) {
    return num.find('.') != std::string_view::npos ||
           num.find('p') != std::string_view::npos ||
           num.find('P') != std::string_view::npos;
  }
  for (const char c : num) {
    if (c == '.' || c == 'e' || c == 'E') return true;
  }
  return num.back() == 'f' || num.back() == 'F';
}

/// float-equality: ==/!= where an adjacent operand is a floating literal
/// or an identifier declared double/float in this file. Exact FP equality
/// is both a correctness smell and a reproducibility hazard (results can
/// flip with FMA/rounding differences across builds).
void rule_float_equality(const FileInfo& f, std::string_view path,
                         std::vector<Diagnostic>& diags) {
  const auto& t = f.tokens;
  std::set<std::string_view> float_vars;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind == TokKind::kIdent &&
        (t[i].text == "double" || t[i].text == "float") &&
        t[i + 1].kind == TokKind::kIdent) {
      // `double x =`, `double x;`, `double x,`, `double x)` `double x{`:
      // a variable/param declaration, not a function declaration.
      const std::string_view after = t[i + 2].text;
      if (after == "=" || after == ";" || after == "," || after == ")" ||
          after == "{") {
        float_vars.insert(t[i + 1].text);
      }
    }
  }
  const auto floaty = [&](const Token& tok) {
    if (tok.kind == TokKind::kNumber) return is_float_literal(tok.text);
    return tok.kind == TokKind::kIdent && float_vars.count(tok.text) > 0;
  };
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kPunct || (t[i].text != "==" && t[i].text != "!="))
      continue;
    // A nullptr operand means the other side is a pointer, whatever its
    // name shadows — e.g. `double* d; d != nullptr`.
    if (t[i - 1].text == "nullptr" || t[i + 1].text == "nullptr") continue;
    if (floaty(t[i - 1]) || floaty(t[i + 1])) {
      emit(diags, path, t[i].line, "float-equality",
           "'" + std::string(t[i].text) +
               "' between floating-point expressions; compare with an "
               "explicit tolerance or restructure");
    }
  }
}

/// include-layering: every quoted #include whose first component is a
/// src/ layer must follow the layer DAG (see DESIGN.md §11).
void rule_include_layering(const FileInfo& f, const FileClass& fc,
                           std::string_view path,
                           std::vector<Diagnostic>& diags) {
  const bool top_level = fc.layer == "tools" || fc.layer == "tests" ||
                         fc.layer == "bench" || fc.layer == "examples";
  for (const Include& inc : f.includes) {
    if (!inc.quoted) continue;
    const std::size_t slash = inc.path.find('/');
    if (slash == std::string::npos) continue;  // local header, not a layer
    const std::string target = inc.path.substr(0, slash);
    if (target == "tools" || target == "tests" || target == "bench" ||
        target == "examples") {
      emit(diags, path, inc.line, "include-layering",
           "library and test code may not include from '" + target + "/'");
      continue;
    }
    if (!is_src_layer(target)) continue;
    if (top_level) continue;           // binaries may include any layer
    if (!fc.in_src) continue;          // unknown location: nothing to check
    if (target == fc.layer) continue;  // own layer always fine
    const auto it = allowed_edges().find(fc.layer);
    if (it == allowed_edges().end()) continue;  // unknown layer: permissive
    if (it->second.count(target) == 0) {
      std::string allowed;
      for (const auto a : it->second)
        allowed += (allowed.empty() ? "" : ", ") + std::string(a);
      emit(diags, path, inc.line, "include-layering",
           "layer '" + fc.layer + "' may not include \"" + inc.path +
               "\" (allowed layers: " + (allowed.empty() ? "none" : allowed) +
               ")");
    }
  }
}

// ---------------------------------------------------------------------------
// Phase-1 fact extraction (project mode).
// ---------------------------------------------------------------------------

std::string_view path_basename(std::string_view path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

/// Parse an integer literal token (decimal or hex, digit separators and
/// u/l suffixes allowed). Returns false for floating literals.
bool parse_int_literal(std::string_view text, std::int64_t* out) {
  std::string digits;
  digits.reserve(text.size());
  for (const char c : text) {
    if (c == '\'') continue;
    digits += c;
  }
  int base = 10;
  std::size_t pos = 0;
  if (digits.size() > 2 && digits[0] == '0' &&
      (digits[1] == 'x' || digits[1] == 'X')) {
    base = 16;
    pos = 2;
  }
  std::int64_t v = 0;
  bool any = false;
  for (; pos < digits.size(); ++pos) {
    const char c = digits[pos];
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (base == 16 && c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else if (base == 16 && c >= 'A' && c <= 'F') d = c - 'A' + 10;
    else if (c == 'u' || c == 'U' || c == 'l' || c == 'L') continue;  // suffix
    else return false;  // '.', 'e', 'p', ... — not an integer literal
    v = v * base + d;
    any = true;
  }
  if (!any) return false;
  *out = v;
  return true;
}

/// The time-unit suffix of an identifier (after the last underscore,
/// ignoring a trailing member-variable underscore), or empty.
std::string_view unit_suffix(std::string_view name) {
  while (!name.empty() && name.back() == '_') name.remove_suffix(1);
  const std::size_t us = name.find_last_of('_');
  if (us == std::string_view::npos || us == 0) return {};
  const std::string_view suf = name.substr(us + 1);
  if (suf == "ns" || suf == "us" || suf == "ms" || suf == "s") return suf;
  return {};
}

/// sim::Rng(seed, <stream>) construction sites. Handles direct
/// constructions (`sim::Rng(seed, 31)`, `sim::Rng rng(seed, 7)`) and the
/// template-argument form (`std::make_unique<sim::Rng>(seed, 11)`).
/// Declarations (`explicit Rng(... = ...)`, `sim::Rng& rng` parameters)
/// never match: they either lack a '(' right after `Rng` or carry a
/// defaulted argument.
void extract_rng_uses(const FileInfo& f, std::vector<RngUse>& out) {
  const auto& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || t[i].text != "Rng") continue;
    if (i > 0 && (t[i - 1].text == "class" || t[i - 1].text == "struct" ||
                  t[i - 1].text == "explicit" || t[i - 1].text == "~")) {
      continue;
    }
    std::size_t j = i + 1;
    if (j < t.size() && t[j].text == ">") ++j;  // make_unique<sim::Rng>(...)
    // Declaration form: `sim::Rng rng(seed, stream)` — one identifier (the
    // variable name) may sit between the type and the argument list.
    if (j < t.size() && t[j].kind == TokKind::kIdent) ++j;
    if (j >= t.size() || t[j].text != "(") continue;
    // Split the argument list at top-level commas.
    std::vector<std::vector<std::size_t>> args(1);
    int depth = 1;
    std::size_t k = j + 1;
    for (; k < t.size() && depth > 0; ++k) {
      const std::string_view s = t[k].text;
      if (s == "(" || s == "[" || s == "{") ++depth;
      else if (s == ")" || s == "]" || s == "}") { --depth; if (depth == 0) break; }
      else if (s == "," && depth == 1) { args.emplace_back(); continue; }
      if (depth > 0) args.back().push_back(k);
    }
    if (args.size() != 2 || args[1].empty()) continue;
    const auto& arg = args[1];
    bool is_decl = false;
    for (const std::size_t ai : arg) {
      if (t[ai].text == "=") is_decl = true;  // defaulted param: declaration
    }
    if (is_decl) continue;
    RngUse use;
    use.line = t[i].line;
    if (arg.size() == 1 && t[arg[0]].kind == TokKind::kNumber) {
      std::int64_t v = 0;
      if (!parse_int_literal(t[arg[0]].text, &v)) continue;  // float: not ours
      use.is_literal = true;
      use.value = v;
      use.arg = std::string(t[arg[0]].text);
      out.push_back(std::move(use));
      continue;
    }
    // Named expression: take the last identifier (handles `substreams::kX`,
    // `cfg.stream`, plain `kX`). Reject anything with operators beyond
    // scope/member access — a computed stream is not a registry name.
    std::string last_ident;
    bool simple = true;
    bool prev_ident = false;
    bool param_decl = false;
    for (const std::size_t ai : arg) {
      const Token& tok = t[ai];
      if (tok.kind == TokKind::kIdent) {
        // Two adjacent identifiers (`std::uint64_t stream`) mean this is a
        // function *declaration* parameter list, not a construction.
        if (prev_ident) param_decl = true;
        last_ident = std::string(tok.text);
        prev_ident = true;
      } else if (tok.kind == TokKind::kPunct &&
                 (tok.text == "::" || tok.text == "." || tok.text == "->")) {
        prev_ident = false;  // scope/member access: still a name
      } else {
        simple = false;
        prev_ident = false;
      }
    }
    if (param_decl || last_ident.empty()) continue;
    use.arg = simple ? last_ident : "<expr>";
    out.push_back(std::move(use));
  }
}

/// Named substream constants from a registry file (any scanned file named
/// substreams.hpp): `[inline] constexpr <int-type> kName = <int>;`.
void extract_stream_defs(const FileInfo& f, std::vector<StreamDef>& out) {
  const auto& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || t[i].text != "constexpr") continue;
    std::string name;
    std::int64_t value = 0;
    bool have_value = false;
    int name_line = t[i].line;
    for (std::size_t j = i + 1; j + 2 < t.size(); ++j) {
      if (t[j].text == ";" || t[j].text == "{") break;
      if (t[j].kind == TokKind::kIdent && t[j + 1].text == "=" &&
          t[j + 2].kind == TokKind::kNumber) {
        if (parse_int_literal(t[j + 2].text, &value)) {
          name = std::string(t[j].text);
          name_line = t[j].line;
          have_value = j + 3 < t.size() && t[j + 3].text == ";";
        }
        break;
      }
    }
    if (have_value && !name.empty()) out.push_back({name_line, name, value});
  }
}

/// Statement/scope walker for shared-mutable-state: classifies each brace
/// scope (namespace / class / function / brace-init) from the statement
/// tokens preceding it, then inspects completed statements for mutable
/// namespace-scope variables, non-const static locals, and static data
/// members.
void extract_globals(const FileInfo& f, std::vector<GlobalDecl>& out) {
  enum class Scope { kNamespace, kClass, kFunction, kInit };
  const auto& t = f.tokens;
  std::vector<Scope> scopes;
  std::vector<std::size_t> stmt;  // token indices of the open statement
  int paren_depth = 0;

  const auto current = [&] {
    return scopes.empty() ? Scope::kNamespace : scopes.back();
  };
  const auto stmt_has = [&](std::string_view word) {
    for (const std::size_t si : stmt) {
      if (t[si].kind == TokKind::kIdent && t[si].text == word) return true;
    }
    return false;
  };

  const auto evaluate = [&] {
    if (stmt.empty()) return;
    const Scope scope = current();
    if (scope == Scope::kInit) return;
    const bool is_static = stmt_has("static") || stmt_has("thread_local");
    if (scope == Scope::kFunction && !is_static) return;
    if (scope == Scope::kClass && !is_static) return;  // plain members: per-instance
    if (stmt_has("const") || stmt_has("constexpr") || stmt_has("consteval"))
      return;
    static const std::set<std::string_view> kNotAVar = {
        "using",  "typedef",  "friend", "operator", "template", "concept",
        "return", "namespace", "class",  "struct",   "union",    "enum",
        "goto",   "break",     "continue", "if", "for", "while", "switch",
        "case",   "default",   "do", "throw", "delete", "new", "extern"};
    for (const std::size_t si : stmt) {
      if (t[si].kind == TokKind::kIdent && kNotAVar.count(t[si].text) > 0)
        return;
    }
    // A '(' before any '=' means a function declaration/definition or a
    // macro invocation, not a variable.
    std::size_t eq = stmt.size();
    for (std::size_t k = 0; k < stmt.size(); ++k) {
      const std::string_view s = t[stmt[k]].text;
      if (s == "=") { eq = k; break; }
      if (s == "(") return;
    }
    // Declarator name: last identifier before '=' (or before a '[' array
    // extent, or the last identifier overall).
    std::size_t name_idx = stmt.size();
    for (std::size_t k = 0; k < eq; ++k) {
      const std::string_view s = t[stmt[k]].text;
      if (s == "[") break;
      if (t[stmt[k]].kind == TokKind::kIdent) name_idx = k;
    }
    if (name_idx >= stmt.size() || name_idx == 0) return;  // need type + name
    const Token& name = t[stmt[name_idx]];
    out.push_back({name.line, std::string(name.text),
                   scope == Scope::kFunction});
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t[i];
    if (tok.kind == TokKind::kPunct) {
      if (tok.text == "(") ++paren_depth;
      else if (tok.text == ")") paren_depth = std::max(0, paren_depth - 1);
      if (paren_depth == 0) {
        if (tok.text == "{") {
          Scope kind;
          const std::string_view prev =
              stmt.empty() ? std::string_view() : t[stmt.back()].text;
          if (stmt_has("namespace")) kind = Scope::kNamespace;
          else if (stmt_has("class") || stmt_has("struct") ||
                   stmt_has("union") || stmt_has("enum")) {
            kind = Scope::kClass;
          } else if (current() == Scope::kFunction) kind = Scope::kFunction;
          else if (prev == ")") kind = Scope::kFunction;
          else if (prev == "=" || stmt_has("=") ||
                   (!stmt.empty() && t[stmt.back()].kind == TokKind::kIdent)) {
            kind = Scope::kInit;  // brace init: `Type x{...}` / `= {...}`
          } else {
            kind = Scope::kFunction;  // bare block; be conservative
          }
          scopes.push_back(kind);
          if (kind != Scope::kInit) stmt.clear();
          continue;
        }
        if (tok.text == "}") {
          const bool was_init = current() == Scope::kInit;
          if (!scopes.empty()) scopes.pop_back();
          if (!was_init) stmt.clear();
          continue;
        }
        if (tok.text == ";") {
          evaluate();
          stmt.clear();
          continue;
        }
      }
    }
    stmt.push_back(i);
  }
}

/// time-unit hazards: (a) arithmetic/comparison between identifiers with
/// different *_ns/*_us/*_ms/*_s suffixes (an explicit conversion call
/// breaks the ident-op-ident adjacency and therefore never fires); (b)
/// float/double variables that carry nanoseconds — a declaration whose
/// name is _ns-suffixed, or `+=` accumulation of an _ns identifier into a
/// float/double variable (skipped in stats/, where summary statistics
/// legitimately live in doubles).
void extract_time_hazards(const FileInfo& f, std::string_view path,
                          std::string_view layer,
                          std::vector<Diagnostic>& out) {
  const auto& t = f.tokens;
  static const std::set<std::string_view> kMixOps = {
      "+", "-", "*", "/", "<", ">", "<=", ">=", "==", "!=", "+=", "-="};
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kPunct || kMixOps.count(t[i].text) == 0) continue;
    if (t[i - 1].kind != TokKind::kIdent || t[i + 1].kind != TokKind::kIdent)
      continue;
    const std::string_view a = unit_suffix(t[i - 1].text);
    const std::string_view b = unit_suffix(t[i + 1].text);
    if (a.empty() || b.empty() || a == b) continue;
    // A unit-suffixed *call* on the right (`x_ms < t.count_ms()`) is the
    // conversion idiom, not a mix — but only if the units agree; reaching
    // here the units differ, so flag regardless of a following '('.
    out.push_back(
        {std::string(path), t[i].line, "time-unit",
         "'" + std::string(t[i - 1].text) + "' (" + std::string(a) + ") " +
             std::string(t[i].text) + " '" + std::string(t[i + 1].text) +
             "' (" + std::string(b) +
             "): mixed time units without an explicit conversion call"});
  }

  if (layer == "stats") return;
  // Float/double variable declarations in this file (same heuristic as
  // float-equality) + _ns-suffixed declarations.
  std::set<std::string_view> float_vars;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent ||
        (t[i].text != "double" && t[i].text != "float") ||
        t[i + 1].kind != TokKind::kIdent) {
      continue;
    }
    const std::string_view after = t[i + 2].text;
    if (after == "=" || after == ";" || after == "," || after == ")" ||
        after == "{" || after == "+=") {
      float_vars.insert(t[i + 1].text);
      if (unit_suffix(t[i + 1].text) == "ns") {
        out.push_back({std::string(path), t[i].line, "time-unit",
                       "'" + std::string(t[i + 1].text) +
                           "' stores nanoseconds in " + std::string(t[i].text) +
                           "; use std::int64_t (precision degrades past 2^53)"});
      }
    }
  }
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kPunct || t[i].text != "+=") continue;
    if (t[i - 1].kind != TokKind::kIdent ||
        float_vars.count(t[i - 1].text) == 0) {
      continue;
    }
    for (std::size_t j = i + 1; j < t.size(); ++j) {
      const std::string_view s = t[j].text;
      if (s == ";") break;
      if (t[j].kind == TokKind::kIdent && unit_suffix(s) == "ns") {
        out.push_back({std::string(path), t[i].line, "time-unit",
                       "float/double '" + std::string(t[i - 1].text) +
                           "' accumulates nanosecond value '" + std::string(s) +
                           "'; accumulate in std::int64_t and convert at the "
                           "edge"});
        break;
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

std::string to_string(const Diagnostic& d) {
  std::ostringstream os;
  os << d.path << ':' << d.line << ": " << d.rule << ": " << d.message;
  return os.str();
}

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = {
      "banned-api",     "determinism-hazard",   "float-equality",
      "include-layering",  // single-file rules
      "rng-substream",  "shared-mutable-state", "time-unit",
      "include-graph",  "bad-suppression"};  // project-mode rules
  return kNames;
}

bool layer_edge_allowed(std::string_view from_layer, std::string_view to_layer) {
  if (from_layer == to_layer) return true;
  if (from_layer == "tools" || from_layer == "tests" || from_layer == "bench" ||
      from_layer == "examples") {
    return to_layer != "tools" && to_layer != "tests" && to_layer != "bench" &&
           to_layer != "examples";
  }
  const auto it = allowed_edges().find(from_layer);
  if (it == allowed_edges().end()) return true;
  return it->second.count(to_layer) > 0;
}

std::vector<Diagnostic> analyze_source(std::string_view rel_path,
                                       std::string_view text) {
  const FileClass fc = classify(rel_path);
  const FileInfo info = lex(text);

  std::vector<Diagnostic> diags;
  if (fc.in_src) {
    rule_banned_api(info, rel_path, diags);
    if (fc.layer != "obs") rule_determinism_hazard(info, rel_path, diags);
    rule_float_equality(info, rel_path, diags);
  }
  rule_include_layering(info, fc, rel_path, diags);

  // Apply suppressions, then order for stable output.
  std::erase_if(diags, [&](const Diagnostic& d) {
    const auto it = info.suppressions.find(d.line);
    if (it == info.suppressions.end()) return false;
    return it->second.count(d.rule) > 0 || it->second.count("*") > 0;
  });
  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.line, a.rule, a.message) <
                     std::tie(b.line, b.rule, b.message);
            });
  return diags;
}

std::vector<Diagnostic> analyze_file(const std::string& abs_path,
                                     std::string_view rel_path) {
  std::ifstream in(abs_path, std::ios::binary);
  if (!in) {
    return {{std::string(rel_path), 0, "io-error", "cannot open file"}};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  return analyze_source(rel_path, text);
}

FileFacts extract_facts(std::string_view rel_path, std::string_view text) {
  const FileClass fc = classify(rel_path);
  const FileInfo info = lex(text);

  FileFacts facts;
  facts.path = std::string(rel_path);
  facts.layer = fc.layer;
  facts.in_src = fc.in_src;
  {
    const std::size_t dot = facts.path.find_last_of('.');
    const std::string ext = dot == std::string::npos ? "" : facts.path.substr(dot);
    facts.is_header = ext == ".hpp" || ext == ".h";
  }
  facts.first_code_line = info.first_code_line;
  facts.suppressions = info.suppressions;

  for (const Include& inc : info.includes) {
    facts.includes.push_back({inc.line, inc.path, inc.quoted});
  }
  extract_rng_uses(info, facts.rng_uses);
  if (path_basename(rel_path) == "substreams.hpp") {
    extract_stream_defs(info, facts.stream_defs);
  }
  extract_globals(info, facts.globals);
  extract_time_hazards(info, rel_path, fc.layer, facts.hazards);
  for (const int line : info.bad_allow_lines) {
    facts.hazards.push_back(
        {facts.path, line, "bad-suppression",
         "zlint-allow(...) without a reason clause; write "
         "`zlint-allow(rule): <why this is safe>`"});
  }
  return facts;
}

}  // namespace zlint
