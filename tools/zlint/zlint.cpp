#include "zlint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace zlint {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer. Just enough C++ lexing to walk identifiers, literals and
// punctuation with line numbers; comments and strings are consumed (never
// tokenised) so rule matching cannot fire inside them.
// ---------------------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kPunct };

struct Token {
  TokKind kind;
  std::string_view text;
  int line;
};

struct Include {
  std::string path;  ///< include target, quotes/brackets stripped
  bool quoted;       ///< "..." (project include) vs <...> (system)
  int line;
};

struct FileInfo {
  std::vector<Token> tokens;
  std::vector<Include> includes;
  /// line -> rules silenced on that line ("*" silences everything).
  std::map<int, std::set<std::string>> suppressions;
};

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Extract every rule named in `zlint-allow(rule[,rule...])` clauses.
std::vector<std::string> parse_allow_rules(std::string_view comment) {
  std::vector<std::string> out;
  static constexpr std::string_view kTag = "zlint-allow(";
  std::size_t pos = 0;
  while ((pos = comment.find(kTag, pos)) != std::string_view::npos) {
    pos += kTag.size();
    const std::size_t close = comment.find(')', pos);
    if (close == std::string_view::npos) return out;
    std::string_view rules = comment.substr(pos, close - pos);
    while (!rules.empty()) {
      const std::size_t comma = rules.find(',');
      std::string_view one = rules.substr(0, comma);
      while (!one.empty() && one.front() == ' ') one.remove_prefix(1);
      while (!one.empty() && one.back() == ' ') one.remove_suffix(1);
      if (!one.empty()) out.emplace_back(one);
      if (comma == std::string_view::npos) break;
      rules.remove_prefix(comma + 1);
    }
    pos = close;
  }
  return out;
}

FileInfo lex(std::string_view text) {
  FileInfo out;
  const std::size_t n = text.size();
  std::size_t i = 0;
  int line = 1;
  int last_code_line = 0;  // last line that produced a token

  // Suppressions from own-line comments wait here until the next line of
  // code (or include) appears, however many comment lines intervene.
  std::vector<std::string> pending;
  const auto flush_pending = [&](int code_line) {
    for (auto& r : pending) out.suppressions[code_line].insert(std::move(r));
    pending.clear();
  };

  const auto peek = [&](std::size_t off) -> char {
    return i + off < n ? text[i + off] : '\0';
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && peek(1) == '/') {
      const std::size_t start = i;
      const bool own_line = last_code_line != line;
      while (i < n && text[i] != '\n') ++i;
      auto rules = parse_allow_rules(text.substr(start, i - start));
      for (auto& r : rules) {
        if (own_line) pending.push_back(std::move(r));
        else out.suppressions[line].insert(std::move(r));
      }
      continue;
    }
    // Block comment.
    if (c == '/' && peek(1) == '*') {
      const std::size_t start = i;
      const int start_line = line;
      const bool own_line = last_code_line != line;
      i += 2;
      while (i < n && !(text[i] == '*' && peek(1) == '/')) {
        if (text[i] == '\n') ++line;
        ++i;
      }
      if (i < n) i += 2;
      auto rules = parse_allow_rules(text.substr(start, i - start));
      for (auto& r : rules) {
        if (own_line) pending.push_back(std::move(r));
        else out.suppressions[start_line].insert(std::move(r));
      }
      continue;
    }
    // Preprocessor: only #include needs structure; everything else is
    // lexed normally so banned tokens inside macro bodies still match.
    if (c == '#') {
      std::size_t j = i + 1;
      while (j < n && (text[j] == ' ' || text[j] == '\t')) ++j;
      if (text.compare(j, 7, "include") == 0) {
        j += 7;
        while (j < n && (text[j] == ' ' || text[j] == '\t')) ++j;
        if (j < n && (text[j] == '"' || text[j] == '<')) {
          const char closer = text[j] == '"' ? '"' : '>';
          const std::size_t tstart = j + 1;
          std::size_t tend = tstart;
          while (tend < n && text[tend] != closer && text[tend] != '\n') ++tend;
          flush_pending(line);
          out.includes.push_back(
              {std::string(text.substr(tstart, tend - tstart)),
               closer == '"', line});
          i = tend < n && text[tend] == closer ? tend + 1 : tend;
          continue;
        }
      }
      ++i;
      continue;
    }
    // String literal (incl. prefixed and raw strings).
    if (c == '"' || ((c == 'L' || c == 'u' || c == 'U' || c == 'R') &&
                     (peek(1) == '"' ||
                      (peek(1) == '8' && peek(2) == '"') ||
                      (peek(1) == 'R' && peek(2) == '"')))) {
      // Advance to the opening quote, noting whether this is a raw string.
      bool raw = false;
      while (i < n && text[i] != '"') {
        if (text[i] == 'R') raw = true;
        ++i;
      }
      if (i >= n) break;
      ++i;  // past the opening quote
      if (raw) {
        // R"delim( ... )delim"
        std::size_t dend = i;
        while (dend < n && text[dend] != '(') ++dend;
        const std::string closer =
            ")" + std::string(text.substr(i, dend - i)) + "\"";
        const std::size_t endpos = text.find(closer, dend);
        for (std::size_t k = dend; k < std::min(endpos, n); ++k)
          if (text[k] == '\n') ++line;
        i = endpos == std::string_view::npos ? n : endpos + closer.size();
      } else {
        while (i < n && text[i] != '"') {
          if (text[i] == '\\') ++i;
          else if (text[i] == '\n') ++line;  // unterminated; stay sane
          ++i;
        }
        if (i < n) ++i;
      }
      last_code_line = line;
      continue;
    }
    // Char literal.
    if (c == '\'') {
      ++i;
      while (i < n && text[i] != '\'') {
        if (text[i] == '\\') ++i;
        ++i;
      }
      if (i < n) ++i;
      last_code_line = line;
      continue;
    }
    // Number (also consumes digit separators and suffixes).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      const std::size_t start = i;
      while (i < n) {
        const char d = text[i];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '.' || d == '\'') {
          ++i;
        } else if ((d == '+' || d == '-') && i > start &&
                   (text[i - 1] == 'e' || text[i - 1] == 'E' ||
                    text[i - 1] == 'p' || text[i - 1] == 'P')) {
          ++i;  // exponent sign
        } else {
          break;
        }
      }
      flush_pending(line);
      out.tokens.push_back({TokKind::kNumber, text.substr(start, i - start), line});
      last_code_line = line;
      continue;
    }
    // Identifier.
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(text[i])) ++i;
      flush_pending(line);
      out.tokens.push_back({TokKind::kIdent, text.substr(start, i - start), line});
      last_code_line = line;
      continue;
    }
    // Punctuation: split off the multi-char operators the rules care
    // about; everything else is a single character.
    {
      static constexpr std::string_view kTwo[] = {"::", "==", "!=", "->",
                                                  "<=", ">=", "&&", "||",
                                                  "<<", ">>", "++", "--"};
      std::size_t len = 1;
      for (const auto op : kTwo) {
        if (text.compare(i, op.size(), op) == 0) {
          len = op.size();
          break;
        }
      }
      flush_pending(line);
      out.tokens.push_back({TokKind::kPunct, text.substr(i, len), line});
      last_code_line = line;
      i += len;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Layer classification and the layer DAG.
// ---------------------------------------------------------------------------

/// Top-level dirs under src/, bottom layer first. obs sits just above sim:
/// conceptually cross-cutting, but in the include graph it is a base
/// facility (metric/trace macros) pulled into hot paths everywhere.
constexpr std::string_view kSrcLayers[] = {
    "sim", "obs", "stats", "net", "trace", "queue", "rtc", "wireless",
    "baseline", "cca", "transport", "core", "fault", "app"};

bool is_src_layer(std::string_view layer) {
  return std::find(std::begin(kSrcLayers), std::end(kSrcLayers), layer) !=
         std::end(kSrcLayers);
}

/// from-layer -> set of layers it may include (own layer always allowed).
const std::map<std::string_view, std::set<std::string_view>>& allowed_edges() {
  static const std::map<std::string_view, std::set<std::string_view>> kAllowed = {
      {"sim", {}},
      {"obs", {"sim"}},
      {"stats", {"sim"}},
      {"net", {"sim", "obs"}},
      {"trace", {"sim"}},
      {"queue", {"sim", "net", "obs"}},
      {"rtc", {"sim", "stats", "obs"}},
      {"wireless", {"sim", "net", "queue", "trace", "obs"}},
      {"baseline", {"sim", "net", "stats"}},
      {"cca", {"sim", "net", "stats"}},
      {"transport", {"sim", "net", "stats", "rtc", "cca", "obs"}},
      {"core", {"sim", "net", "stats", "queue", "obs"}},
      {"fault", {"sim", "net", "obs"}},
      {"app",
       {"sim", "obs", "stats", "net", "trace", "queue", "rtc", "wireless",
        "baseline", "cca", "transport", "core", "fault"}},
  };
  return kAllowed;
}

struct FileClass {
  std::string layer;  ///< "sim".."app", or "tools"/"tests"/"bench"/"examples"
  bool in_src = false;
};

FileClass classify(std::string_view rel_path) {
  std::string norm(rel_path);
  std::replace(norm.begin(), norm.end(), '\\', '/');
  while (norm.rfind("./", 0) == 0) norm.erase(0, 2);
  FileClass fc;
  const std::size_t slash = norm.find('/');
  if (slash == std::string::npos) return fc;
  const std::string first = norm.substr(0, slash);
  if (first == "src") {
    const std::size_t slash2 = norm.find('/', slash + 1);
    if (slash2 != std::string::npos) {
      fc.layer = norm.substr(slash + 1, slash2 - slash - 1);
      fc.in_src = true;
    }
  } else if (first == "tools" || first == "tests" || first == "bench" ||
             first == "examples") {
    fc.layer = first;
  }
  return fc;
}

// ---------------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------------

void emit(std::vector<Diagnostic>& diags, std::string_view path, int line,
          std::string_view rule, std::string message) {
  diags.push_back({std::string(path), line, std::string(rule), std::move(message)});
}

bool is_member_access(const Token& t) {
  return t.kind == TokKind::kPunct && (t.text == "." || t.text == "->");
}

/// Does `t[i]` look like a *call of the global/std function* rather than a
/// member call (`obj.time()`), an out-of-line member or declaration
/// (`int time() const`, `Clock::time()`), or another namespace's symbol?
bool banned_call_context(const std::vector<Token>& t, std::size_t i) {
  if (i == 0) return true;
  const Token& prev = t[i - 1];
  if (is_member_access(prev)) return false;
  if (prev.text == "::") return i >= 2 && t[i - 2].text == "std";
  if (prev.kind == TokKind::kIdent) {
    // A preceding identifier is usually a type (declaration) — except for
    // statement keywords, after which this really is a call.
    static const std::set<std::string_view> kStmtKeywords = {
        "return", "co_return", "co_yield", "case", "else", "do", "throw"};
    return kStmtKeywords.count(prev.text) > 0;
  }
  return true;
}

/// banned-api: nondeterminism sources under src/. sim::Rng and the
/// simulated clock are the only legitimate entropy/time sources there.
void rule_banned_api(const FileInfo& f, std::string_view path,
                     std::vector<Diagnostic>& diags) {
  static const std::set<std::string_view> kAlways = {
      "srand",        "random_device",         "system_clock",
      "steady_clock", "high_resolution_clock", "getenv"};
  const auto& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const std::string_view id = t[i].text;
    if (kAlways.count(id) > 0) {
      emit(diags, path, t[i].line, "banned-api",
           "'" + std::string(id) +
               "' is a wall-clock/entropy/environment source; use sim::Rng "
               "and the Simulator clock (or zlint-allow(banned-api) with a "
               "reason)");
      continue;
    }
    if ((id == "rand" || id == "time") && i + 1 < t.size() &&
        t[i + 1].text == "(" && banned_call_context(t, i)) {
      emit(diags, path, t[i].line, "banned-api",
           "call to '" + std::string(id) +
               "()' is nondeterministic; use sim::Rng / the Simulator clock");
    }
  }
}

/// Skip a balanced template argument list starting at `i` (which must
/// point at '<'); returns the index one past the matching '>'. Treats
/// ">>" as two closers (template context).
std::size_t skip_template_args(const std::vector<Token>& t, std::size_t i) {
  int depth = 0;
  for (; i < t.size(); ++i) {
    const std::string_view s = t[i].text;
    if (s == "<") ++depth;
    else if (s == "<<") depth += 2;
    else if (s == ">") --depth;
    else if (s == ">>") depth -= 2;
    else if (s == ";" || s == "{") break;  // malformed; bail out
    if (depth <= 0 && s.front() == '>') return i + 1;
  }
  return i;
}

/// determinism-hazard: iteration over unordered containers in
/// result-affecting layers. Heuristic: track identifiers declared in this
/// file with an unordered_{map,set} type, then flag range-for statements
/// whose range expression mentions one (or the type itself), and direct
/// .begin()/.cbegin()/... iterator walks.
void rule_determinism_hazard(const FileInfo& f, std::string_view path,
                             std::vector<Diagnostic>& diags) {
  const auto& t = f.tokens;
  std::set<std::string_view> unordered_vars;

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent ||
        (t[i].text != "unordered_map" && t[i].text != "unordered_set")) {
      continue;
    }
    std::size_t j = i + 1;
    if (j < t.size() && t[j].text == "<") j = skip_template_args(t, j);
    // Optional cv/ref/pointer decorations, then the declarator name.
    while (j < t.size() &&
           (t[j].text == "&" || t[j].text == "*" || t[j].text == "const")) {
      ++j;
    }
    if (j < t.size() && t[j].kind == TokKind::kIdent) {
      unordered_vars.insert(t[j].text);
    }
  }

  const auto is_unordered_expr_token = [&](const Token& tok) {
    return tok.kind == TokKind::kIdent &&
           (tok.text == "unordered_map" || tok.text == "unordered_set" ||
            unordered_vars.count(tok.text) > 0);
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    // Range-for over an unordered container.
    if (t[i].kind == TokKind::kIdent && t[i].text == "for" &&
        i + 1 < t.size() && t[i + 1].text == "(") {
      int depth = 0;
      std::size_t colon = 0, close = 0;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        const std::string_view s = t[j].text;
        if (s == "(") ++depth;
        else if (s == ")") {
          if (--depth == 0) { close = j; break; }
        } else if (s == ":" && depth == 1 && colon == 0) {
          colon = j;
        }
      }
      if (colon != 0 && close != 0) {
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (is_unordered_expr_token(t[j])) {
            emit(diags, path, t[i].line, "determinism-hazard",
                 "range-for over unordered container '" +
                     std::string(t[j].text) +
                     "': iteration order is implementation-defined and can "
                     "leak into results; use std::map, a sorted snapshot, or "
                     "an insertion-order vector");
            break;
          }
        }
      }
      continue;
    }
    // Iterator walk: var.begin() / var->cbegin() / ...
    if (is_unordered_expr_token(t[i]) && i + 2 < t.size() &&
        is_member_access(t[i + 1]) && t[i + 2].kind == TokKind::kIdent) {
      static const std::set<std::string_view> kIterFns = {
          "begin", "cbegin", "rbegin", "crbegin"};
      if (kIterFns.count(t[i + 2].text) > 0 && i + 3 < t.size() &&
          t[i + 3].text == "(") {
        emit(diags, path, t[i].line, "determinism-hazard",
             "iterator walk over unordered container '" +
                 std::string(t[i].text) +
                 "': iteration order is implementation-defined");
      }
    }
  }
}

bool is_float_literal(std::string_view num) {
  if (num.size() > 1 && (num[1] == 'x' || num[1] == 'X')) {
    return num.find('.') != std::string_view::npos ||
           num.find('p') != std::string_view::npos ||
           num.find('P') != std::string_view::npos;
  }
  for (const char c : num) {
    if (c == '.' || c == 'e' || c == 'E') return true;
  }
  return num.back() == 'f' || num.back() == 'F';
}

/// float-equality: ==/!= where an adjacent operand is a floating literal
/// or an identifier declared double/float in this file. Exact FP equality
/// is both a correctness smell and a reproducibility hazard (results can
/// flip with FMA/rounding differences across builds).
void rule_float_equality(const FileInfo& f, std::string_view path,
                         std::vector<Diagnostic>& diags) {
  const auto& t = f.tokens;
  std::set<std::string_view> float_vars;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind == TokKind::kIdent &&
        (t[i].text == "double" || t[i].text == "float") &&
        t[i + 1].kind == TokKind::kIdent) {
      // `double x =`, `double x;`, `double x,`, `double x)` `double x{`:
      // a variable/param declaration, not a function declaration.
      const std::string_view after = t[i + 2].text;
      if (after == "=" || after == ";" || after == "," || after == ")" ||
          after == "{") {
        float_vars.insert(t[i + 1].text);
      }
    }
  }
  const auto floaty = [&](const Token& tok) {
    if (tok.kind == TokKind::kNumber) return is_float_literal(tok.text);
    return tok.kind == TokKind::kIdent && float_vars.count(tok.text) > 0;
  };
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kPunct || (t[i].text != "==" && t[i].text != "!="))
      continue;
    // A nullptr operand means the other side is a pointer, whatever its
    // name shadows — e.g. `double* d; d != nullptr`.
    if (t[i - 1].text == "nullptr" || t[i + 1].text == "nullptr") continue;
    if (floaty(t[i - 1]) || floaty(t[i + 1])) {
      emit(diags, path, t[i].line, "float-equality",
           "'" + std::string(t[i].text) +
               "' between floating-point expressions; compare with an "
               "explicit tolerance or restructure");
    }
  }
}

/// include-layering: every quoted #include whose first component is a
/// src/ layer must follow the layer DAG (see DESIGN.md §11).
void rule_include_layering(const FileInfo& f, const FileClass& fc,
                           std::string_view path,
                           std::vector<Diagnostic>& diags) {
  const bool top_level = fc.layer == "tools" || fc.layer == "tests" ||
                         fc.layer == "bench" || fc.layer == "examples";
  for (const Include& inc : f.includes) {
    if (!inc.quoted) continue;
    const std::size_t slash = inc.path.find('/');
    if (slash == std::string::npos) continue;  // local header, not a layer
    const std::string target = inc.path.substr(0, slash);
    if (target == "tools" || target == "tests" || target == "bench" ||
        target == "examples") {
      emit(diags, path, inc.line, "include-layering",
           "library and test code may not include from '" + target + "/'");
      continue;
    }
    if (!is_src_layer(target)) continue;
    if (top_level) continue;           // binaries may include any layer
    if (!fc.in_src) continue;          // unknown location: nothing to check
    if (target == fc.layer) continue;  // own layer always fine
    const auto it = allowed_edges().find(fc.layer);
    if (it == allowed_edges().end()) continue;  // unknown layer: permissive
    if (it->second.count(target) == 0) {
      std::string allowed;
      for (const auto a : it->second)
        allowed += (allowed.empty() ? "" : ", ") + std::string(a);
      emit(diags, path, inc.line, "include-layering",
           "layer '" + fc.layer + "' may not include \"" + inc.path +
               "\" (allowed layers: " + (allowed.empty() ? "none" : allowed) +
               ")");
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

std::string to_string(const Diagnostic& d) {
  std::ostringstream os;
  os << d.path << ':' << d.line << ": " << d.rule << ": " << d.message;
  return os.str();
}

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = {
      "banned-api", "determinism-hazard", "float-equality", "include-layering"};
  return kNames;
}

bool layer_edge_allowed(std::string_view from_layer, std::string_view to_layer) {
  if (from_layer == to_layer) return true;
  if (from_layer == "tools" || from_layer == "tests" || from_layer == "bench" ||
      from_layer == "examples") {
    return to_layer != "tools" && to_layer != "tests" && to_layer != "bench" &&
           to_layer != "examples";
  }
  const auto it = allowed_edges().find(from_layer);
  if (it == allowed_edges().end()) return true;
  return it->second.count(to_layer) > 0;
}

std::vector<Diagnostic> analyze_source(std::string_view rel_path,
                                       std::string_view text) {
  const FileClass fc = classify(rel_path);
  const FileInfo info = lex(text);

  std::vector<Diagnostic> diags;
  if (fc.in_src) {
    rule_banned_api(info, rel_path, diags);
    if (fc.layer != "obs") rule_determinism_hazard(info, rel_path, diags);
    rule_float_equality(info, rel_path, diags);
  }
  rule_include_layering(info, fc, rel_path, diags);

  // Apply suppressions, then order for stable output.
  std::erase_if(diags, [&](const Diagnostic& d) {
    const auto it = info.suppressions.find(d.line);
    if (it == info.suppressions.end()) return false;
    return it->second.count(d.rule) > 0 || it->second.count("*") > 0;
  });
  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.line, a.rule, a.message) <
                     std::tie(b.line, b.rule, b.message);
            });
  return diags;
}

std::vector<Diagnostic> analyze_file(const std::string& abs_path,
                                     std::string_view rel_path) {
  std::ifstream in(abs_path, std::ios::binary);
  if (!in) {
    return {{std::string(rel_path), 0, "io-error", "cannot open file"}};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  return analyze_source(rel_path, text);
}

}  // namespace zlint
