// zlint CLI. Usage:
//
//   zlint [--json] [--root DIR] [path...]
//
// Paths may be files or directories (recursed; .hpp/.h/.cpp/.cc only) and
// default to "src" under --root (default: current directory). Files are
// classified by their path relative to --root, so run it from the repo
// root or pass --root explicitly. Exits 1 iff any diagnostic is emitted.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "zlint.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  fs::path root = ".";
  std::vector<fs::path> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::puts("usage: zlint [--json] [--root DIR] [path...]   (default path: src)");
      std::fputs("rules:", stdout);
      for (const auto& r : zlint::rule_names()) std::printf(" %s", r.c_str());
      std::puts("\nsuppress with: // zlint-allow(rule): reason");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "zlint: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.empty()) inputs.push_back(root / "src");

  std::vector<fs::path> files;
  for (const auto& in : inputs) {
    std::error_code ec;
    if (fs::is_directory(in, ec)) {
      for (const auto& e : fs::recursive_directory_iterator(in, ec)) {
        if (e.is_regular_file() && lintable(e.path())) files.push_back(e.path());
      }
    } else if (fs::is_regular_file(in, ec)) {
      files.push_back(in);
    } else {
      std::fprintf(stderr, "zlint: no such file or directory: %s\n",
                   in.string().c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<zlint::Diagnostic> all;
  for (const auto& f : files) {
    std::error_code ec;
    fs::path rel = fs::relative(f, root, ec);
    if (ec || rel.empty()) rel = f;
    auto diags = zlint::analyze_file(f.string(), rel.generic_string());
    all.insert(all.end(), std::make_move_iterator(diags.begin()),
               std::make_move_iterator(diags.end()));
  }

  if (json) {
    std::printf("[");
    for (std::size_t i = 0; i < all.size(); ++i) {
      const auto& d = all[i];
      std::printf("%s\n  {\"path\": \"%s\", \"line\": %d, \"rule\": \"%s\", "
                  "\"message\": \"%s\"}",
                  i == 0 ? "" : ",", json_escape(d.path).c_str(), d.line,
                  json_escape(d.rule).c_str(), json_escape(d.message).c_str());
    }
    std::printf("%s]\n", all.empty() ? "" : "\n");
  } else {
    for (const auto& d : all) std::puts(zlint::to_string(d).c_str());
    if (!all.empty()) {
      std::fprintf(stderr, "zlint: %zu diagnostic%s in %zu file%s\n", all.size(),
                   all.size() == 1 ? "" : "s", files.size(),
                   files.size() == 1 ? "" : "s");
    }
  }
  return all.empty() ? 0 : 1;
}
