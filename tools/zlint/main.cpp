// zlint CLI. Usage:
//
//   zlint [--project] [--json|--sarif|--facts] [--warn] [--root DIR] [path...]
//
// Paths may be files or directories (recursed; .hpp/.h/.cpp/.cc only) and
// default to "src" under --root (default: current directory). Files are
// classified by their path relative to --root, so run it from the repo
// root or pass --root explicitly.
//
//   --project   two-phase analysis: per-file rules on every input plus the
//               cross-TU rules (rng-substream, shared-mutable-state,
//               time-unit, include-graph, bad-suppression) over the merged
//               fact base
//   --json      machine-readable diagnostics
//   --sarif     SARIF 2.1.0 for CI code-scanning annotations
//   --facts     dump the phase-1 fact base as JSON (implies --project)
//   --warn      print diagnostics but exit 0 (non-gating passes)
//
// Exits 1 iff any diagnostic is emitted (0 under --warn), 2 on usage error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "zlint.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_json(const std::vector<zlint::Diagnostic>& all) {
  std::printf("[");
  for (std::size_t i = 0; i < all.size(); ++i) {
    const auto& d = all[i];
    std::printf("%s\n  {\"path\": \"%s\", \"line\": %d, \"rule\": \"%s\", "
                "\"message\": \"%s\"}",
                i == 0 ? "" : ",", json_escape(d.path).c_str(), d.line,
                json_escape(d.rule).c_str(), json_escape(d.message).c_str());
  }
  std::printf("%s]\n", all.empty() ? "" : "\n");
}

/// Minimal SARIF 2.1.0: one run, one rule entry per rule family, one
/// result per diagnostic. Enough for GitHub code-scanning upload and for
/// artifact download + jq.
void print_sarif(const std::vector<zlint::Diagnostic>& all) {
  std::printf("{\n");
  std::printf("  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
              "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n");
  std::printf("  \"version\": \"2.1.0\",\n");
  std::printf("  \"runs\": [{\n");
  std::printf("    \"tool\": {\"driver\": {\"name\": \"zlint\", "
              "\"informationUri\": \"tools/zlint\", \"rules\": [");
  const auto& rules = zlint::rule_names();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    std::printf("%s\n      {\"id\": \"%s\"}", i == 0 ? "" : ",",
                rules[i].c_str());
  }
  std::printf("\n    ]}},\n");
  std::printf("    \"results\": [");
  for (std::size_t i = 0; i < all.size(); ++i) {
    const auto& d = all[i];
    std::printf(
        "%s\n      {\"ruleId\": \"%s\", \"level\": \"error\", "
        "\"message\": {\"text\": \"%s\"}, \"locations\": [{"
        "\"physicalLocation\": {\"artifactLocation\": {\"uri\": \"%s\"}, "
        "\"region\": {\"startLine\": %d}}}]}",
        i == 0 ? "" : ",", json_escape(d.rule).c_str(),
        json_escape(d.message).c_str(), json_escape(d.path).c_str(),
        d.line > 0 ? d.line : 1);
  }
  std::printf("%s]\n  }]\n}\n", all.empty() ? "" : "\n    ");
}

void print_facts(const std::vector<zlint::FileFacts>& facts) {
  std::printf("{\n  \"files\": %zu,\n", facts.size());
  std::printf("  \"rng_uses\": [");
  bool first = true;
  for (const auto& f : facts) {
    for (const auto& u : f.rng_uses) {
      std::printf("%s\n    {\"path\": \"%s\", \"line\": %d, \"arg\": \"%s\", "
                  "\"literal\": %s}",
                  first ? "" : ",", json_escape(f.path).c_str(), u.line,
                  json_escape(u.arg).c_str(), u.is_literal ? "true" : "false");
      first = false;
    }
  }
  std::printf("%s],\n", first ? "" : "\n  ");
  std::printf("  \"stream_defs\": [");
  first = true;
  for (const auto& f : facts) {
    for (const auto& d : f.stream_defs) {
      std::printf("%s\n    {\"path\": \"%s\", \"line\": %d, \"name\": \"%s\", "
                  "\"value\": %lld}",
                  first ? "" : ",", json_escape(f.path).c_str(), d.line,
                  json_escape(d.name).c_str(),
                  static_cast<long long>(d.value));
      first = false;
    }
  }
  std::printf("%s],\n", first ? "" : "\n  ");
  std::printf("  \"globals\": [");
  first = true;
  for (const auto& f : facts) {
    for (const auto& global : f.globals) {
      std::printf("%s\n    {\"path\": \"%s\", \"line\": %d, \"name\": \"%s\", "
                  "\"static_local\": %s}",
                  first ? "" : ",", json_escape(f.path).c_str(), global.line,
                  json_escape(global.name).c_str(),
                  global.static_local ? "true" : "false");
      first = false;
    }
  }
  std::printf("%s],\n", first ? "" : "\n  ");
  std::size_t includes = 0, hazards = 0;
  for (const auto& f : facts) {
    includes += f.includes.size();
    hazards += f.hazards.size();
  }
  std::printf("  \"include_edges\": %zu,\n  \"hazard_facts\": %zu\n}\n",
              includes, hazards);
}

}  // namespace

int main(int argc, char** argv) {
  enum class Output { kText, kJson, kSarif, kFacts };
  Output output = Output::kText;
  bool project = false;
  bool warn_only = false;
  fs::path root = ".";
  std::vector<fs::path> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      output = Output::kJson;
    } else if (arg == "--sarif") {
      output = Output::kSarif;
    } else if (arg == "--facts") {
      output = Output::kFacts;
      project = true;
    } else if (arg == "--project") {
      project = true;
    } else if (arg == "--warn") {
      warn_only = true;
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::puts(
          "usage: zlint [--project] [--json|--sarif|--facts] [--warn]\n"
          "             [--root DIR] [path...]        (default path: src)");
      std::fputs("rules:", stdout);
      for (const auto& r : zlint::rule_names()) std::printf(" %s", r.c_str());
      std::puts("\nsuppress with: // zlint-allow(rule): reason");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "zlint: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.empty()) inputs.push_back(root / "src");

  std::vector<fs::path> files;
  for (const auto& in : inputs) {
    std::error_code ec;
    if (fs::is_directory(in, ec)) {
      for (const auto& e : fs::recursive_directory_iterator(in, ec)) {
        if (e.is_regular_file() && lintable(e.path())) files.push_back(e.path());
      }
    } else if (fs::is_regular_file(in, ec)) {
      files.push_back(in);
    } else {
      std::fprintf(stderr, "zlint: no such file or directory: %s\n",
                   in.string().c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<zlint::Diagnostic> all;
  if (project) {
    std::vector<zlint::ProjectFile> pfiles;
    pfiles.reserve(files.size());
    for (const auto& f : files) {
      std::error_code ec;
      fs::path rel = fs::relative(f, root, ec);
      if (ec || rel.empty()) rel = f;
      std::ifstream in(f, std::ios::binary);
      if (!in) {
        all.push_back({rel.generic_string(), 0, "io-error", "cannot open file"});
        continue;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      pfiles.push_back({rel.generic_string(), ss.str()});
    }
    if (output == Output::kFacts) {
      std::vector<zlint::FileFacts> facts;
      facts.reserve(pfiles.size());
      for (const auto& pf : pfiles) {
        facts.push_back(zlint::extract_facts(pf.rel_path, pf.text));
      }
      print_facts(facts);
      return 0;
    }
    auto diags = zlint::analyze_project(pfiles);
    all.insert(all.end(), std::make_move_iterator(diags.begin()),
               std::make_move_iterator(diags.end()));
  } else {
    if (output == Output::kFacts) {
      std::fprintf(stderr, "zlint: --facts requires --project\n");
      return 2;
    }
    for (const auto& f : files) {
      std::error_code ec;
      fs::path rel = fs::relative(f, root, ec);
      if (ec || rel.empty()) rel = f;
      auto diags = zlint::analyze_file(f.string(), rel.generic_string());
      all.insert(all.end(), std::make_move_iterator(diags.begin()),
                 std::make_move_iterator(diags.end()));
    }
  }

  if (output == Output::kJson) {
    print_json(all);
  } else if (output == Output::kSarif) {
    print_sarif(all);
  } else {
    for (const auto& d : all) std::puts(zlint::to_string(d).c_str());
    if (!all.empty()) {
      std::fprintf(stderr, "zlint: %zu diagnostic%s in %zu file%s%s\n",
                   all.size(), all.size() == 1 ? "" : "s", files.size(),
                   files.size() == 1 ? "" : "s",
                   warn_only ? " (warn-only)" : "");
    }
  }
  return all.empty() || warn_only ? 0 : 1;
}
