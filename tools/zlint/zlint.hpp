#pragma once
// zlint — in-repo determinism & layering static analysis for src/.
//
// A deliberately small, dependency-free lint pass (lexer, not a compiler
// frontend): it tokenises C++ source, tracks suppression comments, and
// runs four rule families that guard the properties the parallel sweep's
// bit-identity contract depends on:
//
//   banned-api           wall clocks, std::rand/srand, random_device,
//                        time(), getenv under src/
//   determinism-hazard   iteration over std::unordered_map/unordered_set
//                        in result-affecting layers
//   float-equality       ==/!= between floating-point expressions
//   include-layering     #include edges must follow the layer DAG
//
// Diagnostics on a line are silenced by a suppression comment on the same
// line, or on the immediately preceding line if that line holds only the
// comment:
//
//   // zlint-allow(rule): reason
//   // zlint-allow(rule1,rule2): reason
//
// The reason clause is mandatory in spirit (reviewed, not machine-checked).

#include <string>
#include <string_view>
#include <vector>

namespace zlint {

struct Diagnostic {
  std::string path;  ///< as passed in (repo-relative for layer rules)
  int line = 0;      ///< 1-based
  std::string rule;
  std::string message;
};

/// `path:line: rule: message` — the canonical single-line form.
[[nodiscard]] std::string to_string(const Diagnostic& d);

/// All rule names, in the order rules run. Useful for CLI help/tests.
[[nodiscard]] const std::vector<std::string>& rule_names();

/// Lint one translation unit. `rel_path` must be repo-relative (e.g.
/// "src/queue/fifo.hpp") — the leading directory decides which layer the
/// file belongs to and therefore which rules apply and which #include
/// edges are legal. Suppressed diagnostics are dropped before returning.
[[nodiscard]] std::vector<Diagnostic> analyze_source(std::string_view rel_path,
                                                     std::string_view text);

/// Read `abs_path` from disk and lint it as `rel_path`. Returns an
/// io-error diagnostic if the file cannot be read.
[[nodiscard]] std::vector<Diagnostic> analyze_file(const std::string& abs_path,
                                                   std::string_view rel_path);

/// The layer DAG: true iff a file in `from_layer` may include a header
/// from `to_layer`. Layers are top-level dirs under src/ plus the
/// pseudo-layers "tools", "tests", "bench", "examples". Unknown layers are
/// permissive (nothing to enforce). Exposed for the layering tests.
[[nodiscard]] bool layer_edge_allowed(std::string_view from_layer,
                                      std::string_view to_layer);

}  // namespace zlint
