#pragma once
// zlint — in-repo determinism & layering static analysis for src/.
//
// A deliberately small, dependency-free lint pass (lexer, not a compiler
// frontend): it tokenises C++ source, tracks suppression comments, and
// runs rule families that guard the properties the parallel sweep's
// bit-identity contract depends on. It operates in two modes:
//
// Single-file mode (`analyze_source`/`analyze_file`) — the original
// per-TU rules:
//
//   banned-api           wall clocks, std::rand/srand, random_device,
//                        time(), getenv under src/
//   determinism-hazard   iteration over std::unordered_map/unordered_set
//                        in result-affecting layers
//   float-equality       ==/!= between floating-point expressions
//   include-layering     #include edges must follow the layer DAG
//
// Project mode (`analyze_project`, CLI `--project`) — two phases. Phase 1
// lexes every TU and extracts a fact base (RNG constructions, substream
// registry constants, global/static declarations, unit-suffixed time
// arithmetic, include edges). Phase 2 runs cross-TU rules over the merged
// facts, in addition to the per-file rules above:
//
//   rng-substream        every sim::Rng(seed, <expr>) must name a constant
//                        from src/sim/substreams.hpp; raw integer literals
//                        and duplicate stream IDs are errors
//   shared-mutable-state non-const namespace-scope / function-local-static
//                        variables (the PDES readiness gate)
//   time-unit            arithmetic mixing *_ns/*_us/*_ms/*_s-suffixed
//                        identifiers without an explicit conversion call;
//                        float/double accumulation of _ns values outside
//                        stats/
//   include-graph        project-wide: include cycles, headers unreachable
//                        from any TU, transitive layer violations the
//                        per-edge DAG check misses
//   bad-suppression      a zlint-allow(...) clause without a reason
//                        (": <why>") — reasons are machine-checked in
//                        project mode
//
// Diagnostics on a line are silenced by a suppression comment on the same
// line, or on the immediately preceding line if that line holds only the
// comment (an own-line comment covers the whole following statement,
// including its continuation lines):
//
//   // zlint-allow(rule): reason
//   // zlint-allow(rule1,rule2): reason

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace zlint {

struct Diagnostic {
  std::string path;  ///< as passed in (repo-relative for layer rules)
  int line = 0;      ///< 1-based
  std::string rule;
  std::string message;
};

/// `path:line: rule: message` — the canonical single-line form.
[[nodiscard]] std::string to_string(const Diagnostic& d);

/// All rule names, in the order rules run. Useful for CLI help/tests.
[[nodiscard]] const std::vector<std::string>& rule_names();

/// Lint one translation unit. `rel_path` must be repo-relative (e.g.
/// "src/queue/fifo.hpp") — the leading directory decides which layer the
/// file belongs to and therefore which rules apply and which #include
/// edges are legal. Suppressed diagnostics are dropped before returning.
[[nodiscard]] std::vector<Diagnostic> analyze_source(std::string_view rel_path,
                                                     std::string_view text);

/// Read `abs_path` from disk and lint it as `rel_path`. Returns an
/// io-error diagnostic if the file cannot be read.
[[nodiscard]] std::vector<Diagnostic> analyze_file(const std::string& abs_path,
                                                   std::string_view rel_path);

/// The layer DAG: true iff a file in `from_layer` may include a header
/// from `to_layer`. Layers are top-level dirs under src/ plus the
/// pseudo-layers "tools", "tests", "bench", "examples". Unknown layers are
/// permissive (nothing to enforce). Exposed for the layering tests.
[[nodiscard]] bool layer_edge_allowed(std::string_view from_layer,
                                      std::string_view to_layer);

// ---------------------------------------------------------------------------
// Project mode (phase 1: facts, phase 2: cross-TU rules).
// ---------------------------------------------------------------------------

/// One file handed to project analysis: repo-relative path + contents.
struct ProjectFile {
  std::string rel_path;
  std::string text;
};

/// A `sim::Rng(seed, <stream>)` construction site.
struct RngUse {
  int line = 0;
  std::string arg;          ///< second-argument spelling (last identifier,
                            ///< or the literal text)
  bool is_literal = false;  ///< second argument is a bare integer literal
  std::int64_t value = 0;   ///< literal value when is_literal
};

/// A named substream constant parsed from a substreams.hpp registry file.
struct StreamDef {
  int line = 0;
  std::string name;
  std::int64_t value = 0;
};

/// A mutable namespace-scope variable or a non-const function-local static.
struct GlobalDecl {
  int line = 0;
  std::string name;
  bool static_local = false;
};

/// One #include directive.
struct IncludeFact {
  int line = 0;
  std::string target;  ///< include target, quotes/brackets stripped
  bool quoted = false;
};

/// Everything phase 1 extracts from one file.
struct FileFacts {
  std::string path;          ///< repo-relative, as passed in
  std::string layer;         ///< "sim".."app", or tools/tests/bench/examples
  bool in_src = false;
  bool is_header = false;    ///< .hpp/.h by extension
  int first_code_line = 0;   ///< first line holding a token or include
  std::vector<IncludeFact> includes;
  std::vector<RngUse> rng_uses;
  std::vector<StreamDef> stream_defs;
  std::vector<GlobalDecl> globals;
  /// Per-file phase-1 findings reported through phase 2 (time-unit,
  /// bad-suppression). Suppressions are NOT yet applied.
  std::vector<Diagnostic> hazards;
  /// line -> rules silenced on that line ("*" silences everything).
  std::map<int, std::set<std::string>> suppressions;
};

/// Phase 1: lex one file and extract its fact record.
[[nodiscard]] FileFacts extract_facts(std::string_view rel_path,
                                      std::string_view text);

/// Phase 1 + 2 over a whole project: per-file rules on every file, then
/// cross-TU rules over the merged fact base. Suppressions apply to both.
/// Diagnostics are sorted by (path, line, rule, message).
[[nodiscard]] std::vector<Diagnostic> analyze_project(
    const std::vector<ProjectFile>& files);

/// Phase 2 only, exposed for tests and the --facts pipeline.
[[nodiscard]] std::vector<Diagnostic> run_project_rules(
    const std::vector<FileFacts>& facts);

}  // namespace zlint
