// zlint phase 2: cross-TU rules over the merged fact base (see zlint.hpp).
//
// Phase 1 (extract_facts, zlint.cpp) reduces every file to a small fact
// record; everything here works on those records only — no re-lexing, no
// filesystem. That keeps the cross-TU rules trivially testable in-process
// (tests hand analyze_project a vector of {path, text} pairs) and keeps
// the whole project pass linear in total source size.

#include "zlint.hpp"

#include <algorithm>
#include <tuple>

namespace zlint {

namespace {

void emit(std::vector<Diagnostic>& diags, const std::string& path, int line,
          std::string_view rule, std::string message) {
  diags.push_back({path, line, std::string(rule), std::move(message)});
}

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

// -------------------------------------------------------------------------
// rng-substream: every sim::Rng(seed, <stream>) names a registry constant;
// raw literals and colliding stream IDs are errors.
// -------------------------------------------------------------------------

void rule_rng_substream(const std::vector<FileFacts>& facts,
                        std::vector<Diagnostic>& diags) {
  // Merge the registry. Later duplicate *names* shadow nothing — both stay,
  // and duplicate *values* are the collision the rule exists to prevent.
  std::vector<const StreamDef*> defs;
  std::vector<const FileFacts*> def_files;
  for (const FileFacts& f : facts) {
    for (const StreamDef& d : f.stream_defs) {
      defs.push_back(&d);
      def_files.push_back(&f);
    }
  }
  for (std::size_t i = 0; i < defs.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (defs[i]->value != defs[j]->value) continue;
      emit(diags, def_files[i]->path, defs[i]->line, "rng-substream",
           "substream collision: '" + defs[i]->name + "' and '" +
               defs[j]->name + "' are both " + std::to_string(defs[i]->value) +
               "; every RNG substream ID must be unique project-wide");
    }
  }

  const bool have_registry = !defs.empty();
  const auto is_registered = [&](const std::string& name) {
    for (const StreamDef* d : defs) {
      if (d->name == name) return true;
    }
    return false;
  };

  for (const FileFacts& f : facts) {
    if (!f.stream_defs.empty()) continue;  // the registry itself
    for (const RngUse& u : f.rng_uses) {
      if (u.is_literal) {
        emit(diags, f.path, u.line, "rng-substream",
             "raw integer literal " + u.arg +
                 " as an RNG substream; name it in src/sim/substreams.hpp "
                 "and use the constant (zlint enforces uniqueness there)");
      } else if (have_registry && !is_registered(u.arg)) {
        emit(diags, f.path, u.line, "rng-substream",
             "'" + u.arg +
                 "' is not a registered substream constant; add it to "
                 "src/sim/substreams.hpp");
      }
    }
  }
}

// -------------------------------------------------------------------------
// shared-mutable-state: mutable namespace-scope variables and non-const
// function-local statics — cross-run (and, under PDES sharding, cross-
// shard) state that breaks the "one (scenario, seed) -> one bit pattern"
// contract.
// -------------------------------------------------------------------------

void rule_shared_mutable_state(const std::vector<FileFacts>& facts,
                               std::vector<Diagnostic>& diags) {
  for (const FileFacts& f : facts) {
    for (const GlobalDecl& g : f.globals) {
      if (g.static_local) {
        emit(diags, f.path, g.line, "shared-mutable-state",
             "non-const static local '" + g.name +
                 "' is shared across all instances and threads; make it a "
                 "member, or suppress with a reviewed reason");
      } else {
        emit(diags, f.path, g.line, "shared-mutable-state",
             "mutable namespace-scope/static variable '" + g.name +
                 "' is process-global state; results must depend only on "
                 "(scenario, seed) — plumb it through a config/context, or "
                 "suppress with a reviewed reason");
      }
    }
  }
}

// -------------------------------------------------------------------------
// include-graph: cycles, orphan headers, transitive layer violations.
// -------------------------------------------------------------------------

struct Graph {
  // adj[i] = {target index, include line in source file}
  std::vector<std::vector<std::pair<int, int>>> adj;
  std::vector<int> order;  ///< node indices sorted by path (stable output)
};

int resolve_include(const std::vector<FileFacts>& facts,
                    const std::map<std::string, int>& index,
                    const FileFacts& from, const IncludeFact& inc) {
  (void)facts;
  const std::string candidates[] = {
      "src/" + inc.target,
      dirname_of(from.path).empty() ? inc.target
                                    : dirname_of(from.path) + "/" + inc.target,
      inc.target,
  };
  for (const std::string& c : candidates) {
    const auto it = index.find(c);
    if (it != index.end()) return it->second;
  }
  return -1;
}

Graph build_graph(const std::vector<FileFacts>& facts,
                  const std::map<std::string, int>& index) {
  Graph g;
  g.adj.resize(facts.size());
  for (std::size_t i = 0; i < facts.size(); ++i) {
    for (const IncludeFact& inc : facts[i].includes) {
      if (!inc.quoted) continue;
      const int to = resolve_include(facts, index, facts[i], inc);
      if (to >= 0 && to != static_cast<int>(i)) {
        g.adj[i].push_back({to, inc.line});
      }
    }
    g.order.push_back(static_cast<int>(i));
  }
  std::sort(g.order.begin(), g.order.end(), [&](int a, int b) {
    return facts[a].path < facts[b].path;
  });
  return g;
}

void find_cycles(const std::vector<FileFacts>& facts, const Graph& g,
                 std::vector<Diagnostic>& diags) {
  enum { kWhite, kGray, kBlack };
  std::vector<int> color(facts.size(), kWhite);
  std::vector<int> stack;  // current DFS path (node indices)
  std::set<std::string> seen_cycles;

  // Iterative DFS with an explicit edge cursor per frame.
  struct Frame {
    int node;
    std::size_t edge = 0;
  };
  for (const int root : g.order) {
    if (color[root] != kWhite) continue;
    std::vector<Frame> frames{{root}};
    color[root] = kGray;
    stack.push_back(root);
    while (!frames.empty()) {
      Frame& fr = frames.back();
      if (fr.edge < g.adj[fr.node].size()) {
        const auto [to, line] = g.adj[fr.node][fr.edge++];
        if (color[to] == kWhite) {
          color[to] = kGray;
          stack.push_back(to);
          frames.push_back({to});
        } else if (color[to] == kGray) {
          // Back-edge: the cycle is stack[pos(to)..end] + to.
          auto pos = std::find(stack.begin(), stack.end(), to);
          std::vector<int> cycle(pos, stack.end());
          // Canonical form for dedup: rotate to the smallest path.
          std::size_t min_at = 0;
          for (std::size_t k = 1; k < cycle.size(); ++k) {
            if (facts[cycle[k]].path < facts[cycle[min_at]].path) min_at = k;
          }
          std::rotate(cycle.begin(), cycle.begin() + min_at, cycle.end());
          std::string key, chain;
          for (const int n : cycle) {
            key += facts[n].path + "|";
            chain += facts[n].path + " -> ";
          }
          chain += facts[cycle.front()].path;
          if (seen_cycles.insert(key).second) {
            emit(diags, facts[fr.node].path, line, "include-graph",
                 "include cycle: " + chain);
          }
        }
      } else {
        color[fr.node] = kBlack;
        stack.pop_back();
        frames.pop_back();
      }
    }
  }
}

void find_orphans(const std::vector<FileFacts>& facts, const Graph& g,
                  std::vector<Diagnostic>& diags) {
  std::vector<char> reached(facts.size(), 0);
  std::vector<int> work;
  for (std::size_t i = 0; i < facts.size(); ++i) {
    if (!facts[i].is_header) {  // every TU is a reachability root
      reached[i] = 1;
      work.push_back(static_cast<int>(i));
    }
  }
  while (!work.empty()) {
    const int n = work.back();
    work.pop_back();
    for (const auto& [to, line] : g.adj[n]) {
      (void)line;
      if (!reached[to]) {
        reached[to] = 1;
        work.push_back(to);
      }
    }
  }
  for (const int i : g.order) {
    if (facts[i].is_header && !reached[i]) {
      emit(diags, facts[i].path,
           facts[i].first_code_line > 0 ? facts[i].first_code_line : 1,
           "include-graph",
           "header is unreachable from every translation unit in the "
           "scanned set; delete it, include it, or suppress with the "
           "consumer named in the reason");
    }
  }
}

void find_transitive_violations(const std::vector<FileFacts>& facts,
                                const Graph& g,
                                std::vector<Diagnostic>& diags) {
  for (const int f : g.order) {
    const FileFacts& from = facts[f];
    if (!from.in_src) continue;
    // Layers this file touches directly: the per-edge include-layering rule
    // already owns those; the transitive rule reports only what it misses.
    std::set<std::string> direct_layers;
    for (const auto& [to, line] : g.adj[f]) {
      (void)line;
      direct_layers.insert(facts[to].layer);
    }
    // BFS, remembering each node's parent to rebuild the chain.
    std::vector<int> parent(facts.size(), -2);
    std::vector<int> depth(facts.size(), 0);
    std::vector<int> queue;
    parent[f] = -1;
    queue.push_back(f);
    std::set<std::string> reported_layers;
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const int n = queue[qi];
      for (const auto& [to, line] : g.adj[n]) {
        (void)line;
        if (parent[to] != -2) continue;
        parent[to] = n;
        depth[to] = depth[n] + 1;
        queue.push_back(to);
        const FileFacts& target = facts[to];
        if (depth[to] < 2 || !target.in_src) continue;
        if (target.layer == from.layer) continue;
        if (layer_edge_allowed(from.layer, target.layer)) continue;
        if (direct_layers.count(target.layer) > 0) continue;
        if (!reported_layers.insert(target.layer).second) continue;
        std::string chain = from.path;
        std::vector<int> rev;
        for (int n2 = to; n2 != f; n2 = parent[n2]) rev.push_back(n2);
        for (auto it = rev.rbegin(); it != rev.rend(); ++it) {
          chain += " -> " + facts[*it].path;
        }
        // The first hop of the chain is the include to blame.
        const int first_hop = rev.back();
        int line_of_first_hop = 1;
        for (const auto& [t2, l2] : g.adj[f]) {
          if (t2 == first_hop) {
            line_of_first_hop = l2;
            break;
          }
        }
        emit(diags, from.path, line_of_first_hop, "include-graph",
             "layer '" + from.layer + "' transitively includes '" +
                 target.path + "' (layer '" + target.layer +
                 "', not allowed): " + chain);
      }
    }
  }
}

}  // namespace

std::vector<Diagnostic> run_project_rules(const std::vector<FileFacts>& facts) {
  std::vector<Diagnostic> diags;

  rule_rng_substream(facts, diags);
  rule_shared_mutable_state(facts, diags);
  for (const FileFacts& f : facts) {
    diags.insert(diags.end(), f.hazards.begin(), f.hazards.end());
  }

  std::map<std::string, int> index;
  for (std::size_t i = 0; i < facts.size(); ++i) {
    index[facts[i].path] = static_cast<int>(i);
  }
  const Graph g = build_graph(facts, index);
  find_cycles(facts, g, diags);
  find_orphans(facts, g, diags);
  find_transitive_violations(facts, g, diags);

  // Apply each file's suppressions to the project-level diagnostics.
  std::erase_if(diags, [&](const Diagnostic& d) {
    const auto fit = index.find(d.path);
    if (fit == index.end()) return false;
    const auto& supp = facts[fit->second].suppressions;
    const auto it = supp.find(d.line);
    if (it == supp.end()) return false;
    return it->second.count(d.rule) > 0 || it->second.count("*") > 0;
  });
  return diags;
}

std::vector<Diagnostic> analyze_project(const std::vector<ProjectFile>& files) {
  std::vector<Diagnostic> diags;
  std::vector<FileFacts> facts;
  facts.reserve(files.size());
  for (const ProjectFile& f : files) {
    auto per_file = analyze_source(f.rel_path, f.text);
    diags.insert(diags.end(), std::make_move_iterator(per_file.begin()),
                 std::make_move_iterator(per_file.end()));
    facts.push_back(extract_facts(f.rel_path, f.text));
  }
  auto project = run_project_rules(facts);
  diags.insert(diags.end(), std::make_move_iterator(project.begin()),
               std::make_move_iterator(project.end()));
  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.path, a.line, a.rule, a.message) <
                     std::tie(b.path, b.line, b.rule, b.message);
            });
  return diags;
}

}  // namespace zlint
