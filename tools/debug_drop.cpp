// Step-drop microbenchmark probe (Fig. 14/15 shape), reporting through the
// obs metrics registry: the run executes with metrics enabled and the
// summary row reads the recorded histograms/counters back instead of
// duplicating the bookkeeping here.
//
//   debug_drop [none|zhuge|fastack|abc] [tcp] [k] [metrics_out.json]
#include <cstdio>
#include <string>

#include "app/scenario.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "trace/synthetic.hpp"
using namespace zhuge;

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "none";   // none|zhuge|fastack|abc
  const bool tcp = argc > 2 && std::string(argv[2]) == "tcp";
  const double k = argc > 3 ? atof(argv[3]) : 10.0;
  obs::set_metrics_enabled(true);

  // 30 Mbps for 20 s (converge), drop to 30/k for 20 s.
  const auto drop_at = sim::Duration::seconds(20);
  const auto tr = trace::step_trace(30e6, 30e6 / k, drop_at, sim::Duration::seconds(40));
  app::ScenarioConfig cfg;
  cfg.protocol = tcp ? app::Protocol::kTcp : app::Protocol::kRtp;
  cfg.tcp_cca = mode == "abc" ? app::TcpCcaKind::kAbc : app::TcpCcaKind::kCopa;
  cfg.ap.mode = mode == "zhuge" ? app::ApMode::kZhuge
              : mode == "fastack" ? app::ApMode::kFastAck
              : mode == "abc" ? app::ApMode::kAbc : app::ApMode::kNone;
  cfg.channel_trace = &tr;
  cfg.duration = sim::Duration::seconds(40);
  cfg.seed = 3;
  auto r = app::run_scenario(cfg);

  const auto t0 = sim::TimePoint::zero() + drop_at;
  const auto t1 = sim::TimePoint::zero() + sim::Duration::seconds(40);
  const double rtt_dur = r.rtt_series_ms.time_above(200.0, t0, t1).to_seconds();
  const double fd_dur = r.frame_delay_series_ms.time_above(400.0, t0, t1).to_seconds();

  // Everything below comes out of the obs registry / series helpers.
  auto& reg = obs::metrics();
  const auto& rtt_hist = reg.histogram("app.rtt_ms");
  std::printf("%-8s %s k=%4.0f  rtt>200ms %6.2f s   fd>400ms %6.2f s  p99 %5.0f  goodput %.2f\n",
              mode.c_str(), tcp ? "tcp" : "rtp", k, rtt_dur, fd_dur,
              rtt_hist.quantile(0.99),
              reg.gauge("app.flow0.goodput_bps").value() / 1e6);
  std::printf("  post-drop avg: rtt %.0f ms (time-weighted), rate %.2f Mbps; "
              "queue drops %llu, pred |err| p95 %.1f ms\n",
              r.rtt_series_ms.time_weighted_mean(t0, t1),
              r.rate_series_bps.time_weighted_mean(t0, t1) / 1e6,
              (unsigned long long)reg.gauge("ap.qdisc_drops").value(),
              reg.histogram("fortune.abs_error_ms").quantile(0.95));

  if (argc > 4 && !obs::write_metrics_file(reg, argv[4])) {
    std::fprintf(stderr, "failed to write %s\n", argv[4]);
    return 1;
  }
  return 0;
}
