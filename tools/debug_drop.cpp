// Step-drop microbenchmark probe (Fig. 14/15 shape).
#include <cstdio>
#include <string>
#include "app/scenario.hpp"
#include "trace/synthetic.hpp"
using namespace zhuge;

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "none";   // none|zhuge|fastack|abc
  const bool tcp = argc > 2 && std::string(argv[2]) == "tcp";
  const double k = argc > 3 ? atof(argv[3]) : 10.0;
  // 30 Mbps for 20 s (converge), drop to 30/k for 20 s.
  const auto drop_at = sim::Duration::seconds(20);
  const auto tr = trace::step_trace(30e6, 30e6 / k, drop_at, sim::Duration::seconds(40));
  app::ScenarioConfig cfg;
  cfg.protocol = tcp ? app::Protocol::kTcp : app::Protocol::kRtp;
  cfg.tcp_cca = mode == "abc" ? app::TcpCcaKind::kAbc : app::TcpCcaKind::kCopa;
  cfg.ap.mode = mode == "zhuge" ? app::ApMode::kZhuge
              : mode == "fastack" ? app::ApMode::kFastAck
              : mode == "abc" ? app::ApMode::kAbc : app::ApMode::kNone;
  cfg.channel_trace = &tr;
  cfg.duration = sim::Duration::seconds(40);
  cfg.seed = 3;
  auto r = app::run_scenario(cfg);
  const auto t0 = sim::TimePoint::zero() + drop_at;
  const auto t1 = sim::TimePoint::zero() + sim::Duration::seconds(40);
  const double rtt_dur = r.rtt_series_ms.time_above(200.0, t0, t1).to_seconds();
  const double fd_dur = r.frame_delay_series_ms.time_above(400.0, t0, t1).to_seconds();
  std::printf("%-8s %s k=%4.0f  rtt>200ms %6.2f s   fd>400ms %6.2f s  p99 %5.0f  goodput %.2f\n",
              mode.c_str(), tcp ? "tcp" : "rtp", k, rtt_dur, fd_dur,
              r.primary().network_rtt_ms.quantile(0.99), r.primary().goodput_bps / 1e6);
  return 0;
}
