// eval_run — the paper evaluation matrix / baseline tournament.
//
//   eval_run --matrix [--spec FILE] [--cell NAME]... [--list]
//            [--threads N] [--verify-serial] [--report PATH]
//   eval_run --update-golden [DIR] | --check-golden [DIR] | --list-golden
//
// --matrix expands the evaluation matrix (mechanisms {vanilla, zhuge,
// fastack, abc} x CCAs {gcc, cubic, bbr} x trace classes W1/W2/C1-C3 x
// station densities) into multi-station scenarios on the indexed pool and
// prints the figure-oriented report; the chained cell-verdict fingerprint
// is bit-identical for any --threads value, which --verify-serial proves
// by re-running serially. The golden modes pin the headline cells (Zhuge
// p95 frame delay < vanilla p95 on W1 and C1) — "does this repo still
// match the paper" is `eval_run --check-golden`.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "app/eval.hpp"
#include "app/golden.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s --matrix [--spec FILE] [--cell NAME]... [--list]\n"
      "          [--threads N] [--verify-serial] [--report PATH]\n"
      "       %s --update-golden [DIR] | --check-golden [DIR] | --list-golden\n"
      "  --matrix          run the evaluation matrix (default axes unless\n"
      "                    --spec narrows them)\n"
      "  --spec FILE       EvalSpec JSON (see examples/specs/eval_*.json)\n"
      "  --cell NAME       run only cells whose name contains NAME\n"
      "                    (repeatable), e.g. W1/gcc or /zhuge/\n"
      "  --list            print the expanded cell names and exit\n"
      "  --threads N       worker threads (default 1)\n"
      "  --verify-serial   re-run serially, fail on fingerprint mismatch\n"
      "  --report PATH     write the report to PATH (.json/.csv by\n"
      "                    extension, text otherwise)\n"
      "  --update-golden   regenerate the headline golden anchors\n"
      "                    (default DIR tests/golden)\n"
      "  --check-golden    verify the anchors, exit 1 on drift or if the\n"
      "                    paper claim no longer holds\n"
      "  --list-golden     print the anchor names\n",
      argv0, argv0);
}

bool selected(const std::vector<std::string>& only, const std::string& name) {
  if (only.empty()) return true;
  for (const std::string& o : only) {
    if (name.find(o) != std::string::npos) return true;
  }
  return false;
}

int run_golden(const std::string& dir, bool update) {
  int rc = 0;
  for (const auto& name : zhuge::app::eval_golden_names()) {
    const std::string path = dir + "/" + name + ".json";
    const auto actual = zhuge::app::compute_eval_golden(name);
    if (!actual.has_value()) {
      std::fprintf(stderr, "golden: unknown eval anchor %s\n", name.c_str());
      return 2;
    }
    // The anchor is only worth pinning while the paper claim holds; a
    // fingerprint-faithful matrix where Zhuge lost would "pass" a pure
    // drift check, so the claim is judged on both paths.
    const auto wins = actual->headline.find("zhuge_wins");
    const bool claim_holds =
        wins != actual->headline.end() && wins->second == 1.0;
    if (update) {
      if (!zhuge::app::write_golden_file(path, *actual)) {
        std::fprintf(stderr, "golden: cannot write %s\n", path.c_str());
        return 2;
      }
      std::printf("golden: wrote %s (fp=%016llx)\n", path.c_str(),
                  static_cast<unsigned long long>(actual->fingerprint));
      if (!claim_holds) {
        std::printf("golden: %-20s CLAIM FAILED (zhuge p95 not < vanilla)\n",
                    name.c_str());
        rc = 1;
      }
      continue;
    }
    std::string err;
    const auto expected = zhuge::app::load_golden_file(path, &err);
    if (!expected.has_value()) {
      std::fprintf(stderr, "golden: %s\n", err.c_str());
      rc = 1;
      continue;
    }
    const auto diffs = zhuge::app::compare_golden(*expected, *actual);
    if (diffs.empty() && claim_holds) {
      std::printf("golden: %-20s OK (fp=%016llx, zhuge wins)\n", name.c_str(),
                  static_cast<unsigned long long>(actual->fingerprint));
    } else {
      std::printf("golden: %-20s %s\n", name.c_str(),
                  diffs.empty() ? "CLAIM FAILED" : "DRIFT");
      for (const auto& d : diffs) std::printf("  %s\n", d.c_str());
      rc = 1;
    }
  }
  if (!update && rc != 0) {
    std::printf(
        "eval golden drift detected. If intentional, refresh with:\n"
        "  eval_run --update-golden %s\n",
        dir.c_str());
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  bool matrix = false;
  std::string spec_path;
  std::vector<std::string> only;
  bool list = false;
  unsigned threads = 1;
  bool verify_serial = false;
  std::string report_path;
  std::string golden_dir = "tests/golden";
  bool golden_update = false;
  bool golden_check = false;
  bool golden_list = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto optional_dir = [&] {
      if (i + 1 < argc && argv[i + 1][0] != '-') golden_dir = argv[++i];
    };
    if (arg == "--matrix") {
      matrix = true;
    } else if (arg == "--spec" && i + 1 < argc) {
      spec_path = argv[++i];
      matrix = true;
    } else if (arg == "--cell" && i + 1 < argc) {
      only.emplace_back(argv[++i]);
      matrix = true;
    } else if (arg == "--list") {
      list = true;
      matrix = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--verify-serial") {
      verify_serial = true;
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg == "--update-golden") {
      golden_update = true;
      optional_dir();
    } else if (arg == "--check-golden") {
      golden_check = true;
      optional_dir();
    } else if (arg == "--list-golden") {
      golden_list = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  if (golden_list) {
    for (const auto& name : zhuge::app::eval_golden_names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (golden_update || golden_check) {
    const int rc = run_golden(golden_dir, golden_update);
    if (rc != 0 || !matrix) return rc;
  }
  if (!matrix) {
    usage(argv[0]);
    return 2;
  }

  zhuge::app::EvalSpec spec;
  if (!spec_path.empty()) {
    std::string err;
    const auto loaded = zhuge::app::load_eval_spec(spec_path, &err);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 2;
    }
    spec = *loaded;
  }

  auto cells = zhuge::app::expand_eval_matrix(spec);
  if (!only.empty()) {
    std::erase_if(cells, [&](const zhuge::app::EvalCellSpec& c) {
      return !selected(only, c.name);
    });
  }
  if (list) {
    for (const auto& c : cells) std::printf("%s\n", c.name.c_str());
    return 0;
  }
  if (cells.empty()) {
    std::fprintf(stderr, "no matching cell (try --list)\n");
    return 2;
  }

  const auto res = zhuge::app::run_eval_matrix(cells, threads);
  zhuge::app::write_eval_report_text(res, std::cout);

  if (!report_path.empty()) {
    std::ofstream out(report_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", report_path.c_str());
      return 2;
    }
    const auto ends_with = [&](const char* suffix) {
      const std::string s(suffix);
      return report_path.size() >= s.size() &&
             report_path.compare(report_path.size() - s.size(), s.size(), s) ==
                 0;
    };
    if (ends_with(".json")) {
      out << zhuge::app::eval_report_to_json(res).dump(2) << "\n";
    } else if (ends_with(".csv")) {
      zhuge::app::write_eval_report_csv(res, out);
    } else {
      zhuge::app::write_eval_report_text(res, out);
    }
  }

  int rc = 0;
  if (verify_serial && threads > 1) {
    const auto serial = zhuge::app::run_eval_matrix(cells, 1);
    const bool same = serial.fingerprint == res.fingerprint;
    std::fprintf(stderr, "verify-serial: %s (%016llx vs %016llx)\n",
                 same ? "bit-identical" : "MISMATCH",
                 static_cast<unsigned long long>(res.fingerprint),
                 static_cast<unsigned long long>(serial.fingerprint));
    if (!same) rc = 1;
  }
  std::size_t wins = 0;
  for (const auto& h : res.headline) wins += h.zhuge_wins ? 1 : 0;
  std::fprintf(stderr,
               "%zu cells, %zu/%zu headline wins (threads %u, "
               "fingerprint %016llx)\n",
               res.cells.size(), wins, res.headline.size(), threads,
               static_cast<unsigned long long>(res.fingerprint));
  return rc;
}
