// chaos_run — run the standard chaos suite and report recovery verdicts.
//
//   chaos_run [--seed N] [--case NAME]... [--list] [--no-invariants]
//             [--attrib] [-v]
//
// Runs every case from app::standard_chaos_suite (or only the named ones)
// with the runtime invariant checker enabled, prints one verdict line per
// case, and exits non-zero when any case fails — the same judgment the CI
// chaos job applies via tests/chaos_test.cpp, packaged for interactive
// use and for sweeping seeds.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <iostream>

#include "app/chaos.hpp"
#include "obs/attrib.hpp"
#include "obs/invariants.hpp"
#include "obs/spans.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--seed N] [--case NAME]... [--list] [--no-invariants]\n"
      "          [--attrib] [-v]\n"
      "  --seed N         RNG seed for every case (default 1)\n"
      "  --case NAME      run only this case (repeatable); default: all\n"
      "  --list           print the case names and exit\n"
      "  --no-invariants  leave the runtime invariant checker off\n"
      "  --attrib         record latency attribution across the ran cases\n"
      "                   and print the merged budget report at the end\n"
      "  -v               also print the invariant summary per failed case\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  std::vector<std::string> only;
  bool list = false;
  bool invariants_on = true;
  bool attrib = false;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--case" && i + 1 < argc) {
      only.emplace_back(argv[++i]);
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--no-invariants") {
      invariants_on = false;
    } else if (arg == "--attrib") {
      attrib = true;
    } else if (arg == "-v") {
      verbose = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  const auto suite = zhuge::app::standard_chaos_suite(seed);
  if (list) {
    for (const auto& c : suite) std::printf("%s\n", c.name.c_str());
    return 0;
  }

  zhuge::obs::set_invariants_enabled(invariants_on);
  zhuge::obs::set_attrib_enabled(attrib);
  zhuge::obs::Attribution merged;

  int ran = 0;
  int failed = 0;
  for (const auto& c : suite) {
    if (!only.empty() &&
        std::find(only.begin(), only.end(), c.name) == only.end()) {
      continue;
    }
    zhuge::obs::invariants().clear();
    const auto v =
        zhuge::app::run_chaos_case(c, attrib ? &merged : nullptr);
    ++ran;
    std::printf("%s\n", zhuge::app::format_verdict(v).c_str());
    if (!v.passed) {
      ++failed;
      if (verbose) {
        const std::string inv = zhuge::obs::invariants().summary();
        if (!inv.empty()) std::printf("  %s\n", inv.c_str());
      }
    }
  }

  if (ran == 0) {
    std::fprintf(stderr, "no matching case (try --list)\n");
    return 2;
  }
  if (attrib && !merged.empty()) {
    std::printf("\n");
    zhuge::obs::write_attrib_report_text(merged, std::cout);
  }
  std::printf("%d/%d cases passed (seed %llu)\n", ran - failed, ran,
              static_cast<unsigned long long>(seed));
  return failed == 0 ? 0 : 1;
}
