// chaos_run — run chaos suites and report recovery verdicts.
//
//   chaos_run [--matrix] [--seed N] [--case NAME]... [--list] [--json]
//             [--threads N] [--verify-serial] [--slo-report PATH]
//             [--no-invariants] [--attrib] [-v]
//
// Default mode runs the 7-case standard suite (app::standard_chaos_suite)
// serially with the runtime invariant checker enabled. --matrix switches
// to the 24-case recovery-SLO chaos matrix (feedback-path fault kinds x
// sender CCAs x channel profiles) on the parallel sweep pool; verdicts are
// bit-identical for any --threads value, and --verify-serial proves it by
// re-running serially and comparing matrix fingerprints. Exits non-zero
// when any selected case fails — the same judgment the CI chaos jobs
// apply via tests/chaos_test.cpp and tests/resilience_test.cpp, packaged
// for interactive use and for sweeping seeds.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "app/chaos.hpp"
#include "obs/attrib.hpp"
#include "obs/invariants.hpp"
#include "obs/slo.hpp"
#include "obs/spans.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--matrix] [--seed N] [--case NAME]... [--list] [--json]\n"
      "          [--threads N] [--verify-serial] [--slo-report PATH]\n"
      "          [--no-invariants] [--attrib] [-v]\n"
      "  --matrix         run the recovery-SLO chaos matrix instead of the\n"
      "                   standard suite\n"
      "  --seed N         RNG seed for every case (default 1)\n"
      "  --case NAME      run only cases whose name contains NAME\n"
      "                   (repeatable); default: all\n"
      "  --list           print the case names and exit\n"
      "  --json           one JSON verdict object per line instead of text\n"
      "  --threads N      matrix worker threads (default 1; matrix only)\n"
      "  --verify-serial  matrix only: re-run serially and require the\n"
      "                   bit-identical verdict fingerprint\n"
      "  --slo-report P   matrix only: write the recovery-SLO report to P\n"
      "                   (JSON when P ends in .json, text otherwise)\n"
      "  --no-invariants  leave the runtime invariant checker off\n"
      "                   (standard suite only; the matrix always runs\n"
      "                   with obs frozen)\n"
      "  --attrib         record latency attribution across the ran cases\n"
      "                   and print the merged budget report at the end\n"
      "                   (standard suite only)\n"
      "  -v               also print the invariant summary per failed case\n",
      argv0);
}

/// Substring case filter: `--case fb_loss` selects every CCA/profile cell
/// of that matrix row, `--case fb_loss/gcc/steady` exactly one.
bool selected(const std::vector<std::string>& only, const std::string& name) {
  if (only.empty()) return true;
  return std::any_of(only.begin(), only.end(), [&](const std::string& o) {
    return name.find(o) != std::string::npos;
  });
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  std::vector<std::string> only;
  bool matrix = false;
  bool list = false;
  bool json = false;
  unsigned threads = 1;
  bool verify_serial = false;
  std::string slo_report;
  bool invariants_on = true;
  bool attrib = false;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--matrix") {
      matrix = true;
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--case" && i + 1 < argc) {
      only.emplace_back(argv[++i]);
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--verify-serial") {
      verify_serial = true;
    } else if (arg == "--slo-report" && i + 1 < argc) {
      slo_report = argv[++i];
    } else if (arg == "--no-invariants") {
      invariants_on = false;
    } else if (arg == "--attrib") {
      attrib = true;
    } else if (arg == "-v") {
      verbose = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  if (matrix) {
    auto cases = zhuge::app::chaos_matrix(seed);
    if (!only.empty()) {
      std::erase_if(cases, [&](const zhuge::app::ChaosCase& c) {
        return !selected(only, c.name);
      });
    }
    if (list) {
      for (const auto& c : cases) std::printf("%s\n", c.name.c_str());
      return 0;
    }
    if (cases.empty()) {
      std::fprintf(stderr, "no matching case (try --list)\n");
      return 2;
    }

    const auto res = zhuge::app::run_chaos_matrix(cases, threads);
    for (const auto& v : res.verdicts) {
      std::printf("%s\n", json ? zhuge::app::verdict_json(v).c_str()
                               : zhuge::app::format_verdict(v).c_str());
    }

    if (!slo_report.empty()) {
      std::ofstream out(slo_report);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", slo_report.c_str());
        return 2;
      }
      const bool as_json =
          slo_report.size() >= 5 &&
          slo_report.compare(slo_report.size() - 5, 5, ".json") == 0;
      if (as_json) {
        zhuge::obs::write_slo_report_json(res.slo, out);
      } else {
        zhuge::obs::write_slo_report_text(res.slo, out);
      }
    }

    int rc = res.failed == 0 ? 0 : 1;
    if (verify_serial && threads > 1) {
      const auto serial = zhuge::app::run_chaos_matrix(cases, 1);
      const bool same = serial.fingerprint == res.fingerprint;
      std::fprintf(stderr, "verify-serial: %s (%016llx vs %016llx)\n",
                   same ? "bit-identical" : "MISMATCH",
                   static_cast<unsigned long long>(res.fingerprint),
                   static_cast<unsigned long long>(serial.fingerprint));
      if (!same) rc = 1;
    }
    std::fprintf(stderr,
                 "%zu/%zu cases passed (seed %llu, threads %u, "
                 "fingerprint %016llx)\n",
                 res.verdicts.size() - static_cast<std::size_t>(res.failed),
                 res.verdicts.size(), static_cast<unsigned long long>(seed),
                 threads, static_cast<unsigned long long>(res.fingerprint));
    return rc;
  }

  const auto suite = zhuge::app::standard_chaos_suite(seed);
  if (list) {
    for (const auto& c : suite) std::printf("%s\n", c.name.c_str());
    return 0;
  }

  zhuge::obs::set_invariants_enabled(invariants_on);
  zhuge::obs::set_attrib_enabled(attrib);
  zhuge::obs::Attribution merged;

  int ran = 0;
  int failed = 0;
  for (const auto& c : suite) {
    if (!selected(only, c.name)) continue;
    zhuge::obs::invariants().clear();
    const auto v = zhuge::app::run_chaos_case(c, attrib ? &merged : nullptr);
    ++ran;
    std::printf("%s\n", json ? zhuge::app::verdict_json(v).c_str()
                             : zhuge::app::format_verdict(v).c_str());
    if (!v.passed) {
      ++failed;
      if (verbose) {
        const std::string inv = zhuge::obs::invariants().summary();
        if (!inv.empty()) std::printf("  %s\n", inv.c_str());
      }
    }
  }

  if (ran == 0) {
    std::fprintf(stderr, "no matching case (try --list)\n");
    return 2;
  }
  if (attrib && !merged.empty()) {
    std::printf("\n");
    zhuge::obs::write_attrib_report_text(merged, std::cout);
  }
  std::fprintf(stderr, "%d/%d cases passed (seed %llu)\n", ran - failed, ran,
               static_cast<unsigned long long>(seed));
  return failed == 0 ? 0 : 1;
}
