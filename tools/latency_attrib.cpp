// latency_attrib — per-stage latency attribution and budget reports.
//
//   latency_attrib --spec FILE [--seed S] [--seeds N] [--threads N]
//                  [--format text|csv|json] [--out PATH]
//   latency_attrib --trace FILE [FILE ...] [--format ...] [--out PATH]
//
// Live mode runs a multi-station ScenarioSpec with the attribution switch
// on (span stamps recorded at every pipeline boundary — pacing, WAN, AP
// qdisc, air, reassembly, decode) and renders the merged latency-budget
// report. Trace mode replays "span" records from JSONL traces written by
// any bench's --trace flag, so a report can be built after the fact from
// a recorded run. Attribution never perturbs results: fingerprints are
// bit-identical with the switch on or off (tests/attrib_test.cpp).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "app/spec.hpp"
#include "app/sweep.hpp"
#include "obs/attrib.hpp"
#include "obs/trace_reader.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s --spec FILE [--seed S] [--seeds N] [--threads N]\n"
      "          [--format text|csv|json] [--out PATH]\n"
      "       %s --trace FILE [FILE ...] [--format ...] [--out PATH]\n"
      "  --spec FILE    run a ScenarioSpec with latency attribution on\n"
      "  --seed S       override the spec's seed\n"
      "  --seeds N      sweep seeds 1..N and merge the attributions\n"
      "  --threads N    worker threads for the sweep (default 1)\n"
      "  --trace FILE   replay span records from a JSONL/Chrome trace\n"
      "  --format F     report format: text (default), csv, json\n"
      "  --out PATH     write the report to PATH instead of stdout\n",
      argv0, argv0);
}

int render(const zhuge::obs::Attribution& attrib, const std::string& format,
           const std::string& out_path) {
  const auto write = [&](std::ostream& os) {
    if (format == "csv") {
      zhuge::obs::write_attrib_report_csv(attrib, os);
    } else if (format == "json") {
      zhuge::obs::write_attrib_report_json(attrib, os);
    } else {
      zhuge::obs::write_attrib_report_text(attrib, os);
    }
  };
  if (out_path.empty()) {
    write(std::cout);
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 3;
  }
  write(out);
  std::fprintf(stderr, "report: %s\n", out_path.c_str());
  return out ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zhuge;

  std::string spec_path;
  std::vector<std::string> trace_paths;
  std::uint64_t seed = 0;
  bool seed_set = false;
  std::uint64_t n_seeds = 0;
  unsigned threads = 1;
  std::string format = "text";
  std::string out_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--spec" && i + 1 < argc) {
      spec_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      while (i + 1 < argc && argv[i + 1][0] != '-') trace_paths.push_back(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
      seed_set = true;
    } else if (arg == "--seeds" && i + 1 < argc) {
      n_seeds = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--format" && i + 1 < argc) {
      format = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (format != "text" && format != "csv" && format != "json") {
    std::fprintf(stderr, "unknown --format %s\n", format.c_str());
    return 2;
  }
  if (spec_path.empty() == trace_paths.empty()) {
    usage(argv[0]);  // exactly one of --spec / --trace
    return 2;
  }

  obs::Attribution attrib;

  if (!trace_paths.empty()) {
    for (const auto& path : trace_paths) {
      try {
        for (const auto& ev : obs::load_trace_file(path)) {
          attrib.add_trace_event(ev);
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
      }
    }
    if (attrib.empty()) {
      std::fprintf(stderr,
                   "no span records found — was the trace recorded with "
                   "attribution on (--attrib)?\n");
      return 1;
    }
    return render(attrib, format, out_path);
  }

  std::string err;
  const auto spec = app::load_scenario_spec(spec_path, &err);
  if (!spec.has_value()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 2;
  }
  const std::uint64_t base_seed = seed_set ? seed : spec->seed;

  std::vector<app::SpecSweepPoint> grid;
  if (n_seeds > 0) {
    std::vector<std::uint64_t> seeds;
    for (std::uint64_t s = 1; s <= n_seeds; ++s) seeds.push_back(s);
    grid = app::cross_spec_seeds(*spec, seeds);
  } else {
    grid.push_back({spec->name, *spec, base_seed});
  }

  // Progress goes to stderr so `--format json > report.json` stays clean.
  std::fprintf(stderr, "attribution: %s, %zu run(s), %u thread(s)\n",
               spec->name.c_str(), grid.size(), threads);
  const auto runs =
      app::run_spec_sweep(grid, {.threads = threads, .attrib = true});
  for (const auto& run : runs) {
    std::fprintf(stderr, "%-24s fp=%016llx packets=%llu frames=%llu %6.2fs\n",
                 run.name.c_str(),
                static_cast<unsigned long long>(run.fingerprint),
                static_cast<unsigned long long>(run.result.attrib.packets()),
                static_cast<unsigned long long>(run.result.attrib.frames()),
                run.wall_seconds);
    attrib.merge(run.result.attrib);
  }
  if (attrib.empty()) {
    std::fprintf(stderr, "no spans recorded — did every flow miss warmup?\n");
    return 1;
  }
  return render(attrib, format, out_path);
}
