#include <cstdio>
#include "app/scenario.hpp"
#include "trace/synthetic.hpp"
using namespace zhuge;
int main() {
  const auto tr = trace::constant_trace(20e6, sim::Duration::seconds(90));
  app::ScenarioConfig cfg;
  cfg.channel_trace = &tr; cfg.duration = sim::Duration::seconds(90);
  cfg.warmup = sim::Duration::seconds(15); cfg.seed = 11;
  cfg.protocol = app::Protocol::kRtp; cfg.rtc_flows = 2;
  cfg.ap.mode = app::ApMode::kZhuge; cfg.optimize_flow = {true, false};
  cfg.video.max_bitrate_bps = 20e6;
  auto r = app::run_scenario(cfg);
  printf("flow1 %.2f flow2 %.2f Mbps\n", r.flows[0].goodput_bps/1e6, r.flows[1].goodput_bps/1e6);
}
