#include <cstdio>
#include "app/scenario.hpp"
#include "trace/synthetic.hpp"
using namespace zhuge;
int main(int argc, char** argv) {
  app::ScenarioConfig cfg;
  cfg.mcs_index = 5; cfg.mcs_random_switch = true;
  cfg.video.max_bitrate_bps = 12e6;

  cfg.duration = sim::Duration::seconds(240);
  cfg.warmup = sim::Duration::seconds(5);
  cfg.seed = 9;
  cfg.ap.mode = (argc>1 && std::string(argv[1])=="zhuge") ? app::ApMode::kZhuge : app::ApMode::kNone;
  auto r = app::run_scenario(cfg);
  const auto& ts = r.rtt_series_ms.points();
  const auto& rs = r.rate_series_bps.points();
  size_t j = 0;
  for (size_t i = 0; i < rs.size(); i += 20) {
    while (j + 1 < ts.size() && ts[j+1].t <= rs[i].t) ++j;
    printf("%.0f rate=%.1f rtt=%.0f\n", rs[i].t.to_seconds(), rs[i].value/1e6,
           j < ts.size() ? ts[j].value : 0.0);
  }
  printf("ratio200=%.3f goodput=%.2f drops=%llu\n",
         r.primary().network_rtt_ms.ratio_above(200),
         r.primary().goodput_bps/1e6, (unsigned long long)r.qdisc_drops);
}
