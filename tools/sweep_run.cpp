// sweep_run — run a scenario × seed grid on a thread pool.
//
//   sweep_run [--threads N] [--seeds N] [--duration SECS] [--metrics PATH]
//             [--verify-serial] [--attrib] [--list]
//
// The built-in scenario axis covers the four AP modes the paper compares
// (none / Zhuge / FastAck, RTP; plus Zhuge over TCP-Copa) on the
// restaurant-WiFi trace; crossing it with --seeds gives the grid. Per-run
// determinism is independent of --threads: --verify-serial re-runs the
// grid serially and fails (exit 1) if any per-run fingerprint differs
// from the parallel run — the same check tests/sweep_test.cpp applies.
// --metrics writes the aggregated per-run headline metrics as JSON via
// the obs registry exporter.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "app/sweep.hpp"
#include "obs/attrib.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "trace/synthetic.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--threads N] [--seeds N] [--duration SECS] [--metrics PATH]\n"
      "          [--verify-serial] [--attrib] [--list]\n"
      "  --threads N      worker threads (default 1 = serial)\n"
      "  --seeds N        seeds per scenario, 1..N (default 4)\n"
      "  --duration SECS  simulated seconds per run (default 10)\n"
      "  --metrics PATH   write aggregated per-run metrics JSON to PATH\n"
      "  --verify-serial  re-run serially, fail on any fingerprint mismatch\n"
      "  --attrib         record latency attribution, print the merged report\n"
      "  --list           print the grid point names and exit\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zhuge;

  unsigned threads = 1;
  std::uint64_t n_seeds = 4;
  long duration_s = 10;
  std::string metrics_path;
  bool verify_serial = false;
  bool attrib = false;
  bool list = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--seeds" && i + 1 < argc) {
      n_seeds = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--duration" && i + 1 < argc) {
      duration_s = std::strtol(argv[++i], nullptr, 10);
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--verify-serial") {
      verify_serial = true;
    } else if (arg == "--attrib") {
      attrib = true;
    } else if (arg == "--list") {
      list = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  // Channel traces outlive the runs and are shared read-only across
  // threads (ScenarioConfig holds a const pointer).
  const trace::Trace wifi = trace::make_trace(
      trace::TraceKind::kRestaurantWifi, 7, sim::Duration::seconds(duration_s));

  std::vector<app::SweepPoint> scenarios;
  const auto add = [&](std::string name, app::ApMode mode, app::Protocol proto) {
    app::SweepPoint p;
    p.name = std::move(name);
    p.config.protocol = proto;
    p.config.ap.mode = mode;
    p.config.channel_trace = &wifi;
    p.config.duration = sim::Duration::seconds(duration_s);
    scenarios.push_back(std::move(p));
  };
  add("rtp-none", app::ApMode::kNone, app::Protocol::kRtp);
  add("rtp-zhuge", app::ApMode::kZhuge, app::Protocol::kRtp);
  add("rtp-fastack", app::ApMode::kFastAck, app::Protocol::kRtp);
  add("tcp-zhuge", app::ApMode::kZhuge, app::Protocol::kTcp);

  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 1; s <= n_seeds; ++s) seeds.push_back(s);
  const std::vector<app::SweepPoint> grid = app::cross_seeds(scenarios, seeds);

  if (list) {
    for (const auto& p : grid) std::printf("%s\n", p.name.c_str());
    return 0;
  }

  std::printf("sweep: %zu points, %u thread(s)\n", grid.size(), threads);
  const auto runs = app::run_sweep(grid, {.threads = threads, .attrib = attrib});

  for (const auto& run : runs) {
    const auto& flow = run.result.primary();
    std::printf("%-20s fp=%016llx p50=%7.1fms p99=%7.1fms goodput=%6.2fMbps %6.2fs\n",
                run.name.c_str(),
                static_cast<unsigned long long>(run.fingerprint),
                flow.network_rtt_ms.quantile(0.50),
                flow.network_rtt_ms.quantile(0.99),
                flow.goodput_bps / 1e6, run.wall_seconds);
  }

  int rc = 0;
  if (attrib) {
    obs::Attribution merged;
    for (const auto& run : runs) merged.merge(run.result.attrib);
    std::printf("\n");
    obs::write_attrib_report_text(merged, std::cout);
  }
  if (verify_serial) {
    const auto serial = app::run_sweep(grid, {.threads = 1, .attrib = attrib});
    for (std::size_t i = 0; i < runs.size(); ++i) {
      if (serial[i].fingerprint != runs[i].fingerprint) {
        std::printf("MISMATCH %s: parallel %016llx != serial %016llx\n",
                    runs[i].name.c_str(),
                    static_cast<unsigned long long>(runs[i].fingerprint),
                    static_cast<unsigned long long>(serial[i].fingerprint));
        rc = 1;
      }
    }
    if (rc == 0) std::printf("verify-serial: all %zu fingerprints match\n", runs.size());
  }

  if (!metrics_path.empty()) {
    obs::Registry registry;
    app::export_sweep_metrics(runs, registry);
    if (!obs::write_metrics_file(registry, metrics_path)) {
      std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
      rc = rc == 0 ? 3 : rc;
    } else {
      std::printf("metrics: %s\n", metrics_path.c_str());
    }
  }
  return rc;
}
