// Internal debug driver (not part of the library API).
#include <cstdio>
#include <string>
#include "app/scenario.hpp"
#include "trace/synthetic.hpp"
using namespace zhuge;

int main(int argc, char** argv) {
  const bool with_zhuge = argc > 1 && std::string(argv[1]) == "zhuge";
  const bool tcp = argc > 2 && std::string(argv[2]) == "tcp";
  const int secs = argc > 3 ? atoi(argv[3]) : 120;
  const trace::Trace tr = trace::make_trace(trace::TraceKind::kRestaurantWifi, 7,
                                            sim::Duration::seconds(secs));
  app::ScenarioConfig cfg;
  cfg.protocol = tcp ? app::Protocol::kTcp : app::Protocol::kRtp;
  cfg.tcp_cca = app::TcpCcaKind::kCopa;
  cfg.ap.mode = with_zhuge ? app::ApMode::kZhuge : app::ApMode::kNone;
  cfg.channel_trace = &tr;
  cfg.duration = sim::Duration::seconds(secs);
  cfg.seed = 42;
  auto r = app::run_scenario(cfg);
  // Join rate and rtt series on time grid
  std::printf("# time rate_mbps rtt_ms\n");
  const auto& rs = r.rate_series_bps.points();
  const auto& ts = r.rtt_series_ms.points();
  size_t j = 0;
  for (size_t i = 0; i < rs.size(); i += 10) {
    while (j + 1 < ts.size() && ts[j+1].t <= rs[i].t) ++j;
    std::printf("S %.1f %.2f %.0f\n", rs[i].t.to_seconds(), rs[i].value/1e6,
                j < ts.size() ? ts[j].value : 0.0);
  }
  std::printf("drops %llu pred_err_mean %.1f p99rtt %.0f ratio200 %.3f fd400 %.3f goodput %.2f\n",
      (unsigned long long)r.qdisc_drops,
      r.prediction_error_ms.mean(),
      r.primary().network_rtt_ms.quantile(0.99),
      r.primary().network_rtt_ms.ratio_above(200),
      r.primary().frame_delay_ms.ratio_above(400),
      r.primary().goodput_bps/1e6);
  return 0;
}
