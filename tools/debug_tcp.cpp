#include <cstdio>
#include "app/scenario.hpp"
#include "trace/synthetic.hpp"
using namespace zhuge;
int main() {
  const auto tr = trace::constant_trace(30e6, sim::Duration::seconds(40));
  app::ScenarioConfig cfg;
  cfg.protocol = app::Protocol::kTcp;
  cfg.channel_trace = &tr;
  cfg.duration = sim::Duration::seconds(40);
  cfg.seed = 3;
  auto r = app::run_scenario(cfg);
  const auto& f = r.primary();
  std::printf("frames sent(decoded)=%llu fd p50=%.0f p90=%.0f p99=%.0f fd>400=%.3f\n",
    (unsigned long long)f.frames_decoded, f.frame_delay_ms.quantile(.5),
    f.frame_delay_ms.quantile(.9), f.frame_delay_ms.quantile(.99),
    f.frame_delay_ms.ratio_above(400));
  std::printf("rtt p50=%.0f p99=%.0f  goodput=%.2f sender_rtt p50=%.0f\n",
    f.network_rtt_ms.quantile(.5), f.network_rtt_ms.quantile(.99),
    f.goodput_bps/1e6, r.sender_rtt_ms.quantile(.5));
  // fps distribution
  std::printf("fps p10=%.0f p50=%.0f\n", f.frame_rate_fps.quantile(.1), f.frame_rate_fps.quantile(.5));
  return 0;
}
