#include <cstdio>
#include <string>
#include "app/scenario.hpp"
#include "trace/synthetic.hpp"
using namespace zhuge;
int main(int argc, char** argv) {
  const bool tcp = argc > 1 && std::string(argv[1]) == "tcp";
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    for (int z = 0; z < 2; ++z) {
      const auto tr = trace::make_trace(trace::TraceKind::kRestaurantWifi, seed * 13,
                                        sim::Duration::seconds(150));
      app::ScenarioConfig cfg;
      cfg.protocol = tcp ? app::Protocol::kTcp : app::Protocol::kRtp;
      cfg.ap.mode = z ? app::ApMode::kZhuge : app::ApMode::kNone;
      cfg.channel_trace = &tr;
      cfg.duration = sim::Duration::seconds(150);
      cfg.seed = seed;
      auto r = app::run_scenario(cfg);
      std::printf("seed %llu %-6s ratio200=%.4f fd400=%.4f p99=%.0f goodput=%.2f down200=%.4f retx=%llu\n",
                  (unsigned long long)seed, z ? "zhuge" : "none",
                  r.primary().network_rtt_ms.ratio_above(200),
                  r.primary().frame_delay_ms.ratio_above(400),
                  r.primary().network_rtt_ms.quantile(.99),
                  r.primary().goodput_bps / 1e6,
                  r.primary().downlink_owd_ms.ratio_above(150),
                  (unsigned long long)r.tcp_retransmissions);
    }
  }
  return 0;
}
