#include <cstdio>
#include "app/scenario.hpp"
#include "trace/synthetic.hpp"
using namespace zhuge;
using sim::Duration; using sim::TimePoint;
int main(int argc, char** argv) {
  std::string mode = argc>1?argv[1]:"none";
  if (mode == "bulk") {
    const auto tr = trace::constant_trace(20e6, Duration::seconds(20));
    app::ScenarioConfig cfg;
    cfg.channel_trace = &tr; cfg.duration = Duration::seconds(20);
    cfg.warmup = Duration::seconds(3); cfg.seed = 5;
    cfg.competing_bulk_flows = 8;
    auto r = app::run_scenario(cfg);
    printf("rtc goodput %.2f p90 %.1f p99 %.1f drops %llu\n",
      r.primary().goodput_bps/1e6, r.primary().network_rtt_ms.quantile(.9),
      r.primary().network_rtt_ms.quantile(.99), (unsigned long long)r.qdisc_drops);
    return 0;
  }
  const auto tr = trace::step_trace(30e6, 3e6, Duration::seconds(20), Duration::seconds(40));
  app::ScenarioConfig cfg;
  cfg.channel_trace = &tr; cfg.duration = Duration::seconds(40);
  cfg.warmup = Duration::seconds(3); cfg.seed = 3;
  cfg.video.max_bitrate_bps = 40e6;
  cfg.ap.mode = mode=="zhuge" ? app::ApMode::kZhuge : app::ApMode::kNone;
  auto r = app::run_scenario(cfg);
  const auto& rs = r.rate_series_bps.points();
  const auto& ts = r.rtt_series_ms.points();
  size_t j = 0;
  for (size_t i = 0; i < rs.size(); i += 10) {
    double t = rs[i].t.to_seconds();
    if (t < 19.5 || t > 33) continue;
    while (j + 1 < ts.size() && ts[j+1].t <= rs[i].t) ++j;
    printf("%.1f rate=%.2f rtt=%.0f\n", t, rs[i].value/1e6, j<ts.size()?ts[j].value:0);
  }
  printf("deg %.2f s drops %llu\n",
    r.rtt_series_ms.time_above(200.0, TimePoint::zero()+Duration::seconds(20), TimePoint::zero()+Duration::seconds(40)).to_seconds(),
    (unsigned long long)r.qdisc_drops);
}
