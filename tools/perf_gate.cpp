// perf_gate: CI comparator for bench/perf_hotpath.cpp (DESIGN.md §10).
//
// Compares a google-benchmark JSON run against the checked-in baseline
// (BENCH_pr8.json) and fails — exit 1 — when any gated benchmark's
// max-across-repetitions items_per_second falls below
// baseline * (1 - tolerance).
//
// Max-across-repetitions is deliberate: on a shared CI core, exogenous
// load only ever slows a run down, so the max over N repetitions is the
// least-biased estimate of the code's actual speed, and the one with the
// smallest false-failure rate for a given tolerance. The baseline file
// sets the tolerance band and the minimum repetition count it was
// calibrated for; runs with fewer repetitions are rejected outright so a
// mis-configured CI job cannot pass on a single lucky (or unlucky) sample.
//
// Usage:
//   perf_gate <run.json> <baseline.json>            compare, exit 0/1
//   perf_gate --bless <run.json> <baseline.json>    rewrite gate.baselines
//                                                   from this run's maxima
//
// --bless re-serialises the whole baseline document (keys sorted, 2-space
// indent); commit the result. Prose fields are preserved verbatim.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "app/spec.hpp"

namespace {

using zhuge::app::Json;

struct Measured {
  double max_items_per_second = 0.0;
  int repetitions = 0;
};

std::string read_file(const std::string& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *ok = false;
    return {};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *ok = true;
  return ss.str();
}

/// Extract per-benchmark max items_per_second from google-benchmark JSON
/// output. Aggregate rows (_mean/_median/_stddev/_cv) are skipped: newer
/// libbenchmark tags them run_type=="aggregate", older ones only via the
/// name suffix, so both signals are checked.
std::map<std::string, Measured> collect_run(const Json& run) {
  std::map<std::string, Measured> out;
  const Json* arr = run.find("benchmarks");
  if (arr == nullptr || !arr->is_array()) return out;
  for (const Json& b : arr->array()) {
    const Json* rt = b.find("run_type");
    if (rt != nullptr && rt->string_or("iteration") != "iteration") continue;
    const Json* rn = b.find("run_name");
    std::string name = rn != nullptr ? rn->string_or("") : "";
    if (name.empty()) {
      const Json* n = b.find("name");
      name = n != nullptr ? n->string_or("") : "";
    }
    if (name.empty()) continue;
    if (rt == nullptr) {
      for (const char* suffix : {"_mean", "_median", "_stddev", "_cv"}) {
        const std::string s{suffix};
        if (name.size() > s.size() &&
            name.compare(name.size() - s.size(), s.size(), s) == 0) {
          name.clear();
          break;
        }
      }
      if (name.empty()) continue;
    }
    const Json* ips = b.find("items_per_second");
    if (ips == nullptr) continue;
    Measured& m = out[name];
    m.max_items_per_second =
        std::max(m.max_items_per_second, ips->number_or(0.0));
    ++m.repetitions;
  }
  return out;
}

std::string human(double ips) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fM/s", ips / 1e6);
  return buf;
}

int bless(const Json& run, Json baseline, const std::string& baseline_path) {
  const auto measured = collect_run(run);
  if (measured.empty()) {
    std::fprintf(stderr, "perf_gate: run has no benchmarks to bless from\n");
    return 1;
  }
  Json gate;
  if (const Json* g = baseline.find("gate"); g != nullptr) gate = *g;
  Json baselines = Json::make_object();
  for (const auto& [name, m] : measured) {
    baselines.set(name, Json::make_number(m.max_items_per_second));
  }
  gate.set("baselines", baselines);
  baseline.set("gate", gate);
  std::ofstream out(baseline_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "perf_gate: cannot write %s\n", baseline_path.c_str());
    return 1;
  }
  out << baseline.dump(2) << '\n';
  std::printf("perf_gate: blessed %zu baselines into %s\n", measured.size(),
              baseline_path.c_str());
  for (const auto& [name, m] : measured) {
    std::printf("  %-32s %s (max of %d reps)\n", name.c_str(),
                human(m.max_items_per_second).c_str(), m.repetitions);
  }
  return 0;
}

int compare(const Json& run, const Json& baseline) {
  const Json* gate = baseline.find("gate");
  const Json* baselines = gate != nullptr ? gate->find("baselines") : nullptr;
  if (baselines == nullptr || !baselines->is_object()) {
    std::fprintf(stderr, "perf_gate: baseline has no gate.baselines object\n");
    return 1;
  }
  const double tol =
      gate->find("tolerance") != nullptr
          ? gate->find("tolerance")->number_or(0.5)
          : 0.5;
  const int min_reps =
      gate->find("min_repetitions") != nullptr
          ? static_cast<int>(gate->find("min_repetitions")->number_or(1))
          : 1;

  const auto measured = collect_run(run);
  bool failed = false;

  std::printf("%-32s %12s %12s %7s  %s\n", "benchmark", "baseline", "measured",
              "ratio", "verdict");
  for (const auto& [name, base] : baselines->object()) {
    const double want = base.number_or(0.0) * (1.0 - tol);
    const auto it = measured.find(name);
    if (it == measured.end()) {
      std::printf("%-32s %12s %12s %7s  FAIL (missing from run)\n",
                  name.c_str(), human(base.number_or(0.0)).c_str(), "-", "-");
      failed = true;
      continue;
    }
    if (it->second.repetitions < min_reps) {
      std::printf("%-32s %12s %12s %7s  FAIL (%d reps < min %d)\n",
                  name.c_str(), human(base.number_or(0.0)).c_str(),
                  human(it->second.max_items_per_second).c_str(), "-",
                  it->second.repetitions, min_reps);
      failed = true;
      continue;
    }
    const double got = it->second.max_items_per_second;
    const double ratio = base.number_or(0.0) > 0.0
                             ? got / base.number_or(0.0)
                             : 0.0;
    const bool ok = got >= want;
    std::printf("%-32s %12s %12s %6.2fx  %s\n", name.c_str(),
                human(base.number_or(0.0)).c_str(), human(got).c_str(), ratio,
                ok ? "ok" : "FAIL");
    if (!ok) {
      std::printf(
          "  ^ max of %d reps is below baseline * (1 - %.2f) = %s — either a\n"
          "    real regression or a miscalibrated baseline; to re-bless run\n"
          "    perf_gate --bless <run.json> <baseline.json> and commit.\n",
          it->second.repetitions, tol, human(want).c_str());
      failed = true;
    }
  }
  for (const auto& [name, m] : measured) {
    if (baselines->find(name) == nullptr) {
      std::printf("%-32s %12s %12s %7s  warn: not in baseline (bless to gate)\n",
                  name.c_str(), "-", human(m.max_items_per_second).c_str(),
                  "-");
    }
  }
  std::printf("perf_gate: %s (tolerance %.2f, min %d reps)\n",
              failed ? "FAIL" : "PASS", tol, min_reps);
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool do_bless = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--bless") {
      do_bless = true;
    } else if (a == "-h" || a == "--help") {
      std::printf("usage: perf_gate [--bless] <run.json> <baseline.json>\n");
      return 0;
    } else {
      paths.push_back(a);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: perf_gate [--bless] <run.json> <baseline.json>\n");
    return 2;
  }

  bool ok = false;
  const std::string run_text = read_file(paths[0], &ok);
  if (!ok) {
    std::fprintf(stderr, "perf_gate: cannot read %s\n", paths[0].c_str());
    return 2;
  }
  const std::string base_text = read_file(paths[1], &ok);
  if (!ok) {
    std::fprintf(stderr, "perf_gate: cannot read %s\n", paths[1].c_str());
    return 2;
  }

  std::string err;
  const auto run = Json::parse(run_text, &err);
  if (!run.has_value()) {
    std::fprintf(stderr, "perf_gate: %s: %s\n", paths[0].c_str(), err.c_str());
    return 2;
  }
  const auto baseline = Json::parse(base_text, &err);
  if (!baseline.has_value()) {
    std::fprintf(stderr, "perf_gate: %s: %s\n", paths[1].c_str(), err.c_str());
    return 2;
  }

  return do_bless ? bless(*run, *baseline, paths[1]) : compare(*run, *baseline);
}
