file(REMOVE_RECURSE
  "CMakeFiles/zhuge_cli.dir/zhuge_cli.cpp.o"
  "CMakeFiles/zhuge_cli.dir/zhuge_cli.cpp.o.d"
  "zhuge_cli"
  "zhuge_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zhuge_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
