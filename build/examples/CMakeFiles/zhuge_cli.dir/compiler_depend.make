# Empty compiler generated dependencies file for zhuge_cli.
# This may be replaced when dependencies are built.
