file(REMOVE_RECURSE
  "libzhuge_sim.a"
)
