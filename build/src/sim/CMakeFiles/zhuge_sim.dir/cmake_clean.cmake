file(REMOVE_RECURSE
  "CMakeFiles/zhuge_sim.dir/simulator.cpp.o"
  "CMakeFiles/zhuge_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/zhuge_sim.dir/time.cpp.o"
  "CMakeFiles/zhuge_sim.dir/time.cpp.o.d"
  "libzhuge_sim.a"
  "libzhuge_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zhuge_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
