# Empty compiler generated dependencies file for zhuge_sim.
# This may be replaced when dependencies are built.
