# Empty dependencies file for zhuge_core.
# This may be replaced when dependencies are built.
