file(REMOVE_RECURSE
  "CMakeFiles/zhuge_core.dir/fortune_teller.cpp.o"
  "CMakeFiles/zhuge_core.dir/fortune_teller.cpp.o.d"
  "libzhuge_core.a"
  "libzhuge_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zhuge_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
