file(REMOVE_RECURSE
  "libzhuge_core.a"
)
