file(REMOVE_RECURSE
  "libzhuge_transport.a"
)
