file(REMOVE_RECURSE
  "CMakeFiles/zhuge_transport.dir/rtp_receiver.cpp.o"
  "CMakeFiles/zhuge_transport.dir/rtp_receiver.cpp.o.d"
  "CMakeFiles/zhuge_transport.dir/rtp_sender.cpp.o"
  "CMakeFiles/zhuge_transport.dir/rtp_sender.cpp.o.d"
  "CMakeFiles/zhuge_transport.dir/tcp_receiver.cpp.o"
  "CMakeFiles/zhuge_transport.dir/tcp_receiver.cpp.o.d"
  "CMakeFiles/zhuge_transport.dir/tcp_sender.cpp.o"
  "CMakeFiles/zhuge_transport.dir/tcp_sender.cpp.o.d"
  "libzhuge_transport.a"
  "libzhuge_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zhuge_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
