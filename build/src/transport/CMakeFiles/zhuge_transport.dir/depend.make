# Empty dependencies file for zhuge_transport.
# This may be replaced when dependencies are built.
