file(REMOVE_RECURSE
  "libzhuge_cca.a"
)
