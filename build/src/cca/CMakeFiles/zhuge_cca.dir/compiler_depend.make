# Empty compiler generated dependencies file for zhuge_cca.
# This may be replaced when dependencies are built.
