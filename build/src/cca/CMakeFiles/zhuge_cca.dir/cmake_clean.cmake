file(REMOVE_RECURSE
  "CMakeFiles/zhuge_cca.dir/gcc.cpp.o"
  "CMakeFiles/zhuge_cca.dir/gcc.cpp.o.d"
  "CMakeFiles/zhuge_cca.dir/nada.cpp.o"
  "CMakeFiles/zhuge_cca.dir/nada.cpp.o.d"
  "libzhuge_cca.a"
  "libzhuge_cca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zhuge_cca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
