file(REMOVE_RECURSE
  "CMakeFiles/zhuge_trace.dir/synthetic.cpp.o"
  "CMakeFiles/zhuge_trace.dir/synthetic.cpp.o.d"
  "CMakeFiles/zhuge_trace.dir/trace.cpp.o"
  "CMakeFiles/zhuge_trace.dir/trace.cpp.o.d"
  "libzhuge_trace.a"
  "libzhuge_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zhuge_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
