# Empty compiler generated dependencies file for zhuge_trace.
# This may be replaced when dependencies are built.
