file(REMOVE_RECURSE
  "libzhuge_trace.a"
)
