file(REMOVE_RECURSE
  "CMakeFiles/zhuge_app.dir/access_point.cpp.o"
  "CMakeFiles/zhuge_app.dir/access_point.cpp.o.d"
  "CMakeFiles/zhuge_app.dir/scenario.cpp.o"
  "CMakeFiles/zhuge_app.dir/scenario.cpp.o.d"
  "libzhuge_app.a"
  "libzhuge_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zhuge_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
