# Empty compiler generated dependencies file for zhuge_app.
# This may be replaced when dependencies are built.
