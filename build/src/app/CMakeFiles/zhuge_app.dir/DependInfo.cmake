
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/access_point.cpp" "src/app/CMakeFiles/zhuge_app.dir/access_point.cpp.o" "gcc" "src/app/CMakeFiles/zhuge_app.dir/access_point.cpp.o.d"
  "/root/repo/src/app/scenario.cpp" "src/app/CMakeFiles/zhuge_app.dir/scenario.cpp.o" "gcc" "src/app/CMakeFiles/zhuge_app.dir/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/zhuge_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/zhuge_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/zhuge_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/cca/CMakeFiles/zhuge_cca.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/zhuge_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
