file(REMOVE_RECURSE
  "libzhuge_app.a"
)
