# Empty dependencies file for debug_spike.
# This may be replaced when dependencies are built.
