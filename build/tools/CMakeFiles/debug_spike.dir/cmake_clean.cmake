file(REMOVE_RECURSE
  "CMakeFiles/debug_spike.dir/debug_spike.cpp.o"
  "CMakeFiles/debug_spike.dir/debug_spike.cpp.o.d"
  "debug_spike"
  "debug_spike.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_spike.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
