# Empty compiler generated dependencies file for debug_mcs.
# This may be replaced when dependencies are built.
