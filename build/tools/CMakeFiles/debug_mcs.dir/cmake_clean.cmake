file(REMOVE_RECURSE
  "CMakeFiles/debug_mcs.dir/debug_mcs.cpp.o"
  "CMakeFiles/debug_mcs.dir/debug_mcs.cpp.o.d"
  "debug_mcs"
  "debug_mcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_mcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
