# Empty dependencies file for debug_drop2.
# This may be replaced when dependencies are built.
