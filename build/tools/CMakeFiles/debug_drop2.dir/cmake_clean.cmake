file(REMOVE_RECURSE
  "CMakeFiles/debug_drop2.dir/debug_drop2.cpp.o"
  "CMakeFiles/debug_drop2.dir/debug_drop2.cpp.o.d"
  "debug_drop2"
  "debug_drop2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_drop2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
