file(REMOVE_RECURSE
  "CMakeFiles/debug_tcp.dir/debug_tcp.cpp.o"
  "CMakeFiles/debug_tcp.dir/debug_tcp.cpp.o.d"
  "debug_tcp"
  "debug_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
