# Empty dependencies file for debug_fair.
# This may be replaced when dependencies are built.
