file(REMOVE_RECURSE
  "CMakeFiles/debug_fair.dir/debug_fair.cpp.o"
  "CMakeFiles/debug_fair.dir/debug_fair.cpp.o.d"
  "debug_fair"
  "debug_fair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_fair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
