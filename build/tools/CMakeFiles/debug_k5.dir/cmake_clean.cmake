file(REMOVE_RECURSE
  "CMakeFiles/debug_k5.dir/debug_k5.cpp.o"
  "CMakeFiles/debug_k5.dir/debug_k5.cpp.o.d"
  "debug_k5"
  "debug_k5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_k5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
