# Empty dependencies file for debug_k5.
# This may be replaced when dependencies are built.
