# Empty dependencies file for debug_scenario.
# This may be replaced when dependencies are built.
