file(REMOVE_RECURSE
  "CMakeFiles/debug_scenario.dir/debug_scenario.cpp.o"
  "CMakeFiles/debug_scenario.dir/debug_scenario.cpp.o.d"
  "debug_scenario"
  "debug_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
