file(REMOVE_RECURSE
  "CMakeFiles/debug_seeds.dir/debug_seeds.cpp.o"
  "CMakeFiles/debug_seeds.dir/debug_seeds.cpp.o.d"
  "debug_seeds"
  "debug_seeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_seeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
