# Empty dependencies file for debug_seeds.
# This may be replaced when dependencies are built.
