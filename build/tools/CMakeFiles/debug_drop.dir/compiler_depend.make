# Empty compiler generated dependencies file for debug_drop.
# This may be replaced when dependencies are built.
