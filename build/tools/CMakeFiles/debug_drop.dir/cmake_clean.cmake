file(REMOVE_RECURSE
  "CMakeFiles/debug_drop.dir/debug_drop.cpp.o"
  "CMakeFiles/debug_drop.dir/debug_drop.cpp.o.d"
  "debug_drop"
  "debug_drop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_drop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
