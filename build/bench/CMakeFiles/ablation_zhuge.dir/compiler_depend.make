# Empty compiler generated dependencies file for ablation_zhuge.
# This may be replaced when dependencies are built.
