file(REMOVE_RECURSE
  "CMakeFiles/ablation_zhuge.dir/ablation_zhuge.cpp.o"
  "CMakeFiles/ablation_zhuge.dir/ablation_zhuge.cpp.o.d"
  "ablation_zhuge"
  "ablation_zhuge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_zhuge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
