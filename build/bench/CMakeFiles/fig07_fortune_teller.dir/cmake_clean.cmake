file(REMOVE_RECURSE
  "CMakeFiles/fig07_fortune_teller.dir/fig07_fortune_teller.cpp.o"
  "CMakeFiles/fig07_fortune_teller.dir/fig07_fortune_teller.cpp.o.d"
  "fig07_fortune_teller"
  "fig07_fortune_teller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_fortune_teller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
