# Empty dependencies file for fig07_fortune_teller.
# This may be replaced when dependencies are built.
