file(REMOVE_RECURSE
  "CMakeFiles/fig16_flow_competition.dir/fig16_flow_competition.cpp.o"
  "CMakeFiles/fig16_flow_competition.dir/fig16_flow_competition.cpp.o.d"
  "fig16_flow_competition"
  "fig16_flow_competition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_flow_competition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
