# Empty dependencies file for fig16_flow_competition.
# This may be replaced when dependencies are built.
