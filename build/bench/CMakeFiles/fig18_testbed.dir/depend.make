# Empty dependencies file for fig18_testbed.
# This may be replaced when dependencies are built.
