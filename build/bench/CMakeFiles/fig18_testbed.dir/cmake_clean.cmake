file(REMOVE_RECURSE
  "CMakeFiles/fig18_testbed.dir/fig18_testbed.cpp.o"
  "CMakeFiles/fig18_testbed.dir/fig18_testbed.cpp.o.d"
  "fig18_testbed"
  "fig18_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
