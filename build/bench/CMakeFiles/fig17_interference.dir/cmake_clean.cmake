file(REMOVE_RECURSE
  "CMakeFiles/fig17_interference.dir/fig17_interference.cpp.o"
  "CMakeFiles/fig17_interference.dir/fig17_interference.cpp.o.d"
  "fig17_interference"
  "fig17_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
