# Empty compiler generated dependencies file for fig17_interference.
# This may be replaced when dependencies are built.
