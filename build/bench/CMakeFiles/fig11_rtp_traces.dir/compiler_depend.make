# Empty compiler generated dependencies file for fig11_rtp_traces.
# This may be replaced when dependencies are built.
