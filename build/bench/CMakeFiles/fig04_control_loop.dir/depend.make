# Empty dependencies file for fig04_control_loop.
# This may be replaced when dependencies are built.
