file(REMOVE_RECURSE
  "CMakeFiles/fig04_control_loop.dir/fig04_control_loop.cpp.o"
  "CMakeFiles/fig04_control_loop.dir/fig04_control_loop.cpp.o.d"
  "fig04_control_loop"
  "fig04_control_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_control_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
