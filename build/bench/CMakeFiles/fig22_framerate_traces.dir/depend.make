# Empty dependencies file for fig22_framerate_traces.
# This may be replaced when dependencies are built.
