file(REMOVE_RECURSE
  "CMakeFiles/fig22_framerate_traces.dir/fig22_framerate_traces.cpp.o"
  "CMakeFiles/fig22_framerate_traces.dir/fig22_framerate_traces.cpp.o.d"
  "fig22_framerate_traces"
  "fig22_framerate_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_framerate_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
