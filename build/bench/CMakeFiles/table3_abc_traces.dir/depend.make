# Empty dependencies file for table3_abc_traces.
# This may be replaced when dependencies are built.
