file(REMOVE_RECURSE
  "CMakeFiles/table3_abc_traces.dir/table3_abc_traces.cpp.o"
  "CMakeFiles/table3_abc_traces.dir/table3_abc_traces.cpp.o.d"
  "table3_abc_traces"
  "table3_abc_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_abc_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
