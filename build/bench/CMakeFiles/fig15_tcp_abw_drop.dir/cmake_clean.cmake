file(REMOVE_RECURSE
  "CMakeFiles/fig15_tcp_abw_drop.dir/fig15_tcp_abw_drop.cpp.o"
  "CMakeFiles/fig15_tcp_abw_drop.dir/fig15_tcp_abw_drop.cpp.o.d"
  "fig15_tcp_abw_drop"
  "fig15_tcp_abw_drop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_tcp_abw_drop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
