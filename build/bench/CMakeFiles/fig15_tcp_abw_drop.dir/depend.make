# Empty dependencies file for fig15_tcp_abw_drop.
# This may be replaced when dependencies are built.
