# Empty compiler generated dependencies file for fig21_cpu_overhead.
# This may be replaced when dependencies are built.
