file(REMOVE_RECURSE
  "CMakeFiles/fig21_cpu_overhead.dir/fig21_cpu_overhead.cpp.o"
  "CMakeFiles/fig21_cpu_overhead.dir/fig21_cpu_overhead.cpp.o.d"
  "fig21_cpu_overhead"
  "fig21_cpu_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_cpu_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
