file(REMOVE_RECURSE
  "CMakeFiles/fig12_tcp_traces.dir/fig12_tcp_traces.cpp.o"
  "CMakeFiles/fig12_tcp_traces.dir/fig12_tcp_traces.cpp.o.d"
  "fig12_tcp_traces"
  "fig12_tcp_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_tcp_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
