# Empty dependencies file for fig12_tcp_traces.
# This may be replaced when dependencies are built.
