# Empty dependencies file for fig03_abw_reduction.
# This may be replaced when dependencies are built.
