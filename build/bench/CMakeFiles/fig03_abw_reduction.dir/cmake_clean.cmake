file(REMOVE_RECURSE
  "CMakeFiles/fig03_abw_reduction.dir/fig03_abw_reduction.cpp.o"
  "CMakeFiles/fig03_abw_reduction.dir/fig03_abw_reduction.cpp.o.d"
  "fig03_abw_reduction"
  "fig03_abw_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_abw_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
