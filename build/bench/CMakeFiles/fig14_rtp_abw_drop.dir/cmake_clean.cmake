file(REMOVE_RECURSE
  "CMakeFiles/fig14_rtp_abw_drop.dir/fig14_rtp_abw_drop.cpp.o"
  "CMakeFiles/fig14_rtp_abw_drop.dir/fig14_rtp_abw_drop.cpp.o.d"
  "fig14_rtp_abw_drop"
  "fig14_rtp_abw_drop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_rtp_abw_drop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
