# Empty compiler generated dependencies file for fig14_rtp_abw_drop.
# This may be replaced when dependencies are built.
