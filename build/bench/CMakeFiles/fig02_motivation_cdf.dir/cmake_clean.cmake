file(REMOVE_RECURSE
  "CMakeFiles/fig02_motivation_cdf.dir/fig02_motivation_cdf.cpp.o"
  "CMakeFiles/fig02_motivation_cdf.dir/fig02_motivation_cdf.cpp.o.d"
  "fig02_motivation_cdf"
  "fig02_motivation_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_motivation_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
