# Empty compiler generated dependencies file for fig20_fairness.
# This may be replaced when dependencies are built.
