file(REMOVE_RECURSE
  "CMakeFiles/fig20_fairness.dir/fig20_fairness.cpp.o"
  "CMakeFiles/fig20_fairness.dir/fig20_fairness.cpp.o.d"
  "fig20_fairness"
  "fig20_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
