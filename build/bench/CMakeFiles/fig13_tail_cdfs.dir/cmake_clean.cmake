file(REMOVE_RECURSE
  "CMakeFiles/fig13_tail_cdfs.dir/fig13_tail_cdfs.cpp.o"
  "CMakeFiles/fig13_tail_cdfs.dir/fig13_tail_cdfs.cpp.o.d"
  "fig13_tail_cdfs"
  "fig13_tail_cdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_tail_cdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
