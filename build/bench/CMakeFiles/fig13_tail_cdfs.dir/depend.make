# Empty dependencies file for fig13_tail_cdfs.
# This may be replaced when dependencies are built.
