file(REMOVE_RECURSE
  "CMakeFiles/transport_rtp_test.dir/transport_rtp_test.cpp.o"
  "CMakeFiles/transport_rtp_test.dir/transport_rtp_test.cpp.o.d"
  "transport_rtp_test"
  "transport_rtp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transport_rtp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
