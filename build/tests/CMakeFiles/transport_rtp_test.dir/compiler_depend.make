# Empty compiler generated dependencies file for transport_rtp_test.
# This may be replaced when dependencies are built.
