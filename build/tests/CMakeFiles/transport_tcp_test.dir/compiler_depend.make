# Empty compiler generated dependencies file for transport_tcp_test.
# This may be replaced when dependencies are built.
