
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/transport_tcp_test.cpp" "tests/CMakeFiles/transport_tcp_test.dir/transport_tcp_test.cpp.o" "gcc" "tests/CMakeFiles/transport_tcp_test.dir/transport_tcp_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/app/CMakeFiles/zhuge_app.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/zhuge_core.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/zhuge_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/cca/CMakeFiles/zhuge_cca.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/zhuge_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zhuge_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
