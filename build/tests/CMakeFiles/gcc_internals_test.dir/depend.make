# Empty dependencies file for gcc_internals_test.
# This may be replaced when dependencies are built.
