file(REMOVE_RECURSE
  "CMakeFiles/gcc_internals_test.dir/gcc_internals_test.cpp.o"
  "CMakeFiles/gcc_internals_test.dir/gcc_internals_test.cpp.o.d"
  "gcc_internals_test"
  "gcc_internals_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcc_internals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
