file(REMOVE_RECURSE
  "CMakeFiles/fortune_teller_test.dir/fortune_teller_test.cpp.o"
  "CMakeFiles/fortune_teller_test.dir/fortune_teller_test.cpp.o.d"
  "fortune_teller_test"
  "fortune_teller_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fortune_teller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
