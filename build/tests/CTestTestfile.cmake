# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(stats_test "/root/repo/build/tests/stats_test")
set_tests_properties(stats_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(net_test "/root/repo/build/tests/net_test")
set_tests_properties(net_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(queue_test "/root/repo/build/tests/queue_test")
set_tests_properties(queue_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(trace_test "/root/repo/build/tests/trace_test")
set_tests_properties(trace_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(wireless_test "/root/repo/build/tests/wireless_test")
set_tests_properties(wireless_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cca_test "/root/repo/build/tests/cca_test")
set_tests_properties(cca_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(gcc_internals_test "/root/repo/build/tests/gcc_internals_test")
set_tests_properties(gcc_internals_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fortune_teller_test "/root/repo/build/tests/fortune_teller_test")
set_tests_properties(fortune_teller_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(feedback_test "/root/repo/build/tests/feedback_test")
set_tests_properties(feedback_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(transport_tcp_test "/root/repo/build/tests/transport_tcp_test")
set_tests_properties(transport_tcp_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(transport_rtp_test "/root/repo/build/tests/transport_rtp_test")
set_tests_properties(transport_rtp_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(baseline_test "/root/repo/build/tests/baseline_test")
set_tests_properties(baseline_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(app_test "/root/repo/build/tests/app_test")
set_tests_properties(app_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
