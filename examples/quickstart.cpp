// Quickstart: one GCC/RTP video flow over a fluctuating WiFi channel,
// with and without Zhuge on the access point. Prints the paper's headline
// metrics side by side.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "app/scenario.hpp"
#include "obs/session.hpp"
#include "trace/synthetic.hpp"

using namespace zhuge;

namespace {

app::ScenarioResult run(const trace::Trace& tr, bool with_zhuge) {
  app::ScenarioConfig cfg;
  cfg.protocol = app::Protocol::kRtp;
  cfg.ap.mode = with_zhuge ? app::ApMode::kZhuge : app::ApMode::kNone;
  cfg.ap.qdisc = app::QdiscKind::kFifo;
  cfg.channel_trace = &tr;
  cfg.duration = sim::Duration::seconds(120);
  cfg.seed = 42;
  return app::run_scenario(cfg);
}

void report(const char* label, const app::ScenarioResult& r) {
  const auto& f = r.primary();
  std::printf("%-14s P50 RTT %6.1f ms | P99 RTT %7.1f ms | RTT>200ms %5.2f%% | "
              "frame>400ms %5.2f%% | fps<10 %5.2f%% | goodput %5.2f Mbps\n",
              label, f.network_rtt_ms.quantile(0.50), f.network_rtt_ms.quantile(0.99),
              100.0 * f.network_rtt_ms.ratio_above(200.0),
              100.0 * f.frame_delay_ms.ratio_above(400.0),
              100.0 * f.frame_rate_fps.ratio_below(10.0),
              f.goodput_bps / 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  obs::ObsSession obs(argc, argv);  // --trace/--metrics, same as every bench
  std::printf("zhuge-rtc quickstart: GCC/RTP over Restaurant-WiFi-like channel\n\n");
  const trace::Trace tr = trace::make_trace(trace::TraceKind::kRestaurantWifi,
                                            /*seed=*/7, sim::Duration::seconds(120));
  std::printf("trace: mean ABW %.1f Mbps over %.0f s\n\n", tr.mean_rate_bps() / 1e6,
              tr.span().to_seconds());

  const auto baseline = run(tr, /*with_zhuge=*/false);
  report("Gcc+FIFO", baseline);
  const auto zhuge_run = run(tr, /*with_zhuge=*/true);
  report("Gcc+Zhuge", zhuge_run);

  std::printf("\nevents executed: baseline %llu, zhuge %llu\n",
              static_cast<unsigned long long>(baseline.events_executed),
              static_cast<unsigned long long>(zhuge_run.events_executed));
  return 0;
}
