// zhuge_cli: command-line scenario runner.
//
// Run any combination of protocol, CCA, AP mode, qdisc, and channel (a
// built-in synthetic trace class or your own CSV) without writing code:
//
//   ./build/examples/zhuge_cli --channel W1 --mode zhuge --duration 120
//   ./build/examples/zhuge_cli --channel my.csv --protocol tcp --mode fastack
//   ./build/examples/zhuge_cli --help
//
// Prints the paper's headline metrics for the run. Like every other
// entrypoint, accepts --trace/--metrics (obs::ObsSession) for
// observability output.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "app/scenario.hpp"
#include "obs/session.hpp"
#include "trace/synthetic.hpp"

using namespace zhuge;

namespace {

struct Options {
  std::string channel = "W1";
  std::string protocol = "rtp";
  std::string cca = "copa";     // TCP only; RTP uses gcc/nada
  std::string rtp_cca = "gcc";
  std::string mode = "none";    // none | zhuge | fastack | abc
  std::string qdisc = "fifo";   // fifo | codel | fq_codel
  double duration_s = 60.0;
  double max_bitrate_mbps = 2.5;
  int competitors = 0;
  int interferers = 0;
  std::uint64_t seed = 1;
};

void usage() {
  std::puts(
      "zhuge_cli — run one wireless RTC scenario and print tail metrics\n"
      "\n"
      "  --channel <W1|W2|C1|C2|C3|ETH|path.csv> channel (default W1)\n"
      "  --protocol <rtp|tcp>                    transport (default rtp)\n"
      "  --cca <copa|bbr|cubic|abc>              TCP CCA (default copa)\n"
      "  --rtp-cca <gcc|nada|scream>             RTP controller (default gcc)\n"
      "  --mode <none|zhuge|fastack|abc>         AP optimisation (default none)\n"
      "  --qdisc <fifo|codel|fq_codel>           AP queue (default fifo)\n"
      "  --duration <seconds>                    run length (default 60)\n"
      "  --bitrate <mbps>                        encoder cap (default 2.5)\n"
      "  --competitors <n>                       CUBIC bulk flows (default 0)\n"
      "  --interferers <n>                       co-channel APs (default 0)\n"
      "  --seed <n>                              RNG seed (default 1)\n"
      "  --trace <file> / --metrics <file>       observability output\n"
      "  --attrib                                stamp latency spans into the trace\n");
}

std::optional<trace::TraceKind> builtin_trace(const std::string& name) {
  if (name == "W1") return trace::TraceKind::kRestaurantWifi;
  if (name == "W2") return trace::TraceKind::kOfficeWifi;
  if (name == "C1") return trace::TraceKind::kIndoorMixed45G;
  if (name == "C2") return trace::TraceKind::kCity4G;
  if (name == "C3") return trace::TraceKind::kCity5G;
  if (name == "ETH") return trace::TraceKind::kEthernet;
  return std::nullopt;
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") return false;
    if (flag == "--trace" || flag == "--metrics") value();  // obs::ObsSession's
    else if (flag == "--attrib") {}  // obs::ObsSession's, no value
    else if (flag == "--channel") opt.channel = value();
    else if (flag == "--protocol") opt.protocol = value();
    else if (flag == "--cca") opt.cca = value();
    else if (flag == "--rtp-cca") opt.rtp_cca = value();
    else if (flag == "--mode") opt.mode = value();
    else if (flag == "--qdisc") opt.qdisc = value();
    else if (flag == "--duration") opt.duration_s = std::atof(value());
    else if (flag == "--bitrate") opt.max_bitrate_mbps = std::atof(value());
    else if (flag == "--competitors") opt.competitors = std::atoi(value());
    else if (flag == "--interferers") opt.interferers = std::atoi(value());
    else if (flag == "--seed") opt.seed = std::strtoull(value(), nullptr, 10);
    else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  obs::ObsSession obs(argc, argv);
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage();
    return 2;
  }

  const auto dur = sim::Duration::from_seconds(opt.duration_s);
  trace::Trace tr;
  app::LinkKind link = app::LinkKind::kWifi;
  if (const auto kind = builtin_trace(opt.channel); kind.has_value()) {
    tr = trace::make_trace(*kind, opt.seed * 13, dur);
    link = (*kind == trace::TraceKind::kRestaurantWifi ||
            *kind == trace::TraceKind::kOfficeWifi ||
            *kind == trace::TraceKind::kEthernet)
               ? app::LinkKind::kWifi
               : app::LinkKind::kCellular;
  } else {
    try {
      tr = trace::load_csv(opt.channel, opt.channel);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot load trace: %s\n", e.what());
      return 1;
    }
  }

  app::ScenarioConfig cfg;
  cfg.channel_trace = &tr;
  cfg.ap.link = link;
  cfg.duration = dur;
  cfg.seed = opt.seed;
  cfg.video.max_bitrate_bps = opt.max_bitrate_mbps * 1e6;
  cfg.competing_bulk_flows = opt.competitors;
  cfg.interferers = opt.interferers;

  cfg.protocol = opt.protocol == "tcp" ? app::Protocol::kTcp : app::Protocol::kRtp;
  if (opt.rtp_cca == "nada") cfg.rtp_cca = transport::RtpCca::kNada;
  else if (opt.rtp_cca == "scream") cfg.rtp_cca = transport::RtpCca::kScream;
  else cfg.rtp_cca = transport::RtpCca::kGcc;
  if (opt.cca == "bbr") cfg.tcp_cca = app::TcpCcaKind::kBbr;
  else if (opt.cca == "cubic") cfg.tcp_cca = app::TcpCcaKind::kCubic;
  else if (opt.cca == "abc") cfg.tcp_cca = app::TcpCcaKind::kAbc;
  else cfg.tcp_cca = app::TcpCcaKind::kCopa;

  if (opt.mode == "zhuge") cfg.ap.mode = app::ApMode::kZhuge;
  else if (opt.mode == "fastack") cfg.ap.mode = app::ApMode::kFastAck;
  else if (opt.mode == "abc") {
    cfg.ap.mode = app::ApMode::kAbc;
    cfg.tcp_cca = app::TcpCcaKind::kAbc;  // ABC needs its sender half
  }

  if (opt.qdisc == "codel") cfg.ap.qdisc = app::QdiscKind::kCoDel;
  else if (opt.qdisc == "fq_codel") cfg.ap.qdisc = app::QdiscKind::kFqCoDel;

  const auto r = app::run_scenario(cfg);
  const auto& f = r.primary();
  std::printf("channel=%s protocol=%s mode=%s qdisc=%s seed=%llu (%.0fs)\n",
              opt.channel.c_str(), opt.protocol.c_str(), opt.mode.c_str(),
              opt.qdisc.c_str(), static_cast<unsigned long long>(opt.seed),
              opt.duration_s);
  std::printf("  network RTT     p50 %6.1f ms   p99 %7.1f ms   >200ms %6.3f%%\n",
              f.network_rtt_ms.quantile(0.5), f.network_rtt_ms.quantile(0.99),
              100.0 * f.network_rtt_ms.ratio_above(200.0));
  std::printf("  frame delay     p50 %6.1f ms   p99 %7.1f ms   >400ms %6.3f%%\n",
              f.frame_delay_ms.quantile(0.5), f.frame_delay_ms.quantile(0.99),
              100.0 * f.frame_delay_ms.ratio_above(400.0));
  std::printf("  frame rate      p50 %6.1f fps  <10fps %6.3f%%\n",
              f.frame_rate_fps.quantile(0.5),
              100.0 * f.frame_rate_fps.ratio_below(10.0));
  std::printf("  goodput %.2f Mbps, %llu/%llu frames decoded, %llu qdisc drops\n",
              f.goodput_bps / 1e6,
              static_cast<unsigned long long>(f.frames_decoded),
              static_cast<unsigned long long>(f.frames_sent),
              static_cast<unsigned long long>(r.qdisc_drops));
  if (cfg.ap.mode == app::ApMode::kZhuge && !r.prediction_error_ms.empty()) {
    std::printf("  fortune teller  median error %.2f ms over %zu predictions\n",
                r.prediction_error_ms.quantile(0.5), r.prediction_error_ms.count());
  }
  return 0;
}
