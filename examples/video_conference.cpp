// Example: a video-conference call (RTP/RTCP + GCC) on a busy home WiFi.
//
// Someone starts a large file transfer (scp-style bulk TCP) on the same
// access point every 30 seconds. We run the call three ways — plain FIFO
// AP, CoDel AP, and a Zhuge AP — and report what the viewer experiences.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/video_conference

#include <cstdio>

#include "app/scenario.hpp"
#include "obs/session.hpp"
#include "trace/synthetic.hpp"

using namespace zhuge;

namespace {

app::ScenarioResult run(app::ApMode mode, app::QdiscKind qdisc) {
  app::ScenarioConfig cfg;
  cfg.protocol = app::Protocol::kRtp;   // WebRTC-style media + TWCC feedback
  cfg.ap.mode = mode;
  cfg.ap.qdisc = qdisc;
  cfg.mcs_index = 4;                    // 39 Mbps PHY, shared with the bulk flow
  cfg.scp_periodic_competitor = true;   // file transfer toggles every 30 s
  cfg.video.fps = 24;
  cfg.video.max_bitrate_bps = 2.5e6;    // 1080p conference stream
  cfg.duration = sim::Duration::seconds(180);
  cfg.seed = 2024;
  return app::run_scenario(cfg);
}

void report(const char* label, const app::ScenarioResult& r) {
  const auto& f = r.primary();
  std::printf("  %-12s P50 RTT %5.1f ms | P99 RTT %6.1f ms | RTT>200ms %6.3f%% | "
              "frame>400ms %6.3f%% | %4llu/%llu frames\n",
              label, f.network_rtt_ms.quantile(0.5), f.network_rtt_ms.quantile(0.99),
              100.0 * f.network_rtt_ms.ratio_above(200.0),
              100.0 * f.frame_delay_ms.ratio_above(400.0),
              static_cast<unsigned long long>(f.frames_decoded),
              static_cast<unsigned long long>(f.frames_sent));
}

}  // namespace

int main(int argc, char** argv) {
  obs::ObsSession obs(argc, argv);  // --trace/--metrics, same as every bench
  std::printf("video conference on home WiFi with a periodic file transfer\n");
  std::printf("(GCC over RTP/RTCP; the transfer toggles every 30 s for 3 min)\n\n");

  report("FIFO AP", run(app::ApMode::kNone, app::QdiscKind::kFifo));
  report("CoDel AP", run(app::ApMode::kNone, app::QdiscKind::kCoDel));
  report("Zhuge AP", run(app::ApMode::kZhuge, app::QdiscKind::kFifo));

  std::printf("\nZhuge's Feedback Updater builds the TWCC reports at the AP from\n"
              "predicted per-packet delays, so GCC learns about the transfer's\n"
              "queue before delayed frames ever reach the viewer.\n");
  return 0;
}
