// Example: a cloud-gaming stream (TCP + Copa) on a fluctuating 5G link.
//
// Cloud gaming demands a ~96 ms end-to-end budget (Kämäräinen et al.,
// cited in the paper's intro). We stream over a City-5G-like channel with
// mmWave blockage fades and compare the AP modes: plain, FastAck
// (IMC '17), ABC (NSDI '20, needs host changes), and Zhuge.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/cloud_gaming

#include <cstdio>

#include "app/scenario.hpp"
#include "obs/session.hpp"
#include "trace/synthetic.hpp"

using namespace zhuge;

namespace {

app::ScenarioResult run(const trace::Trace& tr, app::ApMode mode,
                        app::TcpCcaKind cca) {
  app::ScenarioConfig cfg;
  cfg.protocol = app::Protocol::kTcp;
  cfg.tcp_cca = cca;
  cfg.ap.mode = mode;
  cfg.ap.link = app::LinkKind::kCellular;
  cfg.channel_trace = &tr;
  cfg.video.fps = 60;                  // gaming stream
  cfg.video.max_bitrate_bps = 8e6;
  cfg.video.start_bitrate_bps = 3e6;
  cfg.wan_one_way = sim::Duration::millis(10);  // nearby edge server
  cfg.duration = sim::Duration::seconds(180);
  cfg.seed = 99;
  return app::run_scenario(cfg);
}

void report(const char* label, const app::ScenarioResult& r) {
  const auto& f = r.primary();
  // 96 ms budget minus ~2 frame-times of encode/decode ~= 60 ms transport.
  const double budget_ms = 96.0;
  std::printf("  %-12s frame>budget %6.3f%% | P99 frame %6.1f ms | "
              "fps<30 %6.3f%% | stream %4.2f Mbps\n",
              label, 100.0 * f.frame_delay_ms.ratio_above(budget_ms),
              f.frame_delay_ms.quantile(0.99),
              100.0 * f.frame_rate_fps.ratio_below(30.0), f.goodput_bps / 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  obs::ObsSession obs(argc, argv);  // --trace/--metrics, same as every bench
  std::printf("cloud gaming over a City-5G-like link (60 fps, Copa over TCP)\n");
  std::printf("(the paper's intro: cloud gaming demands <96 ms; 5G mmWave fades\n"
              " are exactly the tail events Zhuge targets)\n\n");
  const auto tr = trace::make_trace(trace::TraceKind::kCity5G, 12,
                                    sim::Duration::seconds(180));

  report("plain AP", run(tr, app::ApMode::kNone, app::TcpCcaKind::kCopa));
  report("FastAck AP", run(tr, app::ApMode::kFastAck, app::TcpCcaKind::kCopa));
  report("ABC", run(tr, app::ApMode::kAbc, app::TcpCcaKind::kAbc));
  report("Zhuge AP", run(tr, app::ApMode::kZhuge, app::TcpCcaKind::kCopa));

  std::printf("\nZhuge delays Copa's ACKs at the AP by the predicted queueing\n"
              "deltas, so the sender backs off before a blockage fade strands a\n"
              "whole flight of frames — without touching the game server (unlike\n"
              "ABC, which needs a new sender CCA and receiver echo support).\n");
  return 0;
}
