// Example: working with bandwidth traces directly.
//
// Generates each synthetic trace class, prints its fluctuation profile
// (the Fig. 3(b) statistic), exports one to CSV, reloads it, and runs a
// quick scenario on the reloaded copy — the workflow for plugging in your
// own measured traces.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/trace_explorer

#include <cstdio>
#include <filesystem>

#include "app/scenario.hpp"
#include "obs/session.hpp"
#include "trace/synthetic.hpp"

using namespace zhuge;

int main(int argc, char** argv) {
  obs::ObsSession obs(argc, argv);  // --trace/--metrics, same as every bench
  const auto dur = sim::Duration::seconds(300);

  std::printf("synthetic trace classes and their ABW-fluctuation profiles:\n");
  std::printf("  %-28s %10s %10s %12s\n", "trace", "mean Mbps", "min Mbps",
              "P[drop>10x]");
  for (const auto kind :
       {trace::TraceKind::kRestaurantWifi, trace::TraceKind::kOfficeWifi,
        trace::TraceKind::kIndoorMixed45G, trace::TraceKind::kCity4G,
        trace::TraceKind::kCity5G, trace::TraceKind::kEthernet}) {
    const auto tr = trace::make_trace(kind, 1, dur);
    double min_rate = tr.samples().front().rate_bps;
    for (const auto& s : tr.samples()) min_rate = std::min(min_rate, s.rate_bps);
    const auto stats = trace::abw_reduction_stats(tr);
    std::printf("  %-28s %10.1f %10.2f %11.2f%%\n", trace::long_name(kind),
                tr.mean_rate_bps() / 1e6, min_rate / 1e6,
                100.0 * stats.fraction_above(10.0));
  }

  // Export + reload round trip (use this format for your own traces:
  // "time_ms,rate_mbps" per line).
  const std::string path = "/tmp/zhuge_example_trace.csv";
  const auto original = trace::make_trace(trace::TraceKind::kRestaurantWifi, 1, dur);
  trace::save_csv(original, path);
  const auto reloaded = trace::load_csv(path, "my-trace");
  std::printf("\nexported %zu samples to %s and reloaded them\n",
              original.samples().size(), path.c_str());

  // Drive a scenario with the reloaded trace.
  app::ScenarioConfig cfg;
  cfg.channel_trace = &reloaded;
  cfg.ap.mode = app::ApMode::kZhuge;
  cfg.duration = sim::Duration::seconds(60);
  cfg.seed = 1;
  const auto r = app::run_scenario(cfg);
  std::printf("60 s GCC/RTP run on the reloaded trace with Zhuge: "
              "P99 RTT %.1f ms, %llu frames decoded\n",
              r.primary().network_rtt_ms.quantile(0.99),
              static_cast<unsigned long long>(r.primary().frames_decoded));
  std::filesystem::remove(path);
  return 0;
}
