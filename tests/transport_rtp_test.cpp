// Integration-style tests for the RTP/RTCP stack: sender and receiver
// wired back to back, with fault injection for NACK recovery and
// feedback-driven rate control.

#include <gtest/gtest.h>

#include <functional>

#include "rtc/video.hpp"
#include "sim/simulator.hpp"
#include "transport/rtp_receiver.hpp"
#include "transport/rtp_sender.hpp"

namespace zhuge::transport {
namespace {

using net::Packet;
using sim::Duration;
using sim::Simulator;
using sim::TimePoint;
using namespace sim::literals;

struct Loop {
  Simulator sim;
  sim::Rng rng{1};
  net::PacketUidSource uids;
  net::FlowId flow{1, 2, 10, 20, 17};
  rtc::FrameStats stats;
  std::unique_ptr<RtpSender> sender;
  std::unique_ptr<RtpReceiver> receiver;
  Duration one_way = 10_ms;
  std::function<bool(const Packet&)> drop_data;
  std::function<void(const Packet&)> rtcp_tap;  ///< observe uplink RTCP

  explicit Loop(RtpSender::Config scfg = {}, RtpReceiver::Config rcfg = {}) {
    sender = std::make_unique<RtpSender>(
        sim, rng, flow, scfg, uids, [this](Packet p) {
          if (drop_data && drop_data(p)) return;
          sim.schedule_after(one_way, [this, p = std::move(p)]() mutable {
            receiver->on_rtp(p);
          });
        });
    receiver = std::make_unique<RtpReceiver>(
        sim, rcfg, uids,
        [this](Packet p) {
          if (rtcp_tap) rtcp_tap(p);
          sim.schedule_after(one_way, [this, p = std::move(p)]() mutable {
            sender->on_rtcp(p);
          });
        },
        stats);
  }
};

TEST(RtpLoop, DecodesAllFramesOnCleanPath) {
  Loop loop;
  loop.sender->start();
  loop.sim.run_until(TimePoint::zero() + 5_s);
  // 24 fps for 5 s = 120 frames; allow the in-flight tail.
  EXPECT_GE(loop.stats.frames_decoded(), 115u);
  EXPECT_EQ(loop.sender->retransmissions(), 0u);
  // Frame delay ~ one-way + packetisation, far below 100 ms.
  EXPECT_LT(loop.stats.frame_delays_ms().quantile(0.99), 100.0);
}

TEST(RtpLoop, GccRampsUpTowardMax) {
  RtpSender::Config cfg;
  cfg.video.max_bitrate_bps = 4e6;
  cfg.gcc.max_rate_bps = 4e6;
  Loop loop(cfg);
  loop.sender->start();
  loop.sim.run_until(TimePoint::zero() + 30_s);
  // Clean path: GCC should approach the encoder cap.
  EXPECT_GT(loop.sender->target_rate_bps(), 3e6);
  EXPECT_GT(loop.sender->encoder_rate_bps(), 2.5e6);
}

TEST(RtpLoop, NackRecoversLostPackets) {
  Loop loop;
  sim::Rng drop_rng(7);
  int dropped = 0;
  loop.drop_data = [&](const Packet& p) {
    if (p.is_rtp() && !p.rtp().retransmission && drop_rng.chance(0.05)) {
      ++dropped;
      return true;
    }
    return false;
  };
  loop.sender->start();
  loop.sim.run_until(TimePoint::zero() + 10_s);
  EXPECT_GT(dropped, 0);
  EXPECT_GT(loop.sender->retransmissions(), 0u);
  EXPECT_GT(loop.receiver->nacks_sent(), 0u);
  // Nearly every frame still decodes thanks to NACK recovery.
  EXPECT_GE(loop.stats.frames_decoded(), 230u);
}

TEST(RtpLoop, StallSkipAdvancesPastUnrecoverableFrame) {
  RtpReceiver::Config rcfg;
  rcfg.stall_timeout = 500_ms;
  Loop loop({}, rcfg);
  // Drop ALL packets of frame 10, including retransmissions.
  loop.drop_data = [](const Packet& p) {
    return p.is_rtp() && p.rtp().frame_id == 10;
  };
  loop.sender->start();
  loop.sim.run_until(TimePoint::zero() + 10_s);
  // The decoder skipped frame 10 and kept going.
  EXPECT_GT(loop.receiver->next_decode_frame(), 11u);
  EXPECT_GE(loop.stats.frames_decoded(), 200u);
}

TEST(RtpLoop, ReceiverReportsCarryLossFraction) {
  Loop loop;
  sim::Rng drop_rng(7);
  double last_loss = -1.0;
  // Observe RTCP on the way back to inspect receiver reports.
  loop.rtcp_tap = [&](const Packet& p) {
    if (p.is_rtcp()) {
      if (const auto* rr =
              std::get_if<net::RtcpReceiverReport>(&p.rtcp().payload)) {
        last_loss = rr->loss_fraction;
      }
    }
  };
  loop.drop_data = [&](const Packet& p) {
    return p.is_rtp() && !p.rtp().retransmission && drop_rng.chance(0.2);
  };
  loop.sender->start();
  loop.sim.run_until(TimePoint::zero() + 5_s);
  EXPECT_GT(last_loss, 0.02);
}

TEST(VideoEncoder, TracksTargetBitrate) {
  sim::Rng rng(1);
  rtc::VideoConfig cfg;
  cfg.size_jitter_sigma = 0.0;
  cfg.iframe_interval = 0;
  rtc::VideoEncoder enc(cfg, rng);
  double total = 0;
  for (int i = 0; i < 240; ++i) total += static_cast<double>(enc.next_frame_bytes(2e6));
  const double rate = total * 8.0 / 10.0;  // 240 frames at 24 fps = 10 s
  EXPECT_NEAR(rate, 2e6, 0.1e6);
}

TEST(VideoEncoder, IframesLargerButAverageHolds) {
  sim::Rng rng(1);
  rtc::VideoConfig cfg;
  cfg.size_jitter_sigma = 0.0;
  cfg.iframe_interval = 48;
  cfg.iframe_ratio = 3.0;
  cfg.rate_adaptation_alpha = 1.0;
  rtc::VideoEncoder enc(cfg, rng);
  std::vector<std::uint64_t> sizes;
  for (int i = 0; i < 96; ++i) sizes.push_back(enc.next_frame_bytes(2e6));
  EXPECT_GT(sizes[0], 2 * sizes[1]);   // I-frame ~3x P-frame
  EXPECT_GT(sizes[48], 2 * sizes[49]);
  double total = 0;
  for (auto s : sizes) total += static_cast<double>(s);
  EXPECT_NEAR(total * 8.0 / 4.0, 2e6, 0.15e6);  // 96 frames = 4 s
}

TEST(VideoEncoder, RespectsMinimumBitrate) {
  sim::Rng rng(1);
  rtc::VideoConfig cfg;
  cfg.min_bitrate_bps = 300e3;
  rtc::VideoEncoder enc(cfg, rng);
  for (int i = 0; i < 50; ++i) (void)enc.next_frame_bytes(1.0);  // absurd target
  EXPECT_GE(enc.encoder_rate_bps(), 300e3 * 0.99);
}

TEST(FrameStats, PerSecondRates) {
  rtc::FrameStats fs;
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < 24; ++i) {
      const TimePoint t = TimePoint::zero() + Duration::seconds(s) +
                          Duration::millis(i * 41);
      fs.on_frame_decoded(t - 30_ms, t);
    }
  }
  const auto rates = fs.frame_rates(0, 3);
  EXPECT_DOUBLE_EQ(rates.quantile(0.5), 24.0);
  EXPECT_DOUBLE_EQ(rates.ratio_below(10.0), 0.0);
  // A window past the data counts as zero fps.
  const auto empty = fs.frame_rates(5, 8);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

}  // namespace
}  // namespace zhuge::transport
