// Chaos suite: every fault class from the standard suite injected into an
// end-to-end Zhuge run, judged on recovery (goodput back within tolerance
// after the fault clears), zero stranded feedback, and a clean invariant
// checker. Also pins down determinism: a faulty run is exactly as
// reproducible as a clean one.

#include <gtest/gtest.h>

#include <string>

#include "app/chaos.hpp"
#include "app/scenario.hpp"
#include "obs/invariants.hpp"

namespace zhuge::app {
namespace {

constexpr std::uint64_t kSeed = 11;

/// Run one named case from the standard suite with the invariant checker
/// forced on (Release builds default it off).
ChaosVerdict run_named(const std::string& name) {
  const bool prev = obs::invariants_enabled();
  obs::set_invariants_enabled(true);
  obs::invariants().clear();
  ChaosVerdict v;
  bool found = false;
  for (const ChaosCase& c : standard_chaos_suite(kSeed)) {
    if (c.name == name) {
      v = run_chaos_case(c);
      found = true;
      break;
    }
  }
  obs::set_invariants_enabled(prev);
  EXPECT_TRUE(found) << "no chaos case named " << name;
  return v;
}

TEST(Chaos, DownlinkBlackoutRecovers) {
  const ChaosVerdict v = run_named("downlink_blackout");
  EXPECT_TRUE(v.passed) << format_verdict(v);
}

TEST(Chaos, UplinkStarvationFailsOpenAndRecovers) {
  const ChaosVerdict v = run_named("uplink_starvation");
  EXPECT_TRUE(v.passed) << format_verdict(v);
  EXPECT_GE(v.degrades, 1u);    // the watchdog actually fired
  EXPECT_GE(v.reactivates, 1u); // and the flow came back
}

TEST(Chaos, WanBurstLossRecovers) {
  const ChaosVerdict v = run_named("wan_burst_loss");
  EXPECT_TRUE(v.passed) << format_verdict(v);
  EXPECT_GT(v.fault_drops, 0u);  // the fault was actually injected
}

TEST(Chaos, DuplicationAndReorderingKeepTwccMonotone) {
  const ChaosVerdict v = run_named("dup_reorder");
  EXPECT_TRUE(v.passed) << format_verdict(v);
}

TEST(Chaos, UplinkFadeRecovers) {
  const ChaosVerdict v = run_named("uplink_fade");
  EXPECT_TRUE(v.passed) << format_verdict(v);
}

TEST(Chaos, ApRestartMidFlowRecovers) {
  const ChaosVerdict v = run_named("ap_restart");
  EXPECT_TRUE(v.passed) << format_verdict(v);
}

TEST(Chaos, ClockJumpsRecover) {
  const ChaosVerdict v = run_named("clock_jump");
  EXPECT_TRUE(v.passed) << format_verdict(v);
}

TEST(Chaos, FaultyRunsAreDeterministic) {
  // Same (config, seed) must give a bit-identical faulty run: the fault
  // substreams may not perturb (or be perturbed by) the rest of the sim.
  ChaosCase chosen;
  for (const ChaosCase& c : standard_chaos_suite(kSeed)) {
    if (c.name == "wan_burst_loss") chosen = c;
  }
  const ScenarioResult a = run_scenario(chosen.config);
  const ScenarioResult b = run_scenario(chosen.config);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.fault_drops, b.fault_drops);
  EXPECT_EQ(a.qdisc_drops, b.qdisc_drops);
  EXPECT_EQ(a.robustness.degrades, b.robustness.degrades);
  EXPECT_EQ(a.robustness.flushed_acks, b.robustness.flushed_acks);
  EXPECT_DOUBLE_EQ(a.primary().goodput_bps, b.primary().goodput_bps);
}

TEST(Chaos, CleanRunUnperturbedByFaultPlanScaffolding) {
  // An all-defaults FaultPlan must not change the simulation at all: no
  // injector is created, so the clean run's RNG draws stay identical.
  ChaosCase chosen;
  for (const ChaosCase& c : standard_chaos_suite(kSeed)) {
    if (c.name == "downlink_blackout") chosen = c;
  }
  ScenarioConfig clean = chosen.config;
  clean.faults = {};
  const ScenarioResult a = run_scenario(clean);
  ScenarioConfig still_clean = chosen.config;
  still_clean.faults = {};
  still_clean.faults.downlink_wan.loss_prob = 0.0;  // explicit no-op
  const ScenarioResult b = run_scenario(still_clean);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_DOUBLE_EQ(a.primary().goodput_bps, b.primary().goodput_bps);
}

}  // namespace
}  // namespace zhuge::app
