// Unit tests for the fault-injection subsystem and the fail-open
// robustness machinery it exercises: the Injector itself (blackouts,
// windowed probabilistic faults, burst loss, duplication, reordering,
// substream determinism), link-level loss + fault hooks, the AckScheduler
// flush/bound contract, in-band TWCC dedup under duplicated/reordered
// input, and the ZhugeFlow watchdog degrade/reactivate state machine.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/feedback_inband.hpp"
#include "core/feedback_oob.hpp"
#include "core/zhuge.hpp"
#include "fault/fault.hpp"
#include "net/link.hpp"
#include "obs/invariants.hpp"
#include "queue/fifo.hpp"
#include "sim/simulator.hpp"

namespace zhuge::fault {
namespace {

using net::Packet;
using sim::Duration;
using sim::Simulator;
using sim::TimePoint;
using namespace sim::literals;

TimePoint at(std::int64_t ms) { return TimePoint::zero() + Duration::millis(ms); }

Packet make_packet(std::uint64_t uid, std::uint32_t bytes = 1200) {
  Packet p;
  p.uid = uid;
  p.size_bytes = bytes;
  return p;
}

/// RAII: enable the invariant checker for one test and restore after.
struct InvariantScope {
  bool prev = obs::invariants_enabled();
  InvariantScope() {
    obs::set_invariants_enabled(true);
    obs::invariants().clear();
  }
  ~InvariantScope() {
    obs::invariants().clear();
    obs::set_invariants_enabled(prev);
  }
};

TEST(Injector, BlackoutDropsOnlyInsideWindow) {
  Simulator sim;
  std::vector<std::uint64_t> uids;
  InjectorConfig cfg;
  cfg.blackouts = {Window{at(10), at(20)}};
  Injector inj(sim, sim::Rng(1, 7), cfg,
               [&](Packet p) { uids.push_back(p.uid); });
  for (std::int64_t t : {5, 15, 25}) {
    sim.schedule_at(at(t), [&inj, t] { inj.handle(make_packet(std::uint64_t(t))); });
  }
  sim.run();
  EXPECT_EQ(uids, (std::vector<std::uint64_t>{5, 25}));
  EXPECT_EQ(inj.blackout_drops(), 1u);
  EXPECT_EQ(inj.passed(), 2u);
}

TEST(Injector, ActiveWindowGatesProbabilisticLoss) {
  Simulator sim;
  std::vector<std::uint64_t> uids;
  InjectorConfig cfg;
  cfg.loss_prob = 1.0;  // certain loss, but only while active
  cfg.active = {Window{at(10), at(20)}};
  Injector inj(sim, sim::Rng(1, 7), cfg,
               [&](Packet p) { uids.push_back(p.uid); });
  for (std::int64_t t : {5, 15, 25}) {
    sim.schedule_at(at(t), [&inj, t] { inj.handle(make_packet(std::uint64_t(t))); });
  }
  sim.run();
  EXPECT_EQ(uids, (std::vector<std::uint64_t>{5, 25}));
  EXPECT_EQ(inj.random_drops(), 1u);
}

TEST(Injector, DuplicationDeliversTwice) {
  Simulator sim;
  std::vector<std::uint64_t> uids;
  InjectorConfig cfg;
  cfg.dup_prob = 1.0;
  Injector inj(sim, sim::Rng(1, 7), cfg,
               [&](Packet p) { uids.push_back(p.uid); });
  for (std::uint64_t i = 0; i < 10; ++i) {
    sim.schedule_at(at(std::int64_t(i)), [&inj, i] { inj.handle(make_packet(i)); });
  }
  sim.run();
  EXPECT_EQ(uids.size(), 20u);
  EXPECT_EQ(inj.duplicated(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(std::count(uids.begin(), uids.end(), i), 2);
  }
}

TEST(Injector, ReorderingProducesInversions) {
  Simulator sim;
  std::vector<std::uint64_t> uids;
  InjectorConfig cfg;
  cfg.reorder_prob = 0.3;
  cfg.reorder_delay = 5_ms;
  Injector inj(sim, sim::Rng(1, 7), cfg,
               [&](Packet p) { uids.push_back(p.uid); });
  // 100 packets 1 ms apart: a reordered packet lands 5 ms late, so up to
  // five successors overtake it.
  for (std::uint64_t i = 0; i < 100; ++i) {
    sim.schedule_at(at(std::int64_t(i)), [&inj, i] { inj.handle(make_packet(i)); });
  }
  sim.run();
  ASSERT_EQ(uids.size(), 100u);  // reordering never loses packets
  EXPECT_GT(inj.reordered(), 10u);
  EXPECT_LT(inj.reordered(), 60u);
  std::uint64_t inversions = 0;
  for (std::size_t i = 1; i < uids.size(); ++i) {
    if (uids[i] < uids[i - 1]) ++inversions;
  }
  EXPECT_GT(inversions, 0u);
}

TEST(Injector, GilbertElliottStickyBadStateDropsEverything) {
  Simulator sim;
  std::uint64_t delivered = 0;
  InjectorConfig cfg;
  cfg.burst = GilbertElliott{/*p_enter_bad=*/1.0, /*p_exit_bad=*/0.0,
                             /*loss_good=*/0.0, /*loss_bad=*/1.0};
  Injector inj(sim, sim::Rng(1, 7), cfg, [&](Packet) { ++delivered; });
  for (std::uint64_t i = 0; i < 50; ++i) {
    sim.schedule_at(at(std::int64_t(i)), [&inj, i] { inj.handle(make_packet(i)); });
  }
  sim.run();
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(inj.burst_drops(), 50u);
  EXPECT_TRUE(inj.in_burst());
}

TEST(Injector, FadeDelaysWithoutDropping) {
  Simulator sim;
  std::vector<TimePoint> deliveries;
  InjectorConfig cfg;
  cfg.fade_delay = 60_ms;
  cfg.fades = {Window{at(10), at(20)}};
  Injector inj(sim, sim::Rng(1, 7), cfg,
               [&](Packet) { deliveries.push_back(sim.now()); });
  sim.schedule_at(at(5), [&] { inj.handle(make_packet(0)); });
  sim.schedule_at(at(15), [&] { inj.handle(make_packet(1)); });
  sim.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], at(5));        // outside the fade: immediate
  EXPECT_EQ(deliveries[1], at(15) + 60_ms);  // inside: fade_delay added
}

TEST(Injector, SameSeedSameOutcome) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim;
    std::vector<std::uint64_t> uids;
    InjectorConfig cfg;
    cfg.loss_prob = 0.2;
    cfg.dup_prob = 0.15;
    cfg.reorder_prob = 0.15;
    cfg.burst = GilbertElliott{0.05, 0.3, 0.0, 0.8};
    Injector inj(sim, sim::Rng(seed, 7), cfg,
                 [&](Packet p) { uids.push_back(p.uid); });
    for (std::uint64_t i = 0; i < 300; ++i) {
      sim.schedule_at(at(std::int64_t(i)), [&inj, i] { inj.handle(make_packet(i)); });
    }
    sim.run();
    return std::tuple{uids, inj.dropped(), inj.duplicated(), inj.reordered()};
  };
  EXPECT_EQ(run_once(42), run_once(42));  // bit-identical packet outcome
  EXPECT_NE(std::get<0>(run_once(42)), std::get<0>(run_once(43)));
}

TEST(PointToPointLink, RandomLossAccountsEveryPacket) {
  auto run_once = [] {
    Simulator sim;
    sim::Rng rng(9);
    std::uint64_t delivered = 0;
    net::PointToPointLink::Config cfg;
    cfg.rate_bps = 1e9;
    cfg.loss_prob = 0.5;
    net::PointToPointLink link(sim, cfg, [&](Packet) { ++delivered; });
    link.set_rng(&rng);
    for (std::uint64_t i = 0; i < 200; ++i) link.send(make_packet(i));
    sim.run();
    return std::pair{delivered, link.random_drops()};
  };
  const auto [delivered, lost] = run_once();
  EXPECT_EQ(delivered + lost, 200u);  // no packet unaccounted for
  EXPECT_GT(lost, 60u);
  EXPECT_LT(lost, 140u);
  EXPECT_EQ(run_once(), run_once());  // same seed, same realization
}

TEST(PointToPointLink, FaultHookInterposesOnDelivery) {
  Simulator sim;
  std::uint64_t sink_got = 0;
  net::PointToPointLink link(sim, {}, [&](Packet) { ++sink_got; });
  std::uint64_t hook_got = 0;
  link.set_fault_hook([&](Packet) { ++hook_got; });  // swallow everything
  for (std::uint64_t i = 0; i < 5; ++i) link.send(make_packet(i));
  sim.run();
  EXPECT_EQ(hook_got, 5u);
  EXPECT_EQ(sink_got, 0u);  // hook replaced the sink entirely
}

TEST(AckScheduler, FlushReleasesEverythingInOrderNow) {
  Simulator sim;
  std::vector<std::pair<std::uint64_t, TimePoint>> out;
  core::AckScheduler sched(sim, [&](Packet p) { out.emplace_back(p.uid, sim.now()); });
  sched.hold(make_packet(1), at(100));
  sched.hold(make_packet(2), at(200));
  std::size_t flushed = 0;
  sim.schedule_at(at(10), [&] { flushed = sched.flush(); });
  sim.run();
  EXPECT_EQ(flushed, 2u);
  ASSERT_EQ(out.size(), 2u);  // released at flush time, not at 100/200 ms
  EXPECT_EQ(out[0], std::make_pair<std::uint64_t>(1, at(10)));
  EXPECT_EQ(out[1], std::make_pair<std::uint64_t>(2, at(10)));
  EXPECT_EQ(sched.pending(), 0u);
}

TEST(AckScheduler, DestructorCancelsPendingTimer) {
  Simulator sim;
  std::uint64_t released = 0;
  {
    core::AckScheduler sched(sim, [&](Packet) { ++released; });
    sched.hold(make_packet(1), at(100));
  }  // scheduler destroyed with a timer armed
  sim.run();  // must not fire into the dead scheduler
  EXPECT_EQ(released, 0u);
}

#if ZHUGE_OBS_ENABLED  // the macro compiles to nothing under the kill switch
TEST(AckScheduler, HoldBoundInvariantFires) {
  InvariantScope scope;
  Simulator sim;
  core::AckScheduler sched(sim, [](Packet) {});
  sched.set_max_hold(10_ms);
  sched.hold(make_packet(1), at(100));  // 100 ms hold against a 10 ms cap
  sim.run();
  EXPECT_EQ(obs::invariants().count("feedback.hold_bound"), 1u);
}

TEST(AckScheduler, AckOrderInvariantFiresOnRegression) {
  InvariantScope scope;
  Simulator sim;
  core::AckScheduler sched(sim, [](Packet) {});
  sched.hold(make_packet(1), at(100));
  sched.hold(make_packet(2), at(50));  // earlier than the previous release
  EXPECT_EQ(obs::invariants().count("feedback.ack_order"), 1u);
  sim.run();
}
#endif  // ZHUGE_OBS_ENABLED

TEST(InbandUpdater, DedupesAndSortsFaultyRtpInput) {
  InvariantScope scope;
  Simulator sim;
  std::vector<Packet> sent;
  net::FlowId flow{1, 100, 5000, 6000, 17};
  core::InbandFeedbackUpdater u(sim, {}, flow, /*ssrc=*/7,
                                [&](Packet p) { sent.push_back(std::move(p)); });
  // Duplicated and reordered downlink RTP, as an injector would produce.
  sim.schedule_at(at(0), [&] {
    for (std::uint16_t seq : {std::uint16_t{5}, std::uint16_t{7},
                              std::uint16_t{6}, std::uint16_t{6},
                              std::uint16_t{5}}) {
      net::RtpHeader h;
      h.twcc_seq = seq;
      u.on_rtp_packet(h, 10_ms);
    }
  });
  sim.run_until(at(200));
  ASSERT_EQ(sent.size(), 1u);
  const auto& fb = std::get<net::TwccFeedback>(sent[0].rtcp().payload);
  ASSERT_EQ(fb.entries.size(), 3u);  // 5 records -> 3 unique sequences
  EXPECT_EQ(fb.entries[0].twcc_seq, 5);
  EXPECT_EQ(fb.entries[1].twcc_seq, 6);
  EXPECT_EQ(fb.entries[2].twcc_seq, 7);
  EXPECT_EQ(obs::invariants().count("feedback.twcc_monotone"), 0u);
}

TEST(InbandUpdater, FlushNowDrainsAndDisarms) {
  Simulator sim;
  std::vector<Packet> sent;
  net::FlowId flow{1, 100, 5000, 6000, 17};
  core::InbandConfig cfg;
  cfg.max_entries_per_feedback = 2;  // force multiple feedback packets
  core::InbandFeedbackUpdater u(sim, cfg, flow, 7,
                                [&](Packet p) { sent.push_back(std::move(p)); });
  sim.schedule_at(at(0), [&] {
    for (std::uint16_t seq = 0; seq < 5; ++seq) {
      net::RtpHeader h;
      h.twcc_seq = seq;
      u.on_rtp_packet(h, 10_ms);
    }
    u.flush_now();
    EXPECT_EQ(u.pending_entries(), 0u);
    EXPECT_EQ(sent.size(), 3u);  // ceil(5 / 2) packets, all at t=0
  });
  sim.run();           // nothing left scheduled: the flush timer is gone
  EXPECT_EQ(sent.size(), 3u);
}

// ---- ZhugeFlow fail-open watchdog ----------------------------------------

core::ZhugeConfig watchdog_config() {
  core::ZhugeConfig cfg;
  cfg.oob.delta_smoothing_alpha = 1.0;  // literal Algorithm 1
  cfg.watchdog.feedback_timeout = 200_ms;
  cfg.watchdog.recovery_settle = 100_ms;
  return cfg;
}

Packet tcp_data(const net::FlowId& flow) {
  Packet p;
  p.flow = flow;
  p.size_bytes = 1240;
  p.header = net::TcpHeader{};
  return p;
}

Packet tcp_ack(const net::FlowId& flow, std::uint64_t uid) {
  Packet p;
  p.uid = uid;
  p.flow = flow.reversed();
  net::TcpHeader h;
  h.is_ack = true;
  p.header = h;
  return p;
}

TEST(Watchdog, FeedbackSilenceFailsOpenThenRecovers) {
  Simulator sim;
  sim::Rng rng(1);
  net::FlowId flow{1, 100, 5000, 6000, 6};
  std::vector<std::uint64_t> to_server;
  core::ZhugeFlow zf(sim, rng, flow, watchdog_config(),
                     [&](Packet p) { to_server.push_back(p.uid); });
  queue::DropTailFifo q(-1);

  // Healthy phase: downlink data flows and one ACK is delayed.
  sim.schedule_at(at(0), [&] {
    Packet d = tcp_data(flow);
    zf.on_downlink(d, q);
  });
  sim.schedule_at(at(10), [&] {
    EXPECT_EQ(zf.handle_uplink(tcp_ack(flow, 1)), core::UplinkAction::kDelay);
    zf.check_watchdog(sim.now());
    EXPECT_EQ(zf.mode(), core::FlowMode::kActive);
  });

  // Uplink goes silent while downlink keeps flowing: at 300 ms the
  // silence (290 ms) exceeds the 200 ms timeout and downlink is fresh.
  sim.schedule_at(at(300), [&] {
    Packet d = tcp_data(flow);
    zf.on_downlink(d, q);
    zf.check_watchdog(sim.now());
    EXPECT_EQ(zf.mode(), core::FlowMode::kDegraded);
    EXPECT_EQ(zf.pending_feedback(), 0u);  // degrade flushed everything
  });

  // Degraded: uplink passes through untouched, still inside settle.
  sim.schedule_at(at(350), [&] {
    EXPECT_EQ(zf.handle_uplink(tcp_ack(flow, 2)), core::UplinkAction::kForward);
    zf.check_watchdog(sim.now());
    EXPECT_EQ(zf.mode(), core::FlowMode::kDegraded);  // settle not elapsed
  });

  // Feedback demonstrably alive after the settle period: the ladder steps
  // down one level per probe (HoldOnly -> ClampedPredict), not straight
  // back to Full.
  sim.schedule_at(at(450), [&] {
    EXPECT_EQ(zf.handle_uplink(tcp_ack(flow, 3)), core::UplinkAction::kForward);
    zf.check_watchdog(sim.now());
    EXPECT_EQ(zf.mode(), core::FlowMode::kDegraded);
    EXPECT_EQ(zf.level(), obs::LadderLevel::kClampedPredict);
  });

  // Another settle period with live feedback completes the recovery.
  sim.schedule_at(at(600), [&] {
    EXPECT_EQ(zf.handle_uplink(tcp_ack(flow, 4)), core::UplinkAction::kDelay);
    zf.check_watchdog(sim.now());
    EXPECT_EQ(zf.mode(), core::FlowMode::kActive);
    EXPECT_EQ(zf.level(), obs::LadderLevel::kFull);
  });

  sim.run();
  EXPECT_EQ(zf.degrade_count(), 1u);
  EXPECT_EQ(zf.reactivate_count(), 2u);
  // Every ACK reached the server: 1 (released or flushed), 2 and 3
  // (degraded pass-through), 4 (held then released).
  std::vector<std::uint64_t> sorted = to_server;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::uint64_t>{1, 2, 3, 4}));
}

TEST(Watchdog, PredictionDivergenceFailsOpen) {
  Simulator sim;
  sim::Rng rng(1);
  net::FlowId flow{1, 100, 5000, 6000, 6};
  core::ZhugeConfig cfg = watchdog_config();
  cfg.watchdog.divergence_threshold_ms = 50.0;
  cfg.watchdog.divergence_alpha = 0.5;
  cfg.watchdog.min_divergence_samples = 5;
  core::ZhugeFlow zf(sim, rng, flow, cfg, [](Packet) {});
  queue::DropTailFifo q(-1);

  sim.schedule_at(at(200), [&] {
    // Fortunes predicted 0 ms of queueing; packets actually waited 200 ms.
    for (int i = 0; i < 6; ++i) {
      Packet p = tcp_data(flow);
      p.predicted_delay_ms = 0.0;
      p.ap_enqueue_time = at(0);
      zf.on_dequeue(p, sim.now());
    }
    zf.check_watchdog(sim.now());
  });
  sim.run();
  EXPECT_EQ(zf.mode(), core::FlowMode::kDegraded);
  EXPECT_EQ(zf.degrade_count(), 1u);
}

TEST(Watchdog, DisabledNeverDegrades) {
  Simulator sim;
  sim::Rng rng(1);
  net::FlowId flow{1, 100, 5000, 6000, 6};
  core::ZhugeConfig cfg = watchdog_config();
  cfg.watchdog.enabled = false;
  core::ZhugeFlow zf(sim, rng, flow, cfg, [](Packet) {});
  queue::DropTailFifo q(-1);
  sim.schedule_at(at(0), [&] {
    Packet d = tcp_data(flow);
    zf.on_downlink(d, q);
  });
  sim.schedule_at(at(10), [&] { (void)zf.handle_uplink(tcp_ack(flow, 1)); });
  sim.schedule_at(at(900), [&] {
    Packet d = tcp_data(flow);
    zf.on_downlink(d, q);
    zf.check_watchdog(sim.now());
  });
  sim.run();
  EXPECT_EQ(zf.mode(), core::FlowMode::kActive);
  EXPECT_EQ(zf.degrade_count(), 0u);
}

TEST(ZhugeFlow, TeardownFlushesHeldFeedback) {
  Simulator sim;
  sim::Rng rng(1);
  net::FlowId flow{1, 100, 5000, 6000, 6};
  std::vector<std::uint64_t> to_server;
  core::ZhugeFlow zf(sim, rng, flow, watchdog_config(),
                     [&](Packet p) { to_server.push_back(p.uid); });
  queue::DropTailFifo q(-1);

  sim.schedule_at(at(0), [&] {
    // Growing data delays so the next ACK is held, not forwarded.
    Packet d1 = tcp_data(flow);
    zf.on_downlink(d1, q);
  });
  sim.schedule_at(at(1), [&] {
    Packet d2 = tcp_data(flow);
    d2.size_bytes = 30'000;  // bigger fortune -> positive delta -> delay
    zf.on_downlink(d2, q);
  });
  sim.schedule_at(at(2), [&] {
    (void)zf.handle_uplink(tcp_ack(flow, 7));
    const std::size_t pending = zf.pending_feedback();
    const std::size_t flushed = zf.teardown();
    EXPECT_EQ(flushed, pending);
    EXPECT_EQ(zf.pending_feedback(), 0u);
    EXPECT_EQ(zf.teardown(), 0u);  // idempotent
    // Whether the ACK was held or forwarded, it must be at the server now.
    EXPECT_EQ(to_server, (std::vector<std::uint64_t>{7}));
  });
  sim.run();
}

}  // namespace
}  // namespace zhuge::fault
