// Golden-trace regression: recompute each canonical scenario and compare
// its full result fingerprint against the pinned record in tests/golden/.
// Any behavioural drift anywhere in the stack fails here; intentional
// changes are blessed with `scenario_run --update-golden`.

#include <gtest/gtest.h>

#include <string>

#include "app/golden.hpp"

namespace zhuge::app {
namespace {

const std::string kGoldenDir = ZHUGE_GOLDEN_DIR;

TEST(Golden, CanonicalScenariosMatchPinnedRecords) {
  for (const auto& name : golden_scenario_names()) {
    SCOPED_TRACE(name);
    std::string err;
    const auto expected = load_golden_file(kGoldenDir + "/" + name + ".json",
                                           &err);
    ASSERT_TRUE(expected.has_value()) << err;
    const auto actual = compute_golden(name);
    ASSERT_TRUE(actual.has_value());
    const auto diffs = compare_golden(*expected, *actual);
    EXPECT_TRUE(diffs.empty())
        << "golden drift — if intentional, run scenario_run "
           "--update-golden:\n  " +
               [&diffs] {
                 std::string all;
                 for (const auto& d : diffs) all += d + "\n  ";
                 return all;
               }();
  }
}

TEST(Golden, RecordJsonRoundTrip) {
  GoldenRecord rec;
  rec.name = "rt";
  rec.seed = 42;
  rec.fingerprint = 0xDEADBEEFCAFEF00Dull;
  rec.headline["rtt_p50_ms"] = 40.5;
  rec.headline["events"] = 123456.0;

  std::string err;
  const auto back = golden_from_json(golden_to_json(rec), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->name, rec.name);
  EXPECT_EQ(back->seed, rec.seed);
  EXPECT_EQ(back->fingerprint, rec.fingerprint);
  EXPECT_EQ(back->headline, rec.headline);
}

TEST(Golden, CompareReportsFingerprintAndHeadlineDrift) {
  GoldenRecord a;
  a.name = "x";
  a.fingerprint = 1;
  a.headline["rtt_p50_ms"] = 40.0;
  GoldenRecord b = a;
  EXPECT_TRUE(compare_golden(a, b).empty());

  b.fingerprint = 2;
  b.headline["rtt_p50_ms"] = 55.0;
  const auto diffs = compare_golden(a, b);
  ASSERT_GE(diffs.size(), 2u);
  EXPECT_NE(diffs[0].find("fingerprint"), std::string::npos);
  EXPECT_NE(diffs[1].find("rtt_p50_ms"), std::string::npos);
}

TEST(Golden, UnknownScenarioRejected) {
  EXPECT_FALSE(golden_scenario_config("nope").has_value());
  EXPECT_FALSE(compute_golden("nope").has_value());
}

}  // namespace
}  // namespace zhuge::app
