// Resilience properties of the control loop's fail-open machinery
// (ISSUE 7): the graded degradation ladder strictly weakens interventions
// level by level, divergence evidence resets on every ladder move (no
// instant re-trip after a recovery probe), PassThrough is fingerprint-
// identical to running without Zhuge on the dense 64-station churn spec,
// feedback-path fault injection is bit-identical across repeats and
// diverges across seeds, and the chaos matrix is serial-vs-parallel
// bit-identical with the recovery SLO of one canonical case pinned as a
// golden anchor.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "app/chaos.hpp"
#include "app/scenario.hpp"
#include "app/spec.hpp"
#include "app/sweep.hpp"
#include "core/zhuge.hpp"
#include "net/packet.hpp"
#include "obs/slo.hpp"
#include "queue/fifo.hpp"
#include "sim/simulator.hpp"

namespace zhuge::app {
namespace {

using net::Packet;
using sim::Duration;
using sim::Simulator;
using sim::TimePoint;
using namespace sim::literals;

TimePoint at(std::int64_t ms) {
  return TimePoint::zero() + Duration::millis(ms);
}

Packet tcp_data(const net::FlowId& flow) {
  Packet p;
  p.flow = flow;
  p.size_bytes = 1240;
  p.header = net::TcpHeader{};
  return p;
}

Packet tcp_ack(const net::FlowId& flow, std::uint64_t uid) {
  Packet p;
  p.uid = uid;
  p.flow = flow.reversed();
  net::TcpHeader h;
  h.is_ack = true;
  p.header = h;
  return p;
}

Packet rtp_data(const net::FlowId& flow, std::uint32_t ssrc,
                std::uint16_t seq) {
  Packet p;
  p.flow = flow;
  p.size_bytes = 1200;
  net::RtpHeader h;
  h.ssrc = ssrc;
  h.seq = seq;
  h.twcc_seq = seq;
  p.header = h;
  return p;
}

Packet client_twcc(const net::FlowId& flow, std::uint32_t ssrc) {
  Packet p;
  p.flow = flow.reversed();
  net::TwccFeedback fb;
  fb.ssrc = ssrc;
  net::RtcpHeader h;
  h.payload = fb;
  p.header = h;
  return p;
}

// ---------------------------------------------------------------------------
// Ladder monotonicity
// ---------------------------------------------------------------------------

/// What one pinned ladder level did to a fixed traffic pattern.
struct LevelProbe {
  bool annotates = false;   ///< predicted_delay_ms written on downlink data
  bool commits = false;     ///< fortunes recorded for the feedback updaters
  bool drops_twcc = false;  ///< client TWCC replaced (in-band intervention)
  bool delays_ack = false;  ///< OOB ACK held on the release queue
  double predicted_ms = -1.0;

  /// Interventions still active: the ladder is monotone iff this never
  /// increases while walking Full -> PassThrough.
  [[nodiscard]] int strength() const {
    return int(annotates) + int(commits) + int(drops_twcc) + int(delays_ack);
  }
};

/// Drive the identical downlink/uplink sequence through a ZhugeFlow pinned
/// at `level` and record which interventions fired.
LevelProbe probe_level(obs::LadderLevel level) {
  Simulator sim;
  sim::Rng rng(1);
  net::FlowId flow{1, 100, 5000, 6000, 6};
  core::ZhugeConfig cfg;
  cfg.watchdog.initial_level = level;  // pins the ladder
  core::ZhugeFlow zf(sim, rng, flow, cfg, [](Packet) {});
  queue::DropTailFifo q(-1);
  LevelProbe out;

  sim.schedule_at(at(0), [&] {
    // One own-flow departure (so ClampedPredict is not stale) and a deep
    // backlog: ~200 x 1240 B over the 10 Mb/s fallback rate predicts
    // ~200 ms of queueing, comfortably above the 100 ms clamp.
    zf.on_dequeue(tcp_data(flow), sim.now());
    for (int i = 0; i < 200; ++i) q.enqueue(tcp_data(flow), sim.now());
  });
  sim.schedule_at(at(10), [&] {
    Packet d = tcp_data(flow);
    zf.on_downlink(d, q);
    out.annotates = d.predicted_delay_ms >= 0.0;
    out.predicted_ms = d.predicted_delay_ms;
    Packet r = rtp_data(flow, 7, 1);
    zf.on_downlink(r, q);
    out.commits = zf.pending_feedback() > 0;
  });
  sim.schedule_at(at(20), [&] {
    out.delays_ack =
        zf.handle_uplink(tcp_ack(flow, 1)) == core::UplinkAction::kDelay;
    out.drops_twcc =
        zf.handle_uplink(client_twcc(flow, 7)) == core::UplinkAction::kDrop;
  });
  sim.run();
  return out;
}

TEST(ResilienceLadder, EachLevelStrictlyWeakensInterventions) {
  const LevelProbe full = probe_level(obs::LadderLevel::kFull);
  const LevelProbe clamped = probe_level(obs::LadderLevel::kClampedPredict);
  const LevelProbe hold = probe_level(obs::LadderLevel::kHoldOnly);
  const LevelProbe pass = probe_level(obs::LadderLevel::kPassThrough);

  // Full: every intervention active, prediction unclamped (> 100 ms here).
  EXPECT_TRUE(full.annotates);
  EXPECT_TRUE(full.commits);
  EXPECT_TRUE(full.drops_twcc);
  EXPECT_TRUE(full.delays_ack);
  EXPECT_GT(full.predicted_ms, 100.0);

  // ClampedPredict: same interventions, but the fortune is ceiling-bound.
  EXPECT_TRUE(clamped.annotates);
  EXPECT_TRUE(clamped.commits);
  EXPECT_TRUE(clamped.drops_twcc);
  EXPECT_TRUE(clamped.delays_ack);
  EXPECT_GT(clamped.predicted_ms, 0.0);
  EXPECT_LE(clamped.predicted_ms, 100.0);
  EXPECT_LT(clamped.predicted_ms, full.predicted_ms);

  // HoldOnly: still observing (annotation), but commits/drops/delays off.
  EXPECT_TRUE(hold.annotates);
  EXPECT_FALSE(hold.commits);
  EXPECT_FALSE(hold.drops_twcc);
  EXPECT_FALSE(hold.delays_ack);

  // PassThrough: byte-identical to no Zhuge — not even an annotation.
  EXPECT_FALSE(pass.annotates);
  EXPECT_FALSE(pass.commits);
  EXPECT_FALSE(pass.drops_twcc);
  EXPECT_FALSE(pass.delays_ack);
  EXPECT_DOUBLE_EQ(pass.predicted_ms, -1.0);

  // The monotone property itself: walking up the ladder never turns an
  // intervention back on.
  EXPECT_GE(full.strength(), clamped.strength());
  EXPECT_GT(clamped.strength(), hold.strength());
  EXPECT_GT(hold.strength(), pass.strength());
}

// ---------------------------------------------------------------------------
// Divergence evidence resets on every ladder move
// ---------------------------------------------------------------------------

// Regression for the reactivation flap: divergence samples gathered under
// one intervention regime said nothing about the next one, but used to
// survive a recovery probe — five stale samples re-tripped the watchdog
// the instant it stepped down. Evidence must reset on every move.
TEST(ResilienceLadder, DivergenceEvidenceResetsAcrossRecovery) {
  Simulator sim;
  sim::Rng rng(1);
  net::FlowId flow{1, 100, 5000, 6000, 6};
  core::ZhugeConfig cfg;
  cfg.watchdog.divergence_threshold_ms = 50.0;
  cfg.watchdog.divergence_alpha = 0.5;
  cfg.watchdog.min_divergence_samples = 5;
  cfg.watchdog.recovery_settle = 100_ms;
  core::ZhugeFlow zf(sim, rng, flow, cfg, [](Packet) {});

  const auto divergent_sample = [&] {
    Packet p = tcp_data(flow);
    p.predicted_delay_ms = 0.0;           // fortune said no queueing...
    p.ap_enqueue_time = sim.now() - 200_ms;  // ...packet waited 200 ms
    zf.on_dequeue(p, sim.now());
  };
  const auto healthy_sample = [&] {
    Packet p = tcp_data(flow);
    p.predicted_delay_ms = 30.0;          // fortune matched reality
    p.ap_enqueue_time = sim.now() - 30_ms;
    zf.on_dequeue(p, sim.now());
  };

  // Sustained divergence escalates (floor: ClampedPredict).
  sim.schedule_at(at(200), [&] {
    for (int i = 0; i < 6; ++i) divergent_sample();
    zf.check_watchdog(sim.now());
    EXPECT_EQ(zf.level(), obs::LadderLevel::kClampedPredict);
    EXPECT_EQ(zf.degrade_count(), 1u);
  });

  // One healthy sample + live uplink after the settle period: the probe
  // must step down. Were the six divergent samples still on the books,
  // divergence_tripped() would hold the flow degraded here.
  sim.schedule_at(at(300), [&] {
    (void)zf.handle_uplink(tcp_ack(flow, 1));
    healthy_sample();
    zf.check_watchdog(sim.now());
    EXPECT_EQ(zf.level(), obs::LadderLevel::kFull);
    EXPECT_EQ(zf.reactivate_count(), 1u);
  });

  // Back at Full with healthy traffic: no flap back up the ladder, and the
  // step-down itself also wiped the evidence counter.
  sim.schedule_at(at(320), [&] {
    EXPECT_EQ(zf.divergence_samples(), 0u);
    for (int i = 0; i < 6; ++i) healthy_sample();
    zf.check_watchdog(sim.now());
    EXPECT_EQ(zf.level(), obs::LadderLevel::kFull);
  });

  sim.run();
  EXPECT_EQ(zf.degrade_count(), 1u);
  EXPECT_EQ(zf.reactivate_count(), 1u);
}

// ---------------------------------------------------------------------------
// Scenario-level equivalence and determinism
// ---------------------------------------------------------------------------

ScenarioSpec parse_or_die(const char* text) {
  std::string err;
  const auto spec = parse_scenario_spec(text, &err);
  EXPECT_TRUE(spec.has_value()) << err;
  return *spec;
}

/// The acceptance-criterion spec (multistation_test.cpp's dense_spec).
ScenarioSpec dense_spec() {
  return parse_or_die(R"({
    "name": "dense64",
    "duration_s": 15,
    "warmup_s": 3,
    "seed": 1,
    "stations": [
      { "count": 48, "mcs": 7 },
      { "count": 8, "mcs": 4,
        "fade": { "period_s": 4, "depth_mcs": 3, "duty": 0.3 } },
      { "count": 8, "mcs": 5, "qdisc": "fq_codel", "leave_s": 11 }
    ],
    "flows": [
      { "kind": "rtp_gcc", "station": 0, "zhuge": true },
      { "kind": "tcp_cubic", "station": 1, "start_s": 1 }
    ],
    "churn": {
      "enabled": true,
      "mean_interarrival_s": 0.3,
      "mean_lifetime_s": 5,
      "max_concurrent": 24,
      "mix_rtp_gcc": 0.6,
      "mix_tcp_cubic": 0.25,
      "mix_tcp_bbr": 0.15,
      "zhuge_fraction": 0.7,
      "start_s": 1,
      "max_bitrate_mbps": 1.5
    }
  })");
}

/// Small two-station spec with faults on both feedback-path boundaries.
ScenarioSpec faulted_spec() {
  return parse_or_die(R"({
    "name": "faulted",
    "duration_s": 8,
    "warmup_s": 1,
    "seed": 3,
    "stations": [ { "count": 2, "mcs": 7 } ],
    "flows": [
      { "kind": "rtp_gcc", "station": 0, "zhuge": true },
      { "kind": "tcp_cubic", "station": 1, "zhuge": true }
    ],
    "feedback_faults": {
      "ap_feedback": { "dup_prob": 0.2, "reorder_prob": 0.2,
                       "reorder_delay_ms": 8 },
      "uplink_rtcp": { "loss_prob": 0.3, "start_s": 3, "end_s": 5 }
    }
  })");
}

// The ladder's fail-open end state must be indistinguishable from turning
// Zhuge off entirely — pinned PassThrough and ap_mode "none" produce
// bit-identical runs on the dense 64-station churn acceptance spec.
TEST(ResilienceEquivalence, PassThroughMatchesZhugeOffOnDenseChurn) {
  ScenarioSpec pass = dense_spec();
  pass.zhuge_initial_ladder = obs::LadderLevel::kPassThrough;
  ScenarioSpec off = dense_spec();
  off.ap_mode = ApMode::kNone;
  const ObsFreeze freeze;
  const auto a = run_multi_station(pass);
  const auto b = run_multi_station(off);
  EXPECT_EQ(multi_result_fingerprint(a), multi_result_fingerprint(b));
}

TEST(ResilienceDeterminism, FeedbackFaultsBitIdenticalAcrossRepeats) {
  const ScenarioSpec spec = faulted_spec();
  const ObsFreeze freeze;
  const auto a = run_multi_station(spec);
  const auto b = run_multi_station(spec);
  EXPECT_EQ(multi_result_fingerprint(a), multi_result_fingerprint(b));
}

TEST(ResilienceDeterminism, FeedbackFaultsDivergeAcrossSeeds) {
  const ScenarioSpec spec = faulted_spec();
  const ObsFreeze freeze;
  const auto a = run_multi_station(spec, 3);
  const auto b = run_multi_station(spec, 4);
  EXPECT_NE(multi_result_fingerprint(a), multi_result_fingerprint(b));
}

TEST(ResilienceDeterminism, FeedbackFaultsActuallyPerturbTheRun) {
  ScenarioSpec clean = faulted_spec();
  clean.ap_feedback_fault = fault::InjectorConfig{};
  clean.uplink_rtcp_fault = fault::InjectorConfig{};
  const ObsFreeze freeze;
  const auto faulted = run_multi_station(faulted_spec());
  const auto unfaulted = run_multi_station(clean);
  EXPECT_NE(multi_result_fingerprint(faulted),
            multi_result_fingerprint(unfaulted));
}

// ---------------------------------------------------------------------------
// Chaos matrix: parallel identity + pinned recovery-SLO anchor
// ---------------------------------------------------------------------------

std::vector<ChaosCase> matrix_subset(const std::string& substr) {
  auto cases = chaos_matrix(1);
  std::erase_if(cases, [&](const ChaosCase& c) {
    return c.name.find(substr) == std::string::npos;
  });
  return cases;
}

// One CCA row of the matrix (4 fault kinds x 2 profiles) run serially and
// on a 4-thread pool: verdicts — including every SLO number — must chain
// to the same fingerprint, and every case must pass. The full 24-case grid
// is exercised by chaos_run --matrix --verify-serial in CI.
TEST(ResilienceMatrix, SerialAndParallelBitIdentical) {
  const auto cases = matrix_subset("/gcc/");
  ASSERT_EQ(cases.size(), 8u);
  const auto serial = run_chaos_matrix(cases, 1);
  const auto parallel = run_chaos_matrix(cases, 4);
  EXPECT_EQ(serial.fingerprint, parallel.fingerprint);
  EXPECT_EQ(serial.failed, 0);
  EXPECT_EQ(parallel.failed, 0);
}

// Golden anchor for the canonical matrix case: total uplink-RTCP feedback
// loss under RTP/GCC on the steady channel, seed 1. Pins the degradation
// trajectory (detect -> deepest level -> recover) and the recovery SLO to
// exact values so any behavioural drift in the watchdog, the ladder, or
// the SLO accounting is caught — not just "it still passes".
// Regenerate after *justified* drift with:
//   ./build/tools/chaos_run --matrix --case fb_loss/gcc/steady --json
TEST(ResilienceMatrix, RecoverySloGoldenAnchorFbLossGccSteady) {
  const auto cases = matrix_subset("fb_loss/gcc/steady");
  ASSERT_EQ(cases.size(), 1u);
  const auto res = run_chaos_matrix(cases, 1);
  ASSERT_EQ(res.verdicts.size(), 1u);
  const ChaosVerdict& v = res.verdicts[0];

  EXPECT_TRUE(v.passed) << v.failure;
  EXPECT_EQ(v.degrades, 2u);
  EXPECT_EQ(v.reactivates, 3u);
  EXPECT_EQ(v.flushed_acks, 2u);
  EXPECT_EQ(v.fault_drops, 65u);
  EXPECT_EQ(v.stranded_acks, 0u);
  EXPECT_NEAR(v.recovery_ratio, 1.01499736, 1e-6);

  EXPECT_TRUE(v.slo.triggered);
  EXPECT_TRUE(v.slo.recovered);
  EXPECT_EQ(v.slo.deepest, obs::LadderLevel::kPassThrough);
  EXPECT_EQ(v.slo.escalations, 2u);
  EXPECT_EQ(v.slo.step_downs, 3u);
  EXPECT_NEAR(v.slo.time_to_detect_ms, 478.343086, 1e-4);
  EXPECT_NEAR(v.slo.time_to_recover_ms, 522.505744, 1e-4);
  EXPECT_NEAR(v.slo.dwell_ms[int(obs::LadderLevel::kFull)], 22955.837342, 1e-4);
  EXPECT_NEAR(v.slo.dwell_ms[int(obs::LadderLevel::kClampedPredict)],
              252.496020, 1e-4);
  EXPECT_NEAR(v.slo.dwell_ms[int(obs::LadderLevel::kHoldOnly)], 477.945422,
              1e-4);
  EXPECT_NEAR(v.slo.dwell_ms[int(obs::LadderLevel::kPassThrough)],
              1313.721216, 1e-4);
  EXPECT_EQ(v.slo.frames_expected_in_transition, 49u);
  EXPECT_EQ(v.slo.frames_decoded_in_transition, 49u);
  EXPECT_EQ(v.slo.frames_lost_in_transition, 0u);
  EXPECT_NEAR(v.slo.healthy_p95_ms, 25.551050, 1e-4);
  EXPECT_NEAR(v.slo.post_recovery_p95_ms, 25.508791, 1e-4);
  EXPECT_NEAR(v.slo.post_over_healthy_p95, 0.998346, 1e-4);

  // Strongest form: the FNV chain over every numeric verdict field.
  EXPECT_EQ(chaos_verdict_fingerprint(v), 0xa75f4ffe4d418b10ull);
}

}  // namespace
}  // namespace zhuge::app
